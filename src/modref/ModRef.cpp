//===-- ModRef.cpp - Interprocedural mod-ref analysis --------------------------==//

#include "modref/ModRef.h"

#include "ir/ProgramIO.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <map>

using namespace tsl;

static uint64_t partKey(HeapPartition::Kind K, unsigned Obj, const Field *F) {
  uint64_t Tag = static_cast<uint64_t>(K) << 60;
  uint64_t FieldBits = F ? (static_cast<uint64_t>(F->id()) << 28) : 0;
  return Tag | FieldBits | Obj;
}

unsigned ModRefResult::getPartition(HeapPartition::Kind K, unsigned Obj,
                                    const Field *F) {
  auto [It, New] = PartIndex.emplace(partKey(K, Obj, F), 0);
  if (New) {
    It->second = static_cast<unsigned>(Partitions.size());
    Partitions.push_back({K, Obj, F, It->second});
  }
  return It->second;
}

BitSet ModRefResult::partitionsOf(const Instr *I) const {
  // Note: const_cast-free requires partitions to exist already; this
  // query is used after construction, when every reachable access has
  // been interned.
  BitSet Out;
  auto Lookup = [&](HeapPartition::Kind K, unsigned Obj, const Field *F) {
    auto It = PartIndex.find(partKey(K, Obj, F));
    if (It != PartIndex.end())
      Out.insert(It->second);
  };
  switch (I->kind()) {
  case InstrKind::Load: {
    const auto *L = cast<LoadInstr>(I);
    if (L->isStaticAccess())
      Lookup(HeapPartition::Kind::Static, 0, L->field());
    else
      PTA.pointsTo(L->base()).forEach([&](unsigned Obj) {
        Lookup(HeapPartition::Kind::Field, Obj, L->field());
      });
    break;
  }
  case InstrKind::Store: {
    const auto *S = cast<StoreInstr>(I);
    if (S->isStaticAccess())
      Lookup(HeapPartition::Kind::Static, 0, S->field());
    else
      PTA.pointsTo(S->base()).forEach([&](unsigned Obj) {
        Lookup(HeapPartition::Kind::Field, Obj, S->field());
      });
    break;
  }
  case InstrKind::ArrayLoad:
    PTA.pointsTo(cast<ArrayLoadInstr>(I)->array()).forEach([&](unsigned Obj) {
      Lookup(HeapPartition::Kind::ArrayElem, Obj, nullptr);
    });
    break;
  case InstrKind::ArrayStore:
    PTA.pointsTo(cast<ArrayStoreInstr>(I)->array()).forEach([&](unsigned Obj) {
      Lookup(HeapPartition::Kind::ArrayElem, Obj, nullptr);
    });
    break;
  default:
    break;
  }
  return Out;
}

void ModRefResult::collectDirect(const Method *M, const PointsToResult &PTA,
                                 BitSet &Mod, BitSet &Ref) {
  if (!M->entry())
    return;
  for (const auto &BB : M->blocks()) {
    for (const auto &I : BB->instrs()) {
      switch (I->kind()) {
      case InstrKind::Load: {
        const auto *L = cast<LoadInstr>(I.get());
        if (L->isStaticAccess()) {
          Ref.insert(getPartition(HeapPartition::Kind::Static, 0, L->field()));
        } else {
          PTA.pointsTo(L->base()).forEach([&](unsigned Obj) {
            Ref.insert(
                getPartition(HeapPartition::Kind::Field, Obj, L->field()));
          });
        }
        break;
      }
      case InstrKind::Store: {
        const auto *S = cast<StoreInstr>(I.get());
        if (S->isStaticAccess()) {
          Mod.insert(getPartition(HeapPartition::Kind::Static, 0, S->field()));
        } else {
          PTA.pointsTo(S->base()).forEach([&](unsigned Obj) {
            Mod.insert(
                getPartition(HeapPartition::Kind::Field, Obj, S->field()));
          });
        }
        break;
      }
      case InstrKind::ArrayLoad:
        PTA.pointsTo(cast<ArrayLoadInstr>(I.get())->array())
            .forEach([&](unsigned Obj) {
              Ref.insert(
                  getPartition(HeapPartition::Kind::ArrayElem, Obj, nullptr));
            });
        break;
      case InstrKind::ArrayStore:
        PTA.pointsTo(cast<ArrayStoreInstr>(I.get())->array())
            .forEach([&](unsigned Obj) {
              Mod.insert(
                  getPartition(HeapPartition::Kind::ArrayElem, Obj, nullptr));
            });
        break;
      default:
        break;
      }
    }
  }
}

ModRefResult::ModRefResult(const Program &P, const PointsToResult &PTAIn,
                           const AnalysisBudget *Budget, ThreadPool *Pool)
    : PTA(PTAIn) {
  (void)P;
  auto T0 = std::chrono::steady_clock::now();
  const CallGraph &CG = PTA.callGraph();
  std::vector<Method *> Reachable = CG.reachableMethods();
  const unsigned NumM = static_cast<unsigned>(Reachable.size());

  // Direct effects, sequential in method order: getPartition interns
  // partition ids in first-seen order, so this scan fixes the id
  // space every downstream consumer (and every serialized artifact)
  // depends on. The per-method copies feed the incremental path.
  std::vector<BitSet> DirectMod(NumM), DirectRef(NumM);
  for (unsigned I = 0; I != NumM; ++I) {
    collectDirect(Reachable[I], PTA, DirectMod[I], DirectRef[I]);
    DirectModM[Reachable[I]->id()] = DirectMod[I];
    DirectRefM[Reachable[I]->id()] = DirectRef[I];
  }

  BudgetGate Gate(Budget, "modref.closure",
                  Budget ? Budget->MaxModRefSteps : 0);
  closeOverCallGraph(Reachable, DirectMod, DirectRef, Gate, Pool);

  if (Gate.exhausted()) {
    // Sound fallback: every reachable method may read and write every
    // partition interned by the direct-effect scan (the closure never
    // creates new partitions, it only unions existing ones).
    BitSet AllParts;
    for (unsigned Id = 0, E = numPartitions(); Id != E; ++Id)
      AllParts.insert(Id);
    for (Method *M : Reachable) {
      Mod[M->id()] = AllParts;
      Ref[M->id()] = AllParts;
    }
    Report.Status = StageStatus::Degraded;
    Report.Reason = Gate.reason();
    Report.Fallback = "all-partitions mod/ref";
  }
  Report.StepsUsed = Gate.used();
  Report.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
}

bool ModRefResult::updateIncremental(
    const std::vector<Method *> &AffectedMethods) {
  if (Report.Status != StageStatus::Complete)
    return false;
  auto T0 = std::chrono::steady_clock::now();
  const CallGraph &CG = PTA.callGraph();
  std::vector<Method *> Reachable = CG.reachableMethods();
  const unsigned NumM = static_cast<unsigned>(Reachable.size());
  std::unordered_set<const Method *> Dirty(AffectedMethods.begin(),
                                           AffectedMethods.end());

  // The gate carries no budget (the incremental path is only taken
  // for unbudgeted sessions) but surfaces "modref.update" faults for
  // the chaos harness.
  BudgetGate Gate(nullptr, "modref.update", 0);

  // Re-scan direct effects for affected and newly reachable methods;
  // everything else reuses its cached set. The scan stays in method
  // order so newly interned partition ids are deterministic.
  std::vector<BitSet> DirectMod(NumM), DirectRef(NumM);
  for (unsigned I = 0; I != NumM; ++I) {
    Method *M = Reachable[I];
    auto HaveMod = DirectModM.find(M->id());
    if (HaveMod == DirectModM.end() || Dirty.count(M)) {
      if (Gate.spend())
        return false; // Injected fault: caller rebuilds cold.
      BitSet DM, DR;
      collectDirect(M, PTA, DM, DR);
      DirectModM[M->id()] = DM;
      DirectRefM[M->id()] = DR;
      DirectMod[I] = std::move(DM);
      DirectRef[I] = std::move(DR);
    } else {
      DirectMod[I] = HaveMod->second;
      DirectRef[I] = DirectRefM[M->id()];
    }
  }

  closeOverCallGraph(Reachable, DirectMod, DirectRef, Gate, nullptr);
  if (Gate.exhausted())
    return false; // Injected fault: caller rebuilds cold.

  Report.StepsUsed += Gate.used();
  Report.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return true;
}

void ModRefResult::closeOverCallGraph(const std::vector<Method *> &Reachable,
                                      const std::vector<BitSet> &DirectMod,
                                      const std::vector<BitSet> &DirectRef,
                                      BudgetGate &Gate, ThreadPool *Pool) {
  const CallGraph &CG = PTA.callGraph();
  const unsigned NumM = static_cast<unsigned>(Reachable.size());
  std::unordered_map<const Method *, unsigned> Idx;
  Idx.reserve(NumM);
  for (unsigned I = 0; I != NumM; ++I)
    Idx.emplace(Reachable[I], I);

  // Method-level callee adjacency, deduplicated and sorted so the
  // condensation below is deterministic.
  std::vector<std::vector<unsigned>> Callees(NumM);
  for (const CallEdge &E : CG.edges()) {
    auto Caller = Idx.find(CG.node(E.CallerNode).M);
    auto Callee = Idx.find(CG.node(E.CalleeNode).M);
    if (Caller == Idx.end() || Callee == Idx.end() ||
        Caller->second == Callee->second)
      continue;
    Callees[Caller->second].push_back(Callee->second);
  }
  for (std::vector<unsigned> &C : Callees) {
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
  }

  // SCC condensation (iterative Tarjan). Component ids are pop order:
  // for every cross-component call edge caller -> callee,
  // Comp[callee] < Comp[caller], so increasing id is bottom-up
  // (callees-first) topological order.
  std::vector<unsigned> Comp(NumM, 0);
  unsigned NumComps = 0;
  {
    std::vector<unsigned> Index(NumM, 0), Low(NumM, 0);
    std::vector<char> OnStack(NumM, 0);
    std::vector<unsigned> Stack;
    struct Frame {
      unsigned Node;
      std::size_t SuccIdx;
    };
    std::vector<Frame> DFS;
    unsigned Counter = 0;
    auto Open = [&](unsigned V) {
      Index[V] = Low[V] = ++Counter;
      Stack.push_back(V);
      OnStack[V] = 1;
      DFS.push_back({V, 0});
    };
    for (unsigned Root = 0; Root != NumM; ++Root) {
      if (Index[Root])
        continue;
      Open(Root);
      while (!DFS.empty()) {
        Frame &F = DFS.back();
        if (F.SuccIdx < Callees[F.Node].size()) {
          unsigned W = Callees[F.Node][F.SuccIdx++];
          if (!Index[W])
            Open(W); // Invalidates F; re-fetched next iteration.
          else if (OnStack[W] && Index[W] < Low[F.Node])
            Low[F.Node] = Index[W];
          continue;
        }
        const unsigned V = F.Node;
        const unsigned Lv = Low[V];
        DFS.pop_back();
        if (!DFS.empty() && Lv < Low[DFS.back().Node])
          Low[DFS.back().Node] = Lv;
        if (Lv == Index[V]) {
          const unsigned Id = NumComps++;
          while (true) {
            unsigned X = Stack.back();
            Stack.pop_back();
            OnStack[X] = 0;
            Comp[X] = Id;
            if (X == V)
              break;
          }
        }
      }
    }
  }

  // Per-SCC member lists (counting sort) and deduplicated cross-SCC
  // callee lists.
  std::vector<unsigned> MemberOff(NumComps + 1, 0), Members(NumM);
  for (unsigned M = 0; M != NumM; ++M)
    ++MemberOff[Comp[M] + 1];
  for (unsigned S = 1; S <= NumComps; ++S)
    MemberOff[S] += MemberOff[S - 1];
  {
    std::vector<unsigned> Cur(MemberOff.begin(), MemberOff.end() - 1);
    for (unsigned M = 0; M != NumM; ++M)
      Members[Cur[Comp[M]]++] = M;
  }
  std::vector<std::vector<unsigned>> SccCallees(NumComps);
  for (unsigned M = 0; M != NumM; ++M)
    for (unsigned C : Callees[M])
      if (Comp[C] != Comp[M])
        SccCallees[Comp[M]].push_back(Comp[C]);
  for (std::vector<unsigned> &C : SccCallees) {
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
  }

  // Bottom-up waves: an SCC's wave is one past the deepest callee
  // SCC's, so every SCC it reads from lies in an earlier wave. All
  // SCCs of one wave are independent — the pool fans them out, and
  // the per-SCC unions read only frozen earlier-wave results.
  std::vector<unsigned> Depth(NumComps, 0);
  unsigned MaxDepth = 0;
  for (unsigned S = 0; S != NumComps; ++S) {
    for (unsigned C : SccCallees[S]) // C < S: already assigned.
      Depth[S] = std::max(Depth[S], Depth[C] + 1);
    MaxDepth = std::max(MaxDepth, Depth[S]);
  }
  std::vector<std::vector<unsigned>> Waves(NumComps ? MaxDepth + 1 : 0);
  for (unsigned S = 0; S != NumComps; ++S)
    Waves[Depth[S]].push_back(S);

  // All members of an SCC call each other transitively, so they share
  // one transitive mod/ref set: the union of the members' direct
  // effects and the callee SCCs' sets. This is the same least
  // fixpoint the old per-method worklist converged to, computed with
  // each union performed exactly once.
  std::vector<BitSet> SccMod(NumComps), SccRef(NumComps);
  for (const std::vector<unsigned> &Wave : Waves) {
    // Pay for the wave up front on this thread, in SCC id order, so
    // budget accounting (and any armed fault) is identical for every
    // pool size.
    bool Stop = false;
    for (std::size_t I = 0; I != Wave.size() && !Stop; ++I)
      Stop = Gate.spend();
    if (Stop)
      break; // Budget exhausted; degrade below.
    auto RunScc = [&](std::size_t WI) {
      const unsigned S = Wave[WI];
      BitSet &WMod = SccMod[S], &WRef = SccRef[S];
      for (unsigned I = MemberOff[S]; I != MemberOff[S + 1]; ++I) {
        WMod.unionWith(DirectMod[Members[I]]);
        WRef.unionWith(DirectRef[Members[I]]);
      }
      for (unsigned C : SccCallees[S]) {
        WMod.unionWith(SccMod[C]);
        WRef.unionWith(SccRef[C]);
      }
    };
    if (Pool)
      Pool->parallelFor(Wave.size(), RunScc);
    else
      for (std::size_t I = 0; I != Wave.size(); ++I)
        RunScc(I);
  }

  if (!Gate.exhausted()) {
    Mod.clear();
    Ref.clear();
    for (unsigned M = 0; M != NumM; ++M) {
      Mod[Reachable[M]->id()] = SccMod[Comp[M]];
      Ref[Reachable[M]->id()] = SccRef[Comp[M]];
    }
  }
}

const BitSet &ModRefResult::modOf(const Method *M) const {
  auto It = Mod.find(M->id());
  return It == Mod.end() ? EmptySet : It->second;
}

const BitSet &ModRefResult::refOf(const Method *M) const {
  auto It = Ref.find(M->id());
  return It == Ref.end() ? EmptySet : It->second;
}

//===----------------------------------------------------------------------===//
// Snapshot codec
//===----------------------------------------------------------------------===//

namespace {

/// Per-method rows in ascending method-id order so the encoding is
/// canonical regardless of unordered_map iteration order.
void putRows(tsl::ByteWriter &W,
             const std::unordered_map<uint32_t, tsl::BitSet> &Rows) {
  std::map<uint32_t, const tsl::BitSet *> Sorted;
  for (const auto &[MId, Bits] : Rows)
    Sorted.emplace(MId, &Bits);
  W.vu64(Sorted.size());
  for (const auto &[MId, Bits] : Sorted) {
    W.vu32(MId);
    W.bitset(*Bits);
  }
}

void getRows(tsl::ByteReader &R, const tsl::Program &P,
             std::unordered_map<uint32_t, tsl::BitSet> &Rows) {
  const uint64_t N = R.vu64();
  for (uint64_t I = 0; I != N; ++I) {
    const uint32_t MId = R.vu32();
    (void)tsl::methodForId(P, MId); // Range check.
    if (!Rows.emplace(MId, R.bitset()).second)
      throw tsl::SerializeError("duplicate mod/ref row");
  }
}

} // namespace

void ModRefResult::encode(ByteWriter &W) const {
  putReport(W, Report);
  W.vu64(Partitions.size());
  for (const HeapPartition &Part : Partitions) {
    W.u8(static_cast<uint8_t>(Part.K));
    W.vu32(Part.Obj);
    W.vu32(Part.F ? Part.F->id() + 1 : 0);
  }
  putRows(W, Mod);
  putRows(W, Ref);
  putRows(W, DirectModM);
  putRows(W, DirectRefM);
}

std::unique_ptr<ModRefResult>
ModRefResult::decode(ByteReader &R, const Program &P,
                     const PointsToResult &PTA) {
  std::unique_ptr<ModRefResult> MR(new ModRefResult(DecodeTag{}, PTA));
  MR->Report = getReport(R);
  const uint64_t NumParts = R.vu64();
  for (uint64_t I = 0; I != NumParts; ++I) {
    const uint8_t K = R.u8();
    if (K > static_cast<uint8_t>(HeapPartition::Kind::Static))
      throw SerializeError("unknown partition kind");
    const auto Kind = static_cast<HeapPartition::Kind>(K);
    const unsigned Obj = R.vu32();
    const uint32_t FRef = R.vu32();
    const Field *F = FRef ? fieldForId(P, FRef - 1) : nullptr;
    if ((Kind == HeapPartition::Kind::ArrayElem) != (F == nullptr))
      throw SerializeError("partition kind/field mismatch");
    const unsigned Id = static_cast<unsigned>(MR->Partitions.size());
    if (!MR->PartIndex.emplace(partKey(Kind, Obj, F), Id).second)
      throw SerializeError("duplicate heap partition");
    MR->Partitions.push_back({Kind, Obj, F, Id});
  }
  getRows(R, P, MR->Mod);
  getRows(R, P, MR->Ref);
  getRows(R, P, MR->DirectModM);
  getRows(R, P, MR->DirectRefM);
  return MR;
}

std::string ModRefResult::partitionName(unsigned Id, const Program &P) const {
  const HeapPartition &Part = Partitions[Id];
  switch (Part.K) {
  case HeapPartition::Kind::Field:
    return "obj" + std::to_string(Part.Obj) + "." +
           P.strings().str(Part.F->name());
  case HeapPartition::Kind::ArrayElem:
    return "obj" + std::to_string(Part.Obj) + "[*]";
  case HeapPartition::Kind::Static:
    return P.strings().str(Part.F->owner()->name()) + "." +
           P.strings().str(Part.F->name());
  }
  return "?";
}
