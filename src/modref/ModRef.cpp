//===-- ModRef.cpp - Interprocedural mod-ref analysis --------------------------==//

#include "modref/ModRef.h"

#include "support/Worklist.h"

using namespace tsl;

static uint64_t partKey(HeapPartition::Kind K, unsigned Obj, const Field *F) {
  uint64_t Tag = static_cast<uint64_t>(K) << 60;
  uint64_t FieldBits = F ? (static_cast<uint64_t>(F->id()) << 28) : 0;
  return Tag | FieldBits | Obj;
}

unsigned ModRefResult::getPartition(HeapPartition::Kind K, unsigned Obj,
                                    const Field *F) {
  auto [It, New] = PartIndex.emplace(partKey(K, Obj, F), 0);
  if (New) {
    It->second = static_cast<unsigned>(Partitions.size());
    Partitions.push_back({K, Obj, F, It->second});
  }
  return It->second;
}

BitSet ModRefResult::partitionsOf(const Instr *I) const {
  // Note: const_cast-free requires partitions to exist already; this
  // query is used after construction, when every reachable access has
  // been interned.
  BitSet Out;
  auto Lookup = [&](HeapPartition::Kind K, unsigned Obj, const Field *F) {
    auto It = PartIndex.find(partKey(K, Obj, F));
    if (It != PartIndex.end())
      Out.insert(It->second);
  };
  switch (I->kind()) {
  case InstrKind::Load: {
    const auto *L = cast<LoadInstr>(I);
    if (L->isStaticAccess())
      Lookup(HeapPartition::Kind::Static, 0, L->field());
    else
      PTA.pointsTo(L->base()).forEach([&](unsigned Obj) {
        Lookup(HeapPartition::Kind::Field, Obj, L->field());
      });
    break;
  }
  case InstrKind::Store: {
    const auto *S = cast<StoreInstr>(I);
    if (S->isStaticAccess())
      Lookup(HeapPartition::Kind::Static, 0, S->field());
    else
      PTA.pointsTo(S->base()).forEach([&](unsigned Obj) {
        Lookup(HeapPartition::Kind::Field, Obj, S->field());
      });
    break;
  }
  case InstrKind::ArrayLoad:
    PTA.pointsTo(cast<ArrayLoadInstr>(I)->array()).forEach([&](unsigned Obj) {
      Lookup(HeapPartition::Kind::ArrayElem, Obj, nullptr);
    });
    break;
  case InstrKind::ArrayStore:
    PTA.pointsTo(cast<ArrayStoreInstr>(I)->array()).forEach([&](unsigned Obj) {
      Lookup(HeapPartition::Kind::ArrayElem, Obj, nullptr);
    });
    break;
  default:
    break;
  }
  return Out;
}

void ModRefResult::collectDirect(const Method *M, const PointsToResult &PTA,
                                 BitSet &Mod, BitSet &Ref) {
  if (!M->entry())
    return;
  for (const auto &BB : M->blocks()) {
    for (const auto &I : BB->instrs()) {
      switch (I->kind()) {
      case InstrKind::Load: {
        const auto *L = cast<LoadInstr>(I.get());
        if (L->isStaticAccess()) {
          Ref.insert(getPartition(HeapPartition::Kind::Static, 0, L->field()));
        } else {
          PTA.pointsTo(L->base()).forEach([&](unsigned Obj) {
            Ref.insert(
                getPartition(HeapPartition::Kind::Field, Obj, L->field()));
          });
        }
        break;
      }
      case InstrKind::Store: {
        const auto *S = cast<StoreInstr>(I.get());
        if (S->isStaticAccess()) {
          Mod.insert(getPartition(HeapPartition::Kind::Static, 0, S->field()));
        } else {
          PTA.pointsTo(S->base()).forEach([&](unsigned Obj) {
            Mod.insert(
                getPartition(HeapPartition::Kind::Field, Obj, S->field()));
          });
        }
        break;
      }
      case InstrKind::ArrayLoad:
        PTA.pointsTo(cast<ArrayLoadInstr>(I.get())->array())
            .forEach([&](unsigned Obj) {
              Ref.insert(
                  getPartition(HeapPartition::Kind::ArrayElem, Obj, nullptr));
            });
        break;
      case InstrKind::ArrayStore:
        PTA.pointsTo(cast<ArrayStoreInstr>(I.get())->array())
            .forEach([&](unsigned Obj) {
              Mod.insert(
                  getPartition(HeapPartition::Kind::ArrayElem, Obj, nullptr));
            });
        break;
      default:
        break;
      }
    }
  }
}

ModRefResult::ModRefResult(const Program &P, const PointsToResult &PTAIn,
                           const AnalysisBudget *Budget)
    : PTA(PTAIn) {
  (void)P;
  auto T0 = std::chrono::steady_clock::now();
  const CallGraph &CG = PTA.callGraph();
  std::vector<Method *> Reachable = CG.reachableMethods();

  // Direct effects.
  for (Method *M : Reachable)
    collectDirect(M, PTA, Mod[M], Ref[M]);

  BudgetGate Gate(Budget, "modref.closure",
                  Budget ? Budget->MaxModRefSteps : 0);

  // Transitive closure over the (method-level) call graph: propagate
  // callee effects to callers with a worklist instead of rescanning
  // the whole edge list until a full pass changes nothing.
  std::unordered_map<const Method *, unsigned> Idx;
  Idx.reserve(Reachable.size());
  for (unsigned I = 0; I != Reachable.size(); ++I)
    Idx.emplace(Reachable[I], I);
  std::vector<std::vector<Method *>> CallersOf(Reachable.size());
  for (const CallEdge &E : CG.edges()) {
    Method *Caller = CG.node(E.CallerNode).M;
    Method *Callee = CG.node(E.CalleeNode).M;
    if (Caller != Callee)
      CallersOf[Idx.at(Callee)].push_back(Caller);
  }
  Worklist WL;
  for (unsigned I = 0; I != Reachable.size(); ++I)
    WL.push(I);
  while (!WL.empty()) {
    if (Gate.spend())
      break; // Budget exhausted; degrade below.
    unsigned I = WL.pop();
    Method *Callee = Reachable[I];
    for (Method *Caller : CallersOf[I]) {
      bool Changed = Mod[Caller].unionWith(Mod[Callee]);
      Changed |= Ref[Caller].unionWith(Ref[Callee]);
      if (Changed)
        WL.push(Idx.at(Caller));
    }
  }

  if (Gate.exhausted()) {
    // Sound fallback: every reachable method may read and write every
    // partition interned by the direct-effect scan (the closure never
    // creates new partitions, it only unions existing ones).
    BitSet AllParts;
    for (unsigned Id = 0, E = numPartitions(); Id != E; ++Id)
      AllParts.insert(Id);
    for (Method *M : Reachable) {
      Mod[M] = AllParts;
      Ref[M] = AllParts;
    }
    Report.Status = StageStatus::Degraded;
    Report.Reason = Gate.reason();
    Report.Fallback = "all-partitions mod/ref";
  }
  Report.StepsUsed = Gate.used();
  Report.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
}

const BitSet &ModRefResult::modOf(const Method *M) const {
  auto It = Mod.find(M);
  return It == Mod.end() ? EmptySet : It->second;
}

const BitSet &ModRefResult::refOf(const Method *M) const {
  auto It = Ref.find(M);
  return It == Ref.end() ? EmptySet : It->second;
}

std::string ModRefResult::partitionName(unsigned Id, const Program &P) const {
  const HeapPartition &Part = Partitions[Id];
  switch (Part.K) {
  case HeapPartition::Kind::Field:
    return "obj" + std::to_string(Part.Obj) + "." +
           P.strings().str(Part.F->name());
  case HeapPartition::Kind::ArrayElem:
    return "obj" + std::to_string(Part.Obj) + "[*]";
  case HeapPartition::Kind::Static:
    return P.strings().str(Part.F->owner()->name()) + "." +
           P.strings().str(Part.F->name());
  }
  return "?";
}
