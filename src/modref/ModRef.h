//===-- ModRef.h - Interprocedural mod-ref analysis -------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transitive mod/ref sets over heap partitions (paper Section 5.3,
/// following Ryder et al. [24]): for each method, which heap locations
/// it (or any transitive callee) may write or read. The context-
/// sensitive SDG builder uses these sets to introduce heap formal-in /
/// formal-out parameters, "using the same heap partitions used by the
/// preliminary pointer analysis" — a partition is an (abstract object,
/// field) pair, an abstract array's element storage, or a static
/// field.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_MODREF_MODREF_H
#define THINSLICER_MODREF_MODREF_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "pta/PointsTo.h"
#include "support/BitSet.h"
#include "support/Budget.h"
#include "support/Serialize.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsl {

class ThreadPool;

/// One heap partition.
struct HeapPartition {
  enum class Kind { Field, ArrayElem, Static } K;
  unsigned Obj;   ///< Abstract object id (Field/ArrayElem).
  const Field *F; ///< Field (Field/Static).
  unsigned Id;
};

/// Mod/ref facts for every reachable method.
class ModRefResult {
public:
  /// Runs the analysis. When \p Budget is exhausted mid-closure, the
  /// result degrades soundly: every reachable method's mod and ref
  /// sets become the set of all interned partitions.
  ///
  /// The transitive closure runs as bottom-up waves over the SCC
  /// condensation of the method-level call graph: all members of an
  /// SCC call each other transitively, so they share one transitive
  /// mod/ref set — the union of the members' direct effects and the
  /// callee SCCs' sets. SCCs of equal condensation depth are
  /// independent; \p Pool, when non-null, fans each wave across its
  /// workers. The result is the unique least fixpoint either way, so
  /// it is byte-identical for every pool size including none.
  ModRefResult(const Program &P, const PointsToResult &PTA,
               const AnalysisBudget *Budget = nullptr,
               ThreadPool *Pool = nullptr);

  unsigned numPartitions() const {
    return static_cast<unsigned>(Partitions.size());
  }
  const HeapPartition &partition(unsigned Id) const { return Partitions[Id]; }

  /// Heap partitions the method or its transitive callees may write.
  const BitSet &modOf(const Method *M) const;
  /// Heap partitions the method or its transitive callees may read.
  const BitSet &refOf(const Method *M) const;

  /// Partitions a single heap access (Load/Store/ArrayLoad/ArrayStore)
  /// may touch, per the points-to sets of its base.
  BitSet partitionsOf(const Instr *I) const;

  /// Human-readable partition label for debugging and tests.
  std::string partitionName(unsigned Id, const Program &P) const;

  /// Budget status of the closure: Complete, or Degraded with the
  /// all-partitions fallback.
  const StageReport &report() const { return Report; }

  /// Incremental recompute after a points-to update: re-scans direct
  /// effects only for \p AffectedMethods (and newly reachable
  /// methods), reuses the cached direct sets of everything else, and
  /// re-runs the (cheap) transitive closure over the current call
  /// graph. Partitions first seen here intern at the end of the id
  /// space, so ids can be permuted relative to a cold run — clients
  /// compare partition content, never raw ids. Returns false without
  /// a usable result (previous run degraded, or an injected
  /// "modref.update" fault fired): the caller must rebuild cold.
  bool updateIncremental(const std::vector<Method *> &AffectedMethods);

  /// Serializes the result: report, partition table (in id order),
  /// and the transitive and direct per-method rows keyed by dense
  /// method id (sorted, so the encoding is canonical).
  void encode(ByteWriter &W) const;

  /// Rebuilds a result from \p R without running the analysis. Field
  /// pointers in the partition table resolve through \p P; \p PTA
  /// must be the points-to result decoded from the same snapshot
  /// (partitionsOf and updateIncremental consult it). Throws
  /// SerializeError on malformed input.
  static std::unique_ptr<ModRefResult>
  decode(ByteReader &R, const Program &P, const PointsToResult &PTA);

private:
  /// Decode-side tag constructor: binds the PTA reference and leaves
  /// every table empty for decode() to fill.
  struct DecodeTag {};
  ModRefResult(DecodeTag, const PointsToResult &PTA) : PTA(PTA) {}

  unsigned getPartition(HeapPartition::Kind K, unsigned Obj, const Field *F);
  void collectDirect(const Method *M, const PointsToResult &PTA,
                     BitSet &Mod, BitSet &Ref);
  /// SCC-condensation closure over the current call graph: fills
  /// Mod/Ref from the per-method direct sets unless \p Gate trips.
  void closeOverCallGraph(const std::vector<Method *> &Reachable,
                          const std::vector<BitSet> &DirectMod,
                          const std::vector<BitSet> &DirectRef,
                          BudgetGate &Gate, ThreadPool *Pool);

  std::vector<HeapPartition> Partitions;
  std::unordered_map<uint64_t, unsigned> PartIndex;
  // Rows are keyed by dense method id, not Method*: a decoded result
  // replays into identical map state, and no raw pointer is part of
  // any serialized layer's identity (see ir/Program.h).
  std::unordered_map<uint32_t, BitSet> Mod, Ref;
  /// Per-method direct (non-transitive) effects, kept so the
  /// incremental path can re-scan only affected methods.
  std::unordered_map<uint32_t, BitSet> DirectModM, DirectRefM;
  const PointsToResult &PTA;
  StageReport Report{"modref", StageStatus::Complete, "", "", 0, 0};
  BitSet EmptySet;
};

} // namespace tsl

#endif // THINSLICER_MODREF_MODREF_H
