//===-- Protocol.cpp - thinsliced wire protocol ---------------------------===//

#include "service/Protocol.h"

#include "support/Serialize.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace tsl;

const char *tsl::serviceStatusName(ServiceStatus S) {
  switch (S) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::Error:
    return "error";
  case ServiceStatus::BadRequest:
    return "bad-request";
  case ServiceStatus::Degraded:
    return "degraded";
  case ServiceStatus::Internal:
    return "internal";
  case ServiceStatus::Retry:
    return "retry";
  }
  return "?";
}

namespace {

/// Strict bool byte: anything but 0/1 is a malformed frame.
bool readFlag(ByteReader &R, bool &Out) {
  uint8_t V = R.u8();
  if (V > 1)
    return false;
  Out = V != 0;
  return true;
}

Status badFrame(const std::string &What) {
  return Status(StatusCode::InvalidArgument, "malformed frame: " + What);
}

} // namespace

std::vector<uint8_t> tsl::encodeRequest(const ServiceRequest &R) {
  ByteWriter W;
  W.u8(ServiceProtocolVersion);
  W.u8(static_cast<uint8_t>(R.Type));
  switch (R.Type) {
  case ServiceMsg::LoadSource:
  case ServiceMsg::LoadSnapshot:
    W.str(R.Source);
    W.vu32(R.LineOffset);
    W.u8(R.ContextSensitive ? 1 : 0);
    W.u8(R.Incremental ? 1 : 0);
    if (R.Type == ServiceMsg::LoadSnapshot)
      W.str(R.Path);
    break;
  case ServiceMsg::Slice:
    W.str(R.SessionId);
    W.vu32(R.Lines.empty() ? 0 : R.Lines.front());
    W.u8(R.Mode == SliceMode::Traditional ? 1 : 0);
    break;
  case ServiceMsg::BatchSlice:
    W.str(R.SessionId);
    W.u8(R.Mode == SliceMode::Traditional ? 1 : 0);
    W.vu32(static_cast<uint32_t>(R.Lines.size()));
    for (uint32_t L : R.Lines)
      W.vu32(L);
    break;
  case ServiceMsg::Edit:
    W.str(R.SessionId);
    W.str(R.Source);
    break;
  case ServiceMsg::Stats:
    W.str(R.SessionId);
    break;
  case ServiceMsg::Ping:
    W.vu32(R.DelayMs);
    break;
  case ServiceMsg::Shutdown:
    break;
  }
  return W.buffer();
}

Status tsl::decodeRequest(const std::vector<uint8_t> &Payload,
                          ServiceRequest &Out) {
  try {
    ByteReader R(Payload);
    uint8_t Version = R.u8();
    if (Version != ServiceProtocolVersion)
      return badFrame("protocol version " + std::to_string(Version) +
                      " (expected " + std::to_string(ServiceProtocolVersion) +
                      ")");
    uint8_t TypeByte = R.u8();
    if (TypeByte < static_cast<uint8_t>(ServiceMsg::LoadSource) ||
        TypeByte > static_cast<uint8_t>(ServiceMsg::Shutdown))
      return badFrame("unknown message type " + std::to_string(TypeByte));
    ServiceRequest Req;
    Req.Type = static_cast<ServiceMsg>(TypeByte);
    bool FlagOk = true;
    switch (Req.Type) {
    case ServiceMsg::LoadSource:
    case ServiceMsg::LoadSnapshot: {
      Req.Source = R.str();
      Req.LineOffset = R.vu32();
      FlagOk = readFlag(R, Req.ContextSensitive) &&
               readFlag(R, Req.Incremental);
      if (Req.Type == ServiceMsg::LoadSnapshot)
        Req.Path = R.str();
      break;
    }
    case ServiceMsg::Slice: {
      Req.SessionId = R.str();
      Req.Lines.push_back(R.vu32());
      uint8_t M = R.u8();
      if (M > 1)
        FlagOk = false;
      Req.Mode = M ? SliceMode::Traditional : SliceMode::Thin;
      break;
    }
    case ServiceMsg::BatchSlice: {
      Req.SessionId = R.str();
      uint8_t M = R.u8();
      if (M > 1)
        FlagOk = false;
      Req.Mode = M ? SliceMode::Traditional : SliceMode::Thin;
      uint32_t N = R.vu32();
      if (N == 0 || N > 100000)
        return badFrame("batch of " + std::to_string(N) + " seeds");
      Req.Lines.reserve(N);
      for (uint32_t I = 0; I != N; ++I)
        Req.Lines.push_back(R.vu32());
      break;
    }
    case ServiceMsg::Edit:
      Req.SessionId = R.str();
      Req.Source = R.str();
      break;
    case ServiceMsg::Stats:
      Req.SessionId = R.str();
      break;
    case ServiceMsg::Ping:
      Req.DelayMs = R.vu32();
      break;
    case ServiceMsg::Shutdown:
      break;
    }
    if (!FlagOk)
      return badFrame("non-boolean flag byte");
    if (!R.atEnd())
      return badFrame(std::to_string(R.remaining()) +
                      " trailing bytes after last field");
    Out = std::move(Req);
    return Status::ok();
  } catch (const SerializeError &E) {
    return badFrame(E.what());
  }
}

std::vector<uint8_t> tsl::encodeResponse(const ServiceResponse &R) {
  ByteWriter W;
  W.u8(ServiceProtocolVersion);
  W.u8(static_cast<uint8_t>(R.Code));
  W.str(R.Body);
  W.str(R.Detail);
  return W.buffer();
}

Status tsl::decodeResponse(const std::vector<uint8_t> &Payload,
                           ServiceResponse &Out) {
  try {
    ByteReader R(Payload);
    uint8_t Version = R.u8();
    if (Version != ServiceProtocolVersion)
      return badFrame("protocol version " + std::to_string(Version));
    uint8_t Code = R.u8();
    switch (static_cast<ServiceStatus>(Code)) {
    case ServiceStatus::Ok:
    case ServiceStatus::Error:
    case ServiceStatus::BadRequest:
    case ServiceStatus::Degraded:
    case ServiceStatus::Internal:
    case ServiceStatus::Retry:
      break;
    default:
      return badFrame("unknown status code " + std::to_string(Code));
    }
    ServiceResponse Resp;
    Resp.Code = static_cast<ServiceStatus>(Code);
    Resp.Body = R.str();
    Resp.Detail = R.str();
    if (!R.atEnd())
      return badFrame("trailing bytes after response");
    Out = std::move(Resp);
    return Status::ok();
  } catch (const SerializeError &E) {
    return badFrame(E.what());
  }
}

//===----------------------------------------------------------------------===//
// Socket framing
//===----------------------------------------------------------------------===//

namespace {

/// recv() exactly \p N bytes. Returns N on success, 0 on clean EOF at
/// the first byte, -1 on error or mid-buffer EOF.
ssize_t recvExact(int Fd, void *Buf, std::size_t N) {
  uint8_t *P = static_cast<uint8_t *>(Buf);
  std::size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, P + Got, N - Got, 0);
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += static_cast<std::size_t>(R);
  }
  return static_cast<ssize_t>(Got);
}

bool sendAll(int Fd, const void *Buf, std::size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  std::size_t Sent = 0;
  while (Sent < N) {
    ssize_t R = ::send(Fd, P + Sent, N - Sent, MSG_NOSIGNAL);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<std::size_t>(R);
  }
  return true;
}

} // namespace

FrameRead tsl::readFrame(int Fd, uint32_t MaxBytes) {
  FrameRead F;
  uint8_t Header[4];
  ssize_t R = recvExact(Fd, Header, sizeof(Header));
  if (R == 0) {
    F.K = FrameRead::Eof;
    return F;
  }
  if (R < 0) {
    F.K = FrameRead::Error;
    F.Err = "truncated frame header";
    return F;
  }
  uint32_t Len = 0;
  for (int I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(Header[I]) << (8 * I);
  if (Len == 0) {
    F.K = FrameRead::Error;
    F.Err = "empty frame";
    return F;
  }
  if (Len > MaxBytes) {
    F.K = FrameRead::TooLarge;
    F.ClaimedLen = Len;
    return F;
  }
  F.Payload.resize(Len);
  if (recvExact(Fd, F.Payload.data(), Len) != static_cast<ssize_t>(Len)) {
    F.K = FrameRead::Error;
    F.Err = "truncated frame payload (" + std::to_string(Len) +
            " bytes claimed)";
    F.Payload.clear();
    return F;
  }
  F.K = FrameRead::Ok;
  return F;
}

Status tsl::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.empty() || Payload.size() > MaxServiceFrameBytes)
    return Status(StatusCode::InvalidArgument,
                  "refusing to write a frame of " +
                      std::to_string(Payload.size()) + " bytes");
  uint8_t Header[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I)
    Header[I] = static_cast<uint8_t>(Len >> (8 * I));
  if (!sendAll(Fd, Header, sizeof(Header)) ||
      !sendAll(Fd, Payload.data(), Payload.size()))
    return Status(StatusCode::Internal,
                  std::string("socket write failed: ") + strerror(errno));
  return Status::ok();
}
