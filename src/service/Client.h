//===-- Client.h - thinsliced client --------------------------- -*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the thinsliced daemon: connects to the Unix
/// socket, frames requests, decodes responses. Used by `thinslice
/// --connect` and by the service tests (which also exercise the wire
/// through sendRaw, bypassing the codec to inject malformed frames).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SERVICE_CLIENT_H
#define THINSLICER_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <string>
#include <vector>

namespace tsl {

/// One connection to a thinsliced daemon. Not thread-safe; use one
/// client per thread (the daemon serves them concurrently).
class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  Status connect(const std::string &SocketPath);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Round-trips one request. A transport failure (daemon gone,
  /// truncated response) comes back as a non-Ok Status; protocol-level
  /// failures arrive as the response's own code.
  Status call(const ServiceRequest &Req, ServiceResponse &Resp);

  //===------------------------------------------------------------------===//
  // Convenience wrappers (all call())
  //===------------------------------------------------------------------===//

  Status loadSource(const std::string &Source, bool ContextSensitive,
                    uint32_t LineOffset, bool Incremental,
                    ServiceResponse &Resp);
  Status loadSnapshot(const std::string &Source, const std::string &Path,
                      bool ContextSensitive, uint32_t LineOffset,
                      ServiceResponse &Resp);
  Status slice(const std::string &SessionId, uint32_t Line, SliceMode Mode,
               ServiceResponse &Resp);
  Status batchSlice(const std::string &SessionId,
                    const std::vector<uint32_t> &Lines, SliceMode Mode,
                    ServiceResponse &Resp);
  Status edit(const std::string &SessionId, const std::string &Source,
              ServiceResponse &Resp);
  Status stats(const std::string &SessionId, ServiceResponse &Resp);
  Status ping(uint32_t DelayMs, ServiceResponse &Resp);
  Status shutdown(ServiceResponse &Resp);

  //===------------------------------------------------------------------===//
  // Wire-level escape hatches (protocol tests)
  //===------------------------------------------------------------------===//

  /// Writes \p Bytes verbatim — no framing, no validation. The tests'
  /// way of sending malformed headers and truncated frames.
  Status sendRaw(const std::vector<uint8_t> &Bytes);

  /// Reads one framed response off the socket.
  FrameRead readRaw();

  int fd() const { return Fd; }

private:
  int Fd = -1;
};

} // namespace tsl

#endif // THINSLICER_SERVICE_CLIENT_H
