//===-- Client.cpp - thinsliced client ------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tsl;

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status ServiceClient::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr{};
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Status(StatusCode::InvalidArgument,
                  "bad socket path '" + SocketPath + "'");
  Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Status(StatusCode::Internal,
                  std::string("socket: ") + strerror(errno));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status S(StatusCode::NotFound, "connect " + SocketPath + ": " +
                                       strerror(errno));
    close();
    return S;
  }
  return Status::ok();
}

Status ServiceClient::call(const ServiceRequest &Req, ServiceResponse &Resp) {
  if (Fd < 0)
    return Status(StatusCode::InvalidArgument, "not connected");
  Status W = writeFrame(Fd, encodeRequest(Req));
  if (!W.isOk())
    return W;
  FrameRead F = readFrame(Fd);
  if (F.K == FrameRead::Eof)
    return Status(StatusCode::Internal, "daemon closed the connection");
  if (F.K != FrameRead::Ok)
    return Status(StatusCode::Internal, "bad response frame: " + F.Err);
  return decodeResponse(F.Payload, Resp);
}

Status ServiceClient::loadSource(const std::string &Source,
                                 bool ContextSensitive, uint32_t LineOffset,
                                 bool Incremental, ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::LoadSource;
  R.Source = Source;
  R.ContextSensitive = ContextSensitive;
  R.LineOffset = LineOffset;
  R.Incremental = Incremental;
  return call(R, Resp);
}

Status ServiceClient::loadSnapshot(const std::string &Source,
                                   const std::string &Path,
                                   bool ContextSensitive, uint32_t LineOffset,
                                   ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::LoadSnapshot;
  R.Source = Source;
  R.Path = Path;
  R.ContextSensitive = ContextSensitive;
  R.LineOffset = LineOffset;
  return call(R, Resp);
}

Status ServiceClient::slice(const std::string &SessionId, uint32_t Line,
                            SliceMode Mode, ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::Slice;
  R.SessionId = SessionId;
  R.Lines.push_back(Line);
  R.Mode = Mode;
  return call(R, Resp);
}

Status ServiceClient::batchSlice(const std::string &SessionId,
                                 const std::vector<uint32_t> &Lines,
                                 SliceMode Mode, ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::BatchSlice;
  R.SessionId = SessionId;
  R.Lines = Lines;
  R.Mode = Mode;
  return call(R, Resp);
}

Status ServiceClient::edit(const std::string &SessionId,
                           const std::string &Source, ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::Edit;
  R.SessionId = SessionId;
  R.Source = Source;
  return call(R, Resp);
}

Status ServiceClient::stats(const std::string &SessionId,
                            ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::Stats;
  R.SessionId = SessionId;
  return call(R, Resp);
}

Status ServiceClient::ping(uint32_t DelayMs, ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::Ping;
  R.DelayMs = DelayMs;
  return call(R, Resp);
}

Status ServiceClient::shutdown(ServiceResponse &Resp) {
  ServiceRequest R;
  R.Type = ServiceMsg::Shutdown;
  return call(R, Resp);
}

Status ServiceClient::sendRaw(const std::vector<uint8_t> &Bytes) {
  if (Fd < 0)
    return Status(StatusCode::InvalidArgument, "not connected");
  std::size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t R = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return Status(StatusCode::Internal,
                    std::string("send: ") + strerror(errno));
    }
    Sent += static_cast<std::size_t>(R);
  }
  return Status::ok();
}

FrameRead ServiceClient::readRaw() { return readFrame(Fd); }
