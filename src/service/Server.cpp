//===-- Server.cpp - The thinsliced slice service -------------------------===//

#include "service/Server.h"

#include "slicer/Engine.h"
#include "slicer/Report.h"
#include "slicer/Tabulation.h"
#include "support/Budget.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tsl;

SliceServer::SliceServer(ServerOptions Opts)
    : O(std::move(Opts)), Pool(O.Threads),
      Registry(SessionRegistry::Options{O.MaxSessions, O.AnalysisThreads,
                                        O.CacheDir}) {}

SliceServer::~SliceServer() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int Fd : WakePipe)
    if (Fd >= 0)
      ::close(Fd);
}

Status SliceServer::listen() {
  sockaddr_un Addr{};
  if (O.SocketPath.empty() ||
      O.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status(StatusCode::InvalidArgument,
                  "socket path empty or longer than " +
                      std::to_string(sizeof(Addr.sun_path) - 1) +
                      " bytes: '" + O.SocketPath + "'");
  if (::pipe(WakePipe) != 0)
    return Status(StatusCode::Internal,
                  std::string("pipe: ") + strerror(errno));
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Status(StatusCode::Internal,
                  std::string("socket: ") + strerror(errno));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, O.SocketPath.c_str(), O.SocketPath.size() + 1);
  // A previous daemon's stale socket file would make bind fail
  // forever; replacing it is the conventional daemon behavior.
  ::unlink(O.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return Status(StatusCode::Internal, "bind " + O.SocketPath + ": " +
                                            strerror(errno));
  if (::listen(ListenFd, 128) != 0)
    return Status(StatusCode::Internal,
                  std::string("listen: ") + strerror(errno));
  return Status::ok();
}

void SliceServer::requestShutdown() {
  // One byte on the self-pipe; run() observes it at its next poll.
  // write() is async-signal-safe, so signal handlers can use the same
  // mechanism directly through wakeFd().
  char B = 1;
  if (WakePipe[1] >= 0)
    (void)!::write(WakePipe[1], &B, 1);
}

void SliceServer::reapFinishedConnections() {
  std::lock_guard<std::mutex> L(ConnMu);
  for (auto It = Conns.begin(); It != Conns.end();) {
    if ((*It)->Done.load(std::memory_order_acquire)) {
      (*It)->Thread.join();
      It = Conns.erase(It);
    } else {
      ++It;
    }
  }
}

int SliceServer::run() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int R = ::poll(Fds, 2, -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents) // Drain requested.
      break;
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Client = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Client < 0)
      continue;
    Stats.Accepted.fetch_add(1, std::memory_order_relaxed);
    reapFinishedConnections();
    auto C = std::make_unique<Conn>();
    C->Fd = Client;
    Conn *Raw = C.get();
    {
      std::lock_guard<std::mutex> L(ConnMu);
      Conns.push_back(std::move(C));
    }
    Raw->Thread = std::thread([this, Raw] { connectionLoop(*Raw); });
  }

  // Graceful drain: stop accepting, unblock idle readers, let busy
  // ones finish their in-flight request and flush its response.
  Draining.store(true, std::memory_order_release);
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(O.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto &C : Conns)
      ::shutdown(C->Fd, SHUT_RD);
  }
  for (;;) {
    std::unique_ptr<Conn> C;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      if (Conns.empty())
        break;
      C = std::move(Conns.front());
      Conns.pop_front();
    }
    C->Thread.join();
  }
  return 0;
}

void SliceServer::connectionLoop(Conn &C) {
  auto Respond = [&C](const ServiceResponse &Resp) {
    return writeFrame(C.Fd, encodeResponse(Resp)).isOk();
  };

  for (;;) {
    FrameRead F = readFrame(C.Fd);
    if (F.K == FrameRead::Eof)
      break;
    if (F.K == FrameRead::Error) {
      // Truncated frame or mid-request disconnect: the stream is not
      // at a frame boundary any more, so the only safe move is to
      // hang up. The daemon itself stays healthy.
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (F.K == FrameRead::TooLarge) {
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      (void)Respond({ServiceStatus::BadRequest, "",
                     "frame of " + std::to_string(F.ClaimedLen) +
                         " bytes exceeds the " +
                         std::to_string(MaxServiceFrameBytes) +
                         "-byte cap"});
      break; // The oversized payload was never read: desynced.
    }

    ServiceRequest Req;
    Status D = decodeRequest(F.Payload, Req);
    if (!D.isOk()) {
      // The frame boundary itself was intact, so the connection can
      // keep going after rejecting the bad payload.
      Stats.BadFrames.fetch_add(1, std::memory_order_relaxed);
      if (!Respond({ServiceStatus::BadRequest, "", D.message()}))
        break;
      continue;
    }

    Stats.Requests.fetch_add(1, std::memory_order_relaxed);

    if (Req.Type == ServiceMsg::Shutdown) {
      // Acknowledge first (the client deserves to see the drain
      // happen), then trigger the same path as SIGTERM.
      (void)Respond({ServiceStatus::Ok, "draining", ""});
      requestShutdown();
      continue;
    }

    if (Draining.load(std::memory_order_acquire)) {
      if (!Respond({ServiceStatus::Retry, "", "server is draining"}))
        break;
      continue;
    }

    // Admission control: the bounded "queue" is the in-flight count.
    // Overflow answers RETRY immediately — no request is ever parked
    // in an unbounded buffer waiting for capacity.
    std::size_t Current = InFlight.fetch_add(1, std::memory_order_acq_rel);
    if (Current >= O.MaxQueue) {
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
      Stats.Retries.fetch_add(1, std::memory_order_relaxed);
      if (!Respond({ServiceStatus::Retry, "",
                    "server overloaded (" + std::to_string(Current) +
                        " requests in flight, bound " +
                        std::to_string(O.MaxQueue) + ")"}))
        break;
      continue;
    }

    ServiceResponse Resp;
    try {
      Resp = Pool.submit([this, &Req] { return handle(Req); }).get();
    } catch (const std::exception &E) {
      Resp = {ServiceStatus::Internal, "", E.what()};
    } catch (...) {
      Resp = {ServiceStatus::Internal, "", "unknown exception"};
    }
    InFlight.fetch_sub(1, std::memory_order_acq_rel);

    if (!Respond(Resp))
      break; // Client vanished mid-response; nothing left to do.
  }

  ::close(C.Fd);
  C.Done.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Request handlers (run on the shared pool)
//===----------------------------------------------------------------------===//

ServiceResponse SliceServer::handle(const ServiceRequest &Req) {
  switch (Req.Type) {
  case ServiceMsg::LoadSource:
  case ServiceMsg::LoadSnapshot:
    return handleLoad(Req);
  case ServiceMsg::Slice:
    return handleSlice(Req);
  case ServiceMsg::BatchSlice:
    return handleBatchSlice(Req);
  case ServiceMsg::Edit:
    return handleEdit(Req);
  case ServiceMsg::Stats:
    return handleStats(Req);
  case ServiceMsg::Ping:
    if (Req.DelayMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(Req.DelayMs));
    return {ServiceStatus::Ok, "pong", ""};
  case ServiceMsg::Shutdown:
    break; // Handled on the connection thread.
  }
  return {ServiceStatus::BadRequest, "", "unhandled message type"};
}

ServiceResponse SliceServer::handleLoad(const ServiceRequest &Req) {
  if (Req.Source.empty())
    return {ServiceStatus::BadRequest, "", "empty source"};
  std::string Note;
  auto E = Registry.acquire(Req.Source, Req.ContextSensitive,
                            Req.LineOffset, Req.Incremental,
                            Req.Type == ServiceMsg::LoadSnapshot ? Req.Path
                                                                 : "",
                            Note);
  std::shared_lock<std::shared_mutex> L(E->Mu);
  if (!E->Prog)
    return {ServiceStatus::Error, E->Id, E->CompileErrors};
  if (!E->Graph)
    return {ServiceStatus::Internal, E->Id, E->StageError};
  return {ServiceStatus::Ok, E->Id, Note};
}

namespace {

/// Per-request governance: a budget armed from the daemon option, or
/// null for ungoverned requests (the zero-overhead default).
struct RequestBudget {
  explicit RequestBudget(uint64_t Ms) {
    if (Ms) {
      Budget.BudgetMs = Ms;
      Budget.start();
      B = &Budget;
    }
  }
  AnalysisBudget Budget;
  const AnalysisBudget *B = nullptr;
};

/// Shared entry validation: null when usable, a response otherwise.
/// Caller must hold the entry's lock (shared suffices).
bool entryUsable(const WarmSession &E, ServiceResponse &Resp) {
  if (!E.Prog) {
    Resp = {ServiceStatus::Error, "",
            E.CompileErrors.empty() ? "program does not compile"
                                    : E.CompileErrors};
    return false;
  }
  if (!E.Graph) {
    Resp = {ServiceStatus::Internal, "", E.StageError};
    return false;
  }
  return true;
}

} // namespace

ServiceResponse SliceServer::handleSlice(const ServiceRequest &Req) {
  auto E = Registry.find(Req.SessionId);
  if (!E)
    return {ServiceStatus::BadRequest, "",
            "unknown session '" + Req.SessionId + "' (load-source first)"};

  // Readers share the session: concurrent slices run in parallel over
  // the immutable finalized SDG while an edit waits for exclusivity.
  std::shared_lock<std::shared_mutex> L(E->Mu);
  ServiceResponse Bad;
  if (!entryUsable(*E, Bad))
    return Bad;

  unsigned UserLine = Req.Lines.empty() ? 0 : Req.Lines.front();
  const Instr *Seed = seedAtLine(*E->Prog, UserLine + E->LineOffset);
  if (!Seed)
    return {ServiceStatus::BadRequest, "",
            noStatementMessage(*E->Prog, UserLine, E->LineOffset)};

  RequestBudget RB(O.RequestBudgetMs);
  SliceResult Slice(nullptr, BitSet());
  if (E->ContextSensitive) {
    // The session's SummaryCache is thread-safe, so shared-lock
    // readers may consult (and populate) it concurrently; summaries
    // depend only on (graph epoch, mode), which the exclusive edit
    // path bumps.
    TabulationSlicer Tab(*E->Graph, Req.Mode, RB.B, &E->S->summaries());
    Slice = Tab.slice(Seed);
  } else {
    Slice = sliceBackward(*E->Graph, Seed, Req.Mode, RB.B);
  }

  ServiceResponse Resp;
  Resp.Code = Slice.complete() ? ServiceStatus::Ok : ServiceStatus::Degraded;
  Resp.Body = renderSliceReport(
      Slice, sliceKindName(Req.Mode, E->ContextSensitive), UserLine,
      E->LineOffset);
  Resp.Detail = Slice.complete() ? "" : Slice.degradedReason();
  return Resp;
}

ServiceResponse SliceServer::handleBatchSlice(const ServiceRequest &Req) {
  auto E = Registry.find(Req.SessionId);
  if (!E)
    return {ServiceStatus::BadRequest, "",
            "unknown session '" + Req.SessionId + "' (load-source first)"};

  std::shared_lock<std::shared_mutex> L(E->Mu);
  ServiceResponse Bad;
  if (!entryUsable(*E, Bad))
    return Bad;

  std::vector<const Instr *> Seeds;
  Seeds.reserve(Req.Lines.size());
  for (uint32_t UserLine : Req.Lines) {
    const Instr *Seed = seedAtLine(*E->Prog, UserLine + E->LineOffset);
    if (!Seed)
      return {ServiceStatus::BadRequest, "",
              noStatementMessage(*E->Prog, UserLine, E->LineOffset)};
    Seeds.push_back(Seed);
  }

  RequestBudget RB(O.RequestBudgetMs);
  // A request-local engine over the shared immutable graph: batches
  // from concurrent clients stay independent (each runs inline on its
  // own pool lane; the request fan-out IS the parallelism).
  SliceEngine Engine(*E->Graph, nullptr);
  BatchOptions BO;
  BO.Mode = Req.Mode;
  BO.ContextSensitive = E->ContextSensitive;
  BO.Jobs = 1;
  BO.Budget = RB.B;
  BO.Summaries = E->ContextSensitive ? &E->S->summaries() : nullptr;
  std::vector<SliceResult> Results = Engine.sliceBackwardBatch(Seeds, BO);

  ServiceResponse Resp;
  const char *What = sliceKindName(Req.Mode, E->ContextSensitive);
  for (std::size_t I = 0; I != Results.size(); ++I) {
    Resp.Body += "=== seed line " + std::to_string(Req.Lines[I]) + " ===\n";
    Resp.Body += renderSliceReport(Results[I], What, Req.Lines[I],
                                   E->LineOffset);
    if (!Results[I].complete() && Resp.Code == ServiceStatus::Ok) {
      Resp.Code = ServiceStatus::Degraded;
      Resp.Detail = Results[I].degradedReason();
    }
  }
  return Resp;
}

ServiceResponse SliceServer::handleEdit(const ServiceRequest &Req) {
  auto E = Registry.find(Req.SessionId);
  if (!E)
    return {ServiceStatus::BadRequest, "",
            "unknown session '" + Req.SessionId + "' (load-source first)"};
  if (Req.Source.empty())
    return {ServiceStatus::BadRequest, "", "empty source"};

  // Writers are exclusive: every in-flight slice finishes before the
  // artifacts move, and no slice starts until the edit re-warmed them.
  std::unique_lock<std::shared_mutex> L(E->Mu);
  uint64_t AppliedBefore = E->S->incrementalStats().Applied;
  E->S->setSource(Req.Source);
  SessionRegistry::refreshWarmPointers(*E);
  if (!E->Prog)
    return {ServiceStatus::Error, E->Id, E->CompileErrors};
  if (!E->Graph)
    return {ServiceStatus::Internal, E->Id, E->StageError};
  bool Incremental = E->S->incrementalStats().Applied > AppliedBefore;
  return {ServiceStatus::Ok, E->Id,
          Incremental ? "incremental" : "cold rebuild"};
}

ServiceResponse SliceServer::handleStats(const ServiceRequest &Req) {
  auto E = Registry.find(Req.SessionId);
  if (!E)
    return {ServiceStatus::BadRequest, "",
            "unknown session '" + Req.SessionId + "' (load-source first)"};

  // Sampled before taking the entry lock: size() takes the registry
  // map mutex, and acquire() locks fresh entries while holding it —
  // holding the entry lock across size() would invert that order.
  const std::size_t WarmSessions = Registry.size();

  // statsString() memoizes into the session (mutable members), so
  // stats is a writer despite being read-only in spirit.
  std::unique_lock<std::shared_mutex> L(E->Mu);
  std::string Body = E->S ? E->S->statsString() : "";
  Body += "server: " +
          std::to_string(Stats.Requests.load(std::memory_order_relaxed)) +
          " requests, " +
          std::to_string(Stats.Accepted.load(std::memory_order_relaxed)) +
          " connections, " +
          std::to_string(Stats.Retries.load(std::memory_order_relaxed)) +
          " retries, " +
          std::to_string(Stats.BadFrames.load(std::memory_order_relaxed)) +
          " bad frames, " + std::to_string(WarmSessions) +
          " warm sessions\n";
  return {ServiceStatus::Ok, Body, ""};
}
