//===-- Registry.cpp - Warm AnalysisSession registry ----------------------===//

#include "service/Registry.h"

using namespace tsl;

namespace {

uint64_t fnv1a(const std::string &S, uint64_t H = 1469598103934665603ull) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex64(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[static_cast<std::size_t>(I)] = Digits[V & 0xF];
  return S;
}

/// The diagnostics rendering of a compile failure, one line per
/// diagnostic, user-file line numbers (the runtime prefix subtracted)
/// — the same shape the CLI prints, with "<source>" for the file.
std::string renderDiagnostics(const DiagnosticEngine &Diag,
                              uint32_t LineOffset) {
  std::string Out;
  for (const Diagnostic &D : Diag.diagnostics()) {
    SourceLoc Loc = D.Loc;
    if (Loc.Line > LineOffset)
      Loc.Line -= LineOffset;
    Out += "<source>:" + Loc.str() + ": error: " + D.Message + "\n";
  }
  if (Out.empty())
    Out = "<source>: error: compilation failed\n";
  return Out;
}

} // namespace

std::string SessionRegistry::workloadDigest(const std::string &Source,
                                            bool CS, uint32_t LineOffset) {
  uint64_t H = fnv1a(Source);
  H = fnv1a(CS ? "cs" : "ci", H);
  H = fnv1a(std::to_string(LineOffset), H);
  return hex64(H);
}

void SessionRegistry::refreshWarmPointers(WarmSession &E) {
  E.Prog = E.S->program();
  E.Graph = nullptr;
  E.CompileErrors.clear();
  E.StageError.clear();
  if (!E.Prog) {
    E.CompileErrors =
        renderDiagnostics(E.S->diagnostics(), E.LineOffset);
    return;
  }
  E.Graph = E.S->sdg();
  if (!E.Graph)
    E.StageError = E.S->lastError().str();
}

std::shared_ptr<WarmSession>
SessionRegistry::acquire(const std::string &Source, bool CS,
                         uint32_t LineOffset, bool Incremental,
                         const std::string &SnapshotPath,
                         std::string &Note) {
  std::string Id = workloadDigest(Source, CS, LineOffset);

  std::shared_ptr<WarmSession> E;
  bool Fresh = false;
  {
    std::lock_guard<std::mutex> L(MapMu);
    auto It = Map.find(Id);
    if (It != Map.end()) {
      E = It->second;
    } else {
      E = std::make_shared<WarmSession>();
      E->Id = Id;
      E->LineOffset = LineOffset;
      E->ContextSensitive = CS;
      // Hold the entry's exclusive lock BEFORE publishing it: a
      // concurrent request for the same workload finds the entry and
      // blocks on the lock until warm-up finishes, instead of racing
      // the warm-up or duplicating it.
      E->Mu.lock();
      Map.emplace(Id, E);
      Fresh = true;
    }
  }
  E->LastUsed.store(Tick.fetch_add(1) + 1, std::memory_order_relaxed);

  if (!Fresh) {
    // Warmed by us earlier or by a concurrent creator; taking the
    // shared lock waits out any in-flight warm-up.
    std::shared_lock<std::shared_mutex> L(E->Mu);
    Note = "cached";
    return E;
  }

  // Warm up end-to-end under the already-held exclusive lock.
  Note = "cold";
  try {
    E->S = std::make_unique<AnalysisSession>(Source);
    E->S->setIncremental(Incremental);
    E->S->setThreads(O.AnalysisThreads);
    SDGOptions SO;
    SO.ContextSensitive = CS;
    E->S->setSDGOptions(SO);

    bool Warm = false;
    if (!O.CacheDir.empty()) {
      E->S->setCacheDir(O.CacheDir);
      if (E->S->tryLoadFromCacheDir()) {
        Warm = true;
        Note = "warm:cache-dir";
      }
    }
    if (!Warm && !SnapshotPath.empty()) {
      Status L = E->S->loadSnapshot(SnapshotPath);
      if (L.isOk()) {
        Warm = true;
        Note = "warm:snapshot";
      } else {
        Note = "cold (snapshot fallback: " + L.str() + ")";
      }
    }

    refreshWarmPointers(*E);

    // Populate the snapshot cache for the next daemon generation.
    // Best-effort: an unwritable cache dir must not fail the load.
    if (!Warm && !O.CacheDir.empty() && E->Prog && E->Graph)
      (void)E->S->saveToCacheDir();
  } catch (const std::exception &Ex) {
    // Session construction itself must not take the daemon down; the
    // entry records the failure and every query on it reports it.
    E->Prog = nullptr;
    E->Graph = nullptr;
    E->StageError = std::string("session warm-up failed: ") + Ex.what();
  }
  E->Mu.unlock();

  evictOverCap(Id);
  return E;
}

std::shared_ptr<WarmSession> SessionRegistry::find(const std::string &Id) {
  std::lock_guard<std::mutex> L(MapMu);
  auto It = Map.find(Id);
  if (It == Map.end())
    return nullptr;
  It->second->LastUsed.store(Tick.fetch_add(1) + 1,
                             std::memory_order_relaxed);
  return It->second;
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> L(MapMu);
  return Map.size();
}

void SessionRegistry::evictOverCap(const std::string &Keep) {
  std::lock_guard<std::mutex> L(MapMu);
  while (Map.size() > O.MaxSessions) {
    // Oldest entry that is not the one just warmed and not in use.
    // In-flight holders keep the shared_ptr alive; eviction only
    // forgets the registry's reference.
    auto Victim = Map.end();
    uint64_t Oldest = ~0ull;
    for (auto It = Map.begin(); It != Map.end(); ++It) {
      if (It->first == Keep)
        continue;
      uint64_t Used = It->second->LastUsed.load(std::memory_order_relaxed);
      if (Used < Oldest && It->second->Mu.try_lock()) {
        if (Victim != Map.end())
          Victim->second->Mu.unlock();
        Victim = It;
        Oldest = Used;
      }
    }
    if (Victim == Map.end())
      return; // Everything busy; retry on the next insert.
    Victim->second->Mu.unlock();
    Map.erase(Victim);
  }
}

