//===-- Protocol.h - thinsliced wire protocol -------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol the `thinsliced` daemon speaks over its Unix-
/// domain socket. Every message — request or response — travels as one
/// length-prefixed frame:
///
///   u32 little-endian payload length  (rejected above
///                                      MaxServiceFrameBytes)
///   payload bytes                     (ByteWriter encoding, see
///                                      support/Serialize.h)
///
/// A request payload is `u8 protocol-version, u8 message type,
/// type-specific fields`; a response payload is `u8 protocol-version,
/// u8 status, str body, str detail`. The status byte mirrors the
/// thinslice exit-code taxonomy (0 complete, 1 file/compile error,
/// 2 bad request, 3 budget-degraded, 5 internal failure) plus the
/// serving-only code 6 RETRY: the server is overloaded or draining and
/// the client should back off and resend — the backpressure answer
/// that replaces unbounded queueing.
///
/// Decoding is strict: unknown versions, unknown message types,
/// non-boolean flag bytes, and trailing bytes after the last field are
/// all rejected with a Status (never an exception), so a malformed
/// frame can only ever produce a BadRequest response or a closed
/// connection, not a crashed daemon.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SERVICE_PROTOCOL_H
#define THINSLICER_SERVICE_PROTOCOL_H

#include "slicer/Slicer.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tsl {

/// Version byte leading every payload; bump on any wire change.
constexpr uint8_t ServiceProtocolVersion = 1;

/// Hard cap on one frame's payload. Large enough for any real source
/// file or rendered batch, small enough that a hostile length prefix
/// cannot make the daemon allocate unboundedly.
constexpr uint32_t MaxServiceFrameBytes = 8u << 20; // 8 MiB

/// Request message types.
enum class ServiceMsg : uint8_t {
  LoadSource = 1,   ///< Warm (or reuse) a session for a source text.
  LoadSnapshot = 2, ///< LoadSource + warm-start from a snapshot file.
  Slice = 3,        ///< One backward slice on a warm session.
  BatchSlice = 4,   ///< N backward slices, engine-batched.
  Edit = 5,         ///< Replace a session's source (incremental path).
  Stats = 6,        ///< Session + server telemetry.
  Ping = 7,         ///< Health check; optional server-side delay.
  Shutdown = 8,     ///< Ask the daemon to drain and exit.
};

/// Response status codes: the thinslice exit codes, plus Retry.
enum class ServiceStatus : uint8_t {
  Ok = 0,         ///< Complete result.
  Error = 1,      ///< File/compile error (diagnostics in Detail).
  BadRequest = 2, ///< Malformed or unanswerable request.
  Degraded = 3,   ///< Sound but budget-degraded result.
  Internal = 5,   ///< A stage crashed and exhausted its retries.
  Retry = 6,      ///< Overloaded or draining: back off and resend.
};

const char *serviceStatusName(ServiceStatus S);

/// One decoded request. Fields are meaningful per type (see the
/// codec); unused fields stay default.
struct ServiceRequest {
  ServiceMsg Type = ServiceMsg::Ping;
  std::string Source;    ///< LoadSource/LoadSnapshot/Edit: full text.
  std::string Path;      ///< LoadSnapshot: daemon-local snapshot file.
  std::string SessionId; ///< Slice/BatchSlice/Edit/Stats.
  std::vector<uint32_t> Lines; ///< Slice (one) / BatchSlice (many).
  uint32_t LineOffset = 0;     ///< Runtime-prefix lines in Source.
  SliceMode Mode = SliceMode::Thin;
  bool ContextSensitive = false; ///< Session flavor (part of its key).
  bool Incremental = false;      ///< Enable the incremental edit path.
  uint32_t DelayMs = 0;          ///< Ping: server-side busy time.
};

/// One decoded response.
struct ServiceResponse {
  ServiceStatus Code = ServiceStatus::Ok;
  std::string Body;   ///< Rendered result / session id / stats text.
  std::string Detail; ///< Degradation reason, diagnostics, or note.
};

std::vector<uint8_t> encodeRequest(const ServiceRequest &R);
std::vector<uint8_t> encodeResponse(const ServiceResponse &R);

/// Strict decoders: Ok and a fully populated \p Out, or a Status
/// naming the first malformation. Never throw.
Status decodeRequest(const std::vector<uint8_t> &Payload,
                     ServiceRequest &Out);
Status decodeResponse(const std::vector<uint8_t> &Payload,
                      ServiceResponse &Out);

/// Outcome of reading one frame off a socket.
struct FrameRead {
  enum Kind {
    Ok,       ///< Payload holds one complete frame.
    Eof,      ///< Clean close before any header byte.
    TooLarge, ///< Header names a payload above the cap (not read).
    Error,    ///< Truncated frame, empty frame, or a socket error.
  } K = Error;
  std::vector<uint8_t> Payload;
  uint32_t ClaimedLen = 0; ///< TooLarge: the offending length.
  std::string Err;         ///< Error: what went wrong.
};

/// Blocking frame read. Retries EINTR; never throws.
FrameRead readFrame(int Fd, uint32_t MaxBytes = MaxServiceFrameBytes);

/// Blocking frame write (header + payload). Uses MSG_NOSIGNAL so a
/// peer that vanished yields an error Status, not SIGPIPE.
Status writeFrame(int Fd, const std::vector<uint8_t> &Payload);

} // namespace tsl

#endif // THINSLICER_SERVICE_PROTOCOL_H
