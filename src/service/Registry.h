//===-- Registry.h - Warm AnalysisSession registry --------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's registry of warm AnalysisSessions, keyed by workload
/// digest (source text + session flavor). Two clients loading the same
/// program share one warm session — the whole point of the serving
/// shape: the expensive analysis is built once and amortized across
/// every query that arrives while it is warm (SymPas makes the same
/// amortization argument for batch slicing).
///
/// Concurrency model: an AnalysisSession is single-threaded by
/// contract, so each registry entry carries a reader/writer lock plus
/// a set of *warm pointers* (Program, SDG) captured after warm-up.
///
///  - Mutating requests (load, edit, stats — anything that touches
///    session accessors, which memoize) hold the entry's lock
///    exclusively.
///  - Slice requests hold it shared and never call into the session:
///    they read the warm pointers and run the slicers directly over
///    the finalized SDG, which is immutable and safe for concurrent
///    traversal (the batch engine's workers rely on the same
///    guarantee). Context-sensitive queries go through the session's
///    SummaryCache, which is itself thread-safe.
///
/// This is what lets N clients slice one warm session in parallel
/// while an edit waits for exclusivity — and byte-identical answers
/// fall out, because the very same slicer entry points run over the
/// very same artifacts as an in-process session.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SERVICE_REGISTRY_H
#define THINSLICER_SERVICE_REGISTRY_H

#include "pipeline/Session.h"
#include "support/Status.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace tsl {

/// One warm session plus its concurrency control and warm pointers.
struct WarmSession {
  /// Slices hold this shared; load/edit/stats hold it exclusive.
  std::shared_mutex Mu;

  /// The session. Only touched under an exclusive lock.
  std::unique_ptr<AnalysisSession> S;

  std::string Id;          ///< Workload digest, the wire session id.
  uint32_t LineOffset = 0; ///< Runtime-prefix lines for rendering.
  bool ContextSensitive = false;

  /// Warm pointers, captured under the exclusive lock that built (or
  /// edited) the session; readers use ONLY these. Null Prog means the
  /// source does not compile (CompileErrors carries the rendered
  /// diagnostics).
  Program *Prog = nullptr;
  SDG *Graph = nullptr;
  std::string CompileErrors;
  /// Non-empty when the program compiled but a downstream stage
  /// failed (crashed and exhausted its retries): the lastError() text
  /// slice requests report as Internal.
  std::string StageError;

  /// LRU tick, bumped on every request that resolves the entry.
  std::atomic<uint64_t> LastUsed{0};
};

/// Registry of warm sessions with LRU retention. Thread-safe; the map
/// lock is never held across a warm-up (entries are inserted first and
/// warmed under their own exclusive lock, so concurrent requests for
/// the same workload block on the entry, not the registry).
class SessionRegistry {
public:
  struct Options {
    std::size_t MaxSessions = 8; ///< Warm sessions kept (LRU beyond).
    unsigned AnalysisThreads = 1; ///< Per-session analysis pool size.
    std::string CacheDir; ///< Snapshot cache for cross-restart warmth.
  };

  explicit SessionRegistry(Options O) : O(std::move(O)) {}

  /// Gets or creates the warm session for (\p Source, \p CS,
  /// \p LineOffset). A fresh session is warmed end-to-end — compile,
  /// points-to, SDG — trying the snapshot cache dir (and then
  /// \p SnapshotPath, when non-empty) for a warm start first.
  /// \p Note receives "cached", "cold", or "warm:<how>" plus any
  /// fallback reason. Always returns an entry; a compile failure is
  /// recorded in the entry, not an absence.
  std::shared_ptr<WarmSession> acquire(const std::string &Source, bool CS,
                                       uint32_t LineOffset, bool Incremental,
                                       const std::string &SnapshotPath,
                                       std::string &Note);

  /// The entry for \p Id, or null.
  std::shared_ptr<WarmSession> find(const std::string &Id);

  /// Re-captures an entry's warm pointers after a mutation. Caller
  /// must hold the entry's lock exclusively.
  static void refreshWarmPointers(WarmSession &E);

  /// The workload digest used as the wire session id.
  static std::string workloadDigest(const std::string &Source, bool CS,
                                    uint32_t LineOffset);

  std::size_t size() const;

private:
  void evictOverCap(const std::string &Keep);

  Options O;
  mutable std::mutex MapMu;
  std::map<std::string, std::shared_ptr<WarmSession>> Map;
  std::atomic<uint64_t> Tick{0};
};

} // namespace tsl

#endif // THINSLICER_SERVICE_REGISTRY_H
