//===-- Server.h - The thinsliced slice service -----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running slice daemon: a Unix-domain-socket accept loop
/// serving the Protocol.h request set from a registry of warm
/// AnalysisSessions. The paper's access pattern — a developer fires
/// many small interactive slice queries against one warm program
/// analysis — is a daemon's, not a batch tool's; this is the serving
/// layer that turns the library into that shape.
///
/// Execution model:
///
///  - One connection-reader thread per client reads frames and writes
///    responses in order; request *execution* is fanned out on the
///    shared work-stealing ThreadPool, so slices from N clients on one
///    warm session genuinely run in parallel (shared lock on the
///    session entry) while edits wait for exclusivity.
///  - Admission control, not queueing: the server tracks in-flight
///    requests and answers RETRY the moment the bound is exceeded —
///    overload degrades into client backoff, never into unbounded
///    memory growth.
///  - Per-request deadlines: a --request-budget-ms daemon option arms
///    a per-request AnalysisBudget whose gates (BudgetGate /
///    SharedBudgetGate in the batch engine) degrade the slice soundly;
///    the response frame carries the exit-code-style status (3) and
///    the reason, exactly like the one-shot CLI.
///  - Graceful drain: SIGTERM (via requestShutdown(), which is
///    async-signal-safe) or a Shutdown request stops the accept loop,
///    lets every in-flight request finish and flush its response, and
///    only then tears the registry down.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SERVICE_SERVER_H
#define THINSLICER_SERVICE_SERVER_H

#include "service/Protocol.h"
#include "service/Registry.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace tsl {

struct ServerOptions {
  std::string SocketPath;

  /// Request-execution concurrency of the shared pool (0 = hardware).
  unsigned Threads = 0;

  /// Analysis concurrency inside each warm session (passed to
  /// AnalysisSession::setThreads; 1 keeps sessions pool-free).
  unsigned AnalysisThreads = 1;

  /// In-flight request bound: the (N+1)-th concurrent request is
  /// answered RETRY instead of queued.
  std::size_t MaxQueue = 64;

  /// Warm sessions retained (LRU beyond).
  std::size_t MaxSessions = 8;

  /// Per-request wall-clock budget in ms (0 = ungoverned). Exhaustion
  /// degrades the slice soundly and the response says so (status 3).
  uint64_t RequestBudgetMs = 0;

  /// Content-addressed snapshot cache shared by all sessions: first
  /// load of a known workload warm-starts instead of rebuilding.
  std::string CacheDir;
};

/// Serving telemetry, rendered into Stats responses.
struct ServerStats {
  std::atomic<uint64_t> Accepted{0};  ///< Connections accepted.
  std::atomic<uint64_t> Requests{0};  ///< Frames decoded and served.
  std::atomic<uint64_t> Retries{0};   ///< RETRY responses (overload).
  std::atomic<uint64_t> BadFrames{0}; ///< Malformed/oversized frames.
};

/// The daemon. Construct, then run() until a shutdown request or
/// requestShutdown() drains it. One instance per process.
class SliceServer {
public:
  explicit SliceServer(ServerOptions O);
  ~SliceServer();

  SliceServer(const SliceServer &) = delete;
  SliceServer &operator=(const SliceServer &) = delete;

  /// Binds and listens on the socket path (replacing a stale socket
  /// file). Split from run() so callers can fail fast on a bad path
  /// before daemonizing/reporting readiness.
  Status listen();

  /// Blocking accept loop; returns 0 after a graceful drain. Call
  /// listen() first.
  int run();

  /// Begins a graceful drain: stop accepting, stop reading new
  /// frames, finish and flush every in-flight request, then return
  /// from run(). Callable from any thread. (Signal handlers should
  /// instead write() one byte to wakeFd(), which is async-signal-safe
  /// and triggers the same path.)
  void requestShutdown();

  /// Write end of the self-pipe run() polls: a 1-byte write triggers
  /// the same drain as requestShutdown(). Valid after listen().
  int wakeFd() const { return WakePipe[1]; }

  const ServerStats &stats() const { return Stats; }

private:
  struct Conn {
    int Fd = -1;
    std::thread Thread;
    std::atomic<bool> Done{false};
  };

  void connectionLoop(Conn &C);
  ServiceResponse handle(const ServiceRequest &Req);
  ServiceResponse handleLoad(const ServiceRequest &Req);
  ServiceResponse handleSlice(const ServiceRequest &Req);
  ServiceResponse handleBatchSlice(const ServiceRequest &Req);
  ServiceResponse handleEdit(const ServiceRequest &Req);
  ServiceResponse handleStats(const ServiceRequest &Req);
  void reapFinishedConnections();

  ServerOptions O;
  ThreadPool Pool;
  SessionRegistry Registry;
  ServerStats Stats;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  std::atomic<bool> Draining{false};
  std::atomic<std::size_t> InFlight{0};

  std::mutex ConnMu;
  std::list<std::unique_ptr<Conn>> Conns;
};

} // namespace tsl

#endif // THINSLICER_SERVICE_SERVER_H
