//===-- Experiments.cpp - Paper experiment drivers -------------------------------==//

#include "eval/Experiments.h"

#include "eval/Generator.h"
#include "pipeline/Session.h"
#include "slicer/Engine.h"
#include "slicer/Inspection.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>

using namespace tsl;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// One warm AnalysisSession per named workload, shared by every table
/// driver in the process: Tables 2/3 and the ablation all slice the
/// same nanoxml model, and with a process-wide registry the second and
/// later drivers reuse the first one's compile, points-to, and SDGs
/// instead of rebuilding them. (Tables 1 and the scalability sweep use
/// uniquely-padded variants and local sessions — their point is to
/// *time* the builds.)
std::map<std::string, std::unique_ptr<AnalysisSession>> &sessionRegistry() {
  static std::map<std::string, std::unique_ptr<AnalysisSession>> Registry;
  return Registry;
}

/// Concurrency installed into every registry session (see
/// setEvalThreads).
unsigned &evalThreads() {
  static unsigned Threads = 1;
  return Threads;
}

AnalysisSession &sessionFor(const WorkloadProgram &W) {
  auto &Cache = sessionRegistry();
  auto It = Cache.find(W.Name);
  if (It == Cache.end()) {
    auto S = std::make_unique<AnalysisSession>(W.Source);
    S->setThreads(evalThreads());
    if (!S->program())
      throw std::runtime_error("workload '" + W.Name +
                               "' failed to compile:\n" +
                               S->diagnostics().str());
    It = Cache.emplace(W.Name, std::move(S)).first;
  }
  return *It->second;
}

/// The default (object-sensitive, context-insensitive) SDG. Leaves the
/// session on the default option cone.
SDG &objSdg(AnalysisSession &S) {
  S.setPTAOptions(PTAOptions());
  S.setSDGOptions(SDGOptions());
  return *S.sdg();
}

/// The container-object-sensitivity-ablated SDG. The session retains
/// both variants (re-keying is not destructive), so this restores the
/// default cone before returning and the pointer stays valid.
SDG &noObjSdg(AnalysisSession &S) {
  PTAOptions NoObj;
  NoObj.ObjSensContainers = false;
  S.setPTAOptions(NoObj);
  S.setSDGOptions(SDGOptions());
  SDG *G = S.sdg();
  S.setPTAOptions(PTAOptions());
  return *G;
}

std::vector<SourceLine> desiredLines(const Program &P,
                                     const WorkloadProgram &W,
                                     const std::vector<std::string> &Markers) {
  std::vector<SourceLine> Out;
  for (const std::string &Marker : Markers) {
    unsigned Line = W.markerLine(Marker);
    SourceLine SL = sourceLineAt(P, Line);
    if (SL.M)
      Out.push_back(SL);
  }
  return Out;
}

InspectionQuery makeQuery(const Program &P, const WorkloadProgram &W,
                          const std::string &SeedMarker, SliceMode Mode,
                          const std::vector<std::string> &Desired,
                          unsigned NumControl,
                          const std::vector<std::string> &Pivots,
                          bool ExpandAlias) {
  InspectionQuery Q;
  Q.Seed = instrAtLine(P, W.markerLine(SeedMarker));
  Q.Mode = Mode;
  Q.Desired = desiredLines(P, W, Desired);
  Q.ChargedControlDeps = NumControl;
  for (const std::string &Pivot : Pivots) {
    unsigned Line = W.markerLine(Pivot);
    // A pivot is the conditional the user follows by hand; prefer the
    // branch on that line.
    const Instr *I = branchAtLine(P, Line);
    if (!I)
      I = instrAtLine(P, Line);
    if (I)
      Q.ControlPivots.push_back(I);
  }
  Q.ExpandAliasOneLevel = ExpandAlias;
  return Q;
}

/// Fills InspectionRow::ThinSliceStmts/TradSliceStmts for a set of
/// (engine, seed, row) triples with one batch per engine and mode —
/// the Tables 2/3 batched-query path. The engines are session-owned,
/// so their SCC condensations are built once per workload and reused
/// across table drivers.
struct SliceSizeRequest {
  SliceEngine *E;
  const Instr *Seed;
  std::size_t RowIdx;
};

void fillSliceSizes(std::vector<InspectionRow> &Rows,
                    const std::vector<SliceSizeRequest> &Requests) {
  std::map<SliceEngine *, std::vector<const SliceSizeRequest *>> ByEngine;
  for (const SliceSizeRequest &R : Requests)
    if (R.Seed)
      ByEngine[R.E].push_back(&R);
  for (const auto &[Engine, Reqs] : ByEngine) {
    std::vector<const Instr *> Seeds;
    Seeds.reserve(Reqs.size());
    for (const SliceSizeRequest *R : Reqs)
      Seeds.push_back(R->Seed);
    BatchOptions Thin;
    Thin.Mode = SliceMode::Thin;
    std::vector<SliceResult> ThinSlices =
        Engine->sliceBackwardBatch(Seeds, Thin);
    BatchOptions Trad;
    Trad.Mode = SliceMode::Traditional;
    std::vector<SliceResult> TradSlices =
        Engine->sliceBackwardBatch(Seeds, Trad);
    for (std::size_t I = 0; I != Reqs.size(); ++I) {
      Rows[Reqs[I]->RowIdx].ThinSliceStmts = ThinSlices[I].sizeStmts();
      Rows[Reqs[I]->RowIdx].TradSliceStmts = TradSlices[I].sizeStmts();
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Padding
//===----------------------------------------------------------------------===//

WorkloadProgram tsl::padWorkload(const WorkloadProgram &W,
                                 const std::string &Tag, unsigned PadClasses,
                                 unsigned MethodsPerClass) {
  if (PadClasses == 0)
    return W;
  WorkloadProgram Out = W;
  Out.Name = W.Name + "+pad" + std::to_string(PadClasses);
  // Rename the original entry point and synthesize one that runs both
  // the original program and the padding.
  const std::string Needle = "def main()";
  size_t Pos = Out.Source.find(Needle);
  if (Pos == std::string::npos)
    return W;
  Out.Source.replace(Pos, Needle.size(), "def origMain" + Tag + "()");
  Out.Source += "\n";
  Out.Source += generatePadding(Tag, PadClasses, MethodsPerClass);
  Out.Source += "def main() {\n  origMain" + Tag + "();\n  var padded = "
                "padEntry" +
                Tag + "(readInt());\n  print(\"pad: \" + padded);\n}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Table 1
//===----------------------------------------------------------------------===//

std::vector<Table1Row> tsl::runTable1() {
  // The eight benchmark models at paper-like relative sizes: nanoxml
  // and jtopas small, ant/javac larger, etc. Padding supplies the bulk
  // of the code, as library code does for the paper's benchmarks.
  struct Spec {
    WorkloadProgram W;
    unsigned Pad;
  };
  std::vector<BugCase> Bugs = debuggingCases();
  std::vector<CastCase> Casts = toughCastCases();
  auto ProgOf = [&](const std::string &Name) -> WorkloadProgram {
    for (const BugCase &B : Bugs)
      if (B.Prog.Name == Name)
        return B.Prog;
    for (const CastCase &C : Casts)
      if (C.Prog.Name == Name)
        return C.Prog;
    throw std::runtime_error("unknown workload " + Name);
  };

  std::vector<Spec> Specs = {
      {ProgOf("nanoxml"), 6},  {ProgOf("jtopas"), 4},
      {ProgOf("ant"), 30},     {ProgOf("xmlsec"), 28},
      {ProgOf("mtrt"), 10},    {ProgOf("jess"), 24},
      {ProgOf("javac"), 40},   {ProgOf("jack"), 18},
  };

  std::vector<Table1Row> Rows;
  for (const Spec &S : Specs) {
    WorkloadProgram W = padWorkload(S.W, "T1", S.Pad, 6);
    Table1Row Row;
    Row.Name = S.W.Name;

    // A local session per padded variant: every first request below is
    // a miss, so the timings measure the real builds exactly as the
    // hand-rolled pipeline did.
    AnalysisSession Sess(W.Source);
    Sess.setThreads(evalThreads());
    auto T0 = std::chrono::steady_clock::now();
    Program *P = Sess.program();
    if (!P)
      throw std::runtime_error("Table 1 workload failed: " +
                               Sess.diagnostics().str());
    Row.FrontendMs = msSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    PointsToResult *PTA = Sess.pointsTo();
    Row.PTAMs = msSince(T1);

    auto T2 = std::chrono::steady_clock::now();
    SDG *G = Sess.sdg();
    Row.SDGMs = msSince(T2);

    Row.Classes = static_cast<unsigned>(P->classes().size());
    for (const auto &M : P->methods())
      Row.IRInstrs += M->numInstrs();
    Row.ReachableMethods =
        static_cast<unsigned>(PTA->callGraph().reachableMethods().size());
    Row.CGNodes = static_cast<unsigned>(PTA->callGraph().nodes().size());
    Row.SDGStmts = G->numStmtNodes();
    Row.SDGEdges = G->numEdges();
    Rows.push_back(Row);
  }
  return Rows;
}

//===----------------------------------------------------------------------===//
// Table 2
//===----------------------------------------------------------------------===//

std::vector<InspectionRow>
tsl::runDebuggingExperiment(InspectionStrategy Strategy) {
  std::vector<InspectionRow> Rows;
  std::vector<SliceSizeRequest> SliceSizes;

  for (const BugCase &Case : debuggingCases()) {
    AnalysisSession &S = sessionFor(Case.Prog);
    Program &P = *S.program();
    SDG &GNoObj = noObjSdg(S);
    SDG &G = objSdg(S);
    SliceSizes.push_back(
        {S.engine(), instrAtLine(P, Case.Prog.markerLine(Case.SeedMarker)),
         Rows.size()});
    InspectionRow Row;
    Row.Id = Case.Id;
    Row.Control = Case.NumControl;
    Row.SlicingUseful = Case.SlicingUseful;

    auto Run = [&](const SDG &OnG, SliceMode Mode) {
      InspectionQuery Q = makeQuery(P, Case.Prog, Case.SeedMarker, Mode,
                                    Case.DesiredMarkers, Case.NumControl,
                                    Case.PivotMarkers,
                                    Mode == SliceMode::Thin &&
                                        Case.ExpandAliasOneLevel);
      Q.Strategy = Strategy;
      return simulateInspection(OnG, Q);
    };

    InspectionResult Thin = Run(G, SliceMode::Thin);
    InspectionResult Trad = Run(G, SliceMode::Traditional);
    InspectionResult ThinNoObj = Run(GNoObj, SliceMode::Thin);
    InspectionResult TradNoObj = Run(GNoObj, SliceMode::Traditional);

    Row.Thin = Thin.InspectedStatements;
    Row.Trad = Trad.InspectedStatements;
    Row.FoundAllThin = Thin.FoundAll;
    Row.FoundAllTrad = Trad.FoundAll;
    Row.ThinNoObjSens = ThinNoObj.InspectedStatements;
    Row.TradNoObjSens = TradNoObj.InspectedStatements;
    Row.Ratio = Row.Thin ? static_cast<double>(Row.Trad) / Row.Thin : 0;
    Rows.push_back(Row);
  }
  fillSliceSizes(Rows, SliceSizes);
  return Rows;
}

//===----------------------------------------------------------------------===//
// Table 3
//===----------------------------------------------------------------------===//

std::vector<InspectionRow>
tsl::runToughCastExperiment(InspectionStrategy Strategy) {
  std::vector<InspectionRow> Rows;
  std::vector<SliceSizeRequest> SliceSizes;

  for (const CastCase &Case : toughCastCases()) {
    AnalysisSession &S = sessionFor(Case.Prog);
    Program &P = *S.program();
    SDG &GNoObj = noObjSdg(S);
    SDG &G = objSdg(S);
    InspectionRow Row;
    Row.Id = Case.Id;
    Row.Control = Case.NumControl;

    // Slice from the cast itself, or — for tag-guarded casts — from
    // the tag read reached by following one control dependence from
    // the cast (the paper's Figure 5 protocol).
    const Instr *Seed = nullptr;
    if (!Case.SeedMarker.empty())
      Seed = instrAtLine(P, Case.Prog.markerLine(Case.SeedMarker));
    if (!Seed)
      Seed = castAtLine(P, Case.Prog.markerLine(Case.CastMarker));
    if (!Seed) {
      Rows.push_back(Row);
      continue;
    }
    SliceSizes.push_back({S.engine(), Seed, Rows.size()});

    auto Run = [&](const SDG &OnG, SliceMode Mode) {
      InspectionQuery Q;
      Q.Seed = Seed;
      Q.Mode = Mode;
      Q.Strategy = Strategy;
      Q.Desired = desiredLines(P, Case.Prog, Case.DesiredMarkers);
      Q.ChargedControlDeps = Case.NumControl;
      return simulateInspection(OnG, Q);
    };

    InspectionResult Thin = Run(G, SliceMode::Thin);
    InspectionResult Trad = Run(G, SliceMode::Traditional);
    InspectionResult ThinNoObj = Run(GNoObj, SliceMode::Thin);
    InspectionResult TradNoObj = Run(GNoObj, SliceMode::Traditional);

    Row.Thin = Thin.InspectedStatements;
    Row.Trad = Trad.InspectedStatements;
    Row.FoundAllThin = Thin.FoundAll;
    Row.FoundAllTrad = Trad.FoundAll;
    Row.ThinNoObjSens = ThinNoObj.InspectedStatements;
    Row.TradNoObjSens = TradNoObj.InspectedStatements;
    Row.Ratio = Row.Thin ? static_cast<double>(Row.Trad) / Row.Thin : 0;
    Rows.push_back(Row);
  }
  fillSliceSizes(Rows, SliceSizes);
  return Rows;
}

//===----------------------------------------------------------------------===//
// Scalability
//===----------------------------------------------------------------------===//

std::vector<ScalabilityRow>
tsl::runScalability(const std::vector<unsigned> &PadSizes) {
  std::vector<ScalabilityRow> Rows;
  std::vector<BugCase> Bugs = debuggingCases();
  const WorkloadProgram &Base = Bugs.front().Prog; // nanoxml model.

  for (unsigned Pad : PadSizes) {
    WorkloadProgram W = padWorkload(Base, "S", Pad, 6);
    // Local session, first-request-is-the-build timing as in Table 1;
    // the CI -> CS switch below reuses its compile and points-to run,
    // which is exactly the cost the CS column is supposed to isolate.
    AnalysisSession S(W.Source);
    S.setThreads(evalThreads());
    Program *P = S.program();
    if (!P)
      throw std::runtime_error("scalability workload failed: " +
                               S.diagnostics().str());

    ScalabilityRow Row;
    Row.PadClasses = Pad;

    auto T0 = std::chrono::steady_clock::now();
    PointsToResult *PTA = S.pointsTo();
    Row.PTAMs = msSince(T0);
    (void)PTA;

    auto T1 = std::chrono::steady_clock::now();
    SDG *CI = S.sdg();
    Row.CIBuildMs = msSince(T1);
    Row.SDGStmts = CI->numStmtNodes();

    const Instr *Seed = instrAtLine(*P, W.markerLine("n1-seed"));
    auto T2 = std::chrono::steady_clock::now();
    SliceResult Thin = sliceBackward(*CI, Seed, SliceMode::Thin);
    Row.ThinSliceMs = msSince(T2);
    auto T3 = std::chrono::steady_clock::now();
    SliceResult Trad = sliceBackward(*CI, Seed, SliceMode::Traditional);
    Row.TradSliceMs = msSince(T3);
    (void)Thin;
    (void)Trad;

    // Multi-seed throughput at this size: sequential legacy slicing
    // vs one engine batch over the same seed set.
    std::vector<const Instr *> Seeds = collectSliceSeeds(*P, 16);
    ThroughputRow TP =
        runSliceThroughput(*CI, Seeds, SliceMode::Thin, /*Jobs=*/1);
    Row.BatchSeeds = TP.Seeds;
    Row.SeqLegacyMs = TP.SeqLegacyMs;
    Row.BatchMs = TP.BatchMs;

    // Mod-ref untimed (as before): precomputing it through the session
    // makes the timed CS build below hit the cached result.
    S.modRef();
    SDGOptions CSOpts;
    CSOpts.ContextSensitive = true;
    S.setSDGOptions(CSOpts);
    auto T4 = std::chrono::steady_clock::now();
    SDG *CS = S.sdg();
    Row.CSBuildMs = msSince(T4);
    Row.CSHeapParamNodes = CS->numHeapParamNodes();

    auto T5 = std::chrono::steady_clock::now();
    TabulationSlicer Tab(*CS, SliceMode::Traditional);
    Row.SummaryMs = msSince(T5);
    Row.SummaryEdges = Tab.numSummaryEdges();

    Rows.push_back(Row);
  }
  return Rows;
}

//===----------------------------------------------------------------------===//
// Context-sensitivity ablation
//===----------------------------------------------------------------------===//

std::vector<AblationRow> tsl::runContextAblation() {
  std::vector<AblationRow> Rows;
  // Both graph variants, both engines, and the tabulation summaries
  // come from the per-workload session: the summary cache keys by
  // (graph epoch, mode), so the second and third nanoxml case reuse
  // the first one's tabulation — and a Tables 2/3 run earlier in the
  // process already paid for the compile, points-to, and CI graph.
  for (const BugCase &Case : debuggingCases()) {
    if (Case.Id != "nanoxml-1" && Case.Id != "nanoxml-2" &&
        Case.Id != "nanoxml-3")
      continue;
    AnalysisSession &S = sessionFor(Case.Prog);
    Program &P = *S.program();
    SDG &CI = objSdg(S);
    SliceEngine *CIEngine = S.engine();
    SDGOptions CSOpts;
    CSOpts.ContextSensitive = true;
    S.setSDGOptions(CSOpts);
    SliceEngine *CSEngine = S.engine();
    S.setSDGOptions(SDGOptions());

    const Instr *Seed = instrAtLine(P, Case.Prog.markerLine(Case.SeedMarker));

    AblationRow Row;
    Row.Id = Case.Id;
    BatchOptions CIOpts;
    CIOpts.Mode = SliceMode::Traditional;
    SliceResult CISlice = CIEngine->sliceBackwardBatch({Seed}, CIOpts).front();
    BatchOptions CSOpts2;
    CSOpts2.Mode = SliceMode::Traditional;
    CSOpts2.ContextSensitive = true;
    CSOpts2.Summaries = &S.summaries();
    SliceResult CSSlice = CSEngine->sliceBackwardBatch({Seed}, CSOpts2).front();
    // Compare in source lines: the two representations clone
    // statements differently, lines are the common currency.
    Row.CITradSliceStmts =
        static_cast<unsigned>(CISlice.sourceLines().size());
    Row.CSTradSliceStmts =
        static_cast<unsigned>(CSSlice.sourceLines().size());

    InspectionQuery Q = makeQuery(P, Case.Prog, Case.SeedMarker,
                                  SliceMode::Traditional,
                                  Case.DesiredMarkers, Case.NumControl,
                                  Case.PivotMarkers, false);
    Row.CIBfs = simulateInspection(CI, Q).InspectedStatements;
    // BFS with the same discipline but restricted to statements the
    // context-sensitive slice retains: the traversal distance barely
    // changes even though the slice shrinks (the paper's observation).
    std::unordered_set<const Instr *> Allowed;
    for (const Instr *I : CSSlice.statements())
      Allowed.insert(I);
    Q.RestrictStmts = &Allowed;
    Row.CSBfs = simulateInspection(CI, Q).InspectedStatements;
    Rows.push_back(Row);
  }
  return Rows;
}

//===----------------------------------------------------------------------===//
// Multi-seed throughput helpers
//===----------------------------------------------------------------------===//

std::vector<const Instr *> tsl::collectSliceSeeds(const Program &P,
                                                  unsigned NumSeeds) {
  std::vector<const Instr *> All;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().isValid())
          All.push_back(I.get());
  std::vector<const Instr *> Out;
  if (All.empty() || NumSeeds == 0)
    return Out;
  if (All.size() <= NumSeeds)
    return All;
  // Even stride over IR order: deterministic and spread across the
  // whole program, so the seed set exercises unrelated slices.
  std::size_t Stride = All.size() / NumSeeds;
  for (unsigned I = 0; I != NumSeeds; ++I)
    Out.push_back(All[I * Stride]);
  return Out;
}

ThroughputRow tsl::runSliceThroughput(const SDG &G,
                                      const std::vector<const Instr *> &Seeds,
                                      SliceMode Mode, unsigned Jobs) {
  ThroughputRow Row;
  Row.Seeds = static_cast<unsigned>(Seeds.size());
  G.ensureFinalized();

  SliceEngine Engine(G);
  BatchOptions Opts;
  Opts.Mode = Mode;
  Opts.Jobs = Jobs;

  // One untimed warmup pass per configuration: the first traversal
  // faults the graph into cache and the engine builds its reusable
  // condensation, so the timed passes measure the steady-state regime
  // the queries/sec comparison is about (every path warms equally).
  for (const Instr *Seed : Seeds)
    sliceBackwardLegacy(G, Seed, Mode);
  for (const Instr *Seed : Seeds)
    sliceBackward(G, Seed, Mode);
  Engine.sliceBackwardBatch(Seeds, Opts);

  // Several timed passes per configuration, run as contiguous blocks
  // (all legacy passes, then all CSR passes, then all batch passes) and
  // keeping each configuration's fastest. Contiguous blocks measure
  // each path's steady state — interleaving the configurations would
  // charge whichever runs second for the cache lines its predecessor
  // evicted; the block minimum is also the least-noise estimator on a
  // shared machine, where one scheduler blip would otherwise dominate
  // a sub-millisecond measurement.
  constexpr int Passes = 8;
  Row.SeqLegacyMs = Row.SeqMs = Row.BatchMs =
      std::numeric_limits<double>::infinity();
  for (int P = 0; P != Passes; ++P) {
    auto T0 = std::chrono::steady_clock::now();
    for (const Instr *Seed : Seeds)
      sliceBackwardLegacy(G, Seed, Mode);
    Row.SeqLegacyMs = std::min(Row.SeqLegacyMs, msSince(T0));
  }
  for (int P = 0; P != Passes; ++P) {
    auto T1 = std::chrono::steady_clock::now();
    for (const Instr *Seed : Seeds)
      sliceBackward(G, Seed, Mode);
    Row.SeqMs = std::min(Row.SeqMs, msSince(T1));
  }
  for (int P = 0; P != Passes; ++P) {
    auto T2 = std::chrono::steady_clock::now();
    Engine.sliceBackwardBatch(Seeds, Opts);
    Row.BatchMs = std::min(Row.BatchMs, msSince(T2));
  }
  Row.UniqueSeeds = Engine.stats().UniqueQueries;
  Row.Speedup = Row.BatchMs > 0 ? Row.SeqLegacyMs / Row.BatchMs : 0;
  return Row;
}

//===----------------------------------------------------------------------===//
// Formatting
//===----------------------------------------------------------------------===//

std::string tsl::formatTable1(const std::vector<Table1Row> &Rows) {
  char Buf[256];
  std::string Out =
      "Table 1: benchmark characteristics\n"
      "benchmark   classes  methods  cg-nodes  ir-instrs  sdg-stmts  "
      "sdg-edges  pta-ms  sdg-ms\n";
  for (const Table1Row &R : Rows) {
    snprintf(Buf, sizeof(Buf),
             "%-11s %7u %8u %9u %10u %10u %10u %7.1f %7.1f\n",
             R.Name.c_str(), R.Classes, R.ReachableMethods, R.CGNodes,
             R.IRInstrs, R.SDGStmts, R.SDGEdges, R.PTAMs, R.SDGMs);
    Out += Buf;
  }
  return Out;
}

std::string
tsl::formatInspectionTable(const std::string &Title,
                           const std::vector<InspectionRow> &Rows) {
  char Buf[256];
  std::string Out = Title + "\n"
                            "case         #thin  #trad  ratio  #control  "
                            "#thin-noobj  #trad-noobj  thin-slice  "
                            "trad-slice\n";
  unsigned ThinSum = 0, TradSum = 0;
  for (const InspectionRow &R : Rows) {
    if (!R.SlicingUseful) {
      snprintf(Buf, sizeof(Buf),
               "%-12s (excluded: no kind of slicing helps; thin=%u trad=%u)\n",
               R.Id.c_str(), R.Thin, R.Trad);
      Out += Buf;
      continue;
    }
    snprintf(Buf, sizeof(Buf), "%-12s %6u %6u %6.2f %9u %12u %12u %11u %11u%s\n",
             R.Id.c_str(), R.Thin, R.Trad, R.Ratio, R.Control,
             R.ThinNoObjSens, R.TradNoObjSens, R.ThinSliceStmts,
             R.TradSliceStmts,
             (R.FoundAllThin && R.FoundAllTrad) ? "" : "  [!found]");
    Out += Buf;
    ThinSum += R.Thin;
    TradSum += R.Trad;
  }
  snprintf(Buf, sizeof(Buf),
           "total (useful cases): thin=%u trad=%u overall-ratio=%.2f\n",
           ThinSum, TradSum,
           ThinSum ? static_cast<double>(TradSum) / ThinSum : 0.0);
  Out += Buf;
  return Out;
}

std::string tsl::formatScalability(const std::vector<ScalabilityRow> &Rows) {
  char Buf[256];
  std::string Out =
      "Scalability sweep (nanoxml + padding)\n"
      "pad  sdg-stmts  pta-ms  ci-build-ms  thin-slice-ms  trad-slice-ms  "
      "cs-build-ms  cs-heap-nodes  summary-ms  summary-edges  "
      "seeds  seq-legacy-ms  batch-ms\n";
  for (const ScalabilityRow &R : Rows) {
    snprintf(Buf, sizeof(Buf),
             "%3u %10u %7.1f %12.1f %14.3f %14.3f %12.1f %14u %11.1f %14u "
             "%6u %14.3f %9.3f\n",
             R.PadClasses, R.SDGStmts, R.PTAMs, R.CIBuildMs, R.ThinSliceMs,
             R.TradSliceMs, R.CSBuildMs, R.CSHeapParamNodes, R.SummaryMs,
             R.SummaryEdges, R.BatchSeeds, R.SeqLegacyMs, R.BatchMs);
    Out += Buf;
  }
  return Out;
}

std::string tsl::formatAblation(const std::vector<AblationRow> &Rows) {
  char Buf[256];
  std::string Out =
      "Context-sensitivity ablation (traditional slices)\n"
      "case        ci-slice  cs-slice  ci-bfs  cs-bfs\n";
  for (const AblationRow &R : Rows) {
    snprintf(Buf, sizeof(Buf), "%-11s %9u %9u %7u %7u\n", R.Id.c_str(),
             R.CITradSliceStmts, R.CSTradSliceStmts, R.CIBfs, R.CSBfs);
    Out += Buf;
  }
  return Out;
}

void tsl::setEvalThreads(unsigned Threads) { evalThreads() = Threads; }

void tsl::resetEvalSessions() { sessionRegistry().clear(); }
