//===-- Generator.h - Program generators -------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThinJ source generators:
///
///  - a javac-style AST-node hierarchy (many opcode-tagged subclasses)
///    for the Table 3 tough-cast experiment — the pattern of the
///    paper's Figure 5 at the scale that makes traditional slices
///    explode;
///  - reachable "library padding" used to grow workloads to
///    Table 1 / scalability sizes;
///  - a seeded random-program generator for property-based tests
///    (every generated program parses, type-checks, terminates under
///    the interpreter's limits, and exercises containers, virtual
///    dispatch, and heap flow).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_EVAL_GENERATOR_H
#define THINSLICER_EVAL_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace tsl {

/// Emits a Node hierarchy with \p NumSubclasses opcode-tagged
/// subclasses, builder code constructing one of each, and a
/// simplifier whose downcasts are guarded by the opcode tag. Marker
/// names follow "<prefix>-tag-<i>" (one per subclass super call),
/// "<prefix>-opread", "<prefix>-cast-<k>" for k in 0..3, and
/// "<prefix>-seedstore" (the base-class tag store).
std::string generateJavacModel(const std::string &Prefix,
                               unsigned NumSubclasses);

/// Emits \p NumClasses padding classes whose methods are reachable
/// from a function "padEntry<Tag>()" (call it from main). The code
/// mixes arithmetic, fields, Vector traffic, and cross-class calls so
/// it contributes realistically to call graph and SDG sizes.
std::string generatePadding(const std::string &Tag, unsigned NumClasses,
                            unsigned MethodsPerClass);

/// Deterministic random ThinJ program for property tests. Programs
/// always define main(), terminate quickly, and use only safe
/// operations (bounded loops, in-bounds indices, non-null
/// dereferences on the happy path).
std::string generateRandomProgram(uint64_t Seed);

} // namespace tsl

#endif // THINSLICER_EVAL_GENERATOR_H
