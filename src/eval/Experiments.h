//===-- Experiments.h - Paper experiment drivers ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers regenerating every table of the paper's evaluation
/// (Section 6) plus the scalability and context-sensitivity
/// observations reported in the text:
///
///  - Table 1: benchmark characteristics (classes, methods, call graph
///    nodes, SDG statements) over scaled workload models;
///  - Table 2: debugging — inspected statements for thin vs
///    traditional slicing, with the NoObjSens ablation columns;
///  - Table 3: tough casts — same columns for the understanding tasks;
///  - scalability: CI slicing cost vs pointer analysis vs the
///    heap-parameter (context-sensitive) SDG blowup;
///  - context ablation: CS slices are much smaller than CI slices, but
///    BFS inspection counts barely move (the nanoxml-1 observation).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_EVAL_EXPERIMENTS_H
#define THINSLICER_EVAL_EXPERIMENTS_H

#include "eval/Workload.h"
#include "slicer/Inspection.h"

#include <string>
#include <vector>

namespace tsl {

/// One Table 1 row.
struct Table1Row {
  std::string Name;
  unsigned Classes = 0;
  unsigned ReachableMethods = 0;
  unsigned CGNodes = 0;    ///< (method, context) pairs; >= methods.
  unsigned IRInstrs = 0;   ///< Three-address instructions (the paper's
                           ///< "bytecodes" analogue).
  unsigned SDGStmts = 0;   ///< Scalar statements, as in the paper.
  unsigned SDGEdges = 0;
  double FrontendMs = 0, PTAMs = 0, SDGMs = 0;
};

/// One Table 2 / Table 3 row (identical columns in the paper).
struct InspectionRow {
  std::string Id;
  unsigned Thin = 0;
  unsigned Trad = 0;
  double Ratio = 0;
  unsigned Control = 0;
  unsigned ThinNoObjSens = 0;
  unsigned TradNoObjSens = 0;
  bool FoundAllThin = false;
  bool FoundAllTrad = false;
  /// False when the case reproduces the paper's "slicing was not
  /// useful" pattern (excluded from the main table).
  bool SlicingUseful = true;
  /// Full slice sizes (statement nodes) for the case's seed, computed
  /// by one batched SliceEngine run per shared graph rather than a
  /// traversal per case.
  unsigned ThinSliceStmts = 0;
  unsigned TradSliceStmts = 0;
};

/// One scalability sweep row.
struct ScalabilityRow {
  unsigned PadClasses = 0;
  unsigned SDGStmts = 0;
  double PTAMs = 0;
  double CIBuildMs = 0;
  double ThinSliceMs = 0;
  double TradSliceMs = 0;
  double CSBuildMs = 0;
  double SummaryMs = 0;
  unsigned CSHeapParamNodes = 0;
  unsigned SummaryEdges = 0;
  /// Multi-seed columns: the same seed set sliced sequentially with
  /// the legacy edge-record slicer vs. one SliceEngine batch.
  unsigned BatchSeeds = 0;
  double SeqLegacyMs = 0;
  double BatchMs = 0;
};

/// One context-sensitivity ablation row (paper Sec. 6.1: nanoxml-1's
/// slice shrinks 8067 -> 381 but BFS only 32 -> 26).
struct AblationRow {
  std::string Id;
  unsigned CITradSliceStmts = 0;
  unsigned CSTradSliceStmts = 0;
  unsigned CIBfs = 0;
  unsigned CSBfs = 0;
};

std::vector<Table1Row> runTable1();
/// Table 2; \p Strategy lets the threats-to-validity bench rerun the
/// whole experiment under depth-first exploration.
std::vector<InspectionRow> runDebuggingExperiment(
    InspectionStrategy Strategy = InspectionStrategy::BFS);
/// Table 3.
std::vector<InspectionRow> runToughCastExperiment(
    InspectionStrategy Strategy = InspectionStrategy::BFS);
std::vector<ScalabilityRow>
runScalability(const std::vector<unsigned> &PadSizes);
std::vector<AblationRow> runContextAblation();

/// Deterministic seed picker for multi-seed slicing experiments:
/// \p NumSeeds statements spread evenly (by IR order) over the
/// program's source statements. Stable across runs of one binary.
std::vector<const Instr *> collectSliceSeeds(const Program &P,
                                             unsigned NumSeeds);

/// One slice-throughput measurement: \p Seeds sliced three ways on
/// \p G — sequentially with the legacy edge-record slicer,
/// sequentially with the CSR slicer, and as one SliceEngine batch.
struct ThroughputRow {
  unsigned Seeds = 0;
  unsigned UniqueSeeds = 0;
  double SeqLegacyMs = 0; ///< N x sliceBackwardLegacy.
  double SeqMs = 0;       ///< N x sliceBackward (CSR path).
  double BatchMs = 0;     ///< One N-seed SliceEngine batch.
  double Speedup = 0;     ///< SeqLegacyMs / BatchMs.
};
ThroughputRow runSliceThroughput(const SDG &G,
                                 const std::vector<const Instr *> &Seeds,
                                 SliceMode Mode, unsigned Jobs);

/// Fixed-width text renderings (what the bench binaries print).
std::string formatTable1(const std::vector<Table1Row> &Rows);
std::string formatInspectionTable(const std::string &Title,
                                  const std::vector<InspectionRow> &Rows);
std::string formatScalability(const std::vector<ScalabilityRow> &Rows);
std::string formatAblation(const std::vector<AblationRow> &Rows);

/// Analysis concurrency the experiment drivers install into every
/// session they create (warm registry sessions and the timing
/// drivers' local ones). Default 1. Tables are byte-identical for
/// every value — asserted by the parallel determinism tests.
void setEvalThreads(unsigned Threads);

/// Drops the process-wide warm-session registry so the next driver
/// call rebuilds every artifact (e.g. under a new setEvalThreads
/// value — a warm registry would otherwise serve cached artifacts and
/// make cross-thread-count comparisons vacuous).
void resetEvalSessions();

/// Rewrites the workload so main() additionally runs \p PadClasses
/// generated padding classes (used by Table 1 and the scalability
/// sweep to reach realistic program sizes).
WorkloadProgram padWorkload(const WorkloadProgram &W, const std::string &Tag,
                            unsigned PadClasses, unsigned MethodsPerClass);

} // namespace tsl

#endif // THINSLICER_EVAL_EXPERIMENTS_H
