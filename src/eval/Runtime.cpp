//===-- Runtime.cpp - ThinJ standard container library ------------------------==//

#include "eval/Runtime.h"

#include <algorithm>

using namespace tsl;

namespace {

const char *const RuntimeSource = R"THINJ(
class Vector {
  var elems: Object[];
  var count: int;
  def init() {
    elems = new Object[10];
    count = 0;
  }
  def ensure() {
    if (count >= elems.length) {
      var bigger: Object[] = new Object[elems.length * 2 + 1];
      for (var i = 0; i < count; i = i + 1) {
        bigger[i] = elems[i];
      }
      elems = bigger;
    }
  }
  def add(p: Object) {
    ensure();
    elems[count] = p;
    count = count + 1;
  }
  def get(ind: int): Object {
    return elems[ind];
  }
  def set(ind: int, p: Object) {
    elems[ind] = p;
  }
  def size(): int {
    return count;
  }
  def isEmpty(): bool {
    return count == 0;
  }
  def removeLast(): Object {
    count = count - 1;
    var r = elems[count];
    elems[count] = null;
    return r;
  }
}

class Stack {
  var items: Vector;
  def init() {
    items = new Vector();
  }
  def push(p: Object) {
    items.add(p);
  }
  def pop(): Object {
    return items.removeLast();
  }
  def peek(): Object {
    return items.get(items.size() - 1);
  }
  def isEmpty(): bool {
    return items.isEmpty();
  }
  def depth(): int {
    return items.size();
  }
}

class ListNode {
  var item: Object;
  var next: ListNode;
  def init(v: Object) {
    item = v;
    next = null;
  }
}

class LinkedList {
  var head: ListNode;
  var tail: ListNode;
  var length: int;
  def init() {
    head = null;
    tail = null;
    length = 0;
  }
  def addLast(v: Object) {
    var node = new ListNode(v);
    if (tail == null) {
      head = node;
      tail = node;
    } else {
      tail.next = node;
      tail = node;
    }
    length = length + 1;
  }
  def get(ind: int): Object {
    var cur = head;
    var i = 0;
    while (i < ind) {
      cur = cur.next;
      i = i + 1;
    }
    return cur.item;
  }
  def size(): int {
    return length;
  }
}

class MapEntry {
  var skey: string;
  var value: Object;
  var next: MapEntry;
  def init(k: string, v: Object) {
    skey = k;
    value = v;
    next = null;
  }
}

class HashMap {
  var table: MapEntry[];
  var count: int;
  def init() {
    table = new MapEntry[16];
    count = 0;
  }
  def indexFor(key: string): int {
    var h = 0;
    var n = key.length();
    for (var i = 0; i < n; i = i + 1) {
      h = h * 31 + key.charAt(i);
    }
    if (h < 0) {
      h = 0 - h;
    }
    return h % table.length;
  }
  def put(key: string, value: Object) {
    var idx = indexFor(key);
    var e = table[idx];
    while (e != null) {
      if (e.skey.equals(key)) {
        e.value = value;
        return;
      }
      e = e.next;
    }
    var fresh = new MapEntry(key, value);
    fresh.next = table[idx];
    table[idx] = fresh;
    count = count + 1;
  }
  def get(key: string): Object {
    var idx = indexFor(key);
    var e = table[idx];
    while (e != null) {
      if (e.skey.equals(key)) {
        return e.value;
      }
      e = e.next;
    }
    return null;
  }
  def containsKey(key: string): bool {
    var idx = indexFor(key);
    var e = table[idx];
    while (e != null) {
      if (e.skey.equals(key)) {
        return true;
      }
      e = e.next;
    }
    return false;
  }
  def size(): int {
    return count;
  }
}
)THINJ";

} // namespace

const std::string &tsl::runtimeLibrarySource() {
  static const std::string Source(RuntimeSource);
  return Source;
}

unsigned tsl::runtimeLibraryLines() {
  const std::string &S = runtimeLibrarySource();
  return static_cast<unsigned>(std::count(S.begin(), S.end(), '\n'));
}
