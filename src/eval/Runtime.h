//===-- Runtime.h - ThinJ standard container library ------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThinJ source of the container classes every workload links against
/// (Vector, Stack, LinkedList, HashMap) — the analogue of the JDK
/// collections the paper analyzes alongside each benchmark. These are
/// real, analyzed code: thin slicing's whole point is tracing values
/// through container internals, and the pointer analysis's
/// object-sensitive cloning is keyed to these class names.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_EVAL_RUNTIME_H
#define THINSLICER_EVAL_RUNTIME_H

#include <string>

namespace tsl {

/// Returns the runtime library source. Workload sources are appended
/// after it; all line numbers in markers account for this prefix.
const std::string &runtimeLibrarySource();

/// Number of lines in the runtime library (offset for appended code).
unsigned runtimeLibraryLines();

} // namespace tsl

#endif // THINSLICER_EVAL_RUNTIME_H
