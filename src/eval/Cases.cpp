//===-- Cases.cpp - Table 2 debugging workloads --------------------------------==//
//
// Benchmark models with injected bugs for the debugging experiment
// (paper Section 6.2). Each family mirrors the dependence structure of
// the corresponding SIR benchmark's bugs:
//
//  - nanoxml:  values inserted into and retrieved from one or two
//    Vectors / a HashMap-of-Vectors index (the pattern the paper calls
//    out as thin slicing's sweet spot), plus one aliasing bug
//    (nanoxml-5) that needs one level of aliasing exposure;
//  - jtopas:   failures at or adjacent to the buggy statement;
//  - ant:      property plumbing plus a 12-return dispatcher whose
//    returns are all control dependent near the bug (ant-3);
//  - xml-security: a failing hash comparison where one bug is shallow
//    (xmlsec-1) and one is buried in the hash internals, where no
//    slicer helps (xmlsec-2, reported as excluded as in the paper).
//
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"

using namespace tsl;

//===----------------------------------------------------------------------===//
// nanoxml model
//===----------------------------------------------------------------------===//

static WorkloadProgram nanoxmlProgram() {
  return makeWorkload("nanoxml", R"THINJ(
class XmlElement {
  var nameParts: Vector;
  var attributes: HashMap;
  var children: Vector;
  var content: string;
  def init(n: string) {
    nameParts = new Vector();
    nameParts.add(n); //@ name-store
    attributes = new HashMap();
    children = new Vector();
    content = "?"; //@ n6-bug
  }
  def addChild(c: XmlElement) {
    children.add(c); //@ n2-addchild
  }
  def childAt(i: int): XmlElement {
    return (XmlElement) children.get(i); //@ child-get
  }
  def childCount(): int {
    return children.size();
  }
  def setAttribute(k: string, v: string) {
    attributes.put(k, v); //@ attr-put
  }
  def getAttribute(k: string): string {
    return (string) attributes.get(k); //@ attr-get
  }
  def setContent(c: string) {
    content = c; //@ content-store
  }
  def getContent(): string {
    return content; //@ content-load
  }
  def getName(): string {
    return (string) nameParts.get(0); //@ name-load
  }
  def clearAttributes() {
    attributes = new HashMap(); //@ n5-clear
  }
}

class Document {
  var index: HashMap;
  def init() {
    index = new HashMap();
  }
  def register(e: XmlElement) {
    var bucket = (Vector) index.get(e.getName());
    if (bucket == null) {
      bucket = new Vector();
      index.put(e.getName(), bucket);
    }
    bucket.add(e); //@ n5-bucket-add
  }
  def lookupFirst(nm: string): XmlElement {
    var bucket = (Vector) index.get(nm); //@ n5-index-get
    return (XmlElement) bucket.get(0); //@ n5-bucket-get
  }
  def addHeading(level: string, text: string) {
    var bucket = (Vector) index.get(level);
    if (bucket == null) {
      bucket = new Vector();
      index.put(level, bucket); //@ n3-index-put
    }
    bucket.add(text); //@ n3-bucket-add
  }
  def firstHeading(level: string): string {
    var bucket = (Vector) index.get(level); //@ n3-index-get
    return (string) bucket.get(0); //@ n3-bucket-get
  }
}

def parseAttrName(spec: string): string {
  var eq = spec.indexOf("=");
  var nm = spec.substring(0, eq);
  return nm;
}

def parseAttrValue(spec: string): string {
  var eq = spec.indexOf("=");
  var v = spec.substring(eq + 2, spec.length()); //@ n1-bug
  return v; //@ n1-ret
}

def parseElement(header: string): XmlElement {
  var sp = header.indexOf(" ");
  var nm = header;
  if (sp >= 0) {
    nm = header.substring(0, sp);
  }
  var elem = new XmlElement(nm); //@ elem-alloc
  if (sp >= 0) {
    var attrSpec = header.substring(sp + 1, header.length());
    var k = parseAttrName(attrSpec);
    var v = parseAttrValue(attrSpec); //@ n1-call
    elem.setAttribute(k, v); //@ n1-setattr
  }
  return elem;
}

def normalizeName(raw: string): string {
  var trimmed = raw.substring(1, raw.length()); //@ n2-bug
  return trimmed;
}

def buildTree(rootName: string, childNames: Vector): XmlElement {
  var root = new XmlElement(rootName);
  for (var i = 0; i < childNames.size(); i = i + 1) {
    var raw = (string) childNames.get(i); //@ n2-names-get
    var child = new XmlElement(normalizeName(raw)); //@ n2-child-alloc
    root.addChild(child); //@ n2-addchild-call
  }
  return root;
}

def featureAttrValue() {
  var e = parseElement("item id=42");
  print("ID: " + e.getAttribute("id")); //@ n1-seed
}

def featureTree() {
  var names = new Vector();
  names.add("head"); //@ n2-name-add
  names.add("body");
  var root = buildTree("html", names);
  var c = root.childAt(0); //@ n2-childat
  print("CHILD: " + c.getName()); //@ n2-seed
}

def featureIndex() {
  var doc = new Document();
  var raw = readLine(); //@ n3-input
  var trimmed = raw.substring(0, 3); //@ n3-bug
  doc.addHeading("h1", trimmed); //@ n3-add
  doc.addHeading("h2", "subtitle");
  var text = doc.firstHeading("h1");
  print("HEADING: " + text); //@ n3-seed
}

def printChildren(e: XmlElement) {
  var n = e.childCount() - 1; //@ n4-bug
  for (var i = 0; i < n; i = i + 1) { //@ n4-cond
    var c = e.childAt(i);
    print("ITEM: " + c.getName()); //@ n4-seed
  }
}

def featureChildren() {
  var names = new Vector();
  names.add("xa");
  names.add("xb");
  names.add("xc");
  var root = buildTree("list", names);
  printChildren(root);
}

def featureAlias() {
  var doc = new Document();
  var e = parseElement("form action=submit"); //@ n5-parse
  doc.register(e); //@ n5-register
  var alias = doc.lookupFirst("form"); //@ n5-lookup
  alias.clearAttributes(); //@ n5-clear-call
  print("ACTION: " + e.getAttribute("action")); //@ n5-seed
}

def featureDefault() {
  var e = parseElement("empty");
  print("TEXT: " + e.getContent()); //@ n6-seed
}

def main() {
  featureAttrValue();
  featureTree();
  featureIndex();
  featureChildren();
  featureAlias();
  featureDefault();
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// jtopas model
//===----------------------------------------------------------------------===//

static WorkloadProgram jtopasProgram() {
  return makeWorkload("jtopas", R"THINJ(
class Token {
  var text: string;
  var kind: int;
  def init(t: string, k: int) {
    text = t; //@ tok-text-store
    kind = k;
  }
  def getText(): string {
    return text;
  }
  def getKind(): int {
    return kind;
  }
}

class Tokenizer {
  var tokens: Vector;
  var keywordTable: HashMap;
  def init() {
    tokens = new Vector();
    // Injected bug jtopas-1: keywordTable is never initialized.
  }
  def classify(word: string): int {
    var entry = keywordTable.get(word); //@ jt1-seed
    if (entry == null) {
      return 0;
    }
    return 1;
  }
  def tokenize(line: string) {
    var n = line.length();
    var start = 0;
    for (var i = 0; i < n; i = i + 1) {
      var ch = line.charAt(i);
      if (ch == 32) {
        if (i > start) {
          var word = line.substring(start, i);
          tokens.add(new Token(word, classify(word))); //@ jt-add
        }
        start = i + 1;
      }
    }
    if (start < n) {
      var tail = line.substring(start, n);
      tokens.add(new Token(tail, classify(tail)));
    }
  }
  def tokenAt(i: int): Token {
    return (Token) tokens.get(i);
  }
}

def firstWord(line: string): string {
  var sp = line.indexOf(" ");
  if (sp < 0) {
    return line;
  }
  return line.substring(0, sp + 1); //@ jt2-bug
}

def featureFirstWord() {
  var w = firstWord(readLine());
  print("WORD: [" + w + "]"); //@ jt2-seed
}

def featureTokenize() {
  var t = new Tokenizer(); //@ jt1-ctor
  t.tokenize(readLine());
  if (t.tokens.size() > 0) {
    print("FIRST: " + t.tokenAt(0).getText());
  }
}

def main() {
  featureFirstWord();
  featureTokenize();
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// ant model
//===----------------------------------------------------------------------===//

static WorkloadProgram antProgram() {
  return makeWorkload("ant", R"THINJ(
class Target {
  var name: string;
  var deps: Vector;
  var status: int;
  def init(n: string) {
    name = n;
    deps = new Vector();
    status = 0;
  }
  def addDep(d: Target) {
    deps.add(d);
  }
  def getName(): string {
    return name;
  }
  def setStatus(s: int) {
    status = s; //@ status-store
  }
  def getStatus(): int {
    return status;
  }
}

class Project {
  var targets: HashMap;
  var props: HashMap;
  def init() {
    targets = new HashMap();
    props = new HashMap();
  }
  def setProp(k: string, v: string) {
    props.put(k, v); //@ prop-put
  }
  def getProp(k: string): string {
    return (string) props.get(k); //@ prop-get
  }
  def addTarget(t: Target) {
    targets.put(t.getName(), t);
  }
  def getTarget(n: string): Target {
    return (Target) targets.get(n); //@ target-get
  }
}

def featureMissingTarget(p: Project) {
  var t = p.getTarget("deploy"); //@ ant1-bug
  print("TARGET: " + t.getName()); //@ ant1-seed
}

def featureProps(p: Project) {
  p.setProp("src", "src-dir");
  p.setProp("build", "build-dir");
  p.setProp("out", p.getProp("src")); //@ ant2-bug
  print("OUT: " + p.getProp("out")); //@ ant2-seed
}

def statusName(code: int): string {
  if (code == 0) { return "idle"; } //@ ant3-r0
  if (code == 1) { return "parsing"; }
  if (code == 2) { return "resolving"; }
  if (code == 3) { return "compiling"; }
  if (code == 4) { return "linking"; }
  if (code == 5) { return "testing"; }
  if (code == 6) { return "packaging"; }
  if (code == 7) { return "deploying"; }
  if (code == 8) { return "cleaning"; }
  if (code == 9) { return "failed"; }
  if (code == 10) { return "skipped"; }
  return "unknown"; //@ ant3-r11
}

def computeCode(t: Target): int {
  var base = t.getStatus();
  var code = base * 2 + 1; //@ ant3-bug
  return code;
}

def featureStatus(p: Project) {
  var t = new Target("compile");
  t.setStatus(readInt()); //@ ant3-status-in
  p.addTarget(t);
  var fetched = p.getTarget("compile");
  var code = computeCode(fetched); //@ ant3-compute
  var s = statusName(code);
  print("STATUS: " + s); //@ ant3-seed
}

def pickMode(flag: bool): string {
  var mode = "quiet";
  if (flag) {
    mode = "verbose"; //@ ant4-bug
  }
  return mode;
}

def featureMode() {
  var verbose = readInt() == 0; //@ ant4-flag
  var mode = pickMode(verbose);
  print("MODE: " + mode); //@ ant4-seed
}

def main() {
  var p = new Project();
  featureProps(p);
  featureStatus(p);
  featureMode();
  featureMissingTarget(p);
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// xml-security model
//===----------------------------------------------------------------------===//

static WorkloadProgram xmlsecProgram() {
  return makeWorkload("xmlsec", R"THINJ(
def rotate(x: int, k: int): int {
  var y = x * 2 + k;
  if (y < 0) {
    y = 0 - y;
  }
  return y % 65536;
}

def mixRound(h: int, b: int): int {
  var x = h * 31 + b;
  x = x + x / 7; //@ xs2-bug
  x = rotate(x, 3);
  x = x * 17 + 11;
  x = rotate(x, 5);
  x = x + b * 13;
  return x % 32768;
}

def computeHash(data: string): int {
  var h = 7;
  var n = data.length();
  for (var i = 0; i < n; i = i + 1) {
    h = mixRound(h, data.charAt(i)); //@ xs2-loop
  }
  return h;
}

def featureShallow() {
  var payload = readLine();
  var h = computeHash(payload);
  var expected = h + 1; //@ xs1-bug
  if (h != expected) {
    print("SIG MISMATCH: " + h + " vs " + expected); //@ xs1-seed
  }
}

def featureDeep() {
  var payload = readLine();
  var h = computeHash(payload); //@ xs2-compute
  if (h != 12345) {
    print("HASH MISMATCH: " + h); //@ xs2-seed
  }
}

def main() {
  featureShallow();
  featureDeep();
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// Case table
//===----------------------------------------------------------------------===//

std::vector<BugCase> tsl::debuggingCases() {
  std::vector<BugCase> Cases;
  WorkloadProgram Nano = nanoxmlProgram();
  WorkloadProgram Jtopas = jtopasProgram();
  WorkloadProgram Ant = antProgram();
  WorkloadProgram Xmlsec = xmlsecProgram();

  auto Add = [&Cases](BugCase Case) { Cases.push_back(std::move(Case)); };

  // nanoxml-1: attribute value truncated by an off-by-one substring,
  // traced through the element's HashMap.
  Add({"nanoxml-1", Nano, "n1-seed", {"n1-bug"}, 0, {}, false, {}, {}, true});

  // nanoxml-2: child name mangled, traced through two Vectors (names
  // vector, children vector).
  Add({"nanoxml-2", Nano, "n2-seed", {"n2-bug"}, 0, {}, false, {}, {}, true});

  // nanoxml-3: element content truncated, element traced through a
  // Vector nested in a HashMap index.
  Add({"nanoxml-3", Nano, "n3-seed", {"n3-bug"}, 0, {}, false, {}, {}, true});

  // nanoxml-4: off-by-one loop bound; the user follows one control
  // dependence (the loop condition) and slices on from it.
  Add({"nanoxml-4", Nano, "n4-seed", {"n4-bug"}, 1, {"n4-cond"}, false, {},
       {}, true});

  // nanoxml-5: attributes cleared through an alias obtained from the
  // index; requires one level of aliasing exposure (Sec. 6.2).
  Add({"nanoxml-5", Nano, "n5-seed", {"n5-clear"}, 1, {}, true, {}, {},
       true});

  // nanoxml-6: wrong default content stored by the constructor.
  Add({"nanoxml-6", Nano, "n6-seed", {"n6-bug"}, 0, {}, false, {}, {}, true});

  // jtopas-1: the buggy statement itself fails (null keyword table).
  Add({"jtopas-1", Jtopas, "jt1-seed", {"jt1-seed"}, 0, {}, false,
       {"alpha beta"}, {}, true});

  // jtopas-2: first word keeps its trailing separator.
  Add({"jtopas-2", Jtopas, "jt2-seed", {"jt2-bug"}, 1, {}, false,
       {"alpha beta"}, {}, true});

  // ant-1: missing target; the user slices on the null receiver at the
  // failure, whose producer is the line above — seed and desired are
  // the same statement, as in jtopas-1, plus one control dependence.
  Add({"ant-1", Ant, "ant1-bug", {"ant1-bug"}, 1, {}, false, {}, {}, true});

  // ant-2: property initialized from the wrong property.
  Add({"ant-2", Ant, "ant2-seed", {"ant2-bug"}, 0, {}, false, {}, {}, true});

  // ant-3: a 12-return status dispatcher; each return is control
  // dependent near the bug, so all of them are charged (paper: 15).
  // The user keeps slicing from the dispatch conditionals.
  Add({"ant-3", Ant, "ant3-seed", {"ant3-bug"}, 15, {"ant3-r0"}, false, {},
       {1}, true});

  // ant-4: inverted verbosity flag.
  Add({"ant-4", Ant, "ant4-seed", {"ant4-bug"}, 2, {"ant4-flag"}, false, {},
       {0}, true});

  // xml-security-1: shallow signature comparison bug.
  Add({"xmlsec-1", Xmlsec, "xs1-seed", {"xs1-bug"}, 1, {}, false,
       {"payload-a", "payload-b"}, {}, true});

  // xml-security-2: the bug is buried inside the hash rounds; per the
  // paper, no kind of slicing helps here (reported as excluded).
  Add({"xmlsec-2", Xmlsec, "xs2-seed", {"xs2-bug"}, 0, {}, false,
       {"payload-a", "payload-b"}, {}, false});

  return Cases;
}
