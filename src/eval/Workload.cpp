//===-- Workload.cpp - Workload infrastructure and paper figures ---------------==//

#include "eval/Workload.h"

#include "eval/Runtime.h"

using namespace tsl;

WorkloadProgram tsl::makeWorkload(const std::string &Name,
                                  const std::string &Body,
                                  bool IncludeRuntime) {
  WorkloadProgram W;
  W.Name = Name;
  unsigned Offset = 0;
  if (IncludeRuntime) {
    W.Source = runtimeLibrarySource();
    Offset = runtimeLibraryLines();
  }
  W.Source += Body;

  // Scan "//@ name" markers line by line over the body.
  unsigned Line = Offset;
  size_t Pos = 0;
  while (Pos <= Body.size()) {
    size_t End = Body.find('\n', Pos);
    if (End == std::string::npos)
      End = Body.size();
    ++Line;
    std::string_view Text(Body.data() + Pos, End - Pos);
    size_t MarkPos = Text.find("//@ ");
    if (MarkPos != std::string_view::npos) {
      size_t NameStart = MarkPos + 4;
      size_t NameEnd = NameStart;
      while (NameEnd < Text.size() && !isspace(Text[NameEnd]))
        ++NameEnd;
      std::string MarkerName(Text.substr(NameStart, NameEnd - NameStart));
      if (!MarkerName.empty())
        W.Markers[MarkerName] = Line;
    }
    Pos = End + 1;
  }
  return W;
}

const Instr *tsl::instrAtLine(const Program &P, unsigned Line) {
  const Instr *Last = nullptr;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          Last = I.get();
  return Last;
}

const CastInstr *tsl::castAtLine(const Program &P, unsigned Line) {
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          if (const auto *C = dyn_cast<CastInstr>(I.get()))
            return C;
  return nullptr;
}

const Instr *tsl::heapAccessAtLine(const Program &P, unsigned Line) {
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          switch (I->kind()) {
          case InstrKind::Load:
          case InstrKind::Store:
          case InstrKind::ArrayLoad:
          case InstrKind::ArrayStore:
            return I.get();
          default:
            break;
          }
  return nullptr;
}

const Instr *tsl::branchAtLine(const Program &P, unsigned Line) {
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line && isa<BranchInstr>(I.get()))
          return I.get();
  return nullptr;
}

SourceLine tsl::sourceLineAt(const Program &P, unsigned Line) {
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          return {M.get(), Line};
  return {nullptr, Line};
}

//===----------------------------------------------------------------------===//
// Figure 1
//===----------------------------------------------------------------------===//

WorkloadProgram tsl::makeFigure1() {
  return makeWorkload("figure1", R"THINJ(
class SessionState {
  var names: Vector;
  def setNames(v: Vector) {
    names = v;
  }
  def getNames(): Vector {
    return names;
  }
}

class Session {
  static var state: SessionState;
  static def getState(): SessionState {
    if (Session.state == null) {
      Session.state = new SessionState();
    }
    return Session.state;
  }
}

def readNames(count: int): Vector {
  var firstNames = new Vector();
  for (var i = 0; i < count; i = i + 1) {
    var fullName = readLine();
    var spaceInd = fullName.indexOf(" ");
    var firstName = fullName.substring(0, spaceInd - 1); //@ bug
    firstNames.add(firstName); //@ add
  }
  return firstNames;
}

def printNames(firstNames: Vector) {
  for (var i = 0; i < firstNames.size(); i = i + 1) {
    var firstName = (string) firstNames.get(i); //@ get
    print("FIRST NAME: " + firstName); //@ seed
  }
}

def main() {
  var count = readInt();
  var firstNames = readNames(count);
  var s = Session.getState();
  s.setNames(firstNames); //@ setnames
  var t = Session.getState();
  printNames(t.getNames()); //@ getnames
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// Figure 2
//===----------------------------------------------------------------------===//

WorkloadProgram tsl::makeFigure2() {
  return makeWorkload("figure2", R"THINJ(
class A {
  var f: Object;
}

class B {
}

def main() {
  var x = new A(); //@ base-alloc
  var z = x; //@ alias1
  var y = new B(); //@ producer-alloc
  var w = x; //@ alias2
  w.f = y; //@ producer-store
  if (w == z) { //@ cond
    var v = z.f; //@ seed
    print(v);
  }
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// Figure 4
//===----------------------------------------------------------------------===//

WorkloadProgram tsl::makeFigure4() {
  return makeWorkload("figure4", R"THINJ(
class ClosedException {
}

class File {
  var open: bool;
  def init() {
    this.open = true; //@ openfield-true
  }
  def isOpen(): bool {
    return this.open; //@ isopen
  }
  def close() {
    this.open = false; //@ openfield-false
  }
}

def readFromFile(f: File) {
  var open = f.isOpen(); //@ readopen
  if (!open) { //@ cond
    throw new ClosedException(); //@ seed
  }
  print("read ok");
}

def main() {
  var f = new File(); //@ file-alloc
  var files = new Vector();
  files.add(f); //@ vec-add
  var g = (File) files.get(0); //@ vec-get-1
  g.close(); //@ close-call
  var h = (File) files.get(0); //@ vec-get-2
  readFromFile(h); //@ read-call
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// Figure 5
//===----------------------------------------------------------------------===//

WorkloadProgram tsl::makeFigure5() {
  return makeWorkload("figure5", R"THINJ(
class Node {
  var op: int;
  static var ADD_NODE_OP: int = 1; //@ tagstore
  static var SUB_NODE_OP: int = 2;
  def init(op0: int) {
    this.op = op0; //@ superstore
  }
}

class AddNode extends Node {
  var lhs: Node;
  var rhs: Node;
  def init(l: Node, r: Node) {
    super(Node.ADD_NODE_OP); //@ addnode-ctor
    lhs = l;
    rhs = r;
  }
}

class SubNode extends Node {
  def init() {
    super(Node.SUB_NODE_OP);
  }
}

def simplify(n: Node) {
  var op = n.op; //@ opread
  if (op == 1) { //@ switchcond
    var add = (AddNode) n; //@ cast
    print(add.op);
  } else {
    print("other");
  }
}

def main() {
  var a = new AddNode(null, null);
  var s = new SubNode();
  simplify(a);
  simplify(s);
}
)THINJ");
}
