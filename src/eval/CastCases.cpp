//===-- CastCases.cpp - Table 3 tough-cast workloads ----------------------------==//
//
// Workload models for the program understanding experiment (paper
// Section 6.3): downcasts the pointer analysis cannot verify, whose
// safety rests on global invariants. Families mirror the SPECjvm98
// benchmarks the paper studied:
//
//  - mtrt:  scene primitives tagged with a kind field;
//  - jess:  facts and rule nodes flowing through an agenda Vector,
//           casts guarded by instanceof checks (small slices, a couple
//           of control deps);
//  - javac: a large opcode-tagged Node hierarchy (Figure 5 at scale) —
//           the desired statements are the tag writes in *all*
//           constructors, which is where the thin/traditional gap is
//           largest;
//  - jack:  parser tokens stored in containers, where the NoObjSens
//           ablation merges the token Vector with unrelated Vectors
//           and inflates the inspection counts.
//
//===----------------------------------------------------------------------===//

#include "eval/Generator.h"
#include "eval/Workload.h"

using namespace tsl;

//===----------------------------------------------------------------------===//
// mtrt model
//===----------------------------------------------------------------------===//

static WorkloadProgram mtrtProgram() {
  return makeWorkload("mtrt", R"THINJ(
class Primitive {
  var kind: int;
  def init(k: int) {
    kind = k; //@ mtrt-kindstore
  }
}

class Sphere extends Primitive {
  var radius: int;
  def init(r: int) {
    super(1); //@ mtrt-sphere-tag
    radius = r;
  }
}

class Triangle extends Primitive {
  var area: int;
  def init(a: int) {
    super(2); //@ mtrt-tri-tag
    area = a;
  }
}

class Scene {
  var prims: Vector;
  var lights: Vector;
  def init() {
    prims = new Vector();
    lights = new Vector();
  }
  def addPrim(p: Primitive) {
    prims.add(p); //@ mtrt-addprim
  }
  def primAt(i: int): Primitive {
    return (Primitive) prims.get(i);
  }
  def count(): int {
    return prims.size();
  }
}

def loadScene(s: Scene, n: int) {
  for (var i = 0; i < n; i = i + 1) {
    var w = readInt();
    if (w % 2 == 0) {
      s.addPrim(new Sphere(w)); //@ mtrt-mk-sphere
    } else {
      s.addPrim(new Triangle(w)); //@ mtrt-mk-tri
    }
  }
}

def intersectSphere(p: Primitive): int {
  var k = p.kind; //@ mtrt1-kindread
  if (k == 1) {
    var sp = (Sphere) p; //@ mtrt1-cast
    return sp.radius * 2;
  }
  return 0;
}

def shadeTriangle(p: Primitive): int {
  var k = p.kind; //@ mtrt2-kindread
  if (k == 2) {
    var tr = (Triangle) p; //@ mtrt2-cast
    return tr.area + 1;
  }
  return 0;
}

def main() {
  var s = new Scene();
  loadScene(s, readInt());
  var total = 0;
  for (var i = 0; i < s.count(); i = i + 1) {
    var p = s.primAt(i);
    total = total + intersectSphere(p);
    total = total + shadeTriangle(p);
  }
  print("TOTAL: " + total);
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// jess model
//===----------------------------------------------------------------------===//

static WorkloadProgram jessProgram() {
  return makeWorkload("jess", R"THINJ(
class Fact {
  var arity: int;
  var headName: string;
  def init(h: string, a: int) {
    headName = h;
    arity = a;
  }
}

class Rule {
  var priority: int;
  var ruleName: string;
  def init(n: string, p: int) {
    ruleName = n;
    priority = p;
  }
}

class Engine {
  var memory: Vector;
  var factCount: int;
  var bindings: HashMap;
  def init() {
    memory = new Vector();
    factCount = 0;
    bindings = new HashMap();
  }
  def assert(f: Fact) {
    memory.add(f); //@ jess-assert
    factCount = factCount + 1;
  }
  def addRule(r: Rule) {
    memory.add(r); //@ jess-addrule
  }
  def memoryAt(i: int): Object {
    return memory.get(i);
  }
  def size(): int {
    return memory.size();
  }
}

def matchArity(o: Object): int {
  if (o instanceof Fact) { //@ jess1-guard
    var f = (Fact) o; //@ jess1-cast
    return f.arity;
  }
  return 0 - 1;
}

def factName(o: Object): string {
  var f = (Fact) o; //@ jess2-cast
  return f.headName;
}

def rulePriority(o: Object): int {
  if (o instanceof Rule) { //@ jess3-guard
    var r = (Rule) o; //@ jess3-cast
    return r.priority;
  }
  return 0;
}

def ruleName(o: Object): string {
  if (o instanceof Rule) { //@ jess4-guard
    var r = (Rule) o; //@ jess4-cast
    return r.ruleName;
  }
  return "none";
}

def factPairArity(o: Object, p: Object): int {
  var a = (Fact) o; //@ jess5-cast
  var b = (Fact) p; //@ jess6-cast
  return a.arity + b.arity;
}

def main() {
  var e = new Engine();
  // The working memory holds facts first, then rules — the casts rely
  // on this global convention, which no pointer analysis can see.
  e.assert(new Fact("goal", 2)); //@ jess-mkfact-1
  e.assert(new Fact("state", 3)); //@ jess-mkfact-2
  e.addRule(new Rule("fire", 5)); //@ jess-mkrule
  var total = 0;
  for (var i = 0; i < e.size(); i = i + 1) {
    var o = e.memoryAt(i);
    total = total + matchArity(o);
    total = total + rulePriority(o);
    print(ruleName(o));
    if (i < e.factCount) {
      print(factName(o));
    }
  }
  total = total + factPairArity(e.memoryAt(0), e.memoryAt(1));
  print("FIRED: " + total);
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// javac model (generated hierarchy)
//===----------------------------------------------------------------------===//

static WorkloadProgram javacProgram() {
  std::string Body = "\n";
  Body += generateJavacModel("jv", 32);
  Body += R"THINJ(
def main() {
  var total = jvRun();
  print("SIMPLIFIED: " + total);
}
)THINJ";
  return makeWorkload("javac", Body);
}

//===----------------------------------------------------------------------===//
// jack model
//===----------------------------------------------------------------------===//

static WorkloadProgram jackProgram() {
  return makeWorkload("jack", R"THINJ(
class Tok {
  var text: string;
  var code: int;
  def init(t: string, c: int) {
    text = t;
    code = c; //@ jack-codestore
  }
}

class TokenStream {
  var toks: Vector;
  var pos: int;
  def init() {
    toks = new Vector();
    pos = 0;
  }
  def push(t: Tok) {
    toks.add(t); //@ jack-push
  }
  def pushErrorMarker(on: bool) {
    // Error recovery plants a bare string marker in the stream; the
    // parser's casts are safe only because well-formed input never
    // takes this path — a global invariant no pointer analysis sees.
    if (on) {
      toks.add("<error>"); //@ jack-marker
    }
  }
  def next(): Object {
    var t = toks.get(pos);
    pos = pos + 1;
    return t;
  }
  def peek(): Object {
    return toks.get(pos);
  }
  def more(): bool {
    return pos < toks.size();
  }
}

class SymbolTable {
  var names: Vector;
  var kinds: Vector;
  def init() {
    names = new Vector();
    kinds = new Vector();
  }
  def declare(n: string, k: string) {
    names.add(n); //@ jack-sym-name
    kinds.add(k);
  }
  def nameAt(i: int): string {
    return (string) names.get(i);
  }
}

def lex(stream: TokenStream, line: string) {
  var n = line.length();
  var start = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (line.charAt(i) == 32) {
      if (i > start) {
        var word = line.substring(start, i);
        stream.push(new Tok(word, word.length())); //@ jack-mktok-1
      }
      start = i + 1;
    }
  }
  if (start < n) {
    stream.push(new Tok(line.substring(start, n), 9)); //@ jack-mktok-2
  }
}

def parseName(stream: TokenStream): string {
  var t = (Tok) stream.next(); //@ jack1-cast
  return t.text;
}

def parseCode(stream: TokenStream): int {
  var t = (Tok) stream.next(); //@ jack2-cast
  return t.code;
}

def peekCode(stream: TokenStream): int {
  var t = (Tok) stream.peek(); //@ jack3-cast
  return t.code;
}

def parseDecl(stream: TokenStream, syms: SymbolTable) {
  var t = (Tok) stream.next(); //@ jack4-cast
  syms.declare(t.text, "decl");
}

def parseExpr(stream: TokenStream): int {
  var t = (Tok) stream.next(); //@ jack5-cast
  var v = t.code * 2;
  return v;
}

def parseStmt(stream: TokenStream): int {
  var t = (Tok) stream.next(); //@ jack6-cast
  if (t.code > 3) {
    return t.code;
  }
  return 0;
}

def parseBlock(stream: TokenStream): int {
  var total = 0;
  while (stream.more()) {
    var t = (Tok) stream.next(); //@ jack7-cast
    total = total + t.code;
  }
  return total;
}

def reportTok(o: Object): string {
  var t = (Tok) o; //@ jack8-cast
  return t.text + "/" + t.code;
}

def countLong(stream: TokenStream): int {
  var c = 0;
  for (var i = 0; i < stream.toks.size(); i = i + 1) {
    var t = (Tok) stream.toks.get(i); //@ jack9-cast
    if (t.code > 4) {
      c = c + 1;
    }
  }
  return c;
}

def lastToken(stream: TokenStream): string {
  var t = (Tok) stream.toks.get(stream.toks.size() - 1); //@ jack10-cast
  return t.text;
}

def buildIncludePaths(): Vector {
  var paths = new Vector();
  paths.add("lib/core"); //@ jack-path-1
  paths.add("lib/net");
  paths.add("src/main");
  var expanded = new Vector();
  for (var i = 0; i < paths.size(); i = i + 1) {
    var p = (string) paths.get(i);
    expanded.add(p + "/include");
    expanded.add(p + "/gen");
  }
  return expanded;
}

def collectDiagnostics(count: int): Vector {
  var diags = new Vector();
  for (var i = 0; i < count; i = i + 1) {
    diags.add("warning-" + i + ": unused symbol"); //@ jack-diag
  }
  return diags;
}

def main() {
  var stream = new TokenStream();
  var syms = new SymbolTable();
  var includes = buildIncludePaths();
  var diags = collectDiagnostics(4);
  print("INC: " + (string) includes.get(0));
  print("DIAG: " + (string) diags.get(0));
  lex(stream, readLine());
  stream.pushErrorMarker(readInt() == 77);
  syms.declare("root", "unit");
  print("NAME: " + parseName(stream));
  print("CODE: " + parseCode(stream));
  if (stream.more()) {
    print("PEEK: " + peekCode(stream));
    parseDecl(stream, syms);
  }
  if (stream.more()) {
    print("EXPR: " + parseExpr(stream));
  }
  if (stream.more()) {
    print("STMT: " + parseStmt(stream));
  }
  print("BLOCK: " + parseBlock(stream));
  print(reportTok(stream.toks.get(0)));
  print("LONG: " + countLong(stream));
  print("LAST: " + lastToken(stream));
  print("SYM: " + syms.nameAt(0));
}
)THINJ");
}

//===----------------------------------------------------------------------===//
// Case table
//===----------------------------------------------------------------------===//

std::vector<CastCase> tsl::toughCastCases() {
  std::vector<CastCase> Cases;
  WorkloadProgram Mtrt = mtrtProgram();
  WorkloadProgram Jess = jessProgram();
  WorkloadProgram Javac = javacProgram();
  WorkloadProgram Jack = jackProgram();

  auto Add = [&Cases](CastCase Case) { Cases.push_back(std::move(Case)); };

  // mtrt: the casts are safe because the kind tag distinguishes the
  // constructors; the user slices from the tag read next to the cast
  // (Figure 5 protocol); witnesses are the tag writes.
  Add({"mtrt-1", Mtrt, "mtrt1-cast", "mtrt1-kindread",
       {"mtrt-sphere-tag", "mtrt-tri-tag", "mtrt-kindstore"}, 0});
  Add({"mtrt-2", Mtrt, "mtrt2-cast", "mtrt2-kindread",
       {"mtrt-sphere-tag", "mtrt-tri-tag", "mtrt-kindstore"}, 0});

  // jess: casts on agenda/rule containers; witnesses are the add
  // sites showing only the right class flows in.
  Add({"jess-1", Jess, "jess1-cast", "",
       {"jess-mkfact-1", "jess-mkfact-2"}, 2});
  Add({"jess-2", Jess, "jess2-cast", "",
       {"jess-mkfact-1", "jess-mkfact-2"}, 0});
  Add({"jess-3", Jess, "jess3-cast", "", {"jess-mkrule"}, 2});
  Add({"jess-4", Jess, "jess4-cast", "", {"jess-mkrule"}, 2});
  Add({"jess-5", Jess, "jess5-cast", "",
       {"jess-mkfact-1", "jess-mkfact-2"}, 2});
  Add({"jess-6", Jess, "jess6-cast", "",
       {"jess-mkfact-1", "jess-mkfact-2"}, 2});

  // javac: understanding each cast means checking the opcode written
  // by every constructor (32 subclasses); the user slices from the
  // opcode read after following one control dependence.
  for (unsigned K = 0; K != 4; ++K) {
    CastCase Case;
    Case.Id = "javac-" + std::to_string(K + 1);
    Case.Prog = Javac;
    Case.CastMarker = "jv-cast-" + std::to_string(K);
    Case.SeedMarker = "jv-opread";
    Case.DesiredMarkers.push_back("jv-seedstore");
    Case.DesiredMarkers.push_back("jv-opfun");
    for (unsigned I = 0; I != 32; ++I)
      Case.DesiredMarkers.push_back("jv-tag-" + std::to_string(I));
    Case.NumControl = 1;
    Add(std::move(Case));
  }

  // jack: token-stream casts; witnesses are the token constructions.
  const char *JackDesired[] = {"jack-mktok-1", "jack-mktok-2", "jack-push"};
  for (unsigned K = 0; K != 10; ++K) {
    CastCase Case;
    Case.Id = "jack-" + std::to_string(K + 1);
    Case.Prog = Jack;
    Case.CastMarker = "jack" + std::to_string(K + 1) + "-cast";
    Case.SeedMarker = "";
    Case.DesiredMarkers.assign(JackDesired, JackDesired + 3);
    Case.NumControl = 0;
    Add(std::move(Case));
  }

  return Cases;
}
