//===-- Workload.h - Evaluation workloads ------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThinJ workload programs for the evaluation: the paper's running
/// examples (Figures 1, 2, 4, 5), benchmark models with injected bugs
/// for the debugging experiment (Table 2), and tough-cast models for
/// the program understanding experiment (Table 3).
///
/// Statements of interest are located through marker comments of the
/// form "//@ name" scanned from the raw source text, so line numbers
/// stay correct as programs evolve.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_EVAL_WORKLOAD_H
#define THINSLICER_EVAL_WORKLOAD_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "slicer/Slicer.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace tsl {

/// A compiled-ready workload: source text plus named line markers.
struct WorkloadProgram {
  std::string Name;
  std::string Source; ///< Complete source (runtime library included).
  std::unordered_map<std::string, unsigned> Markers; ///< name -> line.

  /// The line of marker \p Name; 0 when absent.
  unsigned markerLine(const std::string &MarkerName) const {
    auto It = Markers.find(MarkerName);
    return It == Markers.end() ? 0 : It->second;
  }
};

/// Scans "//@ name" markers and builds a WorkloadProgram whose Source
/// is the runtime library followed by \p Body (markers account for the
/// offset).
WorkloadProgram makeWorkload(const std::string &Name,
                             const std::string &Body,
                             bool IncludeRuntime = true);

/// The last instruction whose source line is \p Line (the statement's
/// top-level operation in lowering order), or null.
const Instr *instrAtLine(const Program &P, unsigned Line);

/// The cast instruction at \p Line, or null.
const CastInstr *castAtLine(const Program &P, unsigned Line);

/// The heap access (Load/Store/ArrayLoad/ArrayStore) at \p Line, or
/// null — the right seed for aliasing explanations.
const Instr *heapAccessAtLine(const Program &P, unsigned Line);

/// The branch at \p Line, or null — the right pivot for manually
/// followed control dependences.
const Instr *branchAtLine(const Program &P, unsigned Line);

/// The SourceLine of \p Line (any instruction's method), usable as a
/// desired statement for the inspection metric.
SourceLine sourceLineAt(const Program &P, unsigned Line);

//===----------------------------------------------------------------------===//
// Paper figures
//===----------------------------------------------------------------------===//

/// Figure 1: first names flow through a Vector and a SessionState; the
/// bug is an off-by-one in substring. Markers: seed, bug, add, get,
/// arraywrite, arrayread, param.
WorkloadProgram makeFigure1();

/// Figure 2: the minimal producers-vs-explainers example. Markers:
/// seed, producer-store, producer-alloc, alias1, alias2, cond,
/// base-alloc.
WorkloadProgram makeFigure2();

/// Figure 4: a File is closed through an alias obtained from a Vector;
/// expansion is needed to explain the aliasing. Markers: seed, throw,
/// openfield-true, openfield-false, isopen, readopen, close-call,
/// file-alloc, cond.
WorkloadProgram makeFigure4();

/// Figure 5: the javac-style tough cast guarded by an opcode tag.
/// Markers: cast, opread, switchcond, superstore, tagstore, addnode-
/// ctor.
WorkloadProgram makeFigure5();

//===----------------------------------------------------------------------===//
// Experiment cases
//===----------------------------------------------------------------------===//

/// One injected-bug debugging task (paper Section 6.2).
struct BugCase {
  std::string Id;         ///< e.g. "nanoxml-1".
  WorkloadProgram Prog;
  std::string SeedMarker; ///< Failure point.
  std::vector<std::string> DesiredMarkers; ///< The bug (or witnesses).
  unsigned NumControl = 0; ///< Manually identified control deps.
  /// Conditionals the user follows by hand (extra traversal roots);
  /// lexically close to the thin slice per paper Section 4.2.
  std::vector<std::string> PivotMarkers;
  /// The nanoxml-5 configuration: expose one level of aliasing
  /// explainers during inspection (paper Section 6.2).
  bool ExpandAliasOneLevel = false;
  std::vector<std::string> InputLines;
  std::vector<int64_t> InputInts;
  /// False for the xml-security pattern where no slicer helps.
  bool SlicingUseful = true;
};

/// All Table 2 debugging cases.
std::vector<BugCase> debuggingCases();

/// One tough-cast understanding task (paper Section 6.3).
struct CastCase {
  std::string Id; ///< e.g. "javac-1".
  WorkloadProgram Prog;
  std::string CastMarker; ///< The downcast under study.
  /// Where the user slices from. Empty = the cast itself; for
  /// tag-guarded casts it is the tag read the user reaches by
  /// following one control dependence from the cast (the paper's
  /// Figure 5 protocol).
  std::string SeedMarker;
  std::vector<std::string> DesiredMarkers; ///< Safety witnesses.
  unsigned NumControl = 0;
};

/// All Table 3 tough-cast cases.
std::vector<CastCase> toughCastCases();

} // namespace tsl

#endif // THINSLICER_EVAL_WORKLOAD_H
