//===-- Generator.cpp - Program generators --------------------------------------==//

#include "eval/Generator.h"

#include "eval/Runtime.h"

using namespace tsl;

namespace {

/// Tiny deterministic PRNG (xorshift64*) so generated programs are
/// reproducible across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, Bound).
  unsigned below(unsigned Bound) {
    return Bound ? static_cast<unsigned>(next() % Bound) : 0;
  }

private:
  uint64_t State;
};

std::string num(uint64_t N) { return std::to_string(N); }

} // namespace

//===----------------------------------------------------------------------===//
// javac-style Node hierarchy
//===----------------------------------------------------------------------===//

std::string tsl::generateJavacModel(const std::string &Prefix,
                                    unsigned NumSubclasses) {
  std::string S;
  std::string Base = Prefix + "Node";

  S += "class " + Base + " {\n";
  S += "  var op: int;\n";
  S += "  var left: " + Base + ";\n";
  S += "  var right: " + Base + ";\n";
  S += "  def init(op0: int) {\n";
  S += "    this.op = op0; //@ " + Prefix + "-seedstore\n";
  S += "    left = null;\n";
  S += "    right = null;\n";
  S += "  }\n";
  S += "}\n\n";

  for (unsigned I = 0; I != NumSubclasses; ++I) {
    std::string Sub = Base + num(I);
    S += "class " + Sub + " extends " + Base + " {\n";
    S += "  var payload" + num(I) + ": int;\n";
    S += "  def init(p: int, l: " + Base + ") {\n";
    S += "    super(" + Prefix + "Opcode(" + num(I) + ")); //@ " + Prefix +
         "-tag-" + num(I) + "\n";
    S += "    payload" + num(I) + " = p;\n";
    S += "    left = l;\n";
    S += "  }\n";
    S += "}\n\n";
  }

  // Opcode assignment goes through one level of indirection, as
  // javac's ByteCodes constants do; the defining computation is part
  // of every cast-safety argument.
  S += "def " + Prefix + "Opcode(k: int): int {\n";
  S += "  return k + 1; //@ " + Prefix + "-opfun\n";
  S += "}\n\n";

  // Payload computation with some arithmetic depth; its flow is
  // value-level and ends up in the thin slice frontier of payload
  // reads, not of the opcode.
  S += "def " + Prefix + "Payload(seed: int): int {\n";
  S += "  var a = seed * 7 + 3;\n";
  S += "  var b = a % 101;\n";
  S += "  if (b < 0) {\n    b = 0 - b;\n  }\n";
  S += "  return b * 2 + seed;\n";
  S += "}\n\n";

  // Builder constructing one node of each kind into a Vector, chained
  // as children of each other (tree plumbing that only traditional
  // slices wade through).
  S += "def " + Prefix + "BuildNodes(): Vector {\n";
  S += "  var nodes = new Vector();\n";
  S += "  var prev: " + Base + " = new " + Base + num(0) + "(" + Prefix +
       "Payload(0), null); //@ " + Prefix + "-build-0\n";
  S += "  nodes.add(prev);\n";
  for (unsigned I = 1; I != NumSubclasses; ++I) {
    S += "  var n" + num(I) + " = new " + Base + num(I) + "(" + Prefix +
         "Payload(" + num(I) + "), prev); //@ " + Prefix + "-build-" +
         num(I) + "\n";
    S += "  nodes.add(n" + num(I) + ");\n";
    S += "  prev = n" + num(I) + ";\n";
  }
  S += "  return nodes;\n";
  S += "}\n\n";

  // A normalization pass copying nodes through a second Vector, plus a
  // registry keyed by rendered opcode — more base-pointer plumbing.
  S += "def " + Prefix + "Normalize(nodes: Vector): Vector {\n";
  S += "  var out = new Vector();\n";
  S += "  var registry = new HashMap();\n";
  S += "  for (var i = 0; i < nodes.size(); i = i + 1) {\n";
  S += "    var n = (" + Base + ") nodes.get(i);\n";
  S += "    if (n.op % 2 == 0) {\n";
  S += "      out.add(n);\n";
  S += "    } else {\n";
  S += "      registry.put(\"op\" + n.op, n);\n";
  S += "      out.add(n);\n";
  S += "    }\n";
  S += "  }\n";
  S += "  return out;\n";
  S += "}\n\n";

  // Simplifier with opcode-guarded downcasts (Figure 5 at scale). Four
  // cast sites exercise different subclasses.
  S += "def " + Prefix + "Simplify(n: " + Base + "): int {\n";
  S += "  var op = n.op; //@ " + Prefix + "-opread\n";
  S += "  var rest = 0;\n";
  S += "  if (n.left != null) {\n";
  S += "    rest = " + Prefix + "Simplify(n.left);\n";
  S += "  }\n";
  for (unsigned K = 0; K != 4 && K < NumSubclasses; ++K) {
    std::string Sub = Base + num(K);
    S += "  if (op == " + num(K + 1) + ") {\n";
    S += "    var c" + num(K) + " = (" + Sub + ") n; //@ " + Prefix +
         "-cast-" + num(K) + "\n";
    S += "    return rest + c" + num(K) + ".payload" + num(K) + ";\n";
    S += "  }\n";
  }
  S += "  return rest;\n";
  S += "}\n\n";

  // An evaluation pass that routes nodes through a work Stack before
  // simplification — more of the base-pointer plumbing a traditional
  // slice must wade through.
  S += "def " + Prefix + "Drain(nodes: Vector): int {\n";
  S += "  var work = new Stack();\n";
  S += "  for (var i = 0; i < nodes.size(); i = i + 1) {\n";
  S += "    work.push(nodes.get(i));\n";
  S += "  }\n";
  S += "  var total = 0;\n";
  S += "  while (!work.isEmpty()) {\n";
  S += "    var n = (" + Base + ") work.pop();\n";
  S += "    total = total + " + Prefix + "Simplify(n);\n";
  S += "  }\n";
  S += "  return total;\n";
  S += "}\n\n";

  S += "def " + Prefix + "Run(): int {\n";
  S += "  var built = " + Prefix + "BuildNodes();\n";
  S += "  var nodes = " + Prefix + "Normalize(built);\n";
  S += "  var total = " + Prefix + "Drain(nodes);\n";
  S += "  for (var i = 0; i < nodes.size(); i = i + 1) {\n";
  S += "    var n = (" + Base + ") nodes.get(i);\n";
  S += "    total = total + " + Prefix + "Simplify(n);\n";
  S += "  }\n";
  S += "  return total;\n";
  S += "}\n\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Reachable padding
//===----------------------------------------------------------------------===//

std::string tsl::generatePadding(const std::string &Tag, unsigned NumClasses,
                                 unsigned MethodsPerClass) {
  std::string S;
  auto ClassName = [&](unsigned I) { return "Pad" + Tag + num(I); };

  for (unsigned C = 0; C != NumClasses; ++C) {
    S += "class " + ClassName(C) + " {\n";
    S += "  var total: int;\n";
    S += "  var label: string;\n";
    S += "  var cache: Vector;\n";
    S += "  def init() {\n";
    S += "    total = " + num(C) + ";\n";
    S += "    label = \"pad" + num(C) + "\";\n";
    S += "    cache = new Vector();\n";
    S += "  }\n";
    for (unsigned M = 0; M != MethodsPerClass; ++M) {
      S += "  def work" + num(M) + "(x: int): int {\n";
      S += "    var acc = x + " + num(M * 7 + 1) + ";\n";
      S += "    if (acc % 2 == 0) {\n";
      S += "      acc = acc * 3 + total;\n";
      S += "    } else {\n";
      S += "      acc = acc - total;\n";
      S += "    }\n";
      S += "    cache.add(label + acc);\n";
      S += "    total = total + acc % 17;\n";
      S += "    return acc;\n";
      S += "  }\n";
    }
    S += "  def summary(): string {\n";
    S += "    if (cache.size() > 0) {\n";
    S += "      return (string) cache.get(cache.size() - 1);\n";
    S += "    }\n";
    S += "    return label;\n";
    S += "  }\n";
    S += "}\n\n";
  }

  // Entry: touch every class and method so the on-the-fly call graph
  // reaches all of it.
  S += "def padEntry" + Tag + "(budget: int): int {\n";
  S += "  var sum = budget;\n";
  for (unsigned C = 0; C != NumClasses; ++C) {
    std::string Var = "p" + num(C);
    S += "  var " + Var + " = new " + ClassName(C) + "();\n";
    for (unsigned M = 0; M != MethodsPerClass; ++M)
      S += "  sum = sum + " + Var + ".work" + num(M) + "(sum);\n";
    S += "  print(" + Var + ".summary());\n";
  }
  S += "  return sum;\n";
  S += "}\n\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Random programs for property tests
//===----------------------------------------------------------------------===//

std::string tsl::generateRandomProgram(uint64_t Seed) {
  Rng R(Seed);
  // Generated programs use the container runtime (Vector etc.).
  std::string S = runtimeLibrarySource();

  unsigned NumClasses = 1 + R.below(3);
  unsigned NumFuncs = 2 + R.below(3);

  // Classes with an int field, a string field, and an Object field,
  // plus simple accessor logic.
  for (unsigned C = 0; C != NumClasses; ++C) {
    std::string Name = "R" + num(C);
    S += "class " + Name + " {\n";
    S += "  var num: int;\n";
    S += "  var tag: string;\n";
    S += "  var link: Object;\n";
    S += "  def init(n: int) {\n";
    S += "    num = n;\n";
    S += "    tag = \"r" + num(C) + "-\" + n;\n";
    S += "    link = null;\n";
    S += "  }\n";
    S += "  def bump(d: int): int {\n";
    S += "    num = num + d;\n";
    S += "    return num;\n";
    S += "  }\n";
    S += "  def describe(): string {\n";
    S += "    return tag + \":\" + num;\n";
    S += "  }\n";
    S += "}\n\n";
  }

  // Leaf functions performing arithmetic / string work.
  for (unsigned F = 0; F != NumFuncs; ++F) {
    std::string Name = "calc" + num(F);
    S += "def " + Name + "(a: int, b: int): int {\n";
    S += "  var x = a * " + num(1 + R.below(5)) + " + b;\n";
    switch (R.below(3)) {
    case 0:
      S += "  if (x % 2 == 0) {\n    x = x + " + num(R.below(9)) +
           ";\n  } else {\n    x = x - 1;\n  }\n";
      break;
    case 1:
      S += "  for (var i = 0; i < " + num(1 + R.below(4)) +
           "; i = i + 1) {\n    x = x + i;\n  }\n";
      break;
    default:
      S += "  x = x % 1000 + " + num(R.below(7)) + ";\n";
      break;
    }
    S += "  return x;\n";
    S += "}\n\n";
  }

  // A container round-trip: store objects and strings, read back.
  S += "def roundTrip(count: int): Vector {\n";
  S += "  var box = new Vector();\n";
  S += "  for (var i = 0; i < count; i = i + 1) {\n";
  S += "    var obj = new R0(calc0(i, i + 1));\n";
  S += "    box.add(obj);\n";
  S += "  }\n";
  S += "  return box;\n";
  S += "}\n\n";

  S += "def main() {\n";
  S += "  var total = " + num(R.below(10)) + ";\n";
  for (unsigned F = 0; F != NumFuncs; ++F)
    S += "  total = total + calc" + num(F) + "(total, " + num(R.below(20)) +
         ");\n";
  S += "  var box = roundTrip(" + num(2 + R.below(4)) + ");\n";
  S += "  for (var i = 0; i < box.size(); i = i + 1) {\n";
  S += "    var r = (R0) box.get(i);\n";
  S += "    total = total + r.bump(i);\n";
  S += "    print(r.describe());\n";
  S += "  }\n";
  unsigned Extra = R.below(NumClasses);
  S += "  var holder = new R" + num(Extra) + "(total);\n";
  S += "  holder.link = box;\n";
  S += "  print(holder.describe());\n";
  S += "  print(\"total=\" + total);\n";
  S += "}\n";
  return S;
}
