//===-- Lower.cpp - AST -> IR lowering --------------------------------------==//

#include "lang/Lower.h"

#include "ir/Instr.h"
#include "ir/SSA.h"
#include "ir/Verifier.h"
#include "lang/Parser.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace tsl;

namespace {

/// A typed value produced by expression lowering. Null Val with void
/// type marks a void call result; null Val with null type marks a
/// lowering error (already diagnosed).
struct RValue {
  Local *Val = nullptr;
  const Type *Ty = nullptr;

  bool isError() const { return !Ty; }
  bool isVoid() const { return Ty && Ty->isVoid(); }
};

class Lowering;

/// Lowers one method body into basic blocks of instructions.
class BodyLowering {
public:
  BodyLowering(Lowering &Outer, Method *M, ClassDef *Enclosing)
      : Outer(Outer), M(M), Enclosing(Enclosing) {}

  /// Lowers the declared parameters and \p Body.
  void run(const MethodDeclAst *Decl);

  /// Lowers a synthetic body that stores each static field's
  /// initializer (used for $clinit).
  void runClinit(const std::vector<std::pair<Field *, const FieldDeclAst *>>
                     &StaticFields);

private:
  friend class Lowering;

  //===------------------------------------------------------------------===//
  // Infrastructure
  //===------------------------------------------------------------------===//

  void error(SourceLoc Loc, const std::string &Msg);
  Program &program();
  const Type *typeOf(const TypeExprAst &T, bool AllowVoid);

  Local *newTemp(const Type *Ty) {
    return M->addLocal(/*BaseName=*/0, Ty, /*IsTemp=*/true);
  }

  template <typename T, typename... ArgTs> Instr *emit(SourceLoc Loc,
                                                       ArgTs &&...Args) {
    auto I = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    I->setLoc(Loc);
    return Cur->append(std::move(I));
  }

  /// Starts a fresh block and makes it current.
  BasicBlock *startBlock() {
    Cur = M->addBlock();
    return Cur;
  }

  bool blockTerminated() const { return Cur->terminator() != nullptr; }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  Local *lookupLocal(Symbol Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }
  bool declareLocal(Symbol Name, Local *L, SourceLoc Loc) {
    if (Scopes.back().count(Name)) {
      error(Loc, "redeclaration of '" + program().strings().str(Name) + "'");
      return false;
    }
    Scopes.back().emplace(Name, L);
    return true;
  }

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  bool isAssignable(const Type *To, const Type *From) const;
  std::string typeName(const Type *Ty) const;

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void lowerStmt(const StmtAst *S);
  void lowerBlock(const BlockStmt *B);
  void lowerVarDecl(const VarDeclStmt *S);
  void lowerAssign(const AssignStmt *S);
  void lowerIf(const IfStmt *S);
  void lowerWhile(const WhileStmt *S);
  void lowerReturn(const ReturnStmt *S);
  void lowerSuperCall(const SuperCallStmt *S);

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  RValue lowerExpr(const ExprAst *E);
  RValue lowerValue(const ExprAst *E); ///< lowerExpr + reject void.
  RValue lowerNameRef(const NameRefExpr *E);
  RValue lowerBinary(const BinaryExpr *E);
  RValue lowerLogical(const LogicalExpr *E);
  RValue lowerFieldAccess(const FieldAccessExpr *E);
  RValue lowerCall(const CallExprAst *E);
  RValue lowerNewObject(const NewObjectExpr *E);
  RValue lowerStringMethod(const CallExprAst *E, RValue Recv,
                           const std::string &Name);
  RValue lowerMethodCall(SourceLoc Loc, RValue Recv, Method *Target,
                         bool IsVirtual, const CallExprAst *E);
  std::vector<Local *> lowerArgs(Method *Target, const CallExprAst *E,
                                 bool &Ok);

  /// Resolves a bare or dotted name to a class when it denotes one.
  ClassDef *asClassName(const ExprAst *E) const;

  RValue errorValue() { return RValue{}; }

  Lowering &Outer;
  Method *M;
  ClassDef *Enclosing;
  BasicBlock *Cur = nullptr;
  Local *ThisLocal = nullptr;
  std::vector<std::unordered_map<Symbol, Local *>> Scopes;

  struct LoopCtx {
    BasicBlock *ContinueTarget;
    BasicBlock *BreakTarget;
  };
  std::vector<LoopCtx> Loops;
};

/// Whole-module lowering: builds the class hierarchy and signatures,
/// then lowers bodies.
class Lowering {
public:
  Lowering(const AstModule &Module, DiagnosticEngine &Diag,
           const CompileOptions &Options)
      : Module(Module), Diag(Diag), Options(Options),
        P(std::make_unique<Program>()) {}

  /// Adopt mode, for incremental relowering: operates on an existing
  /// program instead of building a fresh one. run() must not be called
  /// on an adopted Lowering; use relowerBody().
  Lowering(Program &Existing, const AstModule &Module, DiagnosticEngine &Diag,
           const CompileOptions &Options)
      : Module(Module), Diag(Diag), Options(Options), Adopted(&Existing) {}

  std::unique_ptr<Program> run();

  /// Lowers one method body against the adopted program. The caller
  /// has already detached the method's previous body.
  void relowerBody(Method &M, const MethodDeclAst &Decl) {
    Program &PP = prog();
    if (TopLevel.empty())
      for (const auto &MP : PP.methods())
        if (!MP->owner() && PP.strings().str(MP->name()) != "$clinit")
          TopLevel[PP.strings().str(MP->name())] = MP.get();
    BodyLowering BL(*this, &M, M.owner());
    BL.run(&Decl);
  }

private:
  friend class BodyLowering;

  /// The program being built (cold) or patched (adopt mode).
  Program &prog() const { return Adopted ? *Adopted : *P; }

  void declareClasses();
  void declareMembers();
  void checkOverrides();
  void buildClinit();
  void lowerBodies();
  void selectMain();

  const AstModule &Module;
  DiagnosticEngine &Diag;
  const CompileOptions &Options;
  std::unique_ptr<Program> P;
  Program *Adopted = nullptr;

  // AST back-pointers for body lowering.
  std::unordered_map<const MethodDeclAst *, Method *> MethodOf;
  std::unordered_map<Method *, ClassDef *> EnclosingOf;
  std::unordered_map<std::string, Method *> TopLevel;
  std::vector<std::pair<Field *, const FieldDeclAst *>> StaticFields;
  Method *Clinit = nullptr;
};

} // namespace

//===----------------------------------------------------------------------===//
// BodyLowering: infrastructure
//===----------------------------------------------------------------------===//

void BodyLowering::error(SourceLoc Loc, const std::string &Msg) {
  Outer.Diag.error(Loc, Msg);
}

Program &BodyLowering::program() { return Outer.prog(); }

const Type *BodyLowering::typeOf(const TypeExprAst &T, bool AllowVoid) {
  Program &P = program();
  const Type *Base = nullptr;
  switch (T.BaseKind) {
  case TypeExprAst::Base::Int:
    Base = P.types().intType();
    break;
  case TypeExprAst::Base::Bool:
    Base = P.types().boolType();
    break;
  case TypeExprAst::Base::String:
    Base = P.types().stringType();
    break;
  case TypeExprAst::Base::Void:
    if (!AllowVoid || T.ArrayRank) {
      error(T.Loc, "'void' is not usable here");
      return nullptr;
    }
    return P.types().voidType();
  case TypeExprAst::Base::Named: {
    ClassDef *C = P.findClass(P.strings().lookup(T.Name));
    if (!C) {
      error(T.Loc, "unknown class '" + T.Name + "'");
      return nullptr;
    }
    Base = P.types().classType(C);
    break;
  }
  }
  for (unsigned I = 0; I != T.ArrayRank; ++I)
    Base = P.types().arrayType(Base);
  return Base;
}

bool BodyLowering::isAssignable(const Type *To, const Type *From) const {
  if (To == From)
    return true;
  if (From->isNull() && To->isReference())
    return true;
  if (To->isClass() && To->classDef() == Outer.prog().objectClass() &&
      From->isReference())
    return true;
  if (To->isClass() && From->isClass() &&
      From->classDef()->isSubclassOf(To->classDef()))
    return true;
  return false;
}

std::string BodyLowering::typeName(const Type *Ty) const {
  if (Ty->isClass())
    return Outer.prog().strings().str(Ty->classDef()->name());
  if (Ty->isArray())
    return typeName(Ty->element()) + "[]";
  return Ty->str();
}

//===----------------------------------------------------------------------===//
// BodyLowering: entry points
//===----------------------------------------------------------------------===//

void BodyLowering::run(const MethodDeclAst *Decl) {
  Program &P = program();
  startBlock();
  M->setEntry(Cur);
  pushScope();

  unsigned FormalIdx = 0;
  if (!M->isStatic()) {
    ThisLocal = M->addLocal(P.strings().intern("this"),
                            P.types().classType(Enclosing));
    emit<ParamInstr>(Decl->Loc, ThisLocal, FormalIdx++);
  }
  for (const ParamSig &Sig : M->params()) {
    Local *L = M->addLocal(Sig.Name, Sig.Ty);
    emit<ParamInstr>(Decl->Loc, L, FormalIdx++);
    declareLocal(Sig.Name, L, Decl->Loc);
  }

  if (Decl->Body)
    lowerBlock(Decl->Body);

  if (!blockTerminated()) {
    // Fall-off-the-end: synthesize a default return so the CFG is
    // complete. (ThinJ does not enforce definite return.)
    const Type *Ret = M->returnType();
    if (Ret->isVoid()) {
      emit<RetInstr>(SourceLoc(), nullptr);
    } else {
      Local *Default = newTemp(Ret);
      if (Ret->isInt())
        emit<ConstIntInstr>(SourceLoc(), Default, 0);
      else if (Ret->isBool())
        emit<ConstBoolInstr>(SourceLoc(), Default, false);
      else
        emit<ConstNullInstr>(SourceLoc(), Default);
      emit<RetInstr>(SourceLoc(), Default);
    }
  }
  popScope();
  M->removeUnreachableBlocks();
}

void BodyLowering::runClinit(
    const std::vector<std::pair<Field *, const FieldDeclAst *>>
        &StaticFields) {
  startBlock();
  M->setEntry(Cur);
  pushScope();
  for (const auto &[F, Decl] : StaticFields) {
    RValue V;
    if (Decl->Init) {
      V = lowerValue(Decl->Init);
      if (V.isError())
        continue;
      if (!isAssignable(F->type(), V.Ty)) {
        error(Decl->Loc, "static initializer type mismatch for '" +
                             program().strings().str(F->name()) + "'");
        continue;
      }
    } else {
      // Default-initialize so every static load has a producer.
      Local *T = newTemp(F->type());
      if (F->type()->isInt())
        emit<ConstIntInstr>(Decl->Loc, T, 0);
      else if (F->type()->isBool())
        emit<ConstBoolInstr>(Decl->Loc, T, false);
      else
        emit<ConstNullInstr>(Decl->Loc, T);
      V = RValue{T, F->type()};
    }
    emit<StoreInstr>(Decl->Loc, nullptr, F, V.Val);
  }
  emit<RetInstr>(SourceLoc(), nullptr);
  popScope();
  M->removeUnreachableBlocks();
}

//===----------------------------------------------------------------------===//
// BodyLowering: statements
//===----------------------------------------------------------------------===//

void BodyLowering::lowerStmt(const StmtAst *S) {
  if (!S)
    return;
  if (blockTerminated()) {
    // Unreachable code after return/break/...; lower it into a fresh
    // (dead) block so diagnostics still fire, then drop it later.
    startBlock();
  }
  switch (S->kind()) {
  case StmtKind::Block:
    lowerBlock(cast<BlockStmt>(S));
    return;
  case StmtKind::VarDecl:
    lowerVarDecl(cast<VarDeclStmt>(S));
    return;
  case StmtKind::Assign:
    lowerAssign(cast<AssignStmt>(S));
    return;
  case StmtKind::ExprStmt:
    lowerExpr(cast<ExprStmt>(S)->E);
    return;
  case StmtKind::If:
    lowerIf(cast<IfStmt>(S));
    return;
  case StmtKind::While:
    lowerWhile(cast<WhileStmt>(S));
    return;
  case StmtKind::Return:
    lowerReturn(cast<ReturnStmt>(S));
    return;
  case StmtKind::Throw: {
    const auto *T = cast<ThrowStmt>(S);
    RValue V = lowerValue(T->Value);
    if (V.isError())
      return;
    if (!V.Ty->isReference()) {
      error(T->Loc, "throw requires a reference value");
      return;
    }
    emit<ThrowInstr>(T->Loc, V.Val);
    return;
  }
  case StmtKind::Break:
    if (Loops.empty()) {
      error(S->Loc, "'break' outside a loop");
      return;
    }
    emit<GotoInstr>(S->Loc, Loops.back().BreakTarget);
    return;
  case StmtKind::Continue:
    if (Loops.empty()) {
      error(S->Loc, "'continue' outside a loop");
      return;
    }
    emit<GotoInstr>(S->Loc, Loops.back().ContinueTarget);
    return;
  case StmtKind::Print: {
    const auto *Pr = cast<PrintStmt>(S);
    RValue V = lowerValue(Pr->Value);
    if (V.isError())
      return;
    emit<PrintInstr>(Pr->Loc, V.Val);
    return;
  }
  case StmtKind::SuperCall:
    lowerSuperCall(cast<SuperCallStmt>(S));
    return;
  }
}

void BodyLowering::lowerBlock(const BlockStmt *B) {
  pushScope();
  for (const StmtAst *S : B->Stmts)
    lowerStmt(S);
  popScope();
}

void BodyLowering::lowerVarDecl(const VarDeclStmt *S) {
  RValue Init = lowerValue(S->Init);
  if (Init.isError())
    return;
  const Type *DeclTy = Init.Ty;
  if (S->HasType) {
    DeclTy = typeOf(S->Type, /*AllowVoid=*/false);
    if (!DeclTy)
      return;
    if (!isAssignable(DeclTy, Init.Ty)) {
      error(S->Loc, "cannot initialize '" + S->Name + "' of type " +
                        typeName(DeclTy) + " with " + typeName(Init.Ty));
      return;
    }
  } else if (Init.Ty->isNull()) {
    error(S->Loc, "cannot infer a type from 'null'; annotate '" + S->Name +
                      "'");
    return;
  }
  Symbol Name = program().strings().intern(S->Name);
  Local *L = M->addLocal(Name, DeclTy);
  if (!declareLocal(Name, L, S->Loc))
    return;
  emit<MoveInstr>(S->Loc, L, Init.Val);
}

void BodyLowering::lowerAssign(const AssignStmt *S) {
  Program &P = program();

  // Array element: a[i] = v.
  if (const auto *Idx = dyn_cast<IndexExpr>(S->LHS)) {
    RValue Base = lowerValue(Idx->Base);
    RValue Index = lowerValue(Idx->Index);
    RValue V = lowerValue(S->RHS);
    if (Base.isError() || Index.isError() || V.isError())
      return;
    if (!Base.Ty->isArray()) {
      error(S->Loc, "indexed assignment into non-array " + typeName(Base.Ty));
      return;
    }
    if (!Index.Ty->isInt()) {
      error(S->Loc, "array index must be int");
      return;
    }
    if (!isAssignable(Base.Ty->element(), V.Ty)) {
      error(S->Loc, "cannot store " + typeName(V.Ty) + " into " +
                        typeName(Base.Ty));
      return;
    }
    emit<ArrayStoreInstr>(S->Loc, Base.Val, Index.Val, V.Val);
    return;
  }

  // Field: x.f = v, C.f = v, or this.f = v.
  if (const auto *FA = dyn_cast<FieldAccessExpr>(S->LHS)) {
    Symbol FName = P.strings().intern(FA->Name);
    if (ClassDef *C = asClassName(FA->Base)) {
      Field *F = C->findField(FName);
      if (!F || !F->isStatic()) {
        error(S->Loc, "unknown static field '" + FA->Name + "'");
        return;
      }
      RValue V = lowerValue(S->RHS);
      if (V.isError())
        return;
      if (!isAssignable(F->type(), V.Ty)) {
        error(S->Loc, "type mismatch storing to static field '" + FA->Name +
                          "'");
        return;
      }
      emit<StoreInstr>(S->Loc, nullptr, F, V.Val);
      return;
    }
    RValue Base = lowerValue(FA->Base);
    RValue V = lowerValue(S->RHS);
    if (Base.isError() || V.isError())
      return;
    if (!Base.Ty->isClass()) {
      error(S->Loc, "field store into non-object " + typeName(Base.Ty));
      return;
    }
    Field *F = Base.Ty->classDef()->findField(FName);
    if (!F) {
      error(S->Loc, "class " + typeName(Base.Ty) + " has no field '" +
                        FA->Name + "'");
      return;
    }
    if (F->isStatic()) {
      error(S->Loc, "static field '" + FA->Name +
                        "' must be accessed via its class name");
      return;
    }
    if (!isAssignable(F->type(), V.Ty)) {
      error(S->Loc, "type mismatch storing to field '" + FA->Name + "'");
      return;
    }
    emit<StoreInstr>(S->Loc, Base.Val, F, V.Val);
    return;
  }

  // Bare name: local, implicit-this field, or static field of the
  // enclosing class.
  const auto *NR = cast<NameRefExpr>(S->LHS);
  Symbol Name = P.strings().intern(NR->Name);
  RValue V = lowerValue(S->RHS);
  if (V.isError())
    return;
  if (Local *L = lookupLocal(Name)) {
    if (!isAssignable(L->type(), V.Ty)) {
      error(S->Loc, "cannot assign " + typeName(V.Ty) + " to '" + NR->Name +
                        "' of type " + typeName(L->type()));
      return;
    }
    emit<MoveInstr>(S->Loc, L, V.Val);
    return;
  }
  if (Enclosing) {
    if (Field *F = Enclosing->findField(Name)) {
      if (!isAssignable(F->type(), V.Ty)) {
        error(S->Loc, "type mismatch storing to field '" + NR->Name + "'");
        return;
      }
      if (F->isStatic()) {
        emit<StoreInstr>(S->Loc, nullptr, F, V.Val);
      } else if (!ThisLocal) {
        error(S->Loc, "cannot use instance field '" + NR->Name +
                          "' in a static method");
      } else {
        emit<StoreInstr>(S->Loc, ThisLocal, F, V.Val);
      }
      return;
    }
  }
  error(S->Loc, "unknown variable '" + NR->Name + "'");
}

void BodyLowering::lowerIf(const IfStmt *S) {
  RValue Cond = lowerValue(S->Cond);
  if (Cond.isError())
    return;
  if (!Cond.Ty->isBool())
    error(S->Loc, "if condition must be bool");

  BasicBlock *CondBlock = Cur;
  BasicBlock *ThenBB = M->addBlock();
  BasicBlock *ElseBB = S->Else ? M->addBlock() : nullptr;
  BasicBlock *JoinBB = M->addBlock();

  auto Br = std::make_unique<BranchInstr>(Cond.Val, ThenBB,
                                           ElseBB ? ElseBB : JoinBB);
  Br->setLoc(S->Loc);
  CondBlock->append(std::move(Br));

  Cur = ThenBB;
  lowerStmt(S->Then);
  if (!blockTerminated())
    emit<GotoInstr>(SourceLoc(), JoinBB);

  if (ElseBB) {
    Cur = ElseBB;
    lowerStmt(S->Else);
    if (!blockTerminated())
      emit<GotoInstr>(SourceLoc(), JoinBB);
  }
  Cur = JoinBB;
}

void BodyLowering::lowerWhile(const WhileStmt *S) {
  BasicBlock *Header = M->addBlock();
  emit<GotoInstr>(S->Loc, Header);
  Cur = Header;
  RValue Cond = lowerValue(S->Cond);
  if (Cond.isError())
    return;
  if (!Cond.Ty->isBool())
    error(S->Loc, "while condition must be bool");

  BasicBlock *CondEnd = Cur; // Condition lowering may have branched.
  BasicBlock *Body = M->addBlock();
  BasicBlock *Exit = M->addBlock();
  auto Br = std::make_unique<BranchInstr>(Cond.Val, Body, Exit);
  Br->setLoc(S->Loc);
  CondEnd->append(std::move(Br));

  Loops.push_back({Header, Exit});
  Cur = Body;
  lowerStmt(S->Body);
  if (!blockTerminated())
    emit<GotoInstr>(SourceLoc(), Header);
  Loops.pop_back();
  Cur = Exit;
}

void BodyLowering::lowerReturn(const ReturnStmt *S) {
  const Type *Ret = M->returnType();
  if (!S->Value) {
    if (!Ret->isVoid()) {
      error(S->Loc, "non-void method must return a value");
      return;
    }
    emit<RetInstr>(S->Loc, nullptr);
    return;
  }
  RValue V = lowerValue(S->Value);
  if (V.isError())
    return;
  if (Ret->isVoid()) {
    error(S->Loc, "void method cannot return a value");
    return;
  }
  if (!isAssignable(Ret, V.Ty)) {
    error(S->Loc, "return type mismatch: expected " + typeName(Ret) +
                      ", got " + typeName(V.Ty));
    return;
  }
  emit<RetInstr>(S->Loc, V.Val);
}

void BodyLowering::lowerSuperCall(const SuperCallStmt *S) {
  Program &P = program();
  if (!Enclosing || M->isStatic() ||
      M->name() != P.strings().lookup("init")) {
    error(S->Loc, "super(...) is only valid inside 'init'");
    return;
  }
  ClassDef *Super = Enclosing->superclass();
  Method *Target = Super ? Super->findMethod(P.strings().intern("init"))
                         : nullptr;
  if (!Target) {
    error(S->Loc, "superclass has no 'init'");
    return;
  }
  if (Target->params().size() != S->Args.size()) {
    error(S->Loc, "super(...) argument count mismatch");
    return;
  }
  std::vector<Local *> Args;
  for (size_t I = 0; I != S->Args.size(); ++I) {
    RValue A = lowerValue(S->Args[I]);
    if (A.isError())
      return;
    if (!isAssignable(Target->params()[I].Ty, A.Ty)) {
      error(S->Loc, "super(...) argument " + std::to_string(I + 1) +
                        " type mismatch");
      return;
    }
    Args.push_back(A.Val);
  }
  emit<CallInstr>(S->Loc, nullptr, Target, /*IsVirtual=*/false, ThisLocal,
                  Args);
}

//===----------------------------------------------------------------------===//
// BodyLowering: expressions
//===----------------------------------------------------------------------===//

RValue BodyLowering::lowerValue(const ExprAst *E) {
  RValue V = lowerExpr(E);
  if (V.isError())
    return V;
  if (V.isVoid()) {
    error(E->Loc, "expression of type void used as a value");
    return errorValue();
  }
  return V;
}

ClassDef *BodyLowering::asClassName(const ExprAst *E) const {
  const auto *NR = dyn_cast<NameRefExpr>(E);
  if (!NR)
    return nullptr;
  Program &P = Outer.prog();
  Symbol Name = P.strings().lookup(NR->Name);
  if (!Name)
    return nullptr;
  if (lookupLocal(Name))
    return nullptr; // A local shadows the class name.
  if (Enclosing && Enclosing->findField(Name))
    return nullptr; // A field shadows it too.
  return P.findClass(Name);
}

RValue BodyLowering::lowerExpr(const ExprAst *E) {
  // A parser-recovery placeholder was already diagnosed at parse
  // time; lowering it as a value would only cascade.
  if (E->Recovered)
    return errorValue();
  Program &P = program();
  switch (E->kind()) {
  case ExprKind::IntLit: {
    Local *T = newTemp(P.types().intType());
    emit<ConstIntInstr>(E->Loc, T, cast<IntLitExpr>(E)->Value);
    return {T, T->type()};
  }
  case ExprKind::BoolLit: {
    Local *T = newTemp(P.types().boolType());
    emit<ConstBoolInstr>(E->Loc, T, cast<BoolLitExpr>(E)->Value);
    return {T, T->type()};
  }
  case ExprKind::StrLit: {
    Local *T = newTemp(P.types().stringType());
    emit<ConstStringInstr>(E->Loc, T,
                           P.strings().intern(cast<StrLitExpr>(E)->Value));
    return {T, T->type()};
  }
  case ExprKind::NullLit: {
    Local *T = newTemp(P.types().nullType());
    emit<ConstNullInstr>(E->Loc, T);
    return {T, T->type()};
  }
  case ExprKind::This:
    if (!ThisLocal) {
      error(E->Loc, "'this' outside an instance method");
      return errorValue();
    }
    return {ThisLocal, ThisLocal->type()};
  case ExprKind::NameRef:
    return lowerNameRef(cast<NameRefExpr>(E));
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    RValue V = lowerValue(U->Sub);
    if (V.isError())
      return V;
    if (U->O == UnaryExpr::Op::Neg && !V.Ty->isInt()) {
      error(E->Loc, "unary '-' requires int");
      return errorValue();
    }
    if (U->O == UnaryExpr::Op::Not && !V.Ty->isBool()) {
      error(E->Loc, "'!' requires bool");
      return errorValue();
    }
    Local *T = newTemp(V.Ty);
    emit<UnOpInstr>(E->Loc, T,
                    U->O == UnaryExpr::Op::Neg ? UnOpKind::Neg : UnOpKind::Not,
                    V.Val);
    return {T, V.Ty};
  }
  case ExprKind::Binary:
    return lowerBinary(cast<BinaryExpr>(E));
  case ExprKind::Logical:
    return lowerLogical(cast<LogicalExpr>(E));
  case ExprKind::FieldAccess:
    return lowerFieldAccess(cast<FieldAccessExpr>(E));
  case ExprKind::Index: {
    const auto *Idx = cast<IndexExpr>(E);
    RValue Base = lowerValue(Idx->Base);
    RValue Index = lowerValue(Idx->Index);
    if (Base.isError() || Index.isError())
      return errorValue();
    if (!Base.Ty->isArray()) {
      error(E->Loc, "indexing non-array " + typeName(Base.Ty));
      return errorValue();
    }
    if (!Index.Ty->isInt()) {
      error(E->Loc, "array index must be int");
      return errorValue();
    }
    Local *T = newTemp(Base.Ty->element());
    emit<ArrayLoadInstr>(E->Loc, T, Base.Val, Index.Val);
    return {T, T->type()};
  }
  case ExprKind::Call:
    return lowerCall(cast<CallExprAst>(E));
  case ExprKind::NewObject:
    return lowerNewObject(cast<NewObjectExpr>(E));
  case ExprKind::NewArray: {
    const auto *NA = cast<NewArrayExpr>(E);
    const Type *Elem = typeOf(NA->ElemType, /*AllowVoid=*/false);
    if (!Elem)
      return errorValue();
    RValue Len = lowerValue(NA->Length);
    if (Len.isError())
      return errorValue();
    if (!Len.Ty->isInt()) {
      error(E->Loc, "array length must be int");
      return errorValue();
    }
    Local *T = newTemp(P.types().arrayType(Elem));
    emit<NewArrayInstr>(E->Loc, T, Elem, Len.Val);
    return {T, T->type()};
  }
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    const Type *Target = typeOf(C->Target, /*AllowVoid=*/false);
    RValue V = lowerValue(C->Sub);
    if (!Target || V.isError())
      return errorValue();
    if (Target == V.Ty) {
      Local *T = newTemp(Target);
      emit<MoveInstr>(E->Loc, T, V.Val);
      return {T, Target};
    }
    if (!Target->isReference() || !V.Ty->isReference()) {
      error(E->Loc, "invalid cast from " + typeName(V.Ty) + " to " +
                        typeName(Target));
      return errorValue();
    }
    Local *T = newTemp(Target);
    emit<CastInstr>(E->Loc, T, Target, V.Val);
    return {T, Target};
  }
  case ExprKind::InstanceOf: {
    const auto *IO = cast<InstanceOfExpr>(E);
    const Type *Target = typeOf(IO->Target, /*AllowVoid=*/false);
    RValue V = lowerValue(IO->Sub);
    if (!Target || V.isError())
      return errorValue();
    if (!Target->isReference() || !V.Ty->isReference()) {
      error(E->Loc, "instanceof requires reference types");
      return errorValue();
    }
    Local *T = newTemp(P.types().boolType());
    emit<InstanceOfInstr>(E->Loc, T, V.Val, Target);
    return {T, T->type()};
  }
  case ExprKind::Read: {
    const auto *R = cast<ReadExpr>(E);
    const Type *Ty =
        R->IsLine ? P.types().stringType() : P.types().intType();
    Local *T = newTemp(Ty);
    emit<ReadInstr>(E->Loc, T, R->IsLine ? ReadKind::Line : ReadKind::Int);
    return {T, Ty};
  }
  }
  return errorValue();
}

RValue BodyLowering::lowerNameRef(const NameRefExpr *E) {
  Program &P = program();
  Symbol Name = P.strings().intern(E->Name);
  if (Local *L = lookupLocal(Name))
    return {L, L->type()};
  if (Enclosing) {
    if (Field *F = Enclosing->findField(Name)) {
      Local *T = newTemp(F->type());
      if (F->isStatic()) {
        emit<LoadInstr>(E->Loc, T, nullptr, F);
      } else if (!ThisLocal) {
        error(E->Loc, "cannot use instance field '" + E->Name +
                          "' in a static method");
        return errorValue();
      } else {
        emit<LoadInstr>(E->Loc, T, ThisLocal, F);
      }
      return {T, F->type()};
    }
  }
  error(E->Loc, "unknown variable '" + E->Name + "'");
  return errorValue();
}

RValue BodyLowering::lowerBinary(const BinaryExpr *E) {
  Program &P = program();
  RValue L = lowerValue(E->LHS);
  RValue R = lowerValue(E->RHS);
  if (L.isError() || R.isError())
    return errorValue();

  auto Emit = [&](BinOpKind Op, const Type *ResTy) -> RValue {
    Local *T = newTemp(ResTy);
    emit<BinOpInstr>(E->Loc, T, Op, L.Val, R.Val);
    return {T, ResTy};
  };

  switch (E->O) {
  case BinaryExpr::Op::Add: {
    if (L.Ty->isInt() && R.Ty->isInt())
      return Emit(BinOpKind::Add, P.types().intType());
    // String concatenation, with implicit int -> string rendering.
    if (L.Ty->isString() || R.Ty->isString()) {
      auto ToString = [&](RValue V) -> Local * {
        if (V.Ty->isString())
          return V.Val;
        if (V.Ty->isInt()) {
          Local *T = newTemp(P.types().stringType());
          emit<StrOpInstr>(E->Loc, T, StrOpKind::FromInt,
                           std::vector<Local *>{V.Val});
          return T;
        }
        return nullptr;
      };
      Local *LS = ToString(L);
      Local *RS = ToString(R);
      if (LS && RS) {
        Local *T = newTemp(P.types().stringType());
        emit<StrOpInstr>(E->Loc, T, StrOpKind::Concat,
                         std::vector<Local *>{LS, RS});
        return {T, T->type()};
      }
    }
    error(E->Loc, "invalid operands to '+'");
    return errorValue();
  }
  case BinaryExpr::Op::Sub:
  case BinaryExpr::Op::Mul:
  case BinaryExpr::Op::Div:
  case BinaryExpr::Op::Rem: {
    if (!L.Ty->isInt() || !R.Ty->isInt()) {
      error(E->Loc, "arithmetic requires int operands");
      return errorValue();
    }
    BinOpKind Op = E->O == BinaryExpr::Op::Sub   ? BinOpKind::Sub
                   : E->O == BinaryExpr::Op::Mul ? BinOpKind::Mul
                   : E->O == BinaryExpr::Op::Div ? BinOpKind::Div
                                                 : BinOpKind::Rem;
    return Emit(Op, P.types().intType());
  }
  case BinaryExpr::Op::Lt:
  case BinaryExpr::Op::Le:
  case BinaryExpr::Op::Gt:
  case BinaryExpr::Op::Ge: {
    if (!L.Ty->isInt() || !R.Ty->isInt()) {
      error(E->Loc, "comparison requires int operands");
      return errorValue();
    }
    BinOpKind Op = E->O == BinaryExpr::Op::Lt   ? BinOpKind::Lt
                   : E->O == BinaryExpr::Op::Le ? BinOpKind::Le
                   : E->O == BinaryExpr::Op::Gt ? BinOpKind::Gt
                                                : BinOpKind::Ge;
    return Emit(Op, P.types().boolType());
  }
  case BinaryExpr::Op::Eq:
  case BinaryExpr::Op::Ne: {
    bool Ok = (L.Ty->isInt() && R.Ty->isInt()) ||
              (L.Ty->isBool() && R.Ty->isBool()) ||
              (L.Ty->isReference() && R.Ty->isReference());
    if (!Ok) {
      error(E->Loc, "invalid operands to equality comparison");
      return errorValue();
    }
    return Emit(E->O == BinaryExpr::Op::Eq ? BinOpKind::Eq : BinOpKind::Ne,
                P.types().boolType());
  }
  }
  return errorValue();
}

RValue BodyLowering::lowerLogical(const LogicalExpr *E) {
  Program &P = program();
  // Short-circuit lowering through a shared mutable temp; SSA turns it
  // into a phi at the join.
  Local *Result = M->addLocal(/*BaseName=*/0, P.types().boolType(),
                              /*IsTemp=*/true);
  RValue L = lowerValue(E->LHS);
  if (L.isError())
    return errorValue();
  if (!L.Ty->isBool()) {
    error(E->Loc, "logical operator requires bool operands");
    return errorValue();
  }

  BasicBlock *EvalRHS = M->addBlock();
  BasicBlock *Shortcut = M->addBlock();
  BasicBlock *Join = M->addBlock();
  bool IsAnd = E->O == LogicalExpr::Op::And;
  auto Br = std::make_unique<BranchInstr>(L.Val, IsAnd ? EvalRHS : Shortcut,
                                           IsAnd ? Shortcut : EvalRHS);
  Br->setLoc(E->Loc);
  Cur->append(std::move(Br));

  Cur = EvalRHS;
  RValue R = lowerValue(E->RHS);
  if (R.isError())
    return errorValue();
  if (!R.Ty->isBool()) {
    error(E->Loc, "logical operator requires bool operands");
    return errorValue();
  }
  emit<MoveInstr>(E->Loc, Result, R.Val);
  emit<GotoInstr>(E->Loc, Join);

  Cur = Shortcut;
  emit<ConstBoolInstr>(E->Loc, Result, !IsAnd);
  emit<GotoInstr>(E->Loc, Join);

  Cur = Join;
  return {Result, P.types().boolType()};
}

RValue BodyLowering::lowerFieldAccess(const FieldAccessExpr *E) {
  Program &P = program();
  Symbol FName = P.strings().intern(E->Name);

  // Static field via class name.
  if (ClassDef *C = asClassName(E->Base)) {
    Field *F = C->findField(FName);
    if (!F || !F->isStatic()) {
      error(E->Loc, "unknown static field '" + E->Name + "' in class " +
                        P.strings().str(C->name()));
      return errorValue();
    }
    Local *T = newTemp(F->type());
    emit<LoadInstr>(E->Loc, T, nullptr, F);
    return {T, F->type()};
  }

  RValue Base = lowerValue(E->Base);
  if (Base.isError())
    return errorValue();

  // array.length
  if (Base.Ty->isArray() && E->Name == "length") {
    Local *T = newTemp(P.types().intType());
    emit<ArrayLenInstr>(E->Loc, T, Base.Val);
    return {T, T->type()};
  }

  if (!Base.Ty->isClass()) {
    error(E->Loc, "member access into non-object " + typeName(Base.Ty));
    return errorValue();
  }
  Field *F = Base.Ty->classDef()->findField(FName);
  if (!F) {
    error(E->Loc, "class " + typeName(Base.Ty) + " has no field '" + E->Name +
                      "'");
    return errorValue();
  }
  if (F->isStatic()) {
    error(E->Loc, "static field '" + E->Name +
                      "' must be accessed via its class name");
    return errorValue();
  }
  Local *T = newTemp(F->type());
  emit<LoadInstr>(E->Loc, T, Base.Val, F);
  return {T, F->type()};
}

std::vector<Local *> BodyLowering::lowerArgs(Method *Target,
                                             const CallExprAst *E, bool &Ok) {
  Ok = true;
  std::vector<Local *> Args;
  if (Target->params().size() != E->Args.size()) {
    error(E->Loc, "call to " + Target->qualifiedName(program().strings()) +
                      " expects " + std::to_string(Target->params().size()) +
                      " arguments, got " + std::to_string(E->Args.size()));
    Ok = false;
    return Args;
  }
  for (size_t I = 0; I != E->Args.size(); ++I) {
    RValue A = lowerValue(E->Args[I]);
    if (A.isError()) {
      Ok = false;
      return Args;
    }
    if (!isAssignable(Target->params()[I].Ty, A.Ty)) {
      error(E->Args[I]->Loc,
            "argument " + std::to_string(I + 1) + " type mismatch: expected " +
                typeName(Target->params()[I].Ty) + ", got " + typeName(A.Ty));
      Ok = false;
      return Args;
    }
    Args.push_back(A.Val);
  }
  return Args;
}

RValue BodyLowering::lowerMethodCall(SourceLoc Loc, RValue Recv,
                                     Method *Target, bool IsVirtual,
                                     const CallExprAst *E) {
  bool Ok = true;
  std::vector<Local *> Args = lowerArgs(Target, E, Ok);
  if (!Ok)
    return errorValue();
  Local *Dest = nullptr;
  if (!Target->returnType()->isVoid())
    Dest = newTemp(Target->returnType());
  emit<CallInstr>(Loc, Dest, Target, IsVirtual, Recv.Val, Args);
  return {Dest, Target->returnType()};
}

RValue BodyLowering::lowerStringMethod(const CallExprAst *E, RValue Recv,
                                       const std::string &Name) {
  Program &P = program();
  auto LowerIntArg = [&](size_t I) -> Local * {
    RValue A = lowerValue(E->Args[I]);
    if (A.isError() || !A.Ty->isInt()) {
      if (!A.isError())
        error(E->Args[I]->Loc, "string method expects an int here");
      return nullptr;
    }
    return A.Val;
  };
  auto LowerStrArg = [&](size_t I) -> Local * {
    RValue A = lowerValue(E->Args[I]);
    if (A.isError() || !A.Ty->isString()) {
      if (!A.isError())
        error(E->Args[I]->Loc, "string method expects a string here");
      return nullptr;
    }
    return A.Val;
  };
  auto Mk = [&](StrOpKind Op, const Type *ResTy,
                std::vector<Local *> Ops) -> RValue {
    for (Local *L : Ops)
      if (!L)
        return errorValue();
    Local *T = newTemp(ResTy);
    emit<StrOpInstr>(E->Loc, T, Op, Ops);
    return {T, ResTy};
  };

  if (Name == "substring" && E->Args.size() == 2)
    return Mk(StrOpKind::Substring, P.types().stringType(),
              {Recv.Val, LowerIntArg(0), LowerIntArg(1)});
  if (Name == "indexOf" && E->Args.size() == 1)
    return Mk(StrOpKind::IndexOf, P.types().intType(),
              {Recv.Val, LowerStrArg(0)});
  if (Name == "length" && E->Args.empty())
    return Mk(StrOpKind::Length, P.types().intType(), {Recv.Val});
  if (Name == "charAt" && E->Args.size() == 1)
    return Mk(StrOpKind::CharAt, P.types().intType(),
              {Recv.Val, LowerIntArg(0)});
  if (Name == "equals" && E->Args.size() == 1)
    return Mk(StrOpKind::Equals, P.types().boolType(),
              {Recv.Val, LowerStrArg(0)});
  if (Name == "concat" && E->Args.size() == 1)
    return Mk(StrOpKind::Concat, P.types().stringType(),
              {Recv.Val, LowerStrArg(0)});
  error(E->Loc, "unknown string method '" + Name + "'");
  return errorValue();
}

RValue BodyLowering::lowerCall(const CallExprAst *E) {
  Program &P = program();

  // Method call on an explicit receiver, a class name, or a string.
  if (const auto *FA = dyn_cast<FieldAccessExpr>(E->Callee)) {
    if (ClassDef *C = asClassName(FA->Base)) {
      Method *Target = C->findMethod(P.strings().intern(FA->Name));
      if (!Target || !Target->isStatic()) {
        error(E->Loc, "unknown static method '" + FA->Name + "' in class " +
                          P.strings().str(C->name()));
        return errorValue();
      }
      return lowerMethodCall(E->Loc, RValue{}, Target, /*IsVirtual=*/false,
                             E);
    }
    RValue Recv = lowerValue(FA->Base);
    if (Recv.isError())
      return errorValue();
    if (Recv.Ty->isString())
      return lowerStringMethod(E, Recv, FA->Name);
    if (!Recv.Ty->isClass()) {
      error(E->Loc, "method call on non-object " + typeName(Recv.Ty));
      return errorValue();
    }
    Method *Target = Recv.Ty->classDef()->findMethod(
        P.strings().intern(FA->Name));
    if (!Target) {
      error(E->Loc, "class " + typeName(Recv.Ty) + " has no method '" +
                        FA->Name + "'");
      return errorValue();
    }
    if (Target->isStatic()) {
      error(E->Loc, "static method '" + FA->Name +
                        "' must be called via its class name");
      return errorValue();
    }
    return lowerMethodCall(E->Loc, Recv, Target, /*IsVirtual=*/true, E);
  }

  // Bare-name call: builtin, enclosing-class method, or top-level
  // function.
  const auto *NR = cast<NameRefExpr>(E->Callee);

  // Builtin str(int) -> string.
  if (NR->Name == "str" && E->Args.size() == 1) {
    RValue A = lowerValue(E->Args[0]);
    if (A.isError())
      return errorValue();
    if (!A.Ty->isInt()) {
      error(E->Loc, "str() expects an int");
      return errorValue();
    }
    Local *T = newTemp(P.types().stringType());
    emit<StrOpInstr>(E->Loc, T, StrOpKind::FromInt,
                     std::vector<Local *>{A.Val});
    return {T, T->type()};
  }

  Symbol Name = P.strings().intern(NR->Name);
  if (Enclosing) {
    if (Method *Target = Enclosing->findMethod(Name)) {
      if (Target->isStatic())
        return lowerMethodCall(E->Loc, RValue{}, Target, /*IsVirtual=*/false,
                               E);
      if (!ThisLocal) {
        error(E->Loc, "cannot call instance method '" + NR->Name +
                          "' from a static method");
        return errorValue();
      }
      return lowerMethodCall(E->Loc, RValue{ThisLocal, ThisLocal->type()},
                             Target, /*IsVirtual=*/true, E);
    }
  }
  auto It = Outer.TopLevel.find(NR->Name);
  if (It != Outer.TopLevel.end())
    return lowerMethodCall(E->Loc, RValue{}, It->second, /*IsVirtual=*/false,
                           E);
  error(E->Loc, "unknown function '" + NR->Name + "'");
  return errorValue();
}

RValue BodyLowering::lowerNewObject(const NewObjectExpr *E) {
  Program &P = program();
  ClassDef *C = P.findClass(P.strings().lookup(E->ClassName));
  if (!C) {
    error(E->Loc, "unknown class '" + E->ClassName + "'");
    return errorValue();
  }
  const Type *Ty = P.types().classType(C);
  Local *Obj = newTemp(Ty);
  emit<NewInstr>(E->Loc, Obj, C);

  Method *Init = C->findMethod(P.strings().intern("init"));
  if (!Init) {
    if (!E->Args.empty()) {
      error(E->Loc, "class " + E->ClassName +
                        " has no 'init' but arguments were given");
      return errorValue();
    }
    return {Obj, Ty};
  }
  if (Init->isStatic()) {
    error(E->Loc, "'init' must be an instance method");
    return errorValue();
  }
  if (Init->params().size() != E->Args.size()) {
    error(E->Loc, "constructor of " + E->ClassName + " expects " +
                      std::to_string(Init->params().size()) +
                      " arguments, got " + std::to_string(E->Args.size()));
    return errorValue();
  }
  std::vector<Local *> Args;
  for (size_t I = 0; I != E->Args.size(); ++I) {
    RValue A = lowerValue(E->Args[I]);
    if (A.isError())
      return errorValue();
    if (!isAssignable(Init->params()[I].Ty, A.Ty)) {
      error(E->Args[I]->Loc, "constructor argument " + std::to_string(I + 1) +
                                 " type mismatch");
      return errorValue();
    }
    Args.push_back(A.Val);
  }
  // Constructors dispatch statically.
  emit<CallInstr>(E->Loc, nullptr, Init, /*IsVirtual=*/false, Obj, Args);
  return {Obj, Ty};
}

//===----------------------------------------------------------------------===//
// Lowering: module-level passes
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Lowering::run() {
  // Gate on errors *this* lowering adds, not on pre-existing ones: a
  // recovered parse hands us a partial AST with parse errors already
  // in Diag, and sema must still run so one compile reports every
  // diagnostic.
  const unsigned EntryErrors = Diag.errorCount();
  declareClasses();
  if (Diag.errorCount() != EntryErrors)
    return nullptr;
  declareMembers();
  if (Diag.errorCount() != EntryErrors)
    return nullptr;
  checkOverrides();
  buildClinit();
  lowerBodies();
  selectMain();
  if (Diag.errorCount() != EntryErrors)
    return nullptr;
  P->renumberAll();
  if (Options.BuildSSA)
    buildSSAAll(*P);
  return std::move(P);
}

void Lowering::declareClasses() {
  for (const ClassDeclAst &C : Module.Classes) {
    Symbol Name = P->strings().intern(C.Name);
    if (P->findClass(Name)) {
      Diag.error(C.Loc, "duplicate class '" + C.Name + "'");
      continue;
    }
    P->addClass(Name);
  }
  // Resolve superclasses and reject cycles.
  for (const ClassDeclAst &C : Module.Classes) {
    ClassDef *Class = P->findClass(P->strings().lookup(C.Name));
    if (!Class)
      continue;
    ClassDef *Super = P->objectClass();
    if (!C.SuperName.empty()) {
      Super = P->findClass(P->strings().lookup(C.SuperName));
      if (!Super) {
        Diag.error(C.Loc, "unknown superclass '" + C.SuperName + "'");
        continue;
      }
    }
    Class->setSuperclass(Super);
  }
  for (const ClassDeclAst &C : Module.Classes) {
    ClassDef *Class = P->findClass(P->strings().lookup(C.Name));
    if (!Class)
      continue;
    // Cycle check: walk at most #classes steps.
    ClassDef *Walk = Class->superclass();
    size_t Steps = 0;
    while (Walk && Steps++ <= P->classes().size()) {
      if (Walk == Class) {
        Diag.error(C.Loc, "inheritance cycle involving '" + C.Name + "'");
        Class->setSuperclass(P->objectClass());
        break;
      }
      Walk = Walk->superclass();
    }
  }
}

void Lowering::declareMembers() {
  // A scratch BodyLowering provides typeOf; it never emits (no body).
  for (const ClassDeclAst &C : Module.Classes) {
    ClassDef *Class = P->findClass(P->strings().lookup(C.Name));
    if (!Class)
      continue;
    BodyLowering Scratch(*this, nullptr, Class);
    for (const FieldDeclAst &F : C.Fields) {
      Symbol Name = P->strings().intern(F.Name);
      if (Class->findOwnField(Name)) {
        Diag.error(F.Loc, "duplicate field '" + F.Name + "'");
        continue;
      }
      const Type *Ty = Scratch.typeOf(F.Type, /*AllowVoid=*/false);
      if (!Ty)
        continue;
      Field *Fld = P->addField(Name, Ty, Class, F.IsStatic);
      if (F.IsStatic)
        StaticFields.emplace_back(Fld, &F);
    }
    for (const MethodDeclAst &MD : C.Methods) {
      Symbol Name = P->strings().intern(MD.Name);
      if (Class->findOwnMethod(Name)) {
        Diag.error(MD.Loc, "duplicate method '" + MD.Name + "'");
        continue;
      }
      const Type *Ret = MD.HasReturnType
                            ? Scratch.typeOf(MD.ReturnType, /*AllowVoid=*/true)
                            : P->types().voidType();
      if (!Ret)
        continue;
      std::vector<ParamSig> Params;
      bool Bad = false;
      for (const ParamAst &PA : MD.Params) {
        const Type *Ty = Scratch.typeOf(PA.Type, /*AllowVoid=*/false);
        if (!Ty) {
          Bad = true;
          break;
        }
        Params.push_back({P->strings().intern(PA.Name), Ty});
      }
      if (Bad)
        continue;
      Method *M = P->addMethod(Name, Class, MD.IsStatic, Ret,
                               std::move(Params));
      MethodOf[&MD] = M;
      EnclosingOf[M] = Class;
    }
  }
  for (const MethodDeclAst &MD : Module.Functions) {
    if (TopLevel.count(MD.Name)) {
      Diag.error(MD.Loc, "duplicate function '" + MD.Name + "'");
      continue;
    }
    BodyLowering Scratch(*this, nullptr, nullptr);
    const Type *Ret = MD.HasReturnType
                          ? Scratch.typeOf(MD.ReturnType, /*AllowVoid=*/true)
                          : P->types().voidType();
    if (!Ret)
      continue;
    std::vector<ParamSig> Params;
    bool Bad = false;
    for (const ParamAst &PA : MD.Params) {
      const Type *Ty = Scratch.typeOf(PA.Type, /*AllowVoid=*/false);
      if (!Ty) {
        Bad = true;
        break;
      }
      Params.push_back({P->strings().intern(PA.Name), Ty});
    }
    if (Bad)
      continue;
    Method *M = P->addMethod(P->strings().intern(MD.Name), nullptr,
                             /*IsStatic=*/true, Ret, std::move(Params));
    MethodOf[&MD] = M;
    EnclosingOf[M] = nullptr;
    TopLevel[MD.Name] = M;
  }
}

void Lowering::checkOverrides() {
  for (const auto &ClassPtr : P->classes()) {
    ClassDef *Super = ClassPtr->superclass();
    if (!Super)
      continue;
    Symbol InitName = P->strings().lookup("init");
    for (Method *M : ClassPtr->methods()) {
      // Constructors dispatch statically; subclasses may freely declare
      // 'init' with a different signature.
      if (InitName && M->name() == InitName)
        continue;
      Method *Overridden = Super->findMethod(M->name());
      if (!Overridden)
        continue;
      bool Compatible = !M->isStatic() && !Overridden->isStatic() &&
                        M->returnType() == Overridden->returnType() &&
                        M->params().size() == Overridden->params().size();
      if (Compatible)
        for (size_t I = 0; I != M->params().size(); ++I)
          if (M->params()[I].Ty != Overridden->params()[I].Ty)
            Compatible = false;
      if (!Compatible)
        Diag.error(SourceLoc(), "method '" +
                                    M->qualifiedName(P->strings()) +
                                    "' overrides '" +
                                    Overridden->qualifiedName(P->strings()) +
                                    "' with an incompatible signature");
    }
  }
}

void Lowering::buildClinit() {
  if (StaticFields.empty())
    return;
  Clinit = P->addMethod(P->strings().intern("$clinit"), nullptr,
                        /*IsStatic=*/true, P->types().voidType(), {});
  BodyLowering BL(*this, Clinit, nullptr);
  BL.runClinit(StaticFields);
}

void Lowering::lowerBodies() {
  auto LowerOne = [&](const MethodDeclAst &MD) {
    auto It = MethodOf.find(&MD);
    if (It == MethodOf.end())
      return;
    Method *M = It->second;
    BodyLowering BL(*this, M, EnclosingOf[M]);
    BL.run(&MD);
  };
  for (const ClassDeclAst &C : Module.Classes)
    for (const MethodDeclAst &MD : C.Methods)
      LowerOne(MD);
  for (const MethodDeclAst &MD : Module.Functions)
    LowerOne(MD);
}

void Lowering::selectMain() {
  Method *Main = nullptr;
  auto It = TopLevel.find("main");
  if (It != TopLevel.end())
    Main = It->second;
  if (!Main) {
    for (const auto &M : P->methods())
      if (M->isStatic() && M->owner() &&
          P->strings().str(M->name()) == "main")
        Main = M.get();
  }
  if (Main && !Main->params().empty()) {
    Diag.error(SourceLoc(), "'main' must take no parameters");
    return;
  }
  if (!Main) {
    if (Options.RequireMain)
      Diag.error(SourceLoc(), "no entry point: define a top-level or "
                              "static 'main()'");
    return;
  }
  P->setMainMethod(Main);

  // Run static initialization before main's body.
  if (Clinit && Main->entry()) {
    auto Call = std::make_unique<CallInstr>(nullptr, Clinit,
                                            /*IsVirtual=*/false, nullptr,
                                            std::vector<Local *>{});
    Main->entry()->prepend(std::move(Call));
    Main->renumber();
  }
}

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> tsl::lowerModule(const AstModule &Module,
                                          DiagnosticEngine &Diag,
                                          const CompileOptions &Options) {
  return Lowering(Module, Diag, Options).run();
}

std::unique_ptr<Program> tsl::compileThinJ(std::string_view Source,
                                           DiagnosticEngine &Diag,
                                           const CompileOptions &Options) {
  Expected<std::unique_ptr<Program>> R =
      compileThinJChecked(Source, Diag, Options);
  return R.ok() ? std::move(*R) : nullptr;
}

Expected<std::unique_ptr<Program>>
tsl::compileThinJChecked(std::string_view Source, DiagnosticEngine &Diag,
                         const CompileOptions &Options) {
  auto summarize = [&Diag](StatusCode Code, unsigned Since) {
    unsigned N = Diag.errorCount() - Since;
    std::string Msg = std::to_string(N) + " error(s)";
    for (const Diagnostic &D : Diag.diagnostics())
      if (D.Kind == DiagKind::Error) {
        Msg += "; first: " + D.str();
        break;
      }
    return Status(Code, std::move(Msg));
  };

  unsigned Entry = Diag.errorCount();
  AstModule Module;
  bool ParseOk = parseModule(Source, Module, Diag);
  unsigned AfterParse = Diag.errorCount();
  // Sema runs even over the partial AST of a failed parse, so a file
  // with both syntax and semantic errors reports all of them at once.
  std::unique_ptr<Program> P = lowerModule(Module, Diag, Options);
  if (!ParseOk)
    return summarize(StatusCode::ParseError, Entry);
  if (!P)
    return summarize(StatusCode::SemaError, AfterParse);
  if (Options.VerifyIR) {
    // Nothing malformed reaches the analyses: violations are compile
    // errors, not asserts inside a solver.
    std::vector<std::string> Violations = verifyProgram(*P);
    if (!Violations.empty()) {
      for (const std::string &V : Violations)
        Diag.error(SourceLoc(), "verifier: " + V);
      return Status(StatusCode::VerifyError,
                    std::to_string(Violations.size()) +
                        " IR verifier violation(s); first: " + Violations[0]);
    }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Incremental recompilation
//===----------------------------------------------------------------------===//

bool tsl::relowerMethodBody(Program &P, Method &M, const MethodDeclAst &Decl,
                            DiagnosticEngine &Diag,
                            const CompileOptions &Options) {
  const unsigned EntryErrors = Diag.errorCount();
  AstModule Empty;
  Lowering L(P, Empty, Diag, Options);
  L.relowerBody(M, Decl);
  if (Diag.errorCount() != EntryErrors)
    return false;

  // Replay of selectMain(): static initialization runs before main's
  // body, so a relowered main gets the $clinit call re-prepended.
  if (P.mainMethod() == &M) {
    Method *Clinit = nullptr;
    for (const auto &MP : P.methods())
      if (!MP->owner() && P.strings().str(MP->name()) == "$clinit")
        Clinit = MP.get();
    if (Clinit && M.entry()) {
      auto Call = std::make_unique<CallInstr>(nullptr, Clinit,
                                              /*IsVirtual=*/false, nullptr,
                                              std::vector<Local *>{});
      M.entry()->prepend(std::move(Call));
    }
  }
  // Instruction ids are method-local and dense, so renumbering here
  // cannot disturb any other method's artifacts.
  M.renumber();
  if (Options.BuildSSA)
    buildSSA(P, M);
  if (Options.VerifyIR) {
    std::vector<std::string> Violations = verifyMethod(P, M);
    for (const std::string &V : Violations)
      Diag.error(SourceLoc(), "verifier: " + V);
    if (!Violations.empty())
      return false;
  }
  return true;
}

IncrementalCompileResult
tsl::applyIncrementalCompile(Program &P, const SourceDiff &Diff,
                             const CompileOptions &Options) {
  IncrementalCompileResult R;
  if (!Diff.Eligible) {
    R.Reason = Diff.Reason.empty() ? "ineligible diff" : Diff.Reason;
    return R;
  }

  // Resolve every dirty function and parse every fragment up front, so
  // failures here leave the program untouched.
  struct Job {
    Method *M = nullptr;
    AstModule Ast;
    const MethodDeclAst *Decl = nullptr;
  };
  std::vector<Job> Jobs;
  for (const SourceDiff::DirtyFn &Fn : Diff.Dirty) {
    Job J;
    Symbol Name = P.strings().lookup(Fn.Name);
    if (!Fn.ClassName.empty()) {
      ClassDef *C = P.findClass(P.strings().lookup(Fn.ClassName));
      J.M = C && Name ? C->findOwnMethod(Name) : nullptr;
    } else if (Name) {
      for (const auto &MP : P.methods())
        if (!MP->owner() && MP->name() == Name) {
          J.M = MP.get();
          break;
        }
    }
    if (!J.M) {
      R.Reason = "cannot resolve edited function '" + Fn.Name + "'";
      return R;
    }
    DiagnosticEngine FragDiag;
    if (!parseModule(Fn.Fragment, J.Ast, FragDiag) || FragDiag.hasErrors()) {
      R.Reason = "parse error in edited '" + Fn.Name + "'";
      return R;
    }
    Jobs.push_back(std::move(J));
  }
  // Decl pointers are taken only once Jobs stops reallocating.
  for (Job &J : Jobs) {
    if (!J.Ast.Classes.empty() || J.Ast.Functions.size() != 1) {
      R.Reason = "unexpected fragment shape";
      return R;
    }
    J.Decl = &J.Ast.Functions[0];
  }

  // Swap in the new bodies. From here on a failure leaves the program
  // in a mixed state: the caller must discard it and cold-compile (the
  // returned RetiredBodies keep the detached storage alive until then).
  DiagnosticEngine Diag;
  for (Job &J : Jobs) {
    R.DirtyMethods.push_back(J.M);
    R.RetiredBodies.push_back(J.M->takeBody());
    if (!relowerMethodBody(P, *J.M, *J.Decl, Diag, Options)) {
      R.Reason = "relower failed";
      for (const Diagnostic &D : Diag.diagnostics())
        if (D.Kind == DiagKind::Error) {
          R.Reason += ": " + D.str();
          break;
        }
      return R;
    }
  }

  // Shift retained source locations of unchanged bodies past edits
  // that grew or shrank a body's line count.
  if (!Diff.Steps.empty()) {
    std::unordered_set<const Method *> DirtySet(R.DirtyMethods.begin(),
                                                R.DirtyMethods.end());
    for (const auto &MP : P.methods()) {
      if (DirtySet.count(MP.get()))
        continue;
      for (Instr *I : MP->instrs()) {
        SourceLoc L = I->loc();
        if (L.Line == 0)
          continue;
        long D = Diff.shiftForOldLine(L.Line);
        if (D)
          I->setLoc(SourceLoc(static_cast<uint32_t>(
                                  static_cast<long>(L.Line) + D),
                              L.Col));
      }
    }
  }
  R.Applied = true;
  return R;
}
