//===-- Token.h - ThinJ tokens ----------------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value produced by the ThinJ lexer.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_TOKEN_H
#define THINSLICER_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace tsl {

/// ThinJ token kinds.
enum class TokKind {
  Eof,
  Error,
  // Literals and identifiers.
  Ident,
  IntLit,
  StringLit,
  // Keywords.
  KwClass,
  KwExtends,
  KwVar,
  KwDef,
  KwStatic,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwThrow,
  KwBreak,
  KwContinue,
  KwNew,
  KwNull,
  KwTrue,
  KwFalse,
  KwThis,
  KwSuper,
  KwInstanceof,
  KwPrint,
  KwReadLine,
  KwReadInt,
  KwInt,
  KwBool,
  KwString,
  KwVoid,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Colon,
  Comma,
  Dot,
  // Operators.
  Assign,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  AmpAmp,
  PipePipe,
};

/// Returns a printable name for diagnostics ("identifier", "'{'", ...).
const char *tokKindName(TokKind Kind);

/// One lexed token. Text is only meaningful for Ident/IntLit/StringLit
/// (for StringLit it holds the decoded contents).
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace tsl

#endif // THINSLICER_LANG_TOKEN_H
