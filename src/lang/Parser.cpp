//===-- Parser.cpp - ThinJ parser -------------------------------------------==//

#include "lang/Parser.h"

#include <optional>

using namespace tsl;

namespace {

/// Recursive-descent parser over a pre-lexed token buffer. Buffering
/// the whole token stream makes backtracking (needed only for the
/// "(Type) expr" cast ambiguity) a simple index save/restore.
class Parser {
public:
  Parser(std::string_view Source, AstModule &Module, DiagnosticEngine &Diag)
      : Module(Module), Diag(Diag) {
    Lexer Lex(Source, Diag);
    while (true) {
      Token T = Lex.next();
      bool IsEof = T.is(TokKind::Eof);
      Toks.push_back(std::move(T));
      if (IsEof)
        break;
    }
  }

  void run();

private:
  //===------------------------------------------------------------------===//
  // Token plumbing
  //===------------------------------------------------------------------===//

  const Token &tok(unsigned Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Toks.size() ? Toks[Idx] : Toks.back();
  }
  void bump() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool at(TokKind K, unsigned Ahead = 0) const { return tok(Ahead).is(K); }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    bump();
    return true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    Diag.error(tok().Loc, std::string("expected ") + tokKindName(K) + " " +
                              Context + ", found " + tokKindName(tok().Kind));
    return false;
  }

  void recoverTo(TokKind K) {
    while (!at(TokKind::Eof) && !at(K))
      bump();
    accept(K);
  }

  /// True for a token that can begin a statement — the anchors
  /// statement-boundary recovery stops at.
  bool atStmtStart() const {
    switch (tok().Kind) {
    case TokKind::LBrace:
    case TokKind::RBrace:
    case TokKind::KwVar:
    case TokKind::KwIf:
    case TokKind::KwWhile:
    case TokKind::KwFor:
    case TokKind::KwReturn:
    case TokKind::KwThrow:
    case TokKind::KwBreak:
    case TokKind::KwContinue:
    case TokKind::KwPrint:
    case TokKind::KwSuper:
    case TokKind::KwClass:
    case TokKind::KwDef:
      return true;
    default:
      return false;
    }
  }

  /// Statement-boundary synchronization: skips past the next ';' or
  /// stops before a token that can begin a statement (or '}' / Eof),
  /// so one malformed statement costs one located diagnostic instead
  /// of a cascade, and everything after the boundary still parses.
  void syncToStmtBoundary() {
    while (!at(TokKind::Eof)) {
      if (accept(TokKind::Semi))
        return;
      if (atStmtStart())
        return;
      bump();
    }
  }

  /// Consumes the statement-terminating ';' or reports one ranged
  /// diagnostic covering [StmtLoc, here] and synchronizes. \p Quiet
  /// suppresses the report when the statement already produced one —
  /// the boundary sync still runs so recovery is identical.
  void expectStmtSemi(SourceLoc StmtLoc, const char *Context, bool Quiet) {
    if (accept(TokKind::Semi))
      return;
    if (!Quiet)
      Diag.error(StmtLoc, tok().Loc,
                 std::string("expected ';' ") + Context + ", found " +
                     tokKindName(tok().Kind));
    syncToStmtBoundary();
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  void parseClass();
  std::optional<MethodDeclAst> parseMethod(bool IsStatic);
  std::optional<FieldDeclAst> parseField(bool IsStatic);
  bool parseParams(std::vector<ParamAst> &Params);
  std::optional<TypeExprAst> parseType();

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  StmtAst *parseStmt();
  BlockStmt *parseBlock();
  StmtAst *parseVarDecl();
  StmtAst *parseIf();
  StmtAst *parseWhile();
  StmtAst *parseFor();
  StmtAst *parseSimpleStmt(bool ExpectSemi);

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  ExprAst *parseExpr();
  ExprAst *parseOr();
  ExprAst *parseAnd();
  ExprAst *parseEquality();
  ExprAst *parseRelational();
  ExprAst *parseAdditive();
  ExprAst *parseMultiplicative();
  ExprAst *parseUnary();
  ExprAst *parsePostfix();
  ExprAst *parsePrimary();
  bool parseArgs(std::vector<ExprAst *> &Args);

  /// Attempts to parse a cast "(Type) operand" at the current '('.
  /// Returns null (with the position restored) when the parenthesis is
  /// not a cast.
  ExprAst *tryParseCast();

  ExprAst *errorExpr(SourceLoc Loc) {
    ExprAst *E = Module.createExpr<NullLitExpr>(Loc);
    E->Recovered = true;
    return E;
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  AstModule &Module;
  DiagnosticEngine &Diag;
};

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Parser::run() {
  while (!at(TokKind::Eof)) {
    if (at(TokKind::KwClass)) {
      parseClass();
    } else if (at(TokKind::KwDef)) {
      bump();
      if (auto M = parseMethod(/*IsStatic=*/true))
        Module.Functions.push_back(std::move(*M));
    } else {
      Diag.error(tok().Loc,
                 std::string("expected 'class' or 'def' at top level, "
                             "found ") +
                     tokKindName(tok().Kind));
      bump();
    }
  }
}

void Parser::parseClass() {
  bump(); // class
  ClassDeclAst Class;
  Class.Loc = tok().Loc;
  if (!at(TokKind::Ident)) {
    Diag.error(tok().Loc, "expected class name");
    recoverTo(TokKind::RBrace);
    return;
  }
  Class.Name = tok().Text;
  bump();
  if (accept(TokKind::KwExtends)) {
    if (!at(TokKind::Ident)) {
      Diag.error(tok().Loc, "expected superclass name after 'extends'");
    } else {
      Class.SuperName = tok().Text;
      bump();
    }
  }
  if (!expect(TokKind::LBrace, "to begin class body")) {
    recoverTo(TokKind::RBrace);
    return;
  }
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    bool IsStatic = accept(TokKind::KwStatic);
    if (accept(TokKind::KwVar)) {
      if (auto F = parseField(IsStatic))
        Class.Fields.push_back(std::move(*F));
    } else if (accept(TokKind::KwDef)) {
      if (auto M = parseMethod(IsStatic))
        Class.Methods.push_back(std::move(*M));
    } else {
      Diag.error(tok().Loc,
                 std::string("expected 'var' or 'def' in class body, "
                             "found ") +
                     tokKindName(tok().Kind));
      bump();
    }
  }
  expect(TokKind::RBrace, "to end class body");
  Module.Classes.push_back(std::move(Class));
}

std::optional<FieldDeclAst> Parser::parseField(bool IsStatic) {
  FieldDeclAst Field;
  Field.IsStatic = IsStatic;
  Field.Loc = tok().Loc;
  if (!at(TokKind::Ident)) {
    Diag.error(tok().Loc, "expected field name");
    recoverTo(TokKind::Semi);
    return std::nullopt;
  }
  Field.Name = tok().Text;
  bump();
  if (!expect(TokKind::Colon, "after field name")) {
    recoverTo(TokKind::Semi);
    return std::nullopt;
  }
  auto Type = parseType();
  if (!Type) {
    recoverTo(TokKind::Semi);
    return std::nullopt;
  }
  Field.Type = std::move(*Type);
  if (accept(TokKind::Assign)) {
    if (!IsStatic)
      Diag.error(tok().Loc, "only static fields may have initializers; "
                            "initialize instance fields in 'init'");
    Field.Init = parseExpr();
  }
  expect(TokKind::Semi, "after field declaration");
  return Field;
}

std::optional<MethodDeclAst> Parser::parseMethod(bool IsStatic) {
  MethodDeclAst M;
  M.IsStatic = IsStatic;
  M.Loc = tok().Loc;
  if (!at(TokKind::Ident)) {
    Diag.error(tok().Loc, "expected method name");
    recoverTo(TokKind::RBrace);
    return std::nullopt;
  }
  M.Name = tok().Text;
  bump();
  if (!expect(TokKind::LParen, "to begin parameter list"))
    return std::nullopt;
  if (!parseParams(M.Params))
    return std::nullopt;
  if (accept(TokKind::Colon)) {
    auto Type = parseType();
    if (!Type)
      return std::nullopt;
    M.HasReturnType = true;
    M.ReturnType = std::move(*Type);
  }
  if (!at(TokKind::LBrace)) {
    Diag.error(tok().Loc, "expected method body");
    return std::nullopt;
  }
  M.Body = parseBlock();
  return M;
}

bool Parser::parseParams(std::vector<ParamAst> &Params) {
  if (accept(TokKind::RParen))
    return true;
  while (true) {
    ParamAst P;
    P.Loc = tok().Loc;
    if (!at(TokKind::Ident)) {
      Diag.error(tok().Loc, "expected parameter name");
      recoverTo(TokKind::RParen);
      return false;
    }
    P.Name = tok().Text;
    bump();
    if (!expect(TokKind::Colon, "after parameter name")) {
      recoverTo(TokKind::RParen);
      return false;
    }
    auto Type = parseType();
    if (!Type) {
      recoverTo(TokKind::RParen);
      return false;
    }
    P.Type = std::move(*Type);
    Params.push_back(std::move(P));
    if (accept(TokKind::RParen))
      return true;
    if (!expect(TokKind::Comma, "between parameters")) {
      recoverTo(TokKind::RParen);
      return false;
    }
  }
}

std::optional<TypeExprAst> Parser::parseType() {
  TypeExprAst T;
  T.Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::KwInt:
    T.BaseKind = TypeExprAst::Base::Int;
    break;
  case TokKind::KwBool:
    T.BaseKind = TypeExprAst::Base::Bool;
    break;
  case TokKind::KwString:
    T.BaseKind = TypeExprAst::Base::String;
    break;
  case TokKind::KwVoid:
    T.BaseKind = TypeExprAst::Base::Void;
    break;
  case TokKind::Ident:
    T.BaseKind = TypeExprAst::Base::Named;
    T.Name = tok().Text;
    break;
  default:
    Diag.error(tok().Loc, std::string("expected type, found ") +
                              tokKindName(tok().Kind));
    return std::nullopt;
  }
  bump();
  while (at(TokKind::LBracket) && at(TokKind::RBracket, 1)) {
    bump();
    bump();
    ++T.ArrayRank;
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = tok().Loc;
  expect(TokKind::LBrace, "to begin block");
  std::vector<StmtAst *> Stmts;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (StmtAst *S = parseStmt())
      Stmts.push_back(S);
  }
  expect(TokKind::RBrace, "to end block");
  return Module.createStmt<BlockStmt>(std::move(Stmts), Loc);
}

StmtAst *Parser::parseStmt() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwVar:
    return parseVarDecl();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    unsigned Errs = Diag.errorCount();
    bump();
    ExprAst *Value = nullptr;
    if (!at(TokKind::Semi))
      Value = parseExpr();
    expectStmtSemi(Loc, "after return statement", Diag.errorCount() != Errs);
    return Module.createStmt<ReturnStmt>(Value, Loc);
  }
  case TokKind::KwThrow: {
    unsigned Errs = Diag.errorCount();
    bump();
    ExprAst *Value = parseExpr();
    expectStmtSemi(Loc, "after throw statement", Diag.errorCount() != Errs);
    return Module.createStmt<ThrowStmt>(Value, Loc);
  }
  case TokKind::KwBreak:
    bump();
    expectStmtSemi(Loc, "after break", /*Quiet=*/false);
    return Module.createStmt<BreakStmt>(Loc);
  case TokKind::KwContinue:
    bump();
    expectStmtSemi(Loc, "after continue", /*Quiet=*/false);
    return Module.createStmt<ContinueStmt>(Loc);
  case TokKind::KwPrint: {
    unsigned Errs = Diag.errorCount();
    bump();
    expect(TokKind::LParen, "after 'print'");
    ExprAst *Value = parseExpr();
    expect(TokKind::RParen, "after print argument");
    expectStmtSemi(Loc, "after print statement", Diag.errorCount() != Errs);
    return Module.createStmt<PrintStmt>(Value, Loc);
  }
  case TokKind::KwSuper: {
    unsigned Errs = Diag.errorCount();
    bump();
    expect(TokKind::LParen, "after 'super'");
    std::vector<ExprAst *> Args;
    parseArgs(Args);
    expectStmtSemi(Loc, "after super call", Diag.errorCount() != Errs);
    return Module.createStmt<SuperCallStmt>(std::move(Args), Loc);
  }
  case TokKind::Semi:
    bump(); // Empty statement.
    return nullptr;
  default:
    return parseSimpleStmt(/*ExpectSemi=*/true);
  }
}

StmtAst *Parser::parseVarDecl() {
  SourceLoc Loc = tok().Loc;
  bump(); // var
  if (!at(TokKind::Ident)) {
    Diag.error(tok().Loc, "expected variable name");
    recoverTo(TokKind::Semi);
    return nullptr;
  }
  std::string Name = tok().Text;
  bump();
  bool HasType = false;
  TypeExprAst Type;
  if (accept(TokKind::Colon)) {
    auto T = parseType();
    if (!T) {
      recoverTo(TokKind::Semi);
      return nullptr;
    }
    HasType = true;
    Type = std::move(*T);
  }
  if (!expect(TokKind::Assign, "(locals require an initializer)")) {
    syncToStmtBoundary();
    return nullptr;
  }
  unsigned Errs = Diag.errorCount();
  ExprAst *Init = parseExpr();
  expectStmtSemi(Loc, "after variable declaration", Diag.errorCount() != Errs);
  return Module.createStmt<VarDeclStmt>(std::move(Name), HasType,
                                        std::move(Type), Init, Loc);
}

StmtAst *Parser::parseIf() {
  SourceLoc Loc = tok().Loc;
  bump(); // if
  expect(TokKind::LParen, "after 'if'");
  ExprAst *Cond = parseExpr();
  expect(TokKind::RParen, "after if condition");
  StmtAst *Then = parseStmt();
  StmtAst *Else = nullptr;
  if (accept(TokKind::KwElse))
    Else = parseStmt();
  return Module.createStmt<IfStmt>(Cond, Then, Else, Loc);
}

StmtAst *Parser::parseWhile() {
  SourceLoc Loc = tok().Loc;
  bump(); // while
  expect(TokKind::LParen, "after 'while'");
  ExprAst *Cond = parseExpr();
  expect(TokKind::RParen, "after while condition");
  StmtAst *Body = parseStmt();
  return Module.createStmt<WhileStmt>(Cond, Body, Loc);
}

StmtAst *Parser::parseFor() {
  // for (init; cond; step) body  desugars to
  // { init; while (cond) { body; step; } }
  SourceLoc Loc = tok().Loc;
  bump(); // for
  expect(TokKind::LParen, "after 'for'");
  StmtAst *Init = nullptr;
  if (!at(TokKind::Semi)) {
    if (at(TokKind::KwVar))
      Init = parseVarDecl(); // Consumes the ';'.
    else
      Init = parseSimpleStmt(/*ExpectSemi=*/true);
  } else {
    bump();
  }
  ExprAst *Cond = nullptr;
  if (!at(TokKind::Semi))
    Cond = parseExpr();
  else
    Cond = Module.createExpr<BoolLitExpr>(true, tok().Loc);
  expect(TokKind::Semi, "after for condition");
  StmtAst *Step = nullptr;
  if (!at(TokKind::RParen))
    Step = parseSimpleStmt(/*ExpectSemi=*/false);
  expect(TokKind::RParen, "after for clauses");
  StmtAst *Body = parseStmt();

  std::vector<StmtAst *> LoopBody;
  if (Body)
    LoopBody.push_back(Body);
  if (Step)
    LoopBody.push_back(Step);
  StmtAst *While = Module.createStmt<WhileStmt>(
      Cond, Module.createStmt<BlockStmt>(std::move(LoopBody), Loc), Loc);
  std::vector<StmtAst *> Outer;
  if (Init)
    Outer.push_back(Init);
  Outer.push_back(While);
  return Module.createStmt<BlockStmt>(std::move(Outer), Loc);
}

StmtAst *Parser::parseSimpleStmt(bool ExpectSemi) {
  // An expression statement or an assignment.
  SourceLoc Loc = tok().Loc;
  unsigned Errs = Diag.errorCount();
  ExprAst *E = parseExpr();
  StmtAst *Result;
  if (accept(TokKind::Assign)) {
    ExprAst *RHS = parseExpr();
    if (E->Kind != ExprKind::NameRef && E->Kind != ExprKind::FieldAccess &&
        E->Kind != ExprKind::Index)
      Diag.error(Loc, tok().Loc,
                 "left-hand side of assignment is not assignable");
    Result = Module.createStmt<AssignStmt>(E, RHS, Loc);
  } else {
    if (E->Kind != ExprKind::Call && E->Kind != ExprKind::NewObject &&
        E->Kind != ExprKind::Read && Diag.errorCount() == Errs)
      Diag.error(Loc, "expression statement has no effect");
    Result = Module.createStmt<ExprStmt>(E, Loc);
  }
  if (ExpectSemi)
    expectStmtSemi(Loc, "after statement", Diag.errorCount() != Errs);
  return Result;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprAst *Parser::parseExpr() { return parseOr(); }

ExprAst *Parser::parseOr() {
  ExprAst *LHS = parseAnd();
  while (at(TokKind::PipePipe)) {
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseAnd();
    LHS = Module.createExpr<LogicalExpr>(LogicalExpr::Op::Or, LHS, RHS, Loc);
  }
  return LHS;
}

ExprAst *Parser::parseAnd() {
  ExprAst *LHS = parseEquality();
  while (at(TokKind::AmpAmp)) {
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseEquality();
    LHS = Module.createExpr<LogicalExpr>(LogicalExpr::Op::And, LHS, RHS, Loc);
  }
  return LHS;
}

ExprAst *Parser::parseEquality() {
  ExprAst *LHS = parseRelational();
  while (at(TokKind::EqEq) || at(TokKind::NotEq)) {
    auto Op = at(TokKind::EqEq) ? BinaryExpr::Op::Eq : BinaryExpr::Op::Ne;
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseRelational();
    LHS = Module.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

ExprAst *Parser::parseRelational() {
  ExprAst *LHS = parseAdditive();
  while (true) {
    if (at(TokKind::KwInstanceof)) {
      SourceLoc Loc = tok().Loc;
      bump();
      auto Type = parseType();
      if (!Type)
        return LHS;
      LHS = Module.createExpr<InstanceOfExpr>(LHS, std::move(*Type), Loc);
      continue;
    }
    BinaryExpr::Op Op;
    if (at(TokKind::Lt))
      Op = BinaryExpr::Op::Lt;
    else if (at(TokKind::Le))
      Op = BinaryExpr::Op::Le;
    else if (at(TokKind::Gt))
      Op = BinaryExpr::Op::Gt;
    else if (at(TokKind::Ge))
      Op = BinaryExpr::Op::Ge;
    else
      return LHS;
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseAdditive();
    LHS = Module.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
}

ExprAst *Parser::parseAdditive() {
  ExprAst *LHS = parseMultiplicative();
  while (at(TokKind::Plus) || at(TokKind::Minus)) {
    auto Op = at(TokKind::Plus) ? BinaryExpr::Op::Add : BinaryExpr::Op::Sub;
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseMultiplicative();
    LHS = Module.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

ExprAst *Parser::parseMultiplicative() {
  ExprAst *LHS = parseUnary();
  while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
    BinaryExpr::Op Op = at(TokKind::Star)    ? BinaryExpr::Op::Mul
                        : at(TokKind::Slash) ? BinaryExpr::Op::Div
                                             : BinaryExpr::Op::Rem;
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *RHS = parseUnary();
    LHS = Module.createExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

ExprAst *Parser::tryParseCast() {
  // At '('. A cast is "( Type ) operand" where Type is a primitive or
  // class name with optional [] pairs, and the token after ')' begins
  // an operand. Backtrack otherwise.
  size_t Saved = Pos;
  SourceLoc Loc = tok().Loc;
  bump(); // (

  TypeExprAst Type;
  Type.Loc = tok().Loc;
  bool Prim = true;
  switch (tok().Kind) {
  case TokKind::KwInt:
    Type.BaseKind = TypeExprAst::Base::Int;
    break;
  case TokKind::KwBool:
    Type.BaseKind = TypeExprAst::Base::Bool;
    break;
  case TokKind::KwString:
    Type.BaseKind = TypeExprAst::Base::String;
    break;
  case TokKind::Ident:
    Type.BaseKind = TypeExprAst::Base::Named;
    Type.Name = tok().Text;
    Prim = false;
    break;
  default:
    Pos = Saved;
    return nullptr;
  }
  bump();
  while (at(TokKind::LBracket) && at(TokKind::RBracket, 1)) {
    bump();
    bump();
    ++Type.ArrayRank;
  }
  if (!at(TokKind::RParen)) {
    Pos = Saved;
    return nullptr;
  }
  // Token after ')' must begin an operand; this is what distinguishes
  // the cast "(Foo) x" from the parenthesized value "(foo)".
  switch (tok(1).Kind) {
  case TokKind::Ident:
  case TokKind::IntLit:
  case TokKind::StringLit:
  case TokKind::LParen:
  case TokKind::KwNew:
  case TokKind::KwThis:
  case TokKind::KwNull:
  case TokKind::KwTrue:
  case TokKind::KwFalse:
  case TokKind::KwReadLine:
  case TokKind::KwReadInt:
    break;
  default:
    // A primitive type name in parentheses can only be a cast; report
    // the missing operand rather than backtracking into nonsense.
    if (Prim || Type.ArrayRank > 0) {
      bump(); // )
      Diag.error(tok().Loc, "expected operand after cast");
      return errorExpr(Loc);
    }
    Pos = Saved;
    return nullptr;
  }
  bump(); // )
  ExprAst *Sub = parseUnary();
  return Module.createExpr<CastExpr>(std::move(Type), Sub, Loc);
}

ExprAst *Parser::parseUnary() {
  if (at(TokKind::Bang) || at(TokKind::Minus)) {
    auto Op = at(TokKind::Bang) ? UnaryExpr::Op::Not : UnaryExpr::Op::Neg;
    SourceLoc Loc = tok().Loc;
    bump();
    ExprAst *Sub = parseUnary();
    return Module.createExpr<UnaryExpr>(Op, Sub, Loc);
  }
  if (at(TokKind::LParen))
    if (ExprAst *Cast = tryParseCast())
      return Cast;
  return parsePostfix();
}

ExprAst *Parser::parsePostfix() {
  ExprAst *E = parsePrimary();
  while (true) {
    if (accept(TokKind::Dot)) {
      if (!at(TokKind::Ident)) {
        Diag.error(tok().Loc, "expected member name after '.'");
        return E;
      }
      std::string Member = tok().Text;
      SourceLoc MemberLoc = tok().Loc;
      bump();
      if (at(TokKind::LParen)) {
        bump();
        std::vector<ExprAst *> Args;
        parseArgs(Args);
        E = Module.createExpr<CallExprAst>(
            Module.createExpr<FieldAccessExpr>(E, std::move(Member),
                                               MemberLoc),
            std::move(Args), MemberLoc);
      } else {
        E = Module.createExpr<FieldAccessExpr>(E, std::move(Member),
                                               MemberLoc);
      }
    } else if (at(TokKind::LBracket)) {
      SourceLoc Loc = tok().Loc;
      bump();
      ExprAst *Idx = parseExpr();
      expect(TokKind::RBracket, "after array index");
      E = Module.createExpr<IndexExpr>(E, Idx, Loc);
    } else {
      return E;
    }
  }
}

bool Parser::parseArgs(std::vector<ExprAst *> &Args) {
  if (accept(TokKind::RParen))
    return true;
  while (true) {
    Args.push_back(parseExpr());
    if (accept(TokKind::RParen))
      return true;
    if (!expect(TokKind::Comma, "between arguments")) {
      recoverTo(TokKind::RParen);
      return false;
    }
  }
}

ExprAst *Parser::parsePrimary() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::IntLit: {
    int64_t Value = tok().IntValue;
    bump();
    return Module.createExpr<IntLitExpr>(Value, Loc);
  }
  case TokKind::StringLit: {
    std::string Value = tok().Text;
    bump();
    return Module.createExpr<StrLitExpr>(std::move(Value), Loc);
  }
  case TokKind::KwTrue:
    bump();
    return Module.createExpr<BoolLitExpr>(true, Loc);
  case TokKind::KwFalse:
    bump();
    return Module.createExpr<BoolLitExpr>(false, Loc);
  case TokKind::KwNull:
    bump();
    return Module.createExpr<NullLitExpr>(Loc);
  case TokKind::KwThis:
    bump();
    return Module.createExpr<ThisExpr>(Loc);
  case TokKind::KwReadLine:
    bump();
    expect(TokKind::LParen, "after 'readLine'");
    expect(TokKind::RParen, "after 'readLine('");
    return Module.createExpr<ReadExpr>(/*IsLine=*/true, Loc);
  case TokKind::KwReadInt:
    bump();
    expect(TokKind::LParen, "after 'readInt'");
    expect(TokKind::RParen, "after 'readInt('");
    return Module.createExpr<ReadExpr>(/*IsLine=*/false, Loc);
  case TokKind::KwNew: {
    bump();
    if (at(TokKind::Ident) && at(TokKind::LParen, 1)) {
      std::string ClassName = tok().Text;
      bump();
      bump(); // (
      std::vector<ExprAst *> Args;
      parseArgs(Args);
      return Module.createExpr<NewObjectExpr>(std::move(ClassName),
                                              std::move(Args), Loc);
    }
    // new Elem[len] — parse the element base, then the sized bracket,
    // then trailing [] pairs that raise the element rank.
    TypeExprAst Elem;
    Elem.Loc = tok().Loc;
    switch (tok().Kind) {
    case TokKind::KwInt:
      Elem.BaseKind = TypeExprAst::Base::Int;
      break;
    case TokKind::KwBool:
      Elem.BaseKind = TypeExprAst::Base::Bool;
      break;
    case TokKind::KwString:
      Elem.BaseKind = TypeExprAst::Base::String;
      break;
    case TokKind::Ident:
      Elem.BaseKind = TypeExprAst::Base::Named;
      Elem.Name = tok().Text;
      break;
    default:
      Diag.error(tok().Loc, "expected class name or array element type "
                            "after 'new'");
      return errorExpr(Loc);
    }
    bump();
    if (!expect(TokKind::LBracket, "after array element type in 'new'"))
      return errorExpr(Loc);
    ExprAst *Len = parseExpr();
    expect(TokKind::RBracket, "after array length");
    while (at(TokKind::LBracket) && at(TokKind::RBracket, 1)) {
      bump();
      bump();
      ++Elem.ArrayRank;
    }
    return Module.createExpr<NewArrayExpr>(std::move(Elem), Len, Loc);
  }
  case TokKind::Ident: {
    std::string Name = tok().Text;
    bump();
    if (at(TokKind::LParen)) {
      bump();
      std::vector<ExprAst *> Args;
      parseArgs(Args);
      return Module.createExpr<CallExprAst>(
          Module.createExpr<NameRefExpr>(std::move(Name), Loc),
          std::move(Args), Loc);
    }
    return Module.createExpr<NameRefExpr>(std::move(Name), Loc);
  }
  case TokKind::LParen: {
    bump();
    ExprAst *E = parseExpr();
    expect(TokKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diag.error(Loc, std::string("expected expression, found ") +
                        tokKindName(tok().Kind));
    // Leave statement-boundary tokens for the statement-level
    // recovery: consuming a ';' here would make the quiet
    // post-statement sync swallow the NEXT (well-formed) statement,
    // and consuming a '}' would unbalance the enclosing block.
    if (!at(TokKind::Semi) && !at(TokKind::RBrace) && !at(TokKind::Eof))
      bump();
    return errorExpr(Loc);
  }
}

bool tsl::parseModule(std::string_view Source, AstModule &Module,
                      DiagnosticEngine &Diag) {
  unsigned Before = Diag.errorCount();
  Parser P(Source, Module, Diag);
  P.run();
  return Diag.errorCount() == Before;
}
