//===-- Lower.h - AST -> IR lowering ----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis and lowering of a parsed ThinJ module into the
/// analyzable Program IR, plus the one-call compile pipeline used by
/// tools, tests, and workloads.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_LOWER_H
#define THINSLICER_LANG_LOWER_H

#include "ir/Program.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"
#include "support/Status.h"

#include <memory>
#include <string_view>

namespace tsl {

/// Knobs for the compile pipeline.
struct CompileOptions {
  /// Run SSA construction on every method body (required by all
  /// analyses; off only for frontend-focused tests).
  bool BuildSSA = true;
  /// Require a parameterless static entry point named "main".
  bool RequireMain = true;
  /// Gate the lowered IR through the Verifier before it reaches any
  /// analysis: violations become diagnostics and compileThinJ returns
  /// null, so malformed IR can never poison a pipeline.
  bool VerifyIR = true;
};

/// Type-checks and lowers \p Module. Returns null after reporting
/// diagnostics when the module has semantic errors. Pre-existing
/// errors in \p Diag (e.g. from a recovered parse) do not stop sema:
/// only errors this call adds do, so a partial AST still gets checked
/// and every diagnostic is reported in one compile.
std::unique_ptr<Program> lowerModule(const AstModule &Module,
                                     DiagnosticEngine &Diag,
                                     const CompileOptions &Options = {});

/// Full pipeline: parse + lower + (optionally) SSA + Verifier gate.
/// Returns null and reports diagnostics on any error; a file with both
/// syntax and semantic errors reports all of them (the recovering
/// parser hands sema the partial AST).
std::unique_ptr<Program> compileThinJ(std::string_view Source,
                                      DiagnosticEngine &Diag,
                                      const CompileOptions &Options = {});

/// Status-returning form of compileThinJ: the frontend boundary of
/// the structured error model. Failure carries the phase that
/// rejected the source (ParseError / SemaError / VerifyError) and a
/// one-line summary; the full located diagnostics are in \p Diag
/// either way.
Expected<std::unique_ptr<Program>>
compileThinJChecked(std::string_view Source, DiagnosticEngine &Diag,
                    const CompileOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_LANG_LOWER_H
