//===-- Lower.h - AST -> IR lowering ----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis and lowering of a parsed ThinJ module into the
/// analyzable Program IR, plus the one-call compile pipeline used by
/// tools, tests, and workloads.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_LOWER_H
#define THINSLICER_LANG_LOWER_H

#include "ir/Program.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace tsl {

/// Knobs for the compile pipeline.
struct CompileOptions {
  /// Run SSA construction on every method body (required by all
  /// analyses; off only for frontend-focused tests).
  bool BuildSSA = true;
  /// Require a parameterless static entry point named "main".
  bool RequireMain = true;
};

/// Type-checks and lowers \p Module. Returns null after reporting
/// diagnostics when the module has semantic errors.
std::unique_ptr<Program> lowerModule(const AstModule &Module,
                                     DiagnosticEngine &Diag,
                                     const CompileOptions &Options = {});

/// Full pipeline: parse + lower + (optionally) SSA. Returns null and
/// reports diagnostics on any error.
std::unique_ptr<Program> compileThinJ(std::string_view Source,
                                      DiagnosticEngine &Diag,
                                      const CompileOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_LANG_LOWER_H
