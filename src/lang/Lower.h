//===-- Lower.h - AST -> IR lowering ----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis and lowering of a parsed ThinJ module into the
/// analyzable Program IR, plus the one-call compile pipeline used by
/// tools, tests, and workloads.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_LOWER_H
#define THINSLICER_LANG_LOWER_H

#include "ir/Program.h"
#include "lang/Ast.h"
#include "lang/Incremental.h"
#include "support/Diagnostics.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tsl {

/// Knobs for the compile pipeline.
struct CompileOptions {
  /// Run SSA construction on every method body (required by all
  /// analyses; off only for frontend-focused tests).
  bool BuildSSA = true;
  /// Require a parameterless static entry point named "main".
  bool RequireMain = true;
  /// Gate the lowered IR through the Verifier before it reaches any
  /// analysis: violations become diagnostics and compileThinJ returns
  /// null, so malformed IR can never poison a pipeline.
  bool VerifyIR = true;
};

/// Type-checks and lowers \p Module. Returns null after reporting
/// diagnostics when the module has semantic errors. Pre-existing
/// errors in \p Diag (e.g. from a recovered parse) do not stop sema:
/// only errors this call adds do, so a partial AST still gets checked
/// and every diagnostic is reported in one compile.
std::unique_ptr<Program> lowerModule(const AstModule &Module,
                                     DiagnosticEngine &Diag,
                                     const CompileOptions &Options = {});

/// Full pipeline: parse + lower + (optionally) SSA + Verifier gate.
/// Returns null and reports diagnostics on any error; a file with both
/// syntax and semantic errors reports all of them (the recovering
/// parser hands sema the partial AST).
std::unique_ptr<Program> compileThinJ(std::string_view Source,
                                      DiagnosticEngine &Diag,
                                      const CompileOptions &Options = {});

/// Status-returning form of compileThinJ: the frontend boundary of
/// the structured error model. Failure carries the phase that
/// rejected the source (ParseError / SemaError / VerifyError) and a
/// one-line summary; the full located diagnostics are in \p Diag
/// either way.
Expected<std::unique_ptr<Program>>
compileThinJChecked(std::string_view Source, DiagnosticEngine &Diag,
                    const CompileOptions &Options = {});

//===----------------------------------------------------------------------===//
// Incremental recompilation
//===----------------------------------------------------------------------===//

/// Lowers \p Decl's body into \p M, which must belong to \p P and have
/// had its previous body detached with takeBody(). Re-runs SSA and the
/// per-method verifier per \p Options, and re-prepends the $clinit
/// call when \p M is the entry point. Returns false (with diagnostics
/// in \p Diag) on any semantic or verifier error; the method body is
/// then in an unusable state and the caller must fall back to a cold
/// compile of the whole unit.
bool relowerMethodBody(Program &P, Method &M, const MethodDeclAst &Decl,
                       DiagnosticEngine &Diag,
                       const CompileOptions &Options = {});

/// Outcome of applyIncrementalCompile().
struct IncrementalCompileResult {
  /// True when every dirty body was swapped in successfully; the
  /// program is now byte-equivalent to a cold compile of the new
  /// source. When false, Reason says why — and if RetiredBodies is
  /// non-empty the program was already mutated and must be discarded.
  bool Applied = false;
  std::string Reason;
  /// The relowered methods, in diff order.
  std::vector<Method *> DirtyMethods;
  /// Detached previous bodies, parallel to DirtyMethods. Keep these
  /// alive as long as any analysis artifact may hold the old Instr* /
  /// Local* pointers as (stale) map keys.
  std::vector<Method::DetachedBody> RetiredBodies;
};

/// Applies an eligible SourceDiff to \p P: reparses and relowers each
/// dirty function body in place and shifts retained instruction
/// source locations across line-count changes, so the program matches
/// a cold compile of the new source byte for byte.
IncrementalCompileResult
applyIncrementalCompile(Program &P, const SourceDiff &Diff,
                        const CompileOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_LANG_LOWER_H
