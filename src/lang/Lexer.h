//===-- Lexer.h - ThinJ lexer -----------------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for ThinJ. Supports line comments, decimal
/// integer literals, and double-quoted string literals with the usual
/// backslash escapes (newline, tab, backslash, quote).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_LEXER_H
#define THINSLICER_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace tsl {

/// Produces the token stream for one source buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diag)
      : Source(Source), Diag(Diag) {}

  /// Lexes and returns the next token. At end of input repeatedly
  /// returns an Eof token.
  Token next();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLoc here() const { return SourceLoc(Line, Col); }

  Token makeSimple(TokKind Kind, SourceLoc Loc) {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    return T;
  }

  Token lexIdentOrKeyword();
  Token lexNumber();
  Token lexString();

  std::string_view Source;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace tsl

#endif // THINSLICER_LANG_LEXER_H
