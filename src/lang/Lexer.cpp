//===-- Lexer.cpp - ThinJ lexer ---------------------------------------------==//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace tsl;

const char *tsl::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwExtends:
    return "'extends'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwDef:
    return "'def'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwThrow:
    return "'throw'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwThis:
    return "'this'";
  case TokKind::KwSuper:
    return "'super'";
  case TokKind::KwInstanceof:
    return "'instanceof'";
  case TokKind::KwPrint:
    return "'print'";
  case TokKind::KwReadLine:
    return "'readLine'";
  case TokKind::KwReadInt:
    return "'readInt'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwString:
    return "'string'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  }
  return "?";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
    } else if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
    } else {
      break;
    }
  }
}

Token Lexer::lexIdentOrKeyword() {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"class", TokKind::KwClass},
      {"extends", TokKind::KwExtends},
      {"var", TokKind::KwVar},
      {"def", TokKind::KwDef},
      {"static", TokKind::KwStatic},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},
      {"throw", TokKind::KwThrow},
      {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
      {"new", TokKind::KwNew},
      {"null", TokKind::KwNull},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
      {"this", TokKind::KwThis},
      {"super", TokKind::KwSuper},
      {"instanceof", TokKind::KwInstanceof},
      {"print", TokKind::KwPrint},
      {"readLine", TokKind::KwReadLine},
      {"readInt", TokKind::KwReadInt},
      {"int", TokKind::KwInt},
      {"bool", TokKind::KwBool},
      {"string", TokKind::KwString},
      {"void", TokKind::KwVoid},
  };

  Token T;
  T.Loc = here();
  size_t Start = Pos;
  while (Pos < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
          peek() == '$'))
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokKind::Ident;
    T.Text = std::string(Text);
  }
  return T;
}

Token Lexer::lexNumber() {
  Token T;
  T.Kind = TokKind::IntLit;
  T.Loc = here();
  int64_t Value = 0;
  while (Pos < Source.size() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');
  T.IntValue = Value;
  return T;
}

Token Lexer::lexString() {
  Token T;
  T.Kind = TokKind::StringLit;
  T.Loc = here();
  advance(); // Opening quote.
  std::string Text;
  while (true) {
    if (Pos >= Source.size() || peek() == '\n') {
      Diag.error(T.Loc, "unterminated string literal");
      T.Kind = TokKind::Error;
      return T;
    }
    char C = advance();
    if (C == '"')
      break;
    if (C == '\\') {
      char Esc = Pos < Source.size() ? advance() : '\0';
      switch (Esc) {
      case 'n':
        Text += '\n';
        break;
      case 't':
        Text += '\t';
        break;
      case '\\':
        Text += '\\';
        break;
      case '"':
        Text += '"';
        break;
      default:
        Diag.error(here(), "unknown escape sequence");
        break;
      }
    } else {
      Text += C;
    }
  }
  T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = here();
  if (Pos >= Source.size())
    return makeSimple(TokKind::Eof, Loc);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '"')
    return lexString();

  advance();
  switch (C) {
  case '{':
    return makeSimple(TokKind::LBrace, Loc);
  case '}':
    return makeSimple(TokKind::RBrace, Loc);
  case '(':
    return makeSimple(TokKind::LParen, Loc);
  case ')':
    return makeSimple(TokKind::RParen, Loc);
  case '[':
    return makeSimple(TokKind::LBracket, Loc);
  case ']':
    return makeSimple(TokKind::RBracket, Loc);
  case ';':
    return makeSimple(TokKind::Semi, Loc);
  case ':':
    return makeSimple(TokKind::Colon, Loc);
  case ',':
    return makeSimple(TokKind::Comma, Loc);
  case '.':
    return makeSimple(TokKind::Dot, Loc);
  case '+':
    return makeSimple(TokKind::Plus, Loc);
  case '-':
    return makeSimple(TokKind::Minus, Loc);
  case '*':
    return makeSimple(TokKind::Star, Loc);
  case '/':
    return makeSimple(TokKind::Slash, Loc);
  case '%':
    return makeSimple(TokKind::Percent, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return makeSimple(TokKind::EqEq, Loc);
    }
    return makeSimple(TokKind::Assign, Loc);
  case '!':
    if (peek() == '=') {
      advance();
      return makeSimple(TokKind::NotEq, Loc);
    }
    return makeSimple(TokKind::Bang, Loc);
  case '<':
    if (peek() == '=') {
      advance();
      return makeSimple(TokKind::Le, Loc);
    }
    return makeSimple(TokKind::Lt, Loc);
  case '>':
    if (peek() == '=') {
      advance();
      return makeSimple(TokKind::Ge, Loc);
    }
    return makeSimple(TokKind::Gt, Loc);
  case '&':
    if (peek() == '&') {
      advance();
      return makeSimple(TokKind::AmpAmp, Loc);
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return makeSimple(TokKind::PipePipe, Loc);
    }
    break;
  default:
    break;
  }
  Diag.error(Loc, std::string("unexpected character '") + C + "'");
  return makeSimple(TokKind::Error, Loc);
}
