//===-- Incremental.h - Function-granular source diffing --------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-level diffing of two ThinJ translation units at function
/// granularity, the front end of the incremental reanalysis layer
/// (DESIGN.md section 13). A unit is split into alternating *skeleton*
/// segments (class headers, field declarations, method signatures) and
/// *body* regions (the brace block of each `def`). An edit is eligible
/// for incremental recompilation when the skeleton token stream is
/// unchanged — same declarations, same signatures, same order — and
/// only body regions differ; each differing body is reported as a
/// dirty function together with a positioned source fragment that
/// reparses in isolation with source locations identical to a cold
/// parse of the full unit. Everything else (added/removed/renamed
/// functions, signature changes, class shape changes, lex errors)
/// makes the diff ineligible and the caller falls back to a cold
/// rebuild — fallback is always sound, eligibility is purely a
/// performance fast path.
///
/// Unchanged functions may still *shift lines* when an edit above them
/// grows or shrinks a body. The diff captures that as a piecewise
/// line-delta map over old-source lines; the caller patches retained
/// instruction locations through shiftForOldLine() so rendered slices
/// stay byte-identical to a cold rebuild of the new source.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_INCREMENTAL_H
#define THINSLICER_LANG_INCREMENTAL_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tsl {

struct SourceDiff;
class ScanCache;

/// Diffs \p OldSrc against \p NewSrc. Never fails: an undiffable pair
/// comes back with Eligible=false and a reason. With a \p Cache the
/// previous call's token scan is reused when OldSrc matches the cached
/// source, and the new source is lexed *incrementally*: ThinJ lexing is
/// line-independent (strings cannot span lines, comments run to end of
/// line), so only the lines between the common prefix and common suffix
/// are re-lexed and the surrounding tokens are stitched in with a
/// uniform line shift. The cache is updated to the new source on every
/// eligible diff.
SourceDiff diffThinJSource(std::string_view OldSrc, std::string_view NewSrc,
                           ScanCache *Cache = nullptr);

/// Opaque memo of the most recent scanned source, keyed by content.
/// One cache serves one edit stream (e.g. one AnalysisSession); it is
/// purely an accelerator — diffThinJSource verifies the key and falls
/// back to a full scan on any mismatch.
class ScanCache {
public:
  ScanCache();
  ~ScanCache();
  ScanCache(const ScanCache &) = delete;
  ScanCache &operator=(const ScanCache &) = delete;

  struct Impl;

private:
  friend SourceDiff tsl::diffThinJSource(std::string_view, std::string_view,
                                         ScanCache *);
  std::unique_ptr<Impl> P;
};

/// Result of diffing two ThinJ sources at function granularity.
struct SourceDiff {
  /// One function whose body changed.
  struct DirtyFn {
    std::string Name;      ///< Method name.
    std::string ClassName; ///< Enclosing class; empty for top-level.
    /// Position of the `def` keyword in the NEW source.
    unsigned DeclLine = 0, DeclCol = 0;
    /// The decl + body text from the NEW source, prefixed with
    /// newline/space padding so a parse of just this fragment yields
    /// the same source locations as a cold parse of the full unit.
    std::string Fragment;
    /// Old-source line span of the body region (first line of `def`
    /// through the body's closing brace), used by tests/telemetry.
    unsigned OldBeginLine = 0, OldEndLine = 0;
  };

  bool Eligible = false;
  std::string Reason; ///< Why the diff is ineligible (empty if eligible).
  std::vector<DirtyFn> Dirty;
  /// Total number of function bodies in the unit (reuse telemetry).
  unsigned TotalFunctions = 0;

  /// Piecewise cumulative line shift: a retained instruction whose old
  /// location is line \p OldLine now lives at OldLine +
  /// shiftForOldLine(OldLine). Returns 0 for line 0 (synthesized
  /// locations) and for lines before the first edit.
  long shiftForOldLine(unsigned OldLine) const;

  /// Internal form of the shift map: sorted (OldLineThreshold,
  /// CumulativeDelta) steps — the delta applies to old lines strictly
  /// greater than the threshold.
  std::vector<std::pair<unsigned, long>> Steps;
};

} // namespace tsl

#endif // THINSLICER_LANG_INCREMENTAL_H
