//===-- Ast.h - ThinJ abstract syntax ----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for ThinJ. Nodes are arena-allocated in an
/// AstModule and freely reference each other with raw pointers. Name
/// and type resolution happens during lowering (Lower.cpp), not here.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_AST_H
#define THINSLICER_LANG_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace tsl {

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

/// A syntactic type: a named base (primitive or class name) plus array
/// rank, e.g. "Vector", "int[][]".
struct TypeExprAst {
  enum class Base { Int, Bool, String, Void, Named };
  Base BaseKind = Base::Named;
  std::string Name; ///< For Named bases.
  unsigned ArrayRank = 0;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  BoolLit,
  StrLit,
  NullLit,
  This,
  NameRef,
  Unary,
  Binary,
  Logical,
  FieldAccess,
  Index,
  Call,
  NewObject,
  NewArray,
  Cast,
  InstanceOf,
  Read,
};

/// Base class of expression nodes.
struct ExprAst {
  explicit ExprAst(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~ExprAst() = default;

  ExprKind kind() const { return Kind; }

  ExprKind Kind;
  SourceLoc Loc;
  /// True for the placeholder the parser substitutes when recovering
  /// from a malformed expression. Lowering treats it as an
  /// already-diagnosed error instead of a real 'null', so one parse
  /// error does not cascade into spurious type diagnostics.
  bool Recovered = false;
};

struct IntLitExpr : ExprAst {
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : ExprAst(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::IntLit; }
};

struct BoolLitExpr : ExprAst {
  BoolLitExpr(bool Value, SourceLoc Loc)
      : ExprAst(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::BoolLit;
  }
};

struct StrLitExpr : ExprAst {
  StrLitExpr(std::string Value, SourceLoc Loc)
      : ExprAst(ExprKind::StrLit, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::StrLit; }
};

struct NullLitExpr : ExprAst {
  explicit NullLitExpr(SourceLoc Loc) : ExprAst(ExprKind::NullLit, Loc) {}
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::NullLit;
  }
};

struct ThisExpr : ExprAst {
  explicit ThisExpr(SourceLoc Loc) : ExprAst(ExprKind::This, Loc) {}
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::This; }
};

/// A bare name: a local, an implicit-this field, or a class name
/// (resolved during lowering).
struct NameRefExpr : ExprAst {
  NameRefExpr(std::string Name, SourceLoc Loc)
      : ExprAst(ExprKind::NameRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::NameRef;
  }
};

struct UnaryExpr : ExprAst {
  enum class Op { Neg, Not };
  UnaryExpr(Op O, ExprAst *Sub, SourceLoc Loc)
      : ExprAst(ExprKind::Unary, Loc), O(O), Sub(Sub) {}
  Op O;
  ExprAst *Sub;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Unary; }
};

struct BinaryExpr : ExprAst {
  enum class Op { Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne };
  BinaryExpr(Op O, ExprAst *LHS, ExprAst *RHS, SourceLoc Loc)
      : ExprAst(ExprKind::Binary, Loc), O(O), LHS(LHS), RHS(RHS) {}
  Op O;
  ExprAst *LHS;
  ExprAst *RHS;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Binary; }
};

/// Short-circuit && / ||.
struct LogicalExpr : ExprAst {
  enum class Op { And, Or };
  LogicalExpr(Op O, ExprAst *LHS, ExprAst *RHS, SourceLoc Loc)
      : ExprAst(ExprKind::Logical, Loc), O(O), LHS(LHS), RHS(RHS) {}
  Op O;
  ExprAst *LHS;
  ExprAst *RHS;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::Logical;
  }
};

/// base.name — a field read, a static field read (base is a class
/// name), or the callee part of a method call.
struct FieldAccessExpr : ExprAst {
  FieldAccessExpr(ExprAst *Base, std::string Name, SourceLoc Loc)
      : ExprAst(ExprKind::FieldAccess, Loc), Base(Base),
        Name(std::move(Name)) {}
  ExprAst *Base;
  std::string Name;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::FieldAccess;
  }
};

/// base[index] — array element access, or array.length spelled as a
/// FieldAccess with name "length".
struct IndexExpr : ExprAst {
  IndexExpr(ExprAst *Base, ExprAst *Index, SourceLoc Loc)
      : ExprAst(ExprKind::Index, Loc), Base(Base), Index(Index) {}
  ExprAst *Base;
  ExprAst *Index;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Index; }
};

/// callee(args). Callee is a NameRef (free function, implicit-this
/// method, or builtin) or a FieldAccess (method call / static call).
struct CallExprAst : ExprAst {
  CallExprAst(ExprAst *Callee, std::vector<ExprAst *> Args, SourceLoc Loc)
      : ExprAst(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  ExprAst *Callee;
  std::vector<ExprAst *> Args;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Call; }
};

struct NewObjectExpr : ExprAst {
  NewObjectExpr(std::string ClassName, std::vector<ExprAst *> Args,
                SourceLoc Loc)
      : ExprAst(ExprKind::NewObject, Loc), ClassName(std::move(ClassName)),
        Args(std::move(Args)) {}
  std::string ClassName;
  std::vector<ExprAst *> Args;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::NewObject;
  }
};

struct NewArrayExpr : ExprAst {
  NewArrayExpr(TypeExprAst ElemType, ExprAst *Length, SourceLoc Loc)
      : ExprAst(ExprKind::NewArray, Loc), ElemType(std::move(ElemType)),
        Length(Length) {}
  TypeExprAst ElemType;
  ExprAst *Length;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::NewArray;
  }
};

struct CastExpr : ExprAst {
  CastExpr(TypeExprAst Target, ExprAst *Sub, SourceLoc Loc)
      : ExprAst(ExprKind::Cast, Loc), Target(std::move(Target)), Sub(Sub) {}
  TypeExprAst Target;
  ExprAst *Sub;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Cast; }
};

struct InstanceOfExpr : ExprAst {
  InstanceOfExpr(ExprAst *Sub, TypeExprAst Target, SourceLoc Loc)
      : ExprAst(ExprKind::InstanceOf, Loc), Sub(Sub),
        Target(std::move(Target)) {}
  ExprAst *Sub;
  TypeExprAst Target;
  static bool classof(const ExprAst *E) {
    return E->Kind == ExprKind::InstanceOf;
  }
};

/// readLine() or readInt().
struct ReadExpr : ExprAst {
  ReadExpr(bool IsLine, SourceLoc Loc)
      : ExprAst(ExprKind::Read, Loc), IsLine(IsLine) {}
  bool IsLine;
  static bool classof(const ExprAst *E) { return E->Kind == ExprKind::Read; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  VarDecl,
  Assign,
  ExprStmt,
  If,
  While,
  Return,
  Throw,
  Break,
  Continue,
  Print,
  SuperCall,
};

/// Base class of statement nodes.
struct StmtAst {
  explicit StmtAst(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~StmtAst() = default;

  StmtKind kind() const { return Kind; }

  StmtKind Kind;
  SourceLoc Loc;
};

struct BlockStmt : StmtAst {
  BlockStmt(std::vector<StmtAst *> Stmts, SourceLoc Loc)
      : StmtAst(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
  std::vector<StmtAst *> Stmts;
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Block; }
};

/// var name [: type] = init;
struct VarDeclStmt : StmtAst {
  VarDeclStmt(std::string Name, bool HasType, TypeExprAst Type, ExprAst *Init,
              SourceLoc Loc)
      : StmtAst(StmtKind::VarDecl, Loc), Name(std::move(Name)),
        HasType(HasType), Type(std::move(Type)), Init(Init) {}
  std::string Name;
  bool HasType;
  TypeExprAst Type;
  ExprAst *Init;
  static bool classof(const StmtAst *S) {
    return S->Kind == StmtKind::VarDecl;
  }
};

/// lhs = rhs; where lhs is a NameRef, FieldAccess, or Index expression.
struct AssignStmt : StmtAst {
  AssignStmt(ExprAst *LHS, ExprAst *RHS, SourceLoc Loc)
      : StmtAst(StmtKind::Assign, Loc), LHS(LHS), RHS(RHS) {}
  ExprAst *LHS;
  ExprAst *RHS;
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Assign; }
};

struct ExprStmt : StmtAst {
  ExprStmt(ExprAst *E, SourceLoc Loc)
      : StmtAst(StmtKind::ExprStmt, Loc), E(E) {}
  ExprAst *E;
  static bool classof(const StmtAst *S) {
    return S->Kind == StmtKind::ExprStmt;
  }
};

struct IfStmt : StmtAst {
  IfStmt(ExprAst *Cond, StmtAst *Then, StmtAst *Else, SourceLoc Loc)
      : StmtAst(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  ExprAst *Cond;
  StmtAst *Then;
  StmtAst *Else; ///< May be null.
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::If; }
};

struct WhileStmt : StmtAst {
  WhileStmt(ExprAst *Cond, StmtAst *Body, SourceLoc Loc)
      : StmtAst(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  ExprAst *Cond;
  StmtAst *Body;
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::While; }
};

struct ReturnStmt : StmtAst {
  ReturnStmt(ExprAst *Value, SourceLoc Loc)
      : StmtAst(StmtKind::Return, Loc), Value(Value) {}
  ExprAst *Value; ///< May be null.
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Return; }
};

struct ThrowStmt : StmtAst {
  ThrowStmt(ExprAst *Value, SourceLoc Loc)
      : StmtAst(StmtKind::Throw, Loc), Value(Value) {}
  ExprAst *Value;
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Throw; }
};

struct BreakStmt : StmtAst {
  explicit BreakStmt(SourceLoc Loc) : StmtAst(StmtKind::Break, Loc) {}
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Break; }
};

struct ContinueStmt : StmtAst {
  explicit ContinueStmt(SourceLoc Loc) : StmtAst(StmtKind::Continue, Loc) {}
  static bool classof(const StmtAst *S) {
    return S->Kind == StmtKind::Continue;
  }
};

struct PrintStmt : StmtAst {
  PrintStmt(ExprAst *Value, SourceLoc Loc)
      : StmtAst(StmtKind::Print, Loc), Value(Value) {}
  ExprAst *Value;
  static bool classof(const StmtAst *S) { return S->Kind == StmtKind::Print; }
};

/// super(args); — superclass constructor call, valid only in `init`.
struct SuperCallStmt : StmtAst {
  SuperCallStmt(std::vector<ExprAst *> Args, SourceLoc Loc)
      : StmtAst(StmtKind::SuperCall, Loc), Args(std::move(Args)) {}
  std::vector<ExprAst *> Args;
  static bool classof(const StmtAst *S) {
    return S->Kind == StmtKind::SuperCall;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamAst {
  std::string Name;
  TypeExprAst Type;
  SourceLoc Loc;
};

struct MethodDeclAst {
  std::string Name;
  bool IsStatic = false;
  std::vector<ParamAst> Params;
  bool HasReturnType = false;
  TypeExprAst ReturnType; ///< Valid when HasReturnType; else void.
  BlockStmt *Body = nullptr;
  SourceLoc Loc;
};

struct FieldDeclAst {
  std::string Name;
  TypeExprAst Type;
  bool IsStatic = false;
  ExprAst *Init = nullptr; ///< Static fields only; may be null.
  SourceLoc Loc;
};

struct ClassDeclAst {
  std::string Name;
  std::string SuperName; ///< Empty when extending Object implicitly.
  std::vector<FieldDeclAst> Fields;
  std::vector<MethodDeclAst> Methods;
  SourceLoc Loc;
};

/// A parsed compilation unit; owns every AST node.
class AstModule {
public:
  template <typename T, typename... ArgTs> T *createExpr(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Ptr = Node.get();
    Exprs.push_back(std::move(Node));
    return Ptr;
  }

  template <typename T, typename... ArgTs> T *createStmt(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Ptr = Node.get();
    Stmts.push_back(std::move(Node));
    return Ptr;
  }

  std::vector<ClassDeclAst> Classes;
  std::vector<MethodDeclAst> Functions; ///< Top-level (implicitly static).

private:
  std::vector<std::unique_ptr<ExprAst>> Exprs;
  std::vector<std::unique_ptr<StmtAst>> Stmts;
};

} // namespace tsl

#endif // THINSLICER_LANG_AST_H
