//===-- Parser.h - ThinJ parser ---------------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing an AstModule. Errors are reported
/// to the DiagnosticEngine; the parser recovers at declaration and
/// statement boundaries so multiple errors can be reported.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_LANG_PARSER_H
#define THINSLICER_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

namespace tsl {

/// Parses one ThinJ source buffer into \p Module. Returns false when
/// any syntax error was reported.
bool parseModule(std::string_view Source, AstModule &Module,
                 DiagnosticEngine &Diag);

} // namespace tsl

#endif // THINSLICER_LANG_PARSER_H
