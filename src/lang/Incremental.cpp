//===-- Incremental.cpp - Function-granular source diffing ----------------==//

#include "lang/Incremental.h"

#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

using namespace tsl;

namespace {

/// A maximal run of tokens that is either one function body (the brace
/// block of a `def`, including both braces) or the skeleton text
/// between two bodies.
struct Region {
  bool IsBody = false;
  size_t Begin = 0, End = 0; ///< Token index range [Begin, End).
  // Body regions only:
  size_t DefIdx = 0;     ///< Index of the `def` token.
  std::string Name;      ///< Function name.
  std::string ClassName; ///< Enclosing class, empty for top-level.
};

struct ScanResult {
  bool Ok = false;
  std::string Reason;
  std::vector<Token> Toks;
  std::vector<Region> Regions;
};

/// Tokenizes \p Src into \p Toks (Eof included). Returns false on lex
/// errors.
bool lexAll(std::string_view Src, std::vector<Token> &Toks) {
  DiagnosticEngine Diag;
  Lexer Lex(Src, Diag);
  for (;;) {
    Token T = Lex.next();
    bool AtEof = T.is(TokKind::Eof);
    Toks.push_back(std::move(T));
    if (AtEof)
      break;
  }
  return !Diag.hasErrors();
}

/// Splits an already-lexed stream into skeleton and body regions.
/// Tracks the enclosing class of each `def` so the caller can name
/// dirty methods. Bodies are skipped wholesale (statement braces never
/// open a new declaration scope in ThinJ). Sets R.Ok.
void buildRegions(ScanResult &R) {
  const std::vector<Token> &Toks = R.Toks;
  size_t N = Toks.size();
  std::string PendingClass, CurrentClass, PendingFn;
  int Depth = 0, ClassDepth = -1;
  bool ExpectBody = false;
  size_t DefIdx = 0, SkelBegin = 0;
  for (size_t I = 0; I < N; ++I) {
    const Token &T = Toks[I];
    switch (T.Kind) {
    case TokKind::KwClass:
      if (I + 1 < N && Toks[I + 1].is(TokKind::Ident))
        PendingClass = Toks[I + 1].Text;
      break;
    case TokKind::KwDef:
      if (ExpectBody) {
        R.Reason = "malformed declaration";
        return;
      }
      ExpectBody = true;
      DefIdx = I;
      PendingFn = I + 1 < N && Toks[I + 1].is(TokKind::Ident)
                      ? Toks[I + 1].Text
                      : std::string();
      break;
    case TokKind::LBrace: {
      if (!ExpectBody) {
        ++Depth;
        if (!PendingClass.empty()) {
          CurrentClass = std::move(PendingClass);
          PendingClass.clear();
          ClassDepth = Depth;
        }
        break;
      }
      // Body block: find the matching close brace.
      int D = 0;
      size_t J = I;
      for (; J < N; ++J) {
        if (Toks[J].is(TokKind::LBrace))
          ++D;
        else if (Toks[J].is(TokKind::RBrace) && --D == 0)
          break;
        else if (Toks[J].is(TokKind::Eof))
          break;
      }
      if (J >= N || !Toks[J].is(TokKind::RBrace)) {
        R.Reason = "unbalanced braces";
        return;
      }
      if (SkelBegin < I)
        R.Regions.push_back({false, SkelBegin, I, 0, {}, {}});
      Region Body;
      Body.IsBody = true;
      Body.Begin = I;
      Body.End = J + 1;
      Body.DefIdx = DefIdx;
      Body.Name = PendingFn;
      Body.ClassName = CurrentClass;
      R.Regions.push_back(std::move(Body));
      I = J;
      SkelBegin = J + 1;
      ExpectBody = false;
      break;
    }
    case TokKind::RBrace:
      if (Depth == ClassDepth) {
        CurrentClass.clear();
        ClassDepth = -1;
      }
      --Depth;
      break;
    default:
      break;
    }
  }
  if (SkelBegin < N)
    R.Regions.push_back({false, SkelBegin, N, 0, {}, {}});
  R.Ok = true;
}

/// Full scan: lex everything, then split into regions.
ScanResult scanUnit(std::string_view Src) {
  ScanResult R;
  if (!lexAll(Src, R.Toks)) {
    R.Reason = "lex error";
    return R;
  }
  buildRegions(R);
  return R;
}

/// Views of each source line, excluding the trailing newline. A final
/// line without '\n' is included; a trailing '\n' does not create an
/// empty extra line.
std::vector<std::string_view> splitLines(std::string_view Src) {
  std::vector<std::string_view> Lines;
  size_t Begin = 0;
  for (size_t I = 0; I < Src.size(); ++I)
    if (Src[I] == '\n') {
      Lines.push_back(Src.substr(Begin, I - Begin));
      Begin = I + 1;
    }
  if (Begin < Src.size())
    Lines.push_back(Src.substr(Begin));
  return Lines;
}

/// Incremental scan of \p NewSrc against an already-scanned \p OldSrc.
/// ThinJ lexing is line-independent — no token or comment spans a
/// newline — so a token stream can be assembled per line: lines in the
/// common prefix and common suffix of the two sources reuse the old
/// tokens (suffix tokens shifted by the net line delta) and only the
/// middle window is actually lexed. The result is bit-identical to a
/// full scanUnit(NewSrc) (verified in debug builds).
ScanResult scanStitched(std::string_view NewSrc, std::string_view OldSrc,
                        const ScanResult &OldScan) {
  std::vector<std::string_view> OldLines = splitLines(OldSrc);
  std::vector<std::string_view> NewLines = splitLines(NewSrc);
  const size_t MinLines = std::min(OldLines.size(), NewLines.size());
  size_t LP = 0;
  while (LP < MinLines && OldLines[LP] == NewLines[LP])
    ++LP;
  size_t LS = 0;
  while (LS < MinLines - LP &&
         OldLines[OldLines.size() - 1 - LS] == NewLines[NewLines.size() - 1 - LS])
    ++LS;
  const long Delta =
      static_cast<long>(NewLines.size()) - static_cast<long>(OldLines.size());

  ScanResult R;
  R.Toks.reserve(OldScan.Toks.size() + 16);

  // Prefix: lines 1..LP are byte-identical, so their old tokens are the
  // new tokens.
  const std::vector<Token> &OT = OldScan.Toks;
  size_t I = 0;
  for (; I < OT.size() && !OT[I].is(TokKind::Eof) && OT[I].Loc.Line <= LP; ++I)
    R.Toks.push_back(OT[I]);

  // Middle: the only window that needs a real lex. Lines are 1-based in
  // the standalone buffer, so shift by LP afterwards.
  size_t MidBegin = 0;
  for (size_t L = 0; L < LP; ++L)
    MidBegin += NewLines[L].size() + 1;
  size_t MidEnd = NewSrc.size();
  if (LS) {
    MidEnd = 0;
    for (size_t L = 0; L < NewLines.size() - LS; ++L)
      MidEnd += NewLines[L].size() + 1;
  }
  if (MidEnd > MidBegin) {
    DiagnosticEngine Diag;
    Lexer Lex(NewSrc.substr(MidBegin, MidEnd - MidBegin), Diag);
    for (;;) {
      Token T = Lex.next();
      if (T.is(TokKind::Eof))
        break;
      T.Loc.Line += static_cast<uint32_t>(LP);
      R.Toks.push_back(std::move(T));
    }
    if (Diag.hasErrors()) {
      R.Reason = "lex error";
      return R;
    }
  }

  // Suffix: bottom-aligned identical lines; same tokens at a uniform
  // line shift.
  const size_t OldSuffixFirst = OldLines.size() - LS + 1;
  for (size_t K = I; K < OT.size() && !OT[K].is(TokKind::Eof); ++K) {
    if (OT[K].Loc.Line < OldSuffixFirst)
      continue;
    Token T = OT[K];
    T.Loc.Line = static_cast<uint32_t>(static_cast<long>(T.Loc.Line) + Delta);
    R.Toks.push_back(std::move(T));
  }

  // Eof carries the end-of-buffer location: line = newline count + 1,
  // column = bytes after the last newline + 1 (see Lexer::advance).
  Token Eof;
  Eof.Kind = TokKind::Eof;
  size_t LastNl = NewSrc.rfind('\n');
  uint32_t NlCount = 0;
  for (char C : NewSrc)
    NlCount += C == '\n';
  Eof.Loc.Line = NlCount + 1;
  Eof.Loc.Col = static_cast<uint32_t>(
      (LastNl == std::string_view::npos ? NewSrc.size()
                                        : NewSrc.size() - LastNl - 1) +
      1);
  R.Toks.push_back(std::move(Eof));

#ifndef NDEBUG
  // The stitch must be indistinguishable from a full lex.
  {
    std::vector<Token> Full;
    bool Ok = lexAll(NewSrc, Full);
    assert(Ok && "stitched lex succeeded where full lex fails");
    assert(Full.size() == R.Toks.size() && "stitched lex token count differs");
    for (size_t T = 0; T < Full.size(); ++T) {
      const Token &A = Full[T], &B = R.Toks[T];
      assert(A.Kind == B.Kind && A.Text == B.Text &&
             A.IntValue == B.IntValue && A.Loc.Line == B.Loc.Line &&
             A.Loc.Col == B.Loc.Col && "stitched lex token differs");
    }
    (void)Ok;
  }
#endif

  buildRegions(R);
  return R;
}

/// Token equality modulo a uniform line shift: same kind, same payload,
/// same column, and the new line exceeds the old by exactly \p Delta.
bool tokenMatches(const Token &Old, const Token &New, long Delta) {
  return Old.Kind == New.Kind && Old.Text == New.Text &&
         Old.IntValue == New.IntValue && Old.Loc.Col == New.Loc.Col &&
         static_cast<long>(New.Loc.Line) - static_cast<long>(Old.Loc.Line) ==
             Delta;
}

/// Byte offsets of the first character of each line.
std::vector<size_t> lineStarts(std::string_view Src) {
  std::vector<size_t> Starts = {0};
  for (size_t I = 0; I < Src.size(); ++I)
    if (Src[I] == '\n')
      Starts.push_back(I + 1);
  return Starts;
}

size_t byteOffset(const std::vector<size_t> &Starts, SourceLoc Loc) {
  if (Loc.Line == 0 || Loc.Line > Starts.size())
    return 0;
  return Starts[Loc.Line - 1] + (Loc.Col > 0 ? Loc.Col - 1 : 0);
}

} // namespace

/// Memo of the last scanned unit: the source bytes and their scan.
/// Guarded by content equality, so a stale cache can only cost time,
/// never correctness.
struct ScanCache::Impl {
  bool Valid = false;
  std::string Src;
  ScanResult Scan;
};

ScanCache::ScanCache() : P(std::make_unique<Impl>()) {}
ScanCache::~ScanCache() = default;

long SourceDiff::shiftForOldLine(unsigned OldLine) const {
  if (OldLine == 0)
    return 0;
  long Delta = 0;
  for (const auto &[Threshold, Cum] : Steps) {
    if (OldLine <= Threshold)
      break;
    Delta = Cum;
  }
  return Delta;
}

SourceDiff tsl::diffThinJSource(std::string_view OldSrc,
                                std::string_view NewSrc, ScanCache *Cache) {
  SourceDiff D;
  auto Fail = [&](const char *Why) {
    D.Eligible = false;
    D.Reason = Why;
    return D;
  };
  // Column→byte-offset mapping assumes one byte per column.
  if (OldSrc.find('\t') != std::string_view::npos ||
      NewSrc.find('\t') != std::string_view::npos)
    return Fail("tab characters in source");

  // Old side: reuse the cached scan when it is for these exact bytes.
  ScanResult OldLocal;
  const bool OldCached =
      Cache && Cache->P->Valid && Cache->P->Src == OldSrc;
  if (!OldCached) {
    OldLocal = scanUnit(OldSrc);
    if (!OldLocal.Ok)
      return Fail(OldLocal.Reason.c_str());
  }
  const ScanResult &Old = OldCached ? Cache->P->Scan : OldLocal;
  // New side: stitch around the changed lines instead of re-lexing the
  // whole unit.
  ScanResult New = scanStitched(NewSrc, OldSrc, Old);
  if (!New.Ok)
    return Fail(New.Reason.c_str());

  if (Old.Regions.size() != New.Regions.size())
    return Fail("declaration structure changed");

  std::vector<size_t> NewStarts = lineStarts(NewSrc);
  long Cum = 0;
  for (size_t R = 0; R < Old.Regions.size(); ++R) {
    const Region &OR = Old.Regions[R];
    const Region &NR = New.Regions[R];
    if (OR.IsBody != NR.IsBody)
      return Fail("declaration structure changed");

    size_t OLen = OR.End - OR.Begin, NLen = NR.End - NR.Begin;
    if (!OR.IsBody) {
      // Skeleton: every token must survive the edit verbatim, shifted
      // by the cumulative line delta of the dirty bodies above it.
      if (OLen != NLen)
        return Fail("declaration skeleton changed");
      for (size_t I = 0; I < OLen; ++I)
        if (!tokenMatches(Old.Toks[OR.Begin + I], New.Toks[NR.Begin + I], Cum))
          return Fail("declaration skeleton changed");
      continue;
    }

    ++D.TotalFunctions;
    // Identity is derived from the (already validated) skeleton, so
    // the k-th old body and the k-th new body name the same function.
    bool Unchanged = OLen == NLen;
    for (size_t I = 0; Unchanged && I < OLen; ++I)
      Unchanged =
          tokenMatches(Old.Toks[OR.Begin + I], New.Toks[NR.Begin + I], Cum);
    if (Unchanged)
      continue;

    const Token &OldClose = Old.Toks[OR.End - 1];
    const Token &NewClose = New.Toks[NR.End - 1];
    long NewCum = static_cast<long>(NewClose.Loc.Line) -
                  static_cast<long>(OldClose.Loc.Line);
    if (NewCum != Cum) {
      // The edit changed the body's line count. Retained-location
      // patching is per-line, so refuse layouts where another token
      // shares the closing brace's line (one-decl-per-line is the
      // overwhelmingly common case; falling back is sound).
      if (OR.End < Old.Toks.size() &&
          Old.Toks[OR.End].Loc.Line == OldClose.Loc.Line)
        return Fail("same-line declaration after edited body");
      if (NR.End < New.Toks.size() &&
          New.Toks[NR.End].Loc.Line == NewClose.Loc.Line)
        return Fail("same-line declaration after edited body");
    }

    SourceDiff::DirtyFn Fn;
    Fn.Name = NR.Name;
    Fn.ClassName = NR.ClassName;
    const Token &Def = New.Toks[NR.DefIdx];
    Fn.DeclLine = Def.Loc.Line;
    Fn.DeclCol = Def.Loc.Col;
    Fn.OldBeginLine = Old.Toks[OR.DefIdx].Loc.Line;
    Fn.OldEndLine = OldClose.Loc.Line;
    // Fragment: the decl header and body exactly as they appear in the
    // new source, padded so a standalone parse reproduces the cold
    // parse's source locations byte for byte.
    size_t From = byteOffset(NewStarts, Def.Loc);
    size_t To = byteOffset(NewStarts, NewClose.Loc) + 1;
    Fn.Fragment.assign(Fn.DeclLine > 0 ? Fn.DeclLine - 1 : 0, '\n');
    Fn.Fragment.append(Fn.DeclCol > 0 ? Fn.DeclCol - 1 : 0, ' ');
    Fn.Fragment.append(NewSrc.substr(From, To - From));
    D.Dirty.push_back(std::move(Fn));

    Cum = NewCum;
    D.Steps.emplace_back(OldClose.Loc.Line, Cum);
  }

  // Memoize the new scan: the next edit in this stream will diff
  // against exactly these bytes. (Ineligible diffs fall back to a cold
  // rebuild, after which the session's source no longer matches the
  // cache — the guard above catches that and rescans.)
  if (Cache) {
    Cache->P->Src.assign(NewSrc.data(), NewSrc.size());
    Cache->P->Scan = std::move(New);
    Cache->P->Valid = true;
  }

  D.Eligible = true;
  return D;
}
