//===-- Report.h - Provenance-annotated slice narration ---------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a slice into the explanation a user reads: statements in
/// breadth-first distance order from the seed, each annotated with how
/// it was reached (copied value, heap flow, parameter passing, ...).
/// This renders the paper's Figure 1 walkthrough ("Line 23 copies the
/// value returned by Vector.get() <- ... <- the buggy statement")
/// mechanically for any seed.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_REPORT_H
#define THINSLICER_SLICER_REPORT_H

#include "slicer/Slicer.h"

#include <string>
#include <vector>

namespace tsl {

/// One narration step.
struct NarrationStep {
  unsigned Node;          ///< SDG node reached.
  int ViaNode = -1;       ///< The already-reached dependent, -1 for seed.
  SDGEdgeKind ViaKind = SDGEdgeKind::Flow;
  unsigned Depth = 0;     ///< BFS distance from the seed.
};

/// The BFS exploration of a slice with provenance per step.
class SliceNarration {
public:
  SliceNarration(const SDG &G, std::vector<NarrationStep> Steps)
      : G(G), Steps(std::move(Steps)) {}

  const std::vector<NarrationStep> &steps() const { return Steps; }

  /// Human-readable rendering: one line per source statement, indented
  /// by distance, with the reason it entered the slice. Lines above
  /// \p LineOffset are shown relative to it (tools prepend the
  /// container runtime; users think in their own file's lines), lines
  /// within the prefix are tagged [runtime].
  std::string str(unsigned LineOffset = 0) const;

private:
  const SDG &G;
  std::vector<NarrationStep> Steps;
};

/// Explores the Mode-slice of \p Seed breadth-first and records how
/// each statement was reached.
SliceNarration narrateSlice(const SDG &G, const Instr *Seed, SliceMode Mode);

//===----------------------------------------------------------------------===//
// Shared query-report rendering. The thinslice CLI, its REPL, and the
// thinsliced service all answer "slice from line N" with the same
// text; keeping the renderer here (rather than three printf copies)
// is what makes a remote answer byte-identical to the in-process one.
//===----------------------------------------------------------------------===//

/// The statement carrying source line \p Line (absolute, i.e. after
/// any runtime-library prefix), or null. When several statements share
/// the line, the last one in program order is returned — the seed
/// convention every tool entry point uses.
const Instr *seedAtLine(const Program &P, unsigned Line);

/// The standard report of one backward slice: a "<What> from line
/// <UserLine>: S statements, L source lines" header plus one indented
/// "Class.method:line" entry per source line, lines at or below
/// \p LineOffset tagged [runtime] and the rest shown relative to it.
std::string renderSliceReport(const SliceResult &Slice,
                              const std::string &What, unsigned UserLine,
                              unsigned LineOffset);

/// The display name of a slice flavor: "context-sensitive slice" when
/// \p ContextSensitive, otherwise "thin slice" / "traditional slice".
const char *sliceKindName(SliceMode Mode, bool ContextSensitive);

/// "no statement at line N" with the nearest user-file statement
/// lines suggested when any exist (no trailing newline, no "error: "
/// prefix — callers decide the severity framing).
std::string noStatementMessage(const Program &P, unsigned UserLine,
                               unsigned LineOffset);

} // namespace tsl

#endif // THINSLICER_SLICER_REPORT_H
