//===-- Report.cpp - Provenance-annotated slice narration -------------------==//

#include "slicer/Report.h"

#include "ir/Program.h"
#include "support/BitSet.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace tsl;

namespace {

const char *reasonFor(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "produces the value used by";
  case SDGEdgeKind::BaseFlow:
    return "produces a base pointer/index of";
  case SDGEdgeKind::Control:
    return "controls whether it executes";
  case SDGEdgeKind::ParamIn:
    return "passes an argument into";
  case SDGEdgeKind::ParamOut:
    return "returns the value to";
  case SDGEdgeKind::Summary:
    return "summarizes a call used by";
  }
  return "?";
}

} // namespace

SliceNarration tsl::narrateSlice(const SDG &G, const Instr *Seed,
                                 SliceMode Mode) {
  std::vector<NarrationStep> Steps;
  BitSet Visited(G.numNodes());
  std::deque<NarrationStep> Queue;
  for (unsigned Node : G.nodesFor(Seed))
    if (Visited.insert(Node))
      Queue.push_back({Node, -1, SDGEdgeKind::Flow, 0});

  while (!Queue.empty()) {
    NarrationStep Step = Queue.front();
    Queue.pop_front();
    Steps.push_back(Step);
    for (unsigned EdgeId : G.inEdges(Step.Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (!sliceFollowsEdge(Mode, E.K))
        continue;
      if (Visited.insert(E.From))
        Queue.push_back({E.From, static_cast<int>(Step.Node), E.K,
                         Step.Depth + 1});
    }
  }
  return SliceNarration(G, std::move(Steps));
}

std::string SliceNarration::str(unsigned LineOffset) const {
  const Program &P = G.program();
  std::string Out;
  std::set<std::pair<const Method *, unsigned>> SeenLines;
  for (const NarrationStep &Step : Steps) {
    const SDGNode &N = G.node(Step.Node);
    if (!N.isSourceStmt() || !N.I->loc().isValid())
      continue;
    // One narration line per source statement (first reaching edge).
    if (!SeenLines.insert({N.M, N.I->loc().Line}).second)
      continue;
    auto ShowLine = [LineOffset](unsigned Line) {
      return Line > LineOffset ? Line - LineOffset : Line;
    };
    for (unsigned I = 0; I != Step.Depth && I < 12; ++I)
      Out += "  ";
    Out += N.M->qualifiedName(P.strings()) + ":" +
           std::to_string(ShowLine(N.I->loc().Line));
    if (LineOffset && N.I->loc().Line <= LineOffset)
      Out += " [runtime]";
    Out += "  " + N.I->str(P);
    if (Step.ViaNode >= 0) {
      const SDGNode &Via = G.node(static_cast<unsigned>(Step.ViaNode));
      Out += "   [";
      Out += reasonFor(Step.ViaKind);
      if (Via.isSourceStmt() && Via.I->loc().isValid())
        Out += " line " + std::to_string(ShowLine(Via.I->loc().Line));
      Out += "]";
    } else {
      Out += "   [seed]";
    }
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared query-report rendering (CLI, REPL, and service).
//===----------------------------------------------------------------------===//

const Instr *tsl::seedAtLine(const Program &P, unsigned Line) {
  const Instr *Last = nullptr;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          Last = I.get();
  return Last;
}

std::string tsl::renderSliceReport(const SliceResult &Slice,
                                   const std::string &What, unsigned UserLine,
                                   unsigned LineOffset) {
  const Program &P = Slice.graph().program();
  std::string Out = What + " from line " + std::to_string(UserLine) + ": " +
                    std::to_string(Slice.sizeStmts()) + " statements, " +
                    std::to_string(Slice.sourceLines().size()) +
                    " source lines\n";
  for (const SourceLine &L : Slice.sourceLines()) {
    unsigned Shown = L.Line > LineOffset ? L.Line - LineOffset : L.Line;
    Out += "  " + L.M->qualifiedName(P.strings()) + ":" +
           std::to_string(Shown);
    if (L.Line <= LineOffset)
      Out += " [runtime]";
    Out += "\n";
  }
  return Out;
}

const char *tsl::sliceKindName(SliceMode Mode, bool ContextSensitive) {
  if (ContextSensitive)
    return "context-sensitive slice";
  return Mode == SliceMode::Thin ? "thin slice" : "traditional slice";
}

std::string tsl::noStatementMessage(const Program &P, unsigned UserLine,
                                    unsigned LineOffset) {
  unsigned AbsLine = UserLine + LineOffset;
  unsigned Below = 0, Above = ~0u;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        unsigned L = I->loc().Line;
        if (L <= LineOffset) // Runtime-library prefix.
          continue;
        if (L < AbsLine)
          Below = std::max(Below, L);
        else if (L > AbsLine)
          Above = std::min(Above, L);
      }
  std::string Near;
  if (Below)
    Near += std::to_string(Below - LineOffset);
  if (Above != ~0u) {
    if (!Near.empty())
      Near += ", ";
    Near += std::to_string(Above - LineOffset);
  }
  std::string Msg = "no statement at line " + std::to_string(UserLine);
  if (!Near.empty())
    Msg += " (nearest statement lines: " + Near + ")";
  return Msg;
}
