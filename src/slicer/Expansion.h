//===-- Expansion.h - Hierarchical thin-slice expansion ---------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expansion of thin slices with explainer statements (paper Section
/// 4): aliasing explanations via two additional thin slices restricted
/// to objects flowing to both base pointers (Question 1, Sec. 4.1),
/// exposure of controlling conditionals (Question 2, Sec. 4.2), and
/// the fixpoint expansion that recovers the traditional slice in the
/// limit (Sec. 2).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_EXPANSION_H
#define THINSLICER_SLICER_EXPANSION_H

#include "pta/PointsTo.h"
#include "slicer/Slicer.h"

namespace tsl {

/// Expansion queries against one SDG + points-to result.
class ThinExpansion {
public:
  /// When \p Budget is exhausted, expansion stops at the depth/round
  /// reached and the accumulated slice is returned marked Degraded
  /// (a subset of the full expansion: accumulation is monotone).
  ThinExpansion(const SDG &G, const PointsToResult &PTA,
                const AnalysisBudget *Budget = nullptr)
      : G(G), PTA(PTA), B(Budget) {}

  /// Question 1: why do \p Write and \p Read (a heap write/read pair
  /// connected by a heap flow dependence) access the same location?
  /// Returns the union of thin slices seeded at the two base-pointer
  /// definitions, restricted to statements that handle an object
  /// flowing to *both* bases (the filtering of Sec. 4.1).
  SliceResult explainAliasing(const Instr *Write, const Instr *Read) const;

  /// Question 2: under which conditions does \p S execute? Returns the
  /// branch statements \p S is directly control dependent on — in
  /// practice lexically close to the thin slice (Sec. 4.2); each can
  /// seed a further thin slice.
  std::vector<const Instr *> controlExplainers(const Instr *S) const;

  /// The array-index variant of Question 1: for an array read/write
  /// pair, the extra question "how can the indices be equal?" is
  /// answered by thin slices on the index expressions.
  SliceResult explainIndices(const Instr *Write, const Instr *Read) const;

  /// Thin slice of \p Seed with \p Depth levels of aliasing exposure:
  /// at each level, the base pointers of the heap accesses currently
  /// in the slice are explained with one more round of thin slices
  /// (the hierarchy of paper Section 4.1; Depth 0 is the plain thin
  /// slice, the paper's nanoxml-5 configuration is Depth 1, and large
  /// depths approach the data-dependence part of the traditional
  /// slice).
  SliceResult thinSliceWithAliasDepth(const Instr *Seed,
                                      unsigned Depth) const;

  /// Repeatedly expands the thin slice of \p Seed with explainer
  /// statements (aliasing and control) and their thin slices until a
  /// fixpoint. Equals the traditional slice — the paper's "in the
  /// limit" claim, checked by property tests.
  SliceResult expandToTraditional(const Instr *Seed) const;

private:
  /// The base-pointer local of a heap access (base for field ops,
  /// array for array ops), or null.
  static const Local *basePointerOf(const Instr *I);
  static const Local *indexOf(const Instr *I);

  /// Thin slice from the definition of \p L, filtered to statements
  /// whose value may be one of \p CommonObjects.
  SliceResult filteredThinSlice(const Local *L,
                                const BitSet &CommonObjects) const;

  const SDG &G;
  const PointsToResult &PTA;
  const AnalysisBudget *B;
};

} // namespace tsl

#endif // THINSLICER_SLICER_EXPANSION_H
