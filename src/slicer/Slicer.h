//===-- Slicer.h - Thin and traditional slicing ------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-insensitive thin and traditional slicing as graph
/// reachability over the SDG (paper Section 5.2). The only difference
/// between the two modes is the set of dependence edges followed
/// (Section 3): thin slices follow producer flow (Flow) and parameter
/// linkage; traditional slices additionally follow base-pointer flow
/// and control dependence.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_SLICER_H
#define THINSLICER_SLICER_SLICER_H

#include "sdg/SDG.h"
#include "support/BitSet.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace tsl {

/// Which dependence-edge set a slice follows.
enum class SliceMode {
  Thin,        ///< Producer statements only (paper Section 2).
  Traditional, ///< All dependences (Weiser-style relevance).
};

/// True when a slice in \p Mode follows edges of kind \p K.
bool sliceFollowsEdge(SliceMode Mode, SDGEdgeKind K);

/// A (method, line) pair — the unit a human inspects.
struct SourceLine {
  const Method *M;
  unsigned Line;

  bool operator==(const SourceLine &RHS) const {
    return M == RHS.M && Line == RHS.Line;
  }
  bool operator<(const SourceLine &RHS) const {
    if (M != RHS.M)
      return M < RHS.M;
    return Line < RHS.Line;
  }
};

/// The set of SDG nodes in a slice, with statement/line views.
class SliceResult {
public:
  SliceResult(const SDG *G, BitSet Nodes)
      : G(G), Nodes(std::move(Nodes)) {}

  const SDG &graph() const { return *G; }
  const BitSet &nodeSet() const { return Nodes; }

  bool containsNode(unsigned Node) const { return Nodes.test(Node); }
  bool contains(const Instr *I) const {
    int Node = G->nodeFor(I);
    return Node >= 0 && Nodes.test(static_cast<unsigned>(Node));
  }
  /// True when any statement of \p Line is in the slice.
  bool containsLine(const Method *M, unsigned Line) const;

  /// Statement nodes only, in node-id order.
  std::vector<const Instr *> statements() const;

  /// Distinct source lines of the statements (sorted), skipping
  /// compiler-synthesized instructions without positions.
  std::vector<SourceLine> sourceLines() const;

  /// Number of statement nodes in the slice (the paper's slice-size
  /// metric).
  unsigned sizeStmts() const;

  /// Merges \p Other into this slice (both must share the SDG). A
  /// degraded operand degrades the union.
  void unionWith(const SliceResult &Other) {
    Nodes.unionWith(Other.Nodes);
    if (!Other.complete())
      markDegraded(Other.Reason);
  }

  //===------------------------------------------------------------------===//
  // Budget status
  //===------------------------------------------------------------------===//

  /// Complete, or Degraded when a budget stopped the traversal early.
  /// A degraded slice is a subset of the full slice from the same
  /// seeds on the same graph (the BFS only ever under-visits).
  StageStatus status() const { return Status; }
  bool complete() const { return Status == StageStatus::Complete; }
  const std::string &degradedReason() const { return Reason; }
  void markDegraded(const std::string &Why) {
    Status = StageStatus::Degraded;
    if (Reason.empty())
      Reason = Why;
  }

  /// Debug rendering: one "Class.method:line: text" entry per
  /// statement.
  std::string str() const;

private:
  const SDG *G;
  BitSet Nodes;
  StageStatus Status = StageStatus::Complete;
  std::string Reason;
};

/// Backward slice from \p Seed by context-insensitive reachability.
/// All slicing entry points take an optional \p Budget; on exhaustion
/// (MaxSlicePops or the deadline) the partial slice is returned,
/// marked Degraded.
SliceResult sliceBackward(const SDG &G, const Instr *Seed, SliceMode Mode,
                          const AnalysisBudget *Budget = nullptr);

/// Backward slice from several seeds at once.
SliceResult sliceBackward(const SDG &G, const std::vector<const Instr *> &Seeds,
                          SliceMode Mode,
                          const AnalysisBudget *Budget = nullptr);

/// Backward slice seeded at specific SDG nodes (specific clones); used
/// by the expansion machinery, which must not jump across contexts.
SliceResult sliceBackwardNodes(const SDG &G,
                               const std::vector<unsigned> &SeedNodes,
                               SliceMode Mode,
                               const AnalysisBudget *Budget = nullptr);

/// Forward slice (statements the seed's value can flow to / affect).
SliceResult sliceForward(const SDG &G, const Instr *Seed, SliceMode Mode,
                         const AnalysisBudget *Budget = nullptr);

} // namespace tsl

#endif // THINSLICER_SLICER_SLICER_H
