//===-- Slicer.h - Thin and traditional slicing ------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-insensitive thin and traditional slicing as graph
/// reachability over the SDG (paper Section 5.2). The only difference
/// between the two modes is the set of dependence edges followed
/// (Section 3): thin slices follow producer flow (Flow) and parameter
/// linkage; traditional slices additionally follow base-pointer flow
/// and control dependence.
///
/// The BFS runs on the finalized graph's kind-partitioned CSR
/// adjacency (see SDG.h): the mode is compiled into an EdgeKindMask
/// once per slice and each visited node scans contiguous neighbor
/// runs, with no per-edge kind branch or edge-record load.
/// sliceBackwardLegacy() keeps the original edge-record traversal as a
/// differential oracle and benchmark baseline.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_SLICER_H
#define THINSLICER_SLICER_SLICER_H

#include "sdg/SDG.h"
#include "support/BitSet.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace tsl {

/// Which dependence-edge set a slice follows.
enum class SliceMode {
  Thin,        ///< Producer statements only (paper Section 2).
  Traditional, ///< All dependences (Weiser-style relevance).
};

/// True when a slice in \p Mode follows edges of kind \p K.
bool sliceFollowsEdge(SliceMode Mode, SDGEdgeKind K);

/// The CSR edge-kind mask a slice in \p Mode follows (Summary edges
/// are excluded; they belong to the tabulation slicer).
EdgeKindMask sliceEdgeMask(SliceMode Mode);

/// A (method, line) pair — the unit a human inspects.
struct SourceLine {
  const Method *M;
  unsigned Line;

  bool operator==(const SourceLine &RHS) const {
    return M == RHS.M && Line == RHS.Line;
  }
  // Ordered by the program-wide dense method id, NOT the Method
  // pointer: pointer order varies with heap layout, and sourceLines()
  // output must be byte-identical across sessions in one process (the
  // post-fault heal checks compare renderings against a fresh
  // session).
  bool operator<(const SourceLine &RHS) const {
    if (M == RHS.M)
      return Line < RHS.Line;
    if (!M || !RHS.M)
      return !M;
    return M->id() < RHS.M->id();
  }
};

/// The set of SDG nodes in a slice, with statement/line views. The
/// statement and line views are computed once on first use and cached
/// (mutation through unionWith invalidates them), so repeated
/// rendering/counting of one result is free. Not safe for concurrent
/// first-use from multiple threads; the batch engine hands each result
/// to exactly one worker.
class SliceResult {
public:
  SliceResult(const SDG *G, BitSet Nodes)
      : G(G), Nodes(std::move(Nodes)) {}

  const SDG &graph() const { return *G; }
  const BitSet &nodeSet() const { return Nodes; }

  bool containsNode(unsigned Node) const { return Nodes.test(Node); }
  bool contains(const Instr *I) const {
    int Node = G->nodeFor(I);
    return Node >= 0 && Nodes.test(static_cast<unsigned>(Node));
  }
  /// True when any statement of \p Line is in the slice.
  bool containsLine(const Method *M, unsigned Line) const;

  /// Statement nodes only, in node-id order. Cached after the first
  /// call; the reference stays valid until the result is mutated.
  const std::vector<const Instr *> &statements() const;

  /// Distinct source lines of the statements (sorted), skipping
  /// compiler-synthesized instructions without positions. Cached like
  /// statements().
  const std::vector<SourceLine> &sourceLines() const;

  /// Number of statement nodes in the slice (the paper's slice-size
  /// metric).
  unsigned sizeStmts() const;

  /// Merges \p Other into this slice (both must share the SDG). A
  /// degraded operand degrades the union.
  void unionWith(const SliceResult &Other) {
    Nodes.unionWith(Other.Nodes);
    StmtsValid = false;
    LinesValid = false;
    if (!Other.complete())
      markDegraded(Other.Reason);
  }

  //===------------------------------------------------------------------===//
  // Budget status
  //===------------------------------------------------------------------===//

  /// Complete, or Degraded when a budget stopped the traversal early.
  /// A degraded slice is a subset of the full slice from the same
  /// seeds on the same graph (the BFS only ever under-visits).
  StageStatus status() const { return Status; }
  bool complete() const { return Status == StageStatus::Complete; }
  const std::string &degradedReason() const { return Reason; }
  void markDegraded(const std::string &Why) {
    Status = StageStatus::Degraded;
    if (Reason.empty())
      Reason = Why;
  }

  /// Debug rendering: one "Class.method:line: text" entry per
  /// statement.
  std::string str() const;

private:
  const SDG *G;
  BitSet Nodes;
  StageStatus Status = StageStatus::Complete;
  std::string Reason;
  mutable std::vector<const Instr *> CachedStmts;
  mutable std::vector<SourceLine> CachedLines;
  mutable bool StmtsValid = false;
  mutable bool LinesValid = false;
};

/// Backward slice from \p Seed by context-insensitive reachability.
/// All slicing entry points take an optional \p Budget; on exhaustion
/// (MaxSlicePops or the deadline) the partial slice is returned,
/// marked Degraded.
SliceResult sliceBackward(const SDG &G, const Instr *Seed, SliceMode Mode,
                          const AnalysisBudget *Budget = nullptr);

/// Backward slice from several seeds at once.
SliceResult sliceBackward(const SDG &G, const std::vector<const Instr *> &Seeds,
                          SliceMode Mode,
                          const AnalysisBudget *Budget = nullptr);

/// Backward slice seeded at specific SDG nodes (specific clones); used
/// by the expansion machinery, which must not jump across contexts.
/// When \p Shared is non-null the traversal polls that batch-wide gate
/// instead of constructing its own BudgetGate — the thread-safe path
/// the batch engine's workers use (BudgetGate construction touches the
/// process-global FaultInjector and must stay on the main thread).
SliceResult sliceBackwardNodes(const SDG &G,
                               const std::vector<unsigned> &SeedNodes,
                               SliceMode Mode,
                               const AnalysisBudget *Budget = nullptr,
                               SharedBudgetGate *Shared = nullptr);

/// Forward slice (statements the seed's value can flow to / affect).
SliceResult sliceForward(const SDG &G, const Instr *Seed, SliceMode Mode,
                         const AnalysisBudget *Budget = nullptr);

/// Reference slicer over the raw edge records (the pre-CSR traversal:
/// per-edge kind test via sliceFollowsEdge, edge-id indirection).
/// Kept as the differential-testing oracle for the CSR path and the
/// baseline the throughput benchmark measures against.
SliceResult sliceBackwardLegacy(const SDG &G, const Instr *Seed,
                                SliceMode Mode,
                                const AnalysisBudget *Budget = nullptr);

} // namespace tsl

#endif // THINSLICER_SLICER_SLICER_H
