//===-- Expansion.cpp - Hierarchical thin-slice expansion ----------------------==//

#include "slicer/Expansion.h"

using namespace tsl;

const Local *ThinExpansion::basePointerOf(const Instr *I) {
  switch (I->kind()) {
  case InstrKind::Load:
    return cast<LoadInstr>(I)->base();
  case InstrKind::Store:
    return cast<StoreInstr>(I)->base();
  case InstrKind::ArrayLoad:
    return cast<ArrayLoadInstr>(I)->array();
  case InstrKind::ArrayStore:
    return cast<ArrayStoreInstr>(I)->array();
  case InstrKind::ArrayLen:
    return cast<ArrayLenInstr>(I)->array();
  default:
    return nullptr;
  }
}

const Local *ThinExpansion::indexOf(const Instr *I) {
  switch (I->kind()) {
  case InstrKind::ArrayLoad:
    return cast<ArrayLoadInstr>(I)->index();
  case InstrKind::ArrayStore:
    return cast<ArrayStoreInstr>(I)->index();
  default:
    return nullptr;
  }
}

SliceResult ThinExpansion::filteredThinSlice(const Local *L,
                                             const BitSet &Common) const {
  const Instr *Def = L->def();
  if (!Def)
    return SliceResult(&G, BitSet());
  SliceResult Full = sliceBackward(G, Def, SliceMode::Thin);

  // Keep statements that handle one of the common objects: their
  // defined value, the value they store, or — for parameter passing —
  // the actual argument may be such an object.
  BitSet Kept(G.numNodes());
  Full.nodeSet().forEach([&](unsigned Node) {
    const SDGNode &N = G.node(Node);
    if (!N.isSourceStmt())
      return;
    const Instr *I = N.I;
    const Local *Val = nullptr;
    if (N.K == SDGNodeKind::ScalarActualIn)
      Val = I->operand(N.Part);
    else if ((Val = I->dest()) == nullptr) {
      if (const auto *S = dyn_cast<StoreInstr>(I))
        Val = S->src();
      else if (const auto *AS = dyn_cast<ArrayStoreInstr>(I))
        Val = AS->src();
      else if (const auto *R = dyn_cast<RetInstr>(I))
        Val = R->src();
    }
    if (Val && Val->type()->isReference() &&
        PTA.pointsTo(Val).intersects(Common))
      Kept.insert(Node);
  });
  return SliceResult(&G, std::move(Kept));
}

SliceResult ThinExpansion::explainAliasing(const Instr *Write,
                                           const Instr *Read) const {
  const Local *WBase = basePointerOf(Write);
  const Local *RBase = basePointerOf(Read);
  if (!WBase || !RBase)
    return SliceResult(&G, BitSet());
  BitSet Common = PTA.commonObjects(WBase, RBase);
  SliceResult Out = filteredThinSlice(WBase, Common);
  Out.unionWith(filteredThinSlice(RBase, Common));
  return Out;
}

SliceResult ThinExpansion::explainIndices(const Instr *Write,
                                          const Instr *Read) const {
  BitSet Nodes(G.numNodes());
  SliceResult Out(&G, std::move(Nodes));
  for (const Instr *I : {Write, Read}) {
    const Local *Idx = indexOf(I);
    if (!Idx || !Idx->def())
      continue;
    Out.unionWith(sliceBackward(G, Idx->def(), SliceMode::Thin));
  }
  return Out;
}

std::vector<const Instr *>
ThinExpansion::controlExplainers(const Instr *S) const {
  std::vector<const Instr *> Out;
  int Node = G.nodeFor(S);
  if (Node < 0)
    return Out;
  for (unsigned EdgeId : G.inEdges(static_cast<unsigned>(Node))) {
    const SDGEdge &E = G.edge(EdgeId);
    if (E.K != SDGEdgeKind::Control)
      continue;
    const SDGNode &From = G.node(E.From);
    if (From.isStmt())
      Out.push_back(From.I);
  }
  return Out;
}

SliceResult ThinExpansion::thinSliceWithAliasDepth(const Instr *Seed,
                                                   unsigned Depth) const {
  BudgetGate Gate(B, "expand.round", B ? B->MaxExpansionRounds : 0);
  SliceResult Acc = sliceBackward(G, Seed, SliceMode::Thin, B);
  for (unsigned Level = 0; Level != Depth; ++Level) {
    if (Gate.spend()) {
      Acc.markDegraded(Gate.reason());
      break;
    }
    // Base pointers of heap accesses currently in the slice.
    std::vector<unsigned> BaseDefs;
    Acc.nodeSet().forEach([&](unsigned Node) {
      const SDGNode &N = G.node(Node);
      if (!N.isStmt() || !basePointerOf(N.I))
        return;
      for (unsigned EdgeId : G.inEdges(Node)) {
        const SDGEdge &E = G.edge(EdgeId);
        if (E.K == SDGEdgeKind::BaseFlow && !Acc.containsNode(E.From))
          BaseDefs.push_back(E.From);
      }
    });
    if (BaseDefs.empty())
      break;
    bool Changed = false;
    for (unsigned Node : BaseDefs)
      if (!Acc.containsNode(Node)) {
        Acc.unionWith(sliceBackwardNodes(G, {Node}, SliceMode::Thin, B));
        Changed = true;
      }
    if (!Changed)
      break;
  }
  return Acc;
}

SliceResult ThinExpansion::expandToTraditional(const Instr *Seed) const {
  BudgetGate Gate(B, "expand.round", B ? B->MaxExpansionRounds : 0);
  SliceResult Acc = sliceBackward(G, Seed, SliceMode::Thin, B);
  bool Changed = true;
  while (Changed) {
    if (Gate.spend()) {
      Acc.markDegraded(Gate.reason());
      break;
    }
    Changed = false;
    // Collect explainer sources (base-pointer flow and control) of the
    // current slice, then absorb their thin slices. Expansion is
    // node-level: explaining a statement clone must not pull in the
    // chains of its other contexts.
    std::vector<unsigned> Explainers;
    Acc.nodeSet().forEach([&](unsigned Node) {
      for (unsigned EdgeId : G.inEdges(Node)) {
        const SDGEdge &E = G.edge(EdgeId);
        if ((E.K == SDGEdgeKind::BaseFlow || E.K == SDGEdgeKind::Control) &&
            !Acc.containsNode(E.From))
          Explainers.push_back(E.From);
      }
    });
    for (unsigned Node : Explainers) {
      if (!Acc.containsNode(Node)) {
        Acc.unionWith(sliceBackwardNodes(G, {Node}, SliceMode::Thin, B));
        Changed = true;
      }
    }
  }
  return Acc;
}
