//===-- Slicer.cpp - Thin and traditional slicing ------------------------------==//

#include "slicer/Slicer.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace tsl;

bool tsl::sliceFollowsEdge(SliceMode Mode, SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
  case SDGEdgeKind::ParamIn:
  case SDGEdgeKind::ParamOut:
    return true;
  case SDGEdgeKind::BaseFlow:
  case SDGEdgeKind::Control:
    return Mode == SliceMode::Traditional;
  case SDGEdgeKind::Summary:
    return false; // Summary edges belong to the tabulation slicer.
  }
  return false;
}

bool SliceResult::containsLine(const Method *M, unsigned Line) const {
  bool Found = false;
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && N.M == M && N.I->loc().Line == Line)
      Found = true;
  });
  return Found;
}

std::vector<const Instr *> SliceResult::statements() const {
  // Clones of one statement appear as separate nodes; dedup with a
  // seen-set rather than a linear scan per node.
  std::vector<const Instr *> Out;
  std::unordered_set<const Instr *> Seen;
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && Seen.insert(N.I).second)
      Out.push_back(N.I);
  });
  return Out;
}

std::vector<SourceLine> SliceResult::sourceLines() const {
  std::vector<SourceLine> Out;
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && N.I->loc().isValid())
      Out.push_back({N.M, N.I->loc().Line});
  });
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

unsigned SliceResult::sizeStmts() const {
  unsigned N = 0;
  Nodes.forEach([&](unsigned Node) { N += G->node(Node).isSourceStmt(); });
  return N;
}

std::string SliceResult::str() const {
  std::string Out;
  const Program &P = G->program();
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (!N.isSourceStmt())
      return;
    Out += N.M->qualifiedName(P.strings());
    Out += ":" + std::to_string(N.I->loc().Line) + ": " + N.I->str(P);
    if (N.K == SDGNodeKind::ScalarActualIn)
      Out += "  [actual #" + std::to_string(N.Part) + "]";
    Out += "\n";
  });
  return Out;
}

namespace {

/// Shared reachability engine for both directions. A budget caps the
/// number of worklist pops; stopping early only under-visits, so the
/// partial result is a subset of the full slice (marked Degraded).
SliceResult reachNodes(const SDG &G, const std::vector<unsigned> &SeedNodes,
                       SliceMode Mode, bool Backward,
                       const AnalysisBudget *Budget) {
  BudgetGate Gate(Budget, "slice.pop",
                  Budget ? Budget->MaxSlicePops : 0);
  BitSet Visited(G.numNodes());
  std::deque<unsigned> Queue;
  for (unsigned Node : SeedNodes)
    if (Visited.insert(Node))
      Queue.push_back(Node);
  while (!Queue.empty()) {
    if (Gate.spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    const std::vector<unsigned> &EdgeIds =
        Backward ? G.inEdges(Node) : G.outEdges(Node);
    for (unsigned EdgeId : EdgeIds) {
      const SDGEdge &E = G.edge(EdgeId);
      if (!sliceFollowsEdge(Mode, E.K))
        continue;
      unsigned Next = Backward ? E.From : E.To;
      if (Visited.insert(Next))
        Queue.push_back(Next);
    }
  }
  SliceResult R(&G, std::move(Visited));
  if (Gate.exhausted())
    R.markDegraded(Gate.reason());
  return R;
}

/// Expands instruction seeds into every clone of each statement.
SliceResult reach(const SDG &G, const std::vector<const Instr *> &Seeds,
                  SliceMode Mode, bool Backward,
                  const AnalysisBudget *Budget) {
  std::vector<unsigned> Nodes;
  for (const Instr *Seed : Seeds)
    for (unsigned Node : G.nodesFor(Seed))
      Nodes.push_back(Node);
  return reachNodes(G, Nodes, Mode, Backward, Budget);
}

} // namespace

SliceResult tsl::sliceBackward(const SDG &G, const Instr *Seed,
                               SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, {Seed}, Mode, /*Backward=*/true, Budget);
}

SliceResult tsl::sliceBackward(const SDG &G,
                               const std::vector<const Instr *> &Seeds,
                               SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, Seeds, Mode, /*Backward=*/true, Budget);
}

SliceResult tsl::sliceBackwardNodes(const SDG &G,
                                    const std::vector<unsigned> &SeedNodes,
                                    SliceMode Mode,
                                    const AnalysisBudget *Budget) {
  return reachNodes(G, SeedNodes, Mode, /*Backward=*/true, Budget);
}

SliceResult tsl::sliceForward(const SDG &G, const Instr *Seed,
                              SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, {Seed}, Mode, /*Backward=*/false, Budget);
}
