//===-- Slicer.cpp - Thin and traditional slicing ------------------------------==//

#include "slicer/Slicer.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_set>

using namespace tsl;

bool tsl::sliceFollowsEdge(SliceMode Mode, SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
  case SDGEdgeKind::ParamIn:
  case SDGEdgeKind::ParamOut:
    return true;
  case SDGEdgeKind::BaseFlow:
  case SDGEdgeKind::Control:
    return Mode == SliceMode::Traditional;
  case SDGEdgeKind::Summary:
    return false; // Summary edges belong to the tabulation slicer.
  }
  return false;
}

EdgeKindMask tsl::sliceEdgeMask(SliceMode Mode) {
  EdgeKindMask Mask = edgeKindMask(SDGEdgeKind::Flow) |
                      edgeKindMask(SDGEdgeKind::ParamIn) |
                      edgeKindMask(SDGEdgeKind::ParamOut);
  if (Mode == SliceMode::Traditional)
    Mask |= edgeKindMask(SDGEdgeKind::BaseFlow) |
            edgeKindMask(SDGEdgeKind::Control);
  return Mask;
}

bool SliceResult::containsLine(const Method *M, unsigned Line) const {
  bool Found = false;
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && N.M == M && N.I->loc().Line == Line)
      Found = true;
  });
  return Found;
}

const std::vector<const Instr *> &SliceResult::statements() const {
  if (StmtsValid)
    return CachedStmts;
  // Clones of one statement appear as separate nodes; dedup with a
  // seen-set rather than a linear scan per node.
  CachedStmts.clear();
  std::unordered_set<const Instr *> Seen;
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && Seen.insert(N.I).second)
      CachedStmts.push_back(N.I);
  });
  StmtsValid = true;
  return CachedStmts;
}

const std::vector<SourceLine> &SliceResult::sourceLines() const {
  if (LinesValid)
    return CachedLines;
  CachedLines.clear();
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (N.isSourceStmt() && N.I->loc().isValid())
      CachedLines.push_back({N.M, N.I->loc().Line});
  });
  std::sort(CachedLines.begin(), CachedLines.end());
  CachedLines.erase(std::unique(CachedLines.begin(), CachedLines.end()),
                    CachedLines.end());
  LinesValid = true;
  return CachedLines;
}

unsigned SliceResult::sizeStmts() const {
  unsigned N = 0;
  Nodes.forEach([&](unsigned Node) { N += G->node(Node).isSourceStmt(); });
  return N;
}

std::string SliceResult::str() const {
  std::string Out;
  const Program &P = G->program();
  Nodes.forEach([&](unsigned Node) {
    const SDGNode &N = G->node(Node);
    if (!N.isSourceStmt())
      return;
    Out += N.M->qualifiedName(P.strings());
    Out += ":" + std::to_string(N.I->loc().Line) + ": " + N.I->str(P);
    if (N.K == SDGNodeKind::ScalarActualIn)
      Out += "  [actual #" + std::to_string(N.Part) + "]";
    Out += "\n";
  });
  return Out;
}

namespace {

/// Shared reachability engine for both directions, running on the
/// finalized graph's kind-partitioned CSR adjacency. A budget caps
/// the number of worklist pops; stopping early only under-visits, so
/// the partial result is a subset of the full slice (marked
/// Degraded). With \p Shared set, the pops are charged to the
/// batch-wide gate and no local gate is constructed.
SliceResult reachNodes(const SDG &G, const std::vector<unsigned> &SeedNodes,
                       SliceMode Mode, bool Backward,
                       const AnalysisBudget *Budget,
                       SharedBudgetGate *Shared = nullptr) {
  G.ensureFinalized();
  std::optional<BudgetGate> Local;
  if (!Shared)
    Local.emplace(Budget, "slice.pop", Budget ? Budget->MaxSlicePops : 0);
  const EdgeKindRuns Runs = edgeKindRuns(sliceEdgeMask(Mode));
  BitSet Visited(G.numNodes());
  // Flat BFS worklist (never popped elements are dropped all at once):
  // same visit order as a deque, one allocation per query.
  std::vector<unsigned> Queue;
  Queue.reserve(64);
  std::size_t Head = 0;
  for (unsigned Node : SeedNodes)
    if (Visited.insert(Node))
      Queue.push_back(Node);
  while (Head != Queue.size()) {
    if (Shared ? Shared->spend() : Local->spend())
      break;
    unsigned Node = Queue[Head++];
    auto Visit = [&](unsigned Next) {
      if (Visited.insert(Next))
        Queue.push_back(Next);
    };
    if (Backward)
      G.forEachInNeighbor(Node, Runs, Visit);
    else
      G.forEachOutNeighbor(Node, Runs, Visit);
  }
  SliceResult R(&G, std::move(Visited));
  if (Shared ? Shared->exhausted() : Local->exhausted())
    R.markDegraded(Shared ? Shared->reason() : Local->reason());
  return R;
}

/// Expands instruction seeds into every clone of each statement.
SliceResult reach(const SDG &G, const std::vector<const Instr *> &Seeds,
                  SliceMode Mode, bool Backward,
                  const AnalysisBudget *Budget) {
  std::vector<unsigned> Nodes;
  for (const Instr *Seed : Seeds)
    for (unsigned Node : G.nodesFor(Seed))
      Nodes.push_back(Node);
  return reachNodes(G, Nodes, Mode, Backward, Budget);
}

} // namespace

SliceResult tsl::sliceBackward(const SDG &G, const Instr *Seed,
                               SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, {Seed}, Mode, /*Backward=*/true, Budget);
}

SliceResult tsl::sliceBackward(const SDG &G,
                               const std::vector<const Instr *> &Seeds,
                               SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, Seeds, Mode, /*Backward=*/true, Budget);
}

SliceResult tsl::sliceBackwardNodes(const SDG &G,
                                    const std::vector<unsigned> &SeedNodes,
                                    SliceMode Mode,
                                    const AnalysisBudget *Budget,
                                    SharedBudgetGate *Shared) {
  return reachNodes(G, SeedNodes, Mode, /*Backward=*/true, Budget, Shared);
}

SliceResult tsl::sliceForward(const SDG &G, const Instr *Seed,
                              SliceMode Mode, const AnalysisBudget *Budget) {
  return reach(G, {Seed}, Mode, /*Backward=*/false, Budget);
}

SliceResult tsl::sliceBackwardLegacy(const SDG &G, const Instr *Seed,
                                     SliceMode Mode,
                                     const AnalysisBudget *Budget) {
  BudgetGate Gate(Budget, "slice.pop", Budget ? Budget->MaxSlicePops : 0);
  BitSet Visited(G.numNodes());
  std::deque<unsigned> Queue;
  for (unsigned Node : G.nodesFor(Seed))
    if (Visited.insert(Node))
      Queue.push_back(Node);
  while (!Queue.empty()) {
    if (Gate.spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (!sliceFollowsEdge(Mode, E.K))
        continue;
      if (Visited.insert(E.From))
        Queue.push_back(E.From);
    }
  }
  SliceResult R(&G, std::move(Visited));
  if (Gate.exhausted())
    R.markDegraded(Gate.reason());
  return R;
}
