//===-- Engine.cpp - Batched slice-query engine ------------------------------==//

#include "slicer/Engine.h"

#include "support/BitSet.h"
#include "support/ThreadPool.h"

#include <optional>
#include <thread>

using namespace tsl;

//===----------------------------------------------------------------------===//
// SCC condensation of the mode-masked subgraph
//===----------------------------------------------------------------------===//

namespace tsl {

/// Condensation of the masked SDG subgraph. Component ids are Tarjan
/// pop order, which gives the key invariant: for every cross-component
/// edge From -> To, Comp[To] < Comp[From]. A sweep over components in
/// increasing id therefore sees each edge's To side fully propagated
/// before its From side — backward reachability for a whole chunk of
/// queries is one linear pass.
struct BatchCondensation {
  std::vector<unsigned> Comp;      ///< Node -> component id.
  std::vector<unsigned> MemberOff; ///< Component -> members offset.
  std::vector<unsigned> Members;   ///< Node ids grouped by component.
  unsigned NumComps = 0;
};

} // namespace tsl

namespace {

/// Iterative Tarjan over the masked out-adjacency (explicit DFS stack;
/// the masked neighbor list of a frame is resumable via neighbor-run
/// pointers, one run per contiguous slot interval of the mask).
BatchCondensation condense(const SDG &G, const EdgeKindRuns &Runs) {
  const unsigned NN = G.numNodes();
  BatchCondensation C;
  C.Comp.assign(NN, 0);
  std::vector<unsigned> Index(NN, 0), Low(NN, 0);
  std::vector<char> OnStack(NN, 0);
  std::vector<unsigned> Stack;
  struct Frame {
    unsigned Node;
    unsigned Run;
    const unsigned *Pos, *End;
  };
  std::vector<Frame> DFS;
  unsigned Counter = 0;
  auto Open = [&](unsigned V) {
    Index[V] = Low[V] = ++Counter;
    Stack.push_back(V);
    OnStack[V] = 1;
    DFS.push_back({V, 0, nullptr, nullptr});
  };
  for (unsigned Root = 0; Root != NN; ++Root) {
    if (Index[Root])
      continue;
    Open(Root);
    while (!DFS.empty()) {
      Frame &F = DFS.back();
      unsigned Next = 0;
      bool Have = false;
      while (true) {
        if (F.Pos == F.End) {
          if (F.Run == Runs.NumRuns)
            break;
          IdRange R = G.outNeighborRun(F.Node, Runs.Runs[F.Run].Begin,
                                       Runs.Runs[F.Run].End);
          F.Pos = R.begin();
          F.End = R.end();
          ++F.Run;
          continue;
        }
        Next = *F.Pos++;
        Have = true;
        break;
      }
      if (Have) {
        if (!Index[Next])
          Open(Next); // Invalidates F; re-fetched next iteration.
        else if (OnStack[Next] && Index[Next] < Low[F.Node])
          Low[F.Node] = Index[Next];
        continue;
      }
      const unsigned V = F.Node;
      const unsigned Lv = Low[V];
      DFS.pop_back();
      if (!DFS.empty() && Lv < Low[DFS.back().Node])
        Low[DFS.back().Node] = Lv;
      if (Lv == Index[V]) {
        const unsigned Id = C.NumComps++;
        while (true) {
          unsigned X = Stack.back();
          Stack.pop_back();
          OnStack[X] = 0;
          C.Comp[X] = Id;
          if (X == V)
            break;
        }
      }
    }
  }
  // Member lists by counting sort.
  C.MemberOff.assign(C.NumComps + 1, 0);
  for (unsigned V = 0; V != NN; ++V)
    ++C.MemberOff[C.Comp[V] + 1];
  for (unsigned I = 1; I <= C.NumComps; ++I)
    C.MemberOff[I] += C.MemberOff[I - 1];
  C.Members.resize(NN);
  std::vector<unsigned> Cur(C.MemberOff.begin(), C.MemberOff.end() - 1);
  for (unsigned V = 0; V != NN; ++V)
    C.Members[Cur[C.Comp[V]]++] = V;
  return C;
}

/// One deduplicated query: the seed's expanded node set plus a
/// representative instruction (used by the tabulation path, which
/// seeds by instruction; seeds sharing a node set produce identical
/// slices either way).
struct UniqueQuery {
  std::vector<unsigned> Nodes;
  const Instr *Seed;
};

/// Queries per bit-parallel chunk: one label bit per query.
constexpr unsigned LanesPerChunk = 64;

} // namespace

//===----------------------------------------------------------------------===//
// SliceEngine
//===----------------------------------------------------------------------===//

SliceEngine::SliceEngine(const SDG &G, ThreadPool *Pool) : G(G), Pool(Pool) {
  G.ensureFinalized();
}

SliceEngine::~SliceEngine() = default;

std::shared_ptr<const BatchCondensation>
SliceEngine::condensationFor(EdgeKindMask Mask) {
  const std::pair<uint64_t, EdgeKindMask> Key{G.epoch(), Mask};
  std::lock_guard<std::mutex> L(CondMu);
  auto It = CondCache.find(Key);
  if (It != CondCache.end()) {
    Stats.CondensationReused = true;
    return It->second;
  }
  // Evict condensations of stale epochs before inserting.
  for (auto I = CondCache.begin(); I != CondCache.end();)
    I = I->first.first != G.epoch() ? CondCache.erase(I) : std::next(I);
  auto C = std::make_shared<const BatchCondensation>(
      condense(G, edgeKindRuns(Mask)));
  CondCache.emplace(Key, C);
  return C;
}

std::vector<SliceResult>
SliceEngine::sliceBackwardBatch(const std::vector<const Instr *> &Seeds,
                                const BatchOptions &Opts) {
  G.ensureFinalized();
  Stats = BatchStats();
  Stats.Queries = static_cast<unsigned>(Seeds.size());

  // Deduplicate seeds by their expanded node set: textually different
  // seeds on the same statement (or several misses) collapse to one
  // query each.
  std::vector<UniqueQuery> Unique;
  std::vector<unsigned> QueryOf(Seeds.size());
  std::map<std::vector<unsigned>, unsigned> Index;
  for (std::size_t I = 0; I != Seeds.size(); ++I) {
    std::vector<unsigned> Nodes;
    for (unsigned Node : G.nodesFor(Seeds[I]))
      Nodes.push_back(Node);
    auto [It, New] =
        Index.emplace(Nodes, static_cast<unsigned>(Unique.size()));
    if (New)
      Unique.push_back({std::move(Nodes), Seeds[I]});
    QueryOf[I] = It->second;
  }
  Stats.UniqueQueries = static_cast<unsigned>(Unique.size());

  // Everything that reaches process globals happens here, before
  // workers exist: the batch-wide gate, the condensation cache, and
  // (context-sensitive mode) the summary computation.
  SharedBudgetGate Gate(Opts.Budget, "slice.pop",
                        Opts.Budget ? Opts.Budget->MaxSlicePops : 0);
  std::vector<std::optional<SliceResult>> UniqueResults(Unique.size());

  // Crash isolation: nothing in this batch throws across the engine
  // boundary. A query (or the shared summary computation) that dies —
  // an injected Throw fault, an internal error — comes back as an
  // *empty degraded* result tagged "exception:<what>", and the shared
  // gate is cancelled so sibling queries stop burning work for a
  // batch that already failed.
  auto FailAll = [&](const std::string &Why) {
    std::vector<SliceResult> Results;
    Results.reserve(Seeds.size());
    for (std::size_t I = 0; I != Seeds.size(); ++I) {
      Results.emplace_back(&G, BitSet(G.numNodes()));
      Results.back().markDegraded(Why);
    }
    return Results;
  };

  std::optional<TabulationSlicer> Tab;
  std::shared_ptr<const BatchCondensation> Cond;
  try {
    if (Opts.ContextSensitive) {
      Tab.emplace(G, Opts.Mode, Opts.Budget, Opts.Summaries);
      Stats.SummariesReused = Tab->summariesFromCache();
    } else {
      Cond = condensationFor(sliceEdgeMask(Opts.Mode));
    }
  } catch (const std::exception &E) {
    return FailAll(std::string("exception:") + E.what());
  }

  // Work items: unique queries in CS mode, 64-query chunks in CI mode.
  const unsigned NumChunks =
      (static_cast<unsigned>(Unique.size()) + LanesPerChunk - 1) /
      LanesPerChunk;
  const std::size_t NumItems = Tab ? Unique.size() : NumChunks;

  unsigned Workers =
      Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
  if (Workers == 0)
    Workers = 1;
  if (Workers > NumItems)
    Workers = static_cast<unsigned>(NumItems);
  if (Workers == 0)
    Workers = 1;
  Stats.Workers = Workers;

  // CI chunk: plant each lane's seed nodes, sweep the components in
  // topological id order (all of a component's dependents finish
  // first), then emit per-lane node sets. Every member of a component
  // carries the same label — mutually reachable nodes belong to
  // exactly the same slices.
  auto RunChunk = [&](unsigned Chunk) {
    const unsigned C0 = Chunk * LanesPerChunk;
    const unsigned Lanes = std::min(
        LanesPerChunk, static_cast<unsigned>(Unique.size()) - C0);
    const EdgeKindRuns Runs = edgeKindRuns(sliceEdgeMask(Opts.Mode));
    std::vector<uint64_t> Label(G.numNodes(), 0);
    for (unsigned L = 0; L != Lanes; ++L)
      for (unsigned Node : Unique[C0 + L].Nodes)
        Label[Node] |= uint64_t(1) << L;
    std::vector<BitSet> Out;
    Out.reserve(Lanes);
    for (unsigned L = 0; L != Lanes; ++L)
      Out.emplace_back(G.numNodes());
    const std::vector<unsigned> &MemberOff = Cond->MemberOff;
    const std::vector<unsigned> &Members = Cond->Members;
    for (unsigned Cp = 0; Cp != Cond->NumComps; ++Cp) {
      uint64_t Lb = 0;
      const unsigned B = MemberOff[Cp], E = MemberOff[Cp + 1];
      for (unsigned I = B; I != E; ++I)
        Lb |= Label[Members[I]];
      if (!Lb)
        continue;
      // One spend per labeled component — the batch analogue of the
      // single-seed slicer's per-pop poll.
      if (Gate.spend())
        break;
      for (unsigned I = B; I != E; ++I) {
        const unsigned X = Members[I];
        Label[X] = Lb;
        G.forEachInNeighbor(X, Runs,
                            [&](unsigned Y) { Label[Y] |= Lb; });
      }
      uint64_t T = Lb;
      while (T) {
        const unsigned L = static_cast<unsigned>(__builtin_ctzll(T));
        T &= T - 1;
        BitSet &R = Out[L];
        for (unsigned I = B; I != E; ++I)
          R.insert(Members[I]);
      }
    }
    const bool Degraded = Gate.exhausted();
    for (unsigned L = 0; L != Lanes; ++L) {
      UniqueResults[C0 + L].emplace(&G, std::move(Out[L]));
      if (Degraded)
        UniqueResults[C0 + L]->markDegraded(Gate.reason());
    }
  };

  // A failed work item (exception escaping a query) yields empty
  // degraded results for every lane it covers, so the batch contract
  // — one SliceResult per seed, throwing never — holds regardless.
  auto FailItem = [&](unsigned Item, const std::string &Why) {
    const unsigned C0 = Tab ? Item : Item * LanesPerChunk;
    const unsigned Lanes =
        Tab ? 1
            : std::min(LanesPerChunk,
                       static_cast<unsigned>(Unique.size()) - C0);
    for (unsigned L = 0; L != Lanes; ++L) {
      UniqueResults[C0 + L].emplace(&G, BitSet(G.numNodes()));
      UniqueResults[C0 + L]->markDegraded(Why);
    }
  };

  auto RunItem = [&](unsigned Item) {
    try {
      if (Tab)
        UniqueResults[Item].emplace(Tab->slice(
            std::vector<const Instr *>{Unique[Item].Seed}, &Gate));
      else
        RunChunk(Item);
    } catch (const std::exception &E) {
      std::string Why = std::string("exception:") + E.what();
      Gate.cancel(Why); // Sibling queries stop at their next spend.
      FailItem(Item, Why);
    }
  };

  if (Workers <= 1) {
    // Single-worker batches run inline: no pool is consulted or
    // created, no thread is spawned, no task is queued.
    for (unsigned I = 0; I != NumItems; ++I)
      RunItem(I);
  } else {
    ThreadPool *TP = Pool;
    if (!TP) {
      if (!OwnedPool || OwnedPool->concurrency() < Workers)
        OwnedPool = std::make_unique<ThreadPool>(Workers);
      TP = OwnedPool.get();
    }
    if (TP->concurrency() < Workers)
      Stats.Workers = Workers = TP->concurrency();
    // The gate is deliberately not handed to parallelFor: every item
    // must produce a SliceResult (degraded once the gate trips), so
    // cancellation happens inside RunItem, never by skipping items.
    TP->parallelFor(
        NumItems,
        [&](std::size_t I) { RunItem(static_cast<unsigned>(I)); }, Workers);
  }

  std::vector<SliceResult> Results;
  Results.reserve(Seeds.size());
  for (std::size_t I = 0; I != Seeds.size(); ++I)
    Results.push_back(*UniqueResults[QueryOf[I]]);
  return Results;
}
