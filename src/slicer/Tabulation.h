//===-- Tabulation.h - Context-sensitive slicing ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive backward slicing as a partially balanced
/// parentheses problem (paper Section 5.3, following Reps [20] and
/// Horwitz-Reps-Binkley [11]): summary edges are computed by a
/// tabulation-style worklist algorithm, then a slice is two phases of
/// reachability — phase 1 ascends into callers (never follows
/// param-out), phase 2 descends into callees (never follows param-in).
///
/// Use with an SDG built with SDGOptions::ContextSensitive; on a
/// context-insensitive graph the direct interprocedural heap edges
/// would bypass the parenthesis matching.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_TABULATION_H
#define THINSLICER_SLICER_TABULATION_H

#include "slicer/Slicer.h"

#include <unordered_map>
#include <unordered_set>

namespace tsl {

/// Context-sensitive slicer with cached summary edges for one SDG and
/// slice mode. Summary computation is the dominant cost and runs once
/// in the constructor, mirroring the paper's observation that the
/// heap-parameter SDG (not the traversal) is the scalability
/// bottleneck.
class TabulationSlicer {
public:
  /// Computes summary edges eagerly. When \p Budget is exhausted
  /// mid-computation, the summary set stays partial — slices are then
  /// subsets of the full context-sensitive slice and are marked
  /// Degraded.
  TabulationSlicer(const SDG &G, SliceMode Mode,
                   const AnalysisBudget *Budget = nullptr);

  /// Two-phase backward slice from \p Seed.
  SliceResult slice(const Instr *Seed) const;
  SliceResult slice(const std::vector<const Instr *> &Seeds) const;

  /// Number of summary edges discovered (a cost statistic).
  unsigned numSummaryEdges() const { return NumSummaries; }

  /// True when summary computation ran to its fixed point.
  bool summariesComplete() const { return !Partial; }

private:
  bool intraEdge(SDGEdgeKind K) const {
    if (K == SDGEdgeKind::Flow)
      return true;
    if (Mode == SliceMode::Traditional)
      return K == SDGEdgeKind::BaseFlow || K == SDGEdgeKind::Control;
    return false;
  }

  void computeSummaries();

  const SDG &G;
  SliceMode Mode;
  const AnalysisBudget *B;
  /// Summary adjacency: for each actual-out node, its summary sources.
  std::unordered_map<unsigned, std::vector<unsigned>> SummaryIn;
  unsigned NumSummaries = 0;
  bool Partial = false;
  std::string PartialReason;
};

} // namespace tsl

#endif // THINSLICER_SLICER_TABULATION_H
