//===-- Tabulation.h - Context-sensitive slicing ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive backward slicing as a partially balanced
/// parentheses problem (paper Section 5.3, following Reps [20] and
/// Horwitz-Reps-Binkley [11]): summary edges are computed by a
/// tabulation-style worklist algorithm, then a slice is two phases of
/// reachability — phase 1 ascends into callers (never follows
/// param-out), phase 2 descends into callees (never follows param-in).
///
/// Use with an SDG built with SDGOptions::ContextSensitive; on a
/// context-insensitive graph the direct interprocedural heap edges
/// would bypass the parenthesis matching.
///
/// Summary computation is the dominant cost and depends only on
/// (graph, mode) — not on the seed — so a SummaryCache can share one
/// summary set across every query of a batch (and across batches,
/// until the graph mutates: entries are keyed by the SDG's epoch).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_TABULATION_H
#define THINSLICER_SLICER_TABULATION_H

#include "slicer/Slicer.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace tsl {

/// Cross-query cache of tabulation summary sets, keyed by
/// (graph identity, graph epoch, slice mode). A mutation of the graph
/// bumps its epoch, so stale entries can never be served; they are
/// evicted when a fresh entry for the same graph is stored. Only
/// complete (non-degraded) summary sets are cached — a partial set is
/// an artifact of one query's budget, not of the graph. Thread-safe.
class SummaryCache {
public:
  /// One cached summary set: the summary adjacency (for each
  /// actual-out node, its summary sources) plus its statistics.
  struct Entry {
    std::unordered_map<unsigned, std::vector<unsigned>> SummaryIn;
    unsigned NumSummaries = 0;
    bool Partial = false;
    std::string PartialReason;
  };

  /// Returns the cached entry for (\p G at its current epoch, \p Mode)
  /// or null on a miss.
  std::shared_ptr<const Entry> lookup(const SDG &G, SliceMode Mode);

  /// Publishes \p E for (\p G at its current epoch, \p Mode), evicting
  /// entries of older epochs of the same graph. Partial entries are
  /// ignored.
  void store(const SDG &G, SliceMode Mode, std::shared_ptr<const Entry> E);

  uint64_t hits() const;
  uint64_t misses() const;
  std::size_t size() const;
  void clear();

private:
  using Key = std::tuple<const SDG *, uint64_t, SliceMode>;

  mutable std::mutex Mu;
  std::map<Key, std::shared_ptr<const Entry>> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Context-sensitive slicer with cached summary edges for one SDG and
/// slice mode. Summary computation runs once in the constructor —
/// or is reused from a SummaryCache hit — mirroring the paper's
/// observation that the heap-parameter SDG (not the traversal) is the
/// scalability bottleneck. A constructed slicer is immutable; slice()
/// is const and safe to call from multiple threads concurrently (each
/// call charging a SharedBudgetGate instead of a local gate).
class TabulationSlicer {
public:
  /// Computes summary edges eagerly, consulting \p Cache first when
  /// given (and publishing the result to it). When \p Budget is
  /// exhausted mid-computation, the summary set stays partial — slices
  /// are then subsets of the full context-sensitive slice and are
  /// marked Degraded.
  TabulationSlicer(const SDG &G, SliceMode Mode,
                   const AnalysisBudget *Budget = nullptr,
                   SummaryCache *Cache = nullptr);

  /// Two-phase backward slice from \p Seed.
  SliceResult slice(const Instr *Seed) const;
  SliceResult slice(const std::vector<const Instr *> &Seeds) const;

  /// Worker-thread variant: polls the batch-wide \p Shared gate and
  /// constructs no local BudgetGate (see sliceBackwardNodes).
  SliceResult slice(const std::vector<const Instr *> &Seeds,
                    SharedBudgetGate *Shared) const;

  /// Number of summary edges discovered (a cost statistic).
  unsigned numSummaryEdges() const { return S->NumSummaries; }

  /// True when summary computation ran to its fixed point.
  bool summariesComplete() const { return !S->Partial; }

  /// True when the summary set was served from the cache instead of
  /// recomputed.
  bool summariesFromCache() const { return FromCache; }

private:
  /// Intraprocedural (same-level) edge kinds for this mode.
  EdgeKindMask intraMask() const {
    EdgeKindMask Mask = edgeKindMask(SDGEdgeKind::Flow);
    if (Mode == SliceMode::Traditional)
      Mask |= edgeKindMask(SDGEdgeKind::BaseFlow) |
              edgeKindMask(SDGEdgeKind::Control);
    return Mask;
  }

  static std::shared_ptr<const SummaryCache::Entry>
  computeSummaries(const SDG &G, SliceMode Mode, const AnalysisBudget *B);

  SliceResult sliceImpl(const std::vector<const Instr *> &Seeds,
                        SharedBudgetGate *Shared) const;

  const SDG &G;
  SliceMode Mode;
  const AnalysisBudget *B;
  std::shared_ptr<const SummaryCache::Entry> S;
  bool FromCache = false;
};

} // namespace tsl

#endif // THINSLICER_SLICER_TABULATION_H
