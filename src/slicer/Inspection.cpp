//===-- Inspection.cpp - BFS inspection-metric simulator ------------------------==//

#include "slicer/Inspection.h"

#include <deque>
#include <set>

using namespace tsl;

namespace {

bool isHeapAccess(const Instr *I) {
  switch (I->kind()) {
  case InstrKind::Load:
  case InstrKind::Store:
  case InstrKind::ArrayLoad:
  case InstrKind::ArrayStore:
    return true;
  default:
    return false;
  }
}

} // namespace

InspectionResult tsl::simulateInspection(const SDG &G,
                                         const InspectionQuery &Q) {
  InspectionResult R;
  R.InspectedStatements = Q.ChargedControlDeps;

  std::set<SourceLine> Remaining(Q.Desired.begin(), Q.Desired.end());
  std::set<SourceLine> Seen;

  BitSet Visited(G.numNodes());
  std::deque<unsigned> Queue;
  bool Dfs = Q.Strategy == InspectionStrategy::DFS;
  auto Root = [&](const Instr *I) {
    if (!I)
      return;
    for (unsigned Node : G.nodesFor(I)) // Every clone of the statement.
      if (Visited.insert(Node))
        Queue.push_back(Node);
  };
  Root(Q.Seed);
  if (Queue.empty() && Q.ControlPivots.empty()) {
    R.FoundAll = Remaining.empty();
    return R;
  }

  // The user explores the seed's frontier first; only when it is
  // exhausted without success do they follow the manually identified
  // control dependences and slice on from the conditionals.
  bool PivotsUsed = false;
  while (true) {
    if (Queue.empty()) {
      if (PivotsUsed || Q.ControlPivots.empty())
        break;
      PivotsUsed = true;
      for (const Instr *Pivot : Q.ControlPivots)
        Root(Pivot);
      if (Queue.empty())
        break;
    }
    unsigned Node;
    if (Dfs) {
      Node = Queue.back();
      Queue.pop_back();
    } else {
      Node = Queue.front();
      Queue.pop_front();
    }
    const SDGNode &N = G.node(Node);

    if (Q.RestrictStmts && N.isStmt() && !Q.RestrictStmts->count(N.I))
      continue; // Outside the restricting slice: not browsable.

    // Inspect: each distinct source statement costs one unit.
    if (N.isSourceStmt() && N.I->loc().isValid()) {
      SourceLine Line{N.M, N.I->loc().Line};
      if (Seen.insert(Line).second) {
        ++R.InspectedStatements;
        R.Order.push_back(Line);
        Remaining.erase(Line);
        if (Remaining.empty()) {
          R.FoundAll = true;
          return R;
        }
      }
    }

    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      bool Follow = sliceFollowsEdge(Q.Mode, E.K);
      // Never walk control edges; they are charged manually (Sec 6.1).
      if (E.K == SDGEdgeKind::Control)
        Follow = false;
      // Optional one-level aliasing exposure: follow base-pointer flow
      // into this heap access.
      if (!Follow && Q.ExpandAliasOneLevel && E.K == SDGEdgeKind::BaseFlow &&
          N.isStmt() && isHeapAccess(N.I))
        Follow = true;
      if (!Follow)
        continue;
      if (Visited.insert(E.From))
        Queue.push_back(E.From);
    }
  }

  R.FoundAll = Remaining.empty();
  return R;
}

InspectionResult
tsl::simulateInspection(const SDG &G, const Instr *Seed, SliceMode Mode,
                        const std::vector<SourceLine> &Desired,
                        unsigned ChargedControlDeps) {
  InspectionQuery Q;
  Q.Seed = Seed;
  Q.Mode = Mode;
  Q.Desired = Desired;
  Q.ChargedControlDeps = ChargedControlDeps;
  return simulateInspection(G, Q);
}
