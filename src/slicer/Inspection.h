//===-- Inspection.h - BFS inspection-metric simulator ----------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates realistic use of a slicing tool (paper Section 6.1): the
/// user explores statements in breadth-first order of dependence-graph
/// distance from the seed (as in CodeSurfer-style browsing, and as in
/// Renieris-Reiss [19]) until every desired statement has been found.
/// The reported number is how many distinct source statements were
/// inspected.
///
/// Control dependences follow the paper's methodology: the traversal
/// never walks control edges for either slicer; instead the manually
/// identified relevant control dependences are (a) charged to both
/// counts via ChargedControlDeps and (b) modeled as extra traversal
/// roots (ControlPivots) — the user reads the conditional next to the
/// slice and keeps slicing from it.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_INSPECTION_H
#define THINSLICER_SLICER_INSPECTION_H

#include "slicer/Slicer.h"

#include <unordered_set>
#include <vector>

namespace tsl {

/// How the simulated user orders their exploration. The paper uses
/// breadth-first distance (Sec. 6.1) and flags it as a threat to
/// validity; the depth-first alternative lets the ablation bench
/// quantify how much the conclusion depends on that choice.
enum class InspectionStrategy { BFS, DFS };

/// One simulated tool session.
struct InspectionQuery {
  const Instr *Seed = nullptr;
  SliceMode Mode = SliceMode::Thin;
  InspectionStrategy Strategy = InspectionStrategy::BFS;
  /// Statements whose discovery completes the task.
  std::vector<SourceLine> Desired;
  /// Manually identified control dependences, charged to the count.
  unsigned ChargedControlDeps = 0;
  /// Conditionals the user follows by hand (additional BFS roots,
  /// explored after the seed's own frontier at the same depth rules).
  std::vector<const Instr *> ControlPivots;
  /// The paper's nanoxml-5 configuration: when a heap access is
  /// inspected, also follow one level of base-pointer flow (exposing
  /// statements that explain the aliasing), then continue per Mode.
  bool ExpandAliasOneLevel = false;
  /// Optional restriction: traversal only enters statements in this
  /// set (used to simulate browsing a context-sensitively pruned
  /// slice with the same BFS discipline).
  const std::unordered_set<const Instr *> *RestrictStmts = nullptr;
};

/// Result of one simulated inspection session.
struct InspectionResult {
  /// Distinct source statements inspected until the last desired
  /// statement was found (including seed, desired statements, and the
  /// charged control dependences). Equals the full traversal count
  /// when FoundAll is false.
  unsigned InspectedStatements = 0;
  /// Whether every desired statement was reachable.
  bool FoundAll = false;
  /// The inspection order (distinct source lines, seed first).
  std::vector<SourceLine> Order;
};

/// Runs the breadth-first inspection simulation.
InspectionResult simulateInspection(const SDG &G, const InspectionQuery &Q);

/// Convenience wrapper for the common case.
InspectionResult simulateInspection(const SDG &G, const Instr *Seed,
                                    SliceMode Mode,
                                    const std::vector<SourceLine> &Desired,
                                    unsigned ChargedControlDeps = 0);

} // namespace tsl

#endif // THINSLICER_SLICER_INSPECTION_H
