//===-- Chop.cpp - Chopping (source-to-sink slices) ------------------------------==//

#include "slicer/Chop.h"

using namespace tsl;

SliceResult tsl::chop(const SDG &G, const Instr *Source, const Instr *Sink,
                      SliceMode Mode, const AnalysisBudget *Budget) {
  SliceResult Forward = sliceForward(G, Source, Mode, Budget);
  SliceResult Backward = sliceBackward(G, Sink, Mode, Budget);
  BitSet Nodes = Forward.nodeSet();
  Nodes.intersectWith(Backward.nodeSet());
  SliceResult R(&G, std::move(Nodes));
  if (!Forward.complete())
    R.markDegraded(Forward.degradedReason());
  if (!Backward.complete())
    R.markDegraded(Backward.degradedReason());
  return R;
}
