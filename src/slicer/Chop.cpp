//===-- Chop.cpp - Chopping (source-to-sink slices) ------------------------------==//

#include "slicer/Chop.h"

using namespace tsl;

SliceResult tsl::chop(const SDG &G, const Instr *Source, const Instr *Sink,
                      SliceMode Mode) {
  SliceResult Forward = sliceForward(G, Source, Mode);
  SliceResult Backward = sliceBackward(G, Sink, Mode);
  BitSet Nodes = Forward.nodeSet();
  Nodes.intersectWith(Backward.nodeSet());
  return SliceResult(&G, std::move(Nodes));
}
