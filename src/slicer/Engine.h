//===-- Engine.h - Batched slice-query engine -------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batched slicing over one finalized SDG: N seeds in, N SliceResults
/// out, in seed order. The engine deduplicates seeds that expand to
/// the same SDG node set (each unique query runs once and the result
/// is copied to every duplicate position) and fans work out across a
/// worker pool.
///
/// Context-insensitive batches run as SCC-condensed bit-parallel
/// label propagation: the mode-masked subgraph is condensed once
/// (cached per graph epoch and edge mask, so repeated batches reuse
/// it), queries are packed 64 per machine word, and one linear sweep
/// over the components in topological order answers a whole chunk —
/// all members of a strongly connected component provably belong to
/// exactly the same slices. Workers fan out across chunks.
///
/// Context-sensitive batches run the tabulation slicer per unique
/// query (workers fan out across queries), computing the summary set
/// once per batch and optionally reusing it across batches through a
/// SummaryCache.
///
/// Threading model: the finalized SDG is immutable and read
/// concurrently without locking. Everything that touches process
/// globals (TabulationSlicer construction, SharedBudgetGate
/// construction — both reach the FaultInjector) and the condensation
/// cache happens on the calling thread before workers start. Workers
/// share one SharedBudgetGate, so an AnalysisBudget passed to a batch
/// governs the batch's *total* slicing work; per-query results are
/// otherwise identical to the single-seed entry points.
///
/// Work fans out on a shared ThreadPool (see support/ThreadPool.h):
/// either one handed in at construction (the session threads its pool
/// through every stage) or a lazily created engine-owned pool. A
/// single-worker batch never touches a pool at all — it runs inline
/// on the calling thread, and no pool is created for it.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_ENGINE_H
#define THINSLICER_SLICER_ENGINE_H

#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace tsl {

class ThreadPool;

/// Configuration of one batched slice run.
struct BatchOptions {
  SliceMode Mode = SliceMode::Thin;
  /// Use the context-sensitive tabulation slicer (the SDG must have
  /// been built with SDGOptions::ContextSensitive).
  bool ContextSensitive = false;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  /// Clamped to the number of work items; 1 runs inline without
  /// spawning.
  unsigned Jobs = 0;
  /// Optional batch-wide budget (MaxSlicePops caps the *total* pops
  /// across all queries of the batch; see SharedBudgetGate).
  const AnalysisBudget *Budget = nullptr;
  /// Optional cross-batch summary cache for context-sensitive mode.
  SummaryCache *Summaries = nullptr;
};

/// What one batch did, for reporting and tests.
struct BatchStats {
  unsigned Queries = 0;       ///< Seeds requested.
  unsigned UniqueQueries = 0; ///< Distinct seed node sets actually run.
  unsigned Workers = 0;       ///< Worker threads used (1 = inline).
  bool SummariesReused = false; ///< CS summary set came from the cache.
  bool CondensationReused = false; ///< CI condensation came from the cache.
};

/// The SCC condensation of one mode-masked SDG subgraph (defined in
/// Engine.cpp); cached per (epoch, mask) inside the engine.
struct BatchCondensation;

/// Batched slice-query engine over one SDG. Construction finalizes
/// the graph if needed; sliceBackwardBatch() may be called repeatedly
/// (stats describe the most recent batch; the condensation cache
/// carries over).
class SliceEngine {
public:
  /// \p Pool, when non-null, is the shared worker pool batches fan
  /// out on (not owned; must outlive the engine). With a null pool
  /// the engine lazily creates its own the first time a batch asks
  /// for more than one worker.
  explicit SliceEngine(const SDG &G, ThreadPool *Pool = nullptr);
  ~SliceEngine();

  /// The pool batches currently fan out on: the one injected at
  /// construction, the lazily created owned pool, or null when no
  /// multi-worker batch has run yet (the single-worker path never
  /// creates one — see tests/engine_test.cpp).
  const ThreadPool *pool() const { return Pool ? Pool : OwnedPool.get(); }

  /// Backward-slices every seed, returning results in seed order.
  /// Results are identical to calling sliceBackward() /
  /// TabulationSlicer::slice() per seed (modulo batch-wide budget
  /// accounting, see BatchOptions::Budget).
  std::vector<SliceResult>
  sliceBackwardBatch(const std::vector<const Instr *> &Seeds,
                     const BatchOptions &Opts = {});

  const BatchStats &stats() const { return Stats; }

private:
  /// Condensation for \p Mask at the graph's current epoch, building
  /// and caching it on a miss. Stale-epoch entries are evicted.
  std::shared_ptr<const BatchCondensation> condensationFor(EdgeKindMask Mask);

  const SDG &G;
  ThreadPool *Pool = nullptr;
  std::unique_ptr<ThreadPool> OwnedPool;
  BatchStats Stats;
  std::mutex CondMu;
  std::map<std::pair<uint64_t, EdgeKindMask>,
           std::shared_ptr<const BatchCondensation>>
      CondCache;
};

} // namespace tsl

#endif // THINSLICER_SLICER_ENGINE_H
