//===-- Chop.h - Chopping (source-to-sink slices) ---------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chopping: the statements on dependence paths from a source to a
/// sink — the intersection of the source's forward slice with the
/// sink's backward slice. A thin chop answers "how does this value get
/// from here to there?" with producer statements only, the natural
/// question-form of the paper's Figure 1 walkthrough.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SLICER_CHOP_H
#define THINSLICER_SLICER_CHOP_H

#include "slicer/Slicer.h"

namespace tsl {

/// Statements lying on Mode-dependence paths from \p Source to
/// \p Sink. Empty when no such path exists. A budget-degraded
/// constituent slice degrades the chop (still a subset of the full
/// chop: intersecting subsets yields a subset).
SliceResult chop(const SDG &G, const Instr *Source, const Instr *Sink,
                 SliceMode Mode, const AnalysisBudget *Budget = nullptr);

} // namespace tsl

#endif // THINSLICER_SLICER_CHOP_H
