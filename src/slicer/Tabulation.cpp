//===-- Tabulation.cpp - Context-sensitive slicing ------------------------------==//

#include "slicer/Tabulation.h"

#include "support/BitSet.h"

#include <deque>

using namespace tsl;

TabulationSlicer::TabulationSlicer(const SDG &G, SliceMode Mode,
                                   const AnalysisBudget *Budget)
    : G(G), Mode(Mode), B(Budget) {
  computeSummaries();
}

void TabulationSlicer::computeSummaries() {
  // Path edges (FormalOut, Node): Node same-level-reaches FormalOut
  // within one procedure instance, using intraprocedural edges and
  // already-discovered summary edges. When a path edge reaches a
  // formal-in, a summary edge (actual source -> actual out) is emitted
  // at every matching call site.

  // Index formal-out nodes densely.
  std::vector<unsigned> FormalOuts;
  std::unordered_map<unsigned, unsigned> FormalOutIndex;
  for (const SDGNode &N : G.nodes()) {
    if (N.isFormalOut()) {
      FormalOutIndex.emplace(N.Id, static_cast<unsigned>(FormalOuts.size()));
      FormalOuts.push_back(N.Id);
    }
  }

  // ParamOut map: (site, formal-out) -> actual-out node. Exact keys:
  // a collision would emit a summary edge to the wrong call.
  std::map<std::pair<const CallInstr *, unsigned>, unsigned> ActualOutOf;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    const SDGEdge &E = G.edge(EdgeId);
    if (E.K == SDGEdgeKind::ParamOut)
      ActualOutOf.emplace(std::make_pair(E.Site, E.From), E.To);
  }

  // Path-edge state: per formal-out, the set of same-level reaching
  // nodes.
  std::vector<BitSet> Reaches(FormalOuts.size());
  std::deque<std::pair<unsigned, unsigned>> WL; // (foIdx, node)

  auto Propagate = [&](unsigned FoIdx, unsigned Node) {
    if (Reaches[FoIdx].insert(Node))
      WL.emplace_back(FoIdx, Node);
  };

  // Per actual-out node, the path edges seen so far (for re-triggering
  // when a summary into that actual-out appears later).
  std::unordered_map<unsigned, std::vector<unsigned>> PathAtNode;

  for (unsigned FoIdx = 0; FoIdx != FormalOuts.size(); ++FoIdx)
    Propagate(FoIdx, FormalOuts[FoIdx]);

  std::unordered_set<uint64_t> SummaryDedup;

  // A budget caps path-edge pops. Stopping early leaves the summary
  // set partial: slices then miss some summary shortcuts and
  // under-approximate the full context-sensitive slice (sound for
  // thin slicing's subset claim; marked Degraded on every slice).
  BudgetGate Gate(B, "tabulation.summary", B ? B->MaxSlicePops : 0);

  while (!WL.empty()) {
    if (Gate.spend()) {
      Partial = true;
      PartialReason = Gate.reason();
      break;
    }
    auto [FoIdx, Node] = WL.front();
    WL.pop_front();
    PathAtNode[Node].push_back(FoIdx);

    // Same-level expansion.
    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (intraEdge(E.K))
        Propagate(FoIdx, E.From);
    }
    auto SumIt = SummaryIn.find(Node);
    if (SumIt != SummaryIn.end())
      for (unsigned Src : SumIt->second)
        Propagate(FoIdx, Src);

    // Summary creation at formal-ins.
    const SDGNode &N = G.node(Node);
    if (!N.isFormalIn())
      continue;
    unsigned Fo = FormalOuts[FoIdx];
    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (E.K != SDGEdgeKind::ParamIn)
        continue;
      auto AoIt = ActualOutOf.find(std::make_pair(E.Site, Fo));
      if (AoIt == ActualOutOf.end())
        continue; // This call site never receives Fo's value.
      unsigned Ao = AoIt->second;
      unsigned Src = E.From;
      uint64_t Key = (static_cast<uint64_t>(Src) << 32) | Ao;
      if (!SummaryDedup.insert(Key).second)
        continue;
      SummaryIn[Ao].push_back(Src);
      ++NumSummaries;
      // Re-trigger path edges already sitting at the actual-out.
      for (unsigned Fo2Idx : PathAtNode[Ao])
        Propagate(Fo2Idx, Src);
    }
  }
}

SliceResult TabulationSlicer::slice(const Instr *Seed) const {
  return slice(std::vector<const Instr *>{Seed});
}

SliceResult
TabulationSlicer::slice(const std::vector<const Instr *> &Seeds) const {
  BudgetGate Gate(B, "slice.pop", B ? B->MaxSlicePops : 0);
  BitSet Visited(G.numNodes());
  std::deque<unsigned> Queue;

  auto Enqueue = [&](unsigned Node) {
    if (Visited.insert(Node))
      Queue.push_back(Node);
  };

  // Phase 1: ascend — intraprocedural edges, summaries, and param-in
  // (into callers); never param-out.
  BitSet Phase1(G.numNodes());
  for (const Instr *Seed : Seeds)
    for (unsigned Node : G.nodesFor(Seed))
      Enqueue(Node);
  while (!Queue.empty()) {
    if (Gate.spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    Phase1.insert(Node);
    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (intraEdge(E.K) || E.K == SDGEdgeKind::ParamIn)
        Enqueue(E.From);
    }
    auto SumIt = SummaryIn.find(Node);
    if (SumIt != SummaryIn.end())
      for (unsigned Src : SumIt->second)
        Enqueue(Src);
  }

  // Phase 2: descend — intraprocedural edges, summaries, and param-out
  // (into callees); never param-in.
  Phase1.forEach([&](unsigned Node) { Queue.push_back(Node); });
  while (!Queue.empty()) {
    if (Gate.spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    for (unsigned EdgeId : G.inEdges(Node)) {
      const SDGEdge &E = G.edge(EdgeId);
      if (intraEdge(E.K) || E.K == SDGEdgeKind::ParamOut)
        Enqueue(E.From);
    }
    auto SumIt = SummaryIn.find(Node);
    if (SumIt != SummaryIn.end())
      for (unsigned Src : SumIt->second)
        Enqueue(Src);
  }

  SliceResult R(&G, std::move(Visited));
  if (Partial)
    R.markDegraded(PartialReason);
  if (Gate.exhausted())
    R.markDegraded(Gate.reason());
  return R;
}
