//===-- Tabulation.cpp - Context-sensitive slicing ------------------------------==//

#include "slicer/Tabulation.h"

#include "support/BitSet.h"

#include <deque>
#include <optional>

using namespace tsl;

//===----------------------------------------------------------------------===//
// SummaryCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const SummaryCache::Entry>
SummaryCache::lookup(const SDG &G, SliceMode Mode) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(Key{&G, G.epoch(), Mode});
  if (It == Map.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return It->second;
}

void SummaryCache::store(const SDG &G, SliceMode Mode,
                         std::shared_ptr<const Entry> E) {
  if (!E || E->Partial)
    return; // A partial set reflects one query's budget, not the graph.
  std::lock_guard<std::mutex> L(Mu);
  // Evict entries of older epochs of the same graph: they can never be
  // served again (epochs only grow).
  for (auto It = Map.begin(); It != Map.end();) {
    if (std::get<0>(It->first) == &G && std::get<1>(It->first) != G.epoch())
      It = Map.erase(It);
    else
      ++It;
  }
  Map[Key{&G, G.epoch(), Mode}] = std::move(E);
}

uint64_t SummaryCache::hits() const {
  std::lock_guard<std::mutex> L(Mu);
  return Hits;
}

uint64_t SummaryCache::misses() const {
  std::lock_guard<std::mutex> L(Mu);
  return Misses;
}

std::size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Map.clear();
  Hits = Misses = 0;
}

//===----------------------------------------------------------------------===//
// TabulationSlicer
//===----------------------------------------------------------------------===//

TabulationSlicer::TabulationSlicer(const SDG &G, SliceMode Mode,
                                   const AnalysisBudget *Budget,
                                   SummaryCache *Cache)
    : G(G), Mode(Mode), B(Budget) {
  G.ensureFinalized();
  if (Cache)
    if ((S = Cache->lookup(G, Mode))) {
      FromCache = true;
      return;
    }
  S = computeSummaries(G, Mode, B);
  if (Cache)
    Cache->store(G, Mode, S);
}

std::shared_ptr<const SummaryCache::Entry>
TabulationSlicer::computeSummaries(const SDG &G, SliceMode Mode,
                                   const AnalysisBudget *B) {
  // Path edges (FormalOut, Node): Node same-level-reaches FormalOut
  // within one procedure instance, using intraprocedural edges and
  // already-discovered summary edges. When a path edge reaches a
  // formal-in, a summary edge (actual source -> actual out) is emitted
  // at every matching call site.
  auto E = std::make_shared<SummaryCache::Entry>();

  EdgeKindMask IntraMask = edgeKindMask(SDGEdgeKind::Flow);
  if (Mode == SliceMode::Traditional)
    IntraMask |= edgeKindMask(SDGEdgeKind::BaseFlow) |
                 edgeKindMask(SDGEdgeKind::Control);
  const EdgeKindRuns Intra = edgeKindRuns(IntraMask);

  // Index formal-out nodes densely.
  std::vector<unsigned> FormalOuts;
  std::unordered_map<unsigned, unsigned> FormalOutIndex;
  for (const SDGNode &N : G.nodes()) {
    if (N.isFormalOut()) {
      FormalOutIndex.emplace(N.Id, static_cast<unsigned>(FormalOuts.size()));
      FormalOuts.push_back(N.Id);
    }
  }

  // ParamOut map: (site, formal-out) -> actual-out node. Exact keys:
  // a collision would emit a summary edge to the wrong call.
  std::map<std::pair<const CallInstr *, unsigned>, unsigned> ActualOutOf;
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    const SDGEdge &Ed = G.edge(EdgeId);
    if (Ed.K == SDGEdgeKind::ParamOut)
      ActualOutOf.emplace(std::make_pair(Ed.Site, Ed.From), Ed.To);
  }

  // Path-edge state: per formal-out, the set of same-level reaching
  // nodes.
  std::vector<BitSet> Reaches(FormalOuts.size());
  std::deque<std::pair<unsigned, unsigned>> WL; // (foIdx, node)

  auto Propagate = [&](unsigned FoIdx, unsigned Node) {
    if (Reaches[FoIdx].insert(Node))
      WL.emplace_back(FoIdx, Node);
  };

  // Per actual-out node, the path edges seen so far (for re-triggering
  // when a summary into that actual-out appears later).
  std::unordered_map<unsigned, std::vector<unsigned>> PathAtNode;

  for (unsigned FoIdx = 0; FoIdx != FormalOuts.size(); ++FoIdx)
    Propagate(FoIdx, FormalOuts[FoIdx]);

  std::unordered_set<uint64_t> SummaryDedup;

  // A budget caps path-edge pops. Stopping early leaves the summary
  // set partial: slices then miss some summary shortcuts and
  // under-approximate the full context-sensitive slice (sound for
  // thin slicing's subset claim; marked Degraded on every slice).
  BudgetGate Gate(B, "tabulation.summary", B ? B->MaxSlicePops : 0);

  while (!WL.empty()) {
    if (Gate.spend()) {
      E->Partial = true;
      E->PartialReason = Gate.reason();
      break;
    }
    auto [FoIdx, Node] = WL.front();
    WL.pop_front();
    PathAtNode[Node].push_back(FoIdx);

    // Same-level expansion over the kind-partitioned CSR rows.
    G.forEachInNeighbor(Node, Intra,
                        [&](unsigned From) { Propagate(FoIdx, From); });
    auto SumIt = E->SummaryIn.find(Node);
    if (SumIt != E->SummaryIn.end())
      for (unsigned Src : SumIt->second)
        Propagate(FoIdx, Src);

    // Summary creation at formal-ins.
    const SDGNode &N = G.node(Node);
    if (!N.isFormalIn())
      continue;
    unsigned Fo = FormalOuts[FoIdx];
    for (unsigned EdgeId : G.inEdgesOfKind(Node, SDGEdgeKind::ParamIn)) {
      const SDGEdge &Ed = G.edge(EdgeId);
      auto AoIt = ActualOutOf.find(std::make_pair(Ed.Site, Fo));
      if (AoIt == ActualOutOf.end())
        continue; // This call site never receives Fo's value.
      unsigned Ao = AoIt->second;
      unsigned Src = Ed.From;
      uint64_t Key = (static_cast<uint64_t>(Src) << 32) | Ao;
      if (!SummaryDedup.insert(Key).second)
        continue;
      E->SummaryIn[Ao].push_back(Src);
      ++E->NumSummaries;
      // Re-trigger path edges already sitting at the actual-out.
      for (unsigned Fo2Idx : PathAtNode[Ao])
        Propagate(Fo2Idx, Src);
    }
  }
  return E;
}

SliceResult TabulationSlicer::slice(const Instr *Seed) const {
  return sliceImpl(std::vector<const Instr *>{Seed}, nullptr);
}

SliceResult
TabulationSlicer::slice(const std::vector<const Instr *> &Seeds) const {
  return sliceImpl(Seeds, nullptr);
}

SliceResult TabulationSlicer::slice(const std::vector<const Instr *> &Seeds,
                                    SharedBudgetGate *Shared) const {
  return sliceImpl(Seeds, Shared);
}

SliceResult
TabulationSlicer::sliceImpl(const std::vector<const Instr *> &Seeds,
                            SharedBudgetGate *Shared) const {
  std::optional<BudgetGate> Local;
  if (!Shared)
    Local.emplace(B, "slice.pop", B ? B->MaxSlicePops : 0);
  auto Spend = [&]() { return Shared ? Shared->spend() : Local->spend(); };

  const EdgeKindMask Intra = intraMask();
  const EdgeKindRuns Ascend =
      edgeKindRuns(Intra | edgeKindMask(SDGEdgeKind::ParamIn));
  const EdgeKindRuns Descend =
      edgeKindRuns(Intra | edgeKindMask(SDGEdgeKind::ParamOut));

  BitSet Visited(G.numNodes());
  std::deque<unsigned> Queue;

  auto Enqueue = [&](unsigned Node) {
    if (Visited.insert(Node))
      Queue.push_back(Node);
  };
  auto FollowSummaries = [&](unsigned Node) {
    auto SumIt = S->SummaryIn.find(Node);
    if (SumIt != S->SummaryIn.end())
      for (unsigned Src : SumIt->second)
        Enqueue(Src);
  };

  // Phase 1: ascend — intraprocedural edges, summaries, and param-in
  // (into callers); never param-out.
  BitSet Phase1(G.numNodes());
  for (const Instr *Seed : Seeds)
    for (unsigned Node : G.nodesFor(Seed))
      Enqueue(Node);
  while (!Queue.empty()) {
    if (Spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    Phase1.insert(Node);
    G.forEachInNeighbor(Node, Ascend, Enqueue);
    FollowSummaries(Node);
  }

  // Phase 2: descend — intraprocedural edges, summaries, and param-out
  // (into callees); never param-in.
  Phase1.forEach([&](unsigned Node) { Queue.push_back(Node); });
  while (!Queue.empty()) {
    if (Spend())
      break;
    unsigned Node = Queue.front();
    Queue.pop_front();
    G.forEachInNeighbor(Node, Descend, Enqueue);
    FollowSummaries(Node);
  }

  SliceResult R(&G, std::move(Visited));
  if (S->Partial)
    R.markDegraded(S->PartialReason);
  if (Shared ? Shared->exhausted() : Local->exhausted())
    R.markDegraded(Shared ? Shared->reason() : Local->reason());
  return R;
}
