//===-- PointsTo.cpp - Andersen points-to analysis ----------------------------==//
//
// Solver core. Three composable optimizations over the naive
// full-set FIFO solver, all selectable through PTAOptions:
//
//  - difference propagation: every node keeps a Delta of objects that
//    arrived since its last visit; only the delta flows along copy
//    edges and into deferred constraints. New edges and constraints
//    are seeded with the full current set when created, so each
//    object reaches each edge/constraint at least once and the
//    deferred-constraint handlers stay idempotent.
//
//  - lazy cycle detection (Hardekopf–Lin): when a propagation along
//    an unfiltered copy edge changes nothing, the edge is checked
//    once for participation in a copy-edge cycle; detected SCCs are
//    collapsed onto a representative through a union-find. Filtered
//    (cast) edges never collapse: they are not identity flow.
//
//  - priority worklists: least-recently-fired and periodically
//    recomputed topological order (see support/Worklist.h).
//
// Merging nodes conservatively re-delivers the merged points-to set
// (Delta := Pts): deferred constraints are idempotent (copy edges,
// call graph edges and object insertion all dedup), so re-delivery
// trades a little work for not tracking per-constraint Done sets.
//
//===----------------------------------------------------------------------===//

#include "pta/PointsTo.h"

#include "cg/CHA.h"
#include "support/ThreadPool.h"
#include "support/Worklist.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>
#include <tuple>
#include <unordered_set>

using namespace tsl;

std::string SolverStats::str() const {
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "pta: %u nodes (%u reps), %u copy edges, %u constraints, "
           "%u objects\n"
           "pta: %llu pops, %llu propagations (%llu no-change), "
           "%llu delta bits moved, %llu constraint evals\n"
           "pta: %u cycles collapsed, %u nodes merged\n"
           "pta: solve %.6fs, finalize %.6fs\n",
           NumNodes, NumRepNodes, NumCopyEdges, NumConstraints, NumObjects,
           static_cast<unsigned long long>(WorklistPops),
           static_cast<unsigned long long>(Propagations),
           static_cast<unsigned long long>(NoChangePropagations),
           static_cast<unsigned long long>(DeltaBitsMoved),
           static_cast<unsigned long long>(ConstraintEvals), CyclesCollapsed,
           NodesMerged, SolveSeconds, FinalizeSeconds);
  return Buf;
}

namespace {

/// Worklist-based subset solver with on-the-fly call graph.
class Solver final : public PointsToResult {
public:
  Solver(Program &P, const PTAOptions &Opts)
      : P(P), Opts(Opts), CH(P) {}

  void run();

  //===------------------------------------------------------------------===//
  // PointsToResult
  //===------------------------------------------------------------------===//

  const std::vector<AbstractObject> &objects() const override {
    return Objects;
  }

  unsigned contextObject(unsigned Ctx) const override {
    return Ctx < CtxObject.size() ? CtxObject[Ctx] : ~0u;
  }

  const BitSet &pointsTo(const Local *L) const override {
    if (Coarse)
      return isPointer(L) ? AllObjects : EmptySet;
    auto It = Merged.find(L);
    return It == Merged.end() ? EmptySet : It->second;
  }

  const BitSet &pointsTo(const Local *L, unsigned Ctx) const override {
    if (Coarse)
      return isPointer(L) ? AllObjects : EmptySet;
    auto ByCtx = LocalNodes.find(L);
    if (ByCtx == LocalNodes.end())
      return EmptySet;
    auto It = ByCtx->second.find(Ctx);
    return It == ByCtx->second.end() ? EmptySet
                                     : Nodes[findConst(It->second)].Pts;
  }

  const CallGraph &callGraph() const override {
    return Coarse ? *CoarseCG : CG;
  }
  const ClassHierarchy &hierarchy() const override { return CH; }

  bool castCannotFail(const CastInstr *Cast) const override {
    const BitSet &Pts = pointsTo(Cast->src());
    bool Safe = true;
    Pts.forEach([&](unsigned ObjId) {
      if (!CH.isSubtype(Objects[ObjId].Ty, Cast->targetType()))
        Safe = false;
    });
    return Safe;
  }

  unsigned numConstraintNodes() const override {
    return static_cast<unsigned>(Nodes.size());
  }

  const SolverStats &stats() const override { return Stats; }

  const StageReport &report() const override { return Report; }

  PTAUpdateResult applyIncrementalUpdate(const PTAUpdateRequest &Req) override;

private:
  struct NodeData {
    BitSet Pts;
    /// Objects added since this node last propagated (difference
    /// propagation only).
    BitSet Delta;
    /// Copy edges: (target node, optional type filter for casts).
    /// Targets may be stale after cycle collapsing; resolve through
    /// find() before use.
    std::vector<std::pair<unsigned, const Type *>> Succs;
    /// Indices of constraints triggered by this node's points-to set.
    std::vector<unsigned> Cons;
  };

  struct Constraint {
    enum class Kind { Load, Store, ArrLoad, ArrStore, Call } K;
    const Instr *I;
    unsigned Ctx; ///< Context of the method containing I.
  };

  //===------------------------------------------------------------------===//
  // Union-find over constraint-graph nodes (cycle collapsing)
  //===------------------------------------------------------------------===//

  unsigned find(unsigned N) {
    while (Rep[N] != N) {
      Rep[N] = Rep[Rep[N]]; // Path halving.
      N = Rep[N];
    }
    return N;
  }

  unsigned findConst(unsigned N) const {
    while (Rep[N] != N)
      N = Rep[N];
    return N;
  }

  /// Merges \p B into \p A (both resolved to representatives) and
  /// schedules a conservative re-delivery of the merged set.
  unsigned unify(unsigned A, unsigned B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    Rep[B] = A;
    NodeData &NA = Nodes[A];
    NodeData &NB = Nodes[B];
    NA.Pts.unionWith(NB.Pts);
    NA.Succs.insert(NA.Succs.end(), NB.Succs.begin(), NB.Succs.end());
    NA.Cons.insert(NA.Cons.end(), NB.Cons.begin(), NB.Cons.end());
    NB = NodeData(); // Release the merged node's storage.
    if (Opts.DeltaPropagation)
      NA.Delta = NA.Pts;
    ++Stats.NodesMerged;
    pushNode(A);
    return A;
  }

  //===------------------------------------------------------------------===//
  // Worklist policy dispatch
  //===------------------------------------------------------------------===//

  void pushNode(unsigned N) {
    N = find(N);
    if (Opts.Policy == WorklistPolicy::FIFO)
      FifoWL.push(N);
    else
      PrioWL.push(N);
  }

  unsigned popNode() {
    if (Opts.Policy == WorklistPolicy::FIFO)
      return FifoWL.pop();
    return PrioWL.pop();
  }

  bool worklistEmpty() const {
    return Opts.Policy == WorklistPolicy::FIFO ? FifoWL.empty()
                                               : PrioWL.empty();
  }

  /// Recomputes topological priorities (reverse postorder over the
  /// rep-resolved copy edge graph). Called when enough edges were
  /// added since the last sort that the old order is stale.
  void recomputeTopoPriorities();

  //===------------------------------------------------------------------===//
  // Node management
  //===------------------------------------------------------------------===//

  unsigned newNode() {
    unsigned Id = static_cast<unsigned>(Nodes.size());
    Nodes.emplace_back();
    Rep.push_back(Id);
    if (Opts.Policy == WorklistPolicy::Topo)
      PrioWL.setPriority(Id, TopoPrioBase + Id);
    return Id;
  }

  unsigned localNode(const Local *L, unsigned Ctx) {
    auto [It, New] = LocalNodes[L].emplace(Ctx, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned fieldNode(unsigned Obj, const Field *F) {
    // Exact: both components get 32 disjoint bits.
    uint64_t Key = (static_cast<uint64_t>(Obj) << 32) | F->id();
    auto [It, New] = FieldNodes.emplace(Key, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned elemNode(unsigned Obj) {
    auto [It, New] = ElemNodes.emplace(Obj, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned staticNode(const Field *F) {
    auto [It, New] = StaticNodes.emplace(F, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned retNode(const Method *M, unsigned Ctx) {
    // Exact: both components get 32 disjoint bits.
    uint64_t Key = (static_cast<uint64_t>(M->id()) << 32) | Ctx;
    auto [It, New] = RetNodes.emplace(Key, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  //===------------------------------------------------------------------===//
  // Objects and contexts
  //===------------------------------------------------------------------===//

  unsigned getObject(const Instr *Site, unsigned AllocCtx, const Type *Ty) {
    auto [It, New] = ObjIndex[Site].emplace(AllocCtx, 0);
    if (!New)
      return It->second;
    unsigned Depth = 0;
    if (AllocCtx != 0)
      Depth = Objects[CtxObject[AllocCtx]].CtxDepth + 1;
    unsigned Id = static_cast<unsigned>(Objects.size());
    Objects.push_back({Site, AllocCtx, Ty, Depth, Id});
    It->second = Id;
    return Id;
  }

  unsigned ctxForObject(unsigned Obj) {
    auto [It, New] = ObjCtx.emplace(Obj, 0);
    if (New) {
      It->second = static_cast<unsigned>(CtxObject.size());
      CtxObject.push_back(Obj);
    }
    return It->second;
  }

  bool isContainerClass(const ClassDef *C) const {
    return C && C->id() < IsContainer.size() && IsContainer[C->id()];
  }

  //===------------------------------------------------------------------===//
  // Propagation primitives
  //===------------------------------------------------------------------===//

  void addObject(unsigned Node, unsigned Obj) {
    unsigned N = find(Node);
    if (Nodes[N].Pts.insert(Obj)) {
      if (Opts.DeltaPropagation)
        Nodes[N].Delta.insert(Obj);
      pushNode(N);
    }
  }

  /// Unions \p From (filtered by \p Filter) into \p Dst's set;
  /// returns true when \p Dst changed. \p Dst must be a
  /// representative.
  bool flowInto(unsigned Dst, const BitSet &From, const Type *Filter) {
    NodeData &D = Nodes[Dst];
    if (&From == &D.Pts)
      return false; // Self-union is a no-op (and would mutate during forEach).
    bool Changed = false;
    if (!Filter) {
      Changed = Opts.DeltaPropagation
                    ? D.Pts.unionWithReturningChanged(From, D.Delta)
                    : D.Pts.unionWith(From);
    } else {
      From.forEach([&](unsigned Obj) {
        if (CH.isSubtype(Objects[Obj].Ty, Filter) && D.Pts.insert(Obj)) {
          if (Opts.DeltaPropagation)
            D.Delta.insert(Obj);
          Changed = true;
        }
      });
    }
    if (Changed) {
      ++Stats.Propagations;
      pushNode(Dst);
    } else {
      ++Stats.NoChangePropagations;
    }
    return Changed;
  }

  void addCopyEdge(unsigned Src, unsigned Dst, const Type *Filter = nullptr) {
    Src = find(Src);
    Dst = find(Dst);
    if (Src == Dst && !Filter)
      return;
    for (const auto &[Existing, F] : Nodes[Src].Succs)
      if (find(Existing) == Dst && F == Filter)
        return;
    Nodes[Src].Succs.emplace_back(Dst, Filter);
    ++NumCopyEdges;
    // Seed the new edge with the full current set so delta
    // propagation never misses objects that arrived before the edge.
    flowInto(Dst, Nodes[Src].Pts, Filter);
  }

  void attachConstraint(unsigned Node, Constraint::Kind K, const Instr *I,
                        unsigned Ctx) {
    Node = find(Node);
    Constraints.push_back({K, I, Ctx});
    unsigned Idx = static_cast<unsigned>(Constraints.size() - 1);
    Nodes[Node].Cons.push_back(Idx);
    // Seed with the full current set (same reasoning as addCopyEdge).
    applyConstraint(Idx, Nodes[Node].Pts);
  }

  void applyConstraint(unsigned ConsIdx, const BitSet &Pts);
  void applyCall(const CallInstr *Call, unsigned CallerCtx, unsigned Obj);

  //===------------------------------------------------------------------===//
  // Lazy cycle detection
  //===------------------------------------------------------------------===//

  void maybeDetectCycle(unsigned Src, unsigned Dst);
  void collapseCyclesFrom(unsigned Start);

  //===------------------------------------------------------------------===//
  // Method processing
  //===------------------------------------------------------------------===//

  void solveLoop(BudgetGate &Gate);
  void solveLoopParallel(BudgetGate &Gate);
  void degradeToCoarse(const BudgetGate &Gate);
  void processMethodCtx(unsigned MCId);
  void processInstr(const Instr *I, Method *M, unsigned Ctx, unsigned MCId);
  void wireCall(unsigned CallerMC, const CallInstr *Call, unsigned CallerCtx,
                Method *Target, unsigned CalleeCtx, unsigned BindObj,
                bool BindReceiverObject);

  const std::vector<Local *> &paramLocals(const Method *M);

  static bool isPointer(const Local *L) { return L->type()->isReference(); }

  //===------------------------------------------------------------------===//
  // State
  //===------------------------------------------------------------------===//

  Program &P;
  PTAOptions Opts;
  ClassHierarchy CH;
  CallGraph CG;

  std::vector<AbstractObject> Objects;
  std::unordered_map<const Instr *, std::unordered_map<unsigned, unsigned>>
      ObjIndex;

  std::vector<NodeData> Nodes;
  std::vector<unsigned> Rep; ///< Union-find parents; Rep[n]==n for reps.
  std::unordered_map<const Local *, std::unordered_map<unsigned, unsigned>>
      LocalNodes;
  std::unordered_map<uint64_t, unsigned> FieldNodes;
  std::unordered_map<unsigned, unsigned> ElemNodes;
  std::unordered_map<const Field *, unsigned> StaticNodes;
  std::unordered_map<uint64_t, unsigned> RetNodes;

  std::vector<Constraint> Constraints;
  Worklist FifoWL;
  PriorityWorklist PrioWL;
  uint64_t LRFClock = 0;
  uint64_t TopoPrioBase = 0; ///< Offset for nodes born after a sort.
  unsigned NumCopyEdges = 0;
  unsigned TopoResortAt = 32; ///< Edge count that triggers a re-sort.
  std::unordered_set<uint64_t> LCDTried; ///< (src,dst) rep pairs checked.
  std::vector<bool> ProcessedMC;

  std::vector<unsigned> CtxObject = {~0u}; ///< Ctx id -> defining object.
  std::unordered_map<unsigned, unsigned> ObjCtx;
  std::vector<bool> IsContainer;

  std::unordered_map<const Method *, std::vector<Local *>> ParamCache;
  std::unordered_map<const Local *, BitSet> Merged;
  SolverStats Stats;
  StageReport Report{"pta", StageStatus::Complete, "", "", 0, 0};
  BitSet EmptySet;

  /// Coarse-fallback state (budget exhaustion): every reference local
  /// points to every allocation site, and dispatch comes from the
  /// budget-independent CHA call graph.
  bool Coarse = false;
  std::unique_ptr<CallGraph> CoarseCG;
  BitSet AllObjects;
};

} // namespace

const std::vector<Local *> &Solver::paramLocals(const Method *M) {
  auto It = ParamCache.find(M);
  if (It != ParamCache.end())
    return It->second;
  std::vector<Local *> Params(M->numFormals(), nullptr);
  if (M->entry())
    for (const auto &I : M->entry()->instrs())
      if (const auto *PI = dyn_cast<ParamInstr>(I.get()))
        Params[PI->index()] = PI->dest();
  return ParamCache.emplace(M, std::move(Params)).first->second;
}

void Solver::run() {
  auto SolveStart = std::chrono::steady_clock::now();

  // Mark container classes by name.
  IsContainer.assign(P.classes().size(), false);
  if (Opts.ObjSensContainers) {
    for (const std::string &Name : Opts.ContainerClasses) {
      Symbol Sym = P.strings().lookup(Name);
      if (!Sym)
        continue;
      if (ClassDef *C = P.findClass(Sym))
        IsContainer[C->id()] = true;
    }
  }

  Method *Main = P.mainMethod();
  assert(Main && "points-to analysis needs an entry point");
  unsigned Entry = CG.getOrCreateNode(Main, 0);
  ProcessedMC.resize(1, false);
  processMethodCtx(Entry);

  BudgetGate Gate(Opts.Budget, "pta.solve",
                  Opts.Budget ? Opts.Budget->MaxPtaPropagations : 0);
  if (Opts.ParallelFrontier && Opts.DeltaPropagation)
    solveLoopParallel(Gate);
  else
    solveLoop(Gate);

  auto SolveEnd = std::chrono::steady_clock::now();

  if (Gate.exhausted()) {
    degradeToCoarse(Gate);
  } else {
    // Fully compress the union-find so post-solve queries are O(depth 1).
    for (unsigned I = 0, E = static_cast<unsigned>(Rep.size()); I != E; ++I)
      Rep[I] = find(I);

    // Finalize context-merged per-local sets for client queries.
    for (const auto &[L, ByCtx] : LocalNodes)
      for (const auto &[Ctx, Node] : ByCtx) {
        (void)Ctx;
        Merged[L].unionWith(Nodes[find(Node)].Pts);
      }
  }

  auto FinalizeEnd = std::chrono::steady_clock::now();

  Stats.NumNodes = static_cast<unsigned>(Nodes.size());
  Stats.NumRepNodes = 0;
  for (unsigned I = 0, E = static_cast<unsigned>(Rep.size()); I != E; ++I)
    Stats.NumRepNodes += Rep[I] == I;
  Stats.NumCopyEdges = NumCopyEdges;
  Stats.NumConstraints = static_cast<unsigned>(Constraints.size());
  Stats.NumObjects = static_cast<unsigned>(Objects.size());
  Stats.SolveSeconds =
      std::chrono::duration<double>(SolveEnd - SolveStart).count();
  Stats.FinalizeSeconds =
      std::chrono::duration<double>(FinalizeEnd - SolveEnd).count();
  Report.StepsUsed = Stats.Propagations;
  Report.Seconds = Stats.SolveSeconds + Stats.FinalizeSeconds;
}

/// Budget fallback: discard the partial subset solution and switch to
/// the coarsest sound answer — a CHA call graph (independent of
/// points-to facts) and an all-heap points-to relation where every
/// reference local may point to every allocation site in the program.
/// Both over-approximate any subset-based fixed point, so clients
/// (ModRef, SDG aliasing, dispatch) stay sound, just imprecise.
void Solver::degradeToCoarse(const BudgetGate &Gate) {
  Coarse = true;
  CoarseCG = buildCHACallGraph(P, CH);

  // Rebuild the object table from scratch: one context-insensitive
  // abstract object per allocation site, covering every method (a
  // superset of any reachable-code scan).
  Objects.clear();
  ObjIndex.clear();
  ObjCtx.clear();
  CtxObject.assign(1, ~0u);
  TypeTable &TT = P.types();
  for (const auto &M : P.methods())
    for (const Instr *I : M->instrs())
      switch (I->kind()) {
      case InstrKind::New:
        getObject(I, 0, TT.classType(cast<NewInstr>(I)->allocatedClass()));
        break;
      case InstrKind::NewArray:
        getObject(I, 0, TT.arrayType(cast<NewArrayInstr>(I)->elementType()));
        break;
      case InstrKind::ConstString:
        getObject(I, 0, TT.stringType());
        break;
      case InstrKind::Read:
        if (cast<ReadInstr>(I)->readKind() == ReadKind::Line)
          getObject(I, 0, TT.stringType());
        break;
      case InstrKind::StrOp:
        if (cast<StrOpInstr>(I)->allocatesString())
          getObject(I, 0, TT.stringType());
        break;
      default:
        break;
      }

  AllObjects.clear();
  for (unsigned Id = 0, E = static_cast<unsigned>(Objects.size()); Id != E;
       ++Id)
    AllObjects.insert(Id);

  Report.Status = StageStatus::Degraded;
  Report.Reason = Gate.reason();
  Report.Fallback = "CHA call graph + all-heap points-to";
}

void Solver::solveLoop(BudgetGate &Gate) {
  // Hoisted scratch buffers: the loop body runs once per worklist pop
  // and must not allocate on the happy path.
  BitSet Moved;
  std::vector<std::pair<unsigned, const Type *>> Succs;
  std::vector<unsigned> Cons;

  while (!worklistEmpty()) {
    if (Gate.poll(Stats.Propagations))
      return; // Budget exhausted; run() degrades to the coarse result.
    if (Opts.Policy == WorklistPolicy::Topo && NumCopyEdges >= TopoResortAt)
      recomputeTopoPriorities();

    unsigned N = find(popNode());
    ++Stats.WorklistPops;
    if (Opts.Policy == WorklistPolicy::LRF)
      PrioWL.setPriority(N, ++LRFClock);

    // What this visit pushes downstream: the delta accumulated since
    // the node's last visit, or (naive mode) the full set. The swap
    // recycles the drained delta's storage into the node.
    if (Opts.DeltaPropagation) {
      Moved.clear();
      std::swap(Moved, Nodes[N].Delta);
      if (Moved.empty())
        continue; // Stale entry (merged away or already drained).
    }
    unsigned MovedCount =
        Opts.DeltaPropagation ? Moved.count() : Nodes[N].Pts.count();

    // Copy-edge propagation. Copy the edge list: constraint application
    // and cycle collapsing below can mutate node storage.
    Succs = Nodes[N].Succs;
    for (const auto &[DstRaw, Filter] : Succs) {
      unsigned Self = find(N);
      unsigned Dst = find(DstRaw);
      if (Dst == Self && !Filter)
        continue;
      // Re-fetch the source set each iteration: a cycle collapse can
      // move N's data to another representative mid-loop.
      const BitSet &Src = Opts.DeltaPropagation ? Moved : Nodes[Self].Pts;
      bool Changed = flowInto(Dst, Src, Filter);
      Stats.DeltaBitsMoved += MovedCount;
      if (!Changed && Opts.CycleElimination && !Filter)
        maybeDetectCycle(Self, Dst);
    }

    // Complex constraints; same copy discipline. If N was merged away
    // during the edge loop, the representative was pushed with a full
    // re-delivery, which covers these constraints too.
    Cons = Nodes[find(N)].Cons;
    for (unsigned ConsIdx : Cons)
      applyConstraint(ConsIdx,
                      Opts.DeltaPropagation ? Moved : Nodes[find(N)].Pts);
  }
}

/// Bulk-synchronous variant of solveLoop (PTAOptions::ParallelFrontier;
/// requires DeltaPropagation). Each round has three phases:
///
///  1. Drain (sequential): pop the whole worklist, swapping each live
///     node's delta and snapshotting its edge list.
///  2. Precompute (parallel): for every cast edge of every frontier
///     entry, compute the type-filtered delta. This reads only frozen
///     state — the drained Moved sets, the edge snapshots, the object
///     table, and the class hierarchy (isSubtype is pure) — through
///     findConst, so it is safe across workers and its outputs are
///     pure values independent of scheduling.
///  3. Merge (sequential, drain order): every flowInto, constraint
///     application, and cycle collapse, exactly as the sequential
///     loop body would run them for this frontier.
///
/// All mutation happens in phases 1 and 3 on the calling thread, in an
/// order fixed by the drain, so the full mutation trace — points-to
/// sets, merge decisions, visit-order object/context ids, and every
/// Stats counter — is byte-identical for every pool size, including no
/// pool at all. Deltas that arrive for an already-drained node during
/// the merge stay in the node's Delta and are re-queued for the next
/// round rather than joining the in-flight frontier (the one ordering
/// difference from the per-pop sequential loop; both reach the same
/// least fixpoint).
void Solver::solveLoopParallel(BudgetGate &Gate) {
  struct FrontierEntry {
    unsigned N;     ///< Representative at drain time.
    BitSet Moved;   ///< Delta drained from N.
    /// Edge-list snapshot (merge-phase collapsing mutates the live
    /// lists, and workers must not chase them).
    std::vector<std::pair<unsigned, const Type *>> Succs;
    /// Type-filtered Moved per cast edge, parallel to Succs (empty
    /// for unfiltered edges).
    std::vector<BitSet> Filtered;
  };
  std::vector<FrontierEntry> Frontier;
  std::vector<unsigned> Cons;

  while (!worklistEmpty()) {
    // Phase 1: drain.
    Frontier.clear();
    while (!worklistEmpty()) {
      if (Gate.poll(Stats.Propagations))
        return; // Budget exhausted; run() degrades to the coarse result.
      if (Opts.Policy == WorklistPolicy::Topo && NumCopyEdges >= TopoResortAt)
        recomputeTopoPriorities();
      unsigned N = find(popNode());
      ++Stats.WorklistPops;
      if (Opts.Policy == WorklistPolicy::LRF)
        PrioWL.setPriority(N, ++LRFClock);
      FrontierEntry E;
      E.N = N;
      std::swap(E.Moved, Nodes[N].Delta);
      if (E.Moved.empty())
        continue; // Stale entry (merged away or already drained).
      E.Succs = Nodes[N].Succs;
      Frontier.push_back(std::move(E));
    }

    // Phase 2: precompute cast-edge filters against frozen state.
    auto Precompute = [&](std::size_t I) {
      FrontierEntry &E = Frontier[I];
      E.Filtered.resize(E.Succs.size());
      for (std::size_t K = 0; K != E.Succs.size(); ++K) {
        const Type *Filter = E.Succs[K].second;
        if (!Filter)
          continue;
        BitSet &Out = E.Filtered[K];
        E.Moved.forEach([&](unsigned Obj) {
          if (CH.isSubtype(Objects[Obj].Ty, Filter))
            Out.insert(Obj);
        });
      }
    };
    if (Opts.Pool && Opts.Pool->numWorkers())
      Opts.Pool->parallelFor(Frontier.size(), Precompute);
    else
      for (std::size_t I = 0; I != Frontier.size(); ++I)
        Precompute(I);

    // Phase 3: merge in drain order. Mirrors the sequential loop body;
    // Stats accounting matches flowInto's filtered path (the filter
    // work was merely hoisted, not skipped).
    for (FrontierEntry &E : Frontier) {
      unsigned MovedCount = E.Moved.count();
      for (std::size_t K = 0; K != E.Succs.size(); ++K) {
        unsigned Self = find(E.N);
        unsigned Dst = find(E.Succs[K].first);
        const Type *Filter = E.Succs[K].second;
        if (Dst == Self && !Filter)
          continue;
        bool Changed;
        if (!Filter) {
          Changed = flowInto(Dst, E.Moved, nullptr);
        } else {
          NodeData &D = Nodes[Dst];
          Changed = D.Pts.unionWithReturningChanged(E.Filtered[K], D.Delta);
          if (Changed) {
            ++Stats.Propagations;
            pushNode(Dst);
          } else {
            ++Stats.NoChangePropagations;
          }
        }
        Stats.DeltaBitsMoved += MovedCount;
        if (!Changed && Opts.CycleElimination && !Filter)
          maybeDetectCycle(Self, Dst);
      }
      Cons = Nodes[find(E.N)].Cons;
      for (unsigned ConsIdx : Cons)
        applyConstraint(ConsIdx, E.Moved);
    }
  }
}

//===----------------------------------------------------------------------===//
// Lazy cycle detection
//===----------------------------------------------------------------------===//

void Solver::maybeDetectCycle(unsigned Src, unsigned Dst) {
  if (Src == Dst)
    return;
  // Hardekopf-Lin heuristic: a no-change propagation where source and
  // destination hold *equal* points-to sets is strong cycle evidence
  // (the closing propagation of a converged cycle always looks like
  // this). Unequal sets -- the common acyclic case -- are dismissed
  // with a word-level compare and may legitimately re-trigger later
  // once the sets have equalized.
  if (Nodes[Src].Pts.empty() || !(Nodes[Src].Pts == Nodes[Dst].Pts))
    return;
  // One SCC traversal per (src,dst) representative pair.
  uint64_t Key = (static_cast<uint64_t>(Src) << 32) | Dst;
  if (!LCDTried.insert(Key).second)
    return;
  collapseCyclesFrom(Dst);
}

void Solver::collapseCyclesFrom(unsigned Start) {
  // Iterative Tarjan SCC over the rep-resolved unfiltered copy-edge
  // subgraph reachable from Start. Collapses every nontrivial SCC
  // found (not only the one the triggering edge closes).
  struct Frame {
    unsigned Node;
    size_t SuccIdx;
  };
  std::unordered_map<unsigned, unsigned> Index, Low;
  std::vector<unsigned> TarjanStack;
  std::unordered_set<unsigned> OnStack;
  std::vector<Frame> DFS;
  std::vector<std::vector<unsigned>> SCCs;
  unsigned NextIndex = 0;

  Start = find(Start);
  DFS.push_back({Start, 0});
  Index[Start] = Low[Start] = NextIndex++;
  TarjanStack.push_back(Start);
  OnStack.insert(Start);

  while (!DFS.empty()) {
    Frame &F = DFS.back();
    unsigned V = F.Node;
    if (F.SuccIdx < Nodes[V].Succs.size()) {
      const auto &[WRaw, Filter] = Nodes[V].Succs[F.SuccIdx++];
      if (Filter)
        continue; // Cast edges are not identity flow; never collapse.
      unsigned W = find(WRaw);
      if (W == V)
        continue;
      auto It = Index.find(W);
      if (It == Index.end()) {
        Index[W] = Low[W] = NextIndex++;
        TarjanStack.push_back(W);
        OnStack.insert(W);
        DFS.push_back({W, 0});
      } else if (OnStack.count(W)) {
        Low[V] = std::min(Low[V], It->second);
      }
      continue;
    }
    // V is finished.
    if (Low[V] == Index[V]) {
      std::vector<unsigned> SCC;
      while (true) {
        unsigned W = TarjanStack.back();
        TarjanStack.pop_back();
        OnStack.erase(W);
        SCC.push_back(W);
        if (W == V)
          break;
      }
      if (SCC.size() > 1)
        SCCs.push_back(std::move(SCC));
    }
    DFS.pop_back();
    if (!DFS.empty()) {
      Frame &Parent = DFS.back();
      Low[Parent.Node] = std::min(Low[Parent.Node], Low[V]);
    }
  }

  // Collapse after the traversal: unify mutates the edge lists the
  // DFS iterates.
  for (const std::vector<unsigned> &SCC : SCCs) {
    ++Stats.CyclesCollapsed;
    unsigned A = SCC.front();
    for (size_t I = 1; I != SCC.size(); ++I)
      A = unify(A, SCC[I]);
  }
}

void Solver::recomputeTopoPriorities() {
  // Reverse postorder of the rep-resolved copy edge graph
  // approximates a topological order (cycles get arbitrary but stable
  // relative positions). Nodes created after this sort queue behind
  // everything sorted here.
  unsigned NN = static_cast<unsigned>(Nodes.size());
  std::vector<uint8_t> State(NN, 0); // 0 = unseen, 1 = open, 2 = done.
  std::vector<unsigned> Postorder;
  Postorder.reserve(NN);
  std::vector<std::pair<unsigned, size_t>> Stack;

  for (unsigned Root = 0; Root != NN; ++Root) {
    if (find(Root) != Root || State[Root])
      continue;
    Stack.push_back({Root, 0});
    State[Root] = 1;
    while (!Stack.empty()) {
      auto &[V, SuccIdx] = Stack.back();
      if (SuccIdx < Nodes[V].Succs.size()) {
        unsigned W = find(Nodes[V].Succs[SuccIdx++].first);
        if (!State[W]) {
          State[W] = 1;
          Stack.push_back({W, 0});
        }
      } else {
        State[V] = 2;
        Postorder.push_back(V);
        Stack.pop_back();
      }
    }
  }

  uint64_t Prio = 0;
  for (auto It = Postorder.rbegin(), E = Postorder.rend(); It != E; ++It)
    PrioWL.setPriority(*It, Prio++);
  TopoPrioBase = Prio;
  TopoResortAt = NumCopyEdges + NumCopyEdges / 4 + 16;
}

//===----------------------------------------------------------------------===//
// Constraint-graph construction
//===----------------------------------------------------------------------===//

void Solver::processMethodCtx(unsigned MCId) {
  if (MCId >= ProcessedMC.size())
    ProcessedMC.resize(MCId + 1, false);
  if (ProcessedMC[MCId])
    return;
  ProcessedMC[MCId] = true;

  // Copy: node storage reallocates as nested processing adds nodes.
  const MethodCtx MC = CG.node(MCId);
  Method *M = MC.M;
  if (!M->entry())
    return;
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instrs())
      processInstr(I.get(), M, MC.Ctx, MCId);
}

void Solver::processInstr(const Instr *I, Method *M, unsigned Ctx,
                          unsigned MCId) {
  TypeTable &TT = P.types();
  switch (I->kind()) {
  case InstrKind::New: {
    const auto *NI = cast<NewInstr>(I);
    unsigned Obj =
        getObject(I, Ctx, TT.classType(NI->allocatedClass()));
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::NewArray: {
    const auto *NA = cast<NewArrayInstr>(I);
    unsigned Obj = getObject(I, Ctx, TT.arrayType(NA->elementType()));
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::ConstString: {
    unsigned Obj = getObject(I, Ctx, TT.stringType());
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::Read:
    if (cast<ReadInstr>(I)->readKind() == ReadKind::Line) {
      unsigned Obj = getObject(I, Ctx, TT.stringType());
      addObject(localNode(I->dest(), Ctx), Obj);
    }
    return;
  case InstrKind::StrOp: {
    const auto *SO = cast<StrOpInstr>(I);
    if (SO->allocatesString()) {
      unsigned Obj = getObject(I, Ctx, TT.stringType());
      addObject(localNode(I->dest(), Ctx), Obj);
    }
    return;
  }
  case InstrKind::Move: {
    const auto *MV = cast<MoveInstr>(I);
    if (isPointer(MV->dest()))
      addCopyEdge(localNode(MV->src(), Ctx), localNode(MV->dest(), Ctx));
    return;
  }
  case InstrKind::Cast: {
    const auto *C = cast<CastInstr>(I);
    if (isPointer(C->dest()))
      addCopyEdge(localNode(C->src(), Ctx), localNode(C->dest(), Ctx),
                  C->targetType());
    return;
  }
  case InstrKind::Phi: {
    const auto *Phi = cast<PhiInstr>(I);
    if (!isPointer(Phi->dest()))
      return;
    for (const Local *Op : Phi->operands())
      addCopyEdge(localNode(Op, Ctx), localNode(Phi->dest(), Ctx));
    return;
  }
  case InstrKind::Load: {
    const auto *L = cast<LoadInstr>(I);
    if (!isPointer(L->dest()))
      return;
    if (L->isStaticAccess())
      addCopyEdge(staticNode(L->field()), localNode(L->dest(), Ctx));
    else
      attachConstraint(localNode(L->base(), Ctx), Constraint::Kind::Load, I,
                       Ctx);
    return;
  }
  case InstrKind::Store: {
    const auto *S = cast<StoreInstr>(I);
    if (!isPointer(S->src()))
      return;
    if (S->isStaticAccess())
      addCopyEdge(localNode(S->src(), Ctx), staticNode(S->field()));
    else
      attachConstraint(localNode(S->base(), Ctx), Constraint::Kind::Store, I,
                       Ctx);
    return;
  }
  case InstrKind::ArrayLoad: {
    const auto *AL = cast<ArrayLoadInstr>(I);
    if (isPointer(AL->dest()))
      attachConstraint(localNode(AL->array(), Ctx),
                       Constraint::Kind::ArrLoad, I, Ctx);
    return;
  }
  case InstrKind::ArrayStore: {
    const auto *AS = cast<ArrayStoreInstr>(I);
    if (isPointer(AS->src()))
      attachConstraint(localNode(AS->array(), Ctx),
                       Constraint::Kind::ArrStore, I, Ctx);
    return;
  }
  case InstrKind::Call: {
    const auto *C = cast<CallInstr>(I);
    if (C->target()->isStatic()) {
      unsigned CalleeNode = CG.getOrCreateNode(C->target(), 0);
      CG.addEdge(MCId, C, CalleeNode);
      processMethodCtx(CalleeNode);
      wireCall(MCId, C, Ctx, C->target(), 0, /*BindObj=*/~0u,
               /*BindReceiverObject=*/false);
    } else {
      attachConstraint(localNode(C->receiver(), Ctx), Constraint::Kind::Call,
                       I, Ctx);
    }
    return;
  }
  case InstrKind::Ret: {
    const auto *R = cast<RetInstr>(I);
    if (R->src() && isPointer(R->src()))
      addCopyEdge(localNode(R->src(), Ctx), retNode(M, Ctx));
    return;
  }
  default:
    return; // Scalar computation, terminators, effects: no pointers.
  }
}

/// Wires argument/return copy edges for one resolved call edge. When
/// \p BindReceiverObject is set, only \p BindObj flows into the callee
/// `this` (the object-sensitive receiver filter); argument and return
/// edges are ordinary subset edges.
void Solver::wireCall(unsigned CallerMC, const CallInstr *Call,
                      unsigned CallerCtx, Method *Target, unsigned CalleeCtx,
                      unsigned BindObj, bool BindReceiverObject) {
  (void)CallerMC;
  const std::vector<Local *> &Formals = paramLocals(Target);
  unsigned FormalBase = 0;
  if (!Target->isStatic()) {
    FormalBase = 1;
    if (BindReceiverObject && Formals[0] && isPointer(Formals[0]))
      addObject(localNode(Formals[0], CalleeCtx), BindObj);
  }
  for (unsigned ArgIdx = 0; ArgIdx != Call->numArgs(); ++ArgIdx) {
    Local *Formal = FormalBase + ArgIdx < Formals.size()
                        ? Formals[FormalBase + ArgIdx]
                        : nullptr;
    if (!Formal || !isPointer(Formal))
      continue;
    addCopyEdge(localNode(Call->arg(ArgIdx), CallerCtx),
                localNode(Formal, CalleeCtx));
  }
  if (Call->dest() && isPointer(Call->dest()) &&
      !Target->returnType()->isVoid())
    addCopyEdge(retNode(Target, CalleeCtx),
                localNode(Call->dest(), CallerCtx));
}

void Solver::applyCall(const CallInstr *Call, unsigned CallerCtx,
                       unsigned Obj) {
  const AbstractObject &O = Objects[Obj];

  Method *Target = nullptr;
  if (Call->isVirtual()) {
    if (!O.Ty->isClass())
      return; // Strings/arrays have no user methods.
    Target = CH.resolveVirtual(O.Ty->classDef(), Call->target());
  } else {
    // Statically dispatched instance call (constructor / super): the
    // receiver object must still be type-compatible.
    if (!O.Ty->isClass() ||
        !O.Ty->classDef()->isSubclassOf(Call->target()->owner()))
      return;
    Target = Call->target();
  }
  if (!Target || !Target->entry())
    return;

  unsigned CalleeCtx = 0;
  if (Opts.ObjSensContainers && isContainerClass(Target->owner()) &&
      O.CtxDepth < Opts.MaxObjSensDepth)
    CalleeCtx = ctxForObject(Obj);

  // The caller method context node must exist because the constraint
  // was attached while processing it.
  Method *Caller = Call->parent()->parent();
  int CallerMC = CG.findNode(Caller, CallerCtx);
  assert(CallerMC >= 0 && "call constraint from unprocessed method");

  unsigned CalleeNode = CG.getOrCreateNode(Target, CalleeCtx);
  CG.addEdge(static_cast<unsigned>(CallerMC), Call, CalleeNode);
  processMethodCtx(CalleeNode);
  wireCall(static_cast<unsigned>(CallerMC), Call, CallerCtx, Target,
           CalleeCtx, Obj, /*BindReceiverObject=*/true);
}

void Solver::applyConstraint(unsigned ConsIdx, const BitSet &Pts) {
  // With difference propagation Pts is the delta since the node's
  // last visit; otherwise the node's full set. Either way the
  // handlers below are idempotent (edge/object insertion all dedups),
  // so over-delivery — e.g. the full re-delivery after a cycle
  // collapse — is safe, and no per-constraint Done set is needed.
  //
  // Collect the objects first: applying a constraint can attach new
  // constraints/nodes and must not iterate a set that is being
  // mutated elsewhere.
  ++Stats.ConstraintEvals;
  std::vector<unsigned> Objs;
  Pts.forEach([&](unsigned Obj) { Objs.push_back(Obj); });

  for (unsigned Obj : Objs) {
    // Re-fetch: recursion through applyCall may grow the vector.
    Constraint &C = Constraints[ConsIdx];
    const AbstractObject &O = Objects[Obj];
    switch (C.K) {
    case Constraint::Kind::Load: {
      const auto *L = cast<LoadInstr>(C.I);
      if (!O.Ty->isClass() ||
          !O.Ty->classDef()->isSubclassOf(L->field()->owner()))
        break;
      addCopyEdge(fieldNode(Obj, L->field()), localNode(L->dest(), C.Ctx));
      break;
    }
    case Constraint::Kind::Store: {
      const auto *S = cast<StoreInstr>(C.I);
      if (!O.Ty->isClass() ||
          !O.Ty->classDef()->isSubclassOf(S->field()->owner()))
        break;
      addCopyEdge(localNode(S->src(), C.Ctx), fieldNode(Obj, S->field()));
      break;
    }
    case Constraint::Kind::ArrLoad: {
      const auto *AL = cast<ArrayLoadInstr>(C.I);
      if (!O.Ty->isArray())
        break;
      addCopyEdge(elemNode(Obj), localNode(AL->dest(), C.Ctx));
      break;
    }
    case Constraint::Kind::ArrStore: {
      const auto *AS = cast<ArrayStoreInstr>(C.I);
      if (!O.Ty->isArray())
        break;
      addCopyEdge(localNode(AS->src(), C.Ctx), elemNode(Obj));
      break;
    }
    case Constraint::Kind::Call: {
      // Copy out of C: applyCall can grow Constraints (reallocation).
      const auto *Call = cast<CallInstr>(C.I);
      unsigned CallerCtx = C.Ctx;
      applyCall(Call, CallerCtx, Obj);
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Incremental update (retract and replay)
//===----------------------------------------------------------------------===//
//
// The update removes every fact whose derivation passes through a
// retired body and replays the new bodies, then re-solves. Soundness
// of the retraction rests on the reset region R being forward-closed
// over copy edges: every node downstream of a cleared fact is itself
// cleared and re-derived, so no node can keep a contribution whose
// premise was retracted. The two derivations that bypass copy edges —
// receiver-object injection at virtual calls and constraint-created
// edges — are covered by, respectively, an explicit re-dispatch
// replay and a post-solve premise-shrink check that falls back to a
// cold solve when a constraint's trigger set lost an object (its
// derived edges could then be stale in a way edge-closure cannot see).

PTAUpdateResult Solver::applyIncrementalUpdate(const PTAUpdateRequest &Req) {
  PTAUpdateResult Out;
  auto Fallback = [&](const char *Why) {
    Out.Applied = false;
    Out.Reason = Why;
    return Out;
  };
  if (Coarse || Report.Status != StageStatus::Complete)
    return Fallback("previous solve was degraded");
  if (Opts.Budget)
    return Fallback("budgeted session");
  if (Req.DirtyMethods.empty())
    return Fallback("no dirty methods");

  // Dirty objects: allocation sites inside retired bodies. A dirty
  // object that defines a cloning context would invalidate every
  // context derived through it; decline rather than chase the chain.
  std::unordered_set<unsigned> DirtyObjs;
  for (const AbstractObject &O : Objects)
    if (Req.DeadInstrs.count(O.Site))
      DirtyObjs.insert(O.Id);
  for (unsigned Obj : DirtyObjs)
    if (ObjCtx.count(Obj))
      return Fallback("edit retracts a context-defining object");

  // Zombies: the per-context nodes of retired locals plus the field
  // and element partitions of dirty objects. These are deleted
  // outright; everything they fed is reset and re-derived.
  std::unordered_set<unsigned> Z;
  for (const Local *L : Req.DeadLocals) {
    auto It = LocalNodes.find(L);
    if (It == LocalNodes.end())
      continue;
    for (const auto &[Ctx, N] : It->second) {
      (void)Ctx;
      Z.insert(N);
    }
  }
  for (const auto &[Key, N] : FieldNodes)
    if (DirtyObjs.count(static_cast<unsigned>(Key >> 32)))
      Z.insert(N);
  for (const auto &[Obj, N] : ElemNodes)
    if (DirtyObjs.count(Obj))
      Z.insert(N);

  // A zombie inside a collapsed cycle cannot be carved back out of
  // its representative's merged set; decline. After this check every
  // zombie is a singleton representative.
  if (!Z.empty())
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      unsigned R = findConst(N);
      if (R != N && (Z.count(N) || Z.count(R)))
        return Fallback("edit touches a collapsed cycle");
    }

  // Reset region R: forward closure (over rep-resolved copy edges) of
  // the zombies, every current holder of a dirty object (receiver
  // binding injects objects without an edge, so holders are seeds in
  // their own right), and the return nodes of dirty methods (their
  // inflow came from retired locals).
  std::unordered_set<unsigned> RSet;
  std::vector<unsigned> Stack;
  auto Seed = [&](unsigned N) {
    N = find(N);
    if (RSet.insert(N).second)
      Stack.push_back(N);
  };
  for (unsigned ZN : Z)
    Seed(ZN);
  if (!DirtyObjs.empty())
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E; ++N) {
      if (findConst(N) != N)
        continue;
      bool Holds = false;
      Nodes[N].Pts.forEach([&](unsigned Obj) {
        if (DirtyObjs.count(Obj))
          Holds = true;
      });
      if (Holds)
        Seed(N);
    }
  for (const Method *M : Req.DirtyMethods)
    for (const auto &[Key, N] : RetNodes)
      if (static_cast<unsigned>(Key >> 32) == M->id())
        Seed(N);
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    for (const auto &[Dst, F] : Nodes[N].Succs) {
      (void)F;
      Seed(Dst);
    }
  }
  for (unsigned ZN : Z)
    RSet.erase(ZN); // Zombies are cleared, not reset.

  // Snapshots for the post-solve checks and the affected-method set.
  // R-members keep their full old set (they are cleared and must be
  // compared exactly); everything else is monotone under replay, so a
  // cardinality snapshot detects growth. Downstream consumers read
  // per-context sets (the context-insensitive SDG aliases clones with
  // pointsTo(L, Ctx)), so change detection must be per-context, not
  // merged.
  std::unordered_map<unsigned, BitSet> OldRPts;
  std::unordered_set<unsigned> RHadCons;
  for (unsigned N : RSet) {
    OldRPts.emplace(N, Nodes[N].Pts);
    if (!Nodes[N].Cons.empty())
      RHadCons.insert(N);
  }
  // Flat (local, ctx)-keyed snapshot, sorted for binary search in the
  // affected-method pass. A vector beats the obvious nested map here:
  // snapshotting every per-context local is the hot part of the
  // update, and one reserve replaces ~two allocations per entry.
  struct LocalSnap {
    const Local *L;
    unsigned Ctx;
    unsigned OldRep;
    unsigned Count;
    bool WasReset;
  };
  std::vector<LocalSnap> OldLocal;
  {
    size_t Pairs = 0;
    for (const auto &KV : LocalNodes)
      Pairs += KV.second.size();
    OldLocal.reserve(Pairs);
  }
  for (const auto &[L, ByCtx] : LocalNodes)
    for (const auto &[Ctx, Node] : ByCtx) {
      unsigned R = find(Node);
      OldLocal.push_back(
          {L, Ctx, R, Nodes[R].Pts.count(), RSet.count(R) != 0});
    }
  auto SnapLess = [](const LocalSnap &A, const LocalSnap &B) {
    return A.L != B.L ? A.L < B.L : A.Ctx < B.Ctx;
  };
  std::sort(OldLocal.begin(), OldLocal.end(), SnapLess);
  using CGEdgeKey = std::tuple<unsigned, const CallInstr *, unsigned>;
  std::vector<CGEdgeKey> OldCGEdges;
  OldCGEdges.reserve(CG.edges().size());
  for (const CallEdge &E : CG.edges())
    OldCGEdges.emplace_back(E.CallerNode, E.Site, E.CalleeNode);
  std::sort(OldCGEdges.begin(), OldCGEdges.end());

  // Retraction. Edges into zombies are owned by live sources and must
  // be removed edge-wise; edges out of zombies die with their node.
  unsigned EdgesRemoved = 0;
  if (!Z.empty())
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      if (find(N) != N || Z.count(N))
        continue;
      auto &Succs = Nodes[N].Succs;
      auto NewEnd = std::remove_if(
          Succs.begin(), Succs.end(),
          [&](const std::pair<unsigned, const Type *> &Edge) {
            return Z.count(find(Edge.first)) != 0;
          });
      EdgesRemoved += static_cast<unsigned>(Succs.end() - NewEnd);
      Succs.erase(NewEnd, Succs.end());
    }
  for (unsigned ZN : Z) {
    EdgesRemoved += static_cast<unsigned>(Nodes[ZN].Succs.size());
    Nodes[ZN] = NodeData();
  }
  NumCopyEdges -= std::min(NumCopyEdges, EdgesRemoved);
  for (const Local *L : Req.DeadLocals) {
    LocalNodes.erase(L);
    Merged.erase(L);
  }
  for (auto It = FieldNodes.begin(); It != FieldNodes.end();)
    It = DirtyObjs.count(static_cast<unsigned>(It->first >> 32))
             ? FieldNodes.erase(It)
             : std::next(It);
  for (auto It = ElemNodes.begin(); It != ElemNodes.end();)
    It = DirtyObjs.count(It->first) ? ElemNodes.erase(It) : std::next(It);
  for (const Instr *I : Req.DeadInstrs)
    ObjIndex.erase(I);
  for (const Method *M : Req.DirtyMethods)
    ParamCache.erase(M);
  CG.removeEdgesAtSites(Req.DeadInstrs);

  // Reset survivors of R: facts cleared, structure (edges and
  // constraint attachments, all anchored at live instructions) kept.
  for (unsigned N : RSet) {
    Nodes[N].Pts.clear();
    Nodes[N].Delta.clear();
  }

  // Replay 1: the dirty bodies' constraints, under every context the
  // method already has a call-graph node for. Copy the node list —
  // processing can create nodes and invalidate the reference.
  for (Method *M : Req.DirtyMethods) {
    const std::vector<unsigned> MCs = CG.nodesOf(M);
    for (unsigned MC : MCs)
      if (MC < ProcessedMC.size())
        ProcessedMC[MC] = false;
    for (unsigned MC : MCs)
      processMethodCtx(MC);
  }

  // Replay 1b: argument re-binding for static calls from clean
  // callers into dirty methods. The caller is not reprocessed, and
  // its argument edges targeted the retired formals (zombies), so
  // the relowered formals would otherwise start — and stay — empty.
  // wireCall is idempotent; re-wiring every retained static edge
  // into a dirty method is safe. (Instance calls are re-dispatched
  // by replay 4; dirty callers re-wire their own call sites in
  // replay 1.)
  const std::unordered_set<const Method *> DirtySet(Req.DirtyMethods.begin(),
                                                    Req.DirtyMethods.end());
  {
    const std::vector<CallEdge> EdgeSnapshot = CG.edges();
    for (const CallEdge &E : EdgeSnapshot) {
      if (!E.Site->target()->isStatic())
        continue;
      const MethodCtx Callee = CG.node(E.CalleeNode);
      if (!DirtySet.count(Callee.M))
        continue;
      wireCall(E.CallerNode, E.Site, CG.node(E.CallerNode).Ctx, Callee.M,
               Callee.Ctx, /*BindObj=*/~0u, /*BindReceiverObject=*/false);
    }
  }

  // Replay 2: allocation seeding for unchanged sites whose
  // destination node landed in R (its seeded objects were cleared and
  // nothing else re-creates them). Sorted for deterministic worklist
  // seeding.
  if (!RSet.empty()) {
    std::vector<std::pair<unsigned, unsigned>> Reseeds; // (obj, node)
    for (const auto &[Site, ByCtx] : ObjIndex) {
      const Local *Dest = Site->dest();
      if (!Dest)
        continue;
      auto LIt = LocalNodes.find(Dest);
      if (LIt == LocalNodes.end())
        continue;
      for (const auto &[Ctx, Obj] : ByCtx) {
        auto NIt = LIt->second.find(Ctx);
        if (NIt == LIt->second.end())
          continue;
        if (RSet.count(find(NIt->second)))
          Reseeds.emplace_back(Obj, NIt->second);
      }
    }
    std::sort(Reseeds.begin(), Reseeds.end());
    for (const auto &[Obj, Node] : Reseeds)
      addObject(Node, Obj);
  }

  // Replay 3: re-deliver the facts flowing from untouched nodes into
  // the reset region across existing edges.
  if (!RSet.empty())
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      if (find(N) != N || RSet.count(N))
        continue;
      for (const auto &[DstRaw, Filter] : Nodes[N].Succs) {
        unsigned Dst = find(DstRaw);
        if (RSet.count(Dst))
          flowInto(Dst, Nodes[N].Pts, Filter);
      }
    }

  // Replay 4: receiver re-dispatch for retained instance-call edges.
  // Receiver-object injection has no copy edge, so formals that
  // landed in R would otherwise never get their objects back (the
  // caller-side Call constraint only re-fires on a receiver delta).
  // applyCall is idempotent, so replaying every retained edge is
  // safe. When nothing was reset, only edges into dirty methods can
  // have empty formals (fresh nodes from the relower); every other
  // callee's bindings are monotone facts that were never cleared.
  {
    std::set<std::pair<const CallInstr *, unsigned>> Done;
    const std::vector<CallEdge> EdgeSnapshot = CG.edges();
    for (const CallEdge &E : EdgeSnapshot) {
      if (E.Site->target()->isStatic())
        continue;
      if (RSet.empty() && !DirtySet.count(CG.node(E.CalleeNode).M))
        continue;
      if (!Done.insert({E.Site, E.CallerNode}).second)
        continue;
      unsigned CallerCtx = CG.node(E.CallerNode).Ctx;
      const Local *Recv = E.Site->receiver();
      auto LIt = LocalNodes.find(Recv);
      if (LIt == LocalNodes.end())
        continue;
      auto NIt = LIt->second.find(CallerCtx);
      if (NIt == LIt->second.end())
        continue;
      std::vector<unsigned> Objs;
      Nodes[find(NIt->second)].Pts.forEach(
          [&](unsigned O) { Objs.push_back(O); });
      for (unsigned O : Objs)
        applyCall(E.Site, CallerCtx, O);
    }
  }

  // Re-solve to the fixed point. The gate carries no budget — the
  // incremental path is only taken for unbudgeted sessions — but
  // still surfaces injected faults ("pta.update") for the chaos
  // harness: a degrade fault lands in exhausted(), a throw propagates.
  auto SolveStart = std::chrono::steady_clock::now();
  BudgetGate Gate(nullptr, "pta.update", 0);
  solveLoop(Gate);
  auto SolveEnd = std::chrono::steady_clock::now();
  if (Gate.exhausted())
    return Fallback("fault injected during incremental solve");

  // Post-solve check 1: a constraint whose trigger set shrank may
  // have derived edges that no longer have a premise; edge closure
  // cannot retract those, so decline.
  for (const auto &[N, Old] : OldRPts) {
    if (!RHadCons.count(N))
      continue;
    const BitSet &New = Nodes[find(N)].Pts;
    bool Lost = false;
    Old.forEach([&](unsigned Obj) {
      if (!New.test(Obj))
        Lost = true;
    });
    if (Lost)
      return Fallback("constraint premise shrank under retraction");
  }

  // Post-solve check 2: a method whose last call edge was retracted
  // keeps its node and its constraints; a cold solve would never have
  // analyzed it. Identity requires every node stay reachable.
  int Entry = CG.findNode(P.mainMethod(), 0);
  if (Entry < 0 ||
      !CG.allReachableFrom(static_cast<unsigned>(Entry)))
    return Fallback("edit left stale unreachable call-graph nodes");

  // Finalize exactly as run() does. Merged entries are zeroed in place
  // rather than dropped: the keys barely change between updates, so
  // the buckets and bit buffers recycle.
  for (unsigned I = 0, E = static_cast<unsigned>(Rep.size()); I != E; ++I)
    Rep[I] = find(I);
  for (auto &KV : Merged)
    KV.second.clear();
  for (const auto &[L, ByCtx] : LocalNodes)
    for (const auto &[Ctx, Node] : ByCtx) {
      (void)Ctx;
      Merged[L].unionWith(Nodes[find(Node)].Pts);
    }

  // Affected methods: the dirty ones, the owner of every local whose
  // points-to set changed in ANY context, and both endpoints of every
  // added or removed call edge. Downstream stages (mod-ref, SDG)
  // consume per-context local sets and call-graph structure, so this
  // set bounds what they must recompute. Reset nodes compare against
  // their snapshot; everything else is monotone, so cardinality
  // detects growth exactly (the final set is a superset of the old).
  std::set<Method *, bool (*)(Method *, Method *)> Affected(
      +[](Method *A, Method *B) { return A->id() < B->id(); });
  for (Method *M : Req.DirtyMethods)
    Affected.insert(M);
  std::unordered_set<const Local *> ChangedLocals;
  for (const auto &[L, ByCtx] : LocalNodes) {
    for (const auto &[Ctx, Node] : ByCtx) {
      const BitSet &Final = Nodes[find(Node)].Pts;
      LocalSnap Probe{L, Ctx, 0, 0, false};
      auto SIt =
          std::lower_bound(OldLocal.begin(), OldLocal.end(), Probe, SnapLess);
      const LocalSnap *Snap =
          SIt != OldLocal.end() && SIt->L == L && SIt->Ctx == Ctx ? &*SIt
                                                                  : nullptr;
      bool Changed;
      if (!Snap)
        Changed = !Final.empty(); // New local or new context.
      else if (Snap->WasReset)
        Changed = Final != OldRPts.at(Snap->OldRep);
      else
        Changed = Final.count() != Snap->Count;
      if (Changed) {
        ChangedLocals.insert(L);
        break;
      }
    }
  }
  // One sweep resolves changed locals to their owning methods; the
  // per-update Local→Method map this replaces cost more to build than
  // everything else in this pass combined.
  if (!ChangedLocals.empty())
    for (const auto &MP : P.methods()) {
      if (Affected.count(MP.get()))
        continue;
      for (const auto &L : MP->locals())
        if (ChangedLocals.count(L.get())) {
          Affected.insert(MP.get());
          break;
        }
    }
  std::vector<CGEdgeKey> NewCGEdges;
  NewCGEdges.reserve(CG.edges().size());
  for (const CallEdge &E : CG.edges())
    NewCGEdges.emplace_back(E.CallerNode, E.Site, E.CalleeNode);
  std::sort(NewCGEdges.begin(), NewCGEdges.end());
  auto MarkEdge = [&](const CGEdgeKey &Key) {
    Affected.insert(CG.node(std::get<0>(Key)).M);
    Affected.insert(CG.node(std::get<2>(Key)).M);
  };
  // Symmetric difference of the two sorted edge lists.
  {
    auto OI = OldCGEdges.begin(), NI = NewCGEdges.begin();
    while (OI != OldCGEdges.end() || NI != NewCGEdges.end()) {
      if (OI == OldCGEdges.end())
        MarkEdge(*NI++);
      else if (NI == NewCGEdges.end())
        MarkEdge(*OI++);
      else if (*OI < *NI)
        MarkEdge(*OI++);
      else if (*NI < *OI)
        MarkEdge(*NI++);
      else {
        ++OI;
        ++NI;
      }
    }
  }
  Out.AffectedMethods.assign(Affected.begin(), Affected.end());

  // Refresh the public counters; solve-time totals accumulate.
  Stats.NumNodes = static_cast<unsigned>(Nodes.size());
  Stats.NumRepNodes = 0;
  for (unsigned I = 0, E = static_cast<unsigned>(Rep.size()); I != E; ++I)
    Stats.NumRepNodes += Rep[I] == I;
  Stats.NumCopyEdges = NumCopyEdges;
  Stats.NumConstraints = static_cast<unsigned>(Constraints.size());
  Stats.NumObjects = static_cast<unsigned>(Objects.size());
  Stats.SolveSeconds +=
      std::chrono::duration<double>(SolveEnd - SolveStart).count();
  Report.StepsUsed = Stats.Propagations;
  Report.Seconds = Stats.SolveSeconds + Stats.FinalizeSeconds;

  Out.Applied = true;
  return Out;
}

std::unique_ptr<PointsToResult> tsl::runPointsTo(Program &P,
                                                 const PTAOptions &Options) {
  auto S = std::make_unique<Solver>(P, Options);
  S->run();
  return S;
}
