//===-- PointsTo.cpp - Andersen points-to analysis ----------------------------==//

#include "pta/PointsTo.h"

#include "support/Worklist.h"

#include <cassert>

using namespace tsl;

namespace {

/// Worklist-based subset solver with on-the-fly call graph.
class Solver final : public PointsToResult {
public:
  Solver(Program &P, const PTAOptions &Opts)
      : P(P), Opts(Opts), CH(P) {}

  void run();

  //===------------------------------------------------------------------===//
  // PointsToResult
  //===------------------------------------------------------------------===//

  const std::vector<AbstractObject> &objects() const override {
    return Objects;
  }

  const BitSet &pointsTo(const Local *L) const override {
    auto It = Merged.find(L);
    return It == Merged.end() ? EmptySet : It->second;
  }

  const BitSet &pointsTo(const Local *L, unsigned Ctx) const override {
    auto ByCtx = LocalNodes.find(L);
    if (ByCtx == LocalNodes.end())
      return EmptySet;
    auto It = ByCtx->second.find(Ctx);
    return It == ByCtx->second.end() ? EmptySet : Nodes[It->second].Pts;
  }

  const CallGraph &callGraph() const override { return CG; }
  const ClassHierarchy &hierarchy() const override { return CH; }

  bool castCannotFail(const CastInstr *Cast) const override {
    const BitSet &Pts = pointsTo(Cast->src());
    bool Safe = true;
    Pts.forEach([&](unsigned ObjId) {
      if (!CH.isSubtype(Objects[ObjId].Ty, Cast->targetType()))
        Safe = false;
    });
    return Safe;
  }

  unsigned numConstraintNodes() const override {
    return static_cast<unsigned>(Nodes.size());
  }

  //===------------------------------------------------------------------===//
  // Node key helpers shared with ModRef / SDG construction
  //===------------------------------------------------------------------===//

private:
  struct NodeData {
    BitSet Pts;
    /// Copy edges: (target node, optional type filter for casts).
    std::vector<std::pair<unsigned, const Type *>> Succs;
    /// Indices of constraints triggered by this node's points-to set.
    std::vector<unsigned> Cons;
  };

  struct Constraint {
    enum class Kind { Load, Store, ArrLoad, ArrStore, Call } K;
    const Instr *I;
    unsigned Ctx; ///< Context of the method containing I.
    BitSet Done;  ///< Objects already processed.
  };

  //===------------------------------------------------------------------===//
  // Node management
  //===------------------------------------------------------------------===//

  unsigned newNode() {
    Nodes.emplace_back();
    return static_cast<unsigned>(Nodes.size() - 1);
  }

  unsigned localNode(const Local *L, unsigned Ctx) {
    auto [It, New] = LocalNodes[L].emplace(Ctx, 0);
    if (New) {
      It->second = newNode();
      LocalOfNode.resize(Nodes.size(), nullptr);
      LocalOfNode[It->second] = L;
    }
    return It->second;
  }

  unsigned fieldNode(unsigned Obj, const Field *F) {
    // Exact: both components get 32 disjoint bits.
    uint64_t Key = (static_cast<uint64_t>(Obj) << 32) | F->id();
    auto [It, New] = FieldNodes.emplace(Key, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned elemNode(unsigned Obj) {
    auto [It, New] = ElemNodes.emplace(Obj, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned staticNode(const Field *F) {
    auto [It, New] = StaticNodes.emplace(F, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  unsigned retNode(const Method *M, unsigned Ctx) {
    // Exact: both components get 32 disjoint bits.
    uint64_t Key = (static_cast<uint64_t>(M->id()) << 32) | Ctx;
    auto [It, New] = RetNodes.emplace(Key, 0);
    if (New)
      It->second = newNode();
    return It->second;
  }

  //===------------------------------------------------------------------===//
  // Objects and contexts
  //===------------------------------------------------------------------===//

  unsigned getObject(const Instr *Site, unsigned AllocCtx, const Type *Ty) {
    auto [It, New] = ObjIndex[Site].emplace(AllocCtx, 0);
    if (!New)
      return It->second;
    unsigned Depth = 0;
    if (AllocCtx != 0)
      Depth = Objects[CtxObject[AllocCtx]].CtxDepth + 1;
    unsigned Id = static_cast<unsigned>(Objects.size());
    Objects.push_back({Site, AllocCtx, Ty, Depth, Id});
    It->second = Id;
    return Id;
  }

  unsigned ctxForObject(unsigned Obj) {
    auto [It, New] = ObjCtx.emplace(Obj, 0);
    if (New) {
      It->second = static_cast<unsigned>(CtxObject.size());
      CtxObject.push_back(Obj);
    }
    return It->second;
  }

  bool isContainerClass(const ClassDef *C) const {
    return C && C->id() < IsContainer.size() && IsContainer[C->id()];
  }

  //===------------------------------------------------------------------===//
  // Propagation primitives
  //===------------------------------------------------------------------===//

  void addObject(unsigned Node, unsigned Obj) {
    if (Nodes[Node].Pts.insert(Obj))
      WL.push(Node);
  }

  /// Unions \p From (filtered by \p Filter) into \p Node's set.
  void flowInto(unsigned Node, const BitSet &From, const Type *Filter) {
    if (&From == &Nodes[Node].Pts)
      return; // Self-union is a no-op (and would mutate during forEach).
    bool Changed = false;
    if (!Filter) {
      Changed = Nodes[Node].Pts.unionWith(From);
    } else {
      From.forEach([&](unsigned Obj) {
        if (CH.isSubtype(Objects[Obj].Ty, Filter))
          Changed |= Nodes[Node].Pts.insert(Obj);
      });
    }
    if (Changed)
      WL.push(Node);
  }

  void addCopyEdge(unsigned Src, unsigned Dst, const Type *Filter = nullptr) {
    if (Src == Dst && !Filter)
      return;
    for (const auto &[Existing, F] : Nodes[Src].Succs)
      if (Existing == Dst && F == Filter)
        return;
    Nodes[Src].Succs.emplace_back(Dst, Filter);
    flowInto(Dst, Nodes[Src].Pts, Filter);
  }

  void attachConstraint(unsigned Node, Constraint::Kind K, const Instr *I,
                        unsigned Ctx) {
    Constraints.push_back({K, I, Ctx, BitSet()});
    unsigned Idx = static_cast<unsigned>(Constraints.size() - 1);
    Nodes[Node].Cons.push_back(Idx);
    applyConstraint(Idx, Nodes[Node].Pts);
  }

  void applyConstraint(unsigned ConsIdx, const BitSet &Pts);
  void applyCall(const CallInstr *Call, unsigned CallerCtx, unsigned Obj);

  //===------------------------------------------------------------------===//
  // Method processing
  //===------------------------------------------------------------------===//

  void processMethodCtx(unsigned MCId);
  void processInstr(const Instr *I, Method *M, unsigned Ctx, unsigned MCId);
  void wireCall(unsigned CallerMC, const CallInstr *Call, unsigned CallerCtx,
                Method *Target, unsigned CalleeCtx, unsigned BindObj,
                bool BindReceiverObject);

  const std::vector<Local *> &paramLocals(const Method *M);

  static bool isPointer(const Local *L) { return L->type()->isReference(); }

  //===------------------------------------------------------------------===//
  // State
  //===------------------------------------------------------------------===//

  Program &P;
  PTAOptions Opts;
  ClassHierarchy CH;
  CallGraph CG;

  std::vector<AbstractObject> Objects;
  std::unordered_map<const Instr *, std::unordered_map<unsigned, unsigned>>
      ObjIndex;

  std::vector<NodeData> Nodes;
  std::vector<const Local *> LocalOfNode;
  std::unordered_map<const Local *, std::unordered_map<unsigned, unsigned>>
      LocalNodes;
  std::unordered_map<uint64_t, unsigned> FieldNodes;
  std::unordered_map<unsigned, unsigned> ElemNodes;
  std::unordered_map<const Field *, unsigned> StaticNodes;
  std::unordered_map<uint64_t, unsigned> RetNodes;

  std::vector<Constraint> Constraints;
  Worklist WL;
  std::vector<bool> ProcessedMC;

  std::vector<unsigned> CtxObject = {~0u}; ///< Ctx id -> defining object.
  std::unordered_map<unsigned, unsigned> ObjCtx;
  std::vector<bool> IsContainer;

  std::unordered_map<const Method *, std::vector<Local *>> ParamCache;
  std::unordered_map<const Local *, BitSet> Merged;
  BitSet EmptySet;
};

} // namespace

const std::vector<Local *> &Solver::paramLocals(const Method *M) {
  auto It = ParamCache.find(M);
  if (It != ParamCache.end())
    return It->second;
  std::vector<Local *> Params(M->numFormals(), nullptr);
  if (M->entry())
    for (const auto &I : M->entry()->instrs())
      if (const auto *PI = dyn_cast<ParamInstr>(I.get()))
        Params[PI->index()] = PI->dest();
  return ParamCache.emplace(M, std::move(Params)).first->second;
}

void Solver::run() {
  // Mark container classes by name.
  IsContainer.assign(P.classes().size(), false);
  if (Opts.ObjSensContainers) {
    for (const std::string &Name : Opts.ContainerClasses) {
      Symbol Sym = P.strings().lookup(Name);
      if (!Sym)
        continue;
      if (ClassDef *C = P.findClass(Sym))
        IsContainer[C->id()] = true;
    }
  }

  Method *Main = P.mainMethod();
  assert(Main && "points-to analysis needs an entry point");
  unsigned Entry = CG.getOrCreateNode(Main, 0);
  ProcessedMC.resize(1, false);
  processMethodCtx(Entry);

  while (!WL.empty()) {
    unsigned Node = WL.pop();
    // Copy-edge propagation. Copy the edge list: constraint application
    // below can add edges and reallocate node storage.
    std::vector<std::pair<unsigned, const Type *>> Succs = Nodes[Node].Succs;
    for (const auto &[Dst, Filter] : Succs)
      flowInto(Dst, Nodes[Node].Pts, Filter);
    // Complex constraints; same copy discipline.
    std::vector<unsigned> Cons = Nodes[Node].Cons;
    for (unsigned ConsIdx : Cons)
      applyConstraint(ConsIdx, Nodes[Node].Pts);
  }

  // Finalize context-merged per-local sets for client queries.
  for (const auto &[L, ByCtx] : LocalNodes)
    for (const auto &[Ctx, Node] : ByCtx) {
      (void)Ctx;
      Merged[L].unionWith(Nodes[Node].Pts);
    }
}

void Solver::processMethodCtx(unsigned MCId) {
  if (MCId >= ProcessedMC.size())
    ProcessedMC.resize(MCId + 1, false);
  if (ProcessedMC[MCId])
    return;
  ProcessedMC[MCId] = true;

  // Copy: node storage reallocates as nested processing adds nodes.
  const MethodCtx MC = CG.node(MCId);
  Method *M = MC.M;
  if (!M->entry())
    return;
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instrs())
      processInstr(I.get(), M, MC.Ctx, MCId);
}

void Solver::processInstr(const Instr *I, Method *M, unsigned Ctx,
                          unsigned MCId) {
  TypeTable &TT = P.types();
  switch (I->kind()) {
  case InstrKind::New: {
    const auto *NI = cast<NewInstr>(I);
    unsigned Obj =
        getObject(I, Ctx, TT.classType(NI->allocatedClass()));
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::NewArray: {
    const auto *NA = cast<NewArrayInstr>(I);
    unsigned Obj = getObject(I, Ctx, TT.arrayType(NA->elementType()));
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::ConstString: {
    unsigned Obj = getObject(I, Ctx, TT.stringType());
    addObject(localNode(I->dest(), Ctx), Obj);
    return;
  }
  case InstrKind::Read:
    if (cast<ReadInstr>(I)->readKind() == ReadKind::Line) {
      unsigned Obj = getObject(I, Ctx, TT.stringType());
      addObject(localNode(I->dest(), Ctx), Obj);
    }
    return;
  case InstrKind::StrOp: {
    const auto *SO = cast<StrOpInstr>(I);
    if (SO->allocatesString()) {
      unsigned Obj = getObject(I, Ctx, TT.stringType());
      addObject(localNode(I->dest(), Ctx), Obj);
    }
    return;
  }
  case InstrKind::Move: {
    const auto *MV = cast<MoveInstr>(I);
    if (isPointer(MV->dest()))
      addCopyEdge(localNode(MV->src(), Ctx), localNode(MV->dest(), Ctx));
    return;
  }
  case InstrKind::Cast: {
    const auto *C = cast<CastInstr>(I);
    if (isPointer(C->dest()))
      addCopyEdge(localNode(C->src(), Ctx), localNode(C->dest(), Ctx),
                  C->targetType());
    return;
  }
  case InstrKind::Phi: {
    const auto *Phi = cast<PhiInstr>(I);
    if (!isPointer(Phi->dest()))
      return;
    for (const Local *Op : Phi->operands())
      addCopyEdge(localNode(Op, Ctx), localNode(Phi->dest(), Ctx));
    return;
  }
  case InstrKind::Load: {
    const auto *L = cast<LoadInstr>(I);
    if (!isPointer(L->dest()))
      return;
    if (L->isStaticAccess())
      addCopyEdge(staticNode(L->field()), localNode(L->dest(), Ctx));
    else
      attachConstraint(localNode(L->base(), Ctx), Constraint::Kind::Load, I,
                       Ctx);
    return;
  }
  case InstrKind::Store: {
    const auto *S = cast<StoreInstr>(I);
    if (!isPointer(S->src()))
      return;
    if (S->isStaticAccess())
      addCopyEdge(localNode(S->src(), Ctx), staticNode(S->field()));
    else
      attachConstraint(localNode(S->base(), Ctx), Constraint::Kind::Store, I,
                       Ctx);
    return;
  }
  case InstrKind::ArrayLoad: {
    const auto *AL = cast<ArrayLoadInstr>(I);
    if (isPointer(AL->dest()))
      attachConstraint(localNode(AL->array(), Ctx),
                       Constraint::Kind::ArrLoad, I, Ctx);
    return;
  }
  case InstrKind::ArrayStore: {
    const auto *AS = cast<ArrayStoreInstr>(I);
    if (isPointer(AS->src()))
      attachConstraint(localNode(AS->array(), Ctx),
                       Constraint::Kind::ArrStore, I, Ctx);
    return;
  }
  case InstrKind::Call: {
    const auto *C = cast<CallInstr>(I);
    if (C->target()->isStatic()) {
      unsigned CalleeNode = CG.getOrCreateNode(C->target(), 0);
      CG.addEdge(MCId, C, CalleeNode);
      processMethodCtx(CalleeNode);
      wireCall(MCId, C, Ctx, C->target(), 0, /*BindObj=*/~0u,
               /*BindReceiverObject=*/false);
    } else {
      attachConstraint(localNode(C->receiver(), Ctx), Constraint::Kind::Call,
                       I, Ctx);
    }
    return;
  }
  case InstrKind::Ret: {
    const auto *R = cast<RetInstr>(I);
    if (R->src() && isPointer(R->src()))
      addCopyEdge(localNode(R->src(), Ctx), retNode(M, Ctx));
    return;
  }
  default:
    return; // Scalar computation, terminators, effects: no pointers.
  }
}

/// Wires argument/return copy edges for one resolved call edge. When
/// \p BindReceiverObject is set, only \p BindObj flows into the callee
/// `this` (the object-sensitive receiver filter); argument and return
/// edges are ordinary subset edges.
void Solver::wireCall(unsigned CallerMC, const CallInstr *Call,
                      unsigned CallerCtx, Method *Target, unsigned CalleeCtx,
                      unsigned BindObj, bool BindReceiverObject) {
  (void)CallerMC;
  const std::vector<Local *> &Formals = paramLocals(Target);
  unsigned FormalBase = 0;
  if (!Target->isStatic()) {
    FormalBase = 1;
    if (BindReceiverObject && Formals[0] && isPointer(Formals[0]))
      addObject(localNode(Formals[0], CalleeCtx), BindObj);
  }
  for (unsigned ArgIdx = 0; ArgIdx != Call->numArgs(); ++ArgIdx) {
    Local *Formal = FormalBase + ArgIdx < Formals.size()
                        ? Formals[FormalBase + ArgIdx]
                        : nullptr;
    if (!Formal || !isPointer(Formal))
      continue;
    addCopyEdge(localNode(Call->arg(ArgIdx), CallerCtx),
                localNode(Formal, CalleeCtx));
  }
  if (Call->dest() && isPointer(Call->dest()) &&
      !Target->returnType()->isVoid())
    addCopyEdge(retNode(Target, CalleeCtx),
                localNode(Call->dest(), CallerCtx));
}

void Solver::applyCall(const CallInstr *Call, unsigned CallerCtx,
                       unsigned Obj) {
  const AbstractObject &O = Objects[Obj];

  Method *Target = nullptr;
  if (Call->isVirtual()) {
    if (!O.Ty->isClass())
      return; // Strings/arrays have no user methods.
    Target = CH.resolveVirtual(O.Ty->classDef(), Call->target());
  } else {
    // Statically dispatched instance call (constructor / super): the
    // receiver object must still be type-compatible.
    if (!O.Ty->isClass() ||
        !O.Ty->classDef()->isSubclassOf(Call->target()->owner()))
      return;
    Target = Call->target();
  }
  if (!Target || !Target->entry())
    return;

  unsigned CalleeCtx = 0;
  if (Opts.ObjSensContainers && isContainerClass(Target->owner()) &&
      O.CtxDepth < Opts.MaxObjSensDepth)
    CalleeCtx = ctxForObject(Obj);

  // The caller method context node must exist because the constraint
  // was attached while processing it.
  Method *Caller = Call->parent()->parent();
  int CallerMC = CG.findNode(Caller, CallerCtx);
  assert(CallerMC >= 0 && "call constraint from unprocessed method");

  unsigned CalleeNode = CG.getOrCreateNode(Target, CalleeCtx);
  CG.addEdge(static_cast<unsigned>(CallerMC), Call, CalleeNode);
  processMethodCtx(CalleeNode);
  wireCall(static_cast<unsigned>(CallerMC), Call, CallerCtx, Target,
           CalleeCtx, Obj, /*BindReceiverObject=*/true);
}

void Solver::applyConstraint(unsigned ConsIdx, const BitSet &Pts) {
  // Collect the unprocessed objects first: applying a constraint can
  // attach new constraints/nodes and must not iterate a set that is
  // being mutated elsewhere.
  std::vector<unsigned> Fresh;
  {
    Constraint &C = Constraints[ConsIdx];
    Pts.forEach([&](unsigned Obj) {
      if (!C.Done.test(Obj)) {
        C.Done.insert(Obj);
        Fresh.push_back(Obj);
      }
    });
  }
  if (Fresh.empty())
    return;

  for (unsigned Obj : Fresh) {
    // Re-fetch: recursion through applyCall may grow the vector.
    Constraint &C = Constraints[ConsIdx];
    const AbstractObject &O = Objects[Obj];
    switch (C.K) {
    case Constraint::Kind::Load: {
      const auto *L = cast<LoadInstr>(C.I);
      if (!O.Ty->isClass() ||
          !O.Ty->classDef()->isSubclassOf(L->field()->owner()))
        break;
      addCopyEdge(fieldNode(Obj, L->field()), localNode(L->dest(), C.Ctx));
      break;
    }
    case Constraint::Kind::Store: {
      const auto *S = cast<StoreInstr>(C.I);
      if (!O.Ty->isClass() ||
          !O.Ty->classDef()->isSubclassOf(S->field()->owner()))
        break;
      addCopyEdge(localNode(S->src(), C.Ctx), fieldNode(Obj, S->field()));
      break;
    }
    case Constraint::Kind::ArrLoad: {
      const auto *AL = cast<ArrayLoadInstr>(C.I);
      if (!O.Ty->isArray())
        break;
      addCopyEdge(elemNode(Obj), localNode(AL->dest(), C.Ctx));
      break;
    }
    case Constraint::Kind::ArrStore: {
      const auto *AS = cast<ArrayStoreInstr>(C.I);
      if (!O.Ty->isArray())
        break;
      addCopyEdge(localNode(AS->src(), C.Ctx), elemNode(Obj));
      break;
    }
    case Constraint::Kind::Call: {
      // Copy out of C: applyCall can grow Constraints (reallocation).
      const auto *Call = cast<CallInstr>(C.I);
      unsigned CallerCtx = C.Ctx;
      applyCall(Call, CallerCtx, Obj);
      break;
    }
    }
  }
}

std::unique_ptr<PointsToResult> tsl::runPointsTo(Program &P,
                                                 const PTAOptions &Options) {
  auto S = std::make_unique<Solver>(P, Options);
  S->run();
  return S;
}
