//===-- Snapshot.cpp - Serialized points-to artifact ---------------------------==//

#include "pta/Snapshot.h"

#include "ir/ProgramIO.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

using namespace tsl;

namespace {

//===----------------------------------------------------------------------===//
// SnapshotPointsToResult
//===----------------------------------------------------------------------===//

/// A decoded points-to result: pure lookup tables keyed by dense ids,
/// answering every PointsToResult query identically to the result the
/// encoder walked. applyIncrementalUpdate keeps the base class's
/// declining implementation — after a warm start, the first edit
/// triggers a sound cold points-to rebuild.
class SnapshotPointsToResult : public PointsToResult {
public:
  const std::vector<AbstractObject> &objects() const override {
    return Objects;
  }

  unsigned contextObject(unsigned Ctx) const override {
    return Ctx < CtxObj.size() ? CtxObj[Ctx] : ~0u;
  }

  const BitSet &pointsTo(const Local *L) const override {
    auto It = Merged.find(denseLocalKey(L));
    return It == Merged.end() ? Empty : It->second;
  }

  const BitSet &pointsTo(const Local *L, unsigned Ctx) const override {
    auto It = PerCtx.find({denseLocalKey(L), Ctx});
    return It == PerCtx.end() ? Empty : It->second;
  }

  const CallGraph &callGraph() const override { return CG; }
  const ClassHierarchy &hierarchy() const override { return *CH; }

  bool castCannotFail(const CastInstr *Cast) const override {
    return CastOK.count(denseInstrKey(Cast)) != 0;
  }

  unsigned numConstraintNodes() const override { return NumConstraintNodes; }
  const SolverStats &stats() const override { return Stats; }
  const StageReport &report() const override { return Report; }

  std::vector<AbstractObject> Objects;
  std::vector<unsigned> CtxObj; ///< Defining object per context id.
  std::unordered_map<uint64_t, BitSet> Merged;
  std::map<std::pair<uint64_t, unsigned>, BitSet> PerCtx;
  CallGraph CG;
  std::unique_ptr<ClassHierarchy> CH;
  std::unordered_set<uint64_t> CastOK;
  SolverStats Stats;
  StageReport Report{"pta", StageStatus::Complete, "", "", 0, 0};
  unsigned NumConstraintNodes = 0;
  BitSet Empty;
};

void putStats(ByteWriter &W, const SolverStats &S) {
  W.vu32(S.NumNodes);
  W.vu32(S.NumRepNodes);
  W.vu32(S.NumCopyEdges);
  W.vu32(S.NumConstraints);
  W.vu32(S.NumObjects);
  W.vu64(S.WorklistPops);
  W.vu64(S.Propagations);
  W.vu64(S.NoChangePropagations);
  W.vu64(S.DeltaBitsMoved);
  W.vu64(S.ConstraintEvals);
  W.vu32(S.CyclesCollapsed);
  W.vu32(S.NodesMerged);
  putDouble(W, S.SolveSeconds);
  putDouble(W, S.FinalizeSeconds);
}

SolverStats getStats(ByteReader &R) {
  SolverStats S;
  S.NumNodes = R.vu32();
  S.NumRepNodes = R.vu32();
  S.NumCopyEdges = R.vu32();
  S.NumConstraints = R.vu32();
  S.NumObjects = R.vu32();
  S.WorklistPops = R.vu64();
  S.Propagations = R.vu64();
  S.NoChangePropagations = R.vu64();
  S.DeltaBitsMoved = R.vu64();
  S.ConstraintEvals = R.vu64();
  S.CyclesCollapsed = R.vu32();
  S.NodesMerged = R.vu32();
  S.SolveSeconds = getDouble(R);
  S.FinalizeSeconds = getDouble(R);
  return S;
}

/// Bits in a decoded points-to row are abstract object ids; reject
/// any id past the decoded object table.
void checkRow(const BitSet &Row, std::size_t NumObjects) {
  unsigned Max = 0;
  Row.forEach([&](unsigned Id) { Max = Id; }); // Ascending: last wins.
  if (Row.count() && Max >= NumObjects)
    throw SerializeError("points-to row references unknown object");
}

} // namespace

void tsl::encodePointsTo(const PointsToResult &PTA, const Program &P,
                         ByteWriter &W) {
  putReport(W, PTA.report());
  putStats(W, PTA.stats());
  W.vu32(PTA.numConstraintNodes());

  // Object table, in id order. Sites and types are dense references.
  const std::vector<AbstractObject> &Objects = PTA.objects();
  W.vu64(Objects.size());
  for (const AbstractObject &Obj : Objects) {
    W.vu64(Obj.Site ? denseInstrKey(Obj.Site) + 1 : 0);
    W.vu32(Obj.AllocCtx);
    encodeType(Obj.Ty, W);
    W.vu32(Obj.CtxDepth);
  }

  const CallGraph &CG = PTA.callGraph();

  // Context chain. The interface has no context count, but every
  // context id a query can name appears as a call graph node context
  // or an object's allocation context (context-defining objects are
  // in the table, so chains are covered transitively).
  unsigned NumCtx = 1;
  for (const AbstractObject &Obj : Objects)
    NumCtx = std::max(NumCtx, Obj.AllocCtx + 1);
  for (const MethodCtx &N : CG.nodes())
    NumCtx = std::max(NumCtx, N.Ctx + 1);
  W.vu32(NumCtx);
  for (unsigned Ctx = 1; Ctx != NumCtx; ++Ctx)
    W.vu32(PTA.contextObject(Ctx));

  // Call graph: nodes then edges, in creation order, so decode-side
  // replay through getOrCreateNode/addEdge reproduces every id.
  W.vu64(CG.nodes().size());
  for (const MethodCtx &N : CG.nodes()) {
    W.vu32(N.M->id());
    W.vu32(N.Ctx);
  }
  W.vu64(CG.edges().size());
  for (const CallEdge &E : CG.edges()) {
    W.vu32(E.CallerNode);
    W.vu64(denseInstrKey(E.Site));
    W.vu32(E.CalleeNode);
  }

  // Points-to rows, enumerated in method-id/local-id order (canonical
  // regardless of the solver's internal table layout). Empty rows are
  // elided: absent keys already answer with the empty set.
  std::vector<std::pair<uint64_t, const BitSet *>> MergedRows;
  std::vector<std::pair<std::pair<uint64_t, unsigned>, const BitSet *>>
      CtxRows;
  for (const auto &M : P.methods()) {
    const std::vector<unsigned> &Nodes = CG.nodesOf(M.get());
    std::vector<unsigned> Ctxs;
    Ctxs.reserve(Nodes.size());
    for (unsigned NId : Nodes)
      Ctxs.push_back(CG.node(NId).Ctx);
    std::sort(Ctxs.begin(), Ctxs.end());
    Ctxs.erase(std::unique(Ctxs.begin(), Ctxs.end()), Ctxs.end());
    for (const auto &L : M->locals()) {
      const BitSet &Row = PTA.pointsTo(L.get());
      if (Row.count())
        MergedRows.emplace_back(denseLocalKey(L.get()), &Row);
      for (unsigned Ctx : Ctxs) {
        const BitSet &CtxRow = PTA.pointsTo(L.get(), Ctx);
        if (CtxRow.count())
          CtxRows.push_back({{denseLocalKey(L.get()), Ctx}, &CtxRow});
      }
    }
  }
  W.vu64(MergedRows.size());
  for (const auto &[Key, Row] : MergedRows) {
    W.vu64(Key);
    W.bitset(*Row);
  }
  W.vu64(CtxRows.size());
  for (const auto &[Key, Row] : CtxRows) {
    W.vu64(Key.first);
    W.vu32(Key.second);
    W.bitset(*Row);
  }

  // Proven-safe casts, by dense key, over every cast in the program
  // (the verdict for unreachable casts round-trips too).
  std::vector<uint64_t> OKCasts;
  for (const auto &M : P.methods())
    for (const Instr *I : M->instrs())
      if (const auto *Cast = dyn_cast<CastInstr>(I))
        if (PTA.castCannotFail(Cast))
          OKCasts.push_back(denseInstrKey(Cast));
  W.vu64(OKCasts.size());
  for (uint64_t Key : OKCasts)
    W.vu64(Key);
}

std::unique_ptr<PointsToResult> tsl::decodePointsTo(ByteReader &R,
                                                    const Program &P) {
  auto Res = std::make_unique<SnapshotPointsToResult>();
  Res->Report = getReport(R);
  Res->Stats = getStats(R);
  Res->NumConstraintNodes = R.vu32();

  const uint64_t NumObjects = R.vu64();
  Res->Objects.reserve(NumObjects);
  for (uint64_t I = 0; I != NumObjects; ++I) {
    const uint64_t SiteRef = R.vu64();
    const Instr *Site = SiteRef ? instrForKey(P, SiteRef - 1) : nullptr;
    const unsigned AllocCtx = R.vu32();
    const Type *Ty = decodeType(R, P);
    const unsigned CtxDepth = R.vu32();
    Res->Objects.push_back(
        {Site, AllocCtx, Ty, CtxDepth, static_cast<unsigned>(I)});
  }

  const unsigned NumCtx = R.vu32();
  Res->CtxObj.assign(NumCtx, ~0u);
  for (unsigned Ctx = 1; Ctx < NumCtx; ++Ctx) {
    const unsigned Obj = R.vu32();
    if (Obj >= NumObjects)
      throw SerializeError("context defined by unknown object");
    Res->CtxObj[Ctx] = Obj;
  }
  for (const AbstractObject &Obj : Res->Objects)
    if (Obj.AllocCtx >= NumCtx)
      throw SerializeError("object in unknown context");

  const uint64_t NumNodes = R.vu64();
  for (uint64_t I = 0; I != NumNodes; ++I) {
    Method *M = methodForId(P, R.vu32());
    const unsigned Ctx = R.vu32();
    if (Ctx >= NumCtx)
      throw SerializeError("call graph node in unknown context");
    if (Res->CG.getOrCreateNode(M, Ctx) != I)
      throw SerializeError("duplicate call graph node");
  }
  const uint64_t NumEdges = R.vu64();
  for (uint64_t I = 0; I != NumEdges; ++I) {
    const unsigned Caller = R.vu32();
    const uint64_t SiteKey = R.vu64();
    const unsigned Callee = R.vu32();
    if (Caller >= NumNodes || Callee >= NumNodes)
      throw SerializeError("call edge endpoint out of range");
    const auto *Site = dyn_cast<CallInstr>(instrForKey(P, SiteKey));
    if (!Site)
      throw SerializeError("call edge site is not a call");
    if (!Res->CG.addEdge(Caller, Site, Callee))
      throw SerializeError("duplicate call edge");
  }

  const uint64_t NumMerged = R.vu64();
  if (NumMerged > R.remaining())
    throw SerializeError("points-to row count exceeds payload");
  Res->Merged.reserve(NumMerged);
  for (uint64_t I = 0; I != NumMerged; ++I) {
    const uint64_t Key = R.vu64();
    (void)localForKey(P, Key); // Range check.
    BitSet Row = R.bitset();
    checkRow(Row, NumObjects);
    if (!Res->Merged.emplace(Key, std::move(Row)).second)
      throw SerializeError("duplicate points-to row");
  }
  const uint64_t NumCtxRows = R.vu64();
  for (uint64_t I = 0; I != NumCtxRows; ++I) {
    const uint64_t Key = R.vu64();
    (void)localForKey(P, Key);
    const unsigned Ctx = R.vu32();
    if (Ctx >= NumCtx)
      throw SerializeError("points-to row in unknown context");
    BitSet Row = R.bitset();
    checkRow(Row, NumObjects);
    if (!Res->PerCtx.emplace(std::make_pair(Key, Ctx), std::move(Row))
             .second)
      throw SerializeError("duplicate per-context points-to row");
  }

  const uint64_t NumCasts = R.vu64();
  if (NumCasts > R.remaining())
    throw SerializeError("cast verdict count exceeds payload");
  Res->CastOK.reserve(NumCasts);
  for (uint64_t I = 0; I != NumCasts; ++I) {
    const uint64_t Key = R.vu64();
    if (!isa<CastInstr>(instrForKey(P, Key)))
      throw SerializeError("cast verdict on a non-cast instruction");
    if (!Res->CastOK.insert(Key).second)
      throw SerializeError("duplicate cast verdict");
  }

  Res->CH = std::make_unique<ClassHierarchy>(P);
  return Res;
}
