//===-- Snapshot.h - Serialized points-to artifact --------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encode/decode of a PointsToResult for the artifact
/// snapshots (DESIGN.md section 14). The encoder enumerates any
/// result through the public PointsToResult interface — object
/// table, context chain, merged and per-context points-to rows,
/// call graph, cast verdicts, stats — with every identity written
/// as a dense id (denseInstrKey / denseLocalKey / method id), never
/// a pointer. The decoder materializes a SnapshotPointsToResult
/// (private to the .cpp) that answers every query identically to
/// the encoded result; its applyIncrementalUpdate soundly declines,
/// so an edit after a warm start falls back to a cold points-to
/// rebuild of the patched program.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_PTA_SNAPSHOT_H
#define THINSLICER_PTA_SNAPSHOT_H

#include "pta/PointsTo.h"
#include "support/Serialize.h"

#include <memory>

namespace tsl {

/// Writes the PTA section payload. \p P must be the program \p PTA
/// was computed over (dense keys are resolved against it on decode).
void encodePointsTo(const PointsToResult &PTA, const Program &P,
                    ByteWriter &W);

/// Rebuilds a queryable points-to result from an encodePointsTo()
/// payload. All dense keys resolve through \p P, which must outlive
/// the result. Throws SerializeError on malformed input.
std::unique_ptr<PointsToResult> decodePointsTo(ByteReader &R,
                                               const Program &P);

} // namespace tsl

#endif // THINSLICER_PTA_SNAPSHOT_H
