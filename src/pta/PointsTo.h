//===-- PointsTo.h - Andersen points-to analysis ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subset-based (Andersen-style) points-to analysis with on-the-fly
/// call graph construction, mirroring the paper's configuration
/// (Section 6.1): a field-sensitive Andersen analysis [4, 23] with
/// object-sensitive cloning [16] for methods of key container classes.
/// The precision knob PTAOptions::ObjSensContainers reproduces the
/// paper's ThinNoObjSens/TradNoObjSens ablation columns.
///
/// Abstract objects are allocation sites, cloned by allocation context
/// inside container methods so each Vector gets its own internal
/// elems array. Casts filter by declared type, which is what lets the
/// tough-cast experiment (Table 3) distinguish casts the analysis can
/// verify from "tough" ones.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_PTA_POINTSTO_H
#define THINSLICER_PTA_POINTSTO_H

#include "cg/CallGraph.h"
#include "cg/ClassHierarchy.h"
#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/BitSet.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsl {

/// Configuration of the pointer analysis.
struct PTAOptions {
  /// Clone methods of container classes per receiver allocation site
  /// (the paper's "fully object-sensitive handling of key collections
  /// classes" [16]). Off = the NoObjSens ablation.
  bool ObjSensContainers = true;

  /// Class names treated as containers for cloning purposes. The
  /// collections' internal node/entry classes must be listed too:
  /// without them, entry constructors run context-insensitively and
  /// merge the stored values across all containers.
  std::vector<std::string> ContainerClasses = {
      "Vector",   "ArrayList", "LinkedList", "Stack",
      "HashMap",  "Hashtable", "HashSet",    "Queue",
      "MapEntry", "ListNode",
  };

  /// Maximum depth of nested allocation contexts (bounds recursion
  /// through containers-of-containers).
  unsigned MaxObjSensDepth = 3;
};

/// An abstract heap object: an allocation site plus its allocation
/// context (0 outside of cloned container methods).
struct AbstractObject {
  const Instr *Site;  ///< New/NewArray/ConstString/Read/StrOp.
  unsigned AllocCtx;  ///< Context the allocating method ran in.
  const Type *Ty;     ///< Runtime type of instances from this site.
  unsigned CtxDepth;  ///< Nesting depth of AllocCtx (0 for ctx 0).
  unsigned Id;
};

/// Results of the analysis: object table, points-to sets, alias and
/// dispatch queries, and the constructed call graph.
class PointsToResult {
public:
  virtual ~PointsToResult() = default;

  virtual const std::vector<AbstractObject> &objects() const = 0;

  /// Points-to set of \p L merged over all contexts of its method.
  virtual const BitSet &pointsTo(const Local *L) const = 0;

  /// Points-to set of \p L in one cloning context of its method
  /// (empty when the clone was never analyzed). The clone-level SDG
  /// uses this to keep the object-sensitive container precision that
  /// context-merged sets would erase.
  virtual const BitSet &pointsTo(const Local *L, unsigned Ctx) const = 0;

  /// Per-context may-alias.
  bool mayAlias(const Local *A, unsigned CtxA, const Local *B,
                unsigned CtxB) const {
    return pointsTo(A, CtxA).intersects(pointsTo(B, CtxB));
  }

  /// True when the two locals may reference a common object.
  bool mayAlias(const Local *A, const Local *B) const {
    return pointsTo(A).intersects(pointsTo(B));
  }

  /// Objects in both points-to sets (used by thin-slice aliasing
  /// explanations, paper Section 4.1).
  BitSet commonObjects(const Local *A, const Local *B) const {
    BitSet Out = pointsTo(A);
    Out.intersectWith(pointsTo(B));
    return Out;
  }

  virtual const CallGraph &callGraph() const = 0;
  virtual const ClassHierarchy &hierarchy() const = 0;

  /// True when the analysis proved the cast can never fail: every
  /// object flowing into the operand already has the target type.
  virtual bool castCannotFail(const CastInstr *Cast) const = 0;

  /// Number of constraint-graph nodes (scalar pointer variables plus
  /// heap partitions); a size statistic for benchmarks.
  virtual unsigned numConstraintNodes() const = 0;
};

/// Runs the analysis from \p P's main method. \p P must be in SSA form.
std::unique_ptr<PointsToResult> runPointsTo(Program &P,
                                            const PTAOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_PTA_POINTSTO_H
