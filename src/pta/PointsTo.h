//===-- PointsTo.h - Andersen points-to analysis ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subset-based (Andersen-style) points-to analysis with on-the-fly
/// call graph construction, mirroring the paper's configuration
/// (Section 6.1): a field-sensitive Andersen analysis [4, 23] with
/// object-sensitive cloning [16] for methods of key container classes.
/// The precision knob PTAOptions::ObjSensContainers reproduces the
/// paper's ThinNoObjSens/TradNoObjSens ablation columns.
///
/// Abstract objects are allocation sites, cloned by allocation context
/// inside container methods so each Vector gets its own internal
/// elems array. Casts filter by declared type, which is what lets the
/// tough-cast experiment (Table 3) distinguish casts the analysis can
/// verify from "tough" ones.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_PTA_POINTSTO_H
#define THINSLICER_PTA_POINTSTO_H

#include "cg/CallGraph.h"
#include "cg/ClassHierarchy.h"
#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/BitSet.h"
#include "support/Budget.h"
#include "support/Worklist.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tsl {

class ThreadPool;

/// Configuration of the pointer analysis.
struct PTAOptions {
  /// Clone methods of container classes per receiver allocation site
  /// (the paper's "fully object-sensitive handling of key collections
  /// classes" [16]). Off = the NoObjSens ablation.
  bool ObjSensContainers = true;

  /// Class names treated as containers for cloning purposes. The
  /// collections' internal node/entry classes must be listed too:
  /// without them, entry constructors run context-insensitively and
  /// merge the stored values across all containers.
  std::vector<std::string> ContainerClasses = {
      "Vector",   "ArrayList", "LinkedList", "Stack",
      "HashMap",  "Hashtable", "HashSet",    "Queue",
      "MapEntry", "ListNode",
  };

  /// Maximum depth of nested allocation contexts (bounds recursion
  /// through containers-of-containers).
  unsigned MaxObjSensDepth = 3;

  //===--------------------------------------------------------------===//
  // Solver configuration. The defaults are the optimized solver; turn
  // everything off (and use WorklistPolicy::FIFO) for the naive
  // full-set propagation solver, kept as a differential-testing
  // oracle. All settings produce identical analysis results — only
  // the amount of work to reach the fixed point differs.
  //===--------------------------------------------------------------===//

  /// Difference propagation: each constraint-graph node tracks the
  /// objects added since its last visit, and only that delta flows
  /// along copy edges and into deferred load/store/call constraints.
  bool DeltaPropagation = true;

  /// Online (lazy) cycle elimination à la Hardekopf–Lin: when a
  /// propagation along an unfiltered copy edge changes nothing, run a
  /// cycle check once for that edge and collapse any copy-edge SCC
  /// found onto a single representative node.
  bool CycleElimination = true;

  /// Visit order of the solver worklist. Topological order is the
  /// default: it moves each delta bit down long copy chains in one
  /// sweep, where FIFO and LRF degenerate to one-hop-per-pop
  /// round-robin on ring- and chain-shaped flow (see
  /// bench_pta_solver for the measured gap).
  WorklistPolicy Policy = WorklistPolicy::Topo;

  /// Bulk-synchronous parallel frontier processing: each solver round
  /// drains the whole worklist at once, computes the type-filtered
  /// prospective deltas of the drained nodes' cast edges across Pool's
  /// workers — pure reads of the frozen constraint graph — and then
  /// applies every propagation, constraint, and cycle collapse on the
  /// calling thread in drain order. The parallel phase computes pure
  /// functions of frozen state, so the mutation trace (and with it
  /// every artifact and telemetry counter) is byte-identical for every
  /// pool size, including a null pool. The round granularity visits
  /// nodes in a different order than the per-pop sequential solver, so
  /// visit-order-assigned object/context ids may differ from
  /// ParallelFrontier=false — the two modes reach the same fixpoint
  /// (the differential solver tests canonicalize ids), but they are
  /// distinct cache keys. Requires DeltaPropagation; with it off the
  /// solve falls back to the sequential loop.
  bool ParallelFrontier = false;

  /// Shared pool for ParallelFrontier. Not owned; may be null.
  ThreadPool *Pool = nullptr;

  /// Optional resource budget. When the solver exhausts it (deadline
  /// or MaxPtaPropagations), the analysis degrades to a sound coarse
  /// result: the CHA call graph plus an all-heap points-to
  /// over-approximation (every reference points to every allocation
  /// site). Null (the default) imposes no limits.
  const AnalysisBudget *Budget = nullptr;
};

/// Work counters of one solver run, surfaced through PointsToResult,
/// printed by `thinslice --pta-stats`, and exported as benchmark
/// counters by bench_pta_solver.
struct SolverStats {
  unsigned NumNodes = 0;      ///< Constraint-graph nodes created.
  unsigned NumRepNodes = 0;   ///< Nodes still representatives at the end.
  unsigned NumCopyEdges = 0;  ///< Copy edges added (including filtered).
  unsigned NumConstraints = 0; ///< Deferred load/store/array/call constraints.
  unsigned NumObjects = 0;    ///< Abstract objects created.
  uint64_t WorklistPops = 0;  ///< Nodes popped from the worklist.
  uint64_t Propagations = 0;  ///< Edge propagations that changed the target.
  uint64_t NoChangePropagations = 0; ///< Edge propagations that did not.
  uint64_t DeltaBitsMoved = 0; ///< Total set bits pushed along edges.
  uint64_t ConstraintEvals = 0; ///< applyConstraint re-evaluations.
  unsigned CyclesCollapsed = 0; ///< SCC collapse events.
  unsigned NodesMerged = 0;   ///< Nodes folded into a representative.
  double SolveSeconds = 0;    ///< Wall time of the fixed-point loop.
  double FinalizeSeconds = 0; ///< Wall time of result finalization.

  std::string str() const;
};

/// An abstract heap object: an allocation site plus its allocation
/// context (0 outside of cloned container methods).
struct AbstractObject {
  const Instr *Site;  ///< New/NewArray/ConstString/Read/StrOp.
  unsigned AllocCtx;  ///< Context the allocating method ran in.
  const Type *Ty;     ///< Runtime type of instances from this site.
  unsigned CtxDepth;  ///< Nesting depth of AllocCtx (0 for ctx 0).
  unsigned Id;
};

/// Input to applyIncrementalUpdate(): the methods whose bodies were
/// swapped by applyIncrementalCompile(), plus the instructions and
/// locals of the retired bodies (which the caller must keep alive —
/// see IncrementalCompileResult::RetiredBodies — because they are
/// used here as retraction keys).
struct PTAUpdateRequest {
  std::vector<Method *> DirtyMethods;
  std::unordered_set<const Instr *> DeadInstrs;
  std::unordered_set<const Local *> DeadLocals;
};

/// Outcome of applyIncrementalUpdate(). When Applied is false the
/// update declined or aborted (Reason says why) and the result object
/// may be in a partially-retracted state: the caller must discard it
/// and re-run the analysis cold. When true, every query answers as if
/// the analysis had been re-run from scratch on the patched program
/// (modulo object/context id assignment, which is visit-order defined
/// either way), and AffectedMethods lists every method whose
/// points-to or call-graph facts may differ from the pre-edit run —
/// downstream stages only need to recompute those.
struct PTAUpdateResult {
  bool Applied = false;
  std::string Reason;
  std::vector<Method *> AffectedMethods;
};

/// Results of the analysis: object table, points-to sets, alias and
/// dispatch queries, and the constructed call graph.
class PointsToResult {
public:
  virtual ~PointsToResult() = default;

  virtual const std::vector<AbstractObject> &objects() const = 0;

  /// The abstract object that defines cloning context \p Ctx, or ~0u
  /// for the context-insensitive context 0. Context and object ids
  /// are assigned in solver-visit order, so clients comparing two
  /// analysis runs (e.g. the differential solver tests) must
  /// canonicalize contexts through this chain rather than compare
  /// raw ids.
  virtual unsigned contextObject(unsigned Ctx) const = 0;

  /// Points-to set of \p L merged over all contexts of its method.
  virtual const BitSet &pointsTo(const Local *L) const = 0;

  /// Points-to set of \p L in one cloning context of its method
  /// (empty when the clone was never analyzed). The clone-level SDG
  /// uses this to keep the object-sensitive container precision that
  /// context-merged sets would erase.
  virtual const BitSet &pointsTo(const Local *L, unsigned Ctx) const = 0;

  /// Per-context may-alias.
  bool mayAlias(const Local *A, unsigned CtxA, const Local *B,
                unsigned CtxB) const {
    return pointsTo(A, CtxA).intersects(pointsTo(B, CtxB));
  }

  /// True when the two locals may reference a common object.
  bool mayAlias(const Local *A, const Local *B) const {
    return pointsTo(A).intersects(pointsTo(B));
  }

  /// Objects in both points-to sets (used by thin-slice aliasing
  /// explanations, paper Section 4.1).
  BitSet commonObjects(const Local *A, const Local *B) const {
    BitSet Out = pointsTo(A);
    Out.intersectWith(pointsTo(B));
    return Out;
  }

  virtual const CallGraph &callGraph() const = 0;
  virtual const ClassHierarchy &hierarchy() const = 0;

  /// True when the analysis proved the cast can never fail: every
  /// object flowing into the operand already has the target type.
  virtual bool castCannotFail(const CastInstr *Cast) const = 0;

  /// Number of constraint-graph nodes created (scalar pointer
  /// variables plus heap partitions); a size statistic for
  /// benchmarks. Cycle elimination may collapse some of these onto
  /// representatives — see stats().NumRepNodes.
  virtual unsigned numConstraintNodes() const = 0;

  /// Work counters of the solver run that produced this result.
  virtual const SolverStats &stats() const = 0;

  /// Budget status of the run: Complete, or Degraded with the coarse
  /// CHA/all-heap fallback (see PTAOptions::Budget).
  virtual const StageReport &report() const = 0;

  /// Retract-and-replay update after an incremental recompile: removes
  /// every fact derived from the retired bodies, replays the dirty
  /// bodies' constraints, and re-solves to the fixed point. The solver
  /// declines (sound cold-rebuild fallback) whenever retraction cannot
  /// be proven exact: a retracted node was merged into a collapsed
  /// cycle, a retracted allocation defines a cloning context, a
  /// constraint premise shrank (its derived edges may be stale), or an
  /// edit left stale unreachable call-graph nodes. The default
  /// implementation never applies.
  virtual PTAUpdateResult applyIncrementalUpdate(const PTAUpdateRequest &) {
    return {false, "incremental update not supported by this result", {}};
  }
};

/// Runs the analysis from \p P's main method. \p P must be in SSA form.
std::unique_ptr<PointsToResult> runPointsTo(Program &P,
                                            const PTAOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_PTA_POINTSTO_H
