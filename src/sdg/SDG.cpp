//===-- SDG.cpp - System dependence graph ------------------------------------==//

#include "sdg/SDG.h"

#include <algorithm>

using namespace tsl;

const char *tsl::sdgEdgeKindName(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "flow";
  case SDGEdgeKind::BaseFlow:
    return "base-flow";
  case SDGEdgeKind::Control:
    return "control";
  case SDGEdgeKind::ParamIn:
    return "param-in";
  case SDGEdgeKind::ParamOut:
    return "param-out";
  case SDGEdgeKind::Summary:
    return "summary";
  }
  return "?";
}

unsigned SDG::addStmtNode(const Instr *I, const Method *M, unsigned Ctx) {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return Id;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({SDGNodeKind::Stmt, I, M, 0, Ctx, Id});
  StmtIndex[I].push_back(Id);
  ++NumStmts;
  return Id;
}

IdRange SDG::nodesFor(const Instr *I) const {
  if (!Finalized) {
    auto It = StmtIndex.find(I);
    if (It == StmtIndex.end())
      return {};
    const std::vector<unsigned> &Clones = It->second;
    return {Clones.data(), Clones.data() + Clones.size()};
  }
  auto It = std::lower_bound(StmtKeys.begin(), StmtKeys.end(), I);
  if (It == StmtKeys.end() || *It != I)
    return {};
  std::size_t Idx = static_cast<std::size_t>(It - StmtKeys.begin());
  return {StmtClones.data() + StmtCloneOff[Idx],
          StmtClones.data() + StmtCloneOff[Idx + 1]};
}

int SDG::nodeFor(const Instr *I, unsigned Ctx) const {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return static_cast<int>(Id);
  return -1;
}

unsigned SDG::addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                          const Method *M, unsigned Part, unsigned Ctx) {
  const void *Anchor =
      CallOrNull ? static_cast<const void *>(CallOrNull)
                 : static_cast<const void *>(M);
  auto [It, New] = HeapIndex.emplace(std::make_tuple(K, Anchor, Part, Ctx), 0);
  if (!New)
    return It->second;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({K, CallOrNull, M, Part, Ctx, Id});
  It->second = Id;
  if (K == SDGNodeKind::ScalarActualIn)
    ++NumStmts; // Scalar parameter passing counts as a statement.
  return Id;
}

int SDG::heapNodeFor(SDGNodeKind K, const void *MethodOrCall, unsigned Part,
                     unsigned Ctx) const {
  auto It = HeapIndex.find(std::make_tuple(K, MethodOrCall, Part, Ctx));
  return It == HeapIndex.end() ? -1 : static_cast<int>(It->second);
}

bool SDG::addEdge(unsigned From, unsigned To, SDGEdgeKind K,
                  const CallInstr *Site) {
  if (!EdgeDedup.insert({From, To, K, Site}).second)
    return false;
  unfinalize();
  ++Epoch;
  Edges.push_back({From, To, K, Site});
  return true;
}

unsigned SDG::numEdgesOfKind(SDGEdgeKind K) const {
  unsigned N = 0;
  for (const SDGEdge &E : Edges)
    N += E.K == K;
  return N;
}

void SDG::finalize() {
  if (Finalized)
    return;
  const std::size_t NK = NumSDGEdgeKinds;
  const std::size_t Slots = Nodes.size() * NK;

  // Counting sort of the edge list into kind-partitioned CSR rows, in
  // both directions. Within one (node, kind) segment edges keep
  // ascending edge-id order, so the layout is deterministic.
  InOff.assign(Slots + 1, 0);
  OutOff.assign(Slots + 1, 0);
  for (const SDGEdge &E : Edges) {
    ++InOff[std::size_t(E.To) * NK + sdgKindSlot(E.K) + 1];
    ++OutOff[std::size_t(E.From) * NK + sdgKindSlot(E.K) + 1];
  }
  for (std::size_t I = 1; I <= Slots; ++I) {
    InOff[I] += InOff[I - 1];
    OutOff[I] += OutOff[I - 1];
  }
  InNbr.resize(Edges.size());
  InEdgeId.resize(Edges.size());
  OutNbr.resize(Edges.size());
  OutEdgeId.resize(Edges.size());
  std::vector<unsigned> InCur(InOff.begin(), InOff.end() - 1);
  std::vector<unsigned> OutCur(OutOff.begin(), OutOff.end() - 1);
  for (std::size_t EdgeId = 0; EdgeId != Edges.size(); ++EdgeId) {
    const SDGEdge &E = Edges[EdgeId];
    unsigned InPos = InCur[std::size_t(E.To) * NK + sdgKindSlot(E.K)]++;
    InNbr[InPos] = E.From;
    InEdgeId[InPos] = static_cast<unsigned>(EdgeId);
    unsigned OutPos = OutCur[std::size_t(E.From) * NK + sdgKindSlot(E.K)]++;
    OutNbr[OutPos] = E.To;
    OutEdgeId[OutPos] = static_cast<unsigned>(EdgeId);
  }

  // Compact the statement index into sorted arrays and release the
  // construction-time hash map. Clone order within one instruction is
  // preserved (insertion order = context order; nodeFor() returns the
  // first clone).
  StmtKeys.clear();
  StmtKeys.reserve(StmtIndex.size());
  for (const auto &KV : StmtIndex)
    StmtKeys.push_back(KV.first);
  std::sort(StmtKeys.begin(), StmtKeys.end());
  StmtCloneOff.assign(StmtKeys.size() + 1, 0);
  std::size_t Total = 0;
  for (std::size_t I = 0; I != StmtKeys.size(); ++I) {
    Total += StmtIndex.find(StmtKeys[I])->second.size();
    StmtCloneOff[I + 1] = static_cast<unsigned>(Total);
  }
  StmtClones.clear();
  StmtClones.reserve(Total);
  for (const Instr *Key : StmtKeys) {
    const std::vector<unsigned> &Clones = StmtIndex.find(Key)->second;
    StmtClones.insert(StmtClones.end(), Clones.begin(), Clones.end());
  }
  std::unordered_map<const Instr *, std::vector<unsigned>>().swap(StmtIndex);

  Finalized = true;
}

void SDG::unfinalize() {
  if (!Finalized)
    return;
  Finalized = false;
  // Rebuild the construction-time index: node ids ascend in insertion
  // order, so iterating Nodes restores the original clone order.
  for (const SDGNode &N : Nodes)
    if (N.K == SDGNodeKind::Stmt)
      StmtIndex[N.I].push_back(N.Id);
  std::vector<const Instr *>().swap(StmtKeys);
  std::vector<unsigned>().swap(StmtCloneOff);
  std::vector<unsigned>().swap(StmtClones);
  std::vector<unsigned>().swap(InOff);
  std::vector<unsigned>().swap(OutOff);
  std::vector<unsigned>().swap(InNbr);
  std::vector<unsigned>().swap(OutNbr);
  std::vector<unsigned>().swap(InEdgeId);
  std::vector<unsigned>().swap(OutEdgeId);
}
