//===-- SDG.cpp - System dependence graph ------------------------------------==//

#include "sdg/SDG.h"

#include <algorithm>
#include <cassert>

using namespace tsl;

const char *tsl::sdgEdgeKindName(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "flow";
  case SDGEdgeKind::BaseFlow:
    return "base-flow";
  case SDGEdgeKind::Control:
    return "control";
  case SDGEdgeKind::ParamIn:
    return "param-in";
  case SDGEdgeKind::ParamOut:
    return "param-out";
  case SDGEdgeKind::Summary:
    return "summary";
  }
  return "?";
}

unsigned SDG::addStmtNode(const Instr *I, const Method *M, unsigned Ctx) {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return Id;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({SDGNodeKind::Stmt, I, M, 0, Ctx, Id});
  auto [It, NewKey] = StmtIndex.try_emplace(I);
  It->second.push_back(Id);
  if (NewKey)
    AddedStmtKeys.push_back(I);
  ++NumStmts;
  return Id;
}

IdRange SDG::nodesFor(const Instr *I) const {
  if (!Finalized) {
    auto It = StmtIndex.find(I);
    if (It == StmtIndex.end())
      return {};
    const std::vector<unsigned> &Clones = It->second;
    return {Clones.data(), Clones.data() + Clones.size()};
  }
  auto It = std::lower_bound(StmtKeys.begin(), StmtKeys.end(), I);
  if (It == StmtKeys.end() || *It != I)
    return {};
  std::size_t Idx = static_cast<std::size_t>(It - StmtKeys.begin());
  return {StmtClones.data() + StmtCloneOff[Idx],
          StmtClones.data() + StmtCloneOff[Idx + 1]};
}

int SDG::nodeFor(const Instr *I, unsigned Ctx) const {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return static_cast<int>(Id);
  return -1;
}

unsigned SDG::addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                          const Method *M, unsigned Part, unsigned Ctx) {
  const void *Anchor =
      CallOrNull ? static_cast<const void *>(CallOrNull)
                 : static_cast<const void *>(M);
  auto [It, New] = HeapIndex.emplace(std::make_tuple(K, Anchor, Part, Ctx), 0);
  if (!New)
    return It->second;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({K, CallOrNull, M, Part, Ctx, Id});
  It->second = Id;
  if (K == SDGNodeKind::ScalarActualIn)
    ++NumStmts; // Scalar parameter passing counts as a statement.
  return Id;
}

int SDG::heapNodeFor(SDGNodeKind K, const void *MethodOrCall, unsigned Part,
                     unsigned Ctx) const {
  auto It = HeapIndex.find(std::make_tuple(K, MethodOrCall, Part, Ctx));
  return It == HeapIndex.end() ? -1 : static_cast<int>(It->second);
}

bool SDG::addEdge(unsigned From, unsigned To, SDGEdgeKind K,
                  const CallInstr *Site) {
  if (!EdgeDedup.insert({From, To, K, Site}).second)
    return false;
  unfinalize();
  ++Epoch;
  Edges.push_back({From, To, K, Site});
  return true;
}

void SDG::killNode(unsigned Id) {
  SDGNode &N = Nodes[Id];
  if (N.Dead)
    return;
  unfinalize();
  ++Epoch;
  N.Dead = true;
  ++NumDead;
  if (N.K == SDGNodeKind::Stmt) {
    --NumStmts;
    auto It = StmtIndex.find(N.I);
    if (It != StmtIndex.end()) {
      auto &Clones = It->second;
      Clones.erase(std::remove(Clones.begin(), Clones.end(), Id),
                   Clones.end());
      if (Clones.empty()) {
        RemovedStmtKeys.push_back(N.I);
        StmtIndex.erase(It);
      }
    }
  } else {
    if (N.K == SDGNodeKind::ScalarActualIn)
      --NumStmts;
    const void *Anchor = N.I ? static_cast<const void *>(N.I)
                             : static_cast<const void *>(N.M);
    HeapIndex.erase(std::make_tuple(N.K, Anchor, N.Part, N.Ctx));
  }
}

unsigned SDG::removeEdgesIf(const std::function<bool(const SDGEdge &)> &Pred) {
  unfinalize();
  std::vector<SDGEdge> Kept;
  Kept.reserve(Edges.size());
  unsigned Removed = 0;
  for (const SDGEdge &E : Edges) {
    if (Pred(E)) {
      EdgeDedup.erase({E.From, E.To, E.K, E.Site});
      ++Removed;
    } else {
      Kept.push_back(E);
    }
  }
  if (Removed) {
    Edges.swap(Kept);
    ++Epoch;
  }
  return Removed;
}

void SDG::compact() {
  if (!NumDead)
    return;
  unfinalize();
  ++Epoch;
  std::vector<unsigned> NewId(Nodes.size(), ~0u);
  std::vector<SDGNode> Live;
  Live.reserve(Nodes.size() - NumDead);
  for (SDGNode &N : Nodes) {
    if (N.Dead)
      continue;
    NewId[N.Id] = static_cast<unsigned>(Live.size());
    N.Id = NewId[N.Id];
    Live.push_back(N);
  }
  Nodes.swap(Live);
  NumDead = 0;
  std::vector<SDGEdge> Kept;
  Kept.reserve(Edges.size());
  for (SDGEdge &E : Edges) {
    if (NewId[E.From] == ~0u || NewId[E.To] == ~0u)
      continue; // Edge at a tombstone: dropped with its node.
    E.From = NewId[E.From];
    E.To = NewId[E.To];
    Kept.push_back(E);
  }
  Edges.swap(Kept);
  EdgeDedup.clear();
  for (const SDGEdge &E : Edges)
    EdgeDedup.insert({E.From, E.To, E.K, E.Site});
  keyChurnReset(); // Wholesale rebuild: the churn log is meaningless.
  StmtIndex.clear();
  HeapIndex.clear();
  for (const SDGNode &N : Nodes) {
    if (N.K == SDGNodeKind::Stmt) {
      StmtIndex[N.I].push_back(N.Id);
    } else {
      const void *Anchor = N.I ? static_cast<const void *>(N.I)
                               : static_cast<const void *>(N.M);
      HeapIndex[std::make_tuple(N.K, Anchor, N.Part, N.Ctx)] = N.Id;
    }
  }
}

unsigned SDG::numEdgesOfKind(SDGEdgeKind K) const {
  unsigned N = 0;
  for (const SDGEdge &E : Edges)
    N += E.K == K;
  return N;
}

void SDG::finalize() {
  if (Finalized)
    return;
  const std::size_t NK = NumSDGEdgeKinds;
  const std::size_t Slots = Nodes.size() * NK;

  // Counting sort of the edge list into kind-partitioned CSR rows, in
  // both directions. Within one (node, kind) segment edges keep
  // ascending edge-id order, so the layout is deterministic.
  InOff.assign(Slots + 1, 0);
  OutOff.assign(Slots + 1, 0);
  for (const SDGEdge &E : Edges) {
    ++InOff[std::size_t(E.To) * NK + sdgKindSlot(E.K) + 1];
    ++OutOff[std::size_t(E.From) * NK + sdgKindSlot(E.K) + 1];
  }
  for (std::size_t I = 1; I <= Slots; ++I) {
    InOff[I] += InOff[I - 1];
    OutOff[I] += OutOff[I - 1];
  }
  InNbr.resize(Edges.size());
  InEdgeId.resize(Edges.size());
  OutNbr.resize(Edges.size());
  OutEdgeId.resize(Edges.size());
  // Scatter using the offset arrays themselves as cursors (classic
  // counting-sort trick: after the scatter InOff[s] is the END of
  // segment s, i.e. the start of s+1, so shifting restores offsets
  // without a cursor copy).
  for (std::size_t EdgeId = 0; EdgeId != Edges.size(); ++EdgeId) {
    const SDGEdge &E = Edges[EdgeId];
    unsigned InPos = InOff[std::size_t(E.To) * NK + sdgKindSlot(E.K)]++;
    InNbr[InPos] = E.From;
    InEdgeId[InPos] = static_cast<unsigned>(EdgeId);
    unsigned OutPos = OutOff[std::size_t(E.From) * NK + sdgKindSlot(E.K)]++;
    OutNbr[OutPos] = E.To;
    OutEdgeId[OutPos] = static_cast<unsigned>(EdgeId);
  }
  for (std::size_t I = Slots; I != 0; --I) {
    InOff[I] = InOff[I - 1];
    OutOff[I] = OutOff[I - 1];
  }
  InOff[0] = 0;
  OutOff[0] = 0;

  // Compact the statement index into sorted arrays. The hash map
  // stays live alongside them: incremental patches flip the graph
  // back to construction form, and rebuilding the map there costs
  // more than the map's footprint is worth. Clone order within one
  // instruction is preserved (insertion order = context order;
  // nodeFor() returns the first clone).
  //
  // The sorted key view itself is maintained incrementally: a patch
  // touches a handful of keys, so the previous SortedStmt plus the
  // churn log replays in one linear merge instead of a full gather
  // and sort. The mapped clone vectors are referenced by pointer —
  // stable across unordered_map insert/erase of other keys — so an
  // entry whose clone list merely changed needs no fixup at all.
  auto PairLess = [](const auto &A, const auto &B) {
    return A.first < B.first;
  };
  if (SortedStmt.empty()) {
    SortedStmt.reserve(StmtIndex.size());
    for (const auto &KV : StmtIndex)
      SortedStmt.emplace_back(KV.first, &KV.second);
    std::sort(SortedStmt.begin(), SortedStmt.end(), PairLess);
  } else if (!AddedStmtKeys.empty() || !RemovedStmtKeys.empty()) {
    std::sort(AddedStmtKeys.begin(), AddedStmtKeys.end());
    AddedStmtKeys.erase(
        std::unique(AddedStmtKeys.begin(), AddedStmtKeys.end()),
        AddedStmtKeys.end());
    std::sort(RemovedStmtKeys.begin(), RemovedStmtKeys.end());
    RemovedStmtKeys.erase(
        std::unique(RemovedStmtKeys.begin(), RemovedStmtKeys.end()),
        RemovedStmtKeys.end());
    // Final membership decides keys that churned both ways: a key
    // killed and re-created is skipped from the old view (it is in
    // the removed log) and re-enters through the add list with its
    // fresh clone-vector address; an added key that died again is
    // simply dropped here.
    std::vector<std::pair<const Instr *, const std::vector<unsigned> *>>
        Adds;
    Adds.reserve(AddedStmtKeys.size());
    for (const Instr *K : AddedStmtKeys) {
      auto It = StmtIndex.find(K);
      if (It != StmtIndex.end())
        Adds.emplace_back(K, &It->second);
    }
    std::vector<std::pair<const Instr *, const std::vector<unsigned> *>>
        NewSorted;
    NewSorted.reserve(SortedStmt.size() + Adds.size());
    auto AI = Adds.begin();
    auto RI = RemovedStmtKeys.begin();
    for (const auto &KV : SortedStmt) {
      while (AI != Adds.end() && AI->first < KV.first)
        NewSorted.push_back(*AI++);
      while (RI != RemovedStmtKeys.end() && *RI < KV.first)
        ++RI;
      if (RI != RemovedStmtKeys.end() && *RI == KV.first)
        continue;
      NewSorted.push_back(KV);
    }
    while (AI != Adds.end())
      NewSorted.push_back(*AI++);
    SortedStmt.swap(NewSorted);
  }
  AddedStmtKeys.clear();
  RemovedStmtKeys.clear();
  assert(SortedStmt.size() == StmtIndex.size() &&
         "sorted statement view out of sync with the index");
  StmtKeys.clear();
  StmtKeys.reserve(SortedStmt.size());
  StmtCloneOff.assign(SortedStmt.size() + 1, 0);
  StmtClones.clear();
  for (std::size_t I = 0; I != SortedStmt.size(); ++I) {
    StmtKeys.push_back(SortedStmt[I].first);
    StmtClones.insert(StmtClones.end(), SortedStmt[I].second->begin(),
                      SortedStmt[I].second->end());
    StmtCloneOff[I + 1] = static_cast<unsigned>(StmtClones.size());
  }

  Finalized = true;
}

void SDG::unfinalize() {
  if (!Finalized)
    return;
  Finalized = false;
  // The construction-time statement index stayed live through
  // finalize(), so nothing needs rebuilding — only the query-form
  // arrays are dropped. clear() keeps their capacity: a patched graph
  // refinalizes to (almost) the same sizes, so the buffers recycle.
  StmtKeys.clear();
  StmtCloneOff.clear();
  StmtClones.clear();
  InOff.clear();
  OutOff.clear();
  InNbr.clear();
  OutNbr.clear();
  InEdgeId.clear();
  OutEdgeId.clear();
}
