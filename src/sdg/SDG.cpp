//===-- SDG.cpp - System dependence graph ------------------------------------==//

#include "sdg/SDG.h"

#include "ir/ProgramIO.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace tsl;

const char *tsl::sdgEdgeKindName(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "flow";
  case SDGEdgeKind::BaseFlow:
    return "base-flow";
  case SDGEdgeKind::Control:
    return "control";
  case SDGEdgeKind::ParamIn:
    return "param-in";
  case SDGEdgeKind::ParamOut:
    return "param-out";
  case SDGEdgeKind::Summary:
    return "summary";
  }
  return "?";
}

unsigned SDG::addStmtNode(const Instr *I, const Method *M, unsigned Ctx) {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return Id;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({SDGNodeKind::Stmt, I, M, 0, Ctx, Id});
  const uint64_t Key = denseInstrKey(I);
  auto [It, NewKey] = StmtIndex.try_emplace(Key);
  It->second.push_back(Id);
  if (NewKey)
    AddedStmtKeys.push_back(Key);
  ++NumStmts;
  return Id;
}

IdRange SDG::nodesFor(const Instr *I) const {
  const uint64_t Key = denseInstrKey(I);
  if (!Finalized) {
    auto It = StmtIndex.find(Key);
    if (It == StmtIndex.end())
      return {};
    const std::vector<unsigned> &Clones = It->second;
    return {Clones.data(), Clones.data() + Clones.size()};
  }
  auto It = std::lower_bound(StmtKeys.begin(), StmtKeys.end(), Key);
  if (It == StmtKeys.end() || *It != Key)
    return {};
  std::size_t Idx = static_cast<std::size_t>(It - StmtKeys.begin());
  return {StmtClones.data() + StmtCloneOff[Idx],
          StmtClones.data() + StmtCloneOff[Idx + 1]};
}

int SDG::nodeFor(const Instr *I, unsigned Ctx) const {
  for (unsigned Id : nodesFor(I))
    if (Nodes[Id].Ctx == Ctx)
      return static_cast<int>(Id);
  return -1;
}

unsigned SDG::addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                          const Method *M, unsigned Part, unsigned Ctx) {
  ensureIndexes();
  const uint64_t Anchor = heapAnchorKey(CallOrNull, M);
  auto [It, New] = HeapIndex.emplace(std::make_tuple(K, Anchor, Part, Ctx), 0);
  if (!New)
    return It->second;
  unfinalize();
  ++Epoch;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({K, CallOrNull, M, Part, Ctx, Id});
  It->second = Id;
  if (K == SDGNodeKind::ScalarActualIn)
    ++NumStmts; // Scalar parameter passing counts as a statement.
  return Id;
}

int SDG::heapNodeFor(SDGNodeKind K, const Method *M, unsigned Part,
                     unsigned Ctx) const {
  ensureIndexes();
  auto It =
      HeapIndex.find(std::make_tuple(K, heapAnchorKey(nullptr, M), Part, Ctx));
  return It == HeapIndex.end() ? -1 : static_cast<int>(It->second);
}

int SDG::heapNodeFor(SDGNodeKind K, const Instr *Call, unsigned Part,
                     unsigned Ctx) const {
  ensureIndexes();
  auto It = HeapIndex.find(
      std::make_tuple(K, heapAnchorKey(Call, nullptr), Part, Ctx));
  return It == HeapIndex.end() ? -1 : static_cast<int>(It->second);
}

void SDG::ensureEdgeDedup() {
  if (DedupValid)
    return;
  EdgeDedup.clear();
  for (const SDGEdge &E : Edges)
    EdgeDedup.insert({E.From, E.To, E.K, siteKey(E.Site)});
  DedupValid = true;
}

void SDG::ensureIndexes() const {
  if (IndexesValid)
    return;
  // Only decode() invalidates, and a decoded graph has no tombstones,
  // but skip dead nodes anyway so the rebuild matches compact()'s.
  auto *Self = const_cast<SDG *>(this);
  Self->StmtIndex.clear();
  Self->HeapIndex.clear();
  for (const SDGNode &N : Nodes) {
    if (N.Dead)
      continue;
    if (N.K == SDGNodeKind::Stmt)
      Self->StmtIndex[denseInstrKey(N.I)].push_back(N.Id);
    else
      Self->HeapIndex[std::make_tuple(N.K, heapAnchorKey(N.I, N.M), N.Part,
                                      N.Ctx)] = N.Id;
  }
  Self->IndexesValid = true;
}

bool SDG::addEdge(unsigned From, unsigned To, SDGEdgeKind K,
                  const CallInstr *Site) {
  ensureEdgeDedup();
  if (!EdgeDedup.insert({From, To, K, siteKey(Site)}).second)
    return false;
  unfinalize();
  ++Epoch;
  Edges.push_back({From, To, K, Site});
  return true;
}

void SDG::killNode(unsigned Id) {
  SDGNode &N = Nodes[Id];
  if (N.Dead)
    return;
  unfinalize();
  ++Epoch;
  N.Dead = true;
  ++NumDead;
  if (N.K == SDGNodeKind::Stmt) {
    --NumStmts;
    const uint64_t Key = denseInstrKey(N.I);
    auto It = StmtIndex.find(Key);
    if (It != StmtIndex.end()) {
      auto &Clones = It->second;
      Clones.erase(std::remove(Clones.begin(), Clones.end(), Id),
                   Clones.end());
      if (Clones.empty()) {
        RemovedStmtKeys.push_back(Key);
        StmtIndex.erase(It);
      }
    }
  } else {
    if (N.K == SDGNodeKind::ScalarActualIn)
      --NumStmts;
    HeapIndex.erase(
        std::make_tuple(N.K, heapAnchorKey(N.I, N.M), N.Part, N.Ctx));
  }
}

unsigned SDG::removeEdgesIf(const std::function<bool(const SDGEdge &)> &Pred) {
  unfinalize();
  std::vector<SDGEdge> Kept;
  Kept.reserve(Edges.size());
  unsigned Removed = 0;
  for (const SDGEdge &E : Edges) {
    if (Pred(E)) {
      if (DedupValid)
        EdgeDedup.erase({E.From, E.To, E.K, siteKey(E.Site)});
      ++Removed;
    } else {
      Kept.push_back(E);
    }
  }
  if (Removed) {
    Edges.swap(Kept);
    ++Epoch;
  }
  return Removed;
}

void SDG::compact() {
  if (!NumDead)
    return;
  unfinalize();
  ++Epoch;
  std::vector<unsigned> NewId(Nodes.size(), ~0u);
  std::vector<SDGNode> Live;
  Live.reserve(Nodes.size() - NumDead);
  for (SDGNode &N : Nodes) {
    if (N.Dead)
      continue;
    NewId[N.Id] = static_cast<unsigned>(Live.size());
    N.Id = NewId[N.Id];
    Live.push_back(N);
  }
  Nodes.swap(Live);
  NumDead = 0;
  std::vector<SDGEdge> Kept;
  Kept.reserve(Edges.size());
  for (SDGEdge &E : Edges) {
    if (NewId[E.From] == ~0u || NewId[E.To] == ~0u)
      continue; // Edge at a tombstone: dropped with its node.
    E.From = NewId[E.From];
    E.To = NewId[E.To];
    Kept.push_back(E);
  }
  Edges.swap(Kept);
  EdgeDedup.clear();
  for (const SDGEdge &E : Edges)
    EdgeDedup.insert({E.From, E.To, E.K, siteKey(E.Site)});
  DedupValid = true;
  keyChurnReset(); // Wholesale rebuild: the churn log is meaningless.
  StmtIndex.clear();
  HeapIndex.clear();
  for (const SDGNode &N : Nodes) {
    if (N.K == SDGNodeKind::Stmt) {
      StmtIndex[denseInstrKey(N.I)].push_back(N.Id);
    } else {
      HeapIndex[std::make_tuple(N.K, heapAnchorKey(N.I, N.M), N.Part,
                                N.Ctx)] = N.Id;
    }
  }
  IndexesValid = true;
}

unsigned SDG::numEdgesOfKind(SDGEdgeKind K) const {
  unsigned N = 0;
  for (const SDGEdge &E : Edges)
    N += E.K == K;
  return N;
}

void SDG::buildCSR() {
  const std::size_t NK = NumSDGEdgeKinds;
  const std::size_t Slots = Nodes.size() * NK;

  // Counting sort of the edge list into kind-partitioned CSR rows, in
  // both directions. Within one (node, kind) segment edges keep
  // ascending edge-id order, so the layout is deterministic.
  InOff.assign(Slots + 1, 0);
  OutOff.assign(Slots + 1, 0);
  for (const SDGEdge &E : Edges) {
    ++InOff[std::size_t(E.To) * NK + sdgKindSlot(E.K) + 1];
    ++OutOff[std::size_t(E.From) * NK + sdgKindSlot(E.K) + 1];
  }
  for (std::size_t I = 1; I <= Slots; ++I) {
    InOff[I] += InOff[I - 1];
    OutOff[I] += OutOff[I - 1];
  }
  InNbr.resize(Edges.size());
  InEdgeId.resize(Edges.size());
  OutNbr.resize(Edges.size());
  OutEdgeId.resize(Edges.size());
  // Scatter using the offset arrays themselves as cursors (classic
  // counting-sort trick: after the scatter InOff[s] is the END of
  // segment s, i.e. the start of s+1, so shifting restores offsets
  // without a cursor copy).
  for (std::size_t EdgeId = 0; EdgeId != Edges.size(); ++EdgeId) {
    const SDGEdge &E = Edges[EdgeId];
    unsigned InPos = InOff[std::size_t(E.To) * NK + sdgKindSlot(E.K)]++;
    InNbr[InPos] = E.From;
    InEdgeId[InPos] = static_cast<unsigned>(EdgeId);
    unsigned OutPos = OutOff[std::size_t(E.From) * NK + sdgKindSlot(E.K)]++;
    OutNbr[OutPos] = E.To;
    OutEdgeId[OutPos] = static_cast<unsigned>(EdgeId);
  }
  for (std::size_t I = Slots; I != 0; --I) {
    InOff[I] = InOff[I - 1];
    OutOff[I] = OutOff[I - 1];
  }
  InOff[0] = 0;
  OutOff[0] = 0;
}

void SDG::finalize() {
  if (Finalized)
    return;
  buildCSR();

  // Compact the statement index into sorted arrays. The hash map
  // stays live alongside them: incremental patches flip the graph
  // back to construction form, and rebuilding the map there costs
  // more than the map's footprint is worth. Clone order within one
  // instruction is preserved (insertion order = context order;
  // nodeFor() returns the first clone).
  //
  // The sorted key view itself is maintained incrementally: a patch
  // touches a handful of keys, so the previous SortedStmt plus the
  // churn log replays in one linear merge instead of a full gather
  // and sort. The mapped clone vectors are referenced by pointer —
  // stable across unordered_map insert/erase of other keys — so an
  // entry whose clone list merely changed needs no fixup at all.
  auto PairLess = [](const auto &A, const auto &B) {
    return A.first < B.first;
  };
  if (SortedStmt.empty()) {
    SortedStmt.reserve(StmtIndex.size());
    for (const auto &KV : StmtIndex)
      SortedStmt.emplace_back(KV.first, &KV.second);
    std::sort(SortedStmt.begin(), SortedStmt.end(), PairLess);
  } else if (!AddedStmtKeys.empty() || !RemovedStmtKeys.empty()) {
    std::sort(AddedStmtKeys.begin(), AddedStmtKeys.end());
    AddedStmtKeys.erase(
        std::unique(AddedStmtKeys.begin(), AddedStmtKeys.end()),
        AddedStmtKeys.end());
    std::sort(RemovedStmtKeys.begin(), RemovedStmtKeys.end());
    RemovedStmtKeys.erase(
        std::unique(RemovedStmtKeys.begin(), RemovedStmtKeys.end()),
        RemovedStmtKeys.end());
    // Final membership decides keys that churned both ways: a key
    // killed and re-created is skipped from the old view (it is in
    // the removed log) and re-enters through the add list with its
    // fresh clone-vector address; an added key that died again is
    // simply dropped here.
    std::vector<std::pair<uint64_t, const std::vector<unsigned> *>> Adds;
    Adds.reserve(AddedStmtKeys.size());
    for (uint64_t K : AddedStmtKeys) {
      auto It = StmtIndex.find(K);
      if (It != StmtIndex.end())
        Adds.emplace_back(K, &It->second);
    }
    std::vector<std::pair<uint64_t, const std::vector<unsigned> *>> NewSorted;
    NewSorted.reserve(SortedStmt.size() + Adds.size());
    auto AI = Adds.begin();
    auto RI = RemovedStmtKeys.begin();
    for (const auto &KV : SortedStmt) {
      while (AI != Adds.end() && AI->first < KV.first)
        NewSorted.push_back(*AI++);
      while (RI != RemovedStmtKeys.end() && *RI < KV.first)
        ++RI;
      if (RI != RemovedStmtKeys.end() && *RI == KV.first)
        continue;
      NewSorted.push_back(KV);
    }
    while (AI != Adds.end())
      NewSorted.push_back(*AI++);
    SortedStmt.swap(NewSorted);
  }
  AddedStmtKeys.clear();
  RemovedStmtKeys.clear();
  assert(SortedStmt.size() == StmtIndex.size() &&
         "sorted statement view out of sync with the index");
  StmtKeys.clear();
  StmtKeys.reserve(SortedStmt.size());
  StmtCloneOff.assign(SortedStmt.size() + 1, 0);
  StmtClones.clear();
  for (std::size_t I = 0; I != SortedStmt.size(); ++I) {
    StmtKeys.push_back(SortedStmt[I].first);
    StmtClones.insert(StmtClones.end(), SortedStmt[I].second->begin(),
                      SortedStmt[I].second->end());
    StmtCloneOff[I + 1] = static_cast<unsigned>(StmtClones.size());
  }

  Finalized = true;
}

void SDG::unfinalize() {
  if (!Finalized)
    return;
  // Reopening for mutation needs the construction-form indexes,
  // which a decoded graph defers (see ensureIndexes).
  ensureIndexes();
  Finalized = false;
  // The construction-time statement index stayed live through
  // finalize(), so only the query-form arrays are dropped. clear()
  // keeps their capacity: a patched graph refinalizes to (almost)
  // the same sizes, so the buffers recycle.
  StmtKeys.clear();
  StmtCloneOff.clear();
  StmtClones.clear();
  InOff.clear();
  OutOff.clear();
  InNbr.clear();
  OutNbr.clear();
  InEdgeId.clear();
  OutEdgeId.clear();
}

//===----------------------------------------------------------------------===//
// Snapshot codec
//===----------------------------------------------------------------------===//

void SDG::encode(ByteWriter &W) const {
  putReport(W, Report);

  // Live nodes, remapped to sequential ids so a post-patch graph with
  // tombstones encodes as its compacted equivalent.
  std::vector<unsigned> NewId(Nodes.size(), ~0u);
  unsigned NumLive = 0;
  for (const SDGNode &N : Nodes)
    if (!N.Dead)
      NewId[N.Id] = NumLive++;
  W.vu64(NumLive);
  for (const SDGNode &N : Nodes) {
    if (N.Dead)
      continue;
    W.u8(static_cast<uint8_t>(N.K));
    W.vu64(N.I ? denseInstrKey(N.I) + 1 : 0);
    W.vu32(N.M ? N.M->id() + 1 : 0);
    W.vu32(N.Part);
    W.vu32(N.Ctx);
  }

  // Non-Summary edges with live endpoints. Summary edges are the
  // tabulation slicer's lazily re-derived cache, absent from a cold
  // build, so dropping them keeps decode byte-identical to cold.
  uint64_t NumKept = 0;
  for (const SDGEdge &E : Edges)
    if (E.K != SDGEdgeKind::Summary && NewId[E.From] != ~0u &&
        NewId[E.To] != ~0u)
      ++NumKept;
  W.vu64(NumKept);
  for (const SDGEdge &E : Edges) {
    if (E.K == SDGEdgeKind::Summary || NewId[E.From] == ~0u ||
        NewId[E.To] == ~0u)
      continue;
    W.vu32(NewId[E.From]);
    W.vu32(NewId[E.To]);
    W.u8(static_cast<uint8_t>(E.K));
    W.vu64(E.Site ? denseInstrKey(E.Site) + 1 : 0);
  }
}

std::unique_ptr<SDG> SDG::decode(ByteReader &R, const Program &P) {
  auto G = std::make_unique<SDG>(P);
  G->setReport(getReport(R));

  // Direct fill instead of mutation-API replay: the per-call
  // unfinalize/epoch bookkeeping and the edge-dedup set inserts were
  // the bulk of warm-start decode time. Ids are assigned sequentially
  // in encode order, exactly as a replay would, and every check the
  // mutation path performs (anchor shape, duplicate identity, edge
  // bounds) is kept.
  const uint64_t NumNodes = R.vu64();
  // Each node record is at least 5 bytes, so the payload size bounds
  // the count; reject before reserving against a hostile header.
  if (NumNodes > R.remaining())
    throw SerializeError("SDG node count exceeds payload");
  G->Nodes.reserve(NumNodes);
  // Flat (key, id) / identity-tuple collectors instead of the
  // construction-form maps: the sorted statement arrays build from
  // one stable sort below, duplicate identities surface as adjacent
  // equals, and StmtIndex/HeapIndex stay empty until a mutation
  // calls ensureIndexes().
  std::vector<std::pair<uint64_t, unsigned>> StmtPairs;
  std::vector<std::tuple<uint8_t, uint64_t, unsigned, unsigned>> HeapIds;
  for (uint64_t N = 0; N != NumNodes; ++N) {
    uint8_t K = R.u8();
    if (K > static_cast<uint8_t>(SDGNodeKind::HeapHub))
      throw SerializeError("unknown SDG node kind");
    uint64_t IKey = R.vu64();
    uint32_t MId = R.vu32();
    unsigned Part = R.vu32();
    unsigned Ctx = R.vu32();
    const Instr *I = IKey ? instrForKey(P, IKey - 1) : nullptr;
    const Method *M = MId ? methodForId(P, MId - 1) : nullptr;
    const unsigned Id = static_cast<unsigned>(N);
    if (static_cast<SDGNodeKind>(K) == SDGNodeKind::Stmt) {
      if (!I || !M)
        throw SerializeError("statement node without anchor");
      if (Part)
        throw SerializeError("statement node with partition");
      StmtPairs.emplace_back(denseInstrKey(I), Id);
      ++G->NumStmts;
    } else {
      HeapIds.emplace_back(K, heapAnchorKey(I, M), Part, Ctx);
      if (static_cast<SDGNodeKind>(K) == SDGNodeKind::ScalarActualIn)
        ++G->NumStmts;
    }
    G->Nodes.push_back({static_cast<SDGNodeKind>(K), I, M, Part, Ctx, Id});
  }

  // Batch duplicate-identity checks.
  std::sort(HeapIds.begin(), HeapIds.end());
  if (std::adjacent_find(HeapIds.begin(), HeapIds.end()) != HeapIds.end())
    throw SerializeError("duplicate SDG node identity");
  // Stable by key: ids within one key keep stream order — the same
  // clone order the mutation path's insertion-ordered lists produce.
  std::stable_sort(
      StmtPairs.begin(), StmtPairs.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  G->StmtKeys.reserve(StmtPairs.size());
  G->StmtClones.reserve(StmtPairs.size());
  G->StmtCloneOff.push_back(0);
  for (std::size_t I = 0; I != StmtPairs.size();) {
    std::size_t J = I;
    while (J != StmtPairs.size() && StmtPairs[J].first == StmtPairs[I].first)
      ++J;
    for (std::size_t A = I; A != J; ++A)
      for (std::size_t B = A + 1; B != J; ++B)
        if (G->Nodes[StmtPairs[A].second].Ctx ==
            G->Nodes[StmtPairs[B].second].Ctx)
          throw SerializeError("duplicate SDG node identity");
    G->StmtKeys.push_back(StmtPairs[I].first);
    for (std::size_t A = I; A != J; ++A)
      G->StmtClones.push_back(StmtPairs[A].second);
    G->StmtCloneOff.push_back(static_cast<unsigned>(G->StmtClones.size()));
    I = J;
  }

  const uint64_t NumEdges = R.vu64();
  if (NumEdges > R.remaining())
    throw SerializeError("SDG edge count exceeds payload");
  G->Edges.reserve(NumEdges);
  for (uint64_t E = 0; E != NumEdges; ++E) {
    unsigned From = R.vu32();
    unsigned To = R.vu32();
    uint8_t K = R.u8();
    uint64_t SKey = R.vu64();
    if (From >= NumNodes || To >= NumNodes ||
        K > static_cast<uint8_t>(SDGEdgeKind::Summary))
      throw SerializeError("malformed SDG edge");
    const CallInstr *Site = nullptr;
    if (SKey) {
      Site = dyn_cast<CallInstr>(instrForKey(P, SKey - 1));
      if (!Site)
        throw SerializeError("SDG edge site is not a call");
    }
    G->Edges.push_back({From, To, static_cast<SDGEdgeKind>(K), Site});
  }
  // The construction-form indexes stay empty until the first
  // mutation rebuilds them; a warm-started session that only answers
  // queries never does. The statement arrays above plus the CSR
  // adjacency ARE the finalized form, so finalize() itself (which
  // would gather from the empty StmtIndex) must not run.
  G->DedupValid = false;
  G->IndexesValid = false;
  G->Epoch = NumNodes + NumEdges;
  G->buildCSR();
  G->Finalized = true;
  return G;
}
