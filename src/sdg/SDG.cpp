//===-- SDG.cpp - System dependence graph ------------------------------------==//

#include "sdg/SDG.h"

using namespace tsl;

const char *tsl::sdgEdgeKindName(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "flow";
  case SDGEdgeKind::BaseFlow:
    return "base-flow";
  case SDGEdgeKind::Control:
    return "control";
  case SDGEdgeKind::ParamIn:
    return "param-in";
  case SDGEdgeKind::ParamOut:
    return "param-out";
  case SDGEdgeKind::Summary:
    return "summary";
  }
  return "?";
}

unsigned SDG::addStmtNode(const Instr *I, const Method *M, unsigned Ctx) {
  std::vector<unsigned> &Clones = StmtIndex[I];
  for (unsigned Id : Clones)
    if (Nodes[Id].Ctx == Ctx)
      return Id;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({SDGNodeKind::Stmt, I, M, 0, Ctx, Id});
  In.emplace_back();
  Out.emplace_back();
  Clones.push_back(Id);
  ++NumStmts;
  return Id;
}

int SDG::nodeFor(const Instr *I, unsigned Ctx) const {
  auto It = StmtIndex.find(I);
  if (It == StmtIndex.end())
    return -1;
  for (unsigned Id : It->second)
    if (Nodes[Id].Ctx == Ctx)
      return static_cast<int>(Id);
  return -1;
}

unsigned SDG::addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                          const Method *M, unsigned Part, unsigned Ctx) {
  const void *Anchor =
      CallOrNull ? static_cast<const void *>(CallOrNull)
                 : static_cast<const void *>(M);
  auto [It, New] = HeapIndex.emplace(std::make_tuple(K, Anchor, Part, Ctx), 0);
  if (!New)
    return It->second;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({K, CallOrNull, M, Part, Ctx, Id});
  In.emplace_back();
  Out.emplace_back();
  It->second = Id;
  if (K == SDGNodeKind::ScalarActualIn)
    ++NumStmts; // Scalar parameter passing counts as a statement.
  return Id;
}

int SDG::heapNodeFor(SDGNodeKind K, const void *MethodOrCall, unsigned Part,
                     unsigned Ctx) const {
  auto It = HeapIndex.find(std::make_tuple(K, MethodOrCall, Part, Ctx));
  return It == HeapIndex.end() ? -1 : static_cast<int>(It->second);
}

bool SDG::addEdge(unsigned From, unsigned To, SDGEdgeKind K,
                  const CallInstr *Site) {
  if (!EdgeDedup.insert({From, To, K, Site}).second)
    return false;
  unsigned Id = static_cast<unsigned>(Edges.size());
  Edges.push_back({From, To, K, Site});
  In[To].push_back(Id);
  Out[From].push_back(Id);
  return true;
}

unsigned SDG::numEdgesOfKind(SDGEdgeKind K) const {
  unsigned N = 0;
  for (const SDGEdge &E : Edges)
    N += E.K == K;
  return N;
}
