//===-- SDGDot.h - GraphViz export ------------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a dependence graph (or a slice of it) as GraphViz dot, with
/// edge kinds styled the way the paper's Figure 3 draws them: producer
/// flow solid, base-pointer flow dashed, control dotted.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SDG_SDGDOT_H
#define THINSLICER_SDG_SDGDOT_H

#include "sdg/SDG.h"
#include "support/BitSet.h"

#include <string>

namespace tsl {

/// Dot-export options.
struct DotOptions {
  /// Only emit nodes in this set (e.g., a slice); null = whole graph.
  const BitSet *Restrict = nullptr;
  /// Additionally highlight these nodes (bold red).
  const BitSet *Highlight = nullptr;
  /// Skip heap parameter nodes.
  bool SourceStmtsOnly = true;
  /// Cap on emitted nodes (dot rendering degrades beyond this).
  unsigned MaxNodes = 500;
};

/// Renders \p G as a dot digraph.
std::string exportDot(const SDG &G, const DotOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_SDG_SDGDOT_H
