//===-- SDGDot.cpp - GraphViz export ----------------------------------------==//

#include "sdg/SDGDot.h"

using namespace tsl;

namespace {

/// Escapes a label for dot.
std::string escape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

const char *edgeStyle(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "solid";
  case SDGEdgeKind::BaseFlow:
    return "dashed";
  case SDGEdgeKind::Control:
    return "dotted";
  case SDGEdgeKind::ParamIn:
  case SDGEdgeKind::ParamOut:
    return "solid";
  case SDGEdgeKind::Summary:
    return "bold";
  }
  return "solid";
}

const char *edgeColor(SDGEdgeKind K) {
  switch (K) {
  case SDGEdgeKind::Flow:
    return "black";
  case SDGEdgeKind::BaseFlow:
    return "gray50";
  case SDGEdgeKind::Control:
    return "gray35";
  case SDGEdgeKind::ParamIn:
    return "blue4";
  case SDGEdgeKind::ParamOut:
    return "darkgreen";
  case SDGEdgeKind::Summary:
    return "purple";
  }
  return "black";
}

} // namespace

std::string tsl::exportDot(const SDG &G, const DotOptions &Options) {
  const Program &P = G.program();
  std::string Out = "digraph sdg {\n  node [shape=box, fontsize=10];\n";

  auto Included = [&](unsigned Node) {
    if (Options.Restrict && !Options.Restrict->test(Node))
      return false;
    if (Options.SourceStmtsOnly && !G.node(Node).isSourceStmt())
      return false;
    return true;
  };

  unsigned Emitted = 0;
  BitSet EmittedSet(G.numNodes());
  for (unsigned Node = 0; Node != G.numNodes() && Emitted < Options.MaxNodes;
       ++Node) {
    if (!Included(Node))
      continue;
    const SDGNode &N = G.node(Node);
    std::string Label;
    if (N.isSourceStmt()) {
      Label = N.M->qualifiedName(P.strings()) + ":" +
              std::to_string(N.I->loc().Line) + "\\n" + escape(N.I->str(P));
      if (N.K == SDGNodeKind::ScalarActualIn)
        Label += " [actual]";
      if (N.Ctx)
        Label += " @ctx" + std::to_string(N.Ctx);
    } else {
      Label = "heap param #" + std::to_string(N.Part);
    }
    std::string Attrs = "label=\"" + Label + "\"";
    if (Options.Highlight && Options.Highlight->test(Node))
      Attrs += ", color=red, penwidth=2";
    Out += "  n" + std::to_string(Node) + " [" + Attrs + "];\n";
    EmittedSet.insert(Node);
    ++Emitted;
  }

  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    const SDGEdge &E = G.edge(EdgeId);
    if (!EmittedSet.test(E.From) || !EmittedSet.test(E.To))
      continue;
    Out += "  n" + std::to_string(E.From) + " -> n" + std::to_string(E.To) +
           " [style=" + edgeStyle(E.K) + ", color=" + edgeColor(E.K) +
           ", tooltip=\"" + sdgEdgeKindName(E.K) + "\"];\n";
  }
  Out += "}\n";
  return Out;
}
