//===-- SDG.h - System dependence graph --------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system dependence graph (Horwitz-Reps-Binkley [11]) variant used
/// by both slicers (paper Section 5). Nodes are statements plus — in
/// the context-sensitive variant only — heap formal/actual parameter
/// nodes derived from mod-ref (Section 5.3). Edges carry the kind
/// distinctions thin slicing is built on:
///
///  - Flow:     producer flow dependence (value use) — the only
///              intraprocedural kind thin slices follow;
///  - BaseFlow: flow into a base pointer or array index (explainer);
///  - Control:  control dependence, including virtual-dispatch
///              dependence of a call on its receiver (explainer);
///  - ParamIn / ParamOut: interprocedural parameter/return linkage,
///              annotated with the call site for context-sensitive
///              matching;
///  - Summary:  actual-in -> actual-out shortcuts added by the
///              tabulation slicer.
///
/// Edges are stored in dependence direction: an edge From -> To means
/// "To depends on From"; backward slicing walks inEdges.
///
/// The graph has two phases. During construction it is mutable and
/// keeps hash-map indexes. finalize() compacts it into an immutable,
/// query-optimized form: CSR (compressed sparse row) in/out adjacency
/// *partitioned by edge kind*, so a slicer following a set of kinds
/// iterates contiguous neighbor runs with no per-edge branch or
/// edge-record load, plus a sorted-array statement index replacing the
/// unordered_map. buildSDG() returns finalized graphs; a mutation
/// after finalize() transparently reopens the graph (and bumps the
/// epoch that keys cross-query caches such as the tabulation
/// SummaryCache).
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SDG_SDG_H
#define THINSLICER_SDG_SDG_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/Budget.h"
#include "support/Serialize.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tsl {

class ModRefResult;
class PointsToResult;

enum class SDGNodeKind {
  Stmt,
  /// Scalar actual-in: one per (call, operand). Renders at the call's
  /// source line — parameter passing is a producer statement (the
  /// paper's Figure 1 thin slice includes the call line 17).
  ScalarActualIn,
  HeapFormalIn,
  HeapFormalOut,
  HeapActualIn,
  HeapActualOut,
  /// Coarse heap fallback node (budget degradation): one hub per
  /// field / static field / array-element class, with Flow edges
  /// store -> hub -> load. The hub path over-approximates every
  /// precise pairwise write-read edge in O(stores + loads) edges.
  HeapHub,
};

enum class SDGEdgeKind {
  Flow,
  BaseFlow,
  Control,
  ParamIn,
  ParamOut,
  Summary,
};

/// Number of edge kinds — the CSR adjacency partition count.
constexpr unsigned NumSDGEdgeKinds = 6;

/// Bit mask over SDGEdgeKind values; the unit slicers select their
/// followed-edge set with.
using EdgeKindMask = unsigned;

constexpr EdgeKindMask edgeKindMask(SDGEdgeKind K) {
  return 1u << static_cast<unsigned>(K);
}

/// CSR partition slot of each edge kind. Slots order the kinds so the
/// unit slicers' masks select one contiguous run per node: Flow,
/// ParamIn, ParamOut first (the thin mask is slots [0,3)), then
/// BaseFlow, Control (traditional is [0,5)), then Summary.
constexpr unsigned sdgKindSlot(SDGEdgeKind K) {
  constexpr unsigned Slot[NumSDGEdgeKinds] = {
      /*Flow*/ 0, /*BaseFlow*/ 3, /*Control*/ 4,
      /*ParamIn*/ 1, /*ParamOut*/ 2, /*Summary*/ 5};
  return Slot[static_cast<unsigned>(K)];
}

/// The contiguous slot runs a kind mask selects, precomputed once per
/// traversal so the per-node cost of a masked neighbor scan is two
/// offset loads per run (both slicing masks are a single run).
struct EdgeKindRuns {
  struct Run {
    unsigned Begin, End; ///< Slot interval [Begin, End).
  };
  Run Runs[NumSDGEdgeKinds];
  unsigned NumRuns = 0;
};

inline EdgeKindRuns edgeKindRuns(EdgeKindMask Mask) {
  bool Sel[NumSDGEdgeKinds] = {};
  for (unsigned K = 0; K != NumSDGEdgeKinds; ++K)
    if (Mask & (1u << K))
      Sel[sdgKindSlot(static_cast<SDGEdgeKind>(K))] = true;
  EdgeKindRuns R;
  for (unsigned S = 0; S != NumSDGEdgeKinds; ++S) {
    if (!Sel[S])
      continue;
    unsigned B = S;
    while (S + 1 != NumSDGEdgeKinds && Sel[S + 1])
      ++S;
    R.Runs[R.NumRuns++] = {B, S + 1};
  }
  return R;
}

/// Returns a short printable edge-kind name.
const char *sdgEdgeKindName(SDGEdgeKind K);

/// One SDG node.
///
/// In the context-insensitive graph (paper Sec. 5.2), statements are
/// cloned per analysis context of their method — exactly as WALA's SDG
/// keys statements by call-graph node — so the object-sensitive
/// container precision survives into the dependence graph. Ctx is 0
/// everywhere in the context-sensitive (heap-parameter) variant, which
/// models calling contexts with the tabulation instead.
struct SDGNode {
  SDGNodeKind K;
  /// Stmt: the instruction. HeapActual*: the call instruction.
  const Instr *I;
  /// The owning method (for formal nodes and statements alike).
  const Method *M;
  /// Heap partition id (heap parameter nodes), or operand index
  /// (scalar actual-in nodes).
  unsigned Part;
  /// Analysis context of the owning method's clone.
  unsigned Ctx;
  unsigned Id;
  /// Tombstone flag set by SDG::killNode(). A dead node keeps its id
  /// (ids are embedded in edges and the CSR arrays) but is absent
  /// from every index, has no incident edges, and is skipped by
  /// statement lookups. compact() renumbers them away.
  bool Dead = false;

  bool isStmt() const { return K == SDGNodeKind::Stmt; }

  /// True for nodes a user inspects as a source statement: plain
  /// statements and scalar parameter passing at call sites. These are
  /// what the paper's "SDG Statements" metric counts (heap parameter
  /// nodes are excluded).
  bool isSourceStmt() const {
    return K == SDGNodeKind::Stmt || K == SDGNodeKind::ScalarActualIn;
  }

  bool isFormalIn() const {
    return K == SDGNodeKind::HeapFormalIn ||
           (K == SDGNodeKind::Stmt && I && I->kind() == InstrKind::Param);
  }
  bool isFormalOut() const {
    return K == SDGNodeKind::HeapFormalOut ||
           (K == SDGNodeKind::Stmt && I && I->kind() == InstrKind::Ret);
  }
};

/// One SDG edge (From -> To: "To depends on From").
struct SDGEdge {
  unsigned From;
  unsigned To;
  SDGEdgeKind K;
  /// Call site for ParamIn/ParamOut/Summary edges; null otherwise.
  const CallInstr *Site;
};

/// Lightweight view of a contiguous run of unsigned ids (node ids,
/// edge ids, statement-clone ids). Valid as long as the graph is not
/// mutated.
class IdRange {
public:
  IdRange() = default;
  IdRange(const unsigned *B, const unsigned *E) : B(B), E(E) {}

  const unsigned *begin() const { return B; }
  const unsigned *end() const { return E; }
  std::size_t size() const { return static_cast<std::size_t>(E - B); }
  bool empty() const { return B == E; }
  unsigned operator[](std::size_t I) const { return B[I]; }
  unsigned front() const { return *B; }

private:
  const unsigned *B = nullptr;
  const unsigned *E = nullptr;
};

/// The dependence graph plus node/edge indexes.
class SDG {
public:
  explicit SDG(const Program &P) : P(P) {}

  const Program &program() const { return P; }

  //===------------------------------------------------------------------===//
  // Construction (used by SDGBuilder and the tabulation slicer)
  //===------------------------------------------------------------------===//

  unsigned addStmtNode(const Instr *I, const Method *M, unsigned Ctx = 0);
  unsigned addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                       const Method *M, unsigned Part, unsigned Ctx = 0);

  /// Adds an edge if not already present; returns true when new.
  bool addEdge(unsigned From, unsigned To, SDGEdgeKind K,
               const CallInstr *Site = nullptr);

  //===------------------------------------------------------------------===//
  // Incremental maintenance (used by patchSDGIncremental)
  //===------------------------------------------------------------------===//

  /// Tombstones a node: the id survives (edges and CSR embed ids) but
  /// the node leaves every index, so statement seeds and heap-node
  /// lookups no longer find it, and re-adding the same identity later
  /// creates a fresh node. The caller must also remove its incident
  /// edges (removeEdgesIf) — a surviving edge at a dead node would
  /// corrupt slices.
  void killNode(unsigned Id);

  /// Removes every edge matching \p Pred, with its dedup entry, so an
  /// identical edge can be re-added. Returns the number removed.
  unsigned removeEdgesIf(const std::function<bool(const SDGEdge &)> &Pred);

  /// Tombstoned nodes still occupying id slots.
  unsigned numDeadNodes() const { return NumDead; }

  /// Renumbers nodes and edges to drop tombstones (the garbage bound
  /// for long incremental sessions). Every id changes; any remaining
  /// edge at a dead node is dropped.
  void compact();

  //===------------------------------------------------------------------===//
  // Finalization (CSR compaction)
  //===------------------------------------------------------------------===//

  /// Compacts the graph into the immutable query form: edge-kind-
  /// partitioned CSR in/out adjacency and a sorted-array statement
  /// index. The construction-time hash index stays live so patches
  /// can reopen the graph without a rebuild. Idempotent; buildSDG()
  /// calls it before returning.
  void finalize();

  bool finalized() const { return Finalized; }

  /// Const-callable finalization trigger, so read paths on a graph
  /// someone forgot to finalize heal themselves instead of crashing.
  /// Call once before fanning queries out across threads.
  void ensureFinalized() const {
    if (!Finalized)
      const_cast<SDG *>(this)->finalize();
  }

  /// Mutation counter. Bumped by every node/edge addition; caches
  /// derived from the graph (e.g. tabulation summary edges) key on
  /// (graph, epoch) and are invalidated by any mutation.
  uint64_t epoch() const { return Epoch; }

  //===------------------------------------------------------------------===//
  // Queries
  //===------------------------------------------------------------------===//

  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const SDGNode &node(unsigned Id) const { return Nodes[Id]; }
  const std::vector<SDGNode> &nodes() const { return Nodes; }

  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const SDGEdge &edge(unsigned Id) const { return Edges[Id]; }

  /// Edge ids whose To is \p Node (the node's dependences), grouped by
  /// edge kind in sdgKindSlot order.
  IdRange inEdges(unsigned Node) const {
    ensureFinalized();
    return rowEdges(InOff, InEdgeId, Node);
  }
  /// Edge ids whose From is \p Node (the node's dependents).
  IdRange outEdges(unsigned Node) const {
    ensureFinalized();
    return rowEdges(OutOff, OutEdgeId, Node);
  }

  /// In-edge ids of \p Node of exactly kind \p K (a contiguous CSR
  /// segment).
  IdRange inEdgesOfKind(unsigned Node, SDGEdgeKind K) const {
    ensureFinalized();
    return kindEdges(InOff, InEdgeId, Node, K);
  }
  IdRange outEdgesOfKind(unsigned Node, SDGEdgeKind K) const {
    ensureFinalized();
    return kindEdges(OutOff, OutEdgeId, Node, K);
  }

  /// Calls \p Fn(NeighborNode) for every in-edge of \p Node whose kind
  /// is in \p Mask — the slicing hot path. The partition slot order
  /// makes both slicing masks one contiguous run, so the scan is a
  /// tight loop over the neighbor array (no edge-record loads). Hot
  /// loops should precompute edgeKindRuns(Mask) once and use the runs
  /// overload; the mask overloads recompute the runs per call.
  template <typename Fn>
  void forEachInNeighbor(unsigned Node, EdgeKindMask Mask, Fn F) const {
    forEachNeighborRow(InOff, InNbr, Node, edgeKindRuns(Mask), F);
  }
  template <typename Fn>
  void forEachOutNeighbor(unsigned Node, EdgeKindMask Mask, Fn F) const {
    forEachNeighborRow(OutOff, OutNbr, Node, edgeKindRuns(Mask), F);
  }
  template <typename Fn>
  void forEachInNeighbor(unsigned Node, const EdgeKindRuns &Runs,
                         Fn F) const {
    forEachNeighborRow(InOff, InNbr, Node, Runs, F);
  }
  template <typename Fn>
  void forEachOutNeighbor(unsigned Node, const EdgeKindRuns &Runs,
                          Fn F) const {
    forEachNeighborRow(OutOff, OutNbr, Node, Runs, F);
  }

  /// Neighbor node ids of one slot run [SlotBegin, SlotEnd) as a
  /// contiguous indexable range — for algorithms that need resumable
  /// masked adjacency (e.g. an explicit-stack DFS over the masked
  /// subgraph), which a callback can't provide.
  IdRange inNeighborRun(unsigned Node, unsigned SlotBegin,
                        unsigned SlotEnd) const {
    ensureFinalized();
    return neighborRun(InOff, InNbr, Node, SlotBegin, SlotEnd);
  }
  IdRange outNeighborRun(unsigned Node, unsigned SlotBegin,
                         unsigned SlotEnd) const {
    ensureFinalized();
    return neighborRun(OutOff, OutNbr, Node, SlotBegin, SlotEnd);
  }

  /// One node of the instruction (the first clone), or -1 when the
  /// instruction has no node.
  int nodeFor(const Instr *I) const {
    IdRange R = nodesFor(I);
    return R.empty() ? -1 : static_cast<int>(R.front());
  }

  /// All clones of the instruction (one per analysis context). A
  /// source-statement seed means slicing from every clone.
  IdRange nodesFor(const Instr *I) const;

  /// The clone of \p I in context \p Ctx, or -1.
  int nodeFor(const Instr *I, unsigned Ctx) const;

  /// Heap parameter node lookup; returns -1 when absent. Formal
  /// nodes anchor at their method, actual nodes at their call site.
  int heapNodeFor(SDGNodeKind K, const Method *M, unsigned Part,
                  unsigned Ctx = 0) const;
  int heapNodeFor(SDGNodeKind K, const Instr *Call, unsigned Part,
                  unsigned Ctx = 0) const;

  /// Statement count excluding parameter-passing machinery, matching
  /// the paper's Table 1 "SDG Statements" metric. Live nodes only.
  unsigned numStmtNodes() const { return NumStmts; }

  /// Number of live heap parameter nodes (the CS blowup statistic).
  unsigned numHeapParamNodes() const {
    return numNodes() - NumDead - NumStmts;
  }

  unsigned numEdgesOfKind(SDGEdgeKind K) const;

  /// Budget status of construction: Complete, or Degraded with the
  /// merged-clone / coarse-heap fallback.
  const StageReport &report() const { return Report; }
  void setReport(StageReport R) { Report = std::move(R); }

  //===------------------------------------------------------------------===//
  // Snapshot codec (DESIGN.md section 14)
  //===------------------------------------------------------------------===//

  /// Writes the SDG section payload: live nodes (compacted to
  /// sequential ids when tombstones exist) and their non-Summary
  /// edges, everything identified by dense ids. Summary edges are
  /// deliberately dropped — a cold build has none at build time and
  /// the tabulation slicer re-derives them — so a decoded graph is
  /// the cold graph.
  void encode(ByteWriter &W) const;

  /// Rebuilds a graph from an encode() payload against \p P with the
  /// validation the mutation API performs (anchor resolution, bounds,
  /// duplicate node identities) but filling the node/edge tables and
  /// the CSR query form directly — node and edge ids reproduce
  /// exactly as a replay would assign them, and the sorted statement
  /// arrays and adjacency come from the same deterministic sorts a
  /// cold finalize() uses. The construction-form indexes (EdgeDedup,
  /// StmtIndex, HeapIndex) are left lazy (see ensureEdgeDedup /
  /// ensureIndexes): a decoded graph that is only queried never pays
  /// for them. Throws SerializeError on malformed input.
  static std::unique_ptr<SDG> decode(ByteReader &R, const Program &P);

private:
  /// Reopens a finalized graph for mutation: drops the CSR arrays
  /// (keeping their capacity for the refinalize that follows).
  void unfinalize();

  /// Rebuilds EdgeDedup from the edge list when a decode left it
  /// unpopulated. Every mutation-path user of the set (addEdge,
  /// removeEdgesIf) calls this first; pure query paths never do.
  void ensureEdgeDedup();

  /// Rebuilds StmtIndex/HeapIndex from the node list when a decode
  /// left them unpopulated (IndexesValid below). Every construction-
  /// form user (unfinalize, addHeapNode, heapNodeFor) calls this
  /// first; the finalized query path never does. Like
  /// ensureFinalized(), not safe to race from multiple threads —
  /// mutation and identity lookups are single-threaded by contract.
  void ensureIndexes() const;

  /// Counting sort of the edge list into the kind-partitioned CSR
  /// in/out adjacency — the shared half of finalize() and decode().
  void buildCSR();

  IdRange rowEdges(const std::vector<unsigned> &Off,
                   const std::vector<unsigned> &Ids, unsigned Node) const {
    const std::size_t Row = std::size_t(Node) * NumSDGEdgeKinds;
    return {Ids.data() + Off[Row], Ids.data() + Off[Row + NumSDGEdgeKinds]};
  }
  IdRange kindEdges(const std::vector<unsigned> &Off,
                    const std::vector<unsigned> &Ids, unsigned Node,
                    SDGEdgeKind K) const {
    const std::size_t Slot =
        std::size_t(Node) * NumSDGEdgeKinds + sdgKindSlot(K);
    return {Ids.data() + Off[Slot], Ids.data() + Off[Slot + 1]};
  }
  IdRange neighborRun(const std::vector<unsigned> &Off,
                      const std::vector<unsigned> &Nbr, unsigned Node,
                      unsigned SlotBegin, unsigned SlotEnd) const {
    const std::size_t Row = std::size_t(Node) * NumSDGEdgeKinds;
    return {Nbr.data() + Off[Row + SlotBegin], Nbr.data() + Off[Row + SlotEnd]};
  }

  template <typename Fn>
  void forEachNeighborRow(const std::vector<unsigned> &Off,
                          const std::vector<unsigned> &Nbr, unsigned Node,
                          const EdgeKindRuns &Runs, Fn F) const {
    ensureFinalized();
    // Raw pointers hoisted into locals: F's stores (visited words,
    // worklist pushes) could alias vector-element loads, so indexing
    // through the vectors re-reads their data pointers every
    // iteration and the loop never tightens.
    const unsigned *O = Off.data() + std::size_t(Node) * NumSDGEdgeKinds;
    const unsigned *N = Nbr.data();
    for (unsigned R = 0; R != Runs.NumRuns; ++R) {
      unsigned End = O[Runs.Runs[R].End];
      for (unsigned I = O[Runs.Runs[R].Begin]; I != End; ++I)
        F(N[I]);
    }
  }

  /// Dense anchor of one heap node identity: the call site's
  /// denseInstrKey, or a method sentinel key for formal nodes (the
  /// low word 0xFFFFFFFF is never a renumbered instruction id), or 0
  /// for the anchorless global HeapHub. Per node kind exactly one of
  /// the three shapes occurs, so the encodings cannot collide within
  /// a HeapIndex key.
  static uint64_t heapAnchorKey(const Instr *I, const Method *M) {
    if (I)
      return denseInstrKey(I);
    if (M)
      return (static_cast<uint64_t>(M->id()) << 32) | 0xFFFFFFFFull;
    return 0;
  }
  /// Dense key of a ParamIn/ParamOut/Summary edge's call site (0 when
  /// the edge has none).
  static uint64_t siteKey(const CallInstr *Site) {
    return Site ? denseInstrKey(Site) : 0;
  }

  const Program &P;
  std::vector<SDGNode> Nodes;
  std::vector<SDGEdge> Edges;
  /// Statement index keyed by denseInstrKey, maintained in both
  /// forms: the query path reads the sorted arrays below, mutation
  /// reads and updates this map. Dense keys (not Instr*) so a decoded
  /// graph rebuilds identical index state — see ir/Program.h.
  /// Unpopulated after decode() until a mutation or identity lookup
  /// needs it (IndexesValid below).
  std::unordered_map<uint64_t, std::vector<unsigned>> StmtIndex;
  /// Exact node identity: (kind, dense anchor, partition/operand,
  /// ctx). Lazy after decode(), like StmtIndex.
  std::map<std::tuple<SDGNodeKind, uint64_t, unsigned, unsigned>, unsigned>
      HeapIndex;
  bool IndexesValid = true;
  /// Exact edge identity: a silently merged or dropped edge would
  /// corrupt slices. Unpopulated after decode() until the first
  /// mutation needs it (DedupValid below).
  std::set<std::tuple<unsigned, unsigned, SDGEdgeKind, uint64_t>> EdgeDedup;
  bool DedupValid = true;
  unsigned NumStmts = 0;
  unsigned NumDead = 0;
  StageReport Report{"sdg", StageStatus::Complete, "", "", 0, 0};

  //===------------------------------------------------------------------===//
  // CSR query form (built by finalize())
  //===------------------------------------------------------------------===//

  bool Finalized = false;
  uint64_t Epoch = 0;
  /// Per-(node, kind) offset tables, numNodes * NumSDGEdgeKinds + 1
  /// entries: the in-edges of node n with kind k occupy
  /// [InOff[n*NK+k], InOff[n*NK+k+1]) of InNbr/InEdgeId.
  std::vector<unsigned> InOff, OutOff;
  /// Neighbor node id per CSR slot (From for in-edges, To for
  /// out-edges) — all the BFS slicers touch.
  std::vector<unsigned> InNbr, OutNbr;
  /// Parallel edge ids, for callers that need Site or kind details.
  std::vector<unsigned> InEdgeId, OutEdgeId;
  /// Sorted statement index: StmtKeys (dense instruction keys)
  /// sorted; the clones of StmtKeys[i] are
  /// StmtClones[StmtCloneOff[i] .. StmtCloneOff[i+1]).
  std::vector<uint64_t> StmtKeys;
  std::vector<unsigned> StmtCloneOff;
  std::vector<unsigned> StmtClones;
  /// The previous finalize()'s sorted (key, clone-list) view, kept
  /// across unfinalize() together with the key churn since then
  /// (AddedStmtKeys/RemovedStmtKeys, filled by addStmtNode/killNode).
  /// The next finalize() merges the churn into this instead of
  /// re-sorting all keys; compact() invalidates it (see keyChurnReset).
  std::vector<std::pair<uint64_t, const std::vector<unsigned> *>> SortedStmt;
  std::vector<uint64_t> AddedStmtKeys, RemovedStmtKeys;

  void keyChurnReset() {
    SortedStmt.clear();
    AddedStmtKeys.clear();
    RemovedStmtKeys.clear();
  }
};

class ThreadPool;

/// SDG construction options.
struct SDGOptions {
  /// Build the context-sensitive representation: heap formal/actual
  /// parameter nodes from mod-ref (paper Section 5.3) instead of
  /// direct interprocedural heap edges (Section 5.2).
  bool ContextSensitive = false;
  /// Include statements of methods the call graph never reaches
  /// (their intraprocedural edges are still built).
  bool IncludeUnreachable = true;
  /// Optional resource budget. Exhaustion degrades construction
  /// soundly: the node cap merges per-context clones into one clone
  /// per method (with context-merged aliasing, an over-approximation),
  /// and the heap-edge cap / deadline replaces the remaining precise
  /// pairwise heap wiring with coarse per-field hub nodes.
  const AnalysisBudget *Budget = nullptr;
  /// Optional worker pool (not owned). Per-procedure PDG work —
  /// control dependences and intraprocedural edge lists — is computed
  /// in parallel over read-only state; node and edge *insertion* (the
  /// id-assigning steps) and all interprocedural/heap wiring stay
  /// sequential on the calling thread, so the graph — ids, CSR
  /// layout, everything — is byte-identical for every pool size
  /// including none.
  ThreadPool *Pool = nullptr;
};

/// Builds the dependence graph, finalized into the CSR query form.
/// \p ModRef may be null unless \p Options.ContextSensitive is set.
std::unique_ptr<SDG> buildSDG(const Program &P, const PointsToResult &PTA,
                              const ModRefResult *ModRef,
                              const SDGOptions &Options = {});

/// Input to patchSDGIncremental(): the affected-method set reported
/// by the points-to update (every method whose per-context points-to
/// facts or call edges may differ from the pre-edit run, dirty
/// methods included) and the retired bodies' instructions.
struct SDGPatchRequest {
  std::vector<Method *> AffectedMethods;
  std::unordered_set<const Instr *> DeadInstrs;
};

/// Patches a context-insensitive SDG in place after an incremental
/// recompile + points-to update, to the graph a cold buildSDG() would
/// produce on the patched program — identical as a set of logical
/// nodes and edges; node/edge *ids* may be permuted relative to cold
/// (clients canonicalize, as they already must across solver modes).
/// Tombstones every node of an affected method and every node at a
/// retired instruction, drops their incident edges plus all Summary
/// edges (the tabulation re-derives them), rebuilds the affected
/// clones' statements and intraprocedural edges, re-wires call edges
/// and heap dependences with an affected endpoint, compacts when
/// tombstones exceed a quarter of the id space, and re-finalizes.
///
/// Returns false when the patch declined (context-sensitive graph,
/// degraded build) or aborted on an injected "sdg.patch" fault; the
/// graph may then hold a partial patch and must be discarded for a
/// cold rebuild.
bool patchSDGIncremental(SDG &G, const PointsToResult &PTA,
                         const SDGPatchRequest &Req,
                         const SDGOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_SDG_SDG_H
