//===-- SDG.h - System dependence graph --------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system dependence graph (Horwitz-Reps-Binkley [11]) variant used
/// by both slicers (paper Section 5). Nodes are statements plus — in
/// the context-sensitive variant only — heap formal/actual parameter
/// nodes derived from mod-ref (Section 5.3). Edges carry the kind
/// distinctions thin slicing is built on:
///
///  - Flow:     producer flow dependence (value use) — the only
///              intraprocedural kind thin slices follow;
///  - BaseFlow: flow into a base pointer or array index (explainer);
///  - Control:  control dependence, including virtual-dispatch
///              dependence of a call on its receiver (explainer);
///  - ParamIn / ParamOut: interprocedural parameter/return linkage,
///              annotated with the call site for context-sensitive
///              matching;
///  - Summary:  actual-in -> actual-out shortcuts added by the
///              tabulation slicer.
///
/// Edges are stored in dependence direction: an edge From -> To means
/// "To depends on From"; backward slicing walks inEdges.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SDG_SDG_H
#define THINSLICER_SDG_SDG_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/Budget.h"

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace tsl {

class ModRefResult;
class PointsToResult;

enum class SDGNodeKind {
  Stmt,
  /// Scalar actual-in: one per (call, operand). Renders at the call's
  /// source line — parameter passing is a producer statement (the
  /// paper's Figure 1 thin slice includes the call line 17).
  ScalarActualIn,
  HeapFormalIn,
  HeapFormalOut,
  HeapActualIn,
  HeapActualOut,
  /// Coarse heap fallback node (budget degradation): one hub per
  /// field / static field / array-element class, with Flow edges
  /// store -> hub -> load. The hub path over-approximates every
  /// precise pairwise write-read edge in O(stores + loads) edges.
  HeapHub,
};

enum class SDGEdgeKind {
  Flow,
  BaseFlow,
  Control,
  ParamIn,
  ParamOut,
  Summary,
};

/// Returns a short printable edge-kind name.
const char *sdgEdgeKindName(SDGEdgeKind K);

/// One SDG node.
///
/// In the context-insensitive graph (paper Sec. 5.2), statements are
/// cloned per analysis context of their method — exactly as WALA's SDG
/// keys statements by call-graph node — so the object-sensitive
/// container precision survives into the dependence graph. Ctx is 0
/// everywhere in the context-sensitive (heap-parameter) variant, which
/// models calling contexts with the tabulation instead.
struct SDGNode {
  SDGNodeKind K;
  /// Stmt: the instruction. HeapActual*: the call instruction.
  const Instr *I;
  /// The owning method (for formal nodes and statements alike).
  const Method *M;
  /// Heap partition id (heap parameter nodes), or operand index
  /// (scalar actual-in nodes).
  unsigned Part;
  /// Analysis context of the owning method's clone.
  unsigned Ctx;
  unsigned Id;

  bool isStmt() const { return K == SDGNodeKind::Stmt; }

  /// True for nodes a user inspects as a source statement: plain
  /// statements and scalar parameter passing at call sites. These are
  /// what the paper's "SDG Statements" metric counts (heap parameter
  /// nodes are excluded).
  bool isSourceStmt() const {
    return K == SDGNodeKind::Stmt || K == SDGNodeKind::ScalarActualIn;
  }

  bool isFormalIn() const {
    return K == SDGNodeKind::HeapFormalIn ||
           (K == SDGNodeKind::Stmt && I && I->kind() == InstrKind::Param);
  }
  bool isFormalOut() const {
    return K == SDGNodeKind::HeapFormalOut ||
           (K == SDGNodeKind::Stmt && I && I->kind() == InstrKind::Ret);
  }
};

/// One SDG edge (From -> To: "To depends on From").
struct SDGEdge {
  unsigned From;
  unsigned To;
  SDGEdgeKind K;
  /// Call site for ParamIn/ParamOut/Summary edges; null otherwise.
  const CallInstr *Site;
};

/// The dependence graph plus node/edge indexes.
class SDG {
public:
  explicit SDG(const Program &P) : P(P) {}

  const Program &program() const { return P; }

  //===------------------------------------------------------------------===//
  // Construction (used by SDGBuilder and the tabulation slicer)
  //===------------------------------------------------------------------===//

  unsigned addStmtNode(const Instr *I, const Method *M, unsigned Ctx = 0);
  unsigned addHeapNode(SDGNodeKind K, const Instr *CallOrNull,
                       const Method *M, unsigned Part, unsigned Ctx = 0);

  /// Adds an edge if not already present; returns true when new.
  bool addEdge(unsigned From, unsigned To, SDGEdgeKind K,
               const CallInstr *Site = nullptr);

  //===------------------------------------------------------------------===//
  // Queries
  //===------------------------------------------------------------------===//

  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const SDGNode &node(unsigned Id) const { return Nodes[Id]; }
  const std::vector<SDGNode> &nodes() const { return Nodes; }

  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const SDGEdge &edge(unsigned Id) const { return Edges[Id]; }

  /// Edge ids whose To is \p Node (the node's dependences).
  const std::vector<unsigned> &inEdges(unsigned Node) const {
    return In[Node];
  }
  /// Edge ids whose From is \p Node (the node's dependents).
  const std::vector<unsigned> &outEdges(unsigned Node) const {
    return Out[Node];
  }

  /// One node of the instruction (the first clone), or -1 when the
  /// instruction has no node.
  int nodeFor(const Instr *I) const {
    auto It = StmtIndex.find(I);
    return It == StmtIndex.end() || It->second.empty()
               ? -1
               : static_cast<int>(It->second.front());
  }

  /// All clones of the instruction (one per analysis context). A
  /// source-statement seed means slicing from every clone.
  const std::vector<unsigned> &nodesFor(const Instr *I) const {
    static const std::vector<unsigned> Empty;
    auto It = StmtIndex.find(I);
    return It == StmtIndex.end() ? Empty : It->second;
  }

  /// The clone of \p I in context \p Ctx, or -1.
  int nodeFor(const Instr *I, unsigned Ctx) const;

  /// Heap parameter node lookup; returns -1 when absent.
  int heapNodeFor(SDGNodeKind K, const void *MethodOrCall, unsigned Part,
                  unsigned Ctx = 0) const;

  /// Statement count excluding parameter-passing machinery, matching
  /// the paper's Table 1 "SDG Statements" metric.
  unsigned numStmtNodes() const { return NumStmts; }

  /// Number of heap parameter nodes (the CS blowup statistic).
  unsigned numHeapParamNodes() const { return numNodes() - NumStmts; }

  unsigned numEdgesOfKind(SDGEdgeKind K) const;

  /// Budget status of construction: Complete, or Degraded with the
  /// merged-clone / coarse-heap fallback.
  const StageReport &report() const { return Report; }
  void setReport(StageReport R) { Report = std::move(R); }

private:
  const Program &P;
  std::vector<SDGNode> Nodes;
  std::vector<SDGEdge> Edges;
  std::vector<std::vector<unsigned>> In, Out;
  std::unordered_map<const Instr *, std::vector<unsigned>> StmtIndex;
  /// Exact node identity: (kind, anchor, partition/operand, ctx).
  std::map<std::tuple<SDGNodeKind, const void *, unsigned, unsigned>,
           unsigned>
      HeapIndex;
  /// Exact edge identity: a silently merged or dropped edge would
  /// corrupt slices.
  std::set<std::tuple<unsigned, unsigned, SDGEdgeKind, const CallInstr *>>
      EdgeDedup;
  unsigned NumStmts = 0;
  StageReport Report{"sdg", StageStatus::Complete, "", "", 0, 0};
};

/// SDG construction options.
struct SDGOptions {
  /// Build the context-sensitive representation: heap formal/actual
  /// parameter nodes from mod-ref (paper Section 5.3) instead of
  /// direct interprocedural heap edges (Section 5.2).
  bool ContextSensitive = false;
  /// Include statements of methods the call graph never reaches
  /// (their intraprocedural edges are still built).
  bool IncludeUnreachable = true;
  /// Optional resource budget. Exhaustion degrades construction
  /// soundly: the node cap merges per-context clones into one clone
  /// per method (with context-merged aliasing, an over-approximation),
  /// and the heap-edge cap / deadline replaces the remaining precise
  /// pairwise heap wiring with coarse per-field hub nodes.
  const AnalysisBudget *Budget = nullptr;
};

/// Builds the dependence graph. \p ModRef may be null unless
/// \p Options.ContextSensitive is set.
std::unique_ptr<SDG> buildSDG(const Program &P, const PointsToResult &PTA,
                              const ModRefResult *ModRef,
                              const SDGOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_SDG_SDG_H
