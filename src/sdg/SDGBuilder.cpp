//===-- SDGBuilder.cpp - Dependence graph construction -------------------------==//
//
// Builds the two SDG variants of paper Section 5. Shared parts:
// SSA-based local flow dependences labeled by operand role, control
// dependences, virtual-dispatch control edges, and scalar parameter /
// return linkage. The variants differ in heap value flow and cloning:
//
//  - context-insensitive (Sec. 5.2): statements are cloned per
//    call-graph context (as in WALA, so object-sensitive container
//    precision reaches the graph), heap value flow is one direct Flow
//    edge from each may-aliased write clone to each read clone, and
//    there are no heap parameters;
//  - context-sensitive (Sec. 5.3): one clone per method; heap
//    formal-in/out nodes per (method, partition) from mod-ref,
//    actual-in/out nodes per call site, with Flow kept intraprocedural
//    and ParamIn/ParamOut edges crossing procedure boundaries for the
//    tabulation slicer.
//
//===----------------------------------------------------------------------===//

#include "ir/ControlDep.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <chrono>
#include <map>
#include <memory>
#include <unordered_map>

using namespace tsl;

namespace {

/// One analyzed clone of a method.
struct Clone {
  const Method *M;
  unsigned Ctx;
};

/// One intraprocedural edge computed by the parallel phase, inserted
/// by the sequential phase.
struct PendingEdge {
  unsigned From, To;
  SDGEdgeKind K;
};

/// One heap access of a clone (see buildHeapCI / buildHeapCoarse).
struct Access {
  const Instr *I;
  unsigned Ctx;
  const Local *Base; ///< Null for statics.
  const Local *Src;  ///< Stores only.
  /// Points-to set of Base under the clone's aliasing regime (merged
  /// sets when clones were context-merged), resolved once here so the
  /// pairwise wiring loops do no per-pair hash lookups. Null for
  /// statics.
  const BitSet *BasePts;
};

/// All heap accesses of the collected clones, bucketed the way the
/// heap-edge wiring consumes them. Keyed by dense Field::id() in an
/// ordered map: the wiring loops iterate these, and their iteration
/// order decides edge insertion order AND — under a budget gate that
/// can trip mid-loop — which pairs get precise edges before the
/// coarse fallback takes over. Pointer-keyed unordered iteration
/// would make both depend on allocator state, breaking the
/// byte-identical-artifacts guarantee.
struct HeapAccesses {
  std::map<unsigned, std::vector<Access>> FieldStores, FieldLoads,
      StaticStores, StaticLoads;
  std::vector<Access> ArrStores, ArrLoads;
};

class Builder {
public:
  Builder(const Program &P, const PointsToResult &PTA,
          const ModRefResult *MR, const SDGOptions &Opts)
      : PTA(PTA), MR(MR), Opts(Opts), Pool(Opts.Pool),
        Owned(std::make_unique<SDG>(P)), G(Owned.get()) {
    (void)P;
  }

  /// Patch mode: adopts an existing graph instead of building one.
  Builder(SDG &Existing, const PointsToResult &PTA, const SDGOptions &Opts)
      : PTA(PTA), MR(nullptr), Opts(Opts), Pool(nullptr), G(&Existing) {}

  std::unique_ptr<SDG> run(const Program &P);
  bool patch(const Program &P, const SDGPatchRequest &Req);

private:
  void collectClones(const Program &P, BudgetGate &Gate);
  void addIntraNodes(const Clone &C);
  void computeIntraEdges(const Clone &C, const ControlDeps &CD,
                         std::vector<PendingEdge> &Out) const;
  void buildIntra();
  void buildScalarCallsCI();
  void buildHeapCI(BudgetGate &Gate);
  void buildScalarCallsCS(const Clone &C);
  void buildHeapCS(const Clone &C, BudgetGate &Gate);
  HeapAccesses collectHeapAccesses() const;
  void buildHeapCoarse();

  void wireCallEdge(const CallInstr *Call, unsigned CallerCtx,
                    const Method *Target, unsigned CalleeCtx);

  const Instr *formalInstr(const Method *M, unsigned Idx) const;
  std::vector<const Instr *> returnInstrs(const Method *M) const;
  const ControlDeps &controlDeps(const Method *M);

  const PointsToResult &PTA;
  const ModRefResult *MR;
  SDGOptions Opts;
  ThreadPool *Pool = nullptr;
  /// Owning handle in build mode; null in patch mode.
  std::unique_ptr<SDG> Owned;
  SDG *G;
  std::vector<Clone> Clones;
  std::unordered_map<const Method *, std::unique_ptr<ControlDeps>> CDCache;
  /// Node-cap degradation: one clone per method instead of one per
  /// call-graph context; aliasing then uses context-merged points-to
  /// sets (a superset of every per-context set, so still sound).
  bool MergedClones = false;
};

} // namespace

const Instr *Builder::formalInstr(const Method *M, unsigned Idx) const {
  if (!M->entry())
    return nullptr;
  for (const auto &I : M->entry()->instrs())
    if (const auto *PI = dyn_cast<ParamInstr>(I.get()))
      if (PI->index() == Idx)
        return PI;
  return nullptr;
}

std::vector<const Instr *> Builder::returnInstrs(const Method *M) const {
  std::vector<const Instr *> Out;
  for (const auto &BB : M->blocks())
    if (Instr *Term = BB->terminator())
      if (isa<RetInstr>(Term) && Term->numOperands())
        Out.push_back(Term);
  return Out;
}

const ControlDeps &Builder::controlDeps(const Method *M) {
  auto It = CDCache.find(M);
  if (It == CDCache.end())
    It = CDCache.emplace(M, std::make_unique<ControlDeps>(*M)).first;
  return *It->second;
}

void Builder::collectClones(const Program &P, BudgetGate &Gate) {
  const CallGraph &CG = PTA.callGraph();
  if (Opts.ContextSensitive) {
    // One clone per reachable method; the tabulation models contexts.
    for (const auto &M : P.methods())
      if (M->entry() && CG.isReachable(M.get()))
        Clones.push_back({M.get(), 0});
    return;
  }
  // One clone per call-graph node, plus a context-0 clone for bodies
  // the analysis never reached (so any statement can seed a slice).
  for (const MethodCtx &MC : CG.nodes())
    if (MC.M->entry())
      Clones.push_back({MC.M, MC.Ctx});
  if (Opts.IncludeUnreachable)
    for (const auto &M : P.methods())
      if (M->entry() && !CG.isReachable(M.get()))
        Clones.push_back({M.get(), 0});

  // Node cap: when the per-context clones would exceed the budget,
  // fall back to one context-0 clone per method. Scalar calls are
  // then wired method-level and aliasing context-merged (both
  // over-approximate the per-context graph projected to statements).
  uint64_t EstimatedNodes = 0;
  for (const Clone &C : Clones)
    EstimatedNodes += C.M->instrs().size();
  if (Gate.poll(EstimatedNodes)) {
    MergedClones = true;
    Clones.clear();
    for (const auto &M : P.methods())
      if (M->entry() &&
          (Opts.IncludeUnreachable || CG.isReachable(M.get())))
        Clones.push_back({M.get(), 0});
  }
}

void Builder::addIntraNodes(const Clone &C) {
  for (const auto &BB : C.M->blocks())
    for (const auto &I : BB->instrs())
      G->addStmtNode(I.get(), C.M, C.Ctx);
}

/// Pure per-clone edge computation: resolves every intraprocedural
/// dependence of clone \p C against the completed statement-node
/// index (read-only) into \p Out, in the exact order the sequential
/// builder inserted them. Safe to run concurrently across clones.
void Builder::computeIntraEdges(const Clone &C, const ControlDeps &CD,
                                std::vector<PendingEdge> &Out) const {
  const Method *M = C.M;
  unsigned Ctx = C.Ctx;

  // SSA flow dependences, classified by operand role. Call operands
  // are wired through parameter edges instead (paper Sec. 5.1), with
  // the receiver of a virtual call contributing a dispatch (control)
  // dependence.
  for (const auto &BB : M->blocks()) {
    for (const auto &I : BB->instrs()) {
      unsigned To = static_cast<unsigned>(G->nodeFor(I.get(), Ctx));
      if (const auto *Call = dyn_cast<CallInstr>(I.get())) {
        if (Call->isVirtual()) {
          const Instr *RecvDef = Call->receiver()->def();
          if (RecvDef)
            Out.push_back({static_cast<unsigned>(G->nodeFor(RecvDef, Ctx)),
                           To, SDGEdgeKind::Control});
        }
        continue;
      }
      for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx) {
        const Instr *Def = I->operand(OpIdx)->def();
        if (!Def)
          continue;
        SDGEdgeKind K = I->operandRole(OpIdx) == OperandRole::Value
                            ? SDGEdgeKind::Flow
                            : SDGEdgeKind::BaseFlow;
        Out.push_back({static_cast<unsigned>(G->nodeFor(Def, Ctx)), To, K});
      }
    }
  }

  // Control dependences: every statement depends on the terminators of
  // its controlling blocks.
  for (const auto &BB : M->blocks()) {
    std::vector<const Instr *> Branches;
    for (unsigned Controller : CD.controllers(BB->id()))
      if (Instr *Term = M->blocks()[Controller]->terminator())
        Branches.push_back(Term);
    if (Branches.empty())
      continue;
    for (const auto &I : BB->instrs()) {
      unsigned To = static_cast<unsigned>(G->nodeFor(I.get(), Ctx));
      for (const Instr *Br : Branches)
        Out.push_back({static_cast<unsigned>(G->nodeFor(Br, Ctx)), To,
                       SDGEdgeKind::Control});
    }
  }
}

/// Statement nodes and intraprocedural edges for every clone, in
/// three phases: sequential node insertion in clone order (fixes node
/// ids), parallel per-method control dependences and per-clone edge
/// lists (pure reads of the node index), sequential edge insertion in
/// clone order (fixes edge ids). Interleaving node and edge insertion
/// per clone — what the old one-pass builder did — assigns the same
/// ids, because node and edge id spaces are independent; the graph is
/// byte-identical either way, for every pool size.
void Builder::buildIntra() {
  for (const Clone &C : Clones)
    addIntraNodes(C);

  // Unique methods in first-clone order; dominator trees are per
  // method, not per clone.
  std::vector<const Method *> Methods;
  for (const Clone &C : Clones)
    if (CDCache.emplace(C.M, nullptr).second)
      Methods.push_back(C.M);
  std::vector<std::unique_ptr<ControlDeps>> CDs(Methods.size());
  auto ComputeCD = [&](std::size_t I) {
    CDs[I] = std::make_unique<ControlDeps>(*Methods[I]);
  };
  std::vector<std::vector<PendingEdge>> PerClone(Clones.size());
  auto ComputeEdges = [&](std::size_t I) {
    computeIntraEdges(Clones[I], controlDeps(Clones[I].M), PerClone[I]);
  };
  if (Pool && Pool->numWorkers()) {
    Pool->parallelFor(Methods.size(), ComputeCD);
    for (std::size_t I = 0; I != Methods.size(); ++I)
      CDCache[Methods[I]] = std::move(CDs[I]);
    Pool->parallelFor(Clones.size(), ComputeEdges);
  } else {
    for (std::size_t I = 0; I != Methods.size(); ++I)
      ComputeCD(I);
    for (std::size_t I = 0; I != Methods.size(); ++I)
      CDCache[Methods[I]] = std::move(CDs[I]);
    for (std::size_t I = 0; I != Clones.size(); ++I)
      ComputeEdges(I);
  }

  for (const std::vector<PendingEdge> &Edges : PerClone)
    for (const PendingEdge &E : Edges)
      G->addEdge(E.From, E.To, E.K);
}

void Builder::wireCallEdge(const CallInstr *Call, unsigned CallerCtx,
                           const Method *Target, unsigned CalleeCtx) {
  const Method *Caller = Call->parent()->parent();
  unsigned CallNode =
      static_cast<unsigned>(G->nodeFor(Call, CallerCtx));

  // Actual -> actual-in node (at the call's line) -> formal.
  for (unsigned OpIdx = 0; OpIdx != Call->numOperands(); ++OpIdx) {
    const Instr *Formal =
        formalInstr(Target, Call->formalIndexOfOperand(OpIdx));
    const Instr *ActualDef = Call->operand(OpIdx)->def();
    if (!Formal || !ActualDef)
      continue;
    int FormalNode = G->nodeFor(Formal, CalleeCtx);
    int ActualNode = G->nodeFor(ActualDef, CallerCtx);
    if (FormalNode < 0 || ActualNode < 0)
      continue;
    unsigned AI = G->addHeapNode(SDGNodeKind::ScalarActualIn, Call, Caller,
                                 OpIdx, CallerCtx);
    G->addEdge(static_cast<unsigned>(ActualNode), AI, SDGEdgeKind::Flow);
    G->addEdge(AI, static_cast<unsigned>(FormalNode), SDGEdgeKind::ParamIn,
               Call);
  }
  // Return -> call result.
  if (Call->dest() && !Target->returnType()->isVoid()) {
    for (const Instr *Ret : returnInstrs(Target)) {
      int RetNode = G->nodeFor(Ret, CalleeCtx);
      if (RetNode >= 0)
        G->addEdge(static_cast<unsigned>(RetNode), CallNode,
                   SDGEdgeKind::ParamOut, Call);
    }
  }
}

void Builder::buildScalarCallsCI() {
  // Context-level call edges from the on-the-fly call graph.
  const CallGraph &CG = PTA.callGraph();
  for (const CallEdge &E : CG.edges()) {
    const MethodCtx &Caller = CG.node(E.CallerNode);
    const MethodCtx &Callee = CG.node(E.CalleeNode);
    wireCallEdge(E.Site, Caller.Ctx, Callee.M, Callee.Ctx);
  }
}

void Builder::buildScalarCallsCS(const Clone &C) {
  const CallGraph &CG = PTA.callGraph();
  for (const auto &BB : C.M->blocks()) {
    for (const auto &I : BB->instrs()) {
      const auto *Call = dyn_cast<CallInstr>(I.get());
      if (!Call)
        continue;
      for (Method *Target : CG.calleesOf(Call))
        if (Target->entry())
          wireCallEdge(Call, 0, Target, 0);
    }
  }
}

HeapAccesses Builder::collectHeapAccesses() const {
  HeapAccesses A;
  // In merged-clone degradation mode the per-context sets of the
  // unanalyzed context-0 clones would be empty (unsound), so aliasing
  // uses the context-merged supersets instead.
  auto Pts = [&](const Local *Base, unsigned Ctx) -> const BitSet * {
    if (!Base)
      return nullptr;
    return MergedClones ? &PTA.pointsTo(Base) : &PTA.pointsTo(Base, Ctx);
  };
  for (const Clone &C : Clones) {
    for (const auto &BB : C.M->blocks()) {
      for (const auto &I : BB->instrs()) {
        if (const auto *S = dyn_cast<StoreInstr>(I.get())) {
          auto &Bucket = (S->isStaticAccess() ? A.StaticStores
                                              : A.FieldStores)[S->field()->id()];
          Bucket.push_back(
              {S, C.Ctx, S->base(), S->src(), Pts(S->base(), C.Ctx)});
        } else if (const auto *L = dyn_cast<LoadInstr>(I.get())) {
          auto &Bucket = (L->isStaticAccess() ? A.StaticLoads
                                              : A.FieldLoads)[L->field()->id()];
          Bucket.push_back(
              {L, C.Ctx, L->base(), nullptr, Pts(L->base(), C.Ctx)});
        } else if (const auto *AS = dyn_cast<ArrayStoreInstr>(I.get())) {
          A.ArrStores.push_back(
              {AS, C.Ctx, AS->array(), AS->src(), Pts(AS->array(), C.Ctx)});
        } else if (const auto *AL = dyn_cast<ArrayLoadInstr>(I.get())) {
          A.ArrLoads.push_back(
              {AL, C.Ctx, AL->array(), nullptr, Pts(AL->array(), C.Ctx)});
        }
      }
    }
  }
  return A;
}

void Builder::buildHeapCI(BudgetGate &Gate) {
  // Direct write -> read edges keyed by field / array / static field,
  // guarded by may-alias of the base pointers *in the respective
  // contexts* (paper Sec. 5.2 with the object-sensitive points-to of
  // Sec. 6.1). In merged-clone degradation mode the per-context sets
  // of the unanalyzed context-0 clones would be empty (unsound), so
  // aliasing uses the context-merged supersets instead.
  HeapAccesses A = collectHeapAccesses();

  // Base points-to sets were resolved once per access at collection
  // time; the quadratic pairwise loops below are pure BitSet
  // intersections with no hash lookups.
  auto MayAlias = [&](const Access &S, const Access &L) {
    return S.BasePts->intersects(*L.BasePts);
  };
  auto Connect = [&](const Access &S, const Access &L) {
    G->addEdge(static_cast<unsigned>(G->nodeFor(S.I, S.Ctx)),
               static_cast<unsigned>(G->nodeFor(L.I, L.Ctx)),
               SDGEdgeKind::Flow);
  };

  // Each pairwise check spends one budget step; on exhaustion run()
  // falls back to coarse hub wiring, which subsumes any pair not yet
  // connected.
  for (const auto &[F, Loads] : A.FieldLoads) {
    auto It = A.FieldStores.find(F);
    if (It == A.FieldStores.end())
      continue;
    for (const Access &L : Loads)
      for (const Access &S : It->second) {
        if (Gate.spend())
          return;
        if (MayAlias(S, L))
          Connect(S, L);
      }
  }
  for (const auto &[F, Loads] : A.StaticLoads) {
    auto It = A.StaticStores.find(F);
    if (It == A.StaticStores.end())
      continue;
    for (const Access &L : Loads)
      for (const Access &S : It->second) {
        if (Gate.spend())
          return;
        Connect(S, L);
      }
  }
  for (const Access &L : A.ArrLoads)
    for (const Access &S : A.ArrStores) {
      if (Gate.spend())
        return;
      if (MayAlias(S, L))
        Connect(S, L);
    }
}

/// Coarse heap fallback for both variants: one HeapHub node per field
/// / static field / array-element class, Flow-wired store -> hub ->
/// load. Any precise write-read edge (same bucket) is subsumed by the
/// two-hop hub path, so slices over the hub graph over-approximate
/// slices over the precise graph. O(stores + loads) edges total.
void Builder::buildHeapCoarse() {
  HeapAccesses A = collectHeapAccesses();

  auto Wire = [&](unsigned Part, const std::vector<Access> &Stores,
                  const std::vector<Access> &Loads) {
    if (Stores.empty() || Loads.empty())
      return;
    unsigned Hub =
        G->addHeapNode(SDGNodeKind::HeapHub, nullptr, nullptr, Part);
    for (const Access &S : Stores)
      G->addEdge(static_cast<unsigned>(G->nodeFor(S.I, S.Ctx)), Hub,
                 SDGEdgeKind::Flow);
    for (const Access &L : Loads)
      G->addEdge(Hub, static_cast<unsigned>(G->nodeFor(L.I, L.Ctx)),
                 SDGEdgeKind::Flow);
  };

  for (const auto &[F, Loads] : A.FieldLoads) {
    auto It = A.FieldStores.find(F);
    if (It != A.FieldStores.end())
      Wire(F, It->second, Loads);
  }
  for (const auto &[F, Loads] : A.StaticLoads) {
    auto It = A.StaticStores.find(F);
    if (It != A.StaticStores.end())
      Wire(F, It->second, Loads);
  }
  Wire(~0u, A.ArrStores, A.ArrLoads);
}

void Builder::buildHeapCS(const Clone &C, BudgetGate &Gate) {
  assert(MR && "context-sensitive SDG requires mod-ref");
  if (Gate.exhausted())
    return;
  const Method *M = C.M;
  const CallGraph &CG = PTA.callGraph();

  // Formal heap parameters for this method.
  const BitSet &Ref = MR->refOf(M);
  const BitSet &Mod = MR->modOf(M);
  Ref.forEach([&](unsigned Part) {
    G->addHeapNode(SDGNodeKind::HeapFormalIn, nullptr, M, Part);
  });
  Mod.forEach([&](unsigned Part) {
    G->addHeapNode(SDGNodeKind::HeapFormalOut, nullptr, M, Part);
  });

  // Group this method's heap accesses and calls by partition.
  // Ordered by partition id: iteration below inserts edges and can
  // trip the gate mid-loop, so its order must be deterministic.
  std::map<unsigned, std::vector<const Instr *>> LoadsByPart, StoresByPart;
  std::vector<const CallInstr *> Calls;
  for (const auto &BB : M->blocks()) {
    for (const auto &I : BB->instrs()) {
      switch (I->kind()) {
      case InstrKind::Load:
      case InstrKind::ArrayLoad:
        MR->partitionsOf(I.get()).forEach(
            [&](unsigned Part) { LoadsByPart[Part].push_back(I.get()); });
        break;
      case InstrKind::Store:
      case InstrKind::ArrayStore:
        MR->partitionsOf(I.get()).forEach(
            [&](unsigned Part) { StoresByPart[Part].push_back(I.get()); });
        break;
      case InstrKind::Call:
        Calls.push_back(cast<CallInstr>(I.get()));
        break;
      default:
        break;
      }
    }
  }

  auto FormalIn = [&](unsigned Part) {
    return G->heapNodeFor(SDGNodeKind::HeapFormalIn, M, Part);
  };
  auto FormalOut = [&](unsigned Part) {
    return G->heapNodeFor(SDGNodeKind::HeapFormalOut, M, Part);
  };

  // Loads draw from the incoming heap state and intraprocedural
  // stores; stores feed the outgoing heap state. Flow-insensitive, as
  // in the paper's representation.
  for (const auto &[Part, Loads] : LoadsByPart) {
    int FI = FormalIn(Part);
    for (const Instr *L : Loads) {
      if (Gate.spend())
        return;
      unsigned LN = static_cast<unsigned>(G->nodeFor(L, 0));
      if (FI >= 0)
        G->addEdge(static_cast<unsigned>(FI), LN, SDGEdgeKind::Flow);
      auto It = StoresByPart.find(Part);
      if (It != StoresByPart.end())
        for (const Instr *S : It->second)
          G->addEdge(static_cast<unsigned>(G->nodeFor(S, 0)), LN,
                     SDGEdgeKind::Flow);
    }
  }
  for (const auto &[Part, Stores] : StoresByPart) {
    int FO = FormalOut(Part);
    if (FO < 0)
      continue;
    for (const Instr *S : Stores) {
      if (Gate.spend())
        return;
      G->addEdge(static_cast<unsigned>(G->nodeFor(S, 0)),
                 static_cast<unsigned>(FO), SDGEdgeKind::Flow);
    }
  }

  // Call sites: heap actual-in/out nodes and their linkage.
  for (const CallInstr *Call : Calls) {
    if (Gate.spend())
      return;
    std::vector<Method *> Targets = CG.calleesOf(Call);
    BitSet RefUnion, ModUnion;
    for (const Method *T : Targets) {
      RefUnion.unionWith(MR->refOf(T));
      ModUnion.unionWith(MR->modOf(T));
    }

    RefUnion.forEach([&](unsigned Part) {
      unsigned AI = G->addHeapNode(SDGNodeKind::HeapActualIn, Call, M, Part);
      int FI = FormalIn(Part);
      if (FI >= 0)
        G->addEdge(static_cast<unsigned>(FI), AI, SDGEdgeKind::Flow);
      auto It = StoresByPart.find(Part);
      if (It != StoresByPart.end())
        for (const Instr *S : It->second)
          G->addEdge(static_cast<unsigned>(G->nodeFor(S, 0)), AI,
                     SDGEdgeKind::Flow);
      for (const Method *T : Targets) {
        if (!MR->refOf(T).test(Part))
          continue;
        int TFI = G->heapNodeFor(SDGNodeKind::HeapFormalIn, T, Part);
        if (TFI >= 0)
          G->addEdge(AI, static_cast<unsigned>(TFI), SDGEdgeKind::ParamIn,
                     Call);
      }
    });

    ModUnion.forEach([&](unsigned Part) {
      unsigned AO =
          G->addHeapNode(SDGNodeKind::HeapActualOut, Call, M, Part);
      for (const Method *T : Targets) {
        if (!MR->modOf(T).test(Part))
          continue;
        int TFO = G->heapNodeFor(SDGNodeKind::HeapFormalOut, T, Part);
        if (TFO >= 0)
          G->addEdge(static_cast<unsigned>(TFO), AO, SDGEdgeKind::ParamOut,
                     Call);
      }
      // The modified state reaches this method's loads and outgoing
      // heap state.
      auto It = LoadsByPart.find(Part);
      if (It != LoadsByPart.end())
        for (const Instr *L : It->second)
          G->addEdge(AO, static_cast<unsigned>(G->nodeFor(L, 0)),
                     SDGEdgeKind::Flow);
      int FO = FormalOut(Part);
      if (FO >= 0)
        G->addEdge(AO, static_cast<unsigned>(FO), SDGEdgeKind::Flow);
    });
  }

  // Actual-out -> actual-in edges between calls in this method (the
  // heap state written by one call may be read by another, including
  // the same call in a loop).
  for (const CallInstr *C1 : Calls) {
    for (const CallInstr *C2 : Calls) {
      if (Gate.spend())
        return;
      for (Method *T1 : CG.calleesOf(C1)) {
        MR->modOf(T1).forEach([&](unsigned Part) {
          int AO = G->heapNodeFor(SDGNodeKind::HeapActualOut, C1, Part);
          int AI = G->heapNodeFor(SDGNodeKind::HeapActualIn, C2, Part);
          if (AO >= 0 && AI >= 0)
            G->addEdge(static_cast<unsigned>(AO), static_cast<unsigned>(AI),
                       SDGEdgeKind::Flow);
        });
      }
    }
  }
}

std::unique_ptr<SDG> Builder::run(const Program &P) {
  auto T0 = std::chrono::steady_clock::now();
  const AnalysisBudget *B = Opts.Budget;
  BudgetGate CloneGate(B, "sdg.clones", B ? B->MaxSdgNodes : 0);
  BudgetGate HeapGate(B, "sdg.heap", B ? B->MaxSdgEdges : 0);

  collectClones(P, CloneGate);
  buildIntra();
  if (Opts.ContextSensitive) {
    for (const Clone &C : Clones)
      buildScalarCallsCS(C);
    for (const Clone &C : Clones) {
      buildHeapCS(C, HeapGate);
      if (HeapGate.exhausted())
        break;
    }
    if (HeapGate.exhausted())
      buildHeapCoarse();
  } else {
    if (MergedClones)
      // Context-level call-graph edges name contexts the merged graph
      // has no clones for; wire calls method-level instead (the CS
      // wiring works on any clone set and over-approximates the
      // context-level edges projected to statements).
      for (const Clone &C : Clones)
        buildScalarCallsCS(C);
    else
      buildScalarCallsCI();
    buildHeapCI(HeapGate);
    if (HeapGate.exhausted())
      buildHeapCoarse();
  }

  StageReport R{"sdg", StageStatus::Complete, "", "", HeapGate.used(),
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count()};
  if (MergedClones || HeapGate.exhausted()) {
    R.Status = StageStatus::Degraded;
    std::string Reason, Fallback;
    if (MergedClones) {
      Reason = CloneGate.reason();
      Fallback = "context-merged clones";
    }
    if (HeapGate.exhausted()) {
      if (!Reason.empty())
        Reason += "; ";
      Reason += HeapGate.reason();
      if (!Fallback.empty())
        Fallback += " + ";
      Fallback += "coarse heap hubs";
    }
    R.Reason = std::move(Reason);
    R.Fallback = std::move(Fallback);
  }
  G->setReport(std::move(R));
  return std::move(Owned);
}

/// Incremental patch of a complete context-insensitive graph — see
/// patchSDGIncremental() for the contract. The plan: tombstone
/// everything an affected method owns, drop the dangling half of the
/// edge set, then re-run exactly the cold construction steps
/// restricted to affected clones / call edges / heap pairs. Every
/// add*() call is idempotent against the surviving graph, so the
/// result is the cold graph as a set of logical nodes and edges.
bool Builder::patch(const Program &P, const SDGPatchRequest &Req) {
  auto T0 = std::chrono::steady_clock::now();
  if (Opts.ContextSensitive || G->report().degraded())
    return false;
  const CallGraph &CG = PTA.callGraph();
  std::unordered_set<const Method *> AM(Req.AffectedMethods.begin(),
                                        Req.AffectedMethods.end());
  BudgetGate Gate(nullptr, "sdg.patch", 0);

  // 1. Tombstone every node of an affected method (statement clones
  // and scalar actual-in nodes alike) and every node at a retired
  // instruction. Affected-but-structurally-unchanged methods get
  // their statements rebuilt below; that is redundant work but keeps
  // one uniform invariant: no node of an affected method survives
  // with stale wiring.
  std::vector<unsigned> Kill;
  for (const SDGNode &N : G->nodes()) {
    if (N.Dead)
      continue;
    if ((N.I && Req.DeadInstrs.count(N.I)) || (N.M && AM.count(N.M)))
      Kill.push_back(N.Id);
  }
  for (unsigned Id : Kill)
    G->killNode(Id);

  // 2. Drop every edge at a tombstone and every Summary edge (the
  // tabulation slicer re-derives summaries lazily; a cold graph has
  // none at build time).
  G->removeEdgesIf([&](const SDGEdge &E) {
    return E.K == SDGEdgeKind::Summary || G->node(E.From).Dead ||
           G->node(E.To).Dead;
  });
  if (Gate.spend())
    return false;

  // 3. Affected clones, in cold collectClones order: per current
  // call-graph node, then unreachable bodies at context 0. A method
  // that gained a context shows up as a new clone here; one that
  // became unreachable gets exactly its context-0 clone back.
  Clones.clear();
  for (const MethodCtx &MC : CG.nodes())
    if (MC.M->entry() && AM.count(MC.M))
      Clones.push_back({MC.M, MC.Ctx});
  if (Opts.IncludeUnreachable)
    for (const auto &M : P.methods())
      if (M->entry() && !CG.isReachable(M.get()) && AM.count(M.get()))
        Clones.push_back({M.get(), 0});

  // 4. Statements and intraprocedural edges of the affected clones.
  for (const Clone &C : Clones)
    addIntraNodes(C);
  for (const Clone &C : Clones) {
    if (Gate.spend())
      return false;
    std::vector<PendingEdge> Pending;
    computeIntraEdges(C, controlDeps(C.M), Pending);
    for (const PendingEdge &E : Pending)
      G->addEdge(E.From, E.To, E.K);
  }

  // 5. Scalar call wiring for every call edge with an affected
  // endpoint. Wiring between two unaffected methods survived step 2
  // untouched; a call edge that disappeared implies a call-graph
  // delta, which put its caller in the affected set — so no stale
  // actual-in machinery can survive either.
  for (const CallEdge &E : CG.edges()) {
    const MethodCtx &Caller = CG.node(E.CallerNode);
    const MethodCtx &Callee = CG.node(E.CalleeNode);
    if (!AM.count(Caller.M) && !AM.count(Callee.M))
      continue;
    if (Gate.spend())
      return false;
    wireCallEdge(E.Site, Caller.Ctx, Callee.M, Callee.Ctx);
  }

  // 6. Heap wiring for pairs with an affected side. The affected set
  // covers every method whose per-context points-to facts changed, so
  // an unaffected-unaffected pair's alias verdict — and its edge — is
  // unchanged from the pre-edit graph.
  Clones.clear();
  for (const MethodCtx &MC : CG.nodes())
    if (MC.M->entry())
      Clones.push_back({MC.M, MC.Ctx});
  if (Opts.IncludeUnreachable)
    for (const auto &M : P.methods())
      if (M->entry() && !CG.isReachable(M.get()))
        Clones.push_back({M.get(), 0});
  HeapAccesses A = collectHeapAccesses();
  auto InAM = [&](const Access &X) {
    return AM.count(X.I->parent()->parent()) != 0;
  };
  auto MayAlias = [&](const Access &S, const Access &L) {
    return S.BasePts->intersects(*L.BasePts);
  };
  auto Connect = [&](const Access &S, const Access &L) {
    G->addEdge(static_cast<unsigned>(G->nodeFor(S.I, S.Ctx)),
               static_cast<unsigned>(G->nodeFor(L.I, L.Ctx)),
               SDGEdgeKind::Flow);
  };
  for (const auto &[F, Loads] : A.FieldLoads) {
    auto It = A.FieldStores.find(F);
    if (It == A.FieldStores.end())
      continue;
    for (const Access &L : Loads)
      for (const Access &S : It->second) {
        if (!InAM(S) && !InAM(L))
          continue;
        if (Gate.spend())
          return false;
        if (MayAlias(S, L))
          Connect(S, L);
      }
  }
  for (const auto &[F, Loads] : A.StaticLoads) {
    auto It = A.StaticStores.find(F);
    if (It == A.StaticStores.end())
      continue;
    for (const Access &L : Loads)
      for (const Access &S : It->second) {
        if (!InAM(S) && !InAM(L))
          continue;
        if (Gate.spend())
          return false;
        Connect(S, L);
      }
  }
  for (const Access &L : A.ArrLoads)
    for (const Access &S : A.ArrStores) {
      if (!InAM(S) && !InAM(L))
        continue;
      if (Gate.spend())
        return false;
      if (MayAlias(S, L))
        Connect(S, L);
    }

  // 7. Bound tombstone garbage, then re-compact into the query form.
  if (G->numDeadNodes() * 4 > G->numNodes())
    G->compact();
  G->finalize();
  StageReport R = G->report();
  R.StepsUsed += Gate.used();
  R.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  G->setReport(std::move(R));
  return true;
}

std::unique_ptr<SDG> tsl::buildSDG(const Program &P,
                                   const PointsToResult &PTA,
                                   const ModRefResult *ModRef,
                                   const SDGOptions &Options) {
  assert((!Options.ContextSensitive || ModRef) &&
         "context-sensitive SDG requires mod-ref results");
  std::unique_ptr<SDG> G = Builder(P, PTA, ModRef, Options).run(P);
  // Compact into the CSR query form before handing the graph to
  // slicers (queries self-heal via ensureFinalized, but doing it here
  // keeps the finalization cost out of the first slice's timing).
  G->finalize();
  return G;
}

bool tsl::patchSDGIncremental(SDG &G, const PointsToResult &PTA,
                              const SDGPatchRequest &Req,
                              const SDGOptions &Options) {
  if (Options.ContextSensitive || G.report().degraded())
    return false;
  Builder B(G, PTA, Options);
  return B.patch(G.program(), Req);
}
