//===-- SSA.h - SSA construction --------------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pruned SSA construction (Cytron et al.) for ThinJ method bodies. The
/// paper's implementation operates on WALA's SSA IR and adds local flow
/// dependences "flow sensitively" via SSA def-use chains (Section 5.1);
/// this pass provides the same property for our IR.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_SSA_H
#define THINSLICER_IR_SSA_H

namespace tsl {

class Method;
class Program;

/// Rewrites \p M into pruned SSA form: inserts phi instructions at
/// iterated dominance frontiers of each variable's definition blocks
/// (restricted to blocks where the variable is live-in) and renames
/// locals so each has a unique definition. Renumbers the method.
void buildSSA(Program &P, Method &M);

/// Runs buildSSA on every method with a body.
void buildSSAAll(Program &P);

} // namespace tsl

#endif // THINSLICER_IR_SSA_H
