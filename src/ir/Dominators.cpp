//===-- Dominators.cpp - Dominator and post-dominator trees ---------------==//

#include "ir/Dominators.h"

#include "ir/Instr.h"
#include "ir/Program.h"

#include <algorithm>
#include <cassert>

using namespace tsl;

namespace {

/// Builds the successor/predecessor lists of the (possibly reversed,
/// possibly exit-extended) graph the dominator computation runs on.
struct Graph {
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;

  explicit Graph(unsigned N) : Succs(N), Preds(N) {}

  void addEdge(unsigned From, unsigned To) {
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }
};

} // namespace

DomTree::DomTree(const Method &M, bool Post) : Post(Post) {
  unsigned NumBlocks = static_cast<unsigned>(M.blocks().size());
  unsigned N = NumBlocks + (Post ? 1 : 0);
  Graph G(N);

  // Real CFG edges (reversed for post-dominators).
  for (const auto &BB : M.blocks()) {
    for (BasicBlock *Succ : BB->successors()) {
      if (Post)
        G.addEdge(Succ->id(), BB->id());
      else
        G.addEdge(BB->id(), Succ->id());
    }
  }

  if (Post) {
    unsigned Exit = NumBlocks;
    // Virtual exit edges from Ret/Throw blocks (reversed: exit -> block).
    for (const auto &BB : M.blocks()) {
      Instr *Term = BB->terminator();
      if (Term && (isa<RetInstr>(Term) || isa<ThrowInstr>(Term)))
        G.addEdge(Exit, BB->id());
    }
    Root = Exit;

    // Attach blocks that cannot reach any exit (infinite loops) with
    // pseudo edges so every block gets a post-dominator. Repeat until
    // all blocks are reachable from the virtual exit.
    while (true) {
      std::vector<bool> Seen(N, false);
      std::vector<unsigned> Stack = {Root};
      Seen[Root] = true;
      while (!Stack.empty()) {
        unsigned Node = Stack.back();
        Stack.pop_back();
        for (unsigned S : G.Succs[Node])
          if (!Seen[S]) {
            Seen[S] = true;
            Stack.push_back(S);
          }
      }
      unsigned Missing = N;
      for (unsigned I = 0; I != NumBlocks; ++I)
        if (!Seen[I]) {
          Missing = I;
          break;
        }
      if (Missing == N)
        break;
      G.addEdge(Root, Missing);
    }
  } else {
    Root = M.entry() ? M.entry()->id() : 0;
  }

  Idom.assign(N, -1);
  Children.assign(N, {});
  Frontier.assign(N, {});
  compute(G.Succs, G.Preds);
  if (!Post)
    computeFrontiers(G.Preds);
}

void DomTree::compute(const std::vector<std::vector<unsigned>> &Succs,
                      const std::vector<std::vector<unsigned>> &Preds) {
  unsigned N = static_cast<unsigned>(Succs.size());

  // Reverse postorder over the traversal direction.
  RPO.clear();
  RpoNumber.assign(N, -1);
  std::vector<unsigned> Post;
  std::vector<bool> Visited(N, false);
  // Iterative DFS computing postorder.
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.emplace_back(Root, 0);
  Visited[Root] = true;
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    if (NextChild < Succs[Node].size()) {
      unsigned S = Succs[Node][NextChild++];
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.emplace_back(S, 0);
      }
    } else {
      Post.push_back(Node);
      Stack.pop_back();
    }
  }
  RPO.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RpoNumber[RPO[I]] = static_cast<int>(I);

  // Cooper-Harvey-Kennedy fixed point.
  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = static_cast<unsigned>(Idom[A]);
      while (RpoNumber[B] > RpoNumber[A])
        B = static_cast<unsigned>(Idom[B]);
    }
    return A;
  };

  Idom[Root] = static_cast<int>(Root); // Temporary self-loop for intersect.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Node == Root)
        continue;
      int NewIdom = -1;
      for (unsigned P : Preds[Node]) {
        if (RpoNumber[P] < 0 || Idom[P] < 0)
          continue; // Unreachable or unprocessed predecessor.
        if (NewIdom < 0)
          NewIdom = static_cast<int>(P);
        else
          NewIdom = static_cast<int>(
              Intersect(static_cast<unsigned>(NewIdom), P));
      }
      if (NewIdom >= 0 && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
  Idom[Root] = -1;

  for (unsigned Node = 0; Node != N; ++Node)
    if (Idom[Node] >= 0)
      Children[static_cast<unsigned>(Idom[Node])].push_back(Node);
}

bool DomTree::dominates(unsigned A, unsigned B) const {
  // Walk B's idom chain up to the root; tree depth is small in practice.
  unsigned Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == Root)
      return false;
    int Up = Idom[Cur];
    if (Up < 0)
      return false; // B is unreachable in the traversal direction.
    Cur = static_cast<unsigned>(Up);
  }
}

void DomTree::computeFrontiers(
    const std::vector<std::vector<unsigned>> &Preds) {
  unsigned N = static_cast<unsigned>(Preds.size());
  for (unsigned Node = 0; Node != N; ++Node) {
    if (Preds[Node].size() < 2)
      continue;
    for (unsigned P : Preds[Node]) {
      if (RpoNumber[P] < 0)
        continue;
      unsigned Runner = P;
      while (static_cast<int>(Runner) != Idom[Node]) {
        Frontier[Runner].push_back(Node);
        if (Idom[Runner] < 0)
          break;
        Runner = static_cast<unsigned>(Idom[Runner]);
      }
    }
  }
  // Deduplicate.
  for (auto &F : Frontier) {
    std::sort(F.begin(), F.end());
    F.erase(std::unique(F.begin(), F.end()), F.end());
  }
}
