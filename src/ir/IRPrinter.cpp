//===-- IRPrinter.cpp - Textual IR dumps ------------------------------------==//

#include "ir/IRPrinter.h"

#include "ir/Instr.h"
#include "ir/Program.h"

using namespace tsl;

std::string tsl::printMethod(const Program &P, const Method &M) {
  std::string Out;
  Out += (M.isStatic() ? "static " : "");
  Out += M.returnType()->isClass()
             ? P.strings().str(M.returnType()->classDef()->name())
             : M.returnType()->str();
  Out += " " + M.qualifiedName(P.strings()) + " {\n";
  for (const auto &BB : M.blocks()) {
    Out += "bb" + std::to_string(BB->id());
    if (BB.get() == M.entry())
      Out += " (entry)";
    if (!BB->preds().empty()) {
      Out += "  ; preds:";
      for (BasicBlock *Pred : BB->preds())
        Out += " bb" + std::to_string(Pred->id());
    }
    Out += ":\n";
    for (const auto &I : BB->instrs()) {
      Out += "  " + I->str(P);
      if (I->loc().isValid())
        Out += "  ; line " + std::to_string(I->loc().Line);
      Out += "\n";
    }
  }
  Out += "}\n";
  return Out;
}

std::string tsl::printProgram(const Program &P) {
  std::string Out;
  for (const auto &M : P.methods()) {
    if (!M->entry())
      continue;
    Out += printMethod(P, *M);
    Out += "\n";
  }
  return Out;
}
