//===-- SSA.cpp - SSA construction -----------------------------------------==//

#include "ir/SSA.h"

#include "ir/Dominators.h"
#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/BitSet.h"

#include <unordered_map>
#include <vector>

using namespace tsl;

namespace {

/// Per-method SSA construction state.
class SSABuilder {
public:
  SSABuilder(Program &P, Method &M) : P(P), M(M), DT(M, /*Post=*/false) {}

  void run();

private:
  void computeLiveness();
  void insertPhis();
  void rename(unsigned BlockId);

  Local *freshVersion(Local *Orig) {
    unsigned &Counter = VersionCounter[Orig->id()];
    ++Counter;
    Local *L = M.addLocal(Orig->baseName(), Orig->type(), Orig->isTemp(),
                          Counter);
    return L;
  }

  Local *currentDef(Local *Orig, BasicBlock *UseBlock) {
    auto &Stack = DefStack[Orig->id()];
    if (!Stack.empty())
      return Stack.back();
    // Structured control flow plus mandatory initializers should make
    // this unreachable; synthesize a default definition at entry as a
    // safety net so the IR stays well formed.
    (void)UseBlock;
    return synthesizeDefault(Orig);
  }

  Local *synthesizeDefault(Local *Orig);

  Program &P;
  Method &M;
  DomTree DT;

  unsigned NumOrigLocals = 0;
  // Liveness over original locals, per block.
  std::vector<BitSet> LiveIn;
  // Original local id -> blocks containing a def.
  std::vector<std::vector<unsigned>> DefBlocks;
  // Phi -> original local it merges.
  std::unordered_map<PhiInstr *, Local *> PhiVar;
  // Original local id -> rename stack of SSA locals.
  std::vector<std::vector<Local *>> DefStack;
  std::vector<unsigned> VersionCounter;
  // Original local id -> synthesized entry def (lazily created).
  std::vector<Local *> DefaultDef;
};

} // namespace

void SSABuilder::run() {
  M.renumber();
  NumOrigLocals = static_cast<unsigned>(M.locals().size());
  DefBlocks.resize(NumOrigLocals);
  DefStack.resize(NumOrigLocals);
  VersionCounter.assign(NumOrigLocals, 0);
  DefaultDef.assign(NumOrigLocals, nullptr);

  for (const auto &BB : M.blocks())
    for (const auto &I : BB->instrs())
      if (Local *D = I->dest())
        DefBlocks[D->id()].push_back(BB->id());

  computeLiveness();
  insertPhis();
  if (M.entry())
    rename(M.entry()->id());
  M.setSSA(true);
  M.renumber();
}

void SSABuilder::computeLiveness() {
  unsigned NumBlocks = static_cast<unsigned>(M.blocks().size());
  LiveIn.assign(NumBlocks, BitSet(NumOrigLocals));
  std::vector<BitSet> LiveOut(NumBlocks, BitSet(NumOrigLocals));

  // Per-block gen (upward-exposed uses) and kill (defs).
  std::vector<BitSet> Gen(NumBlocks, BitSet(NumOrigLocals));
  std::vector<BitSet> Kill(NumBlocks, BitSet(NumOrigLocals));
  for (const auto &BB : M.blocks()) {
    unsigned Id = BB->id();
    for (const auto &I : BB->instrs()) {
      for (Local *Op : I->operands())
        if (!Kill[Id].test(Op->id()))
          Gen[Id].insert(Op->id());
      if (Local *D = I->dest())
        Kill[Id].insert(D->id());
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse block order for faster convergence.
    for (unsigned Id = NumBlocks; Id-- > 0;) {
      BasicBlock *BB = M.blocks()[Id].get();
      BitSet Out(NumOrigLocals);
      for (BasicBlock *Succ : BB->successors())
        Out.unionWith(LiveIn[Succ->id()]);
      BitSet In = Out;
      In.subtract(Kill[Id]);
      In.unionWith(Gen[Id]);
      if (In != LiveIn[Id]) {
        LiveIn[Id] = std::move(In);
        Changed = true;
      }
      LiveOut[Id] = std::move(Out);
    }
  }
}

void SSABuilder::insertPhis() {
  for (unsigned Var = 0; Var != NumOrigLocals; ++Var) {
    if (DefBlocks[Var].size() < 1)
      continue;
    Local *Orig = M.locals()[Var].get();
    // Iterated dominance frontier worklist.
    std::vector<unsigned> Work = DefBlocks[Var];
    BitSet HasPhi(static_cast<unsigned>(M.blocks().size()));
    BitSet InWork(static_cast<unsigned>(M.blocks().size()));
    for (unsigned B : Work)
      InWork.insert(B);
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned F : DT.frontier(B)) {
        if (HasPhi.test(F))
          continue;
        if (!LiveIn[F].test(Var))
          continue; // Pruned SSA: dead at F, no phi needed.
        HasPhi.insert(F);
        auto Phi = std::make_unique<PhiInstr>(Orig);
        // Keep the source position of the join's first real statement
        // unknown; phis are compiler-synthesized.
        PhiVar[Phi.get()] = Orig;
        M.blocks()[F]->prepend(std::move(Phi));
        if (InWork.insert(F))
          Work.push_back(F);
      }
    }
  }
}

Local *SSABuilder::synthesizeDefault(Local *Orig) {
  if (DefaultDef[Orig->id()])
    return DefaultDef[Orig->id()];
  Local *L = freshVersion(Orig);
  std::unique_ptr<Instr> I;
  const Type *Ty = Orig->type();
  if (Ty->isInt())
    I = std::make_unique<ConstIntInstr>(L, 0);
  else if (Ty->isBool())
    I = std::make_unique<ConstBoolInstr>(L, false);
  else
    I = std::make_unique<ConstNullInstr>(L);
  M.entry()->prepend(std::move(I));
  DefaultDef[Orig->id()] = L;
  return L;
}

void SSABuilder::rename(unsigned BlockId) {
  BasicBlock *BB = M.blocks()[BlockId].get();
  // Track how many pushes this block performed per variable so we can
  // pop them on exit (iterative version of the recursive algorithm
  // would need an explicit stack; recursion depth equals dom-tree
  // depth, fine for our programs).
  std::vector<std::pair<unsigned, unsigned>> Pushed; // (var, count)

  auto PushDef = [&](Local *Orig, Local *Fresh) {
    DefStack[Orig->id()].push_back(Fresh);
    if (!Pushed.empty() && Pushed.back().first == Orig->id())
      ++Pushed.back().second;
    else
      Pushed.emplace_back(Orig->id(), 1);
  };

  for (const auto &I : BB->instrs()) {
    // Rewrite uses (phis are renamed from predecessors, not here).
    if (!isa<PhiInstr>(I.get())) {
      for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx) {
        Local *Orig = I->operand(OpIdx);
        if (Orig->id() < NumOrigLocals)
          I->setOperand(OpIdx, currentDef(Orig, BB));
      }
    }
    // Rewrite the definition.
    if (Local *D = I->dest()) {
      if (D->id() < NumOrigLocals) {
        Local *Fresh = freshVersion(D);
        I->setDest(Fresh);
        Fresh->setDef(I.get());
        PushDef(D, Fresh);
      }
    }
  }

  // Fill in phi operands of successors.
  for (BasicBlock *Succ : BB->successors()) {
    for (const auto &I : Succ->instrs()) {
      auto *Phi = dyn_cast<PhiInstr>(I.get());
      if (!Phi)
        break; // Phis are grouped at the block head.
      auto It = PhiVar.find(Phi);
      assert(It != PhiVar.end() && "phi without variable mapping");
      Phi->addIncoming(currentDef(It->second, BB), BB);
    }
  }

  for (unsigned Child : DT.children(BlockId))
    rename(Child);

  for (auto [Var, Count] : Pushed)
    for (unsigned I = 0; I != Count; ++I)
      DefStack[Var].pop_back();
}

void tsl::buildSSA(Program &P, Method &M) {
  if (!M.entry())
    return;
  SSABuilder(P, M).run();
}

void tsl::buildSSAAll(Program &P) {
  for (const auto &M : P.methods())
    buildSSA(P, *M);
}
