//===-- ProgramIO.cpp - Program snapshot codec --------------------------------==//

#include "ir/ProgramIO.h"

#include "support/Casting.h"

using namespace tsl;

//===----------------------------------------------------------------------===//
// Dense-key lookup helpers
//===----------------------------------------------------------------------===//

Method *tsl::methodForId(const Program &P, uint32_t Id) {
  if (Id >= P.methods().size())
    throw SerializeError("method id out of range");
  return P.methods()[Id].get();
}

Field *tsl::fieldForId(const Program &P, uint32_t Id) {
  if (Id >= P.fields().size())
    throw SerializeError("field id out of range");
  return P.fields()[Id].get();
}

const Instr *tsl::instrForKey(const Program &P, uint64_t Key) {
  Method *M = methodForId(P, static_cast<uint32_t>(Key >> 32));
  uint32_t IId = static_cast<uint32_t>(Key);
  if (IId >= M->instrs().size())
    throw SerializeError("instruction id out of range");
  return M->instrs()[IId];
}

Local *tsl::localForKey(const Program &P, uint64_t Key) {
  Method *M = methodForId(P, static_cast<uint32_t>(Key >> 32));
  uint32_t LId = static_cast<uint32_t>(Key);
  if (LId >= M->locals().size())
    throw SerializeError("local id out of range");
  return M->locals()[LId].get();
}

//===----------------------------------------------------------------------===//
// Type codec
//===----------------------------------------------------------------------===//

void tsl::encodeType(const Type *Ty, ByteWriter &W) {
  if (!Ty) {
    W.u8(0xFF);
    return;
  }
  W.u8(static_cast<uint8_t>(Ty->kind()));
  if (Ty->isClass())
    W.vu32(Ty->classDef()->id());
  else if (Ty->isArray())
    encodeType(Ty->element(), W);
}

const Type *tsl::decodeType(ByteReader &R, const Program &P) {
  uint8_t K = R.u8();
  if (K == 0xFF)
    return nullptr;
  switch (static_cast<TypeKind>(K)) {
  case TypeKind::Int:
    return P.types().intType();
  case TypeKind::Bool:
    return P.types().boolType();
  case TypeKind::Void:
    return P.types().voidType();
  case TypeKind::Null:
    return P.types().nullType();
  case TypeKind::String:
    return P.types().stringType();
  case TypeKind::Class: {
    uint32_t Id = R.vu32();
    if (Id >= P.classes().size())
      throw SerializeError("class id out of range in type");
    return P.types().classType(P.classes()[Id].get());
  }
  case TypeKind::Array:
    return P.types().arrayType(decodeType(R, P));
  }
  throw SerializeError("unknown type kind");
}

//===----------------------------------------------------------------------===//
// Instruction codec
//===----------------------------------------------------------------------===//

namespace {

/// Local id, or the null sentinel.
void putLocal(const Local *L, ByteWriter &W) {
  W.vu32(L ? L->id() + 1 : 0);
}

Local *getLocal(ByteReader &R, Method &M, bool Required = true) {
  uint32_t V = R.vu32();
  if (V == 0) {
    if (Required)
      throw SerializeError("missing operand local");
    return nullptr;
  }
  if (V - 1 >= M.locals().size())
    throw SerializeError("operand local id out of range");
  return M.locals()[V - 1].get();
}

BasicBlock *getBlock(ByteReader &R, Method &M) {
  uint32_t Id = R.vu32();
  if (Id >= M.blocks().size())
    throw SerializeError("block id out of range");
  return M.blocks()[Id].get();
}

void encodeInstr(const Instr *I, ByteWriter &W) {
  W.u8(static_cast<uint8_t>(I->kind()));
  W.vu32(I->loc().Line);
  W.vu32(I->loc().Col);
  switch (I->kind()) {
  case InstrKind::ConstInt: {
    const auto *C = cast<ConstIntInstr>(I);
    putLocal(C->dest(), W);
    W.vi64(C->value());
    break;
  }
  case InstrKind::ConstBool: {
    const auto *C = cast<ConstBoolInstr>(I);
    putLocal(C->dest(), W);
    W.u8(C->value());
    break;
  }
  case InstrKind::ConstString: {
    const auto *C = cast<ConstStringInstr>(I);
    putLocal(C->dest(), W);
    W.vu32(C->value());
    break;
  }
  case InstrKind::ConstNull:
    putLocal(I->dest(), W);
    break;
  case InstrKind::Read: {
    const auto *C = cast<ReadInstr>(I);
    putLocal(C->dest(), W);
    W.u8(static_cast<uint8_t>(C->readKind()));
    break;
  }
  case InstrKind::Param: {
    const auto *C = cast<ParamInstr>(I);
    putLocal(C->dest(), W);
    W.vu32(C->index());
    break;
  }
  case InstrKind::Move: {
    const auto *C = cast<MoveInstr>(I);
    putLocal(C->dest(), W);
    putLocal(C->src(), W);
    break;
  }
  case InstrKind::UnOp: {
    const auto *C = cast<UnOpInstr>(I);
    putLocal(C->dest(), W);
    W.u8(static_cast<uint8_t>(C->op()));
    putLocal(C->src(), W);
    break;
  }
  case InstrKind::BinOp: {
    const auto *C = cast<BinOpInstr>(I);
    putLocal(C->dest(), W);
    W.u8(static_cast<uint8_t>(C->op()));
    putLocal(C->lhs(), W);
    putLocal(C->rhs(), W);
    break;
  }
  case InstrKind::StrOp: {
    const auto *C = cast<StrOpInstr>(I);
    putLocal(C->dest(), W);
    W.u8(static_cast<uint8_t>(C->op()));
    W.vu32(C->numOperands());
    for (unsigned Op = 0; Op != C->numOperands(); ++Op)
      putLocal(C->operand(Op), W);
    break;
  }
  case InstrKind::New: {
    const auto *C = cast<NewInstr>(I);
    putLocal(C->dest(), W);
    W.vu32(C->allocatedClass()->id());
    break;
  }
  case InstrKind::NewArray: {
    const auto *C = cast<NewArrayInstr>(I);
    putLocal(C->dest(), W);
    encodeType(C->elementType(), W);
    putLocal(C->length(), W);
    break;
  }
  case InstrKind::Load: {
    const auto *C = cast<LoadInstr>(I);
    putLocal(C->dest(), W);
    putLocal(C->base(), W);
    W.vu32(C->field()->id());
    break;
  }
  case InstrKind::Store: {
    const auto *C = cast<StoreInstr>(I);
    putLocal(C->base(), W);
    W.vu32(C->field()->id());
    putLocal(C->src(), W);
    break;
  }
  case InstrKind::ArrayLoad: {
    const auto *C = cast<ArrayLoadInstr>(I);
    putLocal(C->dest(), W);
    putLocal(C->array(), W);
    putLocal(C->index(), W);
    break;
  }
  case InstrKind::ArrayStore: {
    const auto *C = cast<ArrayStoreInstr>(I);
    putLocal(C->array(), W);
    putLocal(C->index(), W);
    putLocal(C->src(), W);
    break;
  }
  case InstrKind::ArrayLen: {
    const auto *C = cast<ArrayLenInstr>(I);
    putLocal(C->dest(), W);
    putLocal(C->array(), W);
    break;
  }
  case InstrKind::Call: {
    const auto *C = cast<CallInstr>(I);
    putLocal(C->dest(), W);
    W.vu32(C->target()->id());
    W.u8(C->isVirtual());
    putLocal(C->receiver(), W);
    W.vu32(C->numArgs());
    for (unsigned A = 0; A != C->numArgs(); ++A)
      putLocal(C->arg(A), W);
    break;
  }
  case InstrKind::Cast: {
    const auto *C = cast<CastInstr>(I);
    putLocal(C->dest(), W);
    encodeType(C->targetType(), W);
    putLocal(C->src(), W);
    break;
  }
  case InstrKind::InstanceOf: {
    const auto *C = cast<InstanceOfInstr>(I);
    putLocal(C->dest(), W);
    putLocal(C->src(), W);
    encodeType(C->testType(), W);
    break;
  }
  case InstrKind::Phi: {
    const auto *C = cast<PhiInstr>(I);
    putLocal(C->dest(), W);
    W.vu32(C->numOperands());
    for (unsigned Op = 0; Op != C->numOperands(); ++Op) {
      putLocal(C->operand(Op), W);
      W.vu32(C->incomingBlocks()[Op]->id());
    }
    break;
  }
  case InstrKind::Print:
    putLocal(cast<PrintInstr>(I)->src(), W);
    break;
  case InstrKind::Goto:
    W.vu32(cast<GotoInstr>(I)->target()->id());
    break;
  case InstrKind::Branch: {
    const auto *C = cast<BranchInstr>(I);
    putLocal(C->cond(), W);
    W.vu32(C->trueTarget()->id());
    W.vu32(C->falseTarget()->id());
    break;
  }
  case InstrKind::Ret:
    putLocal(cast<RetInstr>(I)->src(), W);
    break;
  case InstrKind::Throw:
    putLocal(cast<ThrowInstr>(I)->src(), W);
    break;
  }
}

std::unique_ptr<Instr> decodeInstr(ByteReader &R, Program &P, Method &M) {
  uint8_t KindByte = R.u8();
  if (KindByte > static_cast<uint8_t>(InstrKind::Throw))
    throw SerializeError("unknown instruction kind");
  InstrKind K = static_cast<InstrKind>(KindByte);
  // Sequenced reads: argument evaluation order is unspecified.
  const unsigned LocLine = R.vu32();
  const unsigned LocCol = R.vu32();
  SourceLoc Loc(LocLine, LocCol);
  std::unique_ptr<Instr> I;
  switch (K) {
  case InstrKind::ConstInt: {
    Local *D = getLocal(R, M);
    I = std::make_unique<ConstIntInstr>(D, R.vi64());
    break;
  }
  case InstrKind::ConstBool: {
    Local *D = getLocal(R, M);
    I = std::make_unique<ConstBoolInstr>(D, R.u8() != 0);
    break;
  }
  case InstrKind::ConstString: {
    Local *D = getLocal(R, M);
    uint32_t Sym = R.vu32();
    if (Sym >= P.strings().size())
      throw SerializeError("string symbol out of range");
    I = std::make_unique<ConstStringInstr>(D, Sym);
    break;
  }
  case InstrKind::ConstNull:
    I = std::make_unique<ConstNullInstr>(getLocal(R, M));
    break;
  case InstrKind::Read: {
    Local *D = getLocal(R, M);
    uint8_t RK = R.u8();
    if (RK > static_cast<uint8_t>(ReadKind::Line))
      throw SerializeError("unknown read kind");
    I = std::make_unique<ReadInstr>(D, static_cast<ReadKind>(RK));
    break;
  }
  case InstrKind::Param: {
    Local *D = getLocal(R, M);
    I = std::make_unique<ParamInstr>(D, R.vu32());
    break;
  }
  case InstrKind::Move: {
    Local *D = getLocal(R, M);
    I = std::make_unique<MoveInstr>(D, getLocal(R, M));
    break;
  }
  case InstrKind::UnOp: {
    Local *D = getLocal(R, M);
    uint8_t Op = R.u8();
    if (Op > static_cast<uint8_t>(UnOpKind::Not))
      throw SerializeError("unknown unary op");
    I = std::make_unique<UnOpInstr>(D, static_cast<UnOpKind>(Op),
                                    getLocal(R, M));
    break;
  }
  case InstrKind::BinOp: {
    Local *D = getLocal(R, M);
    uint8_t Op = R.u8();
    if (Op > static_cast<uint8_t>(BinOpKind::Ne))
      throw SerializeError("unknown binary op");
    Local *L = getLocal(R, M);
    Local *RHS = getLocal(R, M);
    I = std::make_unique<BinOpInstr>(D, static_cast<BinOpKind>(Op), L, RHS);
    break;
  }
  case InstrKind::StrOp: {
    Local *D = getLocal(R, M);
    uint8_t Op = R.u8();
    if (Op > static_cast<uint8_t>(StrOpKind::FromInt))
      throw SerializeError("unknown string op");
    uint32_t N = R.vu32();
    std::vector<Local *> Args;
    Args.reserve(N);
    for (uint32_t A = 0; A != N; ++A)
      Args.push_back(getLocal(R, M));
    I = std::make_unique<StrOpInstr>(D, static_cast<StrOpKind>(Op), Args);
    break;
  }
  case InstrKind::New: {
    Local *D = getLocal(R, M);
    uint32_t Cid = R.vu32();
    if (Cid >= P.classes().size())
      throw SerializeError("class id out of range in new");
    I = std::make_unique<NewInstr>(D, P.classes()[Cid].get());
    break;
  }
  case InstrKind::NewArray: {
    Local *D = getLocal(R, M);
    const Type *Elem = decodeType(R, P);
    if (!Elem)
      throw SerializeError("missing array element type");
    I = std::make_unique<NewArrayInstr>(D, Elem, getLocal(R, M));
    break;
  }
  case InstrKind::Load: {
    Local *D = getLocal(R, M);
    Local *Base = getLocal(R, M, /*Required=*/false);
    Field *F = fieldForId(P, R.vu32());
    if ((Base != nullptr) == F->isStatic())
      throw SerializeError("load base/static mismatch");
    I = std::make_unique<LoadInstr>(D, Base, F);
    break;
  }
  case InstrKind::Store: {
    Local *Base = getLocal(R, M, /*Required=*/false);
    Field *F = fieldForId(P, R.vu32());
    if ((Base != nullptr) == F->isStatic())
      throw SerializeError("store base/static mismatch");
    I = std::make_unique<StoreInstr>(Base, F, getLocal(R, M));
    break;
  }
  case InstrKind::ArrayLoad: {
    Local *D = getLocal(R, M);
    Local *A = getLocal(R, M);
    I = std::make_unique<ArrayLoadInstr>(D, A, getLocal(R, M));
    break;
  }
  case InstrKind::ArrayStore: {
    Local *A = getLocal(R, M);
    Local *Idx = getLocal(R, M);
    I = std::make_unique<ArrayStoreInstr>(A, Idx, getLocal(R, M));
    break;
  }
  case InstrKind::ArrayLen: {
    Local *D = getLocal(R, M);
    I = std::make_unique<ArrayLenInstr>(D, getLocal(R, M));
    break;
  }
  case InstrKind::Call: {
    Local *D = getLocal(R, M, /*Required=*/false);
    Method *Target = methodForId(P, R.vu32());
    bool IsVirtual = R.u8() != 0;
    Local *Recv = getLocal(R, M, /*Required=*/false);
    if ((Recv != nullptr) == Target->isStatic())
      throw SerializeError("call receiver/static mismatch");
    uint32_t N = R.vu32();
    std::vector<Local *> Args;
    Args.reserve(N);
    for (uint32_t A = 0; A != N; ++A)
      Args.push_back(getLocal(R, M));
    I = std::make_unique<CallInstr>(D, Target, IsVirtual, Recv, Args);
    break;
  }
  case InstrKind::Cast: {
    Local *D = getLocal(R, M);
    const Type *Ty = decodeType(R, P);
    if (!Ty)
      throw SerializeError("missing cast target type");
    I = std::make_unique<CastInstr>(D, Ty, getLocal(R, M));
    break;
  }
  case InstrKind::InstanceOf: {
    Local *D = getLocal(R, M);
    Local *Src = getLocal(R, M);
    const Type *Ty = decodeType(R, P);
    if (!Ty)
      throw SerializeError("missing instanceof test type");
    I = std::make_unique<InstanceOfInstr>(D, Src, Ty);
    break;
  }
  case InstrKind::Phi: {
    Local *D = getLocal(R, M);
    auto Phi = std::make_unique<PhiInstr>(D);
    uint32_t N = R.vu32();
    for (uint32_t In = 0; In != N; ++In) {
      Local *V = getLocal(R, M);
      Phi->addIncoming(V, getBlock(R, M));
    }
    I = std::move(Phi);
    break;
  }
  case InstrKind::Print:
    I = std::make_unique<PrintInstr>(getLocal(R, M));
    break;
  case InstrKind::Goto:
    I = std::make_unique<GotoInstr>(getBlock(R, M));
    break;
  case InstrKind::Branch: {
    Local *Cond = getLocal(R, M);
    BasicBlock *T = getBlock(R, M);
    I = std::make_unique<BranchInstr>(Cond, T, getBlock(R, M));
    break;
  }
  case InstrKind::Ret:
    I = std::make_unique<RetInstr>(getLocal(R, M, /*Required=*/false));
    break;
  case InstrKind::Throw:
    I = std::make_unique<ThrowInstr>(getLocal(R, M));
    break;
  }
  I->setLoc(Loc);
  return I;
}

} // namespace

//===----------------------------------------------------------------------===//
// Program codec
//===----------------------------------------------------------------------===//

void tsl::encodeProgram(const Program &P, ByteWriter &W) {
  // 1. Interned strings in symbol order (symbol 0 is "" and implicit).
  const StringTable &S = P.strings();
  W.vu64(S.size());
  for (Symbol Sym = 1; Sym < S.size(); ++Sym)
    W.str(S.str(Sym));

  // 2. Classes in id order. Id 0 is Object, created by the Program
  // constructor; only its existence is assumed, its name is interned
  // like any other. Superclass links follow once all classes exist.
  W.vu64(P.classes().size());
  for (std::size_t C = 1; C != P.classes().size(); ++C)
    W.vu32(P.classes()[C]->name());
  for (const auto &C : P.classes())
    W.vu32(C->superclass() ? C->superclass()->id() + 1 : 0);

  // 3. Fields in id order.
  W.vu64(P.fields().size());
  for (const auto &F : P.fields()) {
    W.vu32(F->name());
    encodeType(F->type(), W);
    W.vu32(F->owner()->id());
    W.u8(F->isStatic());
  }

  // 4. Method shells in id order (bodies follow, so CallInstr targets
  // resolve during body decode).
  W.vu64(P.methods().size());
  for (const auto &M : P.methods()) {
    W.vu32(M->name());
    W.vu32(M->owner() ? M->owner()->id() + 1 : 0);
    W.u8(M->isStatic());
    encodeType(M->returnType(), W);
    W.vu64(M->params().size());
    for (const ParamSig &Sig : M->params()) {
      W.vu32(Sig.Name);
      encodeType(Sig.Ty, W);
    }
  }
  W.vu32(P.mainMethod() ? P.mainMethod()->id() + 1 : 0);

  // 5. Bodies in method-id order: locals, blocks, instructions (in
  // block order, so decode + renumber reproduces instruction ids).
  for (const auto &M : P.methods()) {
    W.vu64(M->locals().size());
    for (const auto &L : M->locals()) {
      W.vu32(L->baseName());
      encodeType(L->type(), W);
      W.u8(L->isTemp());
      W.vu32(L->version());
    }
    W.vu64(M->blocks().size());
    for (const auto &BB : M->blocks()) {
      W.vu64(BB->instrs().size());
      for (const auto &I : BB->instrs())
        encodeInstr(I.get(), W);
    }
    W.vu32(M->entry() ? M->entry()->id() + 1 : 0);
    W.u8(M->isSSA());
  }
}

std::unique_ptr<Program> tsl::decodeProgram(ByteReader &R) {
  auto P = std::make_unique<Program>();

  // 1. Strings: interning in symbol order reproduces each symbol.
  uint64_t NumStrings = R.vu64();
  for (uint64_t Sym = 1; Sym < NumStrings; ++Sym) {
    std::string Text = R.str();
    if (P->strings().intern(Text) != Sym)
      throw SerializeError("string table order mismatch");
  }

  // 2. Classes. Object (id 0) pre-exists from the Program ctor; the
  // encoder relies on that and serialized only classes 1..N-1.
  uint64_t NumClasses = R.vu64();
  if (NumClasses == 0)
    throw SerializeError("class table missing Object");
  for (uint64_t C = 1; C != NumClasses; ++C) {
    uint32_t Name = R.vu32();
    if (Name >= P->strings().size())
      throw SerializeError("class name symbol out of range");
    P->addClass(Name);
  }
  for (uint64_t C = 0; C != NumClasses; ++C) {
    uint32_t Super = R.vu32();
    if (Super) {
      if (Super - 1 >= NumClasses)
        throw SerializeError("superclass id out of range");
      P->classes()[C]->setSuperclass(P->classes()[Super - 1].get());
    }
  }

  // 3. Fields.
  uint64_t NumFields = R.vu64();
  for (uint64_t F = 0; F != NumFields; ++F) {
    uint32_t Name = R.vu32();
    const Type *Ty = decodeType(R, *P);
    uint32_t Owner = R.vu32();
    bool IsStatic = R.u8() != 0;
    if (!Ty || Owner >= NumClasses)
      throw SerializeError("malformed field record");
    P->addField(Name, Ty, P->classes()[Owner].get(), IsStatic);
  }

  // 4. Method shells.
  uint64_t NumMethods = R.vu64();
  for (uint64_t M = 0; M != NumMethods; ++M) {
    uint32_t Name = R.vu32();
    uint32_t Owner = R.vu32();
    bool IsStatic = R.u8() != 0;
    const Type *RetTy = decodeType(R, *P);
    if (!RetTy || (Owner && Owner - 1 >= NumClasses))
      throw SerializeError("malformed method record");
    uint64_t NumParams = R.vu64();
    std::vector<ParamSig> Params;
    Params.reserve(NumParams);
    for (uint64_t Pi = 0; Pi != NumParams; ++Pi) {
      uint32_t PName = R.vu32();
      const Type *PTy = decodeType(R, *P);
      if (!PTy)
        throw SerializeError("malformed parameter record");
      Params.push_back({PName, PTy});
    }
    P->addMethod(Name, Owner ? P->classes()[Owner - 1].get() : nullptr,
                 IsStatic, RetTy, std::move(Params));
  }
  uint32_t MainId = R.vu32();
  if (MainId) {
    if (MainId - 1 >= NumMethods)
      throw SerializeError("main method id out of range");
    P->setMainMethod(P->methods()[MainId - 1].get());
  }

  // 5. Bodies. addLocal/addBlock assign ids sequentially, and append
  // order + renumberAll reproduce instruction ids.
  for (uint64_t Mi = 0; Mi != NumMethods; ++Mi) {
    Method &M = *P->methods()[Mi];
    uint64_t NumLocals = R.vu64();
    for (uint64_t L = 0; L != NumLocals; ++L) {
      uint32_t Name = R.vu32();
      const Type *Ty = decodeType(R, *P);
      bool IsTemp = R.u8() != 0;
      uint32_t Version = R.vu32();
      if (!Ty)
        throw SerializeError("malformed local record");
      M.addLocal(Name, Ty, IsTemp, Version);
    }
    uint64_t NumBlocks = R.vu64();
    // Blocks are created up front: terminators and phis reference
    // forward blocks by id before those blocks' payloads are read.
    for (uint64_t B = 0; B != NumBlocks; ++B)
      M.addBlock();
    for (uint64_t B = 0; B != NumBlocks; ++B) {
      BasicBlock *BB = M.blocks()[B].get();
      uint64_t NumInstrs = R.vu64();
      for (uint64_t I = 0; I != NumInstrs; ++I)
        BB->append(decodeInstr(R, *P, M));
    }
    uint32_t EntryId = R.vu32();
    if (EntryId) {
      if (EntryId - 1 >= NumBlocks)
        throw SerializeError("entry block id out of range");
      M.setEntry(M.blocks()[EntryId - 1].get());
    }
    M.setSSA(R.u8() != 0);
  }

  P->renumberAll();
  return P;
}
