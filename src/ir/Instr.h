//===-- Instr.h - ThinJ three-address instructions --------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-address instructions and basic blocks. Every operand use
/// carries an OperandRole that records whether the use is a plain value
/// use, a base-pointer use in a dereference, or an array-index /
/// length use. That classification is the semantic core of thin
/// slicing (paper Section 3): thin slices follow only the value-use
/// flow dependences and treat base-pointer and index flow as explainer
/// material.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_INSTR_H
#define THINSLICER_IR_INSTR_H

#include "ir/Program.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace tsl {

/// Discriminator for the Instr hierarchy.
enum class InstrKind {
  // Constants and inputs.
  ConstInt,
  ConstBool,
  ConstString,
  ConstNull,
  Read,
  // Formals.
  Param,
  // Scalar computation.
  Move,
  UnOp,
  BinOp,
  StrOp,
  // Allocation.
  New,
  NewArray,
  // Heap access.
  Load,
  Store,
  ArrayLoad,
  ArrayStore,
  ArrayLen,
  // Calls and type tests.
  Call,
  Cast,
  InstanceOf,
  // SSA.
  Phi,
  // Effects.
  Print,
  // Terminators.
  Goto,
  Branch,
  Ret,
  Throw,
};

/// How an instruction uses one of its operands (paper Section 3).
enum class OperandRole {
  Value, ///< Direct use: the operand's value feeds the computed value.
  Base,  ///< Base pointer of a field/array dereference.
  Index, ///< Array index or length; explainer material like Base.
};

/// Base class of all ThinJ instructions.
///
/// Operands are Local uses; the optional destination is the Local the
/// instruction defines. Instructions live in exactly one BasicBlock.
class Instr {
public:
  virtual ~Instr() = default;
  Instr(const Instr &) = delete;
  Instr &operator=(const Instr &) = delete;

  InstrKind kind() const { return Kind; }

  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Dense id within the owning method; valid after Method::renumber().
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  Local *dest() const { return Dest; }
  void setDest(Local *L) { Dest = L; }

  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }
  Local *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  void setOperand(unsigned I, Local *L) {
    assert(I < Ops.size() && "operand index out of range");
    Ops[I] = L;
  }
  OperandRole operandRole(unsigned I) const {
    assert(I < Roles.size() && "operand index out of range");
    return Roles[I];
  }

  const std::vector<Local *> &operands() const { return Ops; }

  bool isTerminator() const {
    return Kind == InstrKind::Goto || Kind == InstrKind::Branch ||
           Kind == InstrKind::Ret || Kind == InstrKind::Throw;
  }

  /// Renders the instruction like "x1 = y0.f" for debugging and tests.
  std::string str(const Program &P) const;

protected:
  Instr(InstrKind Kind, Local *Dest) : Kind(Kind), Dest(Dest) {}

  void addOperand(Local *L, OperandRole Role) {
    Ops.push_back(L);
    Roles.push_back(Role);
  }

private:
  InstrKind Kind;
  Local *Dest;
  std::vector<Local *> Ops;
  std::vector<OperandRole> Roles;
  SourceLoc Loc;
  BasicBlock *Parent = nullptr;
  unsigned Id = ~0u;
};

//===----------------------------------------------------------------------===//
// Constants and inputs
//===----------------------------------------------------------------------===//

/// dest = <integer literal>
class ConstIntInstr : public Instr {
public:
  ConstIntInstr(Local *Dest, int64_t Value)
      : Instr(InstrKind::ConstInt, Dest), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ConstInt;
  }

private:
  int64_t Value;
};

/// dest = true | false
class ConstBoolInstr : public Instr {
public:
  ConstBoolInstr(Local *Dest, bool Value)
      : Instr(InstrKind::ConstBool, Dest), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ConstBool;
  }

private:
  bool Value;
};

/// dest = "literal". String literals are allocation sites for the
/// pointer analysis.
class ConstStringInstr : public Instr {
public:
  ConstStringInstr(Local *Dest, Symbol Value)
      : Instr(InstrKind::ConstString, Dest), Value(Value) {}
  Symbol value() const { return Value; }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ConstString;
  }

private:
  Symbol Value;
};

/// dest = null
class ConstNullInstr : public Instr {
public:
  explicit ConstNullInstr(Local *Dest) : Instr(InstrKind::ConstNull, Dest) {}
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ConstNull;
  }
};

/// What a ReadInstr reads from the environment.
enum class ReadKind {
  Int,  ///< readInt(): an external integer.
  Line, ///< readLine(): a fresh external string (an allocation site).
};

/// dest = readInt() | readLine(). Models external input such as the
/// InputStream in the paper's Figure 1.
class ReadInstr : public Instr {
public:
  ReadInstr(Local *Dest, ReadKind RK)
      : Instr(InstrKind::Read, Dest), RK(RK) {}
  ReadKind readKind() const { return RK; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Read; }

private:
  ReadKind RK;
};

//===----------------------------------------------------------------------===//
// Formals
//===----------------------------------------------------------------------===//

/// dest = <formal parameter #index>. Index 0 is `this` for instance
/// methods. These instructions double as the SDG's formal-in nodes.
class ParamInstr : public Instr {
public:
  ParamInstr(Local *Dest, unsigned Index)
      : Instr(InstrKind::Param, Dest), Index(Index) {}
  unsigned index() const { return Index; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Param; }

private:
  unsigned Index;
};

//===----------------------------------------------------------------------===//
// Scalar computation
//===----------------------------------------------------------------------===//

/// dest = src
class MoveInstr : public Instr {
public:
  MoveInstr(Local *Dest, Local *Src) : Instr(InstrKind::Move, Dest) {
    addOperand(Src, OperandRole::Value);
  }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Move; }
};

/// Unary operator kinds.
enum class UnOpKind { Neg, Not };

/// dest = op src
class UnOpInstr : public Instr {
public:
  UnOpInstr(Local *Dest, UnOpKind Op, Local *Src)
      : Instr(InstrKind::UnOp, Dest), Op(Op) {
    addOperand(Src, OperandRole::Value);
  }
  UnOpKind op() const { return Op; }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::UnOp; }

private:
  UnOpKind Op;
};

/// Binary operator kinds. Eq/Ne work on any matching types, including
/// reference identity; the relational and arithmetic operators are
/// integer-only.
enum class BinOpKind { Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne };

/// dest = lhs op rhs
class BinOpInstr : public Instr {
public:
  BinOpInstr(Local *Dest, BinOpKind Op, Local *LHS, Local *RHS)
      : Instr(InstrKind::BinOp, Dest), Op(Op) {
    addOperand(LHS, OperandRole::Value);
    addOperand(RHS, OperandRole::Value);
  }
  BinOpKind op() const { return Op; }
  Local *lhs() const { return operand(0); }
  Local *rhs() const { return operand(1); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::BinOp; }

private:
  BinOpKind Op;
};

/// Builtin string operations. The receiver (and a second string where
/// present) is a value use: the result value derives from the string
/// contents. Integer position arguments are Index uses — they select
/// *which* part of the value flows, the string-level analogue of array
/// indices (see paper Sections 3-4: index flow is explainer material).
enum class StrOpKind {
  Concat,    ///< dest = a + b (fresh string; both Value).
  Substring, ///< dest = s.substring(from, to) (s Value, args Index).
  CharAt,    ///< dest = s.charAt(i) as int (s Value, i Index).
  IndexOf,   ///< dest = s.indexOf(needle) (both Value, int result).
  Length,    ///< dest = s.length() (Value, int result).
  Equals,    ///< dest = s.equals(t) (both Value, bool result).
  FromInt,   ///< dest = str(i): decimal rendering (Value; fresh string).
};

/// dest = strop(args...). Results of Concat/Substring are fresh string
/// objects (allocation sites).
class StrOpInstr : public Instr {
public:
  StrOpInstr(Local *Dest, StrOpKind Op, const std::vector<Local *> &Args)
      : Instr(InstrKind::StrOp, Dest), Op(Op) {
    for (unsigned I = 0, E = static_cast<unsigned>(Args.size()); I != E; ++I)
      addOperand(Args[I], roleFor(Op, I));
  }
  StrOpKind op() const { return Op; }

  /// True for operations whose result is a freshly allocated string.
  bool allocatesString() const {
    return Op == StrOpKind::Concat || Op == StrOpKind::Substring ||
           Op == StrOpKind::FromInt;
  }

  static bool classof(const Instr *I) { return I->kind() == InstrKind::StrOp; }

private:
  static OperandRole roleFor(StrOpKind Op, unsigned ArgIdx) {
    switch (Op) {
    case StrOpKind::Concat:
    case StrOpKind::IndexOf:
    case StrOpKind::Length:
    case StrOpKind::Equals:
    case StrOpKind::FromInt:
      return OperandRole::Value;
    case StrOpKind::Substring:
    case StrOpKind::CharAt:
      return ArgIdx == 0 ? OperandRole::Value : OperandRole::Index;
    }
    return OperandRole::Value;
  }

  StrOpKind Op;
};

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

/// dest = new C(...). The constructor call is a separate CallInstr
/// emitted by the frontend; this instruction is the allocation site.
class NewInstr : public Instr {
public:
  NewInstr(Local *Dest, ClassDef *Class)
      : Instr(InstrKind::New, Dest), Class(Class) {}
  ClassDef *allocatedClass() const { return Class; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::New; }

private:
  ClassDef *Class;
};

/// dest = new T[len]. The length is an Index use: it configures the
/// container, it does not produce the values stored in it.
class NewArrayInstr : public Instr {
public:
  NewArrayInstr(Local *Dest, const Type *ElemTy, Local *Len)
      : Instr(InstrKind::NewArray, Dest), ElemTy(ElemTy) {
    addOperand(Len, OperandRole::Index);
  }
  const Type *elementType() const { return ElemTy; }
  Local *length() const { return operand(0); }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::NewArray;
  }

private:
  const Type *ElemTy;
};

//===----------------------------------------------------------------------===//
// Heap access
//===----------------------------------------------------------------------===//

/// dest = base.f, or dest = C.f for static fields (no base operand).
class LoadInstr : public Instr {
public:
  LoadInstr(Local *Dest, Local *Base, Field *F)
      : Instr(InstrKind::Load, Dest), F(F) {
    assert((Base != nullptr) != F->isStatic() &&
           "instance loads need a base; static loads must not have one");
    if (Base)
      addOperand(Base, OperandRole::Base);
  }
  Field *field() const { return F; }
  bool isStaticAccess() const { return F->isStatic(); }
  Local *base() const { return isStaticAccess() ? nullptr : operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Load; }

private:
  Field *F;
};

/// base.f = src, or C.f = src for static fields.
class StoreInstr : public Instr {
public:
  StoreInstr(Local *Base, Field *F, Local *Src)
      : Instr(InstrKind::Store, nullptr), F(F) {
    assert((Base != nullptr) != F->isStatic() &&
           "instance stores need a base; static stores must not have one");
    if (Base)
      addOperand(Base, OperandRole::Base);
    addOperand(Src, OperandRole::Value);
  }
  Field *field() const { return F; }
  bool isStaticAccess() const { return F->isStatic(); }
  Local *base() const { return isStaticAccess() ? nullptr : operand(0); }
  Local *src() const { return operand(isStaticAccess() ? 0 : 1); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Store; }

private:
  Field *F;
};

/// dest = array[index]
class ArrayLoadInstr : public Instr {
public:
  ArrayLoadInstr(Local *Dest, Local *Array, Local *Index)
      : Instr(InstrKind::ArrayLoad, Dest) {
    addOperand(Array, OperandRole::Base);
    addOperand(Index, OperandRole::Index);
  }
  Local *array() const { return operand(0); }
  Local *index() const { return operand(1); }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ArrayLoad;
  }
};

/// array[index] = src
class ArrayStoreInstr : public Instr {
public:
  ArrayStoreInstr(Local *Array, Local *Index, Local *Src)
      : Instr(InstrKind::ArrayStore, nullptr) {
    addOperand(Array, OperandRole::Base);
    addOperand(Index, OperandRole::Index);
    addOperand(Src, OperandRole::Value);
  }
  Local *array() const { return operand(0); }
  Local *index() const { return operand(1); }
  Local *src() const { return operand(2); }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ArrayStore;
  }
};

/// dest = array.length
class ArrayLenInstr : public Instr {
public:
  ArrayLenInstr(Local *Dest, Local *Array)
      : Instr(InstrKind::ArrayLen, Dest) {
    addOperand(Array, OperandRole::Base);
  }
  Local *array() const { return operand(0); }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::ArrayLen;
  }
};

//===----------------------------------------------------------------------===//
// Calls and type tests
//===----------------------------------------------------------------------===//

/// dest? = call target(recv?, args...).
///
/// Calls to instance methods carry the receiver as operand 0 with role
/// Value: the receiver flows into the callee's `this` formal like any
/// argument (downstream base-pointer uses of `this` are what thin
/// slicing excludes, not the parameter passing itself). IsVirtual
/// selects dynamic dispatch; constructor and super calls are
/// statically dispatched instance calls. Dispatch on the receiver's
/// runtime type is control-like and is not a data operand.
class CallInstr : public Instr {
public:
  CallInstr(Local *Dest, Method *Target, bool IsVirtual, Local *Recv,
            const std::vector<Local *> &Args)
      : Instr(InstrKind::Call, Dest), Target(Target), IsVirtual(IsVirtual) {
    assert((Recv != nullptr) == !Target->isStatic() &&
           "instance calls carry a receiver; static calls do not");
    assert((!IsVirtual || Recv) && "virtual calls need a receiver");
    if (Recv)
      addOperand(Recv, OperandRole::Value);
    for (Local *A : Args)
      addOperand(A, OperandRole::Value);
  }

  /// The statically resolved target (dynamic dispatch starts here).
  Method *target() const { return Target; }
  bool isVirtual() const { return IsVirtual; }
  bool hasReceiver() const { return !Target->isStatic(); }
  Local *receiver() const { return hasReceiver() ? operand(0) : nullptr; }

  unsigned numArgs() const {
    return numOperands() - (hasReceiver() ? 1 : 0);
  }
  Local *arg(unsigned I) const {
    return operand(I + (hasReceiver() ? 1 : 0));
  }

  /// Operand index -> callee formal index. Identity: operand 0 is the
  /// receiver, which is formal 0 (`this`) for instance methods, and
  /// arguments follow in order for both kinds.
  unsigned formalIndexOfOperand(unsigned OpIdx) const { return OpIdx; }

  static bool classof(const Instr *I) { return I->kind() == InstrKind::Call; }

private:
  Method *Target;
  bool IsVirtual;
};

/// dest = (T) src. A checked downcast; ThinJ does not model the
/// exceptional edge (the paper's tool treats potential exceptions as
/// control dependences it deliberately leaves out of thin slices).
class CastInstr : public Instr {
public:
  CastInstr(Local *Dest, const Type *TargetTy, Local *Src)
      : Instr(InstrKind::Cast, Dest), TargetTy(TargetTy) {
    addOperand(Src, OperandRole::Value);
  }
  const Type *targetType() const { return TargetTy; }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Cast; }

private:
  const Type *TargetTy;
};

/// dest = src instanceof T
class InstanceOfInstr : public Instr {
public:
  InstanceOfInstr(Local *Dest, Local *Src, const Type *TestTy)
      : Instr(InstrKind::InstanceOf, Dest), TestTy(TestTy) {
    addOperand(Src, OperandRole::Value);
  }
  const Type *testType() const { return TestTy; }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::InstanceOf;
  }

private:
  const Type *TestTy;
};

//===----------------------------------------------------------------------===//
// SSA
//===----------------------------------------------------------------------===//

/// dest = phi(in0, in1, ...). Incoming operand I corresponds to the
/// block at position I of incomingBlocks(). Inserted only by SSA
/// construction.
class PhiInstr : public Instr {
public:
  explicit PhiInstr(Local *Dest) : Instr(InstrKind::Phi, Dest) {}

  void addIncoming(Local *Value, BasicBlock *Pred) {
    addOperand(Value, OperandRole::Value);
    Blocks.push_back(Pred);
  }
  const std::vector<BasicBlock *> &incomingBlocks() const { return Blocks; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Phi; }

private:
  std::vector<BasicBlock *> Blocks;
};

//===----------------------------------------------------------------------===//
// Effects
//===----------------------------------------------------------------------===//

/// print(src) — the observable output sink, a natural slicing seed.
class PrintInstr : public Instr {
public:
  explicit PrintInstr(Local *Src) : Instr(InstrKind::Print, nullptr) {
    addOperand(Src, OperandRole::Value);
  }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Print; }
};

//===----------------------------------------------------------------------===//
// Terminators
//===----------------------------------------------------------------------===//

/// goto target
class GotoInstr : public Instr {
public:
  explicit GotoInstr(BasicBlock *Target)
      : Instr(InstrKind::Goto, nullptr), Target(Target) {}
  BasicBlock *target() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Goto; }

private:
  BasicBlock *Target;
};

/// if (cond) goto trueTarget else goto falseTarget
class BranchInstr : public Instr {
public:
  BranchInstr(Local *Cond, BasicBlock *TrueTarget, BasicBlock *FalseTarget)
      : Instr(InstrKind::Branch, nullptr), TrueTarget(TrueTarget),
        FalseTarget(FalseTarget) {
    addOperand(Cond, OperandRole::Value);
  }
  Local *cond() const { return operand(0); }
  BasicBlock *trueTarget() const { return TrueTarget; }
  BasicBlock *falseTarget() const { return FalseTarget; }
  static bool classof(const Instr *I) {
    return I->kind() == InstrKind::Branch;
  }

private:
  BasicBlock *TrueTarget;
  BasicBlock *FalseTarget;
};

/// return [src]
class RetInstr : public Instr {
public:
  explicit RetInstr(Local *Src) : Instr(InstrKind::Ret, nullptr) {
    if (Src)
      addOperand(Src, OperandRole::Value);
  }
  Local *src() const { return numOperands() ? operand(0) : nullptr; }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Ret; }
};

/// throw src — terminates the method (ThinJ has no catch).
class ThrowInstr : public Instr {
public:
  explicit ThrowInstr(Local *Src) : Instr(InstrKind::Throw, nullptr) {
    addOperand(Src, OperandRole::Value);
  }
  Local *src() const { return operand(0); }
  static bool classof(const Instr *I) { return I->kind() == InstrKind::Throw; }
};

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

/// A straight-line sequence of instructions ending in one terminator.
class BasicBlock {
public:
  BasicBlock(Method *Parent, unsigned Id) : Parent(Parent), Id(Id) {}

  Method *parent() const { return Parent; }
  /// Dense id within the owning method.
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  const std::vector<std::unique_ptr<Instr>> &instrs() const { return Instrs; }
  bool empty() const { return Instrs.empty(); }

  /// Appends \p I; terminators must be appended last.
  Instr *append(std::unique_ptr<Instr> I);

  /// Inserts \p I at the front (used for phi insertion).
  Instr *prepend(std::unique_ptr<Instr> I);

  /// The block's terminator, or null while under construction.
  Instr *terminator() const {
    if (Instrs.empty() || !Instrs.back()->isTerminator())
      return nullptr;
    return Instrs.back().get();
  }

  /// Successor blocks derived from the terminator.
  std::vector<BasicBlock *> successors() const;

  /// Predecessors; maintained by Method::renumber().
  const std::vector<BasicBlock *> &preds() const { return Preds; }
  void clearPreds() { Preds.clear(); }
  void addPred(BasicBlock *BB) { Preds.push_back(BB); }

private:
  Method *Parent;
  unsigned Id;
  std::vector<std::unique_ptr<Instr>> Instrs;
  std::vector<BasicBlock *> Preds;
};

/// 64-bit dense key of one instruction: owner method id in the high
/// word, method-local (renumbered) instruction id in the low word.
/// The pointer-free identity serialized analysis layers (cg/, pta/,
/// modref/, sdg/) key their maps by instead of Instr* — see the dense
/// identity note in ir/Program.h. Valid after Method::renumber().
inline uint64_t denseInstrKey(const Instr *I) {
  return (static_cast<uint64_t>(I->parent()->parent()->id()) << 32) |
         I->id();
}

} // namespace tsl

#endif // THINSLICER_IR_INSTR_H
