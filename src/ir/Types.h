//===-- Types.h - ThinJ type system -----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ThinJ type system: primitives (int, bool), the builtin reference
/// type string, the null type, class types, and array types. Types are
/// interned in a TypeTable so they compare by pointer. ThinJ mirrors
/// the Java features thin slicing cares about: field and array accesses
/// are the only pointer dereferences, and reference types form a
/// single-inheritance hierarchy rooted at Object.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_TYPES_H
#define THINSLICER_IR_TYPES_H

#include "support/StringTable.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tsl {

class ClassDef;

/// Discriminator for Type.
enum class TypeKind {
  Int,    ///< 64-bit signed integer.
  Bool,   ///< Boolean.
  Void,   ///< Method return type only.
  Null,   ///< Type of the `null` literal; subtype of every reference type.
  String, ///< Builtin immutable string (a reference type).
  Class,  ///< A user-declared class (reference type).
  Array,  ///< Array of some element type (reference type).
};

/// An interned ThinJ type. Obtain instances from TypeTable; equal types
/// are pointer-equal.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isNull() const { return Kind == TypeKind::Null; }
  bool isString() const { return Kind == TypeKind::String; }
  bool isClass() const { return Kind == TypeKind::Class; }
  bool isArray() const { return Kind == TypeKind::Array; }

  /// Reference types can be stored in the heap and point to objects:
  /// classes, arrays, strings, and null.
  bool isReference() const {
    return isClass() || isArray() || isString() || isNull();
  }

  /// For class types: the class definition (resolved during sema).
  ClassDef *classDef() const {
    assert(isClass() && "not a class type");
    return Def;
  }

  /// For array types: the element type.
  const Type *element() const {
    assert(isArray() && "not an array type");
    return Elem;
  }

  /// Renders the type in source syntax, e.g. "Vector", "int[][]".
  std::string str() const;

private:
  friend class TypeTable;
  Type(TypeKind Kind, ClassDef *Def, const Type *Elem)
      : Kind(Kind), Def(Def), Elem(Elem) {}

  TypeKind Kind;
  ClassDef *Def = nullptr;   ///< Class types only.
  const Type *Elem = nullptr; ///< Array types only.
};

/// Owns and interns all Type instances for one Program.
class TypeTable {
public:
  TypeTable();

  const Type *intType() const { return IntTy; }
  const Type *boolType() const { return BoolTy; }
  const Type *voidType() const { return VoidTy; }
  const Type *nullType() const { return NullTy; }
  const Type *stringType() const { return StringTy; }

  /// Returns the unique type for class \p Def. Logically const: the
  /// table memoizes on first use.
  const Type *classType(const ClassDef *Def) const;

  /// Returns the unique array type with element \p Elem.
  const Type *arrayType(const Type *Elem) const;

private:
  const Type *make(TypeKind Kind, ClassDef *Def = nullptr,
                   const Type *Elem = nullptr) const;

  mutable std::vector<std::unique_ptr<Type>> Storage;
  const Type *IntTy, *BoolTy, *VoidTy, *NullTy, *StringTy;
  mutable std::unordered_map<const ClassDef *, const Type *> ClassTypes;
  mutable std::unordered_map<const Type *, const Type *> ArrayTypes;
};

} // namespace tsl

#endif // THINSLICER_IR_TYPES_H
