//===-- Program.h - ThinJ program model -------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzed program: classes with fields and methods, method bodies
/// as control-flow graphs of three-address instructions. This is the
/// common substrate for the class hierarchy, pointer analysis, SDG
/// construction, slicing, and the interpreter. It corresponds to the
/// bytecode-level IR the paper's WALA implementation analyzes.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_PROGRAM_H
#define THINSLICER_IR_PROGRAM_H

#include "ir/Types.h"
#include "support/SourceLoc.h"
#include "support/StringTable.h"

#include <memory>
#include <string>
#include <vector>

namespace tsl {

class BasicBlock;
class ClassDef;
class Instr;
class Method;
class Program;

/// An instance or static field of a class.
class Field {
public:
  Field(Symbol Name, const Type *Ty, ClassDef *Owner, bool IsStatic,
        unsigned Id)
      : Name(Name), Ty(Ty), Owner(Owner), IsStatic(IsStatic), Id(Id) {}

  Symbol name() const { return Name; }
  const Type *type() const { return Ty; }
  ClassDef *owner() const { return Owner; }
  bool isStatic() const { return IsStatic; }
  /// Program-wide dense field id.
  unsigned id() const { return Id; }

private:
  Symbol Name;
  const Type *Ty;
  ClassDef *Owner;
  bool IsStatic;
  unsigned Id;
};

/// A local variable or compiler temporary of a method. After SSA
/// construction each Local has exactly one defining instruction.
class Local {
public:
  Local(Symbol BaseName, const Type *Ty, unsigned Id, unsigned Version = 0,
        bool IsTemp = false)
      : BaseName(BaseName), Ty(Ty), Id(Id), Version(Version), IsTemp(IsTemp) {}

  Symbol baseName() const { return BaseName; }
  const Type *type() const { return Ty; }
  /// Method-local dense id.
  unsigned id() const { return Id; }
  /// SSA version (0 before SSA construction).
  unsigned version() const { return Version; }
  bool isTemp() const { return IsTemp; }

  /// Program-wide id of the owning method, set by Method::addLocal.
  /// Together with id() it forms the dense key serialized analysis
  /// layers use in place of Local* (see denseLocalKey below).
  unsigned ownerMethodId() const { return OwnerMethodId; }
  void setOwnerMethodId(unsigned MId) { OwnerMethodId = MId; }

  /// The unique defining instruction once the method is in SSA form.
  Instr *def() const { return Def; }
  void setDef(Instr *I) { Def = I; }

private:
  Symbol BaseName;
  const Type *Ty;
  unsigned Id;
  unsigned Version;
  bool IsTemp;
  unsigned OwnerMethodId = ~0u;
  Instr *Def = nullptr;
};

/// A formal parameter signature entry.
struct ParamSig {
  Symbol Name;
  const Type *Ty;
};

/// A method of a class (static or instance). Instance methods take an
/// implicit `this` parameter at index 0 of the body's Param
/// instructions; ParamSig covers only the declared parameters.
class Method {
public:
  Method(Symbol Name, ClassDef *Owner, bool IsStatic, const Type *RetTy,
         std::vector<ParamSig> Params, unsigned Id);
  ~Method();

  Method(const Method &) = delete;
  Method &operator=(const Method &) = delete;

  Symbol name() const { return Name; }
  ClassDef *owner() const { return Owner; }
  bool isStatic() const { return IsStatic; }
  const Type *returnType() const { return RetTy; }
  const std::vector<ParamSig> &params() const { return Params; }
  /// Program-wide dense method id.
  unsigned id() const { return Id; }

  /// Number of formals in the body, including `this` for instance
  /// methods.
  unsigned numFormals() const {
    return static_cast<unsigned>(Params.size()) + (IsStatic ? 0 : 1);
  }

  /// "Class.name" for messages and tables.
  std::string qualifiedName(const StringTable &Strings) const;

  //===--------------------------------------------------------------------===
  // Body
  //===--------------------------------------------------------------------===

  BasicBlock *entry() const { return Entry; }
  void setEntry(BasicBlock *BB) { Entry = BB; }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *addBlock();

  const std::vector<std::unique_ptr<Local>> &locals() const { return Locals; }
  Local *addLocal(Symbol BaseName, const Type *Ty, bool IsTemp = false,
                  unsigned Version = 0);

  /// Assigns dense ids (block order, instruction order within block) to
  /// all blocks and instructions. Must be re-run after CFG surgery.
  void renumber();

  /// Deletes blocks not reachable from the entry (created by lowering
  /// code after returns/breaks) and renumbers. Must run before SSA.
  void removeUnreachableBlocks();

  /// Total number of instructions after the last renumber().
  unsigned numInstrs() const { return NumInstrs; }

  /// All instructions in renumbered order. Only valid after renumber().
  const std::vector<Instr *> &instrs() const { return AllInstrs; }

  /// True once SSA construction ran on this body.
  bool isSSA() const { return SSAForm; }
  void setSSA(bool V) { SSAForm = V; }

  /// A method body detached by takeBody(): the full CFG, locals and
  /// instruction storage of one compiled version of the method. The
  /// incremental recompiler swaps bodies while keeping the Method
  /// object (and thus its program-wide id and every Method* in
  /// analysis artifacts) stable. Holding a DetachedBody keeps the old
  /// Instr* / Local* addresses alive, so stale hash-map keys in
  /// retained analysis state can still be erased (or safely compared)
  /// without ever dereferencing freed memory.
  struct DetachedBody {
    BasicBlock *Entry = nullptr;
    std::vector<std::unique_ptr<BasicBlock>> Blocks;
    std::vector<std::unique_ptr<Local>> Locals;
    std::vector<Instr *> AllInstrs;
    unsigned NumInstrs = 0;
    bool SSAForm = false;
  };

  /// Detaches the current body, leaving the method empty (no entry, no
  /// blocks, no locals) and ready for re-lowering.
  DetachedBody takeBody();

  /// Restores a body previously detached with takeBody(), discarding
  /// whatever the method currently holds.
  void resetBody(DetachedBody Body);

private:
  Symbol Name;
  ClassDef *Owner;
  bool IsStatic;
  const Type *RetTy;
  std::vector<ParamSig> Params;
  unsigned Id;

  BasicBlock *Entry = nullptr;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<std::unique_ptr<Local>> Locals;
  std::vector<Instr *> AllInstrs;
  unsigned NumInstrs = 0;
  bool SSAForm = false;
};

/// A ThinJ class: fields, methods, and a single superclass (Object has
/// none).
class ClassDef {
public:
  ClassDef(Symbol Name, unsigned Id) : Name(Name), Id(Id) {}

  Symbol name() const { return Name; }
  /// Program-wide dense class id.
  unsigned id() const { return Id; }

  ClassDef *superclass() const { return Super; }
  void setSuperclass(ClassDef *C) { Super = C; }

  const std::vector<Field *> &fields() const { return Fields; }
  void addField(Field *F) { Fields.push_back(F); }

  const std::vector<Method *> &methods() const { return Methods; }
  void addMethod(Method *M) { Methods.push_back(M); }

  /// Finds a field declared in this class (not in superclasses).
  Field *findOwnField(Symbol Name) const;
  /// Finds a field declared in this class or a superclass.
  Field *findField(Symbol Name) const;
  /// Finds a method declared in this class (not in superclasses).
  Method *findOwnMethod(Symbol Name) const;
  /// Finds a method declared in this class or inherited.
  Method *findMethod(Symbol Name) const;

  /// True if this class equals \p Other or transitively extends it.
  bool isSubclassOf(const ClassDef *Other) const;

private:
  Symbol Name;
  unsigned Id;
  ClassDef *Super = nullptr;
  std::vector<Field *> Fields;
  std::vector<Method *> Methods;
};

/// A complete analyzed program: the unit the whole pipeline operates
/// on. Owns the string table, type table, classes, fields, and methods.
class Program {
public:
  Program();

  StringTable &strings() { return Strings; }
  const StringTable &strings() const { return Strings; }
  TypeTable &types() { return Types; }
  const TypeTable &types() const { return Types; }

  const std::vector<std::unique_ptr<ClassDef>> &classes() const {
    return Classes;
  }
  ClassDef *addClass(Symbol Name);
  ClassDef *findClass(Symbol Name) const;

  const std::vector<std::unique_ptr<Method>> &methods() const {
    return Methods;
  }
  Method *addMethod(Symbol Name, ClassDef *Owner, bool IsStatic,
                    const Type *RetTy, std::vector<ParamSig> Params);

  const std::vector<std::unique_ptr<Field>> &fields() const { return Fields; }
  Field *addField(Symbol Name, const Type *Ty, ClassDef *Owner, bool IsStatic);

  /// The root of the class hierarchy; created by the Program
  /// constructor.
  ClassDef *objectClass() const { return ObjectClass; }

  /// The program entry point (a static, parameterless method).
  Method *mainMethod() const { return Main; }
  void setMainMethod(Method *M) { Main = M; }

  /// Renumbers all method bodies.
  void renumberAll();

private:
  StringTable Strings;
  TypeTable Types;
  std::vector<std::unique_ptr<ClassDef>> Classes;
  std::vector<std::unique_ptr<Method>> Methods;
  std::vector<std::unique_ptr<Field>> Fields;
  ClassDef *ObjectClass = nullptr;
  Method *Main = nullptr;
};

//===----------------------------------------------------------------------===//
// Dense identity keys
//===----------------------------------------------------------------------===//
//
// Serialized analysis layers (pta/, modref/, sdg/, cg/) key their maps
// by these program-derived integers instead of raw pointers, so a
// decoded artifact can reconstruct identity against a decoded Program
// (DESIGN.md section 14). Method, class, and field ids are
// program-wide; instruction and local ids are method-local, so their
// dense keys pair them with the owning method's id.

/// 64-bit dense key of one local: owner method id in the high word,
/// method-local id in the low word.
inline uint64_t denseLocalKey(const Local *L) {
  return (static_cast<uint64_t>(L->ownerMethodId()) << 32) | L->id();
}

} // namespace tsl

#endif // THINSLICER_IR_PROGRAM_H
