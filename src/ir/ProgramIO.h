//===-- ProgramIO.h - Program snapshot codec --------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encode/decode of a complete Program for the artifact
/// snapshots (DESIGN.md section 14). The decoder reconstructs the
/// program through the same Program/Method mutation API lowering
/// uses, in the same order the encoder walked it, so every dense id
/// (class, field, method, local, block, instruction) is reproduced
/// exactly — which is what lets every downstream layer serialize
/// itself as dense ids alone.
///
/// Also exports the structural Type codec and the dense-key lookup
/// helpers the pta/modref/sdg decoders resolve identities with.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_PROGRAMIO_H
#define THINSLICER_IR_PROGRAMIO_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/Serialize.h"

#include <memory>

namespace tsl {

/// Writes the PROGRAM section payload: interned strings, classes,
/// fields, method shells, and method bodies, all in dense-id order.
void encodeProgram(const Program &P, ByteWriter &W);

/// Rebuilds a Program from an encodeProgram() payload. Throws
/// SerializeError on any malformed input. The result is structurally
/// identical to the encoded program: every dense id round-trips.
std::unique_ptr<Program> decodeProgram(ByteReader &R);

/// Structural type codec: primitive kinds inline, class types by
/// class id, array types by recursive element. \p Ty may be null.
void encodeType(const Type *Ty, ByteWriter &W);
const Type *decodeType(ByteReader &R, const Program &P);

/// Resolves a denseInstrKey() against \p P (method id in the high
/// word, renumbered instruction id in the low word). Throws
/// SerializeError when either id is out of range.
const Instr *instrForKey(const Program &P, uint64_t Key);

/// Resolves a denseLocalKey() against \p P.
Local *localForKey(const Program &P, uint64_t Key);

/// Resolves a program-wide method id; throws when out of range.
Method *methodForId(const Program &P, uint32_t Id);

/// Resolves a program-wide field id; throws when out of range.
Field *fieldForId(const Program &P, uint32_t Id);

} // namespace tsl

#endif // THINSLICER_IR_PROGRAMIO_H
