//===-- ControlDep.cpp - Control dependence --------------------------------==//

#include "ir/ControlDep.h"

#include "ir/Dominators.h"
#include "ir/Instr.h"
#include "ir/Program.h"

#include <algorithm>

using namespace tsl;

ControlDeps::ControlDeps(const Method &Meth) : M(Meth) {
  unsigned NumBlocks = static_cast<unsigned>(M.blocks().size());
  Deps.assign(NumBlocks, {});
  if (NumBlocks == 0)
    return;

  DomTree PDT(M, /*Post=*/true);

  // For every branch edge (A -> S), every node from S up the
  // post-dominator tree to (but excluding) ipostdom(A) is control
  // dependent on A.
  for (const auto &BBPtr : M.blocks()) {
    BasicBlock *A = BBPtr.get();
    std::vector<BasicBlock *> Succs = A->successors();
    if (Succs.size() < 2)
      continue; // Only multi-way terminators create control deps.
    int IPDomA = PDT.idom(A->id());
    for (BasicBlock *S : Succs) {
      unsigned Runner = S->id();
      while (static_cast<int>(Runner) != IPDomA) {
        if (Runner < NumBlocks) // Skip the virtual exit.
          Deps[Runner].push_back(A->id());
        int Up = PDT.idom(Runner);
        if (Up < 0)
          break;
        Runner = static_cast<unsigned>(Up);
      }
    }
  }

  for (auto &D : Deps) {
    std::sort(D.begin(), D.end());
    D.erase(std::unique(D.begin(), D.end()), D.end());
  }
}

std::vector<Instr *> ControlDeps::controllingBranches(const Instr *I) const {
  std::vector<Instr *> Out;
  const BasicBlock *BB = I->parent();
  if (!BB)
    return Out;
  for (unsigned Controller : Deps[BB->id()]) {
    Instr *Term = M.blocks()[Controller]->terminator();
    if (Term)
      Out.push_back(Term);
  }
  return Out;
}
