//===-- Dominators.h - Dominator and post-dominator trees -------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees over a method's CFG using the
/// Cooper-Harvey-Kennedy iterative algorithm. Dominators drive SSA
/// construction; post-dominators drive control dependence, which
/// traditional slicing follows and thin slicing deliberately omits.
///
/// For post-dominators the node space is extended with a virtual exit
/// node that every Ret/Throw block edges to; blocks with no path to an
/// exit (infinite loops) are attached to the virtual exit with pseudo
/// edges so the tree is total.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_DOMINATORS_H
#define THINSLICER_IR_DOMINATORS_H

#include <vector>

namespace tsl {

class Method;

/// A dominator tree (forward) or post-dominator tree (Post == true).
///
/// Nodes are identified by basic-block id; for post-dominator trees one
/// extra node, virtualExit(), is appended.
class DomTree {
public:
  DomTree(const Method &M, bool Post);

  bool isPostDom() const { return Post; }
  unsigned numNodes() const {
    return static_cast<unsigned>(Idom.size());
  }

  /// Id of the virtual exit node (post-dominator trees only).
  unsigned virtualExit() const { return numNodes() - 1; }

  /// The tree root: entry block id, or virtualExit() for post-dom.
  unsigned root() const { return Root; }

  /// Immediate dominator of \p Node, or -1 for the root and for nodes
  /// unreachable in the traversal direction.
  int idom(unsigned Node) const { return Idom[Node]; }

  bool isReachable(unsigned Node) const {
    return Node == Root || Idom[Node] >= 0;
  }

  /// True if \p A (post-)dominates \p B. A node dominates itself.
  bool dominates(unsigned A, unsigned B) const;

  /// Children of \p Node in the tree.
  const std::vector<unsigned> &children(unsigned Node) const {
    return Children[Node];
  }

  /// Reverse postorder of reachable nodes in the traversal direction
  /// (root first).
  const std::vector<unsigned> &rpo() const { return RPO; }

  /// Dominance frontier of \p Node (forward trees only; used by SSA
  /// construction).
  const std::vector<unsigned> &frontier(unsigned Node) const {
    return Frontier[Node];
  }

private:
  void compute(const std::vector<std::vector<unsigned>> &Succs,
               const std::vector<std::vector<unsigned>> &Preds);
  void computeFrontiers(const std::vector<std::vector<unsigned>> &Preds);

  bool Post;
  unsigned Root;
  std::vector<int> Idom;
  std::vector<std::vector<unsigned>> Children;
  std::vector<unsigned> RPO;
  std::vector<int> RpoNumber; ///< -1 if unreachable.
  std::vector<std::vector<unsigned>> Frontier;
};

} // namespace tsl

#endif // THINSLICER_IR_DOMINATORS_H
