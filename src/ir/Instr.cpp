//===-- Instr.cpp - ThinJ instructions ------------------------------------==//

#include "ir/Instr.h"

using namespace tsl;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string localName(const Program &P, const Local *L) {
  std::string Out = P.strings().str(L->baseName());
  if (Out.empty())
    Out = "t" + std::to_string(L->id());
  if (L->version())
    Out += "." + std::to_string(L->version());
  return Out;
}

static const char *binOpName(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Rem:
    return "%";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  }
  return "?";
}

static const char *strOpName(StrOpKind Op) {
  switch (Op) {
  case StrOpKind::Concat:
    return "concat";
  case StrOpKind::Substring:
    return "substring";
  case StrOpKind::CharAt:
    return "charAt";
  case StrOpKind::IndexOf:
    return "indexOf";
  case StrOpKind::Length:
    return "length";
  case StrOpKind::Equals:
    return "equals";
  case StrOpKind::FromInt:
    return "str";
  }
  return "?";
}

/// Renders \p Ty with class names resolved through \p S.
static std::string typeName(const StringTable &S, const Type *Ty) {
  if (Ty->isClass())
    return S.str(Ty->classDef()->name());
  if (Ty->isArray())
    return typeName(S, Ty->element()) + "[]";
  return Ty->str();
}

std::string Instr::str(const Program &P) const {
  const StringTable &S = P.strings();
  std::string Out;
  if (Dest)
    Out = localName(P, Dest) + " = ";

  auto Op = [&](unsigned I) { return localName(P, operand(I)); };

  switch (Kind) {
  case InstrKind::ConstInt:
    Out += std::to_string(cast<ConstIntInstr>(this)->value());
    break;
  case InstrKind::ConstBool:
    Out += cast<ConstBoolInstr>(this)->value() ? "true" : "false";
    break;
  case InstrKind::ConstString:
    Out += "\"" + S.str(cast<ConstStringInstr>(this)->value()) + "\"";
    break;
  case InstrKind::ConstNull:
    Out += "null";
    break;
  case InstrKind::Read:
    Out += cast<ReadInstr>(this)->readKind() == ReadKind::Int ? "readInt()"
                                                              : "readLine()";
    break;
  case InstrKind::Param:
    Out += "param#" + std::to_string(cast<ParamInstr>(this)->index());
    break;
  case InstrKind::Move:
    Out += Op(0);
    break;
  case InstrKind::UnOp:
    Out += (cast<UnOpInstr>(this)->op() == UnOpKind::Neg ? "-" : "!");
    Out += Op(0);
    break;
  case InstrKind::BinOp:
    Out += Op(0);
    Out += " ";
    Out += binOpName(cast<BinOpInstr>(this)->op());
    Out += " ";
    Out += Op(1);
    break;
  case InstrKind::StrOp: {
    const auto *SO = cast<StrOpInstr>(this);
    Out += strOpName(SO->op());
    Out += "(";
    for (unsigned I = 0; I != SO->numOperands(); ++I) {
      if (I)
        Out += ", ";
      Out += Op(I);
    }
    Out += ")";
    break;
  }
  case InstrKind::New:
    Out += "new " + S.str(cast<NewInstr>(this)->allocatedClass()->name());
    break;
  case InstrKind::NewArray:
    Out += "new " + typeName(S, cast<NewArrayInstr>(this)->elementType()) +
           "[" + Op(0) + "]";
    break;
  case InstrKind::Load: {
    const auto *L = cast<LoadInstr>(this);
    if (L->isStaticAccess())
      Out += S.str(L->field()->owner()->name()) + "." +
             S.str(L->field()->name());
    else
      Out += Op(0) + "." + S.str(L->field()->name());
    break;
  }
  case InstrKind::Store: {
    const auto *St = cast<StoreInstr>(this);
    if (St->isStaticAccess())
      Out += S.str(St->field()->owner()->name()) + "." +
             S.str(St->field()->name()) + " = " + Op(0);
    else
      Out += Op(0) + "." + S.str(St->field()->name()) + " = " + Op(1);
    break;
  }
  case InstrKind::ArrayLoad:
    Out += Op(0) + "[" + Op(1) + "]";
    break;
  case InstrKind::ArrayStore:
    Out += Op(0) + "[" + Op(1) + "] = " + Op(2);
    break;
  case InstrKind::ArrayLen:
    Out += Op(0) + ".length";
    break;
  case InstrKind::Call: {
    const auto *C = cast<CallInstr>(this);
    Out += C->isVirtual() ? "callvirt " : "call ";
    Out += C->target()->qualifiedName(S);
    Out += "(";
    for (unsigned I = 0; I != C->numOperands(); ++I) {
      if (I)
        Out += ", ";
      Out += Op(I);
    }
    Out += ")";
    break;
  }
  case InstrKind::Cast:
    Out += "(" + typeName(S, cast<CastInstr>(this)->targetType()) + ") " +
           Op(0);
    break;
  case InstrKind::InstanceOf:
    Out += Op(0) + " instanceof " +
           typeName(S, cast<InstanceOfInstr>(this)->testType());
    break;
  case InstrKind::Phi: {
    Out += "phi(";
    for (unsigned I = 0; I != numOperands(); ++I) {
      if (I)
        Out += ", ";
      Out += Op(I);
    }
    Out += ")";
    break;
  }
  case InstrKind::Print:
    Out += "print(" + Op(0) + ")";
    break;
  case InstrKind::Goto:
    Out += "goto bb" + std::to_string(cast<GotoInstr>(this)->target()->id());
    break;
  case InstrKind::Branch: {
    const auto *B = cast<BranchInstr>(this);
    Out += "if " + Op(0) + " goto bb" + std::to_string(B->trueTarget()->id()) +
           " else bb" + std::to_string(B->falseTarget()->id());
    break;
  }
  case InstrKind::Ret:
    Out += numOperands() ? "return " + Op(0) : "return";
    break;
  case InstrKind::Throw:
    Out += "throw " + Op(0);
    break;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Instr *BasicBlock::append(std::unique_ptr<Instr> I) {
  assert(!terminator() && "appending past a terminator");
  I->setParent(this);
  if (I->dest())
    I->dest()->setDef(I.get());
  Instrs.push_back(std::move(I));
  return Instrs.back().get();
}

Instr *BasicBlock::prepend(std::unique_ptr<Instr> I) {
  I->setParent(this);
  if (I->dest())
    I->dest()->setDef(I.get());
  Instrs.insert(Instrs.begin(), std::move(I));
  return Instrs.front().get();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Out;
  Instr *Term = terminator();
  if (!Term)
    return Out;
  if (auto *G = dyn_cast<GotoInstr>(Term)) {
    Out.push_back(G->target());
  } else if (auto *B = dyn_cast<BranchInstr>(Term)) {
    Out.push_back(B->trueTarget());
    if (B->falseTarget() != B->trueTarget())
      Out.push_back(B->falseTarget());
  }
  // Ret and Throw have no successors.
  return Out;
}
