//===-- Program.cpp - ThinJ program model ---------------------------------==//

#include "ir/Program.h"

#include "ir/Instr.h"

using namespace tsl;

//===----------------------------------------------------------------------===//
// Method
//===----------------------------------------------------------------------===//

Method::Method(Symbol Name, ClassDef *Owner, bool IsStatic, const Type *RetTy,
               std::vector<ParamSig> Params, unsigned Id)
    : Name(Name), Owner(Owner), IsStatic(IsStatic), RetTy(RetTy),
      Params(std::move(Params)), Id(Id) {}

Method::~Method() = default;

std::string Method::qualifiedName(const StringTable &Strings) const {
  std::string Out;
  if (Owner)
    Out = Strings.str(Owner->name()) + ".";
  Out += Strings.str(Name);
  return Out;
}

BasicBlock *Method::addBlock() {
  Blocks.push_back(std::make_unique<BasicBlock>(
      this, static_cast<unsigned>(Blocks.size())));
  return Blocks.back().get();
}

Local *Method::addLocal(Symbol BaseName, const Type *Ty, bool IsTemp,
                        unsigned Version) {
  Locals.push_back(std::make_unique<Local>(
      BaseName, Ty, static_cast<unsigned>(Locals.size()), Version, IsTemp));
  Locals.back()->setOwnerMethodId(Id);
  return Locals.back().get();
}

Method::DetachedBody Method::takeBody() {
  DetachedBody B;
  B.Entry = Entry;
  B.Blocks = std::move(Blocks);
  B.Locals = std::move(Locals);
  B.AllInstrs = std::move(AllInstrs);
  B.NumInstrs = NumInstrs;
  B.SSAForm = SSAForm;
  Entry = nullptr;
  Blocks.clear();
  Locals.clear();
  AllInstrs.clear();
  NumInstrs = 0;
  SSAForm = false;
  return B;
}

void Method::resetBody(DetachedBody Body) {
  Entry = Body.Entry;
  Blocks = std::move(Body.Blocks);
  Locals = std::move(Body.Locals);
  AllInstrs = std::move(Body.AllInstrs);
  NumInstrs = Body.NumInstrs;
  SSAForm = Body.SSAForm;
}

void Method::renumber() {
  unsigned NextId = 0;
  AllInstrs.clear();
  for (const auto &BB : Blocks) {
    BB->clearPreds();
  }
  for (const auto &BB : Blocks) {
    for (const auto &I : BB->instrs()) {
      I->setId(NextId++);
      I->setParent(BB.get());
      AllInstrs.push_back(I.get());
    }
    for (BasicBlock *Succ : BB->successors())
      Succ->addPred(BB.get());
  }
  NumInstrs = NextId;
}

void Method::removeUnreachableBlocks() {
  if (!Entry)
    return;
  std::vector<bool> Reachable(Blocks.size(), false);
  std::vector<BasicBlock *> Stack = {Entry};
  Reachable[Entry->id()] = true;
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (!Reachable[Succ->id()]) {
        Reachable[Succ->id()] = true;
        Stack.push_back(Succ);
      }
  }
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  for (auto &BB : Blocks)
    if (Reachable[BB->id()])
      Kept.push_back(std::move(BB));
  Blocks = std::move(Kept);
  for (unsigned I = 0, E = static_cast<unsigned>(Blocks.size()); I != E; ++I)
    Blocks[I]->setId(I);
  renumber();
}

//===----------------------------------------------------------------------===//
// ClassDef
//===----------------------------------------------------------------------===//

Field *ClassDef::findOwnField(Symbol FieldName) const {
  for (Field *F : Fields)
    if (F->name() == FieldName)
      return F;
  return nullptr;
}

Field *ClassDef::findField(Symbol FieldName) const {
  for (const ClassDef *C = this; C; C = C->superclass())
    if (Field *F = C->findOwnField(FieldName))
      return F;
  return nullptr;
}

Method *ClassDef::findOwnMethod(Symbol MethodName) const {
  for (Method *M : Methods)
    if (M->name() == MethodName)
      return M;
  return nullptr;
}

Method *ClassDef::findMethod(Symbol MethodName) const {
  for (const ClassDef *C = this; C; C = C->superclass())
    if (Method *M = C->findOwnMethod(MethodName))
      return M;
  return nullptr;
}

bool ClassDef::isSubclassOf(const ClassDef *Other) const {
  for (const ClassDef *C = this; C; C = C->superclass())
    if (C == Other)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

Program::Program() {
  ObjectClass = addClass(Strings.intern("Object"));
}

ClassDef *Program::addClass(Symbol Name) {
  Classes.push_back(std::make_unique<ClassDef>(
      Name, static_cast<unsigned>(Classes.size())));
  return Classes.back().get();
}

ClassDef *Program::findClass(Symbol Name) const {
  for (const auto &C : Classes)
    if (C->name() == Name)
      return C.get();
  return nullptr;
}

Method *Program::addMethod(Symbol Name, ClassDef *Owner, bool IsStatic,
                           const Type *RetTy, std::vector<ParamSig> Params) {
  Methods.push_back(std::make_unique<Method>(
      Name, Owner, IsStatic, RetTy, std::move(Params),
      static_cast<unsigned>(Methods.size())));
  Method *M = Methods.back().get();
  if (Owner)
    Owner->addMethod(M);
  return M;
}

Field *Program::addField(Symbol Name, const Type *Ty, ClassDef *Owner,
                         bool IsStatic) {
  Fields.push_back(std::make_unique<Field>(
      Name, Ty, Owner, IsStatic, static_cast<unsigned>(Fields.size())));
  Field *F = Fields.back().get();
  Owner->addField(F);
  return F;
}

void Program::renumberAll() {
  for (const auto &M : Methods)
    M->renumber();
}
