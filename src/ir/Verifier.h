//===-- Verifier.h - IR well-formedness checks ------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA invariant checks for lowered method bodies. The
/// frontend and SSA pass are verified by tests through this interface,
/// and the analyses assert on a verified program.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_VERIFIER_H
#define THINSLICER_IR_VERIFIER_H

#include <string>
#include <vector>

namespace tsl {

class Method;
class Program;

/// Checks structural invariants of \p M (every block terminated
/// exactly once, params at entry, phi shapes) and, if the method is in
/// SSA form, the SSA invariants (unique defs, defs dominate uses).
/// Returns human-readable violation descriptions; empty means valid.
std::vector<std::string> verifyMethod(const Program &P, const Method &M);

/// Verifies every method; returns all violations.
std::vector<std::string> verifyProgram(const Program &P);

} // namespace tsl

#endif // THINSLICER_IR_VERIFIER_H
