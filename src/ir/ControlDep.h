//===-- ControlDep.h - Control dependence -----------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence per Ferrante-Ottenstein-Warren: block X is
/// control dependent on branch block A when A has a successor S such
/// that X post-dominates S but X does not post-dominate A. Traditional
/// slices follow these dependences transitively; thin slices exclude
/// them and the expansion API (paper Section 4.2) surfaces them on
/// demand.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_CONTROLDEP_H
#define THINSLICER_IR_CONTROLDEP_H

#include <vector>

namespace tsl {

class BasicBlock;
class Instr;
class Method;

/// Control dependences of one method at basic-block granularity, with
/// an instruction-level query layer.
class ControlDeps {
public:
  explicit ControlDeps(const Method &M);

  /// Blocks whose terminator controls whether \p BlockId executes.
  const std::vector<unsigned> &controllers(unsigned BlockId) const {
    return Deps[BlockId];
  }

  /// The branch instructions that control execution of \p I (the
  /// terminators of controllers of I's block).
  std::vector<Instr *> controllingBranches(const Instr *I) const;

private:
  const Method &M;
  std::vector<std::vector<unsigned>> Deps;
};

} // namespace tsl

#endif // THINSLICER_IR_CONTROLDEP_H
