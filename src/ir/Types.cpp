//===-- Types.cpp - ThinJ type system -------------------------------------==//

#include "ir/Types.h"

#include "ir/Program.h"

using namespace tsl;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Void:
    return "void";
  case TypeKind::Null:
    return "null";
  case TypeKind::String:
    return "string";
  case TypeKind::Class:
    return "class#" + std::to_string(Def->id());
  case TypeKind::Array:
    return Elem->str() + "[]";
  }
  return "<bad-type>";
}

TypeTable::TypeTable() {
  IntTy = make(TypeKind::Int);
  BoolTy = make(TypeKind::Bool);
  VoidTy = make(TypeKind::Void);
  NullTy = make(TypeKind::Null);
  StringTy = make(TypeKind::String);
}

const Type *TypeTable::make(TypeKind Kind, ClassDef *Def,
                            const Type *Elem) const {
  Storage.push_back(std::unique_ptr<Type>(new Type(Kind, Def, Elem)));
  return Storage.back().get();
}

const Type *TypeTable::classType(const ClassDef *Def) const {
  assert(Def && "class type needs a class");
  auto It = ClassTypes.find(Def);
  if (It != ClassTypes.end())
    return It->second;
  const Type *Ty = make(TypeKind::Class, const_cast<ClassDef *>(Def));
  ClassTypes.emplace(Def, Ty);
  return Ty;
}

const Type *TypeTable::arrayType(const Type *Elem) const {
  assert(Elem && !Elem->isVoid() && !Elem->isNull() &&
         "invalid array element type");
  auto It = ArrayTypes.find(Elem);
  if (It != ArrayTypes.end())
    return It->second;
  const Type *Ty = make(TypeKind::Array, nullptr, Elem);
  ArrayTypes.emplace(Elem, Ty);
  return Ty;
}
