//===-- Verifier.cpp - IR well-formedness checks ----------------------------==//

#include "ir/Verifier.h"

#include "ir/Dominators.h"
#include "ir/Instr.h"
#include "ir/Program.h"

#include <unordered_map>
#include <unordered_set>

using namespace tsl;

namespace {

class MethodVerifier {
public:
  MethodVerifier(const Program &P, const Method &M) : P(P), M(M) {}

  std::vector<std::string> run();

private:
  void fail(const std::string &Msg) {
    Violations.push_back(M.qualifiedName(P.strings()) + ": " + Msg);
  }

  void checkStructure();
  void checkParams();
  void checkSSA();

  const Program &P;
  const Method &M;
  std::vector<std::string> Violations;
};

} // namespace

std::vector<std::string> MethodVerifier::run() {
  if (!M.entry())
    return Violations; // Bodyless (abstract/external) method.
  checkStructure();
  checkParams();
  if (M.isSSA())
    checkSSA();
  return Violations;
}

void MethodVerifier::checkStructure() {
  for (const auto &BB : M.blocks()) {
    if (BB->instrs().empty()) {
      fail("bb" + std::to_string(BB->id()) + " is empty");
      continue;
    }
    for (size_t I = 0, E = BB->instrs().size(); I != E; ++I) {
      const Instr *Ins = BB->instrs()[I].get();
      bool IsLast = I + 1 == E;
      if (Ins->isTerminator() != IsLast) {
        fail("bb" + std::to_string(BB->id()) +
             (IsLast ? " does not end in a terminator"
                     : " has a terminator before the end"));
        break;
      }
      if (Ins->parent() != BB.get())
        fail("instruction with stale parent in bb" +
             std::to_string(BB->id()));
    }
    // Phis must be grouped at the head and match predecessor counts.
    bool SeenNonPhi = false;
    for (const auto &Ins : BB->instrs()) {
      if (auto *Phi = dyn_cast<PhiInstr>(Ins.get())) {
        if (SeenNonPhi)
          fail("phi after non-phi in bb" + std::to_string(BB->id()));
        if (Phi->numOperands() != BB->preds().size())
          fail("phi operand count " + std::to_string(Phi->numOperands()) +
               " != pred count " + std::to_string(BB->preds().size()) +
               " in bb" + std::to_string(BB->id()));
      } else {
        SeenNonPhi = true;
      }
    }
  }
}

void MethodVerifier::checkParams() {
  std::unordered_set<unsigned> Seen;
  for (const auto &BB : M.blocks()) {
    for (const auto &Ins : BB->instrs()) {
      const auto *PI = dyn_cast<ParamInstr>(Ins.get());
      if (!PI)
        continue;
      if (BB.get() != M.entry())
        fail("param instruction outside the entry block");
      if (PI->index() >= M.numFormals())
        fail("param index out of range");
      if (!Seen.insert(PI->index()).second)
        fail("duplicate param instruction for formal " +
             std::to_string(PI->index()));
    }
  }
  if (Seen.size() != M.numFormals())
    fail("missing param instructions: have " + std::to_string(Seen.size()) +
         ", need " + std::to_string(M.numFormals()));
}

void MethodVerifier::checkSSA() {
  // Unique definitions.
  std::unordered_map<const Local *, const Instr *> Defs;
  for (const auto &BB : M.blocks()) {
    for (const auto &Ins : BB->instrs()) {
      if (const Local *D = Ins->dest()) {
        if (!Defs.emplace(D, Ins.get()).second)
          fail("local defined more than once: " +
               P.strings().str(D->baseName()) + "." +
               std::to_string(D->version()));
        if (D->def() != Ins.get())
          fail("stale def pointer on " + P.strings().str(D->baseName()));
      }
    }
  }

  // Defs dominate uses.
  DomTree DT(M, /*Post=*/false);
  auto DefinedBefore = [&](const Instr *Def, const Instr *Use) {
    if (Def->parent() == Use->parent())
      return Def->id() < Use->id();
    return DT.dominates(Def->parent()->id(), Use->parent()->id());
  };
  for (const auto &BB : M.blocks()) {
    for (const auto &Ins : BB->instrs()) {
      if (const auto *Phi = dyn_cast<PhiInstr>(Ins.get())) {
        for (unsigned I = 0; I != Phi->numOperands(); ++I) {
          const Local *Op = Phi->operand(I);
          const Instr *Def = Op->def();
          BasicBlock *Incoming = Phi->incomingBlocks()[I];
          if (!Def) {
            fail("phi operand without def");
            continue;
          }
          if (Def->parent() != Incoming &&
              !DT.dominates(Def->parent()->id(), Incoming->id()))
            fail("phi operand def does not dominate incoming edge");
        }
        continue;
      }
      for (const Local *Op : Ins->operands()) {
        const Instr *Def = Op->def();
        if (!Def) {
          fail("use of local without def: " +
               P.strings().str(Op->baseName()));
          continue;
        }
        if (!DefinedBefore(Def, Ins.get()))
          fail("def does not dominate use of " +
               P.strings().str(Op->baseName()) + "." +
               std::to_string(Op->version()));
      }
    }
  }
}

std::vector<std::string> tsl::verifyMethod(const Program &P, const Method &M) {
  return MethodVerifier(P, M).run();
}

std::vector<std::string> tsl::verifyProgram(const Program &P) {
  std::vector<std::string> All;
  for (const auto &M : P.methods()) {
    auto V = verifyMethod(P, *M);
    All.insert(All.end(), V.begin(), V.end());
  }
  return All;
}
