//===-- IRPrinter.h - Textual IR dumps --------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders method bodies and whole programs as text for debugging,
/// golden tests, and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_IR_IRPRINTER_H
#define THINSLICER_IR_IRPRINTER_H

#include <string>

namespace tsl {

class Method;
class Program;

/// Renders one method body, block by block.
std::string printMethod(const Program &P, const Method &M);

/// Renders every method with a body.
std::string printProgram(const Program &P);

} // namespace tsl

#endif // THINSLICER_IR_IRPRINTER_H
