//===-- CallGraph.cpp - Context-aware call graph ------------------------------==//

#include "cg/CallGraph.h"

#include <algorithm>

using namespace tsl;

static uint64_t nodeKey(const Method *M, unsigned Ctx) {
  return (static_cast<uint64_t>(M->id()) << 32) | Ctx;
}

unsigned CallGraph::getOrCreateNode(Method *M, unsigned Ctx) {
  uint64_t Key = nodeKey(M, Ctx);
  auto It = NodeIndex.find(Key);
  if (It != NodeIndex.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back({M, Ctx, Id});
  NodeIndex.emplace(Key, Id);
  MethodNodes[M->id()].push_back(Id);
  return Id;
}

int CallGraph::findNode(const Method *M, unsigned Ctx) const {
  auto It = NodeIndex.find(nodeKey(M, Ctx));
  return It == NodeIndex.end() ? -1 : static_cast<int>(It->second);
}

bool CallGraph::addEdge(unsigned CallerNode, const CallInstr *Site,
                        unsigned CalleeNode) {
  if (!EdgeDedup.insert({CallerNode, denseInstrKey(Site), CalleeNode})
           .second)
    return false;
  Edges.push_back({CallerNode, Site, CalleeNode});
  SiteEdges[denseInstrKey(Site)].push_back(
      static_cast<unsigned>(Edges.size() - 1));
  return true;
}

std::vector<Method *> CallGraph::calleesOf(const CallInstr *Site) const {
  std::vector<Method *> Out;
  auto It = SiteEdges.find(denseInstrKey(Site));
  if (It == SiteEdges.end())
    return Out;
  for (unsigned EdgeIdx : It->second) {
    Method *M = Nodes[Edges[EdgeIdx].CalleeNode].M;
    if (std::find(Out.begin(), Out.end(), M) == Out.end())
      Out.push_back(M);
  }
  return Out;
}

std::vector<unsigned> CallGraph::calleeNodesOf(const CallInstr *Site) const {
  std::vector<unsigned> Out;
  auto It = SiteEdges.find(denseInstrKey(Site));
  if (It == SiteEdges.end())
    return Out;
  for (unsigned EdgeIdx : It->second) {
    unsigned Node = Edges[EdgeIdx].CalleeNode;
    if (std::find(Out.begin(), Out.end(), Node) == Out.end())
      Out.push_back(Node);
  }
  return Out;
}

std::vector<std::pair<unsigned, const CallInstr *>>
CallGraph::callersOf(const Method *M) const {
  std::vector<std::pair<unsigned, const CallInstr *>> Out;
  for (const CallEdge &E : Edges) {
    if (Nodes[E.CalleeNode].M != M)
      continue;
    auto Entry = std::make_pair(E.CallerNode, E.Site);
    if (std::find(Out.begin(), Out.end(), Entry) == Out.end())
      Out.push_back(Entry);
  }
  return Out;
}

std::vector<Method *> CallGraph::reachableMethods() const {
  std::vector<Method *> Out;
  for (const auto &[MId, NodeIds] : MethodNodes) {
    (void)MId;
    Out.push_back(Nodes[NodeIds.front()].M);
  }
  std::sort(Out.begin(), Out.end(),
            [](const Method *A, const Method *B) { return A->id() < B->id(); });
  return Out;
}

const std::vector<unsigned> &CallGraph::nodesOf(const Method *M) const {
  static const std::vector<unsigned> Empty;
  auto It = MethodNodes.find(M->id());
  return It == MethodNodes.end() ? Empty : It->second;
}

void CallGraph::removeEdgesAtSites(
    const std::unordered_set<const Instr *> &DeadSites) {
  std::vector<CallEdge> Kept;
  Kept.reserve(Edges.size());
  for (const CallEdge &E : Edges)
    if (!DeadSites.count(E.Site))
      Kept.push_back(E);
  if (Kept.size() == Edges.size())
    return;
  Edges = std::move(Kept);
  SiteEdges.clear();
  EdgeDedup.clear();
  for (unsigned I = 0, N = static_cast<unsigned>(Edges.size()); I != N; ++I) {
    const CallEdge &E = Edges[I];
    SiteEdges[denseInstrKey(E.Site)].push_back(I);
    EdgeDedup.insert({E.CallerNode, denseInstrKey(E.Site), E.CalleeNode});
  }
}

bool CallGraph::allReachableFrom(unsigned EntryNode) const {
  if (EntryNode >= Nodes.size())
    return Nodes.empty();
  std::vector<std::vector<unsigned>> Succ(Nodes.size());
  for (const CallEdge &E : Edges)
    Succ[E.CallerNode].push_back(E.CalleeNode);
  std::vector<bool> Seen(Nodes.size(), false);
  std::vector<unsigned> Stack = {EntryNode};
  Seen[EntryNode] = true;
  size_t Count = 1;
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    for (unsigned S : Succ[N])
      if (!Seen[S]) {
        Seen[S] = true;
        ++Count;
        Stack.push_back(S);
      }
  }
  return Count == Nodes.size();
}
