//===-- ClassHierarchy.h - Subtyping and dispatch ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subtype queries over ThinJ types and virtual dispatch resolution.
/// Used by the pointer analysis (on-the-fly call graph, cast filters),
/// the CHA baseline call graph, and the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_CG_CLASSHIERARCHY_H
#define THINSLICER_CG_CLASSHIERARCHY_H

#include "ir/Program.h"

#include <vector>

namespace tsl {

/// Type- and dispatch-level queries against one Program.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const Program &P);

  const Program &program() const { return P; }

  /// True when a value of runtime type \p From may be stored where
  /// \p To is expected (reflexive; Object is the top reference type;
  /// null is the bottom).
  bool isSubtype(const Type *From, const Type *To) const;

  /// Resolves the method actually invoked when \p Declared is called
  /// virtually on an instance of \p Runtime. Returns null when
  /// \p Runtime is unrelated to the declaring class.
  Method *resolveVirtual(const ClassDef *Runtime, const Method *Declared) const;

  /// All classes that are \p C or transitively extend it.
  const std::vector<ClassDef *> &subclassesOf(const ClassDef *C) const;

  /// All methods that a virtual call with declared target \p Declared
  /// may dispatch to (the CHA approximation).
  std::vector<Method *> chaTargets(const Method *Declared) const;

private:
  const Program &P;
  std::vector<std::vector<ClassDef *>> Subclasses; ///< Indexed by class id.
};

} // namespace tsl

#endif // THINSLICER_CG_CLASSHIERARCHY_H
