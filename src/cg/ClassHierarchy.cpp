//===-- ClassHierarchy.cpp - Subtyping and dispatch --------------------------==//

#include "cg/ClassHierarchy.h"

#include <algorithm>

using namespace tsl;

ClassHierarchy::ClassHierarchy(const Program &P) : P(P) {
  Subclasses.resize(P.classes().size());
  for (const auto &C : P.classes())
    for (ClassDef *Walk = C.get(); Walk; Walk = Walk->superclass())
      Subclasses[Walk->id()].push_back(C.get());
}

bool ClassHierarchy::isSubtype(const Type *From, const Type *To) const {
  if (From == To)
    return true;
  if (From->isNull() && To->isReference())
    return true;
  if (To->isClass() && To->classDef() == P.objectClass() &&
      From->isReference())
    return true;
  if (From->isClass() && To->isClass())
    return From->classDef()->isSubclassOf(To->classDef());
  return false;
}

Method *ClassHierarchy::resolveVirtual(const ClassDef *Runtime,
                                       const Method *Declared) const {
  if (!Runtime->isSubclassOf(Declared->owner()))
    return nullptr;
  return Runtime->findMethod(Declared->name());
}

const std::vector<ClassDef *> &
ClassHierarchy::subclassesOf(const ClassDef *C) const {
  return Subclasses[C->id()];
}

std::vector<Method *> ClassHierarchy::chaTargets(const Method *Declared) const {
  std::vector<Method *> Targets;
  for (ClassDef *Sub : subclassesOf(Declared->owner())) {
    Method *Resolved = Sub->findMethod(Declared->name());
    if (Resolved && std::find(Targets.begin(), Targets.end(), Resolved) ==
                        Targets.end())
      Targets.push_back(Resolved);
  }
  return Targets;
}
