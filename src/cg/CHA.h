//===-- CHA.h - Class-hierarchy-analysis call graph -------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic baseline call graph: every virtual call dispatches to
/// every override in the declared receiver class's subtree. Coarser
/// than the pointer-analysis-based on-the-fly graph the paper uses,
/// but independent of points-to results — useful as a precision
/// baseline in tests and as a fallback when no entry point exists.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_CG_CHA_H
#define THINSLICER_CG_CHA_H

#include "cg/CallGraph.h"
#include "cg/ClassHierarchy.h"

#include <memory>

namespace tsl {

/// Builds a context-insensitive CHA call graph rooted at main (or at
/// every method when \p FromMainOnly is false). All nodes use
/// context 0.
std::unique_ptr<CallGraph> buildCHACallGraph(Program &P,
                                             const ClassHierarchy &CH,
                                             bool FromMainOnly = true);

} // namespace tsl

#endif // THINSLICER_CG_CHA_H
