//===-- CallGraph.h - Context-aware call graph -------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph produced during pointer analysis (or by the CHA
/// baseline). Nodes are (method, context) pairs — contexts come from
/// the points-to analysis's object-sensitive cloning of container
/// classes, so, as in the paper's Table 1, the number of call graph
/// nodes can exceed the number of distinct reachable methods.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_CG_CALLGRAPH_H
#define THINSLICER_CG_CALLGRAPH_H

#include "ir/Instr.h"
#include "ir/Program.h"

#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tsl {

/// One call graph node: a method analyzed under one cloning context.
/// Context 0 is the context-insensitive default.
struct MethodCtx {
  Method *M;
  unsigned Ctx;
  unsigned Id;
};

/// A call edge: a specific call site in a caller node invoking a
/// callee node.
struct CallEdge {
  unsigned CallerNode;
  const CallInstr *Site;
  unsigned CalleeNode;
};

/// Call graph over MethodCtx nodes with per-site edge queries.
class CallGraph {
public:
  /// Returns the node for (M, Ctx), creating it on first use.
  unsigned getOrCreateNode(Method *M, unsigned Ctx);

  /// Returns the node id, or -1 when absent.
  int findNode(const Method *M, unsigned Ctx) const;

  const std::vector<MethodCtx> &nodes() const { return Nodes; }
  const MethodCtx &node(unsigned Id) const { return Nodes[Id]; }

  /// Adds an edge; returns true when it was new.
  bool addEdge(unsigned CallerNode, const CallInstr *Site,
               unsigned CalleeNode);

  const std::vector<CallEdge> &edges() const { return Edges; }

  /// Distinct callee methods of \p Site across all contexts.
  std::vector<Method *> calleesOf(const CallInstr *Site) const;

  /// Callee nodes of \p Site (context-level).
  std::vector<unsigned> calleeNodesOf(const CallInstr *Site) const;

  /// Call sites (with caller node) that may invoke method \p M.
  std::vector<std::pair<unsigned, const CallInstr *>>
  callersOf(const Method *M) const;

  /// Distinct reachable methods (those with a node).
  std::vector<Method *> reachableMethods() const;
  bool isReachable(const Method *M) const {
    return MethodNodes.count(M->id()) != 0;
  }

  /// Nodes of one method across contexts.
  const std::vector<unsigned> &nodesOf(const Method *M) const;

  /// Incremental retraction: drops every edge whose call site is in
  /// \p DeadSites (instructions of retired method bodies), compacting
  /// Edges in stable order and rebuilding the site and dedup indices.
  /// Nodes are never removed — a node left unreachable is caught by
  /// allReachableFrom() and triggers the caller's cold fallback.
  void removeEdgesAtSites(const std::unordered_set<const Instr *> &DeadSites);

  /// True when every node is reachable from \p EntryNode over Edges.
  bool allReachableFrom(unsigned EntryNode) const;

private:
  // All indices are dense-id keyed (method ids, denseInstrKey of call
  // sites) rather than pointer keyed, so a graph decoded from a
  // snapshot replays into identical index state — see the dense
  // identity note in ir/Program.h.
  std::vector<MethodCtx> Nodes;
  std::vector<CallEdge> Edges;
  std::unordered_map<uint32_t, std::vector<unsigned>> MethodNodes;
  std::unordered_map<uint64_t, unsigned> NodeIndex; ///< (methodId,ctx) key.
  std::unordered_map<uint64_t, std::vector<unsigned>> SiteEdges;
  /// Exact edge identity (no hash folding: a dropped edge would be a
  /// soundness bug).
  std::set<std::tuple<unsigned, uint64_t, unsigned>> EdgeDedup;
};

} // namespace tsl

#endif // THINSLICER_CG_CALLGRAPH_H
