//===-- CHA.cpp - Class-hierarchy-analysis call graph ---------------------------==//

#include "cg/CHA.h"

#include "support/Worklist.h"

using namespace tsl;

std::unique_ptr<CallGraph> tsl::buildCHACallGraph(Program &P,
                                                  const ClassHierarchy &CH,
                                                  bool FromMainOnly) {
  auto CG = std::make_unique<CallGraph>();

  // Seed the worklist with entry methods.
  Worklist WL;
  auto Enqueue = [&](Method *M) {
    if (!M->entry())
      return;
    unsigned Node = CG->getOrCreateNode(M, 0);
    WL.push(Node);
  };
  if (FromMainOnly) {
    if (Method *Main = P.mainMethod())
      Enqueue(Main);
  } else {
    for (const auto &M : P.methods())
      Enqueue(M.get());
  }

  while (!WL.empty()) {
    unsigned Node = WL.pop();
    Method *M = CG->node(Node).M;
    for (const auto &BB : M->blocks()) {
      for (const auto &I : BB->instrs()) {
        const auto *Call = dyn_cast<CallInstr>(I.get());
        if (!Call)
          continue;
        std::vector<Method *> Targets;
        if (Call->isVirtual())
          Targets = CH.chaTargets(Call->target());
        else
          Targets.push_back(Call->target());
        for (Method *Target : Targets) {
          if (!Target->entry())
            continue;
          unsigned CalleeNode = CG->getOrCreateNode(Target, 0);
          CG->addEdge(Node, Call, CalleeNode);
          WL.push(CalleeNode);
        }
      }
    }
  }
  return CG;
}
