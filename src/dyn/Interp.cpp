//===-- Interp.cpp - ThinJ interpreter ----------------------------------------==//

#include "dyn/Interp.h"

#include "cg/ClassHierarchy.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace tsl;

//===----------------------------------------------------------------------===//
// DynTrace
//===----------------------------------------------------------------------===//

uint32_t DynTrace::addInstance(const Instr *I, std::vector<uint32_t> Deps) {
  // Drop missing deps (untraced producers like exhausted inputs).
  Deps.erase(std::remove(Deps.begin(), Deps.end(), NoInstance), Deps.end());
  Instances.push_back({I, std::move(Deps)});
  return static_cast<uint32_t>(Instances.size() - 1);
}

int64_t DynTrace::lastInstanceOf(const Instr *I) const {
  for (size_t Idx = Instances.size(); Idx-- > 0;)
    if (Instances[Idx].I == I)
      return static_cast<int64_t>(Idx);
  return -1;
}

std::vector<const Instr *>
DynTrace::dynamicThinSlice(uint32_t InstanceId) const {
  std::vector<const Instr *> Out;
  std::unordered_set<const Instr *> SeenStmts;
  std::vector<bool> Visited(Instances.size(), false);
  std::vector<uint32_t> Stack = {InstanceId};
  while (!Stack.empty()) {
    uint32_t Id = Stack.back();
    Stack.pop_back();
    if (Id >= Instances.size() || Visited[Id])
      continue;
    Visited[Id] = true;
    const Instance &Inst = Instances[Id];
    if (SeenStmts.insert(Inst.I).second)
      Out.push_back(Inst.I);
    for (uint32_t Dep : Inst.ThinDeps)
      Stack.push_back(Dep);
  }
  return Out;
}

std::vector<const Instr *>
DynTrace::dynamicThinSliceOfLast(const Instr *Seed) const {
  int64_t Id = lastInstanceOf(Seed);
  if (Id < 0)
    return {};
  return dynamicThinSlice(static_cast<uint32_t>(Id));
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

/// A runtime value with its producing trace instance.
struct Value {
  enum class Kind { Int, Bool, Null, Ref } K = Kind::Null;
  int64_t I = 0;    ///< Int/Bool payload.
  unsigned Ref = 0; ///< Heap object index for Kind::Ref.
  uint32_t Inst = DynTrace::NoInstance;

  static Value makeInt(int64_t V) { return {Kind::Int, V, 0, ~0u}; }
  static Value makeBool(bool V) { return {Kind::Bool, V, 0, ~0u}; }
  static Value makeNull() { return {}; }
  static Value makeRef(unsigned Obj) { return {Kind::Ref, 0, Obj, ~0u}; }

  bool isNull() const { return K == Kind::Null; }
};

/// A slot in the heap: the value plus its writing store instance.
struct Slot {
  Value V;
  uint32_t Writer = DynTrace::NoInstance;
};

/// One heap object: a class instance, an array, or a string.
struct HeapObject {
  const Type *Ty = nullptr;
  const ClassDef *Class = nullptr;
  std::unordered_map<const Field *, Slot> Fields;
  std::vector<Slot> Elems;
  std::string Str;
};

/// Signals for non-local exits.
enum class Signal { None, Exception, RuntimeError, LimitHit };

class Interp {
public:
  Interp(const Program &P, const InterpOptions &Opts)
      : P(P), Opts(Opts), CH(P),
        StepGate(Opts.Budget, "interp.step",
                 Opts.Budget ? Opts.Budget->MaxInterpSteps : 0),
        OutGate(Opts.Budget, "interp.output", Opts.MaxOutputBytes) {}

  InterpResult run();

private:
  /// Executes one method body; the return value (if any) lands in
  /// \p RetVal.
  Signal execMethod(const Method *M, const std::vector<Value> &Args,
                    Value &RetVal, unsigned Depth);

  Signal callMethod(const CallInstr *Call, const Method *Target,
                    const std::vector<Value> &Args, Value &RetVal,
                    unsigned Depth);

  Signal fail(const Instr *I, const std::string &Msg) {
    R.Error = Msg + (I->loc().isValid()
                         ? " at line " + std::to_string(I->loc().Line)
                         : "");
    R.FailurePoint = I;
    return Signal::RuntimeError;
  }

  bool traceOn() const {
    return Opts.TraceDeps &&
           R.Trace.instances().size() < Opts.MaxTraceInstances;
  }

  /// Creates a trace instance for \p I consuming \p Deps.
  uint32_t note(const Instr *I, std::vector<uint32_t> Deps) {
    if (!traceOn())
      return DynTrace::NoInstance;
    return R.Trace.addInstance(I, std::move(Deps));
  }

  std::string render(const Value &V) const;
  unsigned allocString(std::string S) {
    Heap.push_back(HeapObject{P.types().stringType(), nullptr, {}, {}, S});
    return static_cast<unsigned>(Heap.size() - 1);
  }

  const Program &P;
  const InterpOptions &Opts;
  ClassHierarchy CH;
  InterpResult R;
  std::vector<HeapObject> Heap;
  std::unordered_map<const Field *, Slot> Statics;
  size_t NextLine = 0, NextInt = 0;
  uint64_t Steps = 0;
  uint64_t OutputBytes = 0;
  /// Budget/fault gates: step count (plus wall-clock deadline) and
  /// cumulative print-output bytes.
  BudgetGate StepGate;
  BudgetGate OutGate;
};

} // namespace

std::string Interp::render(const Value &V) const {
  switch (V.K) {
  case Value::Kind::Int:
    return std::to_string(V.I);
  case Value::Kind::Bool:
    return V.I ? "true" : "false";
  case Value::Kind::Null:
    return "null";
  case Value::Kind::Ref: {
    const HeapObject &O = Heap[V.Ref];
    if (O.Ty->isString())
      return O.Str;
    if (O.Ty->isArray())
      return "array@" + std::to_string(V.Ref);
    return P.strings().str(O.Class->name()) + "@" + std::to_string(V.Ref);
  }
  }
  return "?";
}

InterpResult Interp::run() {
  const Method *Main = P.mainMethod();
  if (!Main) {
    R.Error = "program has no main method";
    return std::move(R);
  }
  Value Ret;
  Signal S = execMethod(Main, {}, Ret, 0);
  R.Completed = S == Signal::None;
  R.ThrewException = S == Signal::Exception;
  R.HitLimit = S == Signal::LimitHit;
  R.Steps = Steps;
  return std::move(R);
}

Signal Interp::callMethod(const CallInstr *Call, const Method *Target,
                          const std::vector<Value> &Args, Value &RetVal,
                          unsigned Depth) {
  (void)Call;
  if (Depth + 1 >= Opts.MaxCallDepth) {
    R.Error = "call depth limit exceeded";
    return Signal::LimitHit;
  }
  return execMethod(Target, Args, RetVal, Depth + 1);
}

Signal Interp::execMethod(const Method *M, const std::vector<Value> &Args,
                          Value &RetVal, unsigned Depth) {
  std::unordered_map<const Local *, Value> Regs;
  const BasicBlock *Block = M->entry();
  const BasicBlock *PrevBlock = nullptr;

  auto Get = [&](const Local *L) { return Regs[L]; };

  while (true) {
    // Evaluate phis of the block first, all based on the same
    // predecessor, reading pre-update registers (parallel semantics).
    if (PrevBlock) {
      std::vector<std::pair<const Local *, Value>> PhiUpdates;
      for (const auto &IPtr : Block->instrs()) {
        const auto *Phi = dyn_cast<PhiInstr>(IPtr.get());
        if (!Phi)
          break;
        const auto &Incoming = Phi->incomingBlocks();
        Value V;
        for (size_t Idx = 0; Idx != Incoming.size(); ++Idx) {
          if (Incoming[Idx] == PrevBlock) {
            V = Get(Phi->operand(static_cast<unsigned>(Idx)));
            break;
          }
        }
        Value Out = V;
        Out.Inst = note(Phi, {V.Inst});
        PhiUpdates.emplace_back(Phi->dest(), Out);
      }
      for (auto &[L, V] : PhiUpdates)
        Regs[L] = V;
    }

    for (const auto &IPtr : Block->instrs()) {
      const Instr *I = IPtr.get();
      if (isa<PhiInstr>(I))
        continue; // Handled above.
      if (++Steps > Opts.MaxSteps) {
        R.Error = "step limit exceeded";
        return Signal::LimitHit;
      }
      if (StepGate.poll(Steps)) {
        R.Error = "interpreter budget exhausted (" + StepGate.reason() + ")";
        return Signal::LimitHit;
      }

      switch (I->kind()) {
      case InstrKind::ConstInt: {
        Value V = Value::makeInt(cast<ConstIntInstr>(I)->value());
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::ConstBool: {
        Value V = Value::makeBool(cast<ConstBoolInstr>(I)->value());
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::ConstString: {
        unsigned Obj = allocString(
            P.strings().str(cast<ConstStringInstr>(I)->value()));
        Value V = Value::makeRef(Obj);
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::ConstNull: {
        Value V = Value::makeNull();
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::Read: {
        Value V;
        if (cast<ReadInstr>(I)->readKind() == ReadKind::Line) {
          std::string Line =
              NextLine < Opts.InputLines.size() ? Opts.InputLines[NextLine]
                                                : std::string();
          ++NextLine;
          V = Value::makeRef(allocString(std::move(Line)));
        } else {
          int64_t N =
              NextInt < Opts.InputInts.size() ? Opts.InputInts[NextInt] : 0;
          ++NextInt;
          V = Value::makeInt(N);
        }
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::Param: {
        unsigned Idx = cast<ParamInstr>(I)->index();
        Value V = Idx < Args.size() ? Args[Idx] : Value::makeNull();
        Value Out = V;
        Out.Inst = note(I, {V.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::Move: {
        Value V = Get(cast<MoveInstr>(I)->src());
        Value Out = V;
        Out.Inst = note(I, {V.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::UnOp: {
        const auto *U = cast<UnOpInstr>(I);
        Value V = Get(U->src());
        Value Out = U->op() == UnOpKind::Neg ? Value::makeInt(-V.I)
                                             : Value::makeBool(!V.I);
        Out.Inst = note(I, {V.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::BinOp: {
        const auto *B = cast<BinOpInstr>(I);
        Value L = Get(B->lhs()), Rv = Get(B->rhs());
        Value Out;
        switch (B->op()) {
        case BinOpKind::Add:
          Out = Value::makeInt(L.I + Rv.I);
          break;
        case BinOpKind::Sub:
          Out = Value::makeInt(L.I - Rv.I);
          break;
        case BinOpKind::Mul:
          Out = Value::makeInt(L.I * Rv.I);
          break;
        case BinOpKind::Div:
          if (Rv.I == 0)
            return fail(I, "division by zero");
          Out = Value::makeInt(L.I / Rv.I);
          break;
        case BinOpKind::Rem:
          if (Rv.I == 0)
            return fail(I, "remainder by zero");
          Out = Value::makeInt(L.I % Rv.I);
          break;
        case BinOpKind::Lt:
          Out = Value::makeBool(L.I < Rv.I);
          break;
        case BinOpKind::Le:
          Out = Value::makeBool(L.I <= Rv.I);
          break;
        case BinOpKind::Gt:
          Out = Value::makeBool(L.I > Rv.I);
          break;
        case BinOpKind::Ge:
          Out = Value::makeBool(L.I >= Rv.I);
          break;
        case BinOpKind::Eq:
        case BinOpKind::Ne: {
          bool Eq;
          if (L.K == Value::Kind::Ref || Rv.K == Value::Kind::Ref ||
              L.isNull() || Rv.isNull())
            Eq = L.K == Rv.K && (L.K != Value::Kind::Ref || L.Ref == Rv.Ref);
          else
            Eq = L.I == Rv.I;
          Out = Value::makeBool(B->op() == BinOpKind::Eq ? Eq : !Eq);
          break;
        }
        }
        Out.Inst = note(I, {L.Inst, Rv.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::StrOp: {
        const auto *SO = cast<StrOpInstr>(I);
        std::vector<Value> Ops;
        std::vector<uint32_t> ValueDeps;
        for (unsigned Idx = 0; Idx != SO->numOperands(); ++Idx) {
          Ops.push_back(Get(SO->operand(Idx)));
          if (SO->operandRole(Idx) == OperandRole::Value)
            ValueDeps.push_back(Ops.back().Inst);
        }
        auto StrOf = [&](unsigned Idx) -> const std::string * {
          if (Ops[Idx].K != Value::Kind::Ref)
            return nullptr;
          return &Heap[Ops[Idx].Ref].Str;
        };
        Value Out;
        switch (SO->op()) {
        case StrOpKind::Concat: {
          // Java renders null operands as "null" in concatenation.
          const std::string *A = StrOf(0), *B = StrOf(1);
          std::string Left = A ? *A : "null";
          std::string Right = B ? *B : "null";
          Out = Value::makeRef(allocString(Left + Right));
          break;
        }
        case StrOpKind::Substring: {
          const std::string *S = StrOf(0);
          if (!S)
            return fail(I, "null string in substring");
          int64_t From = Ops[1].I, To = Ops[2].I;
          if (From < 0 || To < From ||
              To > static_cast<int64_t>(S->size()))
            return fail(I, "substring range out of bounds");
          Out = Value::makeRef(allocString(
              S->substr(static_cast<size_t>(From),
                        static_cast<size_t>(To - From))));
          break;
        }
        case StrOpKind::CharAt: {
          const std::string *S = StrOf(0);
          if (!S)
            return fail(I, "null string in charAt");
          int64_t Idx = Ops[1].I;
          if (Idx < 0 || Idx >= static_cast<int64_t>(S->size()))
            return fail(I, "charAt index out of bounds");
          Out = Value::makeInt(static_cast<unsigned char>((*S)[Idx]));
          break;
        }
        case StrOpKind::IndexOf: {
          const std::string *S = StrOf(0), *N = StrOf(1);
          if (!S || !N)
            return fail(I, "null string in indexOf");
          size_t Pos = S->find(*N);
          Out = Value::makeInt(
              Pos == std::string::npos ? -1 : static_cast<int64_t>(Pos));
          break;
        }
        case StrOpKind::Length: {
          const std::string *S = StrOf(0);
          if (!S)
            return fail(I, "null string in length");
          Out = Value::makeInt(static_cast<int64_t>(S->size()));
          break;
        }
        case StrOpKind::Equals: {
          const std::string *S = StrOf(0), *N = StrOf(1);
          if (!S || !N)
            return fail(I, "null string in equals");
          Out = Value::makeBool(*S == *N);
          break;
        }
        case StrOpKind::FromInt:
          Out = Value::makeRef(allocString(std::to_string(Ops[0].I)));
          break;
        }
        Out.Inst = note(I, std::move(ValueDeps));
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::New: {
        const auto *NI = cast<NewInstr>(I);
        HeapObject O;
        O.Ty = P.types().classType(
            const_cast<ClassDef *>(NI->allocatedClass()));
        O.Class = NI->allocatedClass();
        Heap.push_back(std::move(O));
        Value V = Value::makeRef(static_cast<unsigned>(Heap.size() - 1));
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::NewArray: {
        const auto *NA = cast<NewArrayInstr>(I);
        Value Len = Get(NA->length());
        if (Len.I < 0)
          return fail(I, "negative array length");
        HeapObject O;
        O.Ty = P.types().arrayType(NA->elementType());
        Slot Default;
        if (NA->elementType()->isInt())
          Default.V = Value::makeInt(0);
        else if (NA->elementType()->isBool())
          Default.V = Value::makeBool(false);
        O.Elems.assign(static_cast<size_t>(Len.I), Default);
        Heap.push_back(std::move(O));
        Value V = Value::makeRef(static_cast<unsigned>(Heap.size() - 1));
        V.Inst = note(I, {});
        Regs[I->dest()] = V;
        break;
      }
      case InstrKind::Load: {
        const auto *L = cast<LoadInstr>(I);
        Slot S;
        if (L->isStaticAccess()) {
          S = Statics[L->field()];
        } else {
          Value Base = Get(L->base());
          if (Base.isNull())
            return fail(I, "null dereference reading field '" +
                               P.strings().str(L->field()->name()) + "'");
          S = Heap[Base.Ref].Fields[L->field()];
        }
        Value Out = S.V;
        // Never-written primitive fields read their typed default.
        if (Out.isNull()) {
          if (L->field()->type()->isInt())
            Out = Value::makeInt(0);
          else if (L->field()->type()->isBool())
            Out = Value::makeBool(false);
        }
        Out.Inst = note(I, {S.Writer});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::Store: {
        const auto *St = cast<StoreInstr>(I);
        Value V = Get(St->src());
        uint32_t Writer = note(I, {V.Inst});
        if (St->isStaticAccess()) {
          Statics[St->field()] = {V, Writer};
        } else {
          Value Base = Get(St->base());
          if (Base.isNull())
            return fail(I, "null dereference writing field '" +
                               P.strings().str(St->field()->name()) + "'");
          Heap[Base.Ref].Fields[St->field()] = {V, Writer};
        }
        break;
      }
      case InstrKind::ArrayLoad: {
        const auto *AL = cast<ArrayLoadInstr>(I);
        Value Base = Get(AL->array());
        Value Idx = Get(AL->index());
        if (Base.isNull())
          return fail(I, "null dereference indexing array");
        HeapObject &O = Heap[Base.Ref];
        if (Idx.I < 0 || Idx.I >= static_cast<int64_t>(O.Elems.size()))
          return fail(I, "array index " + std::to_string(Idx.I) +
                             " out of bounds (length " +
                             std::to_string(O.Elems.size()) + ")");
        Slot S = O.Elems[static_cast<size_t>(Idx.I)];
        Value Out = S.V;
        Out.Inst = note(I, {S.Writer});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::ArrayStore: {
        const auto *AS = cast<ArrayStoreInstr>(I);
        Value Base = Get(AS->array());
        Value Idx = Get(AS->index());
        Value V = Get(AS->src());
        if (Base.isNull())
          return fail(I, "null dereference storing into array");
        HeapObject &O = Heap[Base.Ref];
        if (Idx.I < 0 || Idx.I >= static_cast<int64_t>(O.Elems.size()))
          return fail(I, "array index " + std::to_string(Idx.I) +
                             " out of bounds (length " +
                             std::to_string(O.Elems.size()) + ")");
        uint32_t Writer = note(I, {V.Inst});
        O.Elems[static_cast<size_t>(Idx.I)] = {V, Writer};
        break;
      }
      case InstrKind::ArrayLen: {
        const auto *AL = cast<ArrayLenInstr>(I);
        Value Base = Get(AL->array());
        if (Base.isNull())
          return fail(I, "null dereference taking array length");
        Value Out =
            Value::makeInt(static_cast<int64_t>(Heap[Base.Ref].Elems.size()));
        Out.Inst = note(I, {});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::Call: {
        const auto *C = cast<CallInstr>(I);
        const Method *Target = C->target();
        std::vector<Value> CallArgs;
        if (C->hasReceiver()) {
          Value Recv = Get(C->receiver());
          if (Recv.isNull())
            return fail(I, "null receiver calling '" +
                               P.strings().str(Target->name()) + "'");
          if (C->isVirtual()) {
            const HeapObject &O = Heap[Recv.Ref];
            if (!O.Class)
              return fail(I, "method call on non-object value");
            Target = CH.resolveVirtual(O.Class, Target);
            if (!Target)
              return fail(I, "no method target at dispatch");
          }
          CallArgs.push_back(Recv);
        }
        for (unsigned A = 0; A != C->numArgs(); ++A)
          CallArgs.push_back(Get(C->arg(A)));
        Value Ret;
        Signal S = callMethod(C, Target, CallArgs, Ret, Depth);
        if (S != Signal::None)
          return S;
        if (C->dest()) {
          Value Out = Ret;
          Out.Inst = note(I, {Ret.Inst});
          Regs[C->dest()] = Out;
        }
        break;
      }
      case InstrKind::Cast: {
        const auto *C = cast<CastInstr>(I);
        Value V = Get(C->src());
        if (!V.isNull()) {
          const Type *RuntimeTy = Heap[V.Ref].Ty;
          if (!CH.isSubtype(RuntimeTy, C->targetType()))
            return fail(I, "bad cast to " + C->targetType()->str());
        }
        Value Out = V;
        Out.Inst = note(I, {V.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::InstanceOf: {
        const auto *IO = cast<InstanceOfInstr>(I);
        Value V = Get(IO->src());
        bool Is = !V.isNull() &&
                  CH.isSubtype(Heap[V.Ref].Ty, IO->testType());
        Value Out = Value::makeBool(Is);
        Out.Inst = note(I, {V.Inst});
        Regs[I->dest()] = Out;
        break;
      }
      case InstrKind::Print: {
        Value V = Get(cast<PrintInstr>(I)->src());
        note(I, {V.Inst});
        std::string Line = render(V);
        OutputBytes += Line.size() + 1;
        if (OutGate.poll(OutputBytes)) {
          R.Error = "output limit exceeded (" + OutGate.reason() + ")";
          return Signal::LimitHit;
        }
        R.Output.push_back(std::move(Line));
        break;
      }
      case InstrKind::Goto:
        PrevBlock = Block;
        Block = cast<GotoInstr>(I)->target();
        goto NextBlock;
      case InstrKind::Branch: {
        const auto *B = cast<BranchInstr>(I);
        Value V = Get(B->cond());
        note(I, {V.Inst});
        PrevBlock = Block;
        Block = V.I ? B->trueTarget() : B->falseTarget();
        goto NextBlock;
      }
      case InstrKind::Ret: {
        const auto *Ret = cast<RetInstr>(I);
        if (Ret->src()) {
          Value V = Get(Ret->src());
          RetVal = V;
          RetVal.Inst = note(I, {V.Inst});
        } else {
          RetVal = Value::makeNull();
        }
        return Signal::None;
      }
      case InstrKind::Throw: {
        const auto *T = cast<ThrowInstr>(I);
        Value V = Get(T->src());
        note(I, {V.Inst});
        R.Error = "uncaught exception: " + render(V) +
                  (I->loc().isValid()
                       ? " thrown at line " + std::to_string(I->loc().Line)
                       : "");
        R.FailurePoint = I;
        return Signal::Exception;
      }
      case InstrKind::Phi:
        break; // Unreachable; handled at block entry.
      }
    }
    // A well-formed block ends in a terminator, so we only get here
    // via the goto below.
  NextBlock:
    continue;
  }
}

InterpResult tsl::interpret(const Program &P, const InterpOptions &Options) {
  // Module boundary: nothing escapes as a C++ exception. An injected
  // Throw fault (or an internal error) surfaces as a Crashed result
  // the caller can report and recover from.
  try {
    Interp I(P, Options);
    return I.run();
  } catch (const std::exception &E) {
    InterpResult R;
    R.Crashed = true;
    R.Error = std::string("interpreter crashed: ") + E.what();
    return R;
  }
}
