//===-- Interp.h - ThinJ interpreter ----------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for ThinJ programs. It serves three roles:
///
///  1. an execution oracle for the frontend and analysis tests (static
///     points-to must over-approximate observed heap shapes);
///  2. the substrate for dynamic thin slicing (paper Section 7 points
///     out thin slicing applies naturally to dynamic dependences);
///  3. the failure generator for the debugging experiment: workloads
///     run until the injected bug manifests, and the failure point
///     seeds the slicers.
///
/// When tracing is on, every executed instruction becomes an instance
/// recording its dynamic producer dependences: value-role operands'
/// producing instances, plus — for heap reads — the writing store
/// instance of the slot actually read.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_DYN_INTERP_H
#define THINSLICER_DYN_INTERP_H

#include "ir/Instr.h"
#include "ir/Program.h"
#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tsl {

/// Inputs and limits for one interpreter run.
struct InterpOptions {
  std::vector<std::string> InputLines; ///< Consumed by readLine().
  std::vector<int64_t> InputInts;      ///< Consumed by readInt().
  uint64_t MaxSteps = 10'000'000;
  unsigned MaxCallDepth = 2'000;
  /// Total bytes of print output before the run is stopped (a
  /// runaway-loop guard; 0 disables the cap).
  uint64_t MaxOutputBytes = 16u * 1024 * 1024;
  /// Record the dynamic dependence trace (costs memory per step).
  bool TraceDeps = false;
  uint64_t MaxTraceInstances = 4'000'000;
  /// Optional shared analysis budget: adds MaxInterpSteps and the
  /// wall-clock deadline on top of the limits above.
  const AnalysisBudget *Budget = nullptr;
};

/// The dynamic dependence trace of a run.
class DynTrace {
public:
  struct Instance {
    const Instr *I;
    /// Producing instances of the values this instance consumed
    /// (thin/producer dependences only).
    std::vector<uint32_t> ThinDeps;
  };

  static constexpr uint32_t NoInstance = ~0u;

  const std::vector<Instance> &instances() const { return Instances; }

  /// The most recent executed instance of \p I, or -1.
  int64_t lastInstanceOf(const Instr *I) const;

  /// Static statements in the dynamic thin slice of \p InstanceId
  /// (transitive thin dependences, deduplicated).
  std::vector<const Instr *> dynamicThinSlice(uint32_t InstanceId) const;

  /// Dynamic thin slice from the last executed instance of \p Seed;
  /// empty when the seed never ran.
  std::vector<const Instr *> dynamicThinSliceOfLast(const Instr *Seed) const;

  uint32_t addInstance(const Instr *I, std::vector<uint32_t> Deps);

private:
  std::vector<Instance> Instances;
};

/// Outcome of one run.
struct InterpResult {
  /// Output of print statements, one entry per print.
  std::vector<std::string> Output;
  /// Normal completion (false on exception, runtime error, or limits).
  bool Completed = false;
  /// A ThinJ-level `throw` unwound the program.
  bool ThrewException = false;
  /// Runtime error description (null deref, bounds, bad cast, div by
  /// zero, step limit); empty when none.
  std::string Error;
  /// The instruction where the exception/error occurred, if any.
  const Instr *FailurePoint = nullptr;
  /// A resource limit (steps, call depth, output bytes, or budget)
  /// stopped the run — distinguishes limits from program failures.
  bool HitLimit = false;
  /// The interpreter itself died (an exception escaped it — e.g. an
  /// injected Throw fault): no exception crosses the interpret()
  /// boundary, the crash is reported here with Error set. Output and
  /// trace of the aborted run are discarded.
  bool Crashed = false;
  uint64_t Steps = 0;
  /// Present when InterpOptions::TraceDeps was set.
  DynTrace Trace;
};

/// Runs \p P from its main method. \p P must be in SSA form.
InterpResult interpret(const Program &P, const InterpOptions &Options = {});

} // namespace tsl

#endif // THINSLICER_DYN_INTERP_H
