//===-- Session.cpp - Memoized analysis pipeline sessions -----------------------==//

#include "pipeline/Session.h"

#include "ir/ProgramIO.h"
#include "lang/Incremental.h"
#include "pta/Snapshot.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

using namespace tsl;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Runs one stage computation inside the session's failure-isolation
/// harness: a Watchdog enforces the budget's wall-clock deadline
/// preemptively, and an exception escaping the stage (injected Throw
/// fault, internal error) is caught at this boundary and retried up to
/// a small bound with backoff — a transient fault disarms when it
/// fires, so the retry runs clean. Returns nullopt (with \p Err set)
/// when every attempt failed; \p FaultFired reports whether an armed
/// fault fired during the *successful* attempt, which is what marks
/// the produced artifact tainted.
template <typename Fn>
auto computeStage(const char *Stage, const AnalysisBudget *B, Status &Err,
                  uint64_t &Failures, uint64_t &Retries, bool &FaultFired,
                  Fn &&Compute) -> std::optional<decltype(Compute())> {
  constexpr int MaxAttempts = 3;
  for (int Attempt = 1;; ++Attempt) {
    uint64_t FiredBefore = FaultInjector::instance().firedCount();
    try {
      Watchdog WD(B);
      auto R = Compute();
      Err = Status::ok();
      FaultFired =
          FaultInjector::instance().firedCount() != FiredBefore;
      return R;
    } catch (const FaultInjectedError &E) {
      Err = Status(StatusCode::FaultInjected,
                   std::string(Stage) + ": " + E.what());
    } catch (const std::exception &E) {
      Err = Status(StatusCode::Internal,
                   std::string(Stage) + ": " + E.what());
    } catch (...) {
      Err = Status(StatusCode::Internal,
                   std::string(Stage) + ": unknown exception");
    }
    if (Attempt == MaxAttempts) {
      ++Failures;
      FaultFired = true;
      return std::nullopt;
    }
    ++Retries;
    // Tiny exponential backoff: enough for a transient cause to
    // clear, short enough to stay interactive.
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << (Attempt - 1)));
  }
}

/// 64-bit digest over the source text: the cheap, stable identity
/// every cache key is prefixed with. FNV-1a mixing applied to
/// little-endian 8-byte blocks (byte-wise tail) rather than single
/// bytes: the classic form is one serially-dependent multiply per
/// byte, which on ~100KB sources was a measurable slice of the
/// warm-start constructor.
uint64_t fnv1a(const std::string &S) {
  const unsigned char *P = reinterpret_cast<const unsigned char *>(S.data());
  std::size_t N = S.size();
  uint64_t H = 1469598103934665603ull;
  for (; N >= 8; P += 8, N -= 8) {
    uint64_t W = 0;
    for (int I = 0; I != 8; ++I)
      W |= static_cast<uint64_t>(P[I]) << (8 * I);
    H ^= W;
    H *= 1099511628211ull;
  }
  for (std::size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Option fingerprints. Budget pointers are deliberately excluded:
/// the session threads its own budget in at compute time and treats
/// budget changes as destructive invalidations instead.
std::string digest(const CompileOptions &O) {
  std::string D = "ssa=";
  D += O.BuildSSA ? '1' : '0';
  D += ";main=";
  D += O.RequireMain ? '1' : '0';
  return D;
}

// ParallelFrontier is part of the PTA digest — its round-granularity
// visit order assigns different (equivalent) object/context ids than
// the per-pop loop, so the two modes are distinct artifacts. The Pool
// pointer and the session thread count are NOT digested: pool size
// never changes any artifact's bytes.
std::string digest(const PTAOptions &O) {
  std::ostringstream OS;
  OS << "objsens=" << O.ObjSensContainers << ";depth=" << O.MaxObjSensDepth
     << ";delta=" << O.DeltaPropagation << ";cyc=" << O.CycleElimination
     << ";policy=" << static_cast<unsigned>(O.Policy)
     << ";pf=" << O.ParallelFrontier << ";containers=";
  for (const std::string &C : O.ContainerClasses)
    OS << C << ',';
  return OS.str();
}

std::string digest(const SDGOptions &O) {
  std::string D = "cs=";
  D += O.ContextSensitive ? '1' : '0';
  D += ";unreach=";
  D += O.IncludeUnreachable ? '1' : '0';
  return D;
}

} // namespace

const char *tsl::sessionStageName(SessionStage S) {
  switch (S) {
  case SessionStage::Compile:
    return "compile";
  case SessionStage::PTA:
    return "pta";
  case SessionStage::ModRef:
    return "modref";
  case SessionStage::SDGBuild:
    return "sdg";
  case SessionStage::Engine:
    return "engine";
  case SessionStage::Slice:
    return "slice";
  }
  return "?";
}

AnalysisSession::AnalysisSession()
    : Diag(std::make_unique<DiagnosticEngine>()) {}

AnalysisSession::AnalysisSession(std::string Source, CompileOptions CO)
    : AnalysisSession() {
  CurCompile = CO;
  setSource(std::move(Source));
}

AnalysisSession::~AnalysisSession() = default;

unsigned AnalysisSession::threadsResolved() const {
  if (Threads)
    return Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool *AnalysisSession::pool() {
  unsigned N = threadsResolved();
  if (N <= 1)
    return nullptr;
  if (Pools.empty() || Pools.back()->concurrency() != N)
    Pools.push_back(std::make_unique<ThreadPool>(N));
  return Pools.back().get();
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

void AnalysisSession::bumpFrom(SessionStage S) {
  for (unsigned I = static_cast<unsigned>(S); I != NumSessionStages; ++I)
    ++Epochs[I];
}

void AnalysisSession::purgeAnalyses() {
  counters(SessionStage::Slice).Invalidated += SliceCache.size();
  counters(SessionStage::Engine).Invalidated += EngineCache.size();
  counters(SessionStage::SDGBuild).Invalidated += SdgCache.size();
  counters(SessionStage::ModRef).Invalidated += ModRefCache.size();
  counters(SessionStage::PTA).Invalidated += PtaCache.size();
  // Bottom-up: engines reference SDGs, mod-ref references PTA.
  SliceCache.clear();
  EngineCache.clear();
  SdgCache.clear();
  ModRefCache.clear();
  PtaCache.clear();
  TaintedPta.clear();
  TaintedModRef.clear();
  TaintedSdg.clear();
  TaintedSlices.clear();
  PendingPtaBytes.clear();
  PendingMrBytes.clear();
  PendingLayerKey.clear();
  // No artifact holds retired-body pointers anymore.
  RetiredBodyStore.clear();
}

//===----------------------------------------------------------------------===//
// Tainted-artifact eviction (retry-on-next-request)
//===----------------------------------------------------------------------===//

void AnalysisSession::evictSdgCone(const std::string &Key) {
  for (auto It = SliceCache.begin(); It != SliceCache.end();) {
    if (std::get<0>(It->first) == Key) {
      ++counters(SessionStage::Slice).Invalidated;
      TaintedSlices.erase(It->first);
      It = SliceCache.erase(It);
    } else {
      ++It;
    }
  }
  counters(SessionStage::Engine).Invalidated += EngineCache.erase(Key);
  counters(SessionStage::SDGBuild).Invalidated += SdgCache.erase(Key);
  TaintedSdg.erase(Key);
  // Summaries are keyed by SDG identity; a recomputed graph may reuse
  // the evicted one's address, so drop them wholesale. Only runs on
  // fault-tainted paths — the clean hot path never gets here.
  Summaries.clear();
}

void AnalysisSession::evictModRefEntry(const std::string &Key) {
  // Context-sensitive SDGs hold references into the mod-ref artifact:
  // every SDG of this PTA cone goes too.
  for (auto It = SdgCache.begin(); It != SdgCache.end();) {
    if (It->first.compare(0, Key.size(), Key) == 0) {
      std::string SdgK = It->first;
      ++It;
      evictSdgCone(SdgK);
    } else {
      ++It;
    }
  }
  counters(SessionStage::ModRef).Invalidated += ModRefCache.erase(Key);
  TaintedModRef.erase(Key);
}

void AnalysisSession::evictPtaCone(const std::string &Key) {
  evictModRefEntry(Key);
  counters(SessionStage::PTA).Invalidated += PtaCache.erase(Key);
  TaintedPta.erase(Key);
}

void AnalysisSession::healTainted() {
  // Bottom-up over the cones; each evict erases its own taint mark,
  // so the loops drain.
  while (!TaintedPta.empty())
    evictPtaCone(*TaintedPta.begin());
  while (!TaintedModRef.empty())
    evictModRefEntry(*TaintedModRef.begin());
  while (!TaintedSdg.empty())
    evictSdgCone(*TaintedSdg.begin());
  if (!TaintedSlices.empty()) {
    for (const SliceKey &K : TaintedSlices)
      if (SliceCache.erase(K))
        ++counters(SessionStage::Slice).Invalidated;
    TaintedSlices.clear();
    // Summaries may embed the same fault: they go too.
    Summaries.clear();
  }
}

/// RAII re-entrancy guard on the public accessors: fault-tainted
/// artifacts heal exactly once, when the OUTERMOST accessor of a
/// request enters — before any raw artifact pointer is handed out.
/// An eviction from a nested call would free memory the outer frames
/// of the same request still dereference (use-after-free caught by
/// the ASan chaos run). Artifacts tainted DURING the request stay
/// served until its end — downstream artifacts hold references into
/// them — and heal at the next request.
struct AnalysisSession::RequestScope {
  explicit RequestScope(AnalysisSession &S) : S(S) {
    if (S.RequestDepth++ == 0)
      S.healTainted();
  }
  ~RequestScope() { --S.RequestDepth; }
  AnalysisSession &S;
};

void AnalysisSession::purgeAll() {
  purgeAnalyses();
  if (CompileAttempted)
    ++counters(SessionStage::Compile).Invalidated;
  Prog.reset();
  CompileAttempted = false;
}

void AnalysisSession::setSource(std::string NewSource) {
  if (IncrementalEnabled && trySetSourceIncremental(NewSource))
    return;
  Source = std::move(NewSource);
  SourceDigest = fnv1a(Source);
  purgeAll();
  bumpFrom(SessionStage::Compile);
}

bool AnalysisSession::trySetSourceIncremental(const std::string &NewSource) {
  ++IncStats.Attempts;
  auto Cold = [&](std::string Why) {
    ++IncStats.ColdFallbacks;
    IncStats.LastFallbackReason = std::move(Why);
    return false;
  };
  if (!Prog || !CompileAttempted)
    return Cold("no compiled program to update");
  if (Budget)
    return Cold("budgeted session");
  if (!CurCompile.BuildSSA)
    return Cold("incremental path requires SSA compiles");

  SourceDiff D = diffThinJSource(Source, NewSource, &IncScanCache);
  if (!D.Eligible)
    return Cold(D.Reason);

  auto T0 = std::chrono::steady_clock::now();
  StageCounters &CC = counters(SessionStage::Compile);
  IncrementalCompileResult CR = applyIncrementalCompile(*Prog, D, CurCompile);
  if (!CR.Applied)
    // A mid-apply failure (CR.RetiredBodies non-empty) left the
    // program mutated; the cold path's purge discards it.
    return Cold(CR.Reason);
  ++CC.Misses;
  CC.Seconds += secondsSince(T0);
  ++IncStats.Applied;
  IncStats.FunctionsRecompiled += CR.DirtyMethods.size();
  IncStats.FunctionsReused +=
      D.TotalFunctions - std::min<std::size_t>(D.TotalFunctions,
                                               CR.DirtyMethods.size());

  // Keys straddle the digest change: extract under the old, re-insert
  // under the new.
  const std::string OldPtaKey = ptaKey();
  const std::string OldSdgKey = sdgKey();
  Source = NewSource;
  SourceDigest = fnv1a(Source);
  const std::string NewPtaKey = ptaKey();
  const std::string NewSdgKey = sdgKey();

  // Keep the dead IR alive: retained artifacts still reference the
  // retired instructions (the PTA object table's allocation sites) as
  // never-dereferenced keys. Enumerate the dead key sets first.
  const std::size_t FirstRetired = RetiredBodyStore.size();
  for (auto &B : CR.RetiredBodies)
    RetiredBodyStore.push_back(std::move(B));
  PTAUpdateRequest Req;
  Req.DirtyMethods = CR.DirtyMethods;
  for (std::size_t I = FirstRetired; I != RetiredBodyStore.size(); ++I) {
    const Method::DetachedBody &B = RetiredBodyStore[I];
    for (const auto &BB : B.Blocks)
      for (const auto &In : BB->instrs())
        Req.DeadInstrs.insert(In.get());
    for (const auto &L : B.Locals)
      Req.DeadLocals.insert(L.get());
  }

  // Extract the current-option artifacts (tainted ones stay behind
  // and die with the purge below — carrying a fault-tainted artifact
  // through an in-place update would lose the heal-on-next-request
  // guarantee).
  std::unique_ptr<PointsToResult> Pta;
  std::unique_ptr<ModRefResult> MR;
  std::unique_ptr<SDG> Graph;
  if (auto It = PtaCache.find(OldPtaKey);
      It != PtaCache.end() && !TaintedPta.count(OldPtaKey)) {
    Pta = std::move(It->second);
    PtaCache.erase(It);
  }
  if (auto It = ModRefCache.find(OldPtaKey);
      It != ModRefCache.end() && !TaintedModRef.count(OldPtaKey)) {
    MR = std::move(It->second);
    ModRefCache.erase(It);
  }
  if (auto It = SdgCache.find(OldSdgKey);
      It != SdgCache.end() && !TaintedSdg.count(OldSdgKey)) {
    Graph = std::move(It->second);
    SdgCache.erase(It);
  }

  // Everything else — other option variants, engines, slices,
  // summaries — is stale against the new source.
  counters(SessionStage::Slice).Invalidated += SliceCache.size();
  SliceCache.clear();
  TaintedSlices.clear();
  counters(SessionStage::Engine).Invalidated += EngineCache.size();
  EngineCache.clear();
  counters(SessionStage::SDGBuild).Invalidated += SdgCache.size();
  SdgCache.clear();
  TaintedSdg.clear();
  counters(SessionStage::ModRef).Invalidated += ModRefCache.size();
  ModRefCache.clear();
  TaintedModRef.clear();
  counters(SessionStage::PTA).Invalidated += PtaCache.size();
  PtaCache.clear();
  TaintedPta.clear();
  Summaries.clear();

  // Stage updates, each with transparent per-stage cold fallback: a
  // declined/faulted update drops that artifact and its dependents,
  // and the next accessor recomputes them cold. No-edit reloads
  // (zero dirty bodies) re-key everything verbatim.
  const bool NeedUpdates = !CR.DirtyMethods.empty();
  std::vector<Method *> Affected;
  PointsToResult *LivePta = nullptr;
  auto StageFallback = [&](const char *Stage, const std::string &Why,
                           SessionStage S) {
    ++IncStats.StageFallbacks;
    IncStats.LastFallbackReason = std::string(Stage) + ": " + Why;
    ++counters(S).Invalidated;
  };
  // Deferred snapshot payloads carry across a no-edit reload by
  // re-keying (their facts are unchanged); a real edit cannot patch
  // serialized bytes, so they drop and the next accessor rebuilds
  // cold — the same outcome as a decoded snapshot layer declining
  // its in-place update.
  if (PendingLayerKey == OldPtaKey &&
      (!PendingPtaBytes.empty() || !PendingMrBytes.empty())) {
    if (!NeedUpdates) {
      PendingLayerKey = NewPtaKey;
    } else {
      PendingPtaBytes.clear();
      PendingMrBytes.clear();
      PendingLayerKey.clear();
      StageFallback("pta", "snapshot layer predates the edit",
                    SessionStage::PTA);
    }
  }
  if (Pta) {
    bool Keep = true;
    if (NeedUpdates) {
      StageCounters &PC = counters(SessionStage::PTA);
      auto TP = std::chrono::steady_clock::now();
      try {
        PTAUpdateResult U = Pta->applyIncrementalUpdate(Req);
        PC.Seconds += secondsSince(TP);
        if (U.Applied) {
          Affected = std::move(U.AffectedMethods);
        } else {
          StageFallback("pta", U.Reason, SessionStage::PTA);
          Keep = false;
        }
      } catch (const std::exception &E) {
        PC.Seconds += secondsSince(TP);
        StageFallback("pta", E.what(), SessionStage::PTA);
        Keep = false;
      }
    }
    if (Keep) {
      ++IncStats.PtaUpdates;
      ++counters(SessionStage::PTA).Hits;
      LivePta = Pta.get();
      PtaCache.emplace(NewPtaKey, std::move(Pta));
    } else {
      Pta.reset();
    }
  }
  if (MR) {
    bool Keep = LivePta != nullptr; // Mod-ref references the PTA result.
    if (!Keep) {
      ++counters(SessionStage::ModRef).Invalidated;
    } else if (NeedUpdates) {
      StageCounters &MC = counters(SessionStage::ModRef);
      auto TM = std::chrono::steady_clock::now();
      try {
        if (!MR->updateIncremental(Affected)) {
          StageFallback("modref", "update declined", SessionStage::ModRef);
          Keep = false;
        }
        MC.Seconds += secondsSince(TM);
      } catch (const std::exception &E) {
        MC.Seconds += secondsSince(TM);
        StageFallback("modref", E.what(), SessionStage::ModRef);
        Keep = false;
      }
    }
    if (Keep) {
      ++IncStats.ModRefUpdates;
      ++counters(SessionStage::ModRef).Hits;
      ModRefCache.emplace(NewPtaKey, std::move(MR));
    } else {
      MR.reset();
    }
  }
  if (Graph) {
    // A context-sensitive graph references the mod-ref artifact and
    // the patcher only supports the context-insensitive form; it
    // rebuilds cold. Same for any dependency that fell back above.
    bool Keep = LivePta && !CurSdg.ContextSensitive &&
                (!CurSdg.ContextSensitive || ModRefCache.count(NewPtaKey));
    if (!Keep) {
      StageFallback("sdg",
                    CurSdg.ContextSensitive ? "context-sensitive graph"
                                            : "points-to fell back cold",
                    SessionStage::SDGBuild);
    } else if (NeedUpdates) {
      StageCounters &SC = counters(SessionStage::SDGBuild);
      auto TS = std::chrono::steady_clock::now();
      try {
        SDGPatchRequest SReq;
        SReq.AffectedMethods = Affected;
        SReq.DeadInstrs = Req.DeadInstrs;
        SDGOptions Opts = CurSdg;
        Opts.Budget = nullptr;
        Opts.Pool = nullptr;
        if (!patchSDGIncremental(*Graph, *LivePta, SReq, Opts)) {
          StageFallback("sdg", "patch declined", SessionStage::SDGBuild);
          Keep = false;
        }
        SC.Seconds += secondsSince(TS);
      } catch (const std::exception &E) {
        SC.Seconds += secondsSince(TS);
        StageFallback("sdg", E.what(), SessionStage::SDGBuild);
        Keep = false;
      }
    }
    if (Keep) {
      ++IncStats.SdgPatches;
      ++counters(SessionStage::SDGBuild).Hits;
      SdgCache.emplace(NewSdgKey, std::move(Graph));
    } else {
      Graph.reset();
    }
  }

  bumpFrom(SessionStage::Compile);
  return true;
}

void AnalysisSession::setCompileOptions(const CompileOptions &O) {
  if (digest(O) == digest(CurCompile))
    return;
  CurCompile = O;
  purgeAll();
  bumpFrom(SessionStage::Compile);
}

void AnalysisSession::setPTAOptions(const PTAOptions &O) {
  if (digest(O) == digest(CurPta))
    return;
  CurPta = O;
  bumpFrom(SessionStage::PTA);
}

void AnalysisSession::setSDGOptions(const SDGOptions &O) {
  if (digest(O) == digest(CurSdg))
    return;
  CurSdg = O;
  bumpFrom(SessionStage::SDGBuild);
}

void AnalysisSession::setBudget(const AnalysisBudget *B) {
  if (B == Budget)
    return;
  Budget = B;
  purgeAnalyses();
  bumpFrom(SessionStage::PTA);
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

std::string AnalysisSession::ptaKey() const {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%016llx|",
           static_cast<unsigned long long>(SourceDigest));
  return Buf + digest(CurPta);
}

std::string AnalysisSession::sdgKey() const {
  return ptaKey() + "|" + digest(CurSdg);
}

std::string AnalysisSession::snapshotCacheKey() const {
  const uint64_t OptDigest =
      fnv1a(digest(CurCompile) + "|" + digest(CurPta) + "|" + digest(CurSdg) +
            "|v" + std::to_string(TSL_SNAPSHOT_VERSION));
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%016llx-%016llx.tslsnap",
           static_cast<unsigned long long>(SourceDigest),
           static_cast<unsigned long long>(OptDigest));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Persistent snapshots
//===----------------------------------------------------------------------===//

Status AnalysisSession::saveSnapshot(const std::string &Path) {
  if (Budget)
    return Status(StatusCode::ResourceExhausted,
                  "snapshot: budgeted sessions are not serializable");
  Program *P = program();
  if (!P)
    return LastErr;
  PointsToResult *PTA = pointsTo();
  ModRefResult *MR = PTA ? modRef() : nullptr;
  SDG *G = MR ? sdg() : nullptr;
  if (!PTA || !MR || !G)
    return LastErr;
  // Degraded facts embed a budget/fault outcome a warm start could
  // not attribute; decline rather than persist them.
  for (const StageReport *Rep :
       {&PTA->report(), &MR->report(), &G->report()})
    if (Rep->Status != StageStatus::Complete)
      return Status(StatusCode::ResourceExhausted,
                    "snapshot: degraded " + Rep->Stage +
                        " artifact is not serializable");

  ByteWriter W;
  W.u32(TSL_SNAPSHOT_MAGIC);
  W.u32(TSL_SNAPSHOT_VERSION);
  W.beginSection(SnapshotSection::Meta);
  W.u64(SourceDigest);
  W.str(digest(CurCompile));
  W.str(digest(CurPta));
  W.str(digest(CurSdg));
  W.endSection();
  W.beginSection(SnapshotSection::Program);
  encodeProgram(*P, W);
  W.endSection();
  W.beginSection(SnapshotSection::Pta);
  encodePointsTo(*PTA, *P, W);
  W.endSection();
  W.beginSection(SnapshotSection::ModRef);
  MR->encode(W);
  W.endSection();
  W.beginSection(SnapshotSection::Sdg);
  G->encode(W);
  W.endSection();

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (Out)
    Out.write(reinterpret_cast<const char *>(W.buffer().data()),
              static_cast<std::streamsize>(W.size()));
  if (!Out || !Out.flush())
    return Status(StatusCode::Internal, "snapshot: cannot write " + Path);
  ++SnapStats.Saves;
  return Status::ok();
}

Status AnalysisSession::loadSnapshot(const std::string &Path) {
  auto Fallback = [&](StatusCode Code, std::string Why) {
    ++SnapStats.Fallbacks;
    SnapStats.LastFallbackReason = std::move(Why);
    return Status(Code, "snapshot: " + SnapStats.LastFallbackReason +
                            " (cold rebuild)");
  };

  // One bulk read sized by the file, not an istreambuf byte pump:
  // warm-start latency is the product being sold here.
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In)
    return Fallback(StatusCode::NotFound, "cannot read " + Path);
  const std::streamoff Size = In.tellg();
  if (Size < 0)
    return Fallback(StatusCode::NotFound, "cannot read " + Path);
  std::vector<uint8_t> Bytes(static_cast<std::size_t>(Size));
  In.seekg(0);
  if (Size && !In.read(reinterpret_cast<char *>(Bytes.data()), Size))
    return Fallback(StatusCode::NotFound, "cannot read " + Path);

  try {
    // Chaos fault point: an armed "snapshot.load" degrades (decline)
    // or throws (caught below) — either way the session stays intact
    // and the caller rebuilds cold.
    BudgetGate Gate(nullptr, "snapshot.load", 0);
    if (Gate.spend())
      return Fallback(StatusCode::FaultInjected,
                      "injected fault at snapshot.load");

    ByteReader R(Bytes);
    if (R.u32() != TSL_SNAPSHOT_MAGIC)
      return Fallback(StatusCode::InvalidArgument, "not a snapshot file");
    const uint32_t Version = R.u32();
    if (Version != TSL_SNAPSHOT_VERSION)
      return Fallback(StatusCode::InvalidArgument,
                      "format version " + std::to_string(Version) +
                          " != " + std::to_string(TSL_SNAPSHOT_VERSION));

    ByteReader Meta = R.section(SnapshotSection::Meta);
    if (Meta.u64() != SourceDigest)
      return Fallback(StatusCode::InvalidArgument, "source digest mismatch");
    if (Meta.str() != digest(CurCompile) || Meta.str() != digest(CurPta) ||
        Meta.str() != digest(CurSdg))
      return Fallback(StatusCode::InvalidArgument, "option digest mismatch");

    // Decode the program and SDG into temporaries; the session is
    // only touched after they validated. The points-to and mod-ref
    // sections are framed and CRC-checked here too, but their
    // payloads are stashed undecoded: the first slice query after a
    // warm start runs on the SDG alone, so deferring the other two
    // layers takes their decode off the load-to-slice path.
    // pointsTo()/modRef() materialize them on demand and rebuild
    // cold if a payload is structurally malformed.
    ByteReader ProgR = R.section(SnapshotSection::Program);
    std::unique_ptr<Program> NewProg = decodeProgram(ProgR);
    ByteReader PtaR = R.section(SnapshotSection::Pta);
    std::vector<uint8_t> PtaBytes = PtaR.take();
    ByteReader MrR = R.section(SnapshotSection::ModRef);
    std::vector<uint8_t> MrBytes = MrR.take();
    ByteReader SdgR = R.section(SnapshotSection::Sdg);
    std::unique_ptr<SDG> NewSdg = SDG::decode(SdgR, *NewProg);
    if (!R.atEnd())
      throw SerializeError("trailing bytes after last section");

    purgeAll();
    Diag = std::make_unique<DiagnosticEngine>();
    Prog = std::move(NewProg);
    CompileAttempted = true;
    SdgCache.emplace(sdgKey(), std::move(NewSdg));
    PendingPtaBytes = std::move(PtaBytes);
    PendingMrBytes = std::move(MrBytes);
    PendingLayerKey = ptaKey();
    bumpFrom(SessionStage::Compile);
    ++SnapStats.Loads;
    LastErr = Status::ok();
    return Status::ok();
  } catch (const FaultInjectedError &E) {
    return Fallback(StatusCode::FaultInjected, E.what());
  } catch (const std::exception &E) {
    return Fallback(StatusCode::InvalidArgument, E.what());
  }
}

bool AnalysisSession::tryLoadFromCacheDir() {
  if (CacheDir.empty())
    return false;
  namespace fs = std::filesystem;
  std::error_code EC;
  const fs::path File = fs::path(CacheDir) / snapshotCacheKey();
  if (!fs::exists(File, EC) || EC) {
    ++SnapStats.CacheMisses;
    return false;
  }
  ++SnapStats.CacheHits;
  return loadSnapshot(File.string()).isOk();
}

Status AnalysisSession::saveToCacheDir() {
  if (CacheDir.empty())
    return Status::ok();
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(CacheDir, EC);
  Status S = saveSnapshot((fs::path(CacheDir) / snapshotCacheKey()).string());
  if (!S.isOk())
    return S;
  // LRU retention: keep the newest MaxCacheDirEntries snapshots.
  std::vector<std::pair<fs::file_time_type, fs::path>> Entries;
  for (const auto &E : fs::directory_iterator(CacheDir, EC)) {
    if (E.path().extension() != ".tslsnap")
      continue;
    std::error_code TimeEC;
    auto T = fs::last_write_time(E.path(), TimeEC);
    if (!TimeEC)
      Entries.emplace_back(T, E.path());
  }
  std::sort(Entries.begin(), Entries.end());
  for (std::size_t I = 0;
       I + MaxCacheDirEntries < Entries.size(); ++I)
    if (fs::remove(Entries[I].second, EC))
      ++SnapStats.CacheEvictions;
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Artifacts
//===----------------------------------------------------------------------===//

Program *AnalysisSession::program() {
  RequestScope Scope(*this);
  StageCounters &C = counters(SessionStage::Compile);
  if (CompileAttempted) {
    ++C.Hits;
    if (!Prog && LastErr.isOk())
      LastErr = Status(StatusCode::ParseError, "source does not compile");
    return Prog.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  Diag = std::make_unique<DiagnosticEngine>();
  Expected<std::unique_ptr<Program>> R =
      compileThinJChecked(Source, *Diag, CurCompile);
  if (R.ok()) {
    Prog = std::move(*R);
    LastErr = Status::ok();
  } else {
    Prog = nullptr;
    LastErr = R.status();
  }
  CompileAttempted = true;
  C.Seconds += secondsSince(T0);
  return Prog.get();
}

PointsToResult *AnalysisSession::pointsTo() {
  RequestScope Scope(*this);
  Program *P = program();
  if (!P)
    return nullptr;
  StageCounters &C = counters(SessionStage::PTA);
  std::string Key = ptaKey();
  auto It = PtaCache.find(Key);
  if (It != PtaCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  // Deferred snapshot layer: CRC-verified at load, decoded only now
  // that a query needs points-to facts. Counted as a hit — the warm
  // start provided the artifact; this is just when it materializes.
  if (!PendingPtaBytes.empty() && PendingLayerKey == Key) {
    std::vector<uint8_t> Bytes = std::move(PendingPtaBytes);
    PendingPtaBytes.clear();
    try {
      ByteReader Rd(Bytes);
      std::unique_ptr<PointsToResult> Dec = decodePointsTo(Rd, *P);
      if (!Rd.atEnd())
        throw SerializeError("trailing bytes in points-to section");
      ++C.Hits;
      return PtaCache.emplace(Key, std::move(Dec)).first->second.get();
    } catch (const std::exception &E) {
      ++SnapStats.Fallbacks;
      SnapStats.LastFallbackReason =
          std::string("deferred points-to decode: ") + E.what();
    }
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  PTAOptions Opts = CurPta;
  Opts.Budget = Budget;
  Opts.Pool = pool();
  bool Tainted = false;
  auto R = computeStage("pta", Budget, LastErr, StageFailures, StageRetries,
                        Tainted, [&] { return runPointsTo(*P, Opts); });
  C.Seconds += secondsSince(T0);
  if (!R)
    return nullptr; // Failure recorded in lastError(); nothing cached.
  PointsToResult *Out =
      PtaCache.emplace(Key, std::move(*R)).first->second.get();
  if (Tainted)
    TaintedPta.insert(Key);
  return Out;
}

ModRefResult *AnalysisSession::modRef() {
  RequestScope Scope(*this);
  PointsToResult *PTA = pointsTo();
  if (!PTA)
    return nullptr;
  StageCounters &C = counters(SessionStage::ModRef);
  std::string Key = ptaKey();
  auto It = ModRefCache.find(Key);
  if (It != ModRefCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  // Deferred snapshot layer, same contract as the points-to one.
  if (!PendingMrBytes.empty() && PendingLayerKey == Key) {
    std::vector<uint8_t> Bytes = std::move(PendingMrBytes);
    PendingMrBytes.clear();
    try {
      ByteReader Rd(Bytes);
      std::unique_ptr<ModRefResult> Dec =
          ModRefResult::decode(Rd, *Prog, *PTA);
      if (!Rd.atEnd())
        throw SerializeError("trailing bytes in mod-ref section");
      ++C.Hits;
      return ModRefCache.emplace(Key, std::move(Dec)).first->second.get();
    } catch (const std::exception &E) {
      ++SnapStats.Fallbacks;
      SnapStats.LastFallbackReason =
          std::string("deferred mod-ref decode: ") + E.what();
    }
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  bool Tainted = false;
  auto R = computeStage("modref", Budget, LastErr, StageFailures,
                        StageRetries, Tainted, [&] {
                          return std::make_unique<ModRefResult>(
                              *Prog, *PTA, Budget, pool());
                        });
  C.Seconds += secondsSince(T0);
  if (!R)
    return nullptr;
  ModRefResult *Out =
      ModRefCache.emplace(Key, std::move(*R)).first->second.get();
  if (Tainted)
    TaintedModRef.insert(Key);
  return Out;
}

SDG *AnalysisSession::sdg() {
  RequestScope Scope(*this);
  // Cache first, upstream second: a cached graph (in particular a
  // warm-started one) answers without forcing the points-to layer
  // to materialize.
  if (!program())
    return nullptr;
  StageCounters &C = counters(SessionStage::SDGBuild);
  std::string Key = sdgKey();
  auto It = SdgCache.find(Key);
  if (It != SdgCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  PointsToResult *PTA = pointsTo();
  if (!PTA)
    return nullptr;
  // The context-sensitive representation needs mod-ref; computing it
  // through the session keeps it cached for the next CS graph of the
  // same PTA cone.
  ModRefResult *MR = CurSdg.ContextSensitive ? modRef() : nullptr;
  if (CurSdg.ContextSensitive && !MR)
    return nullptr; // Mod-ref failed; lastError() explains.
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  SDGOptions Opts = CurSdg;
  Opts.Budget = Budget;
  Opts.Pool = pool();
  bool Tainted = false;
  auto R = computeStage("sdg", Budget, LastErr, StageFailures, StageRetries,
                        Tainted, [&] { return buildSDG(*Prog, *PTA, MR, Opts); });
  C.Seconds += secondsSince(T0);
  if (!R)
    return nullptr;
  SDG *Out = SdgCache.emplace(Key, std::move(*R)).first->second.get();
  if (Tainted)
    TaintedSdg.insert(Key);
  return Out;
}

SliceEngine *AnalysisSession::engine() {
  RequestScope Scope(*this);
  SDG *G = sdg();
  if (!G)
    return nullptr;
  StageCounters &C = counters(SessionStage::Engine);
  auto It = EngineCache.find(sdgKey());
  if (It != EngineCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  bool Tainted = false;
  auto R = computeStage("engine", Budget, LastErr, StageFailures,
                        StageRetries, Tainted,
                        [&] { return std::make_unique<SliceEngine>(*G, pool()); });
  C.Seconds += secondsSince(T0);
  if (!R)
    return nullptr;
  // Engine construction has no fault points — no taint tracking here.
  return EngineCache.emplace(sdgKey(), std::move(*R)).first->second.get();
}

const SliceResult *AnalysisSession::sliceBackwardCached(const Instr *Seed,
                                                        SliceMode Mode) {
  if (!Seed) {
    LastErr = Status(StatusCode::InvalidArgument, "null slice seed");
    return nullptr;
  }
  RequestScope Scope(*this);
  SliceEngine *E = engine();
  if (!E)
    return nullptr;
  StageCounters &C = counters(SessionStage::Slice);
  SliceKey Key{sdgKey(), Seed, Mode};
  auto It = SliceCache.find(Key);
  if (It != SliceCache.end()) {
    ++C.Hits;
    return &It->second;
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  BatchOptions BO;
  BO.Mode = Mode;
  BO.ContextSensitive = CurSdg.ContextSensitive;
  BO.Jobs = threadsResolved();
  BO.Budget = Budget;
  BO.Summaries = CurSdg.ContextSensitive ? &Summaries : nullptr;
  bool Tainted = false;
  auto R = computeStage("slice", Budget, LastErr, StageFailures, StageRetries,
                        Tainted,
                        [&] { return E->sliceBackwardBatch({Seed}, BO).front(); });
  C.Seconds += secondsSince(T0);
  if (!R)
    return nullptr;
  const SliceResult *Out =
      &SliceCache.emplace(Key, std::move(*R)).first->second;
  if (Tainted)
    TaintedSlices.insert(Key);
  return Out;
}

//===----------------------------------------------------------------------===//
// Status-returning boundary accessors
//===----------------------------------------------------------------------===//

namespace {

/// Null artifact -> the session's recorded Status (never Ok: fall back
/// to a generic Internal if a path forgot to record one).
Status errorOr(const Status &Err, const char *What) {
  if (!Err.isOk())
    return Err;
  return Status(StatusCode::Internal, std::string(What) + " unavailable");
}

} // namespace

Expected<Program *> AnalysisSession::programChecked() {
  if (Program *P = program())
    return P;
  return errorOr(LastErr, "program");
}

Expected<PointsToResult *> AnalysisSession::pointsToChecked() {
  if (PointsToResult *R = pointsTo())
    return R;
  return errorOr(LastErr, "points-to");
}

Expected<ModRefResult *> AnalysisSession::modRefChecked() {
  if (ModRefResult *R = modRef())
    return R;
  return errorOr(LastErr, "mod-ref");
}

Expected<SDG *> AnalysisSession::sdgChecked() {
  if (SDG *G = sdg())
    return G;
  return errorOr(LastErr, "sdg");
}

Expected<SliceEngine *> AnalysisSession::engineChecked() {
  if (SliceEngine *E = engine())
    return E;
  return errorOr(LastErr, "engine");
}

Expected<const SliceResult *>
AnalysisSession::sliceBackwardChecked(const Instr *Seed, SliceMode Mode) {
  if (const SliceResult *R = sliceBackwardCached(Seed, Mode))
    return R;
  return errorOr(LastErr, "slice");
}

//===----------------------------------------------------------------------===//
// Governance and telemetry
//===----------------------------------------------------------------------===//

PipelineStatus AnalysisSession::status() {
  PipelineStatus Status;
  auto PtaIt = PtaCache.find(ptaKey());
  if (PtaIt != PtaCache.end())
    Status.add(PtaIt->second->report());
  auto MrIt = ModRefCache.find(ptaKey());
  if (MrIt != ModRefCache.end() && CurSdg.ContextSensitive)
    Status.add(MrIt->second->report());
  auto SdgIt = SdgCache.find(sdgKey());
  if (SdgIt != SdgCache.end())
    Status.add(SdgIt->second->report());
  return Status;
}

std::vector<StageReport> AnalysisSession::stageReports() const {
  std::vector<StageReport> Out;
  for (unsigned I = 0; I != NumSessionStages; ++I) {
    StageReport R;
    R.Stage = sessionStageName(static_cast<SessionStage>(I));
    R.Seconds = Counters[I].Seconds;
    R.CacheHits = Counters[I].Hits;
    R.CacheMisses = Counters[I].Misses;
    R.CacheInvalidated = Counters[I].Invalidated;
    Out.push_back(std::move(R));
  }
  return Out;
}

uint64_t AnalysisSession::statsFingerprint() const {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
    H ^= H >> 29;
  };
  auto MixD = [&](double D) {
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    Mix(Bits);
  };
  for (unsigned I = 0; I != NumSessionStages; ++I) {
    Mix(Counters[I].Hits);
    Mix(Counters[I].Misses);
    Mix(Counters[I].Invalidated);
    MixD(Counters[I].Seconds);
    Mix(Epochs[I]);
  }
  Mix(threadsResolved());
  Mix(Pools.size());
  for (const auto &P : Pools) {
    Mix(P->tasksExecuted());
    Mix(P->tasksStolen());
  }
  Mix(StageFailures);
  Mix(StageRetries);
  Mix(IncStats.Attempts);
  Mix(IncStats.Applied);
  Mix(IncStats.FunctionsReused);
  Mix(IncStats.FunctionsRecompiled);
  Mix(IncStats.PtaUpdates);
  Mix(IncStats.ModRefUpdates);
  Mix(IncStats.SdgPatches);
  Mix(IncStats.ColdFallbacks);
  Mix(IncStats.StageFallbacks);
  Mix(fnv1a(IncStats.LastFallbackReason));
  Mix(SnapStats.Saves);
  Mix(SnapStats.Loads);
  Mix(SnapStats.Fallbacks);
  Mix(SnapStats.CacheHits);
  Mix(SnapStats.CacheMisses);
  Mix(SnapStats.CacheEvictions);
  Mix(fnv1a(SnapStats.LastFallbackReason));
  return H;
}

std::string AnalysisSession::statsString() const {
  // Every counter the rendering reads feeds the fingerprint, so the
  // memo can never serve a stale string; the common case — tooling
  // polling stats between queries — skips all the formatting.
  const uint64_t Fp = statsFingerprint();
  if (StatsMemoValid && Fp == StatsMemoFp)
    return StatsMemo;

  std::string Out = "session stages (memoization):\n";
  char Buf[160];
  for (const StageReport &R : stageReports()) {
    snprintf(Buf, sizeof(Buf),
             "  %s: hits=%llu misses=%llu invalidated=%llu ms=%.1f\n",
             R.Stage.c_str(), static_cast<unsigned long long>(R.CacheHits),
             static_cast<unsigned long long>(R.CacheMisses),
             static_cast<unsigned long long>(R.CacheInvalidated),
             R.Seconds * 1000.0);
    Out += Buf;
  }
  uint64_t Executed = 0, Stolen = 0;
  for (const auto &P : Pools) {
    Executed += P->tasksExecuted();
    Stolen += P->tasksStolen();
  }
  snprintf(Buf, sizeof(Buf),
           "parallelism: threads=%u pool_workers=%u tasks=%llu stolen=%llu\n",
           threadsResolved(),
           Pools.empty() ? 0 : Pools.back()->numWorkers(),
           static_cast<unsigned long long>(Executed),
           static_cast<unsigned long long>(Stolen));
  Out += Buf;
  if (StageFailures || StageRetries) {
    snprintf(Buf, sizeof(Buf),
             "failure isolation: stage_failures=%llu retries=%llu\n",
             static_cast<unsigned long long>(StageFailures),
             static_cast<unsigned long long>(StageRetries));
    Out += Buf;
  }
  if (IncStats.Attempts) {
    char IBuf[288];
    snprintf(IBuf, sizeof(IBuf),
             "incremental: attempts=%llu applied=%llu fn_reused=%llu "
             "fn_recompiled=%llu pta_updates=%llu modref_updates=%llu "
             "sdg_patches=%llu cold_fallbacks=%llu stage_fallbacks=%llu\n",
             static_cast<unsigned long long>(IncStats.Attempts),
             static_cast<unsigned long long>(IncStats.Applied),
             static_cast<unsigned long long>(IncStats.FunctionsReused),
             static_cast<unsigned long long>(IncStats.FunctionsRecompiled),
             static_cast<unsigned long long>(IncStats.PtaUpdates),
             static_cast<unsigned long long>(IncStats.ModRefUpdates),
             static_cast<unsigned long long>(IncStats.SdgPatches),
             static_cast<unsigned long long>(IncStats.ColdFallbacks),
             static_cast<unsigned long long>(IncStats.StageFallbacks));
    Out += IBuf;
    if (!IncStats.LastFallbackReason.empty())
      Out += "  last_fallback: " + IncStats.LastFallbackReason + "\n";
  }
  snprintf(Buf, sizeof(Buf),
           "snapshot: saves=%llu loads=%llu fallbacks=%llu cache_hits=%llu "
           "cache_misses=%llu cache_evictions=%llu\n",
           static_cast<unsigned long long>(SnapStats.Saves),
           static_cast<unsigned long long>(SnapStats.Loads),
           static_cast<unsigned long long>(SnapStats.Fallbacks),
           static_cast<unsigned long long>(SnapStats.CacheHits),
           static_cast<unsigned long long>(SnapStats.CacheMisses),
           static_cast<unsigned long long>(SnapStats.CacheEvictions));
  Out += Buf;
  if (!SnapStats.LastFallbackReason.empty())
    Out += "  last_fallback: " + SnapStats.LastFallbackReason + "\n";

  StatsMemo = Out;
  StatsMemoFp = Fp;
  StatsMemoValid = true;
  return Out;
}
