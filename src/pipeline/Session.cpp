//===-- Session.cpp - Memoized analysis pipeline sessions -----------------------==//

#include "pipeline/Session.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

using namespace tsl;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// FNV-1a over the source text: the cheap, stable identity every
/// cache key is prefixed with.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Option fingerprints. Budget pointers are deliberately excluded:
/// the session threads its own budget in at compute time and treats
/// budget changes as destructive invalidations instead.
std::string digest(const CompileOptions &O) {
  std::string D = "ssa=";
  D += O.BuildSSA ? '1' : '0';
  D += ";main=";
  D += O.RequireMain ? '1' : '0';
  return D;
}

// ParallelFrontier is part of the PTA digest — its round-granularity
// visit order assigns different (equivalent) object/context ids than
// the per-pop loop, so the two modes are distinct artifacts. The Pool
// pointer and the session thread count are NOT digested: pool size
// never changes any artifact's bytes.
std::string digest(const PTAOptions &O) {
  std::ostringstream OS;
  OS << "objsens=" << O.ObjSensContainers << ";depth=" << O.MaxObjSensDepth
     << ";delta=" << O.DeltaPropagation << ";cyc=" << O.CycleElimination
     << ";policy=" << static_cast<unsigned>(O.Policy)
     << ";pf=" << O.ParallelFrontier << ";containers=";
  for (const std::string &C : O.ContainerClasses)
    OS << C << ',';
  return OS.str();
}

std::string digest(const SDGOptions &O) {
  std::string D = "cs=";
  D += O.ContextSensitive ? '1' : '0';
  D += ";unreach=";
  D += O.IncludeUnreachable ? '1' : '0';
  return D;
}

} // namespace

const char *tsl::sessionStageName(SessionStage S) {
  switch (S) {
  case SessionStage::Compile:
    return "compile";
  case SessionStage::PTA:
    return "pta";
  case SessionStage::ModRef:
    return "modref";
  case SessionStage::SDGBuild:
    return "sdg";
  case SessionStage::Engine:
    return "engine";
  case SessionStage::Slice:
    return "slice";
  }
  return "?";
}

AnalysisSession::AnalysisSession()
    : Diag(std::make_unique<DiagnosticEngine>()) {}

AnalysisSession::AnalysisSession(std::string Source, CompileOptions CO)
    : AnalysisSession() {
  CurCompile = CO;
  setSource(std::move(Source));
}

AnalysisSession::~AnalysisSession() = default;

unsigned AnalysisSession::threadsResolved() const {
  if (Threads)
    return Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool *AnalysisSession::pool() {
  unsigned N = threadsResolved();
  if (N <= 1)
    return nullptr;
  if (Pools.empty() || Pools.back()->concurrency() != N)
    Pools.push_back(std::make_unique<ThreadPool>(N));
  return Pools.back().get();
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

void AnalysisSession::bumpFrom(SessionStage S) {
  for (unsigned I = static_cast<unsigned>(S); I != NumSessionStages; ++I)
    ++Epochs[I];
}

void AnalysisSession::purgeAnalyses() {
  counters(SessionStage::Slice).Invalidated += SliceCache.size();
  counters(SessionStage::Engine).Invalidated += EngineCache.size();
  counters(SessionStage::SDGBuild).Invalidated += SdgCache.size();
  counters(SessionStage::ModRef).Invalidated += ModRefCache.size();
  counters(SessionStage::PTA).Invalidated += PtaCache.size();
  // Bottom-up: engines reference SDGs, mod-ref references PTA.
  SliceCache.clear();
  EngineCache.clear();
  SdgCache.clear();
  ModRefCache.clear();
  PtaCache.clear();
}

void AnalysisSession::purgeAll() {
  purgeAnalyses();
  if (CompileAttempted)
    ++counters(SessionStage::Compile).Invalidated;
  Prog.reset();
  CompileAttempted = false;
}

void AnalysisSession::setSource(std::string NewSource) {
  Source = std::move(NewSource);
  SourceDigest = fnv1a(Source);
  purgeAll();
  bumpFrom(SessionStage::Compile);
}

void AnalysisSession::setCompileOptions(const CompileOptions &O) {
  if (digest(O) == digest(CurCompile))
    return;
  CurCompile = O;
  purgeAll();
  bumpFrom(SessionStage::Compile);
}

void AnalysisSession::setPTAOptions(const PTAOptions &O) {
  if (digest(O) == digest(CurPta))
    return;
  CurPta = O;
  bumpFrom(SessionStage::PTA);
}

void AnalysisSession::setSDGOptions(const SDGOptions &O) {
  if (digest(O) == digest(CurSdg))
    return;
  CurSdg = O;
  bumpFrom(SessionStage::SDGBuild);
}

void AnalysisSession::setBudget(const AnalysisBudget *B) {
  if (B == Budget)
    return;
  Budget = B;
  purgeAnalyses();
  bumpFrom(SessionStage::PTA);
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

std::string AnalysisSession::ptaKey() const {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%016llx|",
           static_cast<unsigned long long>(SourceDigest));
  return Buf + digest(CurPta);
}

std::string AnalysisSession::sdgKey() const {
  return ptaKey() + "|" + digest(CurSdg);
}

//===----------------------------------------------------------------------===//
// Artifacts
//===----------------------------------------------------------------------===//

Program *AnalysisSession::program() {
  StageCounters &C = counters(SessionStage::Compile);
  if (CompileAttempted) {
    ++C.Hits;
    return Prog.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  Diag = std::make_unique<DiagnosticEngine>();
  Prog = compileThinJ(Source, *Diag, CurCompile);
  CompileAttempted = true;
  C.Seconds += secondsSince(T0);
  return Prog.get();
}

PointsToResult *AnalysisSession::pointsTo() {
  Program *P = program();
  if (!P)
    return nullptr;
  StageCounters &C = counters(SessionStage::PTA);
  auto It = PtaCache.find(ptaKey());
  if (It != PtaCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  PTAOptions Opts = CurPta;
  Opts.Budget = Budget;
  Opts.Pool = pool();
  std::unique_ptr<PointsToResult> R = runPointsTo(*P, Opts);
  C.Seconds += secondsSince(T0);
  return PtaCache.emplace(ptaKey(), std::move(R)).first->second.get();
}

ModRefResult *AnalysisSession::modRef() {
  PointsToResult *PTA = pointsTo();
  if (!PTA)
    return nullptr;
  StageCounters &C = counters(SessionStage::ModRef);
  auto It = ModRefCache.find(ptaKey());
  if (It != ModRefCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  auto MR = std::make_unique<ModRefResult>(*Prog, *PTA, Budget, pool());
  C.Seconds += secondsSince(T0);
  return ModRefCache.emplace(ptaKey(), std::move(MR)).first->second.get();
}

SDG *AnalysisSession::sdg() {
  PointsToResult *PTA = pointsTo();
  if (!PTA)
    return nullptr;
  StageCounters &C = counters(SessionStage::SDGBuild);
  auto It = SdgCache.find(sdgKey());
  if (It != SdgCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  // The context-sensitive representation needs mod-ref; computing it
  // through the session keeps it cached for the next CS graph of the
  // same PTA cone.
  ModRefResult *MR = CurSdg.ContextSensitive ? modRef() : nullptr;
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  SDGOptions Opts = CurSdg;
  Opts.Budget = Budget;
  Opts.Pool = pool();
  std::unique_ptr<SDG> G = buildSDG(*Prog, *PTA, MR, Opts);
  C.Seconds += secondsSince(T0);
  return SdgCache.emplace(sdgKey(), std::move(G)).first->second.get();
}

SliceEngine *AnalysisSession::engine() {
  SDG *G = sdg();
  if (!G)
    return nullptr;
  StageCounters &C = counters(SessionStage::Engine);
  auto It = EngineCache.find(sdgKey());
  if (It != EngineCache.end()) {
    ++C.Hits;
    return It->second.get();
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  auto E = std::make_unique<SliceEngine>(*G, pool());
  C.Seconds += secondsSince(T0);
  return EngineCache.emplace(sdgKey(), std::move(E)).first->second.get();
}

const SliceResult *AnalysisSession::sliceBackwardCached(const Instr *Seed,
                                                        SliceMode Mode) {
  if (!Seed)
    return nullptr;
  SliceEngine *E = engine();
  if (!E)
    return nullptr;
  StageCounters &C = counters(SessionStage::Slice);
  SliceKey Key{sdgKey(), Seed, Mode};
  auto It = SliceCache.find(Key);
  if (It != SliceCache.end()) {
    ++C.Hits;
    return &It->second;
  }
  ++C.Misses;
  auto T0 = std::chrono::steady_clock::now();
  BatchOptions BO;
  BO.Mode = Mode;
  BO.ContextSensitive = CurSdg.ContextSensitive;
  BO.Jobs = threadsResolved();
  BO.Budget = Budget;
  BO.Summaries = CurSdg.ContextSensitive ? &Summaries : nullptr;
  SliceResult R = E->sliceBackwardBatch({Seed}, BO).front();
  C.Seconds += secondsSince(T0);
  return &SliceCache.emplace(Key, std::move(R)).first->second;
}

//===----------------------------------------------------------------------===//
// Governance and telemetry
//===----------------------------------------------------------------------===//

PipelineStatus AnalysisSession::status() {
  PipelineStatus Status;
  auto PtaIt = PtaCache.find(ptaKey());
  if (PtaIt != PtaCache.end())
    Status.add(PtaIt->second->report());
  auto MrIt = ModRefCache.find(ptaKey());
  if (MrIt != ModRefCache.end() && CurSdg.ContextSensitive)
    Status.add(MrIt->second->report());
  auto SdgIt = SdgCache.find(sdgKey());
  if (SdgIt != SdgCache.end())
    Status.add(SdgIt->second->report());
  return Status;
}

std::vector<StageReport> AnalysisSession::stageReports() const {
  std::vector<StageReport> Out;
  for (unsigned I = 0; I != NumSessionStages; ++I) {
    StageReport R;
    R.Stage = sessionStageName(static_cast<SessionStage>(I));
    R.Seconds = Counters[I].Seconds;
    R.CacheHits = Counters[I].Hits;
    R.CacheMisses = Counters[I].Misses;
    R.CacheInvalidated = Counters[I].Invalidated;
    Out.push_back(std::move(R));
  }
  return Out;
}

std::string AnalysisSession::statsString() const {
  std::string Out = "session stages (memoization):\n";
  char Buf[160];
  for (const StageReport &R : stageReports()) {
    snprintf(Buf, sizeof(Buf),
             "  %s: hits=%llu misses=%llu invalidated=%llu ms=%.1f\n",
             R.Stage.c_str(), static_cast<unsigned long long>(R.CacheHits),
             static_cast<unsigned long long>(R.CacheMisses),
             static_cast<unsigned long long>(R.CacheInvalidated),
             R.Seconds * 1000.0);
    Out += Buf;
  }
  uint64_t Executed = 0, Stolen = 0;
  for (const auto &P : Pools) {
    Executed += P->tasksExecuted();
    Stolen += P->tasksStolen();
  }
  snprintf(Buf, sizeof(Buf),
           "parallelism: threads=%u pool_workers=%u tasks=%llu stolen=%llu\n",
           threadsResolved(),
           Pools.empty() ? 0 : Pools.back()->numWorkers(),
           static_cast<unsigned long long>(Executed),
           static_cast<unsigned long long>(Stolen));
  Out += Buf;
  return Out;
}
