//===-- Session.h - Memoized analysis pipeline sessions ---------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisSession: the long-lived facade over the whole analysis
/// stage graph
///
///   source -> AST -> IR/SSA -> call graph + points-to -> mod-ref
///          -> SDG -> SliceEngine -> slices
///
/// The paper's workflow is session-shaped — a developer holds one
/// program open and issues many slice queries, expansions, and
/// re-queries against the same underlying analyses — so every
/// artifact is computed lazily, memoized, and keyed by
/// (source digest, upstream artifact, per-stage options):
///
///  - Requesting an artifact computes exactly its missing ancestors;
///    repeated requests return the identical object.
///  - Changing a stage's options re-keys that stage and its downstream
///    cone only (a CI -> CS switch reuses the IR and the points-to
///    result), and the previous variant stays warm: switching back is
///    a cache hit, which is what lets one session serve an eval
///    workload's thin/traditional/NoObjSens/CS-ablation tables from
///    one compile + one PTA per option set.
///  - Replacing the source (or the compile options, or the budget)
///    destroys the affected cone; per-stage epoch counters record
///    every such invalidation, so clients can assert exactly which
///    artifacts a change discarded.
///
/// Governance is threaded through unchanged: the session's
/// AnalysisBudget is installed into every stage's options at compute
/// time, so a budgeted session degrades byte-for-byte like the
/// one-shot pipeline (see tests/session_test.cpp). Because a cached
/// artifact embeds the budget outcome it was computed under, changing
/// the budget is a destructive invalidation rather than a re-key.
///
/// Threading: a session is confined to one thread. The SliceEngine it
/// hands out fans batches across its own worker pool over the
/// immutable finalized SDG; that reuse is exercised under TSan by the
/// `pipeline` ctest label.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_PIPELINE_SESSION_H
#define THINSLICER_PIPELINE_SESSION_H

#include "lang/Incremental.h"
#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/Serialize.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace tsl {

/// The memoized stages, in dependence order. Compile covers
/// parse + lower + SSA (one artifact: the Program).
enum class SessionStage : unsigned {
  Compile = 0,
  PTA,
  ModRef,
  SDGBuild,
  Engine,
  Slice,
};

constexpr unsigned NumSessionStages = 6;

/// Short printable stage name ("compile", "pta", ...).
const char *sessionStageName(SessionStage S);

/// A memoized, invalidation-aware analysis pipeline over one source
/// program. See the file comment for the caching model.
class AnalysisSession {
public:
  AnalysisSession();
  explicit AnalysisSession(std::string Source, CompileOptions CO = {});
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  //===------------------------------------------------------------------===//
  // Inputs. Each setter invalidates exactly its downstream cone.
  //===------------------------------------------------------------------===//

  /// Replaces the program source. By default every cached artifact is
  /// destroyed and every stage epoch bumps. With setIncremental(true)
  /// the session first attempts the function-granular fast path: diff
  /// the sources, relower only changed bodies, retract-and-replay the
  /// points-to facts, re-scan mod-ref for affected methods, and patch
  /// the SDG in place — falling back to the cold path (per stage or
  /// entirely) whenever an update declines. Either way the resulting
  /// artifacts answer every query as a cold rebuild of the new source
  /// would (see DESIGN.md section 13).
  void setSource(std::string Source);

  /// Enables/disables the incremental setSource() fast path. Off by
  /// default. Ignored (transparent cold fallback) for budgeted
  /// sessions — cached artifacts embed budget outcomes, which
  /// retraction cannot reproduce.
  void setIncremental(bool On) { IncrementalEnabled = On; }
  bool incremental() const { return IncrementalEnabled; }

  /// Telemetry of the incremental fast path, printed by statsString().
  struct IncrementalStats {
    uint64_t Attempts = 0; ///< Incremental setSource() attempts.
    uint64_t Applied = 0;  ///< Attempts where the compile fast path applied.
    uint64_t FunctionsReused = 0;      ///< Bodies reused verbatim.
    uint64_t FunctionsRecompiled = 0;  ///< Bodies relowered.
    uint64_t PtaUpdates = 0;    ///< Points-to artifacts updated in place.
    uint64_t ModRefUpdates = 0; ///< Mod-ref artifacts updated in place.
    uint64_t SdgPatches = 0;    ///< SDGs patched in place.
    uint64_t ColdFallbacks = 0; ///< Attempts that fell back entirely.
    uint64_t StageFallbacks = 0; ///< Stage updates that declined mid-chain.
    std::string LastFallbackReason;
  };
  const IncrementalStats &incrementalStats() const { return IncStats; }

  /// Changes the compile options: same cone as setSource.
  void setCompileOptions(const CompileOptions &O);

  /// Changes the pointer-analysis options: re-keys PTA and everything
  /// below it (mod-ref, SDG, engine, slices). The Budget field of \p O
  /// is ignored — the session's own budget is threaded in at compute
  /// time. A no-op when the options are unchanged.
  void setPTAOptions(const PTAOptions &O);

  /// Changes the SDG options: re-keys the SDG, engine, and slices.
  /// The Budget field of \p O is ignored, as in setPTAOptions.
  void setSDGOptions(const SDGOptions &O);

  /// Installs (or clears) the resource budget threaded into every
  /// analysis stage. Cached analysis artifacts embed the budget
  /// outcome they were computed under, so this destroys the PTA cone
  /// (the compiled program survives: compilation is ungoverned).
  void setBudget(const AnalysisBudget *B);

  /// Sets the analysis concurrency: the total number of threads
  /// (including the calling one) the shared pool offers to the
  /// parallel stages. 0 means hardware concurrency; 1 runs every
  /// stage inline with no pool at all. Unlike the option setters this
  /// re-keys NOTHING — every parallel stage produces byte-identical
  /// artifacts for every thread count, so a cached artifact stays
  /// valid across setThreads calls (asserted by the determinism
  /// tests). Pools already handed to cached engines stay alive until
  /// the session dies.
  void setThreads(unsigned N) { Threads = N; }
  unsigned threads() const { return Threads; }

  /// Resolved thread count (hardware concurrency substituted for 0).
  unsigned threadsResolved() const;

  /// The shared pool sized to threadsResolved(), created lazily; null
  /// when the session is effectively single-threaded.
  ThreadPool *pool();

  const PTAOptions &ptaOptions() const { return CurPta; }
  const SDGOptions &sdgOptions() const { return CurSdg; }
  const AnalysisBudget *budget() const { return Budget; }

  //===------------------------------------------------------------------===//
  // Artifacts, computed on demand. All return pointers owned by the
  // session, valid until the owning cache entry is invalidated. Every
  // accessor returns null when the source does not compile (the
  // compile stage memoizes failure, too — see diagnostics()).
  //===------------------------------------------------------------------===//

  Program *program();
  PointsToResult *pointsTo();
  ModRefResult *modRef();
  SDG *sdg();
  SliceEngine *engine();

  //===------------------------------------------------------------------===//
  // Failure isolation. A stage that *crashes* (an exception escaping
  // it — injected Throw fault or internal error) is caught here at the
  // boundary: the computation is retried up to a small bound (with
  // backoff; a transient fault disarms on firing, so the retry runs
  // clean), and if every attempt fails the session records the Status,
  // caches NOTHING, and stays fully queryable — the next request for
  // the artifact retries from scratch. A stage that soundly *degrades*
  // because a fault tripped its gate produces a valid artifact, which
  // is served now but marked tainted: the next request evicts it (and
  // its downstream cone, which holds references into it) and
  // recomputes, so the session converges back to the fault-free
  // answer once the fault clears. Every governed compute additionally
  // runs under a Watchdog enforcing the budget's wall-clock deadline
  // preemptively (see support/Watchdog.h).
  //===------------------------------------------------------------------===//

  /// Status of the most recent artifact request: Ok after success
  /// (including sound degradation — that is a usable result), the
  /// failure Status after a null return.
  const Status &lastError() const { return LastErr; }

  /// Status-returning boundary accessors: the artifact, or the Status
  /// explaining the null. Same memoization as the raw accessors.
  Expected<Program *> programChecked();
  Expected<PointsToResult *> pointsToChecked();
  Expected<ModRefResult *> modRefChecked();
  Expected<SDG *> sdgChecked();
  Expected<SliceEngine *> engineChecked();
  Expected<const SliceResult *> sliceBackwardChecked(const Instr *Seed,
                                                     SliceMode Mode);

  /// Failure-isolation telemetry: stage computations that exhausted
  /// their retries, and individual retry attempts performed.
  uint64_t stageFailures() const { return StageFailures; }
  uint64_t stageRetries() const { return StageRetries; }

  /// Diagnostics of the most recent compile (empty before the first
  /// program() call).
  const DiagnosticEngine &diagnostics() const { return *Diag; }

  /// The session-owned cross-batch summary cache for context-
  /// sensitive slicing (keyed internally by graph epoch and mode).
  SummaryCache &summaries() { return Summaries; }

  //===------------------------------------------------------------------===//
  // Memoized whole-query slicing
  //===------------------------------------------------------------------===//

  /// Backward slice from \p Seed under the current SDG options
  /// (context-sensitive tabulation when sdgOptions().ContextSensitive,
  /// the batch engine otherwise), memoized per (graph, seed, mode).
  /// Null when the source does not compile or \p Seed is null.
  const SliceResult *sliceBackwardCached(const Instr *Seed, SliceMode Mode);

  //===------------------------------------------------------------------===//
  // Persistent snapshots (DESIGN.md section 14). A snapshot is the
  // pointer-free serialization of the whole warm pipeline — program,
  // points-to, mod-ref, SDG — keyed by (source digest, option
  // digests, format version). loadSnapshot() is byte-identical to a
  // cold rebuild for every query, and composes with everything the
  // session supports: an incremental edit after a warm start answers
  // exactly like cold-then-edit (stages whose in-place update
  // declines rebuild cold, which is always sound).
  //===------------------------------------------------------------------===//

  /// Snapshot/cache-dir telemetry, rendered as the `snapshot:` line
  /// of statsString().
  struct SnapshotStats {
    uint64_t Saves = 0;     ///< Snapshots written.
    uint64_t Loads = 0;     ///< Successful warm starts.
    uint64_t Fallbacks = 0; ///< Load attempts declined to cold rebuild.
    uint64_t CacheHits = 0;   ///< Cache-dir lookups that found a file.
    uint64_t CacheMisses = 0; ///< Cache-dir lookups that did not.
    uint64_t CacheEvictions = 0; ///< Cache-dir files evicted by LRU.
    std::string LastFallbackReason;
  };
  const SnapshotStats &snapshotStats() const { return SnapStats; }

  /// Serializes the current pipeline to \p Path. Computes any missing
  /// artifact first (program, points-to, mod-ref, SDG). Declines —
  /// returning the reason, writing nothing — for budgeted sessions
  /// and degraded artifacts: their facts embed a budget outcome a
  /// warm start could not reproduce.
  Status saveSnapshot(const std::string &Path);

  /// Warm-starts the session from \p Path: verifies magic, format
  /// version, per-section CRCs, and that the snapshot's source and
  /// option digests match the session's current inputs, then decodes
  /// the program and the SDG into temporaries and installs them only
  /// on full success. The points-to and mod-ref payloads — already
  /// CRC-verified — are kept undecoded and materialize on the first
  /// query that needs them, so the common warm-start query (a slice,
  /// which runs on the SDG alone) skips their decode cost entirely.
  /// ANY failure — unreadable file, version mismatch, stale digest,
  /// corruption, an injected "snapshot.load" fault — leaves the
  /// session untouched and still fully functional (the next accessor
  /// computes cold), records the fallback reason in snapshotStats(),
  /// and returns a non-ok Status; a CRC-valid but structurally
  /// malformed deferred payload does the same at first access.
  /// Never throws.
  Status loadSnapshot(const std::string &Path);

  /// Enables content-addressed snapshot caching under \p Dir (empty
  /// disables). The directory is created on first save.
  void setCacheDir(std::string Dir) { CacheDir = std::move(Dir); }
  const std::string &cacheDir() const { return CacheDir; }

  /// Cache-dir lookup for the current (source, options, version) key:
  /// true when a cached snapshot existed AND loaded. A miss, or a hit
  /// that fails to load, returns false with the session untouched.
  /// No-op (false) when no cache dir is set.
  bool tryLoadFromCacheDir();

  /// Saves the current pipeline into the cache dir under its content
  /// key, then evicts the oldest entries beyond the retention cap.
  /// No-op when no cache dir is set.
  Status saveToCacheDir();

  /// Cache-dir retention cap (entries kept after a save).
  static constexpr std::size_t MaxCacheDirEntries = 32;

  //===------------------------------------------------------------------===//
  // Epochs, governance, telemetry
  //===------------------------------------------------------------------===//

  /// Invalidation epoch of \p S: bumped every time an input change
  /// invalidates (destroys or re-keys) the stage's current artifact.
  uint64_t epoch(SessionStage S) const {
    return Epochs[static_cast<unsigned>(S)];
  }

  /// Per-stage budget reports of the artifacts computed for the
  /// *current* options, in pipeline order (pta, modref if computed,
  /// sdg) — the same sequence the one-shot pipeline assembles by hand.
  PipelineStatus status();

  /// Per-stage memoization telemetry as StageReports: CacheHits /
  /// CacheMisses / CacheInvalidated counts plus total Seconds spent
  /// computing misses. One report per SessionStage, in stage order.
  std::vector<StageReport> stageReports() const;

  /// Human-readable rendering of stageReports() plus the parallelism,
  /// incremental, and snapshot telemetry lines — the block `thinslice
  /// --stats` and the interactive `stats` command print. Memoized on a
  /// fingerprint of every counter it renders: repeated calls with no
  /// intervening activity return the cached string without
  /// re-formatting.
  std::string statsString() const;

private:
  struct StageCounters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidated = 0;
    double Seconds = 0;
  };

  /// Memo key of a whole slice query. The SDG key pins the upstream
  /// cone (source digest, PTA options, SDG options); the seed pointer
  /// is stable while the program artifact lives, which the key's SDG
  /// entry guarantees.
  using SliceKey = std::tuple<std::string, const Instr *, SliceMode>;

  StageCounters &counters(SessionStage S) {
    return Counters[static_cast<unsigned>(S)];
  }
  void bumpFrom(SessionStage S);
  void purgeAnalyses(); ///< Destroys PTA..Slice entries (not the program).
  void purgeAll();      ///< Destroys everything including the program.

  /// The incremental setSource() fast path. Returns true when the
  /// edit was absorbed (program patched in place, artifact caches
  /// re-keyed, stage updates applied or individually dropped); false
  /// means the caller must run the cold path — including when a
  /// mid-apply failure left the program mutated, which the cold
  /// path's purge then discards.
  bool trySetSourceIncremental(const std::string &NewSource);

  /// Tainted-artifact eviction (retry-on-next-request). Downstream
  /// artifacts hold references into upstream ones, so eviction always
  /// cascades down the cone, bottom-up.
  void evictPtaCone(const std::string &Key);    ///< PTA + everything below.
  void evictModRefEntry(const std::string &Key);///< ModRef + SDG cone below.
  void evictSdgCone(const std::string &Key);    ///< SDG/engine/slices.

  /// Evicts every fault-tainted artifact (with its downstream cone)
  /// so the request about to run recomputes them clean. Runs ONLY at
  /// the outermost public accessor of a request (see RequestScope):
  /// a nested stage call (sdg -> modRef -> pointsTo) must never free
  /// an artifact an outer frame of the same request still references.
  void healTainted();
  struct RequestScope;
  unsigned RequestDepth = 0;

  std::string ptaKey() const;
  std::string sdgKey() const;

  /// Content-addressed cache file name: source digest + a hash of the
  /// option digests and the snapshot format version.
  std::string snapshotCacheKey() const;

  /// Fold of every counter statsString() renders; cheap enough to
  /// compute per call, so the memo invalidates itself.
  uint64_t statsFingerprint() const;

  // --- inputs
  std::string Source;
  uint64_t SourceDigest = 0;
  CompileOptions CurCompile;
  PTAOptions CurPta;
  SDGOptions CurSdg;
  const AnalysisBudget *Budget = nullptr;
  unsigned Threads = 1;

  // --- shared worker pools. Declared before the artifact stores:
  // cached SliceEngines hold a pointer to the pool they were built
  // with, so pools must be destroyed after them. setThreads never
  // destroys a pool mid-session — a resize just makes the next pool()
  // call append a fresh one, and retired pools idle until teardown.
  std::vector<std::unique_ptr<ThreadPool>> Pools;

  // --- artifact stores. Declaration order is lifetime order: every
  // downstream artifact holds references into its upstream (ModRef
  // into PTA, SDG into the Program, SliceEngine into its SDG), so the
  // members are destroyed bottom-up (reverse declaration order) and
  // the purge helpers clear them in the same bottom-up order.
  std::unique_ptr<DiagnosticEngine> Diag;
  /// Bodies detached by incremental recompiles. Retained analysis
  /// artifacts still hold the old Instr*/Local* addresses (e.g. the
  /// PTA object table's allocation sites), so the storage must outlive
  /// them: declared above the artifact stores, cleared only when the
  /// analyses purge. Never dereferenced after retraction — only
  /// compared as keys.
  std::vector<Method::DetachedBody> RetiredBodyStore;
  std::unique_ptr<Program> Prog;
  bool CompileAttempted = false;
  std::map<std::string, std::unique_ptr<PointsToResult>> PtaCache;
  std::map<std::string, std::unique_ptr<ModRefResult>> ModRefCache;
  std::map<std::string, std::unique_ptr<SDG>> SdgCache;
  std::map<std::string, std::unique_ptr<SliceEngine>> EngineCache;
  std::map<SliceKey, SliceResult> SliceCache;
  SummaryCache Summaries;

  // --- deferred snapshot layers. A warm start installs the decoded
  // program and SDG eagerly (the first slice query needs them) but
  // stashes the CRC-verified points-to and mod-ref section payloads
  // here undecoded; pointsTo()/modRef() decode on first demand and
  // fall back to the cold computation if a payload is structurally
  // malformed. PendingLayerKey pins the bytes to the ptaKey() at
  // load time, so any source or option change strands them and the
  // purge helpers discard them.
  std::vector<uint8_t> PendingPtaBytes;
  std::vector<uint8_t> PendingMrBytes;
  std::string PendingLayerKey;

  // --- failure isolation. Tainted keys name cached artifacts that
  // were computed while an injected fault fired: still sound (served
  // for the request that computed them) but evicted and recomputed on
  // the next request, so a cleared fault heals the session.
  std::set<std::string> TaintedPta;
  std::set<std::string> TaintedModRef;
  std::set<std::string> TaintedSdg;
  std::set<SliceKey> TaintedSlices;
  Status LastErr;

  // --- telemetry
  StageCounters Counters[NumSessionStages];
  uint64_t Epochs[NumSessionStages] = {};
  uint64_t StageFailures = 0;
  uint64_t StageRetries = 0;
  bool IncrementalEnabled = false;
  IncrementalStats IncStats;
  std::string CacheDir;
  SnapshotStats SnapStats;
  /// statsString() memo (see statsFingerprint()).
  mutable std::string StatsMemo;
  mutable uint64_t StatsMemoFp = 0;
  mutable bool StatsMemoValid = false;
  /// Scan memo for the incremental differ: the previous source's token
  /// stream, so each edit lexes only its changed lines.
  ScanCache IncScanCache;
};

} // namespace tsl

#endif // THINSLICER_PIPELINE_SESSION_H
