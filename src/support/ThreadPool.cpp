//===-- ThreadPool.cpp - Shared work-stealing thread pool ----------------------==//

#include "support/ThreadPool.h"

#include "support/Budget.h"

#include <cassert>
#include <chrono>

using namespace tsl;

namespace {

/// Identity of the pool worker running on this thread, so submit()
/// can route a worker's child tasks to its own deque (the Chase-Lev
/// bottom) instead of the shared injection queue.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorkerId = ~0u;

} // namespace

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = std::thread::hardware_concurrency();
  if (Threads == 0)
    Threads = 1;
  NumWorkers = Threads - 1;
  Workers.reserve(NumWorkers);
  for (unsigned Id = 0; Id != NumWorkers; ++Id)
    Workers.push_back(std::make_unique<Worker>());
  // Start only after every Worker slot exists: a starting worker's
  // steal sweep walks the whole vector.
  for (unsigned Id = 0; Id != NumWorkers; ++Id)
    Workers[Id]->Thread = std::thread([this, Id] { workerLoop(Id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(InjectMu);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (auto &W : Workers)
    W->Thread.join();
  // Workers drained their deques and the injection queue before
  // exiting; anything left could only have been submitted after
  // Stopping was set, which the contract forbids.
  assert(Pending.load() == 0 && "tasks submitted during shutdown");
}

void ThreadPool::schedule(std::function<void()> Task) {
  if (NumWorkers == 0) {
    // No workers: run inline so futures still complete.
    TasksExecuted.fetch_add(1, std::memory_order_relaxed);
    Task();
    return;
  }
  if (CurrentPool == this && CurrentWorkerId < NumWorkers) {
    Worker &W = *Workers[CurrentWorkerId];
    {
      std::lock_guard<std::mutex> L(W.Mu);
      W.Deque.push_back(std::move(Task));
    }
    Pending.fetch_add(1, std::memory_order_release);
    WorkCV.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> L(InjectMu);
    Inject.push_back(std::move(Task));
  }
  Pending.fetch_add(1, std::memory_order_release);
  WorkCV.notify_one();
}

bool ThreadPool::runOne(unsigned SelfId) {
  std::function<void()> Task;

  // 1. Own deque, bottom (LIFO: the task pushed most recently is the
  //    cache-warm one).
  if (SelfId < NumWorkers) {
    Worker &W = *Workers[SelfId];
    std::lock_guard<std::mutex> L(W.Mu);
    if (!W.Deque.empty()) {
      Task = std::move(W.Deque.back());
      W.Deque.pop_back();
    }
  }
  // 2. The shared injection queue.
  if (!Task) {
    std::lock_guard<std::mutex> L(InjectMu);
    if (!Inject.empty()) {
      Task = std::move(Inject.front());
      Inject.pop_front();
    }
  }
  // 3. Steal sweep: the top (oldest) task of another worker's deque.
  if (!Task) {
    for (unsigned K = 1; K <= NumWorkers && !Task; ++K) {
      unsigned Victim = (SelfId < NumWorkers ? SelfId + K : K - 1) % NumWorkers;
      if (Victim == SelfId)
        continue;
      Worker &W = *Workers[Victim];
      std::lock_guard<std::mutex> L(W.Mu);
      if (!W.Deque.empty()) {
        Task = std::move(W.Deque.front());
        W.Deque.pop_front();
        TasksStolen.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!Task)
    return false;

  Pending.fetch_sub(1, std::memory_order_acq_rel);
  Task(); // packaged_task: exceptions land in the future, never here.
  TasksExecuted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::workerLoop(unsigned Id) {
  CurrentPool = this;
  CurrentWorkerId = Id;
  while (true) {
    if (runOne(Id))
      continue;
    std::unique_lock<std::mutex> L(InjectMu);
    if (Stopping)
      break;
    WorkCV.wait(L, [this] {
      return Stopping || Pending.load(std::memory_order_acquire) != 0;
    });
    if (Stopping)
      break;
  }
  // Shutdown drain: finish everything still queued anywhere, so
  // futures handed out before the destructor always complete.
  while (runOne(Id))
    ;
  CurrentPool = nullptr;
  CurrentWorkerId = ~0u;
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Fn,
                             unsigned MaxConcurrency,
                             SharedBudgetGate *Gate) {
  if (N == 0)
    return;
  unsigned Lanes = concurrency();
  if (MaxConcurrency && MaxConcurrency < Lanes)
    Lanes = MaxConcurrency;
  if (N < Lanes)
    Lanes = static_cast<unsigned>(N);

  if (Lanes <= 1 || NumWorkers == 0) {
    // Sequential path: a plain loop on the caller, no tasks, no
    // synchronization — byte-for-byte the pre-pool behavior.
    for (std::size_t I = 0; I != N; ++I) {
      if (Gate && Gate->stop())
        return;
      Fn(I);
    }
    return;
  }

  struct LoopState {
    std::atomic<std::size_t> Next{0};
    std::atomic<bool> Abort{false};
    std::mutex ErrMu;
    std::exception_ptr Err;
  } State;

  auto Lane = [&] {
    for (std::size_t I;
         (I = State.Next.fetch_add(1, std::memory_order_relaxed)) < N;) {
      if (State.Abort.load(std::memory_order_relaxed))
        return;
      // Task-boundary stop check: also observes the watchdog's
      // preemptive cancel flag, so a batch whose tasks never poll is
      // still cut off between indices.
      if (Gate && Gate->stop())
        return;
      try {
        Fn(I);
      } catch (...) {
        {
          std::lock_guard<std::mutex> L(State.ErrMu);
          if (!State.Err)
            State.Err = std::current_exception();
          State.Abort.store(true, std::memory_order_relaxed);
        }
        // Crash isolation: the exception cancels the remaining
        // indices through the shared gate, so sibling lanes (and any
        // stage polling the same gate) stop at their next check
        // instead of burning work for a result that will be
        // discarded. Captured per-task; rethrown once on the caller.
        if (Gate)
          Gate->cancel("exception");
        return;
      }
    }
  };

  std::vector<std::future<void>> Futures;
  Futures.reserve(Lanes - 1);
  for (unsigned W = 0; W + 1 < Lanes; ++W)
    Futures.push_back(submit(Lane));
  Lane(); // The caller is the last lane.

  // Helping wait: while a lane task is still queued (every worker
  // busy elsewhere, e.g. a nested parallelFor), the caller executes
  // queued tasks instead of blocking, so waiting can never deadlock.
  for (std::future<void> &F : Futures) {
    while (F.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!runOne(CurrentPool == this ? CurrentWorkerId : ~0u))
        F.wait_for(std::chrono::microseconds(200));
    }
    F.get(); // Lane() traps exceptions itself; this never throws.
  }

  if (State.Err)
    std::rethrow_exception(State.Err);
}
