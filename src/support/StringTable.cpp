//===-- StringTable.cpp - String interner ---------------------------------==//

#include "support/StringTable.h"

#include <cassert>

using namespace tsl;

Symbol StringTable::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  Symbol Sym = static_cast<Symbol>(Strings.size());
  Strings.emplace_back(Text);
  // Key the index by the stable heap storage of the stored string, not
  // by the caller's buffer.
  Index.emplace(std::string_view(Strings.back()), Sym);
  return Sym;
}

Symbol StringTable::lookup(std::string_view Text) const {
  auto It = Index.find(Text);
  return It == Index.end() ? 0 : It->second;
}
