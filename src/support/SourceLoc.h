//===-- SourceLoc.h - Source positions --------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source positions used to map IR statements and slice
/// results back to ThinJ source lines. Lines are what the paper's
/// evaluation counts, so every IR instruction carries a SourceLoc.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_SOURCELOC_H
#define THINSLICER_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace tsl {

/// A (line, column) position in one ThinJ source buffer. Line 0 means
/// "unknown" (compiler-synthesized code such as implicit returns).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }
  bool operator<(const SourceLoc &RHS) const {
    return Line != RHS.Line ? Line < RHS.Line : Col < RHS.Col;
  }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_SOURCELOC_H
