//===-- Status.h - Structured error model -----------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error model every pipeline boundary speaks. Library
/// code never calls exit()/abort() and never lets an exception escape
/// a module edge: failures cross boundaries as a Status (code +
/// message), and fallible producers return Expected<T> — either the
/// value or the Status explaining its absence. Exceptions remain an
/// *intra*-stage implementation detail (the ThreadPool propagates a
/// worker's exception to the stage that owns it); the stage boundary
/// — AnalysisSession, SliceEngine, the interpreter, the CLI — is
/// where they are converted. See DESIGN.md section 12 for the policy.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_STATUS_H
#define THINSLICER_SUPPORT_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace tsl {

/// Coarse failure taxonomy. The code picks the CLI exit code and the
/// retry policy (only Internal / FaultInjected stage failures are
/// retried; user errors like ParseError never are).
enum class StatusCode : unsigned char {
  Ok = 0,
  InvalidArgument,   ///< Caller error: bad seed, bad option value.
  NotFound,          ///< Missing file, missing statement at a line.
  ParseError,        ///< Source has syntax errors (diagnostics carry them).
  SemaError,         ///< Source has semantic errors.
  VerifyError,       ///< Lowered IR failed the verifier gate.
  ResourceExhausted, ///< Budget/deadline refusal (not sound degradation).
  Cancelled,         ///< Watchdog or caller cancelled the computation.
  FaultInjected,     ///< An armed chaos fault crashed the stage.
  Internal,          ///< Unexpected exception escaping a stage.
};

const char *statusCodeName(StatusCode C);

/// One failure crossing a module boundary: code + human-readable
/// message. Ok statuses are cheap (no allocation).
class Status {
public:
  Status() = default; ///< Ok.
  Status(StatusCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  static Status ok() { return Status(); }

  bool isOk() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// "parse-error: expected ';' after statement" (or "ok").
  std::string str() const;

  bool operator==(const Status &RHS) const {
    return Code == RHS.Code && Message == RHS.Message;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Message;
};

/// Value-or-Status. The result type of every fallible boundary call:
/// callers test ok() and either consume value() or propagate/report
/// status(). Deliberately minimal — no exceptions, no monadic sugar.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status S) : Err(std::move(S)) {}
  Expected(StatusCode Code, std::string Message)
      : Err(Code, std::move(Message)) {}

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Only valid when ok().
  T &value() { return *Value; }
  const T &value() const { return *Value; }
  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }

  /// Ok when the value is present.
  const Status &status() const { return Err; }

  /// The value, or \p Fallback when this holds an error.
  T valueOr(T Fallback) const { return Value ? *Value : Fallback; }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_STATUS_H
