//===-- ThreadPool.h - Shared work-stealing thread pool ---------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One work-stealing thread pool shared by every parallel analysis
/// stage (SDG intraprocedural construction, the mod-ref SCC waves,
/// the parallel-frontier points-to rounds, and the batched slice
/// engine). The pool follows the Chase-Lev deque discipline: each
/// worker owns a deque it pushes and pops at the bottom (LIFO, cache
/// warm), while idle workers steal from the top (FIFO, oldest — and
/// typically largest — subtask first). Tasks submitted from outside
/// the pool land in a shared injection queue.
///
/// Determinism contract: the pool itself makes no ordering promises —
/// parallel stages stay byte-identical across thread counts because
/// every stage splits into a pure read-only parallel phase over
/// frozen state plus a sequential merge phase on the calling thread
/// (see DESIGN.md section 11). The pool only runs the pure phases.
///
/// Budget governance is cooperative: parallelFor() takes an optional
/// SharedBudgetGate and stops handing out new indices once the gate
/// trips, so a deadline or step cap cancels the remaining queue
/// without interrupting an index mid-flight.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_THREADPOOL_H
#define THINSLICER_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tsl {

class SharedBudgetGate;

/// Work-stealing pool of `Threads - 1` worker threads; the thread
/// calling parallelFor() participates as the extra lane, so Threads
/// names the total concurrency. Threads == 1 spawns nothing and every
/// operation runs inline on the caller — the single-threaded path is
/// the plain sequential loop, with no pool machinery on it.
class ThreadPool {
public:
  /// \p Threads = total concurrency including the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains every queued task, then joins the workers: a future
  /// obtained from submit() before destruction is always satisfied.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total concurrency (workers + the participating caller).
  unsigned concurrency() const { return NumWorkers + 1; }
  /// Threads actually spawned (0 for a Threads == 1 pool).
  unsigned numWorkers() const { return NumWorkers; }

  /// Submits one task. The future rethrows anything the task threw.
  /// Called from a worker of this pool, the task goes to that
  /// worker's own deque (stealable by the others); from any other
  /// thread it goes to the shared injection queue. With no workers
  /// the task runs inline, here, before submit returns.
  template <typename F>
  auto submit(F &&Fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Fut = Task->get_future();
    schedule([Task] { (*Task)(); });
    return Fut;
  }

  /// Runs Fn(0) .. Fn(N-1), each exactly once unless cancelled,
  /// blocking until every started index finished. Indices are handed
  /// out dynamically (an atomic cursor), so imbalanced work
  /// self-balances. Runs inline on the caller — no task, no thread —
  /// when the pool has no workers, N <= 1, or MaxConcurrency <= 1.
  ///
  /// \p MaxConcurrency caps the lanes used (0 = concurrency()).
  /// \p Gate, when non-null, is checked between indices: once it is
  /// exhausted — or the budget it wraps was preemptively cancelled by
  /// the watchdog — no further index starts (indices already running
  /// finish). The first exception thrown by Fn is captured per-task,
  /// cancels the remaining indices through \p Gate (reason
  /// "exception"), and is rethrown here on the caller; the pool's
  /// workers survive and the pool stays usable.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Fn,
                   unsigned MaxConcurrency = 0,
                   SharedBudgetGate *Gate = nullptr);

  /// Tasks executed to completion (parallelFor lanes count as one
  /// task per lane).
  uint64_t tasksExecuted() const {
    return TasksExecuted.load(std::memory_order_relaxed);
  }
  /// Tasks taken from another worker's deque.
  uint64_t tasksStolen() const {
    return TasksStolen.load(std::memory_order_relaxed);
  }

private:
  struct Worker {
    std::mutex Mu;
    std::deque<std::function<void()>> Deque;
    std::thread Thread;
  };

  void schedule(std::function<void()> Task);
  void workerLoop(unsigned Id);

  /// Dequeues and runs one task — own deque bottom, then the
  /// injection queue, then a steal sweep — and returns true; false
  /// when every queue was empty. \p SelfId is ~0u for non-worker
  /// threads (helpers waiting in parallelFor).
  bool runOne(unsigned SelfId);

  unsigned NumWorkers = 0;
  std::vector<std::unique_ptr<Worker>> Workers;

  std::mutex InjectMu; ///< Guards Inject and the sleep protocol.
  std::condition_variable WorkCV;
  std::deque<std::function<void()>> Inject;
  /// Tasks sitting in any queue (injection + every deque). The CV
  /// predicate, so a worker never sleeps through a push to a deque it
  /// could steal from.
  std::atomic<std::size_t> Pending{0};
  bool Stopping = false; ///< Guarded by InjectMu.

  std::atomic<uint64_t> TasksExecuted{0};
  std::atomic<uint64_t> TasksStolen{0};
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_THREADPOOL_H
