//===-- Budget.h - Analysis budgets and sound degradation -------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the analysis pipeline. Every long-running
/// fixed-point loop (Andersen solver, ModRef closure, SDG
/// construction, slicing, expansion, interpretation) polls a
/// BudgetGate cooperatively; when the caller-supplied AnalysisBudget
/// is exhausted the stage stops early and falls back to a *sound*
/// over- or under-approximation tagged StageStatus::Degraded, instead
/// of hanging or exhausting memory. See DESIGN.md section 8 for the
/// per-stage fallbacks and their soundness arguments.
///
/// On top of the cooperative polling sits *preemptive* cancellation:
/// AnalysisBudget carries an atomic cancel flag a Watchdog (see
/// support/Watchdog.h) sets when the wall-clock deadline passes. Every
/// gate poll and every ThreadPool task boundary observes the flag, so
/// a stage that miscounts its steps — or stalls without reading the
/// clock — is still stopped at its next poll or task edge and degrades
/// through the same sound-fallback path, tagged "watchdog".
///
/// A deterministic FaultInjector rides along: named fault points
/// (one per gated loop) can be armed via TSL_FAULT or `thinslice
/// --fault` to force each failure branch in tests, rather than
/// hoping a workload happens to exhaust a real budget. Faults come in
/// three kinds — Degrade (the gate trips, forcing the stage's sound
/// fallback), Throw (the gate raises FaultInjectedError, simulating a
/// stage crash the session must isolate and retry), and Stall (the
/// gate stops making progress, simulating a stuck stage the watchdog
/// must rescue) — can be transient (disarm after firing once, so a
/// retry succeeds), and can be armed wholesale from a seeded
/// probabilistic schedule ("rand:<seed>") replayed by the chaos suite.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_BUDGET_H
#define THINSLICER_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsl {

/// Resource limits shared by every stage of one pipeline run. A zero
/// field means "unlimited"; a default-constructed budget (or a null
/// budget pointer, the default everywhere) imposes no limits at all,
/// keeping the unbudgeted path byte-identical to previous releases.
struct AnalysisBudget {
  /// Wall-clock deadline for the whole pipeline, from start().
  uint64_t BudgetMs = 0;

  uint64_t MaxPtaPropagations = 0; ///< Andersen propagation cap.
  uint64_t MaxModRefSteps = 0;     ///< ModRef closure worklist pops.
  uint64_t MaxSdgNodes = 0;        ///< SDG statement-node cap.
  uint64_t MaxSdgEdges = 0;        ///< Precise heap-edge work cap.
  uint64_t MaxSlicePops = 0;       ///< Slice/tabulation worklist pops.
  uint64_t MaxExpansionRounds = 0; ///< Thin-expansion fixpoint rounds.
  uint64_t MaxInterpSteps = 0;     ///< Interpreter step cap.

  AnalysisBudget() = default;
  /// Copies carry the limits and the current cancel state (the flag
  /// is atomic, which deletes the defaulted copy operations).
  AnalysisBudget(const AnalysisBudget &O) { *this = O; }
  AnalysisBudget &operator=(const AnalysisBudget &O);

  /// Starts the wall clock. Until this is called the deadline never
  /// expires; step caps apply regardless. Also clears a previous
  /// watchdog cancellation, so one budget can govern several runs.
  void start() {
    Start = std::chrono::steady_clock::now();
    Started = true;
    CancelFlag.store(false, std::memory_order_release);
  }

  bool deadlineExpired() const;
  double elapsedSeconds() const;

  /// Preemptive cancellation (the watchdog path): sets a flag every
  /// gate poll and every pool task boundary observes. Safe from any
  /// thread; const because cancellation is an observer-side signal,
  /// not a change to the limits.
  void cancel() const { CancelFlag.store(true, std::memory_order_release); }
  bool cancelled() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  std::chrono::steady_clock::time_point Start{};
  bool Started = false;
  mutable std::atomic<bool> CancelFlag{false};
};

/// Outcome of one pipeline stage.
enum class StageStatus {
  Complete, ///< Ran to its natural fixed point.
  Degraded, ///< Budget exhausted; result is a sound fallback.
};

/// Status report of one stage, the pipeline-level sibling of the
/// solver-level SolverStats counters.
struct StageReport {
  std::string Stage;    ///< "pta", "modref", "sdg", "slice", "interp".
  StageStatus Status = StageStatus::Complete;
  std::string Reason;   ///< Why it degraded: "deadline", "step-cap",
                        ///< "watchdog", "fault:<p>", "exception:<what>".
  std::string Fallback; ///< The sound fallback the stage switched to.
  uint64_t StepsUsed = 0; ///< Work units consumed (stage-specific).
  double Seconds = 0;     ///< Wall time spent in the stage.

  /// Session memoization telemetry (see pipeline/Session.h): how often
  /// this stage's artifact was served from the session cache, computed
  /// fresh, or purged by an invalidation. All zero outside a session;
  /// not rendered by str() (governed one-shot output is byte-stable) —
  /// AnalysisSession::statsString() formats them.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheInvalidated = 0;

  bool degraded() const { return Status == StageStatus::Degraded; }
  std::string str() const;
};

/// Per-stage reports of one pipeline run, in execution order.
struct PipelineStatus {
  std::vector<StageReport> Stages;

  void add(StageReport R) { Stages.push_back(std::move(R)); }
  bool complete() const;
  const StageReport *find(const std::string &Stage) const;
  std::string str() const;
};

/// Raised by a gate whose fault point is armed with FaultKind::Throw:
/// the deterministic stand-in for "this stage crashed" in the chaos
/// suite. It must never escape a stage boundary — the AnalysisSession
/// (and the SliceEngine's per-query isolation) convert it to a Status
/// / degraded result and keep the process alive.
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Point)
      : std::runtime_error("injected fault at " + Point), Pt(Point) {}
  const std::string &point() const { return Pt; }

private:
  std::string Pt;
};

/// How an armed fault manifests when it fires.
enum class FaultKind : unsigned char {
  Degrade, ///< Gate trips -> the stage takes its sound-fallback path.
  Throw,   ///< Gate raises FaultInjectedError -> stage "crashes".
  Stall,   ///< Gate stops progressing -> the watchdog must rescue.
};

/// Deterministic fault injection: each BudgetGate names a fault
/// point; arming a point (via TSL_FAULT or armFromSpec) makes the
/// gate report exhaustion at a chosen poll, forcing the stage down
/// its degradation path. A spec is a comma-separated list of points,
/// each optionally suffixed `:N` (fire at the Nth poll, default 1),
/// `:throw` / `:stall` (fault kind), and/or `:once` (transient:
/// disarm after firing, so a retry succeeds); the word `all` arms
/// every point; `rand:<seed>` arms a seeded probabilistic schedule
/// over all points (the chaos-suite format — identical seed, identical
/// schedule, on every platform). All members are guarded by one
/// mutex: gates are constructed on stage-calling threads while
/// workers of another stage may be recording fired points.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Every fault point compiled into the pipeline; tests assert each
  /// one fires at least once across the suite.
  static const std::vector<std::string> &knownPoints();

  /// What query() hands a constructing gate: fire-at poll (0 = not
  /// armed) plus the armed kind.
  struct ArmedFault {
    uint64_t AtPoll = 0;
    FaultKind Kind = FaultKind::Degrade;
  };

  /// Disarms all points and clears coverage counters.
  void reset();

  /// Arms \p Point to fire at poll number \p AtPoll (1 = first poll)
  /// with kind \p Kind; \p Transient disarms the point when it fires.
  void arm(const std::string &Point, uint64_t AtPoll = 1,
           FaultKind Kind = FaultKind::Degrade, bool Transient = false);

  /// Parses and arms a spec: "slice.pop,pta.solve:100",
  /// "pta.solve:throw:once", "sdg.clones:stall", "all", or
  /// "rand:<seed>". Returns false (arming nothing further) on an
  /// unknown point name or malformed suffix.
  bool armFromSpec(const std::string &Spec);

  /// Arms a deterministic pseudo-random schedule derived from \p Seed:
  /// each known point is independently armed with probability ~1/3,
  /// with pseudo-random fire-at poll, kind, and transience. The chaos
  /// suite replays thousands of these.
  void armRandomSchedule(uint64_t Seed);

  /// Stall faults busy-wait (checking the budget's cancel flag) for at
  /// most this long before giving up and tripping; tests shrink it so
  /// un-rescued stalls stay fast. Default 100.
  void setStallCapMs(uint64_t Ms);
  uint64_t stallCapMs() const;

  /// Called once per BudgetGate at construction: records that the
  /// point was reached and returns the armed fault (AtPoll 0 = not
  /// armed).
  ArmedFault query(const std::string &Point);

  /// Called by the gate when an armed point actually fires. Transient
  /// faults are disarmed here — the next gate on this point runs
  /// clean, which is what the session's bounded retry relies on.
  void recordFired(const std::string &Point);

  std::set<std::string> reached() const;
  std::set<std::string> fired() const;
  /// Total number of fault firings, monotonically increasing — unlike
  /// fired(), it grows when the SAME point fires again, which is what
  /// the session's taint detection samples around each stage compute.
  uint64_t firedCount() const;
  bool anyArmed() const;

private:
  FaultInjector(); ///< Arms from the TSL_FAULT environment variable.

  struct Arming {
    uint64_t AtPoll = 1;
    FaultKind Kind = FaultKind::Degrade;
    bool Transient = false;
  };

  mutable std::mutex Mu;
  std::map<std::string, Arming> Armed;
  std::set<std::string> Reached;
  std::set<std::string> Fired;
  uint64_t FireCount = 0;
  uint64_t StallCapMs = 100;
};

/// Poll point of one gated loop. The loop calls spend()/poll() with
/// its work counter; once the gate trips — step cap exceeded,
/// deadline expired, watchdog cancellation observed, or armed fault
/// fired — it stays exhausted and the stage must stop and degrade.
/// With a null budget and no armed fault a poll is a few arithmetic
/// instructions. A Throw-kind fault makes poll() raise
/// FaultInjectedError instead of returning.
class BudgetGate {
public:
  /// \p StepCap is this stage's cap from the budget (0 = uncapped);
  /// \p Point names the fault point for this loop.
  BudgetGate(const AnalysisBudget *Budget, const char *Point,
             uint64_t StepCap)
      : B(Budget), Point(Point), StepCap(StepCap),
        Fault(FaultInjector::instance().query(Point)) {}

  /// Polls with the stage's own work counter; returns true once the
  /// stage must stop (sticky).
  bool poll(uint64_t StepsUsed) {
    if (Exhausted)
      return true;
    Used = StepsUsed;
    ++Polls;
    if (Fault.AtPoll && Polls >= Fault.AtPoll) {
      fire();
    } else if (StepCap && StepsUsed > StepCap) {
      trip("step-cap");
    } else if (B && B->cancelled()) {
      trip("watchdog");
    } else if (B && B->BudgetMs && (Polls & DeadlinePollMask) == 0 &&
               B->deadlineExpired()) {
      trip("deadline");
    }
    return Exhausted;
  }

  /// Convenience for loops without their own counter: counts \p N
  /// steps and polls.
  bool spend(uint64_t N = 1) { return poll(Used + N); }

  bool exhausted() const { return Exhausted; }
  const std::string &reason() const { return Reason; }
  uint64_t used() const { return Used; }

private:
  void fire(); ///< The armed fault fires: degrade, throw, or stall.
  void trip(std::string Why) {
    Exhausted = true;
    Reason = std::move(Why);
  }

  /// The deadline is checked every 64 polls so a hot loop does not
  /// read the clock on every iteration.
  static constexpr uint64_t DeadlinePollMask = 63;

  const AnalysisBudget *B;
  const char *Point;
  uint64_t StepCap;
  FaultInjector::ArmedFault Fault;
  uint64_t Used = 0;
  uint64_t Polls = 0;
  bool Exhausted = false;
  std::string Reason;
};

/// Thread-safe sibling of BudgetGate for worker pools: one gate is
/// shared by every worker of a batch, so the step cap (and armed
/// fault) governs the batch's *total* work rather than each query's.
/// Construction — which registers the fault point with the injector —
/// must happen before workers start; spend() is safe from any thread
/// (an atomic add plus occasional deadline reads). For an armed fault
/// the gate fires once the batch-wide step count reaches the
/// configured poll number; a Throw-kind fault raises
/// FaultInjectedError in whichever worker crossed the threshold
/// (crash isolation in ThreadPool::parallelFor contains it).
class SharedBudgetGate {
public:
  SharedBudgetGate(const AnalysisBudget *Budget, const char *Point,
                   uint64_t StepCap)
      : B(Budget), Point(Point), StepCap(StepCap),
        Fault(FaultInjector::instance().query(Point)) {}

  /// Counts \p N steps against the shared pool; returns true once the
  /// batch must stop (sticky).
  bool spend(uint64_t N = 1) {
    if (Tripped.load(std::memory_order_relaxed))
      return true;
    uint64_t U = Used.fetch_add(N, std::memory_order_relaxed) + N;
    if (Fault.AtPoll && U >= Fault.AtPoll)
      fire();
    else if (StepCap && U > StepCap)
      trip("step-cap", false);
    else if (B && B->cancelled())
      trip("watchdog", false);
    else if (B && B->BudgetMs && (U & DeadlineCheckMask) == 0 &&
             B->deadlineExpired())
      trip("deadline", false);
    return Tripped.load(std::memory_order_relaxed);
  }

  /// External cancellation: trips the gate with \p Why so every worker
  /// polling it stops at its next spend. Used by
  /// ThreadPool::parallelFor when one lane throws (the exception
  /// cancels the remaining indices) and available to any stage that
  /// must abandon a batch.
  void cancel(const std::string &Why) { trip(Why, false); }

  /// Task-boundary check for the pool: true once the batch must stop,
  /// observing the budget's preemptive cancel flag even when no worker
  /// has spent since the watchdog set it — this is what stops a batch
  /// whose tasks never poll.
  bool stop() {
    if (Tripped.load(std::memory_order_relaxed))
      return true;
    if (B && B->cancelled()) {
      trip("watchdog", false);
      return true;
    }
    return false;
  }

  bool exhausted() const { return Tripped.load(std::memory_order_acquire); }
  std::string reason() const {
    std::lock_guard<std::mutex> L(Mu);
    return Reason;
  }
  uint64_t used() const { return Used.load(std::memory_order_relaxed); }

private:
  void fire(); ///< The armed fault fires: degrade, throw, or stall.
  void trip(std::string Why, bool RecordFault);

  /// The deadline is read every 64 steps so hot loops do not hit the
  /// clock on every pop.
  static constexpr uint64_t DeadlineCheckMask = 63;

  const AnalysisBudget *B;
  const char *Point;
  uint64_t StepCap;
  FaultInjector::ArmedFault Fault;
  std::atomic<uint64_t> Used{0};
  std::atomic<bool> Tripped{false};
  mutable std::mutex Mu;
  std::string Reason;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_BUDGET_H
