//===-- Budget.h - Analysis budgets and sound degradation -------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the analysis pipeline. Every long-running
/// fixed-point loop (Andersen solver, ModRef closure, SDG
/// construction, slicing, expansion, interpretation) polls a
/// BudgetGate cooperatively; when the caller-supplied AnalysisBudget
/// is exhausted the stage stops early and falls back to a *sound*
/// over- or under-approximation tagged StageStatus::Degraded, instead
/// of hanging or exhausting memory. See DESIGN.md section 8 for the
/// per-stage fallbacks and their soundness arguments.
///
/// A deterministic FaultInjector rides along: named fault points
/// (one per gated loop) can be armed via TSL_FAULT or `thinslice
/// --fault` to force each degradation branch in tests, rather than
/// hoping a workload happens to exhaust a real budget.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_BUDGET_H
#define THINSLICER_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace tsl {

/// Resource limits shared by every stage of one pipeline run. A zero
/// field means "unlimited"; a default-constructed budget (or a null
/// budget pointer, the default everywhere) imposes no limits at all,
/// keeping the unbudgeted path byte-identical to previous releases.
struct AnalysisBudget {
  /// Wall-clock deadline for the whole pipeline, from start().
  uint64_t BudgetMs = 0;

  uint64_t MaxPtaPropagations = 0; ///< Andersen propagation cap.
  uint64_t MaxModRefSteps = 0;     ///< ModRef closure worklist pops.
  uint64_t MaxSdgNodes = 0;        ///< SDG statement-node cap.
  uint64_t MaxSdgEdges = 0;        ///< Precise heap-edge work cap.
  uint64_t MaxSlicePops = 0;       ///< Slice/tabulation worklist pops.
  uint64_t MaxExpansionRounds = 0; ///< Thin-expansion fixpoint rounds.
  uint64_t MaxInterpSteps = 0;     ///< Interpreter step cap.

  /// Starts the wall clock. Until this is called the deadline never
  /// expires; step caps apply regardless.
  void start() {
    Start = std::chrono::steady_clock::now();
    Started = true;
  }

  bool deadlineExpired() const;
  double elapsedSeconds() const;

  std::chrono::steady_clock::time_point Start{};
  bool Started = false;
};

/// Outcome of one pipeline stage.
enum class StageStatus {
  Complete, ///< Ran to its natural fixed point.
  Degraded, ///< Budget exhausted; result is a sound fallback.
};

/// Status report of one stage, the pipeline-level sibling of the
/// solver-level SolverStats counters.
struct StageReport {
  std::string Stage;    ///< "pta", "modref", "sdg", "slice", "interp".
  StageStatus Status = StageStatus::Complete;
  std::string Reason;   ///< Why it degraded: "deadline", "step-cap", "fault:<p>".
  std::string Fallback; ///< The sound fallback the stage switched to.
  uint64_t StepsUsed = 0; ///< Work units consumed (stage-specific).
  double Seconds = 0;     ///< Wall time spent in the stage.

  /// Session memoization telemetry (see pipeline/Session.h): how often
  /// this stage's artifact was served from the session cache, computed
  /// fresh, or purged by an invalidation. All zero outside a session;
  /// not rendered by str() (governed one-shot output is byte-stable) —
  /// AnalysisSession::statsString() formats them.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheInvalidated = 0;

  bool degraded() const { return Status == StageStatus::Degraded; }
  std::string str() const;
};

/// Per-stage reports of one pipeline run, in execution order.
struct PipelineStatus {
  std::vector<StageReport> Stages;

  void add(StageReport R) { Stages.push_back(std::move(R)); }
  bool complete() const;
  const StageReport *find(const std::string &Stage) const;
  std::string str() const;
};

/// Deterministic fault injection: each BudgetGate names a fault
/// point; arming a point (via TSL_FAULT or armFromSpec) makes the
/// gate report exhaustion at a chosen poll, forcing the stage down
/// its degradation path. A spec is a comma-separated list of points,
/// each optionally suffixed `:N` to fire at the Nth poll (default 1),
/// or the word `all`.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Every fault point compiled into the pipeline; tests assert each
  /// one fires at least once across the suite.
  static const std::vector<std::string> &knownPoints();

  /// Disarms all points and clears coverage counters.
  void reset();

  /// Arms \p Point to fire at poll number \p AtPoll (1 = first poll).
  void arm(const std::string &Point, uint64_t AtPoll = 1);

  /// Parses and arms a spec: "slice.pop,pta.solve:100" or "all".
  /// Returns false (arming nothing further) on an unknown point name.
  bool armFromSpec(const std::string &Spec);

  /// Called once per BudgetGate at construction: records that the
  /// point was reached and returns the poll number it should fire at
  /// (0 = not armed).
  uint64_t query(const std::string &Point);

  /// Called by the gate when an armed point actually fires.
  void recordFired(const std::string &Point);

  const std::set<std::string> &reached() const { return Reached; }
  const std::set<std::string> &fired() const { return Fired; }
  bool anyArmed() const { return !Armed.empty(); }

private:
  FaultInjector(); ///< Arms from the TSL_FAULT environment variable.

  std::map<std::string, uint64_t> Armed; ///< point -> fire-at poll.
  std::set<std::string> Reached;
  std::set<std::string> Fired;
};

/// Poll point of one gated loop. The loop calls spend()/poll() with
/// its work counter; once the gate trips — step cap exceeded,
/// deadline expired, or armed fault fired — it stays exhausted and
/// the stage must stop and degrade. With a null budget and no armed
/// fault a poll is a few arithmetic instructions.
class BudgetGate {
public:
  /// \p StepCap is this stage's cap from the budget (0 = uncapped);
  /// \p Point names the fault point for this loop.
  BudgetGate(const AnalysisBudget *Budget, const char *Point,
             uint64_t StepCap)
      : B(Budget), Point(Point), StepCap(StepCap),
        FaultAtPoll(FaultInjector::instance().query(Point)) {}

  /// Polls with the stage's own work counter; returns true once the
  /// stage must stop (sticky).
  bool poll(uint64_t StepsUsed) {
    if (Exhausted)
      return true;
    Used = StepsUsed;
    ++Polls;
    if (FaultAtPoll && Polls >= FaultAtPoll) {
      trip(std::string("fault:") + Point);
      FaultInjector::instance().recordFired(Point);
    } else if (StepCap && StepsUsed > StepCap) {
      trip("step-cap");
    } else if (B && B->BudgetMs && (Polls & DeadlinePollMask) == 0 &&
               B->deadlineExpired()) {
      trip("deadline");
    }
    return Exhausted;
  }

  /// Convenience for loops without their own counter: counts \p N
  /// steps and polls.
  bool spend(uint64_t N = 1) { return poll(Used + N); }

  bool exhausted() const { return Exhausted; }
  const std::string &reason() const { return Reason; }
  uint64_t used() const { return Used; }

private:
  void trip(std::string Why) {
    Exhausted = true;
    Reason = std::move(Why);
  }

  /// The deadline is checked every 64 polls so a hot loop does not
  /// read the clock on every iteration.
  static constexpr uint64_t DeadlinePollMask = 63;

  const AnalysisBudget *B;
  const char *Point;
  uint64_t StepCap;
  uint64_t FaultAtPoll;
  uint64_t Used = 0;
  uint64_t Polls = 0;
  bool Exhausted = false;
  std::string Reason;
};

/// Thread-safe sibling of BudgetGate for worker pools: one gate is
/// shared by every worker of a batch, so the step cap (and armed
/// fault) governs the batch's *total* work rather than each query's.
/// Construction — which registers the fault point with the injector —
/// must happen before workers start; spend() is safe from any thread
/// (an atomic add plus occasional deadline reads). For an armed fault
/// the gate fires once the batch-wide step count reaches the
/// configured poll number.
class SharedBudgetGate {
public:
  SharedBudgetGate(const AnalysisBudget *Budget, const char *Point,
                   uint64_t StepCap)
      : B(Budget), Point(Point), StepCap(StepCap),
        FaultAtPoll(FaultInjector::instance().query(Point)) {}

  /// Counts \p N steps against the shared pool; returns true once the
  /// batch must stop (sticky).
  bool spend(uint64_t N = 1) {
    if (Tripped.load(std::memory_order_relaxed))
      return true;
    uint64_t U = Used.fetch_add(N, std::memory_order_relaxed) + N;
    if (FaultAtPoll && U >= FaultAtPoll)
      trip(std::string("fault:") + Point, /*RecordFault=*/true);
    else if (StepCap && U > StepCap)
      trip("step-cap", false);
    else if (B && B->BudgetMs && (U & DeadlineCheckMask) == 0 &&
             B->deadlineExpired())
      trip("deadline", false);
    return Tripped.load(std::memory_order_relaxed);
  }

  bool exhausted() const { return Tripped.load(std::memory_order_acquire); }
  std::string reason() const {
    std::lock_guard<std::mutex> L(Mu);
    return Reason;
  }
  uint64_t used() const { return Used.load(std::memory_order_relaxed); }

private:
  void trip(std::string Why, bool RecordFault);

  /// The deadline is read every 64 steps so hot loops do not hit the
  /// clock on every pop.
  static constexpr uint64_t DeadlineCheckMask = 63;

  const AnalysisBudget *B;
  const char *Point;
  uint64_t StepCap;
  uint64_t FaultAtPoll;
  std::atomic<uint64_t> Used{0};
  std::atomic<bool> Tripped{false};
  mutable std::mutex Mu;
  std::string Reason;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_BUDGET_H
