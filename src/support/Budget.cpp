//===-- Budget.cpp - Analysis budgets and sound degradation ---------------===//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace tsl;

AnalysisBudget &AnalysisBudget::operator=(const AnalysisBudget &O) {
  if (this == &O)
    return *this;
  BudgetMs = O.BudgetMs;
  MaxPtaPropagations = O.MaxPtaPropagations;
  MaxModRefSteps = O.MaxModRefSteps;
  MaxSdgNodes = O.MaxSdgNodes;
  MaxSdgEdges = O.MaxSdgEdges;
  MaxSlicePops = O.MaxSlicePops;
  MaxExpansionRounds = O.MaxExpansionRounds;
  MaxInterpSteps = O.MaxInterpSteps;
  Start = O.Start;
  Started = O.Started;
  CancelFlag.store(O.cancelled(), std::memory_order_release);
  return *this;
}

bool AnalysisBudget::deadlineExpired() const {
  if (!BudgetMs || !Started)
    return false;
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  return Elapsed >= std::chrono::milliseconds(BudgetMs);
}

double AnalysisBudget::elapsedSeconds() const {
  if (!Started)
    return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string StageReport::str() const {
  std::ostringstream OS;
  OS << Stage << ": ";
  if (Status == StageStatus::Complete) {
    OS << "complete";
  } else {
    OS << "degraded (" << Reason;
    if (!Fallback.empty())
      OS << " -> " << Fallback;
    OS << ")";
  }
  OS << " steps=" << StepsUsed;
  char Buf[32];
  snprintf(Buf, sizeof(Buf), " time=%.3fs", Seconds);
  OS << Buf;
  return OS.str();
}

bool PipelineStatus::complete() const {
  return std::all_of(Stages.begin(), Stages.end(),
                     [](const StageReport &R) { return !R.degraded(); });
}

const StageReport *PipelineStatus::find(const std::string &Stage) const {
  for (const StageReport &R : Stages)
    if (R.Stage == Stage)
      return &R;
  return nullptr;
}

std::string PipelineStatus::str() const {
  std::ostringstream OS;
  OS << "pipeline: " << (complete() ? "complete" : "degraded") << "\n";
  for (const StageReport &R : Stages)
    OS << "  " << R.str() << "\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

const std::vector<std::string> &FaultInjector::knownPoints() {
  static const std::vector<std::string> Points = {
      "pta.solve",     "modref.closure",     "sdg.clones",
      "sdg.heap",      "slice.pop",          "tabulation.summary",
      "expand.round",  "interp.step",        "interp.output",
      "pta.update",    "modref.update",      "sdg.patch",
      "snapshot.load",
  };
  return Points;
}

FaultInjector::FaultInjector() {
  if (const char *Spec = std::getenv("TSL_FAULT"))
    armFromSpec(Spec);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Armed.clear();
  Reached.clear();
  Fired.clear();
  FireCount = 0;
}

void FaultInjector::arm(const std::string &Point, uint64_t AtPoll,
                        FaultKind Kind, bool Transient) {
  std::lock_guard<std::mutex> L(Mu);
  Armed[Point] = {AtPoll ? AtPoll : 1, Kind, Transient};
}

void FaultInjector::setStallCapMs(uint64_t Ms) {
  std::lock_guard<std::mutex> L(Mu);
  StallCapMs = Ms ? Ms : 1;
}

uint64_t FaultInjector::stallCapMs() const {
  std::lock_guard<std::mutex> L(Mu);
  return StallCapMs;
}

namespace {

/// splitmix64: tiny, stable, and identical on every platform — the
/// requirement for replayable chaos schedules.
uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

} // namespace

void FaultInjector::armRandomSchedule(uint64_t Seed) {
  uint64_t State = Seed * 0x2545f4914f6cdd1dull + 1;
  for (const std::string &Point : knownPoints()) {
    uint64_t R = splitmix64(State);
    if (R % 3 != 0) // ~1/3 of the points armed per schedule.
      continue;
    uint64_t AtPoll = 1 + (splitmix64(State) % 40);
    uint64_t K = splitmix64(State) % 100;
    // Degrade-heavy mix: crashes and stalls are the rarer real events.
    FaultKind Kind = K < 50   ? FaultKind::Degrade
                     : K < 85 ? FaultKind::Throw
                              : FaultKind::Stall;
    bool Transient = (splitmix64(State) & 1) != 0;
    arm(Point, AtPoll, Kind, Transient);
  }
}

bool FaultInjector::armFromSpec(const std::string &Spec) {
  if (Spec == "all") {
    for (const std::string &P : knownPoints())
      arm(P);
    return true;
  }
  if (Spec.rfind("rand:", 0) == 0) {
    char *End = nullptr;
    uint64_t Seed = std::strtoull(Spec.c_str() + 5, &End, 10);
    if (!End || *End != '\0')
      return false;
    armRandomSchedule(Seed);
    return true;
  }
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;
    // point[:N][:throw|:stall][:once] — suffixes in any order.
    uint64_t AtPoll = 1;
    FaultKind Kind = FaultKind::Degrade;
    bool Transient = false;
    while (true) {
      size_t Colon = Item.rfind(':');
      if (Colon == std::string::npos)
        break;
      std::string Suffix = Item.substr(Colon + 1);
      if (Suffix == "throw")
        Kind = FaultKind::Throw;
      else if (Suffix == "stall")
        Kind = FaultKind::Stall;
      else if (Suffix == "once")
        Transient = true;
      else if (!Suffix.empty() &&
               Suffix.find_first_not_of("0123456789") == std::string::npos)
        AtPoll = std::strtoull(Suffix.c_str(), nullptr, 10);
      else
        return false;
      Item.resize(Colon);
    }
    const std::vector<std::string> &Known = knownPoints();
    if (std::find(Known.begin(), Known.end(), Item) == Known.end())
      return false;
    arm(Item, AtPoll, Kind, Transient);
  }
  return true;
}

FaultInjector::ArmedFault FaultInjector::query(const std::string &Point) {
  std::lock_guard<std::mutex> L(Mu);
  Reached.insert(Point);
  auto It = Armed.find(Point);
  if (It == Armed.end())
    return {};
  return {It->second.AtPoll, It->second.Kind};
}

void FaultInjector::recordFired(const std::string &Point) {
  std::lock_guard<std::mutex> L(Mu);
  Fired.insert(Point);
  ++FireCount;
  auto It = Armed.find(Point);
  if (It != Armed.end() && It->second.Transient)
    Armed.erase(It);
}

uint64_t FaultInjector::firedCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return FireCount;
}

std::set<std::string> FaultInjector::reached() const {
  std::lock_guard<std::mutex> L(Mu);
  return Reached;
}

std::set<std::string> FaultInjector::fired() const {
  std::lock_guard<std::mutex> L(Mu);
  return Fired;
}

bool FaultInjector::anyArmed() const {
  std::lock_guard<std::mutex> L(Mu);
  return !Armed.empty();
}

//===----------------------------------------------------------------------===//
// Gates: armed-fault firing
//===----------------------------------------------------------------------===//

namespace {

/// A Stall fault's wait loop: no progress until the watchdog cancels
/// the budget (or the bounded cap expires, so un-governed tests cannot
/// hang). Returns true when rescued by cancellation.
bool stallUntilCancelled(const AnalysisBudget *B) {
  const uint64_t CapMs = FaultInjector::instance().stallCapMs();
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(CapMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (B && B->cancelled())
      return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return B && B->cancelled();
}

} // namespace

void BudgetGate::fire() {
  FaultInjector::instance().recordFired(Point);
  switch (Fault.Kind) {
  case FaultKind::Degrade:
    trip(std::string("fault:") + Point);
    break;
  case FaultKind::Throw:
    // Disarm locally so a catch-and-repoll caller is not re-thrown at.
    Fault.AtPoll = 0;
    Exhausted = true;
    Reason = std::string("fault:") + Point;
    throw FaultInjectedError(Point);
  case FaultKind::Stall:
    trip(stallUntilCancelled(B) ? "watchdog"
                                : std::string("fault:") + Point);
    break;
  }
}

void SharedBudgetGate::fire() {
  // First crossing wins: record + decide under the mutex, so exactly
  // one worker throws while the rest see the gate tripped.
  bool IThrow = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Tripped.load(std::memory_order_relaxed))
      return;
    FaultInjector::instance().recordFired(Point);
    Reason = std::string("fault:") + Point;
    if (Fault.Kind == FaultKind::Throw)
      IThrow = true;
    if (Fault.Kind != FaultKind::Stall)
      Tripped.store(true, std::memory_order_release);
  }
  switch (Fault.Kind) {
  case FaultKind::Degrade:
    break;
  case FaultKind::Throw:
    if (IThrow)
      throw FaultInjectedError(Point);
    break;
  case FaultKind::Stall: {
    bool Rescued = stallUntilCancelled(B);
    std::lock_guard<std::mutex> L(Mu);
    if (!Tripped.load(std::memory_order_relaxed)) {
      Reason = Rescued ? "watchdog" : std::string("fault:") + Point;
      Tripped.store(true, std::memory_order_release);
    }
    break;
  }
  }
}

void SharedBudgetGate::trip(std::string Why, bool RecordFault) {
  std::lock_guard<std::mutex> L(Mu);
  if (Tripped.load(std::memory_order_relaxed))
    return; // First tripper wins; the reason stays stable.
  Reason = std::move(Why);
  if (RecordFault)
    FaultInjector::instance().recordFired(Point);
  Tripped.store(true, std::memory_order_release);
}
