//===-- Budget.cpp - Analysis budgets and sound degradation ---------------===//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

using namespace tsl;

bool AnalysisBudget::deadlineExpired() const {
  if (!BudgetMs || !Started)
    return false;
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  return Elapsed >= std::chrono::milliseconds(BudgetMs);
}

double AnalysisBudget::elapsedSeconds() const {
  if (!Started)
    return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string StageReport::str() const {
  std::ostringstream OS;
  OS << Stage << ": ";
  if (Status == StageStatus::Complete) {
    OS << "complete";
  } else {
    OS << "degraded (" << Reason;
    if (!Fallback.empty())
      OS << " -> " << Fallback;
    OS << ")";
  }
  OS << " steps=" << StepsUsed;
  char Buf[32];
  snprintf(Buf, sizeof(Buf), " time=%.3fs", Seconds);
  OS << Buf;
  return OS.str();
}

bool PipelineStatus::complete() const {
  return std::all_of(Stages.begin(), Stages.end(),
                     [](const StageReport &R) { return !R.degraded(); });
}

const StageReport *PipelineStatus::find(const std::string &Stage) const {
  for (const StageReport &R : Stages)
    if (R.Stage == Stage)
      return &R;
  return nullptr;
}

std::string PipelineStatus::str() const {
  std::ostringstream OS;
  OS << "pipeline: " << (complete() ? "complete" : "degraded") << "\n";
  for (const StageReport &R : Stages)
    OS << "  " << R.str() << "\n";
  return OS.str();
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

const std::vector<std::string> &FaultInjector::knownPoints() {
  static const std::vector<std::string> Points = {
      "pta.solve",     "modref.closure",     "sdg.clones",
      "sdg.heap",      "slice.pop",          "tabulation.summary",
      "expand.round",  "interp.step",        "interp.output",
  };
  return Points;
}

FaultInjector::FaultInjector() {
  if (const char *Spec = std::getenv("TSL_FAULT"))
    armFromSpec(Spec);
}

void FaultInjector::reset() {
  Armed.clear();
  Reached.clear();
  Fired.clear();
}

void FaultInjector::arm(const std::string &Point, uint64_t AtPoll) {
  Armed[Point] = AtPoll ? AtPoll : 1;
}

bool FaultInjector::armFromSpec(const std::string &Spec) {
  if (Spec == "all") {
    for (const std::string &P : knownPoints())
      arm(P);
    return true;
  }
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;
    uint64_t AtPoll = 1;
    if (size_t Colon = Item.find(':'); Colon != std::string::npos) {
      AtPoll = std::strtoull(Item.c_str() + Colon + 1, nullptr, 10);
      Item.resize(Colon);
    }
    const std::vector<std::string> &Known = knownPoints();
    if (std::find(Known.begin(), Known.end(), Item) == Known.end())
      return false;
    arm(Item, AtPoll);
  }
  return true;
}

uint64_t FaultInjector::query(const std::string &Point) {
  Reached.insert(Point);
  auto It = Armed.find(Point);
  return It == Armed.end() ? 0 : It->second;
}

void FaultInjector::recordFired(const std::string &Point) {
  Fired.insert(Point);
}

void SharedBudgetGate::trip(std::string Why, bool RecordFault) {
  std::lock_guard<std::mutex> L(Mu);
  if (Tripped.load(std::memory_order_relaxed))
    return; // First tripper wins; the reason stays stable.
  Reason = std::move(Why);
  if (RecordFault)
    FaultInjector::instance().recordFired(Point);
  Tripped.store(true, std::memory_order_release);
}
