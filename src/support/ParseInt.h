//===-- ParseInt.h - Strict numeric parsing ---------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict decimal parsing shared by the CLI and anything else that
/// turns user-typed text into counts. atoi-style silent acceptance of
/// "abc" (as 0) turned typos into "no seed"; these reject anything
/// that is not exactly a decimal integer of the requested shape.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_PARSEINT_H
#define THINSLICER_SUPPORT_PARSEINT_H

#include <cstdint>
#include <string>

namespace tsl {

/// Strict base-10 parse of a positive count: digits only (no sign, no
/// leading/trailing junk), nonzero, in range. \p Out is written only
/// on success. A null \p V fails.
bool parsePositiveInt(const char *V, uint64_t &Out);
bool parsePositiveInt(const std::string &V, uint64_t &Out);

/// Strict base-10 parse of a nonzero signed integer: an optional
/// leading '-' followed by digits only, nonzero, in range. \p Out is
/// written only on success. A null \p V fails.
bool parseNonZeroInt(const char *V, int64_t &Out);
bool parseNonZeroInt(const std::string &V, int64_t &Out);

} // namespace tsl

#endif // THINSLICER_SUPPORT_PARSEINT_H
