//===-- Diagnostics.h - Error reporting -------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine shared by the ThinJ frontend and the analyses. The
/// library never throws; failures are reported through this sink and
/// callers test \c hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_DIAGNOSTICS_H
#define THINSLICER_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace tsl {

/// Severity of a diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic: severity, position (optionally a range),
/// and rendered message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  /// End of the offending range (inclusive); invalid when the
  /// diagnostic points at a single position.
  SourceLoc End;
  std::string Message;

  bool hasRange() const { return End.isValid() && End != Loc; }

  /// Renders "line:col: error: message" in the LLVM style (lowercase
  /// first word, no trailing period); with a range,
  /// "line:col-line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics produced while parsing and analyzing a program.
///
/// A DiagnosticEngine is passed by reference through the frontend; any
/// component may append to it. It deliberately has no global state so
/// tests can assert on exact diagnostic sequences.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, SourceLoc(), std::move(Message)});
    ++NumErrors;
  }
  /// Range form: the diagnostic covers [Loc, End].
  void error(SourceLoc Loc, SourceLoc End, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, End, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, SourceLoc(), std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, SourceLoc(), std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic on its own line; convenient for test
  /// failure messages and tool output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_DIAGNOSTICS_H
