//===-- Status.cpp - Structured error model -------------------------------===//

#include "support/Status.h"

using namespace tsl;

const char *tsl::statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid-argument";
  case StatusCode::NotFound:
    return "not-found";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::SemaError:
    return "sema-error";
  case StatusCode::VerifyError:
    return "verify-error";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  case StatusCode::Cancelled:
    return "cancelled";
  case StatusCode::FaultInjected:
    return "fault-injected";
  case StatusCode::Internal:
    return "internal";
  }
  return "?";
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  std::string Out = statusCodeName(Code);
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
