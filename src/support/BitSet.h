//===-- BitSet.h - Dense dynamic bit set ------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, growable bit set keyed by small unsigned ids. Points-to
/// sets, slice membership, and reachability marks are all sets of
/// densely numbered entities (abstract objects, SDG nodes), so a word
/// packed representation with fast union is the workhorse container of
/// the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_BITSET_H
#define THINSLICER_SUPPORT_BITSET_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsl {

/// Dense bit set over unsigned ids with automatic growth.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(unsigned UniverseSize) { reserveIds(UniverseSize); }

  /// Ensures ids in [0, UniverseSize) can be stored without growth.
  void reserveIds(unsigned UniverseSize) {
    if (wordsFor(UniverseSize) > Words.size())
      Words.resize(wordsFor(UniverseSize), 0);
  }

  bool test(unsigned Id) const {
    unsigned Word = Id / 64;
    if (Word >= Words.size())
      return false;
    return (Words[Word] >> (Id % 64)) & 1;
  }

  /// Sets \p Id; returns true if it was newly inserted.
  bool insert(unsigned Id) {
    unsigned Word = Id / 64;
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
    uint64_t Mask = uint64_t(1) << (Id % 64);
    bool WasSet = Words[Word] & Mask;
    Words[Word] |= Mask;
    return !WasSet;
  }

  void erase(unsigned Id) {
    unsigned Word = Id / 64;
    if (Word < Words.size())
      Words[Word] &= ~(uint64_t(1) << (Id % 64));
  }

  /// Adds every element of \p RHS; returns true if this set changed.
  bool unionWith(const BitSet &RHS) {
    if (RHS.Words.size() > Words.size())
      Words.resize(RHS.Words.size(), 0);
    bool Changed = false;
    for (std::size_t I = 0, E = RHS.Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Word-level union that also records which bits were newly set:
  /// every id added to this set is inserted into \p NewBits as well.
  /// Returns true if this set changed. This is the difference-
  /// propagation workhorse: the points-to solver accumulates the
  /// newly arrived objects of a node into its delta set without a
  /// per-bit loop.
  bool unionWithReturningChanged(const BitSet &RHS, BitSet &NewBits) {
    if (RHS.Words.size() > Words.size())
      Words.resize(RHS.Words.size(), 0);
    if (RHS.Words.size() > NewBits.Words.size())
      NewBits.Words.resize(RHS.Words.size(), 0);
    bool Changed = false;
    for (std::size_t I = 0, E = RHS.Words.size(); I != E; ++I) {
      uint64_t Fresh = RHS.Words[I] & ~Words[I];
      if (!Fresh)
        continue;
      Words[I] |= Fresh;
      NewBits.Words[I] |= Fresh;
      Changed = true;
    }
    return Changed;
  }

  /// Removes every element of \p RHS.
  void subtract(const BitSet &RHS) {
    std::size_t N = std::min(Words.size(), RHS.Words.size());
    for (std::size_t I = 0; I != N; ++I)
      Words[I] &= ~RHS.Words[I];
  }

  /// Keeps only elements also in \p RHS.
  void intersectWith(const BitSet &RHS) {
    std::size_t N = std::min(Words.size(), RHS.Words.size());
    for (std::size_t I = 0; I != N; ++I)
      Words[I] &= RHS.Words[I];
    for (std::size_t I = N, E = Words.size(); I != E; ++I)
      Words[I] = 0;
  }

  /// Returns true if this set and \p RHS share any element.
  bool intersects(const BitSet &RHS) const {
    std::size_t N = std::min(Words.size(), RHS.Words.size());
    for (std::size_t I = 0; I != N; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  void clear() { Words.assign(Words.size(), 0); }

  bool operator==(const BitSet &RHS) const {
    std::size_t N = std::max(Words.size(), RHS.Words.size());
    for (std::size_t I = 0; I != N; ++I) {
      uint64_t L = I < Words.size() ? Words[I] : 0;
      uint64_t R = I < RHS.Words.size() ? RHS.Words[I] : 0;
      if (L != R)
        return false;
    }
    return true;
  }
  bool operator!=(const BitSet &RHS) const { return !(*this == RHS); }

  /// Calls \p Fn(Id) for every set bit in ascending id order.
  template <typename CallableT> void forEach(CallableT Fn) const {
    for (std::size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        Fn(static_cast<unsigned>(I * 64 + Bit));
        W &= W - 1;
      }
    }
  }

  /// Materializes the set as a sorted id vector (testing convenience).
  std::vector<unsigned> toVector() const {
    std::vector<unsigned> Out;
    Out.reserve(count());
    forEach([&Out](unsigned Id) { Out.push_back(Id); });
    return Out;
  }

private:
  static std::size_t wordsFor(unsigned UniverseSize) {
    return (std::size_t(UniverseSize) + 63) / 64;
  }

  std::vector<uint64_t> Words;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_BITSET_H
