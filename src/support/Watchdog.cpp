//===-- Watchdog.cpp - Preemptive wall-clock deadline enforcement ---------===//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Watchdog.h"

using namespace tsl;

Watchdog::Watchdog(const AnalysisBudget *Budget) : B(Budget) {
  if (!B || !B->BudgetMs || !B->Started)
    return;
  auto Deadline = B->Start + std::chrono::milliseconds(B->BudgetMs);
  Thread = std::thread([this, Deadline] { run(Deadline); });
}

Watchdog::~Watchdog() {
  if (!Thread.joinable())
    return;
  {
    std::lock_guard<std::mutex> L(Mu);
    Disarmed = true;
  }
  Cv.notify_all();
  Thread.join();
}

void Watchdog::run(std::chrono::steady_clock::time_point Deadline) {
  std::unique_lock<std::mutex> L(Mu);
  // Woken either by disarm (stage finished in time) or the deadline.
  if (Cv.wait_until(L, Deadline, [this] { return Disarmed; }))
    return;
  B->cancel();
}
