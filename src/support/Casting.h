//===-- Casting.h - LLVM-style isa/cast/dyn_cast ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's opt-in RTTI templates. A class
/// hierarchy participates by exposing a \c Kind discriminator and a
/// static \c classof(const Base*) predicate on every derived class;
/// \c isa / \c cast / \c dyn_cast then work exactly like in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_CASTING_H
#define THINSLICER_SUPPORT_CASTING_H

#include <cassert>

namespace tsl {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument (returns null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace tsl

#endif // THINSLICER_SUPPORT_CASTING_H
