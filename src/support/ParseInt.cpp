//===-- ParseInt.cpp - Strict numeric parsing -----------------------------------==//

#include "support/ParseInt.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace tsl;

namespace {

bool allDigits(const char *Body) {
  if (!Body || !*Body)
    return false;
  for (const char *C = Body; *C; ++C)
    if (!isdigit(static_cast<unsigned char>(*C)))
      return false;
  return true;
}

} // namespace

bool tsl::parsePositiveInt(const char *V, uint64_t &Out) {
  if (!allDigits(V))
    return false;
  errno = 0;
  uint64_t N = strtoull(V, nullptr, 10);
  if (errno == ERANGE || N == 0)
    return false;
  Out = N;
  return true;
}

bool tsl::parsePositiveInt(const std::string &V, uint64_t &Out) {
  return parsePositiveInt(V.c_str(), Out);
}

bool tsl::parseNonZeroInt(const char *V, int64_t &Out) {
  const char *Body = V && *V == '-' ? V + 1 : V;
  if (!allDigits(Body))
    return false;
  errno = 0;
  int64_t N = strtoll(V, nullptr, 10);
  if (errno == ERANGE || N == 0)
    return false;
  Out = N;
  return true;
}

bool tsl::parseNonZeroInt(const std::string &V, int64_t &Out) {
  return parseNonZeroInt(V.c_str(), Out);
}
