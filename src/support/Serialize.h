//===-- Serialize.h - Binary snapshot framework -----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little-endian binary serialization framework behind the
/// versioned artifact snapshots (DESIGN.md section 14). A snapshot
/// file is a fixed header (magic + format version) followed by
/// tagged sections, each framed with its payload length and a CRC32C
/// so truncation and bit flips are detected before any layer decoder
/// runs. Integers are written as LEB128 varints (ids and counts are
/// small), spans as raw bytes, and BitSets as delta-coded sorted id
/// runs. Every decode-side primitive bounds-checks and throws
/// SerializeError; callers (AnalysisSession::loadSnapshot) convert
/// that to a sound cold-rebuild fallback, never a crash.
///
/// TSL_SNAPSHOT_VERSION must be bumped by ANY change to the encoded
/// layout of any section — readers reject mismatched versions
/// wholesale rather than attempting migration.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_SERIALIZE_H
#define THINSLICER_SUPPORT_SERIALIZE_H

#include "support/BitSet.h"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tsl {

/// File magic: "TSLS" little-endian.
constexpr uint32_t TSL_SNAPSHOT_MAGIC = 0x534C5354u;

/// Snapshot format version. Bump on ANY layout change to ANY section
/// (new field, reordered field, changed codec): readers reject other
/// versions and the session falls back to a cold rebuild.
constexpr uint32_t TSL_SNAPSHOT_VERSION = 1;

/// Section tags, in file order.
enum class SnapshotSection : uint32_t {
  Meta = 1,    ///< Digests the cache key is made of.
  Program = 2, ///< Strings, types, classes, fields, methods, bodies.
  Pta = 3,     ///< Objects, points-to rows, call graph, casts, stats.
  ModRef = 4,  ///< Heap partitions and per-method mod/ref rows.
  Sdg = 5,     ///< Nodes and kind-tagged edges (CSR is re-derived).
};

/// Raised by any decode-side primitive on overrun, bad magic, bad
/// section tag, CRC mismatch, or a value out of its domain. Must not
/// escape loadSnapshot: the session converts it to a fallback.
class SerializeError : public std::runtime_error {
public:
  explicit SerializeError(const std::string &What)
      : std::runtime_error("snapshot: " + What) {}
};

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) of \p Size
/// bytes at \p Data. Hardware-accelerated via SSE4.2 where the CPU
/// supports it; identical results from the software fallback.
uint32_t crc32(const void *Data, std::size_t Size);

/// Little-endian append-only buffer writer with section framing.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// LEB128 varint.
  void vu64(uint64_t V) {
    while (V >= 0x80) {
      Buf.push_back(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    Buf.push_back(static_cast<uint8_t>(V));
  }
  void vu32(uint32_t V) { vu64(V); }
  /// Zigzag-coded signed varint.
  void vi64(int64_t V) {
    vu64((static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63));
  }

  /// Length-prefixed string.
  void str(std::string_view S) {
    vu64(S.size());
    raw(S.data(), S.size());
  }

  /// Raw byte span (no length prefix).
  void raw(const void *Data, std::size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  /// Sorted set-bit ids, delta-coded: count then ascending gaps.
  void bitset(const BitSet &B);

  /// Opens a framed section: writes the tag and reserves the length
  /// and CRC slots, patched by endSection(). Sections do not nest.
  void beginSection(SnapshotSection Tag);
  /// Closes the open section: patches its payload length and CRC32.
  void endSection();

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
  std::size_t SectionStart = 0; ///< Offset of the open section's header.
  bool InSection = false;
};

/// Bounds-checked little-endian reader over a byte span. All reads
/// throw SerializeError on overrun or malformed input.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, std::size_t Size)
      : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : ByteReader(Buf.data(), Buf.size()) {}

  uint8_t u8() {
    need(1);
    return *P++;
  }
  uint32_t u32() {
    need(4);
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return V;
  }
  uint64_t u64() {
    need(8);
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return V;
  }

  uint64_t vu64() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      need(1);
      uint8_t B = *P++;
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return V;
    }
    throw SerializeError("varint overflow");
  }
  uint32_t vu32() {
    uint64_t V = vu64();
    if (V > 0xFFFFFFFFull)
      throw SerializeError("varint exceeds 32 bits");
    return static_cast<uint32_t>(V);
  }
  int64_t vi64() {
    uint64_t Z = vu64();
    return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  }

  std::string str() {
    uint64_t N = vu64();
    need(N);
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }

  void raw(void *Out, std::size_t Size) {
    need(Size);
    std::memcpy(Out, P, Size);
    P += Size;
  }

  BitSet bitset();

  /// Reads one section header, verifies the tag, the payload fits,
  /// and the CRC32 matches, then returns a reader over the payload
  /// (advancing this reader past it).
  ByteReader section(SnapshotSection ExpectedTag);

  std::size_t remaining() const { return static_cast<std::size_t>(End - P); }
  bool atEnd() const { return P == End; }

  /// Copies the unread remainder out as an owned buffer and consumes
  /// it (used to stash a CRC-verified section payload for deferred
  /// decoding).
  std::vector<uint8_t> take() {
    std::vector<uint8_t> V(P, End);
    P = End;
    return V;
  }

private:
  void need(std::size_t N) const {
    if (static_cast<std::size_t>(End - P) < N)
      throw SerializeError("truncated input");
  }

  const uint8_t *P;
  const uint8_t *End;
};

struct StageReport;

/// Bit-exact double codec (IEEE 754 bit pattern as u64).
void putDouble(ByteWriter &W, double V);
double getDouble(ByteReader &R);

/// StageReport codec shared by the layer codecs. Writes the six
/// artifact fields only — the cache telemetry counters are session
/// state, not artifact state, and are not serialized.
void putReport(ByteWriter &W, const StageReport &Rep);
StageReport getReport(ByteReader &R);

} // namespace tsl

#endif // THINSLICER_SUPPORT_SERIALIZE_H
