//===-- Watchdog.h - Preemptive wall-clock deadline enforcement -*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative BudgetGate only works when a stage polls it; a stage
/// stuck in a non-polling loop (or an injected Stall fault) would blow
/// straight through the wall-clock deadline. The Watchdog closes that
/// hole: while armed it sleeps until the budget's deadline and then
/// sets the budget's atomic cancel flag, which every gate poll and
/// every ThreadPool task boundary observes. The stage is stopped at
/// its next poll or task edge and degrades through the same sound
/// fallback the budget path uses, tagged "watchdog". Scope-bound: arm
/// around one stage computation, disarm (join) on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_WATCHDOG_H
#define THINSLICER_SUPPORT_WATCHDOG_H

#include "support/Budget.h"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace tsl {

/// RAII deadline enforcer for one governed computation. No-op unless
/// the budget exists, has a wall-clock limit, and has been started —
/// the ungoverned path spawns no thread and stays byte-identical.
class Watchdog {
public:
  explicit Watchdog(const AnalysisBudget *Budget);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// True when a deadline thread is running (test hook).
  bool armed() const { return Thread.joinable(); }

private:
  void run(std::chrono::steady_clock::time_point Deadline);

  const AnalysisBudget *B;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Disarmed = false;
  std::thread Thread;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_WATCHDOG_H
