//===-- Serialize.cpp - Binary snapshot framework -----------------------------==//

#include "support/Serialize.h"

#include "support/Budget.h"

using namespace tsl;

// CRC32C (Castagnoli, reflected poly 0x82F63B78). Chosen over the
// zlib polynomial because x86 carries it in hardware (SSE4.2): the
// warm-start path checksums every section of a snapshot, and the
// hardware loop runs an order of magnitude faster than any table
// walk. The software fallback is slicing-by-8 — eight derived
// tables folding eight bytes per iteration — so both paths compute
// the identical function and dispatch is a one-time CPU probe.

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("sse4.2"))) static uint32_t
crc32cHw(const uint8_t *P, std::size_t Size, uint32_t C) {
  while (Size >= 8) {
    uint64_t W;
    __builtin_memcpy(&W, P, 8);
    C = static_cast<uint32_t>(
        __builtin_ia32_crc32di(static_cast<uint64_t>(C), W));
    P += 8;
    Size -= 8;
  }
  while (Size--)
    C = __builtin_ia32_crc32qi(C, *P++);
  return C;
}
#endif

static uint32_t crc32cSw(const uint8_t *P, std::size_t Size, uint32_t C) {
  static const auto *Table = [] {
    static uint32_t T[8][256];
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t V = I;
      for (int K = 0; K != 8; ++K)
        V = (V & 1) ? 0x82F63B78u ^ (V >> 1) : V >> 1;
      T[0][I] = V;
    }
    for (unsigned S = 1; S != 8; ++S)
      for (uint32_t I = 0; I != 256; ++I)
        T[S][I] = (T[S - 1][I] >> 8) ^ T[0][T[S - 1][I] & 0xFF];
    return T;
  }();
  // Explicit little-endian loads keep this portable; on LE targets
  // they compile to plain word loads.
  while (Size >= 8) {
    const uint32_t Lo = static_cast<uint32_t>(P[0]) |
                        static_cast<uint32_t>(P[1]) << 8 |
                        static_cast<uint32_t>(P[2]) << 16 |
                        static_cast<uint32_t>(P[3]) << 24;
    const uint32_t Hi = static_cast<uint32_t>(P[4]) |
                        static_cast<uint32_t>(P[5]) << 8 |
                        static_cast<uint32_t>(P[6]) << 16 |
                        static_cast<uint32_t>(P[7]) << 24;
    C ^= Lo;
    C = Table[7][C & 0xFF] ^ Table[6][(C >> 8) & 0xFF] ^
        Table[5][(C >> 16) & 0xFF] ^ Table[4][C >> 24] ^
        Table[3][Hi & 0xFF] ^ Table[2][(Hi >> 8) & 0xFF] ^
        Table[1][(Hi >> 16) & 0xFF] ^ Table[0][Hi >> 24];
    P += 8;
    Size -= 8;
  }
  while (Size--)
    C = Table[0][(C ^ *P++) & 0xFF] ^ (C >> 8);
  return C;
}

uint32_t tsl::crc32(const void *Data, std::size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
#if defined(__x86_64__) || defined(__i386__)
  static const bool HasHw = __builtin_cpu_supports("sse4.2");
  if (HasHw)
    return crc32cHw(P, Size, 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
#endif
  return crc32cSw(P, Size, 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

void ByteWriter::bitset(const BitSet &B) {
  vu64(B.count());
  unsigned Prev = 0;
  bool First = true;
  B.forEach([&](unsigned Id) {
    vu32(First ? Id : Id - Prev);
    Prev = Id;
    First = false;
  });
}

BitSet ByteReader::bitset() {
  uint64_t N = vu64();
  BitSet B;
  unsigned Cur = 0;
  for (uint64_t I = 0; I != N; ++I) {
    uint32_t Gap = vu32();
    Cur = I == 0 ? Gap : Cur + Gap;
    B.insert(Cur);
  }
  return B;
}

// Section frame: tag u32 | payload length u64 | payload crc32 u32 |
// payload bytes. Length and CRC are back-patched by endSection().
void ByteWriter::beginSection(SnapshotSection Tag) {
  if (InSection)
    throw SerializeError("nested section");
  InSection = true;
  SectionStart = Buf.size();
  u32(static_cast<uint32_t>(Tag));
  u64(0); // Length placeholder.
  u32(0); // CRC placeholder.
}

void ByteWriter::endSection() {
  if (!InSection)
    throw SerializeError("endSection without beginSection");
  InSection = false;
  const std::size_t PayloadStart = SectionStart + 4 + 8 + 4;
  const uint64_t Len = Buf.size() - PayloadStart;
  for (int I = 0; I != 8; ++I)
    Buf[SectionStart + 4 + I] = static_cast<uint8_t>(Len >> (8 * I));
  const uint32_t Crc = tsl::crc32(Buf.data() + PayloadStart, Len);
  for (int I = 0; I != 4; ++I)
    Buf[SectionStart + 12 + I] = static_cast<uint8_t>(Crc >> (8 * I));
}

void tsl::putDouble(ByteWriter &W, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  W.u64(Bits);
}

double tsl::getDouble(ByteReader &R) {
  uint64_t Bits = R.u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

void tsl::putReport(ByteWriter &W, const StageReport &Rep) {
  W.str(Rep.Stage);
  W.u8(static_cast<uint8_t>(Rep.Status));
  W.str(Rep.Reason);
  W.str(Rep.Fallback);
  W.vu64(Rep.StepsUsed);
  putDouble(W, Rep.Seconds);
}

StageReport tsl::getReport(ByteReader &R) {
  StageReport Rep;
  Rep.Stage = R.str();
  uint8_t S = R.u8();
  if (S > static_cast<uint8_t>(StageStatus::Degraded))
    throw SerializeError("unknown stage status");
  Rep.Status = static_cast<StageStatus>(S);
  Rep.Reason = R.str();
  Rep.Fallback = R.str();
  Rep.StepsUsed = R.vu64();
  Rep.Seconds = getDouble(R);
  return Rep;
}

ByteReader ByteReader::section(SnapshotSection ExpectedTag) {
  uint32_t Tag = u32();
  if (Tag != static_cast<uint32_t>(ExpectedTag))
    throw SerializeError("unexpected section tag " + std::to_string(Tag));
  uint64_t Len = u64();
  uint32_t Crc = u32();
  need(Len);
  if (tsl::crc32(P, Len) != Crc)
    throw SerializeError("section CRC mismatch");
  ByteReader Sub(P, Len);
  P += Len;
  return Sub;
}
