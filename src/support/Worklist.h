//===-- Worklist.h - Deduplicating FIFO worklist ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FIFO worklist over densely numbered ids that never holds the same id
/// twice. The points-to solver and the slicers are all fixed-point
/// worklist algorithms over dense id spaces.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_WORKLIST_H
#define THINSLICER_SUPPORT_WORKLIST_H

#include "support/BitSet.h"

#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

namespace tsl {

/// Visit-order policy of a fixed-point solver's worklist.
enum class WorklistPolicy {
  FIFO, ///< Plain breadth-first queue (the naive baseline).
  LRF,  ///< Least recently fired: nodes that have not propagated for
        ///< the longest come first, which batches the changes a hot
        ///< node accumulates between visits.
  Topo, ///< Periodically recomputed topological order of the copy
        ///< edge graph: upstream nodes drain before downstream ones,
        ///< so each edge tends to carry one big delta instead of many
        ///< small ones.
};

/// FIFO queue of unsigned ids; enqueueing an id already in the queue is
/// a no-op. Ids may be re-enqueued after being popped.
class Worklist {
public:
  /// Enqueues \p Id unless it is already pending; returns true if added.
  bool push(unsigned Id) {
    if (!Pending.insert(Id))
      return false;
    Queue.push_back(Id);
    return true;
  }

  unsigned pop() {
    assert(!Queue.empty() && "pop from empty worklist");
    unsigned Id = Queue.front();
    Queue.pop_front();
    Pending.erase(Id);
    return Id;
  }

  bool empty() const { return Queue.empty(); }
  size_t size() const { return Queue.size(); }

private:
  std::deque<unsigned> Queue;
  BitSet Pending;
};

/// Deduplicating min-priority worklist over densely numbered ids.
/// Each id carries a mutable priority (default 0); pop returns the
/// pending id with the smallest priority. Priorities can be updated
/// at any time — including while an id is pending — via lazily
/// invalidated heap entries: an entry whose recorded priority no
/// longer matches the id's current priority is discarded on pop,
/// because setPriority pushed a fresh entry when it changed.
class PriorityWorklist {
public:
  /// Enqueues \p Id at its current priority unless it is already
  /// pending; returns true if added.
  bool push(unsigned Id) {
    if (!Pending.insert(Id))
      return false;
    ++NumPending;
    Heap.push({priority(Id), Id});
    return true;
  }

  /// Pops the pending id with the smallest priority (FIFO on ties by
  /// virtue of heap insertion order being irrelevant to correctness).
  unsigned pop() {
    assert(NumPending && "pop from empty worklist");
    while (true) {
      assert(!Heap.empty() && "pending id lost from heap");
      auto [P, Id] = Heap.top();
      Heap.pop();
      if (!Pending.test(Id))
        continue; // Already popped; duplicate entry.
      if (P != priority(Id))
        continue; // Stale: setPriority reinserted a fresh entry.
      Pending.erase(Id);
      --NumPending;
      return Id;
    }
  }

  /// Sets \p Id's priority for this and future enqueues. When \p Id
  /// is pending, its position is updated immediately.
  void setPriority(unsigned Id, uint64_t P) {
    if (Id >= Prio.size())
      Prio.resize(Id + 1, 0);
    if (Prio[Id] == P)
      return;
    Prio[Id] = P;
    if (Pending.test(Id))
      Heap.push({P, Id});
  }

  uint64_t priority(unsigned Id) const {
    return Id < Prio.size() ? Prio[Id] : 0;
  }

  bool empty() const { return NumPending == 0; }
  size_t size() const { return NumPending; }

private:
  using Entry = std::pair<uint64_t, unsigned>; ///< (priority, id).
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> Heap;
  std::vector<uint64_t> Prio;
  BitSet Pending;
  size_t NumPending = 0;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_WORKLIST_H
