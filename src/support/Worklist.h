//===-- Worklist.h - Deduplicating FIFO worklist ----------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FIFO worklist over densely numbered ids that never holds the same id
/// twice. The points-to solver and the slicers are all fixed-point
/// worklist algorithms over dense id spaces.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_WORKLIST_H
#define THINSLICER_SUPPORT_WORKLIST_H

#include "support/BitSet.h"

#include <deque>

namespace tsl {

/// FIFO queue of unsigned ids; enqueueing an id already in the queue is
/// a no-op. Ids may be re-enqueued after being popped.
class Worklist {
public:
  /// Enqueues \p Id unless it is already pending; returns true if added.
  bool push(unsigned Id) {
    if (!Pending.insert(Id))
      return false;
    Queue.push_back(Id);
    return true;
  }

  unsigned pop() {
    assert(!Queue.empty() && "pop from empty worklist");
    unsigned Id = Queue.front();
    Queue.pop_front();
    Pending.erase(Id);
    return Id;
  }

  bool empty() const { return Queue.empty(); }
  size_t size() const { return Queue.size(); }

private:
  std::deque<unsigned> Queue;
  BitSet Pending;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_WORKLIST_H
