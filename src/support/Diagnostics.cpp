//===-- Diagnostics.cpp - Error reporting ---------------------------------==//

#include "support/Diagnostics.h"

using namespace tsl;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Pos = Loc.str();
  if (hasRange())
    Pos += "-" + End.str();
  return Pos + ": " + kindName(Kind) + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
