//===-- StringTable.h - String interner -------------------------*- C++ -*-==//
//
// Part of ThinSlicer, a reproduction of "Thin Slicing" (PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier strings into dense 32-bit symbols so that names
/// (classes, fields, methods, locals) compare and hash as integers
/// throughout the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_SUPPORT_STRINGTABLE_H
#define THINSLICER_SUPPORT_STRINGTABLE_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tsl {

/// A dense id for an interned string. Symbol 0 is the empty string.
using Symbol = uint32_t;

/// Bidirectional string <-> Symbol mapping with stable ids.
class StringTable {
public:
  StringTable() { intern(""); }

  /// Returns the symbol for \p Text, interning it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text, or 0 if it was never interned.
  /// Note that 0 is also the symbol of "", which is never a valid
  /// identifier, so 0 doubles as "not found" for identifier lookups.
  Symbol lookup(std::string_view Text) const;

  const std::string &str(Symbol Sym) const {
    assert(Sym < Strings.size() && "invalid symbol");
    return Strings[Sym];
  }

  size_t size() const { return Strings.size(); }

private:
  // Deque keeps element addresses stable so the string_view keys in
  // Index (which alias the stored strings) never dangle.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, Symbol> Index;
};

} // namespace tsl

#endif // THINSLICER_SUPPORT_STRINGTABLE_H
