file(REMOVE_RECURSE
  "CMakeFiles/bench_alias_depth.dir/bench/bench_alias_depth.cpp.o"
  "CMakeFiles/bench_alias_depth.dir/bench/bench_alias_depth.cpp.o.d"
  "bench/bench_alias_depth"
  "bench/bench_alias_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alias_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
