# Empty compiler generated dependencies file for bench_alias_depth.
# This may be replaced when dependencies are built.
