file(REMOVE_RECURSE
  "CMakeFiles/bench_inspection_strategy.dir/bench/bench_inspection_strategy.cpp.o"
  "CMakeFiles/bench_inspection_strategy.dir/bench/bench_inspection_strategy.cpp.o.d"
  "bench/bench_inspection_strategy"
  "bench/bench_inspection_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inspection_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
