# Empty compiler generated dependencies file for bench_inspection_strategy.
# This may be replaced when dependencies are built.
