file(REMOVE_RECURSE
  "CMakeFiles/bench_context_ablation.dir/bench/bench_context_ablation.cpp.o"
  "CMakeFiles/bench_context_ablation.dir/bench/bench_context_ablation.cpp.o.d"
  "bench/bench_context_ablation"
  "bench/bench_context_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
