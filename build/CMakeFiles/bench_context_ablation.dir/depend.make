# Empty dependencies file for bench_context_ablation.
# This may be replaced when dependencies are built.
