file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_casts.dir/bench/bench_table3_casts.cpp.o"
  "CMakeFiles/bench_table3_casts.dir/bench/bench_table3_casts.cpp.o.d"
  "bench/bench_table3_casts"
  "bench/bench_table3_casts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_casts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
