# Empty dependencies file for bench_table2_debugging.
# This may be replaced when dependencies are built.
