file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_debugging.dir/bench/bench_table2_debugging.cpp.o"
  "CMakeFiles/bench_table2_debugging.dir/bench/bench_table2_debugging.cpp.o.d"
  "bench/bench_table2_debugging"
  "bench/bench_table2_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
