file(REMOVE_RECURSE
  "CMakeFiles/explain_aliasing.dir/explain_aliasing.cpp.o"
  "CMakeFiles/explain_aliasing.dir/explain_aliasing.cpp.o.d"
  "explain_aliasing"
  "explain_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
