# Empty dependencies file for explain_aliasing.
# This may be replaced when dependencies are built.
