# Empty dependencies file for tough_cast.
# This may be replaced when dependencies are built.
