file(REMOVE_RECURSE
  "CMakeFiles/tough_cast.dir/tough_cast.cpp.o"
  "CMakeFiles/tough_cast.dir/tough_cast.cpp.o.d"
  "tough_cast"
  "tough_cast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tough_cast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
