file(REMOVE_RECURSE
  "CMakeFiles/dynamic_thin_slice.dir/dynamic_thin_slice.cpp.o"
  "CMakeFiles/dynamic_thin_slice.dir/dynamic_thin_slice.cpp.o.d"
  "dynamic_thin_slice"
  "dynamic_thin_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_thin_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
