# Empty compiler generated dependencies file for dynamic_thin_slice.
# This may be replaced when dependencies are built.
