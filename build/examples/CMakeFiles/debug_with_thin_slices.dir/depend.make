# Empty dependencies file for debug_with_thin_slices.
# This may be replaced when dependencies are built.
