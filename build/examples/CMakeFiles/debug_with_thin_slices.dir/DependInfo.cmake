
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/debug_with_thin_slices.cpp" "examples/CMakeFiles/debug_with_thin_slices.dir/debug_with_thin_slices.cpp.o" "gcc" "examples/CMakeFiles/debug_with_thin_slices.dir/debug_with_thin_slices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ts_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/slicer/CMakeFiles/ts_slicer.dir/DependInfo.cmake"
  "/root/repo/build/src/sdg/CMakeFiles/ts_sdg.dir/DependInfo.cmake"
  "/root/repo/build/src/modref/CMakeFiles/ts_modref.dir/DependInfo.cmake"
  "/root/repo/build/src/pta/CMakeFiles/ts_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/ts_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/dyn/CMakeFiles/ts_dyn.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ts_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ts_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
