file(REMOVE_RECURSE
  "CMakeFiles/debug_with_thin_slices.dir/debug_with_thin_slices.cpp.o"
  "CMakeFiles/debug_with_thin_slices.dir/debug_with_thin_slices.cpp.o.d"
  "debug_with_thin_slices"
  "debug_with_thin_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_with_thin_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
