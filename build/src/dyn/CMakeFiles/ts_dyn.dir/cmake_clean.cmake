file(REMOVE_RECURSE
  "CMakeFiles/ts_dyn.dir/Interp.cpp.o"
  "CMakeFiles/ts_dyn.dir/Interp.cpp.o.d"
  "libts_dyn.a"
  "libts_dyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_dyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
