# Empty compiler generated dependencies file for ts_dyn.
# This may be replaced when dependencies are built.
