file(REMOVE_RECURSE
  "libts_dyn.a"
)
