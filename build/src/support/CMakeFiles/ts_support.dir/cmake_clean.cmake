file(REMOVE_RECURSE
  "CMakeFiles/ts_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/ts_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/ts_support.dir/StringTable.cpp.o"
  "CMakeFiles/ts_support.dir/StringTable.cpp.o.d"
  "libts_support.a"
  "libts_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
