# Empty dependencies file for ts_support.
# This may be replaced when dependencies are built.
