
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ControlDep.cpp" "src/ir/CMakeFiles/ts_ir.dir/ControlDep.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/ControlDep.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/ir/CMakeFiles/ts_ir.dir/Dominators.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/Dominators.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/ts_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/ir/CMakeFiles/ts_ir.dir/Instr.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/Instr.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/ir/CMakeFiles/ts_ir.dir/Program.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/Program.cpp.o.d"
  "/root/repo/src/ir/SSA.cpp" "src/ir/CMakeFiles/ts_ir.dir/SSA.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/SSA.cpp.o.d"
  "/root/repo/src/ir/Types.cpp" "src/ir/CMakeFiles/ts_ir.dir/Types.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/Types.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/ts_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/ts_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
