file(REMOVE_RECURSE
  "CMakeFiles/ts_ir.dir/ControlDep.cpp.o"
  "CMakeFiles/ts_ir.dir/ControlDep.cpp.o.d"
  "CMakeFiles/ts_ir.dir/Dominators.cpp.o"
  "CMakeFiles/ts_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/ts_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/ts_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/ts_ir.dir/Instr.cpp.o"
  "CMakeFiles/ts_ir.dir/Instr.cpp.o.d"
  "CMakeFiles/ts_ir.dir/Program.cpp.o"
  "CMakeFiles/ts_ir.dir/Program.cpp.o.d"
  "CMakeFiles/ts_ir.dir/SSA.cpp.o"
  "CMakeFiles/ts_ir.dir/SSA.cpp.o.d"
  "CMakeFiles/ts_ir.dir/Types.cpp.o"
  "CMakeFiles/ts_ir.dir/Types.cpp.o.d"
  "CMakeFiles/ts_ir.dir/Verifier.cpp.o"
  "CMakeFiles/ts_ir.dir/Verifier.cpp.o.d"
  "libts_ir.a"
  "libts_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
