file(REMOVE_RECURSE
  "libts_ir.a"
)
