# Empty compiler generated dependencies file for ts_ir.
# This may be replaced when dependencies are built.
