# Empty dependencies file for ts_lang.
# This may be replaced when dependencies are built.
