file(REMOVE_RECURSE
  "libts_lang.a"
)
