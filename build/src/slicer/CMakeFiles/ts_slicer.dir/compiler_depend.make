# Empty compiler generated dependencies file for ts_slicer.
# This may be replaced when dependencies are built.
