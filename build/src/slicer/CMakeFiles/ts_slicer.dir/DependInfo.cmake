
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slicer/Chop.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Chop.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Chop.cpp.o.d"
  "/root/repo/src/slicer/Expansion.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Expansion.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Expansion.cpp.o.d"
  "/root/repo/src/slicer/Inspection.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Inspection.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Inspection.cpp.o.d"
  "/root/repo/src/slicer/Report.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Report.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Report.cpp.o.d"
  "/root/repo/src/slicer/Slicer.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Slicer.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Slicer.cpp.o.d"
  "/root/repo/src/slicer/Tabulation.cpp" "src/slicer/CMakeFiles/ts_slicer.dir/Tabulation.cpp.o" "gcc" "src/slicer/CMakeFiles/ts_slicer.dir/Tabulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdg/CMakeFiles/ts_sdg.dir/DependInfo.cmake"
  "/root/repo/build/src/pta/CMakeFiles/ts_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/ts_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ts_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  "/root/repo/build/src/modref/CMakeFiles/ts_modref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
