file(REMOVE_RECURSE
  "libts_slicer.a"
)
