file(REMOVE_RECURSE
  "CMakeFiles/ts_slicer.dir/Chop.cpp.o"
  "CMakeFiles/ts_slicer.dir/Chop.cpp.o.d"
  "CMakeFiles/ts_slicer.dir/Expansion.cpp.o"
  "CMakeFiles/ts_slicer.dir/Expansion.cpp.o.d"
  "CMakeFiles/ts_slicer.dir/Inspection.cpp.o"
  "CMakeFiles/ts_slicer.dir/Inspection.cpp.o.d"
  "CMakeFiles/ts_slicer.dir/Report.cpp.o"
  "CMakeFiles/ts_slicer.dir/Report.cpp.o.d"
  "CMakeFiles/ts_slicer.dir/Slicer.cpp.o"
  "CMakeFiles/ts_slicer.dir/Slicer.cpp.o.d"
  "CMakeFiles/ts_slicer.dir/Tabulation.cpp.o"
  "CMakeFiles/ts_slicer.dir/Tabulation.cpp.o.d"
  "libts_slicer.a"
  "libts_slicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
