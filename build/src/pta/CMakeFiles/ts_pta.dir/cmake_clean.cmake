file(REMOVE_RECURSE
  "CMakeFiles/ts_pta.dir/PointsTo.cpp.o"
  "CMakeFiles/ts_pta.dir/PointsTo.cpp.o.d"
  "libts_pta.a"
  "libts_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
