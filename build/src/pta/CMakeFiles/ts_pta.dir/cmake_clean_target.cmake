file(REMOVE_RECURSE
  "libts_pta.a"
)
