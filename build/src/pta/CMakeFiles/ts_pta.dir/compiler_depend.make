# Empty compiler generated dependencies file for ts_pta.
# This may be replaced when dependencies are built.
