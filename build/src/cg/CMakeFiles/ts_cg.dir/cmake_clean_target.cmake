file(REMOVE_RECURSE
  "libts_cg.a"
)
