file(REMOVE_RECURSE
  "CMakeFiles/ts_cg.dir/CHA.cpp.o"
  "CMakeFiles/ts_cg.dir/CHA.cpp.o.d"
  "CMakeFiles/ts_cg.dir/CallGraph.cpp.o"
  "CMakeFiles/ts_cg.dir/CallGraph.cpp.o.d"
  "CMakeFiles/ts_cg.dir/ClassHierarchy.cpp.o"
  "CMakeFiles/ts_cg.dir/ClassHierarchy.cpp.o.d"
  "libts_cg.a"
  "libts_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
