# Empty compiler generated dependencies file for ts_cg.
# This may be replaced when dependencies are built.
