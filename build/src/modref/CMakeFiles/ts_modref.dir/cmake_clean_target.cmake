file(REMOVE_RECURSE
  "libts_modref.a"
)
