file(REMOVE_RECURSE
  "CMakeFiles/ts_modref.dir/ModRef.cpp.o"
  "CMakeFiles/ts_modref.dir/ModRef.cpp.o.d"
  "libts_modref.a"
  "libts_modref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_modref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
