# Empty dependencies file for ts_modref.
# This may be replaced when dependencies are built.
