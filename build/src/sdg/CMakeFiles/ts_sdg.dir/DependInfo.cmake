
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdg/SDG.cpp" "src/sdg/CMakeFiles/ts_sdg.dir/SDG.cpp.o" "gcc" "src/sdg/CMakeFiles/ts_sdg.dir/SDG.cpp.o.d"
  "/root/repo/src/sdg/SDGBuilder.cpp" "src/sdg/CMakeFiles/ts_sdg.dir/SDGBuilder.cpp.o" "gcc" "src/sdg/CMakeFiles/ts_sdg.dir/SDGBuilder.cpp.o.d"
  "/root/repo/src/sdg/SDGDot.cpp" "src/sdg/CMakeFiles/ts_sdg.dir/SDGDot.cpp.o" "gcc" "src/sdg/CMakeFiles/ts_sdg.dir/SDGDot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/modref/CMakeFiles/ts_modref.dir/DependInfo.cmake"
  "/root/repo/build/src/pta/CMakeFiles/ts_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/ts_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ts_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
