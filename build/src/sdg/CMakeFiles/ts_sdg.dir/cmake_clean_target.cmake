file(REMOVE_RECURSE
  "libts_sdg.a"
)
