# Empty compiler generated dependencies file for ts_sdg.
# This may be replaced when dependencies are built.
