file(REMOVE_RECURSE
  "CMakeFiles/ts_sdg.dir/SDG.cpp.o"
  "CMakeFiles/ts_sdg.dir/SDG.cpp.o.d"
  "CMakeFiles/ts_sdg.dir/SDGBuilder.cpp.o"
  "CMakeFiles/ts_sdg.dir/SDGBuilder.cpp.o.d"
  "CMakeFiles/ts_sdg.dir/SDGDot.cpp.o"
  "CMakeFiles/ts_sdg.dir/SDGDot.cpp.o.d"
  "libts_sdg.a"
  "libts_sdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_sdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
