file(REMOVE_RECURSE
  "CMakeFiles/ts_eval.dir/Cases.cpp.o"
  "CMakeFiles/ts_eval.dir/Cases.cpp.o.d"
  "CMakeFiles/ts_eval.dir/CastCases.cpp.o"
  "CMakeFiles/ts_eval.dir/CastCases.cpp.o.d"
  "CMakeFiles/ts_eval.dir/Experiments.cpp.o"
  "CMakeFiles/ts_eval.dir/Experiments.cpp.o.d"
  "CMakeFiles/ts_eval.dir/Generator.cpp.o"
  "CMakeFiles/ts_eval.dir/Generator.cpp.o.d"
  "CMakeFiles/ts_eval.dir/Runtime.cpp.o"
  "CMakeFiles/ts_eval.dir/Runtime.cpp.o.d"
  "CMakeFiles/ts_eval.dir/Workload.cpp.o"
  "CMakeFiles/ts_eval.dir/Workload.cpp.o.d"
  "libts_eval.a"
  "libts_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
