file(REMOVE_RECURSE
  "libts_eval.a"
)
