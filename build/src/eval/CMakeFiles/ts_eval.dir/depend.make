# Empty dependencies file for ts_eval.
# This may be replaced when dependencies are built.
