file(REMOVE_RECURSE
  "CMakeFiles/test_tabulation.dir/tabulation_test.cpp.o"
  "CMakeFiles/test_tabulation.dir/tabulation_test.cpp.o.d"
  "test_tabulation"
  "test_tabulation.pdb"
  "test_tabulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
