# Empty compiler generated dependencies file for test_tabulation.
# This may be replaced when dependencies are built.
