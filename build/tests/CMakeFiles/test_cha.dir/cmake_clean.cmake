file(REMOVE_RECURSE
  "CMakeFiles/test_cha.dir/cha_test.cpp.o"
  "CMakeFiles/test_cha.dir/cha_test.cpp.o.d"
  "test_cha"
  "test_cha.pdb"
  "test_cha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
