# Empty dependencies file for test_cha.
# This may be replaced when dependencies are built.
