# Empty dependencies file for test_pta.
# This may be replaced when dependencies are built.
