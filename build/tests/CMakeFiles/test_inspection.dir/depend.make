# Empty dependencies file for test_inspection.
# This may be replaced when dependencies are built.
