# Empty dependencies file for test_sdg.
# This may be replaced when dependencies are built.
