# Empty dependencies file for test_modref.
# This may be replaced when dependencies are built.
