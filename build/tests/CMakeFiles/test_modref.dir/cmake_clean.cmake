file(REMOVE_RECURSE
  "CMakeFiles/test_modref.dir/modref_test.cpp.o"
  "CMakeFiles/test_modref.dir/modref_test.cpp.o.d"
  "test_modref"
  "test_modref.pdb"
  "test_modref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
