# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_lower[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_dominators[1]_include.cmake")
include("/root/repo/build/tests/test_cha[1]_include.cmake")
include("/root/repo/build/tests/test_pta[1]_include.cmake")
include("/root/repo/build/tests/test_modref[1]_include.cmake")
include("/root/repo/build/tests/test_sdg[1]_include.cmake")
include("/root/repo/build/tests/test_slicer[1]_include.cmake")
include("/root/repo/build/tests/test_tabulation[1]_include.cmake")
include("/root/repo/build/tests/test_expansion[1]_include.cmake")
include("/root/repo/build/tests/test_inspection[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
