# Empty compiler generated dependencies file for thinslice.
# This may be replaced when dependencies are built.
