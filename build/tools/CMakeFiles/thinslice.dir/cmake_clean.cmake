file(REMOVE_RECURSE
  "CMakeFiles/thinslice.dir/thinslice.cpp.o"
  "CMakeFiles/thinslice.dir/thinslice.cpp.o.d"
  "thinslice"
  "thinslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
