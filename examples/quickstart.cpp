//===-- quickstart.cpp - Minimal end-to-end use of the public API ---------------==//
//
// Compiles a small ThinJ program, runs the analysis pipeline, and
// prints a thin slice and the corresponding traditional slice side by
// side. This is the 30-second tour of the library:
//
//   source -> compileThinJ -> runPointsTo -> buildSDG -> sliceBackward
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <cstdio>

using namespace tsl;

// A value flows through a container; a thin slice shows the producers,
// a traditional slice additionally drags in the container plumbing and
// control flow.
static const char *Source = R"THINJ(
class Box {
  var items: Object[];
  var n: int;
  def init() {
    items = new Object[4];
    n = 0;
  }
  def put(v: Object) {
    items[n] = v;
    n = n + 1;
  }
  def take(i: int): Object {
    return items[i];
  }
}

def main() {
  var box = new Box();
  var secret = "the secret value";
  if (secret.length() > 3) {
    box.put(secret);
  }
  var out = (string) box.take(0);
  print(out);                          // <- the slicing seed
}
)THINJ";

int main() {
  // 1. Compile (parse + type-check + lower to SSA IR).
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  if (!P) {
    fprintf(stderr, "compilation failed:\n%s", Diag.str().c_str());
    return 1;
  }

  // 2. Pointer analysis with on-the-fly call graph (object-sensitive
  //    container handling on by default, as in the paper).
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  printf("call graph: %zu reachable methods, %zu nodes\n",
         PTA->callGraph().reachableMethods().size(),
         PTA->callGraph().nodes().size());

  // 3. Build the (context-insensitive) system dependence graph.
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
  printf("sdg: %u statements, %u edges\n\n", G->numStmtNodes(),
         G->numEdges());

  // 4. Find the seed: the print statement.
  const Instr *Seed = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seed = I.get();

  // 5. Slice.
  SliceResult Thin = sliceBackward(*G, Seed, SliceMode::Thin);
  SliceResult Trad = sliceBackward(*G, Seed, SliceMode::Traditional);

  printf("--- thin slice (%u statements): the producers ---\n%s\n",
         Thin.sizeStmts(), Thin.str().c_str());
  printf("--- traditional slice (%u statements): everything relevant ---\n"
         "%s\n",
         Trad.sizeStmts(), Trad.str().c_str());
  printf("the thin slice focuses on %u of %u statements\n",
         Thin.sizeStmts(), Trad.sizeStmts());
  return 0;
}
