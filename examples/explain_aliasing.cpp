//===-- explain_aliasing.cpp - The paper's Figure 4 expansion walkthrough -------==//
//
// Recreates Section 4's hierarchical expansion: a File is closed
// through an alias obtained from a Vector, and readFromFile() later
// throws. The thin slice from the open-flag read shows the producers
// of the flag (the stores in the constructor and in close()) but not
// why those statements touch the same File — that is the aliasing
// question (Q1), answered by two more thin slices filtered to objects
// flowing to both base pointers. The controlling conditional (Q2) is
// surfaced separately.
//
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"

#include <cstdio>

using namespace tsl;

int main() {
  WorkloadProgram W = makeFigure4();
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(W.Source, Diag);
  if (!P) {
    fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
  ThinExpansion Exp(*G, *PTA);

  // Step 1: the exception at `throw` has no incoming value flow; the
  // user inspects the code and thin-slices from the conditional's
  // operand instead (paper Sec. 4.2).
  const Instr *OpenRead = instrAtLine(*P, W.markerLine("readopen"));
  SliceResult Thin = sliceBackward(*G, OpenRead, SliceMode::Thin);
  printf("thin slice from `var open = f.isOpen()` (%u statements):\n%s\n",
         Thin.sizeStmts(), Thin.str().c_str());
  printf("-> the flag is written true in the constructor and false in "
         "close(), but WHICH File was closed?\n\n");

  // Step 2 (Q1): explain the aliasing between close()'s this and
  // isOpen()'s this.
  const Instr *Store = heapAccessAtLine(*P, W.markerLine("openfield-false"));
  const Instr *Load = heapAccessAtLine(*P, W.markerLine("isopen"));
  SliceResult Aliasing = Exp.explainAliasing(Store, Load);
  printf("aliasing explanation (two thin slices filtered to the common "
         "File object, %u statements):\n%s\n",
         Aliasing.sizeStmts(), Aliasing.str().c_str());
  printf("-> the File flows through Vector.add/get to both close() and "
         "isOpen(); the bug is the close through the alias\n\n");

  // Step 3 (Q2): the throw's controlling conditional.
  const Instr *Throw = instrAtLine(*P, W.markerLine("seed"));
  printf("controlling conditionals of the throw:\n");
  for (const Instr *C : Exp.controlExplainers(Throw))
    printf("  line %u: %s\n", C->loc().Line, C->str(*P).c_str());

  // In the limit, expansion recovers the traditional slice (Sec. 2).
  SliceResult Full = Exp.expandToTraditional(OpenRead);
  SliceResult Trad = sliceBackward(*G, OpenRead, SliceMode::Traditional);
  printf("\nfully expanded thin slice: %u statements; traditional slice: "
         "%u statements; equal: %s\n",
         Full.sizeStmts(), Trad.sizeStmts(),
         Full.nodeSet() == Trad.nodeSet() ? "yes" : "no");
  return 0;
}
