//===-- debug_with_thin_slices.cpp - The paper's Figure 1 walkthrough -----------==//
//
// Recreates the paper's introductory debugging session: the program
// reads full names, stores first names in a Vector via a SessionState,
// and prints "FIRST NAME: Joh" instead of "FIRST NAME: John" because
// of an off-by-one in substring.
//
// The example (1) runs the program under the interpreter to expose the
// failure, (2) computes the thin slice from the failing print, and
// (3) shows the BFS inspection order a tool user would follow — the
// buggy substring line appears within a handful of steps, while the
// traditional slice buries it under SessionState and Vector plumbing.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Inspection.h"
#include "slicer/Slicer.h"

#include <cstdio>

using namespace tsl;

int main() {
  WorkloadProgram W = makeFigure1();
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(W.Source, Diag);
  if (!P) {
    fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }

  // Run the program: the failure the user starts from.
  InterpOptions Run;
  Run.InputInts = {1};
  Run.InputLines = {"John Doe"};
  InterpResult R = interpret(*P, Run);
  printf("program output:\n");
  for (const std::string &Line : R.Output)
    printf("  %s\n", Line.c_str());
  printf("  (expected \"FIRST NAME: John\" — time to debug)\n\n");

  // Analyze.
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);

  const Instr *Seed = instrAtLine(*P, W.markerLine("seed"));
  SliceResult Thin = sliceBackward(*G, Seed, SliceMode::Thin);
  SliceResult Trad = sliceBackward(*G, Seed, SliceMode::Traditional);

  printf("thin slice from the failing print (%u statements):\n%s\n",
         Thin.sizeStmts(), Thin.str().c_str());
  printf("traditional slice has %u statements (the whole example, as the "
         "paper notes)\n\n",
         Trad.sizeStmts());

  // Simulate the inspection session of Sec. 6.1.
  SourceLine Bug = sourceLineAt(*P, W.markerLine("bug"));
  InspectionResult ThinWalk =
      simulateInspection(*G, Seed, SliceMode::Thin, {Bug});
  InspectionResult TradWalk =
      simulateInspection(*G, Seed, SliceMode::Traditional, {Bug});
  printf("BFS inspection until the buggy substring is found:\n");
  printf("  thin slicer:        %u statements\n",
         ThinWalk.InspectedStatements);
  printf("  traditional slicer: %u statements\n",
         TradWalk.InspectedStatements);
  printf("inspection order (thin):\n");
  for (const SourceLine &L : ThinWalk.Order)
    printf("  %s line %u\n",
           L.M->qualifiedName(P->strings()).c_str(), L.Line);
  return 0;
}
