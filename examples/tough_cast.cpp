//===-- tough_cast.cpp - The paper's Figure 5 / Table 3 scenario ----------------==//
//
// Recreates the program-understanding task of Section 6.3: a downcast
// guarded by an opcode tag that precise pointer analysis cannot verify
// (a "tough cast"). Understanding why it is safe means discovering the
// global invariant: every constructor writes a suitable opcode. The
// thin slice from the opcode read leads straight to those writes.
//
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"

#include <cstdio>

using namespace tsl;

int main() {
  WorkloadProgram W = makeFigure5();
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(W.Source, Diag);
  if (!P) {
    fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);

  // The cast is tough: points-to cannot prove it safe.
  const CastInstr *Cast = castAtLine(*P, W.markerLine("cast"));
  printf("cast `(AddNode) n`: pointer analysis verifies it? %s\n\n",
         PTA->castCannotFail(Cast) ? "yes" : "no — a tough cast");

  // Following one control dependence from the cast reaches the switch
  // on the opcode; thin-slice from the opcode read.
  ThinExpansion Exp(*G, *PTA);
  printf("controlling conditional of the cast:\n");
  for (const Instr *C : Exp.controlExplainers(Cast))
    printf("  line %u: %s\n", C->loc().Line, C->str(*P).c_str());

  const Instr *OpRead = instrAtLine(*P, W.markerLine("opread"));
  SliceResult Thin = sliceBackward(*G, OpRead, SliceMode::Thin);
  printf("\nthin slice from `var op = n.op` (%u statements):\n%s\n",
         Thin.sizeStmts(), Thin.str().c_str());
  printf("-> every constructor writes its class's opcode constant, so the "
         "tag test guarantees the cast (the global invariant)\n\n");

  SliceResult Trad = sliceBackward(*G, OpRead, SliceMode::Traditional);
  printf("a traditional slice of the same seed has %u statements "
         "(vs %u thin)\n",
         Trad.sizeStmts(), Thin.sizeStmts());
  return 0;
}
