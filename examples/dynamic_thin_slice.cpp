//===-- dynamic_thin_slice.cpp - Dynamic thin slicing (paper Sec. 7) ------------==//
//
// The paper notes that "thin slicing applies naturally to dynamic data
// dependences". This example demonstrates the extension: the
// interpreter records per-instance producer dependences, and the
// dynamic thin slice of a seed contains exactly the statements that
// produced the observed value in this run — a subset of the static
// thin slice (which must cover every run).
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <algorithm>
#include <cstdio>

using namespace tsl;

static const char *Source = R"THINJ(
class Box { var v: int; }
def main() {
  var b = new Box();
  var which = readInt();
  if (which > 0) {
    b.v = 100;
  } else {
    b.v = 200;
  }
  print(b.v);
}
)THINJ";

int main() {
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  if (!P) {
    fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }

  const Instr *Seed = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seed = I.get();

  // Static thin slice: must cover both stores.
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
  SliceResult Static = sliceBackward(*G, Seed, SliceMode::Thin);
  printf("static thin slice (%u statements):\n%s\n", Static.sizeStmts(),
         Static.str().c_str());

  // Dynamic thin slices: one store each, depending on the input.
  for (int64_t Input : {1, -1}) {
    InterpOptions Opts;
    Opts.InputInts = {Input};
    Opts.TraceDeps = true;
    InterpResult R = interpret(*P, Opts);
    printf("run with input %lld prints %s; dynamic thin slice:\n",
           static_cast<long long>(Input), R.Output.front().c_str());
    auto Stmts = R.Trace.dynamicThinSliceOfLast(Seed);
    std::sort(Stmts.begin(), Stmts.end(),
              [](const Instr *A, const Instr *B) {
                return A->loc().Line < B->loc().Line;
              });
    for (const Instr *I : Stmts)
      if (I->loc().isValid())
        printf("  line %u: %s  [in static slice: %s]\n", I->loc().Line,
               I->str(*P).c_str(), Static.contains(I) ? "yes" : "NO!");
  }
  printf("\nthe dynamic slices pick exactly one store each; both runs stay "
         "within the static slice\n");
  return 0;
}
