//===-- lower_test.cpp - Sema and lowering unit tests ---------------------------==//

#include "ir/IRPrinter.h"
#include "ir/Instr.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

std::unique_ptr<Program> compileOk(const std::string &Source,
                                   bool BuildSSA = true) {
  DiagnosticEngine Diag;
  CompileOptions Opts;
  Opts.BuildSSA = BuildSSA;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag, Opts);
  EXPECT_NE(P, nullptr) << Diag.str();
  if (P) {
    auto Violations = verifyProgram(*P);
    EXPECT_TRUE(Violations.empty())
        << Violations.front() << "\n"
        << printProgram(*P);
  }
  return P;
}

void compileFails(const std::string &Source, const std::string &Needle) {
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  EXPECT_EQ(P, nullptr) << "expected a sema error containing: " << Needle;
  EXPECT_NE(Diag.str().find(Needle), std::string::npos)
      << "diagnostics were:\n"
      << Diag.str();
}

/// Finds the first instruction of the given kind in the whole program.
const Instr *findInstr(const Program &P, InstrKind K) {
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->kind() == K)
          return I.get();
  return nullptr;
}

unsigned countInstrs(const Program &P, InstrKind K) {
  unsigned N = 0;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        N += I->kind() == K;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic lowering shapes
//===----------------------------------------------------------------------===//

TEST(Lower, MinimalMain) {
  auto P = compileOk("def main() { print(1 + 2); }");
  ASSERT_NE(P->mainMethod(), nullptr);
  EXPECT_NE(findInstr(*P, InstrKind::BinOp), nullptr);
  EXPECT_NE(findInstr(*P, InstrKind::Print), nullptr);
}

TEST(Lower, FieldsAndMethods) {
  auto P = compileOk(R"(
class Box {
  var value: int;
  def set(v: int) { value = v; }
  def get(): int { return value; }
}
def main() {
  var b = new Box();
  b.set(41);
  print(b.get());
}
)");
  EXPECT_NE(findInstr(*P, InstrKind::New), nullptr);
  EXPECT_NE(findInstr(*P, InstrKind::Store), nullptr);
  EXPECT_NE(findInstr(*P, InstrKind::Load), nullptr);
  // b.set / b.get are virtual calls.
  const auto *Call = cast<CallInstr>(findInstr(*P, InstrKind::Call));
  EXPECT_TRUE(Call->isVirtual());
}

TEST(Lower, ImplicitThisFieldAccess) {
  auto P = compileOk(R"(
class Counter {
  var n: int;
  def bump() { n = n + 1; }
}
def main() { var c = new Counter(); c.bump(); }
)");
  // "n = n + 1" lowers to a load and a store through this.
  const auto *St = cast<StoreInstr>(findInstr(*P, InstrKind::Store));
  EXPECT_FALSE(St->isStaticAccess());
}

TEST(Lower, StaticFieldsGetClinit) {
  auto P = compileOk(R"(
class Config {
  static var level: int = 3;
}
def main() { print(Config.level); }
)");
  // $clinit stores the initializer; main calls $clinit first.
  bool FoundClinit = false;
  for (const auto &M : P->methods())
    if (P->strings().str(M->name()) == "$clinit")
      FoundClinit = true;
  EXPECT_TRUE(FoundClinit);
  const auto *St = cast<StoreInstr>(findInstr(*P, InstrKind::Store));
  EXPECT_TRUE(St->isStaticAccess());
}

TEST(Lower, ConstructorAndSuper) {
  auto P = compileOk(R"(
class A {
  var tag: int;
  def init(t: int) { tag = t; }
}
class B extends A {
  def init() { super(7); }
}
def main() { var b = new B(); print(b.tag); }
)");
  // Constructor calls dispatch statically but carry a receiver.
  unsigned StaticDispatchCalls = 0;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *C = dyn_cast<CallInstr>(I.get()))
          if (!C->isVirtual() && C->hasReceiver())
            ++StaticDispatchCalls;
  EXPECT_EQ(StaticDispatchCalls, 2u); // new B() -> init, super(7).
}

TEST(Lower, StringOperations) {
  auto P = compileOk(R"(
def main() {
  var s = "hello world";
  var i = s.indexOf(" ");
  var w = s.substring(0, i);
  print(w + "!" + s.length());
  print(str(42));
  if (w.equals("hello")) { print(s.charAt(0)); }
}
)");
  EXPECT_GE(countInstrs(*P, InstrKind::StrOp), 6u);
}

TEST(Lower, StringConcatCoercesInt) {
  auto P = compileOk("def main() { print(\"n=\" + 3); }");
  bool SawFromInt = false;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *SO = dyn_cast<StrOpInstr>(I.get()))
          SawFromInt |= SO->op() == StrOpKind::FromInt;
  EXPECT_TRUE(SawFromInt);
}

TEST(Lower, ShortCircuitCreatesBranches) {
  auto P = compileOk(R"(
def main() {
  var a = readInt() > 0;
  var b = readInt() > 1;
  if (a && b) { print("both"); }
  if (a || b) { print("either"); }
}
)");
  // Each logical operator lowers to its own branch, plus one per if.
  EXPECT_GE(countInstrs(*P, InstrKind::Branch), 4u);
}

TEST(Lower, ArraysEndToEnd) {
  auto P = compileOk(R"(
def main() {
  var a = new int[4];
  a[0] = 7;
  var x = a[0] + a.length;
  var grid = new string[2][];
  grid[0] = new string[3];
  grid[0][1] = "cell";
  print(x);
  print(grid[0][1]);
}
)");
  EXPECT_GE(countInstrs(*P, InstrKind::ArrayStore), 3u);
  EXPECT_GE(countInstrs(*P, InstrKind::ArrayLoad), 3u);
  EXPECT_EQ(countInstrs(*P, InstrKind::ArrayLen), 1u);
}

TEST(Lower, BreakAndContinueTargets) {
  auto P = compileOk(R"(
def main() {
  var i = 0;
  while (true) {
    i = i + 1;
    if (i > 5) { break; }
    if (i == 2) { continue; }
    print(i);
  }
  print("done");
}
)");
  (void)P;
}

TEST(Lower, FallOffEndSynthesizesReturn) {
  auto P = compileOk("def f(): int { var x = 1; } def main() { print(f()); }");
  // Every block is terminated (verifier already checked); the implicit
  // return exists.
  const Method *F = nullptr;
  for (const auto &M : P->methods())
    if (P->strings().str(M->name()) == "f")
      F = M.get();
  ASSERT_NE(F, nullptr);
  bool HasRet = false;
  for (const auto &BB : F->blocks())
    if (BB->terminator() && isa<RetInstr>(BB->terminator()))
      HasRet = true;
  EXPECT_TRUE(HasRet);
}

TEST(Lower, UnreachableCodeIsDropped) {
  auto P = compileOk(R"(
def f(): int {
  return 1;
  print("never");
}
def main() { print(f()); }
)");
  EXPECT_EQ(countInstrs(*P, InstrKind::Print), 1u); // Only main's.
}

TEST(Lower, OperandRolesOnHeapAccesses) {
  auto P = compileOk(R"(
class C { var f: Object; }
def main() {
  var c = new C();
  var a = new Object[3];
  c.f = a;
  a[1] = c.f;
}
)");
  const auto *St = cast<StoreInstr>(findInstr(*P, InstrKind::Store));
  EXPECT_EQ(St->operandRole(0), OperandRole::Base);
  EXPECT_EQ(St->operandRole(1), OperandRole::Value);
  const auto *AS =
      cast<ArrayStoreInstr>(findInstr(*P, InstrKind::ArrayStore));
  EXPECT_EQ(AS->operandRole(0), OperandRole::Base);
  EXPECT_EQ(AS->operandRole(1), OperandRole::Index);
  EXPECT_EQ(AS->operandRole(2), OperandRole::Value);
}

//===----------------------------------------------------------------------===//
// Sema errors
//===----------------------------------------------------------------------===//

TEST(LowerErrors, UnknownVariable) {
  compileFails("def main() { print(nope); }", "unknown variable");
}

TEST(LowerErrors, UnknownClass) {
  compileFails("def main() { var x = new Nope(); }", "unknown class");
}

TEST(LowerErrors, TypeMismatchAssign) {
  compileFails("def main() { var x = 1; x = \"s\"; }", "cannot assign");
}

TEST(LowerErrors, ConditionMustBeBool) {
  compileFails("def main() { if (1) { } }", "must be bool");
}

TEST(LowerErrors, ReturnTypeChecked) {
  compileFails("def f(): int { return \"s\"; } def main() { }",
               "return type mismatch");
}

TEST(LowerErrors, ArgumentCount) {
  compileFails("def f(x: int) { } def main() { f(); }", "expects 1");
}

TEST(LowerErrors, ArgumentType) {
  compileFails("def f(x: int) { } def main() { f(\"s\"); }",
               "type mismatch");
}

TEST(LowerErrors, NoMain) { compileFails("def helper() { }", "no entry"); }

TEST(LowerErrors, MainWithParamsRejected) {
  compileFails("def main(x: int) { }", "must take no parameters");
}

TEST(LowerErrors, DuplicateClass) {
  compileFails("class A { } class A { } def main() { }", "duplicate class");
}

TEST(LowerErrors, DuplicateLocal) {
  compileFails("def main() { var x = 1; var x = 2; }", "redeclaration");
}

TEST(LowerErrors, InheritanceCycle) {
  compileFails("class A extends B { } class B extends A { } def main() { }",
               "cycle");
}

TEST(LowerErrors, IncompatibleOverride) {
  compileFails(R"(
class A { def m(x: int) { } }
class B extends A { def m(x: string) { } }
def main() { }
)",
               "incompatible signature");
}

TEST(LowerErrors, ThisInStaticMethod) {
  compileFails(R"(
class A { static def s() { print(this); } }
def main() { }
)",
               "'this' outside an instance method");
}

TEST(LowerErrors, InstanceFieldFromStatic) {
  compileFails(R"(
class A {
  var f: int;
  static def s(): int { return f; }
}
def main() { }
)",
               "in a static method");
}

TEST(LowerErrors, SuperOutsideInit) {
  compileFails(R"(
class A { def init(x: int) { } }
class B extends A { def other() { super(1); } }
def main() { }
)",
               "only valid inside 'init'");
}

TEST(LowerErrors, NullNeedsAnnotation) {
  compileFails("def main() { var x = null; }", "cannot infer");
}

TEST(LowerErrors, InvalidCast) {
  compileFails("def main() { var x = 1; var y = (string) x; }",
               "invalid cast");
}

TEST(LowerErrors, ArithmeticTypeChecked) {
  compileFails("def main() { var x = true + 1; }", "invalid operands");
}

TEST(LowerErrors, VoidUsedAsValue) {
  compileFails("def v() { } def main() { var x = v(); }",
               "void used as a value");
}

TEST(LowerErrors, UnknownField) {
  compileFails(R"(
class A { }
def main() { var a = new A(); print(a.nope); }
)",
               "has no field");
}

TEST(LowerErrors, UnknownMethod) {
  compileFails(R"(
class A { }
def main() { var a = new A(); a.nope(); }
)",
               "has no method");
}

TEST(LowerErrors, SubtypingEnforcedOnArguments) {
  // A Vector is an Object, but an Object is not a Vector.
  compileFails(R"(
class Vector2 { }
def f(v: Vector2) { }
def main() {
  var o: Object = new Vector2();
  f(o);
}
)",
               "type mismatch");
}

TEST(Lower, SubtypingUpcastsAllowed) {
  compileOk(R"(
class Animal { }
class Cat extends Animal { }
def feed(a: Animal) { }
def main() {
  feed(new Cat());
  var a: Animal = new Cat();
  var c = (Cat) a;
  print(a == c);
}
)");
}
